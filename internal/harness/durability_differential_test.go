package harness

import (
	"testing"

	"repro/tm"
)

// durTune is the test-speed durability tuning: fsync elided (the crash
// is simulated in-process, where the page cache survives), small
// checkpoint chunks so dedup paths run, and small segments so rotation
// and segment GC run.
func durTune() []tm.DurOption {
	return []tm.DurOption{
		tm.DurNoFsync(),
		tm.DurChunkWords(512),
		tm.DurSegmentBytes(1 << 20),
	}
}

// crashRecoverChecksum drives one workload lifecycle on a durable
// runtime, simulates a crash after the run, recovers from the
// directory, and asserts the recovered space is bit-identical to the
// crashed instance's in-memory state. It returns the recovered
// checksum.
func crashRecoverChecksum(t *testing.T, bench string, p tm.Profile, threads int, tune ...tm.DurOption) uint64 {
	t.Helper()
	w, err := tm.NewWorkload(bench)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := append(p.Options(), tm.WithMemory(w.MemConfig()),
		tm.WithDurability(dir, append(durTune(), tune...)...))
	rt := tm.Open(opts...)
	w.Setup(rt)
	// Setup mutates the space through Runtime.Space(), which is not
	// journaled: per the recovery contract, checkpoint before the
	// replayable phase begins.
	if err := rt.Checkpoint(); err != nil {
		t.Fatalf("%s [%s]: checkpoint after setup: %v", bench, p.Name(), err)
	}
	w.Run(rt, threads)
	if err := w.Validate(rt); err != nil {
		t.Fatalf("%s [%s, %d threads]: %v", bench, p.Name(), threads, err)
	}
	want := rt.Unwrap().Space().Checksum()
	rt.Crash()

	rec, err := tm.Recover(dir, opts...)
	if err != nil {
		t.Fatalf("%s [%s]: recover: %v", bench, p.Name(), err)
	}
	got := rec.Unwrap().Space().Checksum()
	if got != want {
		t.Errorf("%s [%s, %d threads]: recovered state %#x, want %#x (crashed instance)",
			bench, p.Name(), threads, got, want)
	}
	rec.Validate()
	if err := rec.Close(); err != nil {
		t.Fatalf("%s [%s]: closing recovered runtime: %v", bench, p.Name(), err)
	}
	return got
}

// TestDurabilityCrashReplayDifferential is the crash-replay
// differential over the full scenario × profile grid: every registered
// workload, under every named profile, run on a durable runtime that is
// killed after the run and recovered from disk. Three states must be
// bit-identical (mem.Space.Checksum): the non-durable reference run,
// the crashed durable instance, and the recovered space — proving both
// that durability never changes what the program computes and that
// checkpoint + redo-tail replay loses nothing.
func TestDurabilityCrashReplayDifferential(t *testing.T) {
	profiles := namedProfiles()
	benches := AllWorkloads()
	if testing.Short() {
		profiles = []tm.Profile{tm.Baseline(), tm.RuntimeAll(tm.LogTree), tm.CompilerElision()}
		benches = []string{"ssca2", "labyrinth", "tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			base := runChecksum(t, bench, profiles[0], 1) // non-durable reference
			for _, p := range profiles {
				if got := crashRecoverChecksum(t, bench, p, 1); got != base {
					t.Errorf("%s under durable %s: recovered state %#x, want %#x (non-durable %s)",
						bench, p.Name(), got, base, profiles[0].Name())
				}
			}
		})
	}
}

// TestDurabilityCrashReplayParallel repeats the crash-replay check with
// contended multi-threaded runs and a background auto-checkpointer, so
// fuzzy checkpoints race live transactions. Final states are
// scheduling-dependent, so the only (and sufficient) assertion is the
// one inside crashRecoverChecksum: recovery reproduces the crashed
// instance exactly.
func TestDurabilityCrashReplayParallel(t *testing.T) {
	benches := []string{"ssca2", "tmkv", "tmmsg"}
	if testing.Short() {
		benches = []string{"tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			crashRecoverChecksum(t, bench, tm.RuntimeAll(tm.LogTree), 4,
				tm.DurAutoCheckpoint(1<<15))
		})
	}
}

// TestDurabilityRestartContinues closes a durable runtime cleanly,
// reopens it via Recover, runs more transactions, crashes, and recovers
// again — the log must continue across incarnations (sequence numbers,
// segment indexes, checkpoint chain).
func TestDurabilityRestartContinues(t *testing.T) {
	w, err := tm.NewWorkload("tmkv")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := []tm.Option{tm.WithMemory(w.MemConfig()), tm.WithDurability(dir, durTune()...)}
	rt := tm.Open(opts...)
	w.Setup(rt)
	if err := rt.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	w.Run(rt, 1)
	sum1 := rt.Unwrap().Space().Checksum()
	if err := rt.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := rt.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}

	rec, err := tm.Recover(dir, opts...)
	if err != nil {
		t.Fatalf("recover after clean close: %v", err)
	}
	if got := rec.Unwrap().Space().Checksum(); got != sum1 {
		t.Fatalf("recovered state after clean close %#x, want %#x", got, sum1)
	}
	// Run a second round of transactions on the recovered instance (a
	// fresh global block, so no knowledge of the workload's layout is
	// needed), then crash it.
	g := rec.AllocGlobal(64)
	th := rec.Thread(0)
	for round := 0; round < 8; round++ {
		th.Atomic(func(tx *tm.Tx) {
			for i := 0; i < g.Len(); i++ {
				g.Word(i).Store(tx, g.Word(i).Load(tx)+uint64(round*i+1))
			}
		})
	}
	sum2 := rec.Unwrap().Space().Checksum()
	rec.Crash()

	rec2, err := tm.Recover(dir, opts...)
	if err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	defer rec2.Close()
	if got := rec2.Unwrap().Space().Checksum(); got != sum2 {
		t.Fatalf("recovered state after second incarnation %#x, want %#x", got, sum2)
	}
}
