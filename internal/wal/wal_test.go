package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindCommit, Version: 7, GlobalsNext: 100, HeapNext: 2000, Spans: []Span{
			{Addr: 42, Vals: []uint64{1, 2, 3}},
			{Addr: 9000, Vals: []uint64{0xdeadbeef}},
		}},
		{Kind: KindAbort, Version: 9, Spans: []Span{{Addr: 5, Vals: []uint64{0}}}},
		{Kind: KindNonTx, Version: 9, GlobalsNext: 101, Spans: []Span{{Addr: 77, Vals: []uint64{123, 456}}}},
		{Kind: KindSeal, Version: 12, GlobalsNext: 101, HeapNext: 2048},
		{Kind: KindCommit, Version: 13, Spans: []Span{{Addr: 1, Vals: nil}}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := sampleRecords()
	for i := range recs {
		recs[i].Seq = uint64(i)
		buf = AppendRecord(buf, &recs[i])
	}
	var got Record
	off := 0
	for i := range recs {
		n, err := DecodeRecord(buf[off:], &got)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		off += n
		want := recs[i]
		if got.Kind != want.Kind || got.Seq != want.Seq || got.Version != want.Version ||
			got.GlobalsNext != want.GlobalsNext || got.HeapNext != want.HeapNext ||
			len(got.Spans) != len(want.Spans) {
			t.Fatalf("record %d mismatch: got %+v", i, got)
		}
		for j := range want.Spans {
			if got.Spans[j].Addr != want.Spans[j].Addr ||
				!reflect.DeepEqual(append([]uint64{}, got.Spans[j].Vals...), append([]uint64{}, want.Spans[j].Vals...)) {
				t.Fatalf("record %d span %d: got %+v want %+v", i, j, got.Spans[j], want.Spans[j])
			}
		}
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeTruncationIsTorn(t *testing.T) {
	rec := sampleRecords()[0]
	full := AppendRecord(nil, &rec)
	var out Record
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeRecord(full[:cut], &out); !errors.Is(err, ErrTorn) {
			t.Fatalf("cut %d: got %v, want ErrTorn", cut, err)
		}
	}
	// Flipping a payload byte breaks the CRC, which also reads as torn.
	mut := append([]byte(nil), full...)
	mut[len(mut)-1] ^= 0xff
	if _, err := DecodeRecord(mut, &out); !errors.Is(err, ErrTorn) {
		t.Fatalf("bit flip: got %v, want ErrTorn", err)
	}
}

func TestLogAppendSyncReadBack(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 0, 0, Options{GroupInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	var lastAck Ack
	for i := range recs {
		ack, err := l.Append(&recs[i])
		if err != nil {
			t.Fatal(err)
		}
		lastAck = ack
	}
	if err := lastAck.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records != uint64(len(recs)) {
		t.Fatalf("Records = %d, want %d", st.Records, len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&recs[0]); err == nil {
		t.Fatal("append after close succeeded")
	}

	b, err := os.ReadFile(filepath.Join(dir, SegName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if string(b[:8]) != segMagic {
		t.Fatalf("bad segment magic %q", b[:8])
	}
	var rec Record
	off := segHdrLen
	for i := 0; off < len(b); i++ {
		n, err := DecodeRecord(b[off:], &rec)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		off += n
	}
}

func TestLogRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, 0, 0, Options{SegmentBytes: 256, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Kind: KindCommit, Spans: []Span{{Addr: 1, Vals: make([]uint64, 16)}}}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	seg, off := l.Position()
	if seg == 0 {
		t.Fatalf("expected rotation, still on segment 0 (off %d)", off)
	}
	if err := l.TruncateBefore(seg); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < seg; i++ {
		if _, err := os.Stat(filepath.Join(dir, SegName(i))); !os.IsNotExist(err) {
			t.Fatalf("segment %d survived TruncateBefore(%d)", i, seg)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, SegName(seg))); err != nil {
		t.Fatalf("tail segment missing: %v", err)
	}
}

// writeState drives a log + store pair over a synthetic word image and
// returns the final image.
func writeState(t *testing.T, dir string, spaceWords int) []uint64 {
	t.Helper()
	words := make([]uint64, spaceWords)
	store, err := OpenStore(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, 0, 0, Options{SegmentBytes: 4 << 10, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(seed uint64, n int) *Record {
		rec := &Record{Kind: KindCommit, Version: seed, GlobalsNext: seed, HeapNext: 2 * seed}
		for i := 0; i < n; i++ {
			addr := (seed*31 + uint64(i)*17) % uint64(spaceWords)
			val := seed<<16 | uint64(i)
			words[addr] = val
			rec.Spans = append(rec.Spans, Span{Addr: addr, Vals: []uint64{val}})
		}
		return rec
	}
	for seed := uint64(1); seed <= 50; seed++ {
		if _, err := l.Append(mutate(seed, 8)); err != nil {
			t.Fatal(err)
		}
		if seed == 25 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			cutSeg, cutOff := l.Position()
			if _, err := store.WriteCheckpoint(Snapshot{
				Words:       append([]uint64(nil), words...),
				Clock:       seed,
				GlobalsNext: seed,
				HeapNext:    2 * seed,
				Geometry:    Geometry{GlobalWords: 1, HeapWords: 1, StackWords: 1, MaxThreads: 1},
				CutSeg:      cutSeg,
				CutOff:      cutOff,
			}); err != nil {
				t.Fatal(err)
			}
			if err := l.TruncateBefore(cutSeg); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash: flush but do not seal.
	l.Kill()
	return words
}

func TestRecoverCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	want := writeState(t, dir, 4096)
	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Words, want) {
		t.Fatal("recovered words differ from live image")
	}
	if st.Clock != 50 || st.GlobalsNext != 50 || st.HeapNext != 100 {
		t.Fatalf("metadata: clock=%d gn=%d hn=%d", st.Clock, st.GlobalsNext, st.HeapNext)
	}
	if st.Records == 0 || st.Truncated {
		t.Fatalf("records=%d truncated=%v", st.Records, st.Truncated)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	writeState(t, dir, 4096)

	// Chop bytes off the last segment, mid-record.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var lastSeg uint64
	found := false
	for _, e := range entries {
		var n uint64
		if matchName(e.Name(), "seg-%08d.wal", &n) {
			if !found || n > lastSeg {
				lastSeg = n
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no segments on disk")
	}
	path := filepath.Join(dir, SegName(lastSeg))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	st, err := Recover(dir)
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	if !st.Truncated {
		t.Fatal("recovery did not report truncation")
	}
	// Recovery must be repeatable: the torn record is gone now.
	st2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Truncated {
		t.Fatal("second recovery still sees a torn tail")
	}
	if !reflect.DeepEqual(st.Words, st2.Words) {
		t.Fatal("recover-after-truncate changed state")
	}
}

func TestRecoverNoCheckpoint(t *testing.T) {
	if _, err := Recover(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("got %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointDedup(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]uint64, 256)
	for i := range words {
		words[i] = uint64(i)
	}
	snap := Snapshot{Words: words, Geometry: Geometry{GlobalWords: 1, HeapWords: 1, StackWords: 1, MaxThreads: 1}}
	if _, err := store.WriteCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	first := store.Stats()
	if first.ChunksWritten == 0 {
		t.Fatal("first checkpoint wrote nothing")
	}
	words[3] = 0xabcdef // dirty exactly one chunk
	if _, err := store.WriteCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	second := store.Stats()
	if w := second.ChunksWritten - first.ChunksWritten; w != 1 {
		t.Fatalf("second checkpoint wrote %d chunks, want 1", w)
	}
	if second.ChunksDeduped == first.ChunksDeduped {
		t.Fatal("second checkpoint deduped nothing")
	}

	// A store reopened on the same dir dedups against disk state.
	store2, err := OpenStore(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store2.WriteCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	if st := store2.Stats(); st.ChunksWritten != 0 {
		t.Fatalf("reopened store rewrote %d chunks", st.ChunksWritten)
	}
}
