package tlc

import "strconv"

// lexer turns TL source into tokens. TL uses //-comments; numbers are
// decimal or 0x-hex unsigned 64-bit integers.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errf(format string, args ...any) *Error {
	return errf(lx.line, lx.col, format, args...)
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (lx *lexer) next() (token, *Error) {
	for {
		// Skip whitespace.
		for lx.pos < len(lx.src) {
			c := lx.peekByte()
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				lx.advance()
			} else {
				break
			}
		}
		// Skip // comments.
		if lx.pos+1 < len(lx.src) && lx.src[lx.pos] == '/' && lx.src[lx.pos+1] == '/' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance()
			}
			continue
		}
		break
	}
	line, col := lx.line, lx.col
	mk := func(k tokKind, text string) (token, *Error) {
		return token{kind: k, text: text, line: line, col: col}, nil
	}
	if lx.pos >= len(lx.src) {
		return mk(tokEOF, "")
	}
	c := lx.advance()
	switch {
	case isLetter(c):
		start := lx.pos - 1
		for lx.pos < len(lx.src) && (isLetter(lx.peekByte()) || isDigit(lx.peekByte())) {
			lx.advance()
		}
		word := lx.src[start:lx.pos]
		if k, ok := keywords[word]; ok {
			return mk(k, word)
		}
		return mk(tokIdent, word)
	case isDigit(c):
		start := lx.pos - 1
		base := 10
		if c == '0' && lx.peekByte() == 'x' {
			lx.advance()
			base = 16
		}
		for lx.pos < len(lx.src) && (isDigit(lx.peekByte()) || (base == 16 && isHex(lx.peekByte()))) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		digits := text
		if base == 16 {
			digits = text[2:]
		}
		v, err := strconv.ParseUint(digits, base, 64)
		if err != nil {
			return token{}, errf(line, col, "bad integer literal %q", text)
		}
		t, _ := mk(tokInt, text)
		t.val = v
		return t, nil
	}
	two := func(nextC byte, k2 tokKind, t2 string, k1 tokKind, t1 string) (token, *Error) {
		if lx.peekByte() == nextC {
			lx.advance()
			return mk(k2, t2)
		}
		return mk(k1, t1)
	}
	switch c {
	case '(':
		return mk(tokLParen, "(")
	case ')':
		return mk(tokRParen, ")")
	case '{':
		return mk(tokLBrace, "{")
	case '}':
		return mk(tokRBrace, "}")
	case '[':
		return mk(tokLBrack, "[")
	case ']':
		return mk(tokRBrack, "]")
	case ',':
		return mk(tokComma, ",")
	case ';':
		return mk(tokSemi, ";")
	case '.':
		return mk(tokDot, ".")
	case '+':
		return mk(tokPlus, "+")
	case '-':
		return mk(tokMinus, "-")
	case '*':
		return mk(tokStar, "*")
	case '/':
		return mk(tokSlash, "/")
	case '%':
		return mk(tokPercent, "%")
	case '=':
		return two('=', tokEQ, "==", tokAssign, "=")
	case '<':
		return two('=', tokLE, "<=", tokLT, "<")
	case '>':
		return two('=', tokGE, ">=", tokGT, ">")
	case '!':
		return two('=', tokNE, "!=", tokBang, "!")
	case '&':
		return two('&', tokAndAnd, "&&", tokAmp, "&")
	case '|':
		if lx.peekByte() == '|' {
			lx.advance()
			return mk(tokOrOr, "||")
		}
	}
	return token{}, errf(line, col, "unexpected character %q", string(c))
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, *Error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
