package capture

import (
	"fmt"

	"repro/internal/mem"
)

// Tree is the precise allocation log: a height-balanced (AVL) search
// tree over disjoint ranges keyed by start address.
//
// The paper's Fig. 5 stores ranges at the leaves with min/max bounds
// at internal nodes so misses terminate high in the tree. Over
// *disjoint* ranges an ordered balanced tree gives the same O(log n)
// hit and miss cost with one node per range, so this implementation
// keeps ranges directly in the nodes. Nodes are recycled through a
// free list so steady-state transactions allocate nothing.
type Tree struct {
	root *treeNode
	free *treeNode // recycled nodes, chained through left
	n    int
}

type treeNode struct {
	start, end  mem.Addr // [start, end)
	left, right *treeNode
	h           int8
}

// NewTree creates an empty precise allocation log.
func NewTree() *Tree { return &Tree{} }

// Len reports the number of recorded ranges.
func (t *Tree) Len() int { return t.n }

func (t *Tree) newNode(start, end mem.Addr) *treeNode {
	if f := t.free; f != nil {
		t.free = f.left
		*f = treeNode{start: start, end: end, h: 1}
		return f
	}
	return &treeNode{start: start, end: end, h: 1}
}

func (t *Tree) release(n *treeNode) {
	n.left = t.free
	n.right = nil
	t.free = n
}

func height(n *treeNode) int8 {
	if n == nil {
		return 0
	}
	return n.h
}

func fix(n *treeNode) *treeNode {
	hl, hr := height(n.left), height(n.right)
	if hl >= hr {
		n.h = hl + 1
	} else {
		n.h = hr + 1
	}
	switch bal := hl - hr; {
	case bal > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotL(n.left)
		}
		return rotR(n)
	case bal < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotR(n.right)
		}
		return rotL(n)
	}
	return n
}

func rotR(n *treeNode) *treeNode {
	l := n.left
	n.left = l.right
	l.right = n
	refresh(n)
	refresh(l)
	return l
}

func rotL(n *treeNode) *treeNode {
	r := n.right
	n.right = r.left
	r.left = n
	refresh(n)
	refresh(r)
	return r
}

func refresh(n *treeNode) {
	hl, hr := height(n.left), height(n.right)
	if hl >= hr {
		n.h = hl + 1
	} else {
		n.h = hr + 1
	}
}

// Insert records the range [start, end). Ranges inserted into one log
// come from one allocator and are therefore disjoint; inserting an
// overlapping range panics, as it would indicate allocator corruption.
func (t *Tree) Insert(start, end mem.Addr) {
	if start >= end {
		panic(fmt.Sprintf("capture: Tree.Insert(%d, %d): empty range", start, end))
	}
	t.root = t.insert(t.root, start, end)
	t.n++
}

func (t *Tree) insert(n *treeNode, start, end mem.Addr) *treeNode {
	if n == nil {
		return t.newNode(start, end)
	}
	switch {
	case end <= n.start:
		n.left = t.insert(n.left, start, end)
	case start >= n.end:
		n.right = t.insert(n.right, start, end)
	default:
		panic(fmt.Sprintf("capture: Tree.Insert(%d, %d): overlaps [%d, %d)", start, end, n.start, n.end))
	}
	return fix(n)
}

// Contains reports whether [addr, addr+size) lies inside one recorded
// range. The tree is precise: it finds every captured access.
func (t *Tree) Contains(addr mem.Addr, size int) bool {
	n := t.root
	for n != nil {
		switch {
		case addr < n.start:
			n = n.left
		case addr >= n.end:
			n = n.right
		default:
			return addr+mem.Addr(size) <= n.end
		}
	}
	return false
}

// Remove forgets the range starting at start. The (start, end) pair
// must match a recorded range exactly or be absent.
func (t *Tree) Remove(start, end mem.Addr) {
	var removed bool
	t.root, removed = t.remove(t.root, start)
	if removed {
		t.n--
	}
	_ = end
}

func (t *Tree) remove(n *treeNode, start mem.Addr) (*treeNode, bool) {
	if n == nil {
		return nil, false
	}
	var removed bool
	switch {
	case start < n.start:
		n.left, removed = t.remove(n.left, start)
	case start > n.start:
		n.right, removed = t.remove(n.right, start)
	default:
		removed = true
		if n.left == nil {
			r := n.right
			t.release(n)
			return r, true
		}
		if n.right == nil {
			l := n.left
			t.release(n)
			return l, true
		}
		// Replace with the successor (leftmost of the right subtree).
		succ := n.right
		for succ.left != nil {
			succ = succ.left
		}
		n.start, n.end = succ.start, succ.end
		n.right, _ = t.remove(n.right, succ.start)
	}
	return fix(n), removed
}

// Clear empties the log, recycling all nodes.
func (t *Tree) Clear() {
	t.clear(t.root)
	t.root = nil
	t.n = 0
}

func (t *Tree) clear(n *treeNode) {
	if n == nil {
		return
	}
	t.clear(n.left)
	t.clear(n.right)
	t.release(n)
}

// checkInvariants validates ordering, balance and disjointness; used
// by the property tests.
func (t *Tree) checkInvariants() error {
	var prevEnd mem.Addr
	var walk func(n *treeNode) error
	count := 0
	walk = func(n *treeNode) error {
		if n == nil {
			return nil
		}
		if err := walk(n.left); err != nil {
			return err
		}
		if n.start < prevEnd {
			return fmt.Errorf("ranges not disjoint/ordered at [%d,%d) after end %d", n.start, n.end, prevEnd)
		}
		if n.start >= n.end {
			return fmt.Errorf("empty range [%d,%d)", n.start, n.end)
		}
		prevEnd = n.end
		count++
		hl, hr := height(n.left), height(n.right)
		if bal := hl - hr; bal < -1 || bal > 1 {
			return fmt.Errorf("unbalanced node [%d,%d): %d vs %d", n.start, n.end, hl, hr)
		}
		exp := hl
		if hr > exp {
			exp = hr
		}
		if n.h != exp+1 {
			return fmt.Errorf("bad height at [%d,%d)", n.start, n.end)
		}
		return walk(n.right)
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != t.n {
		return fmt.Errorf("Len=%d but %d nodes", t.n, count)
	}
	return nil
}
