package stm

// This file closes the loop the phase layer left open: instead of a
// human declaring which engine each workload phase should run on
// (OptConfig.Phases), an adaptive Runtime *measures* each declared kind
// and re-selects its engine online. Every adaptive kind gets four
// compiled variants in the engine table:
//
//	probe       the instrumented counting engine (capture checks on,
//	            Counting classification on) — the sampling window
//	capture     the capture-checking fast path (stack+heap checks,
//	            precise tree log), the paper's publish regime
//	skipshared  the definitely-shared bypass prologue, the paper's
//	            cursor regime
//	readmostly  the read-mostly engine (zero write-path setup,
//	            in-flight upgrade on first shared store), the scan
//	            regime
//
// The fast variants are compiled from exactly the same fragments the
// canonical manual declaration (harness.PhaseRegimeSpecs) overlays on
// the base profile, so an adaptive runtime that converges is running
// the very engines the hand-tuned hints would have chosen — that
// equivalence is pinned by the adaptive-vs-hinted differential in
// internal/harness.
//
// Sampling is epoch-based and thread-local: each thread snapshots the
// phase's counters and, every Epoch completed top-level transactions
// in that phase, decides from its own delta (no cross-thread counter
// reads, so the Stats ownership rule is preserved). A probe epoch that
// observes (almost) no shared writes publishes the read-mostly variant
// — its unlogged snapshot-validated reads and zero write-path setup
// dominate whatever the captured share is; otherwise ≥ PromotePct
// captured accesses publishes the capture variant; ≤ DemotePct
// publishes skipshared; anything between stays on
// the probe (mixed regimes keep being measured). Fast variants demote
// themselves back to the probe when an epoch's abort ratio regresses
// by more than RegressPct over the probe baseline, and re-probe on a
// schedule (ProbeEvery epochs) so a workload whose regime drifts is
// re-measured. Publication is a single atomic per kind; other threads
// adopt the selection at their next transaction boundary or EnterPhase
// hint — engines still never change mid-transaction.

import (
	"math"
	"sync/atomic"

	"repro/internal/capture"
)

// Adaptive variant labels, as reported by PhaseStats.Variant and
// AdaptiveSelection.Variant. Manual phases and the default phase have
// an empty variant.
const (
	VariantProbe      = "probe"
	VariantCapture    = "capture"
	VariantSkipShared = "skipshared"
	VariantReadMostly = "readmostly"
)

// Defaults for AdaptiveConfig's tuning knobs (0 selects them).
const (
	// DefaultAdaptiveEpoch is the sampling window: completed top-level
	// transactions (commits + user aborts) per thread per decision.
	DefaultAdaptiveEpoch = 128
	// DefaultAdaptiveProbeEvery re-probes after this many fast epochs.
	DefaultAdaptiveProbeEvery = 32
	// DefaultPromotePct: captured share at or above which a probe epoch
	// selects the capture-checking variant. The ROADMAP's ">90%" was
	// measured too strict for real mixed transactions — tmmsg's batch
	// publish captures ~80% of its accesses (the rest are the shared
	// ring links) and is exactly the regime the capture engines win on.
	DefaultPromotePct = 0.60
	// DefaultDemotePct: captured share at or below which a probe epoch
	// selects the definitely-shared bypass. Like PromotePct this is set
	// from measurement, not purity: tmmsg's served cursor mix still
	// captures ~7% of its accesses (merged-reply staging, consume
	// scratch), and paying the capture check on the other ~93% costs
	// more than full barriers on that residue. 0.15 keeps genuinely
	// mixed regimes (tmmsg publish is ~80% captured) on the probe.
	DefaultDemotePct = 0.15
	// DefaultRegressPct: absolute abort-ratio increase over the probe
	// baseline that demotes a fast variant back to the probe.
	DefaultRegressPct = 0.50
	// DefaultReadMostlyPct: shared-write share (writes the Counting
	// classification could not prove captured, over all accesses) at or
	// below which a probe epoch selects the read-mostly variant. ~0
	// rather than exactly 0 so a scan regime with a stray shared write
	// per thousand accesses (a hit counter, a sampled touch) still
	// qualifies — the occasional upgrade costs two pointer swaps. The
	// promotion additionally requires the epoch's shared-write *count*
	// to stay at or below UpgradePct per commit: the share is per
	// access, the upgrade toll is per transaction, and a regime whose
	// every transaction buries one shared link store under hundreds of
	// captured accesses would pass the share test only to upgrade on
	// every commit and thrash straight back through the demotion.
	DefaultReadMostlyPct = 0.01
	// DefaultUpgradePct: first-store upgrades per commit above which a
	// read-mostly epoch demotes back to the probe; the regime has
	// started writing shared data, so measure it again.
	DefaultUpgradePct = 0.05
	// DefaultCMQueuePct: abort ratio at or above which an epoch selects
	// the queue contention manager for its kind — the regime is a
	// genuine hot spot, and parking on the conflicting owner beats
	// burning the processor on randomized spinning.
	DefaultCMQueuePct = 0.20
	// DefaultCMNonePct: abort ratio at or below which an epoch selects
	// the none manager — conflicts are rare enough that any imposed
	// wait is pure added latency. Between the two bounds the kind runs
	// the backoff default.
	DefaultCMNonePct = 0.02
)

// normalizeAdaptive fills zero tuning knobs with the defaults and
// validates ranges.
func normalizeAdaptive(a AdaptiveConfig) AdaptiveConfig {
	if !a.Enabled {
		return AdaptiveConfig{}
	}
	if a.Epoch <= 0 {
		a.Epoch = DefaultAdaptiveEpoch
	}
	if a.ProbeEvery <= 0 {
		a.ProbeEvery = DefaultAdaptiveProbeEvery
	}
	if a.PromotePct <= 0 {
		a.PromotePct = DefaultPromotePct
	}
	if a.DemotePct <= 0 {
		a.DemotePct = DefaultDemotePct
	}
	if a.RegressPct <= 0 {
		a.RegressPct = DefaultRegressPct
	}
	if a.ReadMostlyPct <= 0 {
		a.ReadMostlyPct = DefaultReadMostlyPct
	}
	if a.UpgradePct <= 0 {
		a.UpgradePct = DefaultUpgradePct
	}
	if a.CMQueuePct <= 0 {
		a.CMQueuePct = DefaultCMQueuePct
	}
	if a.CMNonePct <= 0 {
		a.CMNonePct = DefaultCMNonePct
	}
	if a.DemotePct >= a.PromotePct {
		panic("stm: adaptive DemotePct must be below PromotePct")
	}
	if a.CMNonePct >= a.CMQueuePct {
		panic("stm: adaptive CMNonePct must be below CMQueuePct")
	}
	return a
}

// adaptState is the shared selection state of one adaptive kind: the
// table indices of its four variants and the currently published
// selection. cur is the only cross-thread word; everything a decision
// reads is thread-local.
type adaptState struct {
	kind                     string
	probe, capture, skip, rm int           // engine-table indices
	cur                      atomic.Int32  // currently selected table index
	baseAbort                atomic.Uint64 // Float64bits of the last probe epoch's abort ratio
	// cmSel is the kind's currently selected contention manager, as a
	// cmgrs table index. It moves independently of cur: the manager is
	// re-decided from every epoch's abort-ratio delta whatever variant
	// the epoch ran on, so a kind can change managers while its engine
	// selection stays put.
	cmSel atomic.Int32
}

// compileAdaptive appends the four variant entries per adaptive kind
// to the engine table. Kinds already declared manually are skipped:
// the hand-tuned declaration is ground truth and adaptation must not
// override it. Each variant overlays the base configuration the same
// way a manual phase fragment would, so converged engine names match
// the hinted ones exactly.
func compileAdaptive(a AdaptiveConfig, phases []compiledPhase, idx map[string]int) ([]compiledPhase, []*adaptState) {
	if !a.Enabled {
		return phases, nil
	}
	if len(a.Kinds) == 0 {
		panic("stm: adaptive enabled with no kinds")
	}
	base := phases[0].cfg
	seen := make(map[string]bool, len(a.Kinds))
	var states []*adaptState
	for _, kind := range a.Kinds {
		if kind == "" {
			panic("stm: adaptive kind must be non-empty")
		}
		if seen[kind] {
			panic("stm: duplicate adaptive kind " + kind)
		}
		seen[kind] = true
		if _, manual := idx[kind]; manual {
			continue // manual hints are ground truth
		}
		capt := base
		capt.Read = BarrierOpt{Stack: true, Heap: true}
		capt.Write = BarrierOpt{Stack: true, Heap: true}
		capt.LogKind = capture.KindTree
		skip := base
		skip.SkipSharedChecks = true
		// The read-mostly variant overlays ReadMostly on the capture
		// shape (not the bare base): its store path keeps the stack+heap
		// capture dispatch, so the incidental captured stores of a scan
		// regime do not force upgrades — and the cfg matches the
		// canonical PhaseScan fragment exactly, name included.
		rmc := capt
		rmc.ReadMostly = true
		probe := capt
		probe.Counting = true  // classify captures (the training signal)
		probe.PerfMode = false // the probe needs the counters perf builds drop
		st := &adaptState{
			kind:  kind,
			probe: len(phases), capture: len(phases) + 1, skip: len(phases) + 2, rm: len(phases) + 3,
		}
		st.cur.Store(int32(st.probe))           // start by measuring
		st.cmSel.Store(int32(cmIndex(base.CM))) // start on the base manager
		idx[kind] = st.probe
		cm := cmFor(base.CM)
		phases = append(phases,
			compiledPhase{kind: kind, variant: VariantProbe, cfg: probe, eng: newEngine(probe), cm: cm},
			compiledPhase{kind: kind, variant: VariantCapture, cfg: capt, eng: newEngine(capt), cm: cm},
			compiledPhase{kind: kind, variant: VariantSkipShared, cfg: skip, eng: newEngine(skip), cm: cm},
			compiledPhase{kind: kind, variant: VariantReadMostly, cfg: rmc, eng: newEngine(rmc), cm: cm},
		)
		states = append(states, st)
	}
	return phases, states
}

// AdaptiveSelection is the current engine choice for one adaptive kind.
type AdaptiveSelection struct {
	Kind    string // adaptive phase kind
	Variant string // one of the Variant* labels
	Engine  string // engine name of the selected variant
	CM      string // currently selected contention manager
}

// AdaptiveSelections reports the current selection of every adaptive
// kind, in declaration order (empty when adaptation is off). Like
// Stats it is a monitoring/report surface: reading it concurrently
// with running threads sees a momentary selection.
func (rt *Runtime) AdaptiveSelections() []AdaptiveSelection {
	out := make([]AdaptiveSelection, 0, len(rt.adapt))
	for _, st := range rt.adapt {
		p := &rt.phases[st.cur.Load()]
		out = append(out, AdaptiveSelection{
			Kind: st.kind, Variant: p.variant, Engine: p.eng.name,
			CM: cmgrs[st.cmSel.Load()].name,
		})
	}
	return out
}

// adaptEpochStart opens a fresh sampling window for the engine-table
// entry by snapshotting its counters.
func (th *Thread) adaptEpochStart(idx int) {
	th.adaptMark[idx] = th.phaseStats[idx]
}

// adaptiveTick runs at every top-level transaction boundary of an
// adaptive runtime (Atomic). It adopts a selection another thread
// published, and, once this thread has completed an epoch's worth of
// transactions in the current variant, decides from its own counter
// delta whether to move the kind's selection.
func (th *Thread) adaptiveTick() {
	idx := th.phase
	st := th.rt.adaptByIdx[idx]
	if st == nil {
		return // default or manual phase: nothing to adapt
	}
	// Adopt a published manager change. A manager-only move leaves cur
	// (the engine-table index) in place, so the setPhase adoption below
	// never fires for it; the refresh is a pointer copy.
	th.cm = cmgrs[st.cmSel.Load()]
	if cur := int(st.cur.Load()); cur != idx {
		th.setPhase(cur) // adopt the published selection
		th.adaptEpochStart(cur)
		return
	}
	s := &th.phaseStats[idx]
	mark := &th.adaptMark[idx]
	done := (s.Commits - mark.Commits) + (s.UserAborts - mark.UserAborts)
	if done < uint64(th.rt.acfg.Epoch) {
		return
	}
	th.adaptiveDecide(st, idx, s, mark)
}

// adaptiveDecide closes one epoch at entry idx and publishes the next
// selection for st's kind. Probe epochs classify the captured share;
// fast epochs watch for abort-ratio regression and schedule re-probes.
func (th *Thread) adaptiveDecide(st *adaptState, idx int, s, mark *Stats) {
	acfg := &th.rt.acfg
	commits := s.Commits - mark.Commits
	if commits == 0 {
		commits = 1 // all-user-abort epoch: ratio over attempts that completed
	}
	abortRatio := float64(s.Aborts-mark.Aborts) / float64(commits)

	// Manager selection is orthogonal to engine selection and decided
	// from every epoch, whatever variant it ran on: a hot kind
	// (abortRatio at/above CMQueuePct) parks on the conflicting owner,
	// a quiet one (at/below CMNonePct) retries immediately, the band in
	// between keeps the backoff default. A plain store publishes it —
	// racing epochs that disagree are measuring the same regime and
	// converge on the next window.
	cmTarget := cmIdxBackoff
	switch {
	case abortRatio >= acfg.CMQueuePct:
		cmTarget = cmIdxQueue
	case abortRatio <= acfg.CMNonePct:
		cmTarget = cmIdxNone
	}
	if st.cmSel.Load() != int32(cmTarget) {
		st.cmSel.Store(int32(cmTarget))
	}
	th.cm = cmgrs[cmTarget]

	target := idx
	if idx == st.probe {
		total := (s.ReadTotal - mark.ReadTotal) + (s.WriteTotal - mark.WriteTotal)
		captured := (s.ReadCapStack - mark.ReadCapStack) + (s.ReadCapHeap - mark.ReadCapHeap) +
			(s.WriteCapStack - mark.WriteCapStack) + (s.WriteCapHeap - mark.WriteCapHeap)
		// Shared writes: the stores the capture classification could not
		// prove captured — exactly the stores that would force a
		// read-mostly attempt to upgrade.
		sharedWrites := (s.WriteTotal - mark.WriteTotal) -
			(s.WriteCapStack - mark.WriteCapStack) - (s.WriteCapHeap - mark.WriteCapHeap)
		var share, sharedWriteShare float64
		if total > 0 {
			share = float64(captured) / float64(total)
			sharedWriteShare = float64(sharedWrites) / float64(total)
		}
		// The probe epoch is the regression baseline for the fast
		// variants that follow it.
		st.baseAbort.Store(math.Float64bits(abortRatio))
		switch {
		case total > 0 && sharedWriteShare <= acfg.ReadMostlyPct &&
			float64(sharedWrites) <= acfg.UpgradePct*float64(commits):
			// Nearly no shared writes — and few enough that even one per
			// transaction could not push the upgrade rate past the
			// UpgradePct demotion. The read-mostly variant keeps the
			// capture elisions, never logs its full-barrier reads, and
			// skips all write-path setup, so here it dominates the
			// capture engine regardless of the captured share and is
			// checked first.
			target = st.rm
		case share >= acfg.PromotePct:
			target = st.capture
		case share <= acfg.DemotePct:
			target = st.skip
		}
		// Mixed regime: stay on the probe and keep measuring.
	} else {
		base := math.Float64frombits(st.baseAbort.Load())
		th.adaptFast[idx]++
		upgrades := float64(s.Upgrades-mark.Upgrades) / float64(commits)
		switch {
		case idx == st.rm && upgrades > acfg.UpgradePct:
			target = st.probe // the regime started writing shared data
			th.adaptFast[idx] = 0
		case abortRatio > base+acfg.RegressPct:
			target = st.probe // regression: this engine is losing; re-measure
			th.adaptFast[idx] = 0
		case th.adaptFast[idx] >= uint32(acfg.ProbeEvery):
			target = st.probe // scheduled re-probe
			th.adaptFast[idx] = 0
		}
	}
	th.adaptEpochStart(idx)
	if target != idx {
		// Lost races are fine: whoever published first wins and this
		// thread adopts the winning selection for its next transaction.
		st.cur.CompareAndSwap(int32(idx), int32(target))
		next := int(st.cur.Load())
		th.setPhase(next)
		th.adaptEpochStart(next)
	}
}
