// Package bench is the public face of the experiment harness: it runs
// workloads registered with tm.RegisterWorkload under tm option
// profiles, repeats and times them, and formats the tables and figure
// series of the paper's evaluation. External scenario packages get the
// same matrix, statistics, and reports as the in-tree STAMP ports:
//
//	tm.RegisterWorkload("mine", func() tm.Workload { return newMine() })
//	res, err := bench.Run("mine", tm.RuntimeAll(tm.LogTree), 8, 3)
//
// The implementation lives in internal/harness; this package only
// re-exports the surface external code needs.
package bench

import (
	"io"

	"repro/internal/harness"
	"repro/tm"
)

// Result is the outcome of running one workload under one profile at
// one thread count. It carries the per-run times, the statistics of
// the last run, and the aggregate helpers Mean, Median, Min, and
// RelStdDev.
type Result = harness.Result

// Breakdown is a Fig. 8 barrier classification row.
type Breakdown = harness.Breakdown

// Removal is a Fig. 9 barrier-removal row.
type Removal = harness.Removal

// Run executes the workload `runs` times under the profile (fresh
// instance each run; setup and validation excluded from timing).
func Run(workload string, p tm.Profile, threads, runs int) (Result, error) {
	return harness.Run(workload, p, threads, runs)
}

// RunMatrix measures the workload under every profile, interleaved
// round-robin so machine-speed drift biases no configuration.
func RunMatrix(workload string, profiles []tm.Profile, threads, runs int) ([]Result, error) {
	return harness.RunMatrix(workload, profiles, threads, runs)
}

// DefaultThreadCounts returns the machine-sized sweep grid: powers of
// two below the CPU count, then the CPU count itself.
func DefaultThreadCounts() []int { return harness.DefaultThreadCounts() }

// Sweep measures the workload under the profile at each thread count
// (nil = DefaultThreadCounts): one scaling curve.
func Sweep(workload string, p tm.Profile, threadCounts []int, runs int) ([]Result, error) {
	return harness.Sweep(workload, p, threadCounts, runs)
}

// SweepMatrix sweeps every profile and concatenates the curves.
func SweepMatrix(workload string, profiles []tm.Profile, threadCounts []int, runs int) ([]Result, error) {
	return harness.SweepMatrix(workload, profiles, threadCounts, runs)
}

// OpenLoopSpec configures one open-loop latency measurement point: a
// serve backend under a profile, a server shape (workers × merge
// width), and an offered load in requests per second.
type OpenLoopSpec = harness.OpenLoopSpec

// LatencyStats is the open-loop service-time block of a Result:
// nearest-rank p50/p95/p99, offered vs achieved load, and the
// transaction-merging counters that explain them.
type LatencyStats = harness.LatencyStats

// RunOpenLoop drives an open-loop Poisson client population against a
// served backend (tm/serve) and returns a Result whose Latency block
// is populated.
func RunOpenLoop(spec OpenLoopSpec) (Result, error) { return harness.RunOpenLoop(spec) }

// WriteLatencyTable prints the human-readable open-loop latency table.
func WriteLatencyTable(w io.Writer, results []Result) { harness.WriteLatencyTable(w, results) }

// Report is the diffable JSON artifact of a benchmark run.
type Report = harness.Report

// ReportSchema is the schema tag WriteJSON stamps on every report;
// consumers (cmd/benchdiff, CI gates) refuse reports tagged otherwise.
const ReportSchema = harness.ReportSchema

// Machine describes the host a report was produced on.
type Machine = harness.Machine

// ResultJSON is one flattened result row of a Report.
type ResultJSON = harness.ResultJSON

// PhaseJSON is one per-phase statistics row of a ResultJSON, present
// when the measured profile declared phases (tm.WithPhases).
type PhaseJSON = harness.PhaseJSON

// NewReport wraps results into a Report stamped with this machine.
func NewReport(results []Result) Report { return harness.NewReport(results) }

// WriteJSON writes the report as indented JSON.
func WriteJSON(w io.Writer, rep Report) error { return harness.WriteJSON(w, rep) }

// ReadJSON parses a report written by WriteJSON.
func ReadJSON(r io.Reader) (Report, error) { return harness.ReadJSON(r) }

// WriteSweep prints the human-readable scaling-curve table.
func WriteSweep(w io.Writer, results []Result) { harness.WriteSweep(w, results) }

// Improvement returns the percent performance improvement of opt over
// base: positive means opt is faster.
func Improvement(base, opt Result) float64 { return harness.Improvement(base, opt) }

// MeasureBreakdown runs the workload single-threaded in counting mode
// and returns the read, write, and combined Fig. 8 classifications.
func MeasureBreakdown(workload string) (read, write, all Breakdown, err error) {
	return harness.MeasureBreakdown(workload)
}

// MeasureRemoval runs the workload single-threaded under each capture
// technique and reports the portion of barriers each one removed.
func MeasureRemoval(workload string) (Removal, error) {
	return harness.MeasureRemoval(workload)
}

// Benches returns the STAMP roster in the paper's Table 1 order.
func Benches() []string { return harness.Benches() }

// AllWorkloads returns every workload registered in this process: the
// STAMP roster first, then other scenarios sorted by name.
func AllWorkloads() []string { return harness.AllWorkloads() }

// CaptureStat is one row of the capture/elision report.
type CaptureStat = harness.CaptureStat

// CaptureConfigs returns the profile set of the capture report: each
// elision mechanism alone, both combined, and the definitely-shared
// extension.
func CaptureConfigs() []tm.Profile { return harness.CaptureConfigs() }

// MeasureCaptureStats runs the workload single-threaded under each
// profile and returns one capture/elision row per profile.
func MeasureCaptureStats(workload string, profiles []tm.Profile) ([]CaptureStat, error) {
	return harness.MeasureCaptureStats(workload, profiles)
}

// WriteCaptureStats prints the capture/elision table.
func WriteCaptureStats(w io.Writer, rows []CaptureStat) {
	harness.WriteCaptureStats(w, rows)
}

// PhaseRegimeSpecs returns the canonical publish/cursor phase
// declaration every phase-hint A/B builds on: publish-shaped
// transactions map to the capture-checking engines, cursor-shaped ones
// to the definitely-shared bypass.
func PhaseRegimeSpecs() []tm.PhaseSpec { return harness.PhaseRegimeSpecs() }

// Fig10Configs returns the profiles compared in Fig. 10 / Fig. 11(a).
func Fig10Configs() []tm.Profile { return harness.Fig10Configs() }

// Fig11bConfigs returns the profiles of Fig. 11(b).
func Fig11bConfigs() []tm.Profile { return harness.Fig11bConfigs() }

// Table1Configs returns the profiles of Table 1 / Table 2.
func Table1Configs() []tm.Profile { return harness.Table1Configs() }

// WriteTable1 prints the abort-to-commit ratio table.
func WriteTable1(w io.Writer, rows map[string]map[string]float64, configs []string, threads int) {
	harness.WriteTable1(w, rows, configs, threads)
}

// WriteTable2 prints the run-to-run variation table.
func WriteTable2(w io.Writer, rows map[string]map[string]float64, configs []string, threads, runs int) {
	harness.WriteTable2(w, rows, configs, threads, runs)
}

// WriteImprovements prints a Fig. 10 / Fig. 11 style improvement
// table.
func WriteImprovements(w io.Writer, title string, rows map[string]map[string]float64, configs []string) {
	harness.WriteImprovements(w, title, rows, configs)
}

// WriteFig8 prints the Fig. 8 barrier-breakdown table for one access
// class ("reads", "writes" or "all").
func WriteFig8(w io.Writer, class string, rows []Breakdown) {
	harness.WriteFig8(w, class, rows)
}

// WriteFig9 prints the Fig. 9 barrier-removal table for reads or
// writes.
func WriteFig9(w io.Writer, class string, rows []Removal) {
	harness.WriteFig9(w, class, rows)
}
