package tm

// White-box tests: the functional options and preset profiles must
// build exactly the stm.OptConfig values the engine's own constructors
// produce, so results stay comparable with the paper's configuration
// names.

import (
	"reflect"
	"testing"

	"repro/internal/capture"
	"repro/internal/mem"
	"repro/internal/stm"
)

func buildCfg(t *testing.T, opts ...Option) stm.OptConfig {
	t.Helper()
	_, cfg := build(opts)
	return cfg
}

func TestPresetProfilesMatchEngineConstructors(t *testing.T) {
	cases := []struct {
		profile Profile
		want    stm.OptConfig
	}{
		{Baseline(), stm.Baseline()},
		{Counting(), stm.CountingConfig()},
		{RuntimeAll(LogTree), stm.RuntimeAll(capture.KindTree)},
		{RuntimeAll(LogArray), stm.RuntimeAll(capture.KindArray)},
		{RuntimeAll(LogFilter), stm.RuntimeAll(capture.KindFilter)},
		{RuntimeWrite(LogTree), stm.RuntimeWrite(capture.KindTree)},
		{RuntimeHeapWrite(LogFilter), stm.RuntimeHeapWrite(capture.KindFilter)},
		{CompilerElision(), stm.Compiler()},
		{RuntimeAll(LogTree).Perf(), stm.RuntimeAll(capture.KindTree).Perf()},
	}
	for _, c := range cases {
		got := buildCfg(t, c.profile.Options()...)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("profile %q built %+v, want %+v", c.profile.Name(), got, c.want)
		}
	}
}

func TestOptionFieldMapping(t *testing.T) {
	cfg := buildCfg(t,
		WithName("x"),
		WithRuntimeCapture(Checks{Stack: true}, Checks{Heap: true}),
		WithLogKind(LogArray),
		WithArrayCap(7),
		WithFilterBits(9),
		WithOrecBits(12),
		WithAnnotations(),
		WithCounting(),
		WithPerfMode(),
		WithSkipSharedChecks(),
		WithoutWAWFilter(),
	)
	want := stm.OptConfig{
		Name:             "x",
		Read:             stm.BarrierOpt{Stack: true},
		Write:            stm.BarrierOpt{Heap: true},
		LogKind:          capture.KindArray,
		ArrayCap:         7,
		FilterBits:       9,
		OrecBits:         12,
		Annotations:      true,
		Counting:         true,
		PerfMode:         true,
		SkipSharedChecks: true,
		NoWAWFilter:      true,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("built %+v, want %+v", cfg, want)
	}
	if cfg := buildCfg(t, WithCompilerElision()); !cfg.Compiler {
		t.Error("WithCompilerElision did not set Compiler")
	}
	// VerifyElision needs the precise log; the option must imply
	// Counting or the engine panics at first transaction.
	cfg = buildCfg(t, WithVerifyElision())
	if !cfg.VerifyElision || !cfg.Counting {
		t.Errorf("WithVerifyElision built %+v, want VerifyElision+Counting", cfg)
	}
	if cfg := buildCfg(t, WithEngine(EngineGeneric)); !cfg.ForceGeneric {
		t.Error("WithEngine(EngineGeneric) did not set ForceGeneric")
	}
	if cfg := buildCfg(t, WithEngine(EngineGeneric), WithEngine(EngineAuto)); cfg.ForceGeneric {
		t.Error("WithEngine(EngineAuto) did not clear ForceGeneric")
	}
}

func TestMemoryAndDefaults(t *testing.T) {
	mc, cfg := build(nil)
	if mc != mem.DefaultConfig() {
		t.Errorf("default memory = %+v", mc)
	}
	if cfg.Name != "custom" {
		t.Errorf("default name = %q", cfg.Name)
	}
	custom := MemConfig{GlobalWords: 8, HeapWords: 16, StackWords: 4, MaxThreads: 2}
	mc, _ = build([]Option{WithMemory(custom)})
	if mc != custom {
		t.Errorf("WithMemory = %+v, want %+v", mc, custom)
	}
}

func TestProfileWithDoesNotAliasBase(t *testing.T) {
	base := NewProfile("base", WithCounting())
	a := base.With(WithPerfMode())
	b := base.With(WithOrecBits(8))
	acfg := buildCfg(t, a.Options()...)
	bcfg := buildCfg(t, b.Options()...)
	if acfg.OrecBits != 0 || !acfg.PerfMode {
		t.Errorf("profile a contaminated: %+v", acfg)
	}
	if bcfg.PerfMode || bcfg.OrecBits != 8 {
		t.Errorf("profile b contaminated: %+v", bcfg)
	}
	if a.Name() != "base" || b.Named("renamed").Name() != "renamed" {
		t.Error("profile naming broken")
	}
}
