// Package stamp defines the benchmark interface shared by the Go
// ports of the STAMP 0.9.9 applications the paper evaluates, plus the
// registry the harness, CLI tools, and benches enumerate.
//
// Each port preserves its original's *transactional structure* — which
// data structures are shared, what each transaction reads and writes,
// where memory is allocated inside transactions, and which accesses
// the original hand-instrumented (TM_* vs P_* variants) — because
// those properties determine the paper's barrier-mix and performance
// results. Input sizes are scaled to laptop scale; all generators are
// deterministic. Substitutions are documented per benchmark.
//
// The ports are written against the low-level engine (internal/stm);
// Register bridges each one into the public tm workload registry, so
// the harness and bench tools resolve STAMP and external scenarios
// through the same tm.NewWorkload lookup.
package stamp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mem"
	"repro/internal/stm"
	"repro/tm"
)

// Benchmark is one STAMP application configuration.
type Benchmark interface {
	// Name is the STAMP-style name (e.g. "vacation-high").
	Name() string
	// MemConfig sizes the simulated address space for this workload.
	MemConfig() mem.Config
	// Setup populates initial data single-threadedly on rt's thread 0.
	Setup(rt *stm.Runtime)
	// Run executes the timed parallel phase on nthreads workers.
	Run(rt *stm.Runtime, nthreads int)
	// Validate checks post-run invariants (run after Run returns).
	Validate(rt *stm.Runtime) error
}

// Factory creates a fresh benchmark instance (instances are single
// use: Setup/Run/Validate once each).
type Factory func() Benchmark

var registry []struct {
	name string
	f    Factory
}

// tmWorkload adapts a Benchmark to the public tm.Workload interface by
// unwrapping the engine runtime the port was written against.
type tmWorkload struct{ b Benchmark }

func (w tmWorkload) Name() string                  { return w.b.Name() }
func (w tmWorkload) MemConfig() tm.MemConfig       { return w.b.MemConfig() }
func (w tmWorkload) Setup(rt *tm.Runtime)          { w.b.Setup(rt.Unwrap()) }
func (w tmWorkload) Run(rt *tm.Runtime, n int)     { w.b.Run(rt.Unwrap(), n) }
func (w tmWorkload) Validate(rt *tm.Runtime) error { return w.b.Validate(rt.Unwrap()) }

// Register adds a benchmark factory to the registry and bridges it
// into the public tm workload registry, carrying a one-line
// description for listings. It is called from the benchmark packages'
// init functions.
func Register(name, desc string, f Factory) {
	for _, e := range registry {
		if e.name == name {
			panic("stamp: duplicate benchmark " + name)
		}
	}
	registry = append(registry, struct {
		name string
		f    Factory
	}{name, f})
	tm.RegisterWorkloadDesc(name, desc, func() tm.Workload { return tmWorkload{f()} })
}

// Names returns the registered benchmark names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// New instantiates a registered benchmark. An unknown name is an
// error listing every registered name, so a typo in a -bench flag
// shows what is available.
func New(name string) (Benchmark, error) {
	for _, e := range registry {
		if e.name == name {
			return e.f(), nil
		}
	}
	names := Names()
	sort.Strings(names)
	return nil, fmt.Errorf("stamp: unknown benchmark %q (registered: %s)",
		name, strings.Join(names, ", "))
}

// RunParallel executes worker on nthreads goroutines, each bound to
// its own stm.Thread, and waits for all of them.
func RunParallel(rt *stm.Runtime, nthreads int, worker func(th *stm.Thread, tid int, ntotal int)) {
	var wg sync.WaitGroup
	for i := 0; i < nthreads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			worker(rt.Thread(tid), tid, nthreads)
		}(i)
	}
	wg.Wait()
}
