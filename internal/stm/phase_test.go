package stm

import (
	"sync"
	"testing"

	"repro/internal/capture"
)

// phasedBaseline returns the canonical two-phase configuration the
// tests drive: a counting baseline whose "publish" phase compiles the
// capture-checking engine and whose "cursor" phase compiles the
// definitely-shared bypass.
func phasedBaseline() OptConfig {
	cursor := Baseline()
	cursor.SkipSharedChecks = true
	cfg := Baseline()
	cfg.Phases = []PhaseConfig{
		{Kind: "publish", Cfg: RuntimeAll(capture.KindTree)},
		{Kind: "cursor", Cfg: cursor},
	}
	return cfg
}

// TestPhaseCompilation pins the engine table: one engine per declared
// phase, kind lookup, the "+phases" marker on the summary name, and
// hint semantics for undeclared kinds.
func TestPhaseCompilation(t *testing.T) {
	rt := newRT(phasedBaseline())
	if got := rt.Engine(); got != "counting+phases" {
		t.Errorf("Engine() = %q, want counting+phases", got)
	}
	if got := rt.EngineFor(""); got != "counting" {
		t.Errorf("EngineFor(\"\") = %q, want counting", got)
	}
	// Instrumented profiles keep the counting chain regardless of the
	// phase's barrier mix; the perf build compiles the specializations.
	if got := rt.EngineFor("publish"); got != "counting" {
		t.Errorf("EngineFor(publish) = %q", got)
	}
	if kinds := rt.PhaseKinds(); len(kinds) != 2 || kinds[0] != "publish" || kinds[1] != "cursor" {
		t.Errorf("PhaseKinds = %v", kinds)
	}
	if got := rt.EngineFor("no-such-phase"); got != "counting" {
		t.Errorf("EngineFor(unknown) = %q, want the default engine", got)
	}

	perf := phasedBaseline().Perf()
	perf.Phases[0].Cfg = perf.Phases[0].Cfg.Perf()
	perf.Phases[1].Cfg = perf.Phases[1].Cfg.Perf()
	prt := newRT(perf)
	if got := prt.EngineFor("publish"); got != "perf-rw-stack-heap-tree" {
		t.Errorf("perf EngineFor(publish) = %q", got)
	}
	if got := prt.EngineFor("cursor"); got != "perf-skipshared" {
		t.Errorf("perf EngineFor(cursor) = %q", got)
	}

	// The engine-force knob pins every phase, not just the default.
	forced := perf
	forced.ForceGeneric = true
	frt := newRT(forced)
	for _, kind := range []string{"", "publish", "cursor"} {
		if got := frt.EngineFor(kind); got != "generic" {
			t.Errorf("forced EngineFor(%q) = %q, want generic", kind, got)
		}
	}
}

func TestPhaseDeclarationValidation(t *testing.T) {
	expectPanic := func(name string, cfg OptConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New did not panic", name)
			}
		}()
		newRT(cfg)
	}
	dup := Baseline()
	dup.Phases = []PhaseConfig{{Kind: "a", Cfg: Baseline()}, {Kind: "a", Cfg: Baseline()}}
	expectPanic("duplicate kind", dup)
	empty := Baseline()
	empty.Phases = []PhaseConfig{{Kind: "", Cfg: Baseline()}}
	expectPanic("empty kind", empty)
	badVerify := Baseline()
	bad := Baseline()
	bad.VerifyElision = true // without Counting
	badVerify.Phases = []PhaseConfig{{Kind: "v", Cfg: bad}}
	expectPanic("verify without counting", badVerify)
}

// TestEnterPhaseBoundaries pins the switching rule: outside a
// transaction the switch is immediate; inside one it is deferred until
// the top-level transaction has ended, and the engine never changes
// mid-transaction.
func TestEnterPhaseBoundaries(t *testing.T) {
	rt := newRT(phasedBaseline())
	th := rt.Thread(0)
	if th.Phase() != "" {
		t.Fatalf("initial phase %q", th.Phase())
	}
	th.EnterPhase("publish")
	if th.Phase() != "publish" {
		t.Errorf("immediate switch failed: phase %q", th.Phase())
	}

	g := rt.Space().AllocGlobal(1)
	th.Atomic(func(tx *Tx) {
		th.EnterPhase("cursor")
		if th.Phase() != "publish" {
			t.Errorf("phase switched mid-transaction to %q", th.Phase())
		}
		if th.phase != 1 || th.pendingPhase != 2 {
			t.Errorf("phase/pending = %d/%d, want 1/2", th.phase, th.pendingPhase)
		}
		tx.Store(g, 7, AccShared)
	})
	if th.Phase() != "cursor" {
		t.Errorf("deferred switch not applied after commit: phase %q", th.Phase())
	}

	// A switch hinted inside an aborted transaction still lands.
	th.EnterPhase("publish")
	th.Atomic(func(tx *Tx) {
		th.EnterPhase("cursor")
		tx.UserAbort()
	})
	if th.Phase() != "cursor" {
		t.Errorf("deferred switch lost on user abort: phase %q", th.Phase())
	}

	// Undeclared kinds fall back to the default phase.
	th.EnterPhase("nope")
	if th.Phase() != "" {
		t.Errorf("unknown kind left phase %q, want default", th.Phase())
	}
	rt.Validate()
}

// TestPhaseStatsAttribution runs a known transaction mix in each phase
// and demands the per-phase rows account for exactly their own
// transactions, with Stats() the sum of all rows and ResetStats
// clearing every row.
func TestPhaseStatsAttribution(t *testing.T) {
	rt := newRT(phasedBaseline())
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(2)

	for i := 0; i < 3; i++ { // default phase
		th.Atomic(func(tx *Tx) { tx.Store(g, uint64(i), AccShared) })
	}
	th.EnterPhase("publish")
	for i := 0; i < 5; i++ {
		th.Atomic(func(tx *Tx) {
			p := tx.Alloc(2)
			tx.Store(p, uint64(i), AccFresh) // runtime-captured in this phase
			tx.Free(p)
		})
	}
	th.EnterPhase("cursor")
	for i := 0; i < 2; i++ {
		th.Atomic(func(tx *Tx) { tx.Store(g+1, uint64(i), AccShared) })
	}

	ps := rt.PhaseStats()
	if len(ps) != 3 {
		t.Fatalf("PhaseStats rows = %d, want 3", len(ps))
	}
	if ps[0].Kind != "" || ps[1].Kind != "publish" || ps[2].Kind != "cursor" {
		t.Fatalf("row kinds = %q,%q,%q", ps[0].Kind, ps[1].Kind, ps[2].Kind)
	}
	if ps[0].Stats.Commits != 3 || ps[1].Stats.Commits != 5 || ps[2].Stats.Commits != 2 {
		t.Errorf("per-phase commits = %d,%d,%d, want 3,5,2",
			ps[0].Stats.Commits, ps[1].Stats.Commits, ps[2].Stats.Commits)
	}
	if ps[1].Stats.WriteElHeap == 0 {
		t.Error("publish phase elided no captured-heap writes")
	}
	if ps[0].Stats.WriteElHeap != 0 || ps[2].Stats.WriteElHeap != 0 {
		t.Error("non-capture phases recorded heap elisions")
	}
	if ps[2].Stats.WriteSkipShared == 0 {
		t.Error("cursor phase bypassed no definitely-shared checks")
	}
	var sum Stats
	for i := range ps {
		sum.Add(&ps[i].Stats)
	}
	if total := rt.Stats(); total != sum {
		t.Errorf("Stats() %+v != sum of phase rows %+v", total, sum)
	}

	rt.ResetStats()
	for _, row := range rt.PhaseStats() {
		if row.Stats != (Stats{}) {
			t.Errorf("ResetStats left phase %q counters: %+v", row.Kind, row.Stats)
		}
	}
}

// TestPhaseSwitchStress is the -race pin for the switch-only-between-
// transactions rule: every thread flips its own phase continuously —
// before, between, and inside transactions — while all threads hammer
// shared counters. The final sums must be exact and the per-phase
// commit rows must account for every transaction.
func TestPhaseSwitchStress(t *testing.T) {
	const threads, perThread = 4, 3000
	rt := newRT(phasedBaseline())
	g := rt.Space().AllocGlobal(2)
	kinds := []string{"", "publish", "cursor", "unknown-kind"}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := rt.Thread(tid)
			for i := 0; i < perThread; i++ {
				if i%3 == 0 {
					th.EnterPhase(kinds[(tid+i)%len(kinds)])
				}
				th.Atomic(func(tx *Tx) {
					if i%5 == 0 {
						th.EnterPhase(kinds[(tid+i+1)%len(kinds)]) // deferred
					}
					tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
					p := tx.Alloc(1)
					tx.Store(p, uint64(i), AccFresh)
					tx.Free(p)
					tx.Store(g+1, tx.Load(g+1, AccShared)+2, AccShared)
				})
			}
		}(tid)
	}
	wg.Wait()
	if got := rt.Space().Load(g); got != threads*perThread {
		t.Errorf("counter = %d, want %d", got, threads*perThread)
	}
	if got := rt.Space().Load(g + 1); got != 2*threads*perThread {
		t.Errorf("second counter = %d, want %d", got, 2*threads*perThread)
	}
	var commits uint64
	for _, row := range rt.PhaseStats() {
		commits += row.Stats.Commits
	}
	if commits != threads*perThread {
		t.Errorf("phase rows account for %d commits, want %d", commits, threads*perThread)
	}
	rt.Validate()
}
