package txlib

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/stm"
)

// Ring is a fixed-capacity circular slot array indexed by monotonically
// growing sequence numbers (a broker-style retention window, not a
// FIFO like Queue: the caller owns the head/tail sequences and the ring
// only maps seq → slot). Slot i holds the element published at every
// sequence s with s % capacity == i, so a window of the most recent
// `capacity` sequences is addressable at any time.
//
// Layout:
//
//	header: [0] cap  [1] data ptr
const (
	rgCap  = 0
	rgData = 1
	rgHdr  = 2
)

// NewRing allocates a ring with the given capacity. A capacity below 1
// is a caller bug — a silently clamped ring would retain one message
// where the caller sized for zero or more — so it panics loudly.
// The slot array is freshly allocated, so its initial all-zero state
// needs no stores.
func NewRing(tx *stm.Tx, capacity int) mem.Addr {
	if capacity < 1 {
		panic(fmt.Sprintf("txlib: NewRing capacity %d, need at least 1", capacity))
	}
	r := tx.Alloc(rgHdr)
	d := tx.Alloc(capacity)
	tx.Store(r+rgCap, uint64(capacity), stm.AccFresh)
	tx.StoreAddr(r+rgData, d, stm.AccFresh)
	return r
}

// RingCap returns the ring's fixed capacity.
func RingCap(tx *stm.Tx, r mem.Addr, mode stm.Acc) int {
	return int(tx.Load(r+rgCap, mode))
}

// RingGet returns the element in the slot for sequence seq.
func RingGet(tx *stm.Tx, r mem.Addr, seq uint64, mode stm.Acc) uint64 {
	capWords := tx.Load(r+rgCap, mode)
	d := tx.LoadAddr(r+rgData, mode)
	return tx.Load(d+mem.Addr(seq%capWords), mode)
}

// RingSet stores val into the slot for sequence seq, overwriting
// whatever older sequence mapped there.
func RingSet(tx *stm.Tx, r mem.Addr, seq uint64, val uint64, mode stm.Acc) {
	capWords := tx.Load(r+rgCap, mode)
	d := tx.LoadAddr(r+rgData, mode)
	tx.Store(d+mem.Addr(seq%capWords), val, mode)
}

// RingFree frees the slot array and header.
func RingFree(tx *stm.Tx, r mem.Addr, mode stm.Acc) {
	tx.Free(tx.LoadAddr(r+rgData, mode))
	tx.Free(r)
}

// RingView is a per-transaction snapshot of a ring's header: the
// capacity word and the slot-array pointer, loaded once. RingGet and
// RingSet reload both transactionally on every slot access — two extra
// barriers per message in a broker's hottest loops — but within one
// transaction the header is immutable (the ring's capacity and slot
// array never change after NewRing), so a loop over slots should take
// the snapshot once and go through it. The snapshot is only valid
// inside the transaction (or attempt) that took it: the header loads
// are part of that transaction's read set, and a retry must re-snapshot.
type RingView struct {
	Cap  uint64
	Data mem.Addr
}

// RingSnapshot loads the ring header once and returns the view.
func RingSnapshot(tx *stm.Tx, r mem.Addr, mode stm.Acc) RingView {
	return RingView{
		Cap:  tx.Load(r+rgCap, mode),
		Data: tx.LoadAddr(r+rgData, mode),
	}
}

// Get returns the element in the slot for sequence seq — one barrier,
// against RingGet's three.
func (v RingView) Get(tx *stm.Tx, seq uint64, mode stm.Acc) uint64 {
	return tx.Load(v.Data+mem.Addr(seq%v.Cap), mode)
}

// Set stores val into the slot for sequence seq, overwriting whatever
// older sequence mapped there.
func (v RingView) Set(tx *stm.Tx, seq, val uint64, mode stm.Acc) {
	tx.Store(v.Data+mem.Addr(seq%v.Cap), val, mode)
}
