package stm

// Property-based tests: randomized operation sequences executed
// through the STM must behave exactly like a reference memory model,
// under every optimization configuration.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/capture"
	"repro/internal/mem"
)

// TestPropertySerialEquivalence drives one thread with random
// transactional programs (loads, stores, allocations, frees, nested
// blocks, user aborts) and compares every load and the final memory
// against a Go-map reference executed with the same decisions.
func TestPropertySerialEquivalence(t *testing.T) {
	cfgs := allConfigs()
	f := func(seed int64, nops uint8) bool {
		for _, cfg := range cfgs {
			if !serialEquivalent(t, cfg, seed, int(nops)) {
				t.Logf("config %s failed (seed %d, %d ops)", cfg.Name, seed, nops)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func serialEquivalent(t *testing.T, cfg OptConfig, seed int64, nops int) bool {
	rng := rand.New(rand.NewSource(seed))
	rt := newRT(cfg)
	th := rt.Thread(0)
	base := rt.Space().AllocGlobal(32)
	ref := map[mem.Addr]uint64{} // reference for the global slots
	var refTx map[mem.Addr]uint64

	ok := true
	for op := 0; op < nops; op++ {
		abort := rng.Intn(4) == 0
		nsteps := 1 + rng.Intn(8)
		// Pre-draw all randomness so retries (which cannot happen
		// single-threaded, but still) replay identically.
		type step struct {
			kind int
			slot mem.Addr
			val  uint64
		}
		steps := make([]step, nsteps)
		for i := range steps {
			steps[i] = step{rng.Intn(4), mem.Addr(rng.Intn(32)), rng.Uint64() % 1000}
		}
		refTx = map[mem.Addr]uint64{}
		for k, v := range ref {
			refTx[k] = v
		}
		committed := th.Atomic(func(tx *Tx) {
			var scratch mem.Addr
			for _, s := range steps {
				switch s.kind {
				case 0: // shared store
					tx.Store(base+s.slot, s.val, AccShared)
					refTx[s.slot] = s.val
				case 1: // shared load must match reference
					got := tx.Load(base+s.slot, AccShared)
					if got != refTx[s.slot] {
						ok = false
					}
				case 2: // captured scratch allocation
					scratch = tx.Alloc(2)
					tx.Store(scratch, s.val, AccFresh)
					if tx.Load(scratch, AccFresh) != s.val {
						ok = false
					}
				case 3:
					if scratch != mem.Nil {
						tx.Free(scratch)
						scratch = mem.Nil
					}
				}
			}
			if abort {
				tx.UserAbort()
			}
		})
		if committed != !abort {
			t.Logf("committed=%v abort=%v", committed, abort)
			return false
		}
		if committed {
			ref = refTx
		}
		// Memory must equal the reference between transactions.
		for slot, want := range ref {
			if got := rt.Space().Load(base + slot); got != want {
				t.Logf("slot %d = %d, want %d", slot, got, want)
				return false
			}
		}
	}
	rt.Validate()
	return ok
}

// TestPropertyNestedRollback randomizes nesting structure: inner
// transactions may abort; the reference tracks the savepoint
// semantics. A partial abort bumps the released ownership records
// (required for ABA safety against zombie readers), which can force
// the *outer* transaction to re-validate and retry — so the body
// rebuilds its reference model from scratch on every attempt, exactly
// like the register checkpointing real transactional code needs.
func TestPropertyNestedRollback(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := newRT(RuntimeAll(capture.KindTree))
		th := rt.Thread(0)
		base := rt.Space().AllocGlobal(8)

		// Pre-draw all decisions so retries replay the same blocks.
		type blk struct {
			slot       mem.Addr
			val        uint64
			abortInner bool
		}
		blocks := make([]blk, 3)
		for i := range blocks {
			blocks[i] = blk{mem.Addr(rng.Intn(8)), rng.Uint64() % 100, rng.Intn(2) == 0}
		}

		var ref []uint64
		mismatch := false
		th.Atomic(func(tx *Tx) {
			ref = make([]uint64, 8) // reset per attempt (retry-safe)
			for _, b := range blocks {
				committed := th.Atomic(func(tx2 *Tx) {
					tx2.Store(base+b.slot, b.val, AccShared)
					if b.abortInner {
						tx2.UserAbort()
					}
				})
				if committed != !b.abortInner {
					mismatch = true
				}
				if committed {
					ref[b.slot] = b.val
				}
				// Within the outer transaction, reads see the nested
				// outcome.
				for i := 0; i < 8; i++ {
					if got := tx.Load(base+mem.Addr(i), AccShared); got != ref[i] {
						t.Logf("nested slot %d = %d, want %d", i, got, ref[i])
						mismatch = true
					}
				}
			}
		})
		if mismatch {
			return false
		}
		for i := 0; i < 8; i++ {
			if rt.Space().Load(base+mem.Addr(i)) != ref[i] {
				return false
			}
		}
		rt.Validate()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOrecEncoding checks the ownership-record word encoding
// round-trips for arbitrary owners and versions.
func TestPropertyOrecEncoding(t *testing.T) {
	if err := quick.Check(func(id uint16, version uint32) bool {
		lw := orecLockWord(int(id))
		if !orecLocked(lw) || orecOwner(lw) != int(id) {
			return false
		}
		vw := uint64(version) << 1
		return !orecLocked(vw) && orecVersion(vw) == uint64(version)
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyWAWFilterNeverLosesUndo: whatever the write pattern, an
// aborted transaction must restore the exact pre-transaction state.
func TestPropertyWAWFilterNeverLosesUndo(t *testing.T) {
	f := func(seed int64, pattern []uint8) bool {
		if len(pattern) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		rt := newRT(Baseline())
		th := rt.Thread(0)
		base := rt.Space().AllocGlobal(16)
		before := make([]uint64, 16)
		for i := range before {
			before[i] = rng.Uint64()
			rt.Space().Store(base+mem.Addr(i), before[i])
		}
		th.Atomic(func(tx *Tx) {
			for _, p := range pattern {
				slot := mem.Addr(p % 16)
				tx.Store(base+slot, rng.Uint64(), AccShared)
			}
			tx.UserAbort()
		})
		for i := range before {
			if rt.Space().Load(base+mem.Addr(i)) != before[i] {
				return false
			}
		}
		rt.Validate()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCapturedWritesInvisibleUntilCommit: a concurrent
// observer never sees a captured block's contents before the
// publishing transaction commits.
func TestPropertyCapturedWritesInvisibleUntilCommit(t *testing.T) {
	rt := newRT(RuntimeAll(capture.KindTree))
	head := rt.Space().AllocGlobal(1)
	writer := rt.Thread(0)
	reader := rt.Thread(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			writer.Atomic(func(tx *Tx) {
				p := tx.Alloc(2)
				tx.Store(p, uint64(i)+1, AccFresh)   // payload
				tx.Store(p+1, uint64(i)+1, AccFresh) // mirror
				tx.StoreAddr(head, p, AccShared)     // publish
			})
		}
	}()
	for {
		select {
		case <-done:
			rt.Validate()
			return
		default:
		}
		reader.Atomic(func(tx *Tx) {
			p := tx.LoadAddr(head, AccShared)
			if p == mem.Nil {
				return
			}
			a := tx.Load(p, AccShared)
			b := tx.Load(p+1, AccShared)
			if a != b || a == 0 {
				t.Errorf("observed half-initialized block: %d vs %d", a, b)
			}
		})
	}
}
