package intruder

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/stm"
)

func small() Config {
	return Config{Name: "intruder-test", Flows: 256, MaxFrags: 5, WordsPerFrag: 3, AttackPct: 20, Seed: 13}
}

func runOne(t *testing.T, cfg Config, opt stm.OptConfig, threads int) (*B, *stm.Runtime) {
	t.Helper()
	b := NewWith(cfg)
	rt := stm.New(b.MemConfig(), opt)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("validate: %v", err)
	}
	rt.Validate()
	return b, rt
}

func TestSerialDetectsAllAttacks(t *testing.T) {
	b, _ := runOne(t, small(), stm.Baseline(), 1)
	if b.nPlanted == 0 {
		t.Fatal("no attacks planted; test is vacuous")
	}
	if got := b.nDetected.Load(); got != int64(b.nPlanted) {
		t.Errorf("detected %d, planted %d", got, b.nPlanted)
	}
}

func TestParallelPipeline(t *testing.T) {
	for _, opt := range []stm.OptConfig{stm.Baseline(), stm.RuntimeAll(capture.KindArray), stm.Compiler()} {
		runOne(t, small(), opt, 6)
	}
}

func TestNoAttacks(t *testing.T) {
	cfg := small()
	cfg.AttackPct = 0
	b, _ := runOne(t, cfg, stm.Baseline(), 2)
	if b.nPlanted != 0 || b.nDetected.Load() != 0 {
		t.Errorf("planted %d detected %d, want 0/0", b.nPlanted, b.nDetected.Load())
	}
}

func TestAllAttacks(t *testing.T) {
	cfg := small()
	cfg.AttackPct = 100
	b, _ := runOne(t, cfg, stm.Baseline(), 2)
	if b.nPlanted != cfg.Flows {
		t.Errorf("planted %d, want every flow", b.nPlanted)
	}
}

func TestSingleFragmentFlows(t *testing.T) {
	cfg := small()
	cfg.MaxFrags = 1 // every flow completes on its first fragment
	runOne(t, cfg, stm.Baseline(), 4)
}

// TestReassemblyReclaimsState: after the run, every per-flow
// reassembly structure must have been torn down transactionally.
func TestReassemblyReclaimsState(t *testing.T) {
	_, rt := runOne(t, small(), stm.RuntimeAll(capture.KindTree), 4)
	s := rt.Stats()
	if s.TxAllocs == 0 || s.TxFrees == 0 {
		t.Errorf("allocs=%d frees=%d; expected reassembly churn", s.TxAllocs, s.TxFrees)
	}
}
