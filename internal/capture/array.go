package capture

import "repro/internal/mem"

// Array is the bounded allocation log of the paper's Fig. 6: an
// unsorted, fixed-capacity array of ranges sized to one cache line so
// a containment probe touches a single line. When the array is full,
// further ranges are silently dropped — a conservative false negative,
// exploiting that capture analysis "does not have to be accurate as
// long as it is conservative".
//
// The paper's observation (Sec. 4.1) is that most transactions perform
// few allocations, so tracking only the first handful captures nearly
// the full elision potential (yada being the exception).
type Array struct {
	start []mem.Addr
	end   []mem.Addr
	n     int
	drops uint64
}

// NewArray creates a bounded log holding at most cap ranges.
func NewArray(capacity int) *Array {
	if capacity <= 0 {
		panic("capture: Array capacity must be positive")
	}
	return &Array{
		start: make([]mem.Addr, capacity),
		end:   make([]mem.Addr, capacity),
	}
}

// Cap returns the array capacity in ranges.
func (a *Array) Cap() int { return len(a.start) }

// Len reports the number of tracked ranges.
func (a *Array) Len() int { return a.n }

// Drops reports how many Inserts were dropped because the array was
// full (observability for the ablation benchmarks).
func (a *Array) Drops() uint64 { return a.drops }

// Insert records [start, end) if a slot is free, else drops it.
func (a *Array) Insert(start, end mem.Addr) {
	if start >= end {
		panic("capture: Array.Insert: empty range")
	}
	if a.n == len(a.start) {
		a.drops++
		return
	}
	a.start[a.n] = start
	a.end[a.n] = end
	a.n++
}

// Contains reports whether [addr, addr+size) lies in a tracked range.
func (a *Array) Contains(addr mem.Addr, size int) bool {
	last := addr + mem.Addr(size)
	for i := 0; i < a.n; i++ {
		if addr >= a.start[i] && last <= a.end[i] {
			return true
		}
	}
	return false
}

// Remove forgets the range that starts at start, if tracked.
func (a *Array) Remove(start, end mem.Addr) {
	for i := 0; i < a.n; i++ {
		if a.start[i] == start {
			a.n--
			a.start[i] = a.start[a.n]
			a.end[i] = a.end[a.n]
			return
		}
	}
	_ = end
}

// Clear empties the log.
func (a *Array) Clear() { a.n = 0 }
