package dist

import (
	"testing"

	"repro/internal/prng"
)

func TestZipfSkewAndBounds(t *testing.T) {
	const n = 1024
	z := NewZipf(n, 0.9)
	r := prng.New(11)
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		k := z.Sample(r)
		if k < 0 || k >= n {
			t.Fatalf("sample %d out of [0,%d)", k, n)
		}
		counts[k]++
	}
	var head int
	for i := 0; i < n/100; i++ { // hottest 1% of ranks
		head += counts[i]
	}
	if head < 30000 {
		t.Errorf("zipf(0.9): hottest 1%% drew %d of 100000 samples, want a heavy head", head)
	}
}

// TestRankToKeyBijection: the scatter must cover the key space exactly
// once, for several power-of-two sizes.
func TestRankToKeyBijection(t *testing.T) {
	for _, n := range []int{2, 64, 1024} {
		seen := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			seen[RankToKey(i, n)] = true
		}
		if len(seen) != n {
			t.Errorf("RankToKey maps %d ranks to %d keys", n, len(seen))
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(256, 0.85)
	a, b := prng.New(5), prng.New(5)
	for i := 0; i < 1000; i++ {
		if z.Sample(a) != z.Sample(b) {
			t.Fatal("identical seeds diverged")
		}
	}
}
