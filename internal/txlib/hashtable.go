package txlib

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Hashtable is a chained hash table keyed by arbitrary word sequences
// stored in simulated memory (STAMP's hashtable.c, as used by genome's
// segment-deduplication phase). The bucket count is fixed at creation.
//
// Layout:
//
//	header: [0] buckets ptr  [1] nbuckets  [2] size
//	entry:  [0] next  [1] hash  [2] keyPtr  [3] keyWords  [4] data
const (
	htBuckets  = 0
	htNBuckets = 1
	htSize     = 2
	htHdr      = 3

	heNext     = 0
	heHash     = 1
	heKeyPtr   = 2
	heKeyWords = 3
	heData     = 4
	heSize     = 5
)

// NewHashtable allocates a table with nbuckets chains.
func NewHashtable(tx *stm.Tx, nbuckets int) mem.Addr {
	ht := tx.Alloc(htHdr)
	b := tx.Alloc(nbuckets)
	// The bucket array is freshly allocated: its initializing state is
	// already zero (empty chains), so only the header needs stores.
	tx.StoreAddr(ht+htBuckets, b, stm.AccFresh)
	tx.Store(ht+htNBuckets, uint64(nbuckets), stm.AccFresh)
	tx.Store(ht+htSize, 0, stm.AccFresh)
	return ht
}

// HashWords computes the hash of a key already resident in simulated
// memory, reading it transactionally with the given mode (the key
// buffer is typically transaction-local, so these reads are captured).
func HashWords(tx *stm.Tx, key mem.Addr, words int, mode stm.Acc) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < words; i++ {
		h = (h ^ tx.Load(key+mem.Addr(i), mode)) * 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

func htBucket(tx *stm.Tx, ht mem.Addr, hash uint64, mode stm.Acc) mem.Addr {
	b := tx.LoadAddr(ht+htBuckets, mode)
	n := tx.Load(ht+htNBuckets, mode)
	return b + mem.Addr(hash%n)
}

// keyEqual compares an entry's stored key with the probe key.
func keyEqual(tx *stm.Tx, entry mem.Addr, key mem.Addr, words int, mode, keyMode stm.Acc) bool {
	if int(tx.Load(entry+heKeyWords, mode)) != words {
		return false
	}
	kp := tx.LoadAddr(entry+heKeyPtr, mode)
	for i := 0; i < words; i++ {
		if tx.Load(kp+mem.Addr(i), mode) != tx.Load(key+mem.Addr(i), keyMode) {
			return false
		}
	}
	return true
}

// HTInsertIfAbsent inserts (key, data) unless an equal key is already
// present. The key is copied into a freshly allocated buffer owned by
// the table. keyMode tags accesses to the caller's key buffer (usually
// transaction-local). Returns true if inserted.
func HTInsertIfAbsent(tx *stm.Tx, ht mem.Addr, key mem.Addr, words int, data uint64, mode, keyMode stm.Acc) bool {
	hash := HashWords(tx, key, words, keyMode)
	slot := htBucket(tx, ht, hash, mode)
	for e := tx.LoadAddr(slot, mode); e != mem.Nil; e = tx.LoadAddr(e+heNext, mode) {
		if tx.Load(e+heHash, mode) == hash && keyEqual(tx, e, key, words, mode, keyMode) {
			return false
		}
	}
	kp := tx.Alloc(words)
	for i := 0; i < words; i++ {
		tx.Store(kp+mem.Addr(i), tx.Load(key+mem.Addr(i), keyMode), stm.AccFresh)
	}
	e := tx.Alloc(heSize)
	tx.StoreAddr(e+heNext, tx.LoadAddr(slot, mode), stm.AccFresh)
	tx.Store(e+heHash, hash, stm.AccFresh)
	tx.StoreAddr(e+heKeyPtr, kp, stm.AccFresh)
	tx.Store(e+heKeyWords, uint64(words), stm.AccFresh)
	tx.Store(e+heData, data, stm.AccFresh)
	tx.StoreAddr(slot, e, mode)
	tx.Store(ht+htSize, tx.Load(ht+htSize, mode)+1, mode)
	return true
}

// HTRemove unlinks the entry with an equal key, frees the entry and
// its owned key copy, and returns the data word that was stored.
func HTRemove(tx *stm.Tx, ht mem.Addr, key mem.Addr, words int, mode, keyMode stm.Acc) (uint64, bool) {
	hash := HashWords(tx, key, words, keyMode)
	slot := htBucket(tx, ht, hash, mode)
	prevSlot := slot
	for e := tx.LoadAddr(prevSlot, mode); e != mem.Nil; e = tx.LoadAddr(prevSlot, mode) {
		if tx.Load(e+heHash, mode) == hash && keyEqual(tx, e, key, words, mode, keyMode) {
			data := tx.Load(e+heData, mode)
			tx.StoreAddr(prevSlot, tx.LoadAddr(e+heNext, mode), mode)
			tx.Free(tx.LoadAddr(e+heKeyPtr, mode))
			tx.Free(e)
			tx.Store(ht+htSize, tx.Load(ht+htSize, mode)-1, mode)
			return data, true
		}
		prevSlot = e + heNext
	}
	return 0, false
}

// HTGet returns the data stored under key.
func HTGet(tx *stm.Tx, ht mem.Addr, key mem.Addr, words int, mode, keyMode stm.Acc) (uint64, bool) {
	hash := HashWords(tx, key, words, keyMode)
	slot := htBucket(tx, ht, hash, mode)
	for e := tx.LoadAddr(slot, mode); e != mem.Nil; e = tx.LoadAddr(e+heNext, mode) {
		if tx.Load(e+heHash, mode) == hash && keyEqual(tx, e, key, words, mode, keyMode) {
			return tx.Load(e+heData, mode), true
		}
	}
	return 0, false
}

// HTContains reports whether key is present.
func HTContains(tx *stm.Tx, ht mem.Addr, key mem.Addr, words int, mode, keyMode stm.Acc) bool {
	_, ok := HTGet(tx, ht, key, words, mode, keyMode)
	return ok
}

// HTSize returns the number of entries.
func HTSize(tx *stm.Tx, ht mem.Addr, mode stm.Acc) int {
	return int(tx.Load(ht+htSize, mode))
}

// HTForEach visits every entry in unspecified order.
func HTForEach(tx *stm.Tx, ht mem.Addr, mode stm.Acc, fn func(keyPtr mem.Addr, keyWords int, data uint64) bool) {
	b := tx.LoadAddr(ht+htBuckets, mode)
	n := int(tx.Load(ht+htNBuckets, mode))
	for i := 0; i < n; i++ {
		for e := tx.LoadAddr(b+mem.Addr(i), mode); e != mem.Nil; e = tx.LoadAddr(e+heNext, mode) {
			if !fn(tx.LoadAddr(e+heKeyPtr, mode), int(tx.Load(e+heKeyWords, mode)), tx.Load(e+heData, mode)) {
				return
			}
		}
	}
}
