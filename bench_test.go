package repro

// One benchmark per table and figure of the paper's evaluation
// (Sec. 4), plus barrier microbenchmarks and ablations, all written
// against the public tm / tm/bench API. The text reports that
// accompany the paper figures are produced by cmd/barriers and
// cmd/stampbench; these benches measure the same configurations under
// testing.B so `go test -bench=.` regenerates the performance data.

import (
	"fmt"
	"testing"

	"repro/tm"
	"repro/tm/bench"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/scenarios/tmmsg"
	_ "repro/internal/stamp/all"
)

// benchThreads is the paper's maximum thread count; the Dunnington
// had 24 cores and the paper measured up to 16 threads.
const benchThreads = 16

// runBench executes one workload/profile/thread-count data point per
// iteration (setup excluded from the timer).
func runBench(b *testing.B, name string, p tm.Profile, threads int) {
	b.Helper()
	var stats tm.Stats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		app, err := tm.NewWorkload(name)
		if err != nil {
			b.Fatal(err)
		}
		rt := tm.Open(append(p.Options(), tm.WithMemory(app.MemConfig()))...)
		app.Setup(rt)
		rt.ResetStats()
		b.StartTimer()
		app.Run(rt, threads)
		b.StopTimer()
		if err := app.Validate(rt); err != nil {
			b.Fatal(err)
		}
		stats = rt.Stats()
		b.StartTimer()
	}
	b.ReportMetric(stats.AbortRatio(), "aborts/commit")
	if total := stats.ReadTotal + stats.WriteTotal; total > 0 {
		b.ReportMetric(float64(stats.ReadElided()+stats.WriteElided())/float64(total), "elided/barrier")
	}
}

// --- Figure 8 / Figure 9 (barrier mix; counting configurations) ---

// BenchmarkFig8Breakdown runs every application single-threaded in
// counting mode — the configuration that produces the Fig. 8 barrier
// breakdown (use cmd/barriers -fig 8 for the formatted table).
func BenchmarkFig8Breakdown(b *testing.B) {
	for _, name := range bench.Benches() {
		b.Run(name, func(b *testing.B) {
			runBench(b, name, tm.Counting(), 1)
		})
	}
}

// BenchmarkFig9Removal measures each elision technique single-threaded;
// the elided/barrier metric is the Fig. 9 "portion of barriers
// removed" (use cmd/barriers -fig 9 for the formatted table).
func BenchmarkFig9Removal(b *testing.B) {
	techs := map[string]tm.Profile{
		"tree":     tm.RuntimeAll(tm.LogTree),
		"array":    tm.RuntimeAll(tm.LogArray),
		"filter":   tm.RuntimeAll(tm.LogFilter),
		"compiler": tm.CompilerElision(),
	}
	for _, name := range []string{"vacation-high", "genome", "yada"} {
		for _, tech := range []string{"tree", "array", "filter", "compiler"} {
			b.Run(name+"/"+tech, func(b *testing.B) {
				runBench(b, name, techs[tech], 1)
			})
		}
	}
}

// --- Table 1 (abort-to-commit ratio at 16 threads) ---

// BenchmarkTable1 runs each application at 16 threads under the
// baseline and each optimization; the aborts/commit metric is the
// Table 1 cell (cmd/stampbench -experiment table1 prints the table).
func BenchmarkTable1(b *testing.B) {
	for _, name := range bench.Benches() {
		for _, p := range bench.Table1Configs() {
			b.Run(name+"/"+p.Name(), func(b *testing.B) {
				runBench(b, name, p, benchThreads)
			})
		}
	}
}

// --- Figure 10 (single-thread overhead/improvement) ---

// BenchmarkFig10 measures the runtime configurations and the compiler
// optimization against the baseline at one thread.
func BenchmarkFig10(b *testing.B) {
	for _, name := range bench.Benches() {
		for _, p := range bench.Fig10Configs() {
			b.Run(name+"/"+p.Name(), func(b *testing.B) {
				runBench(b, name, p.Perf(), 1)
			})
		}
	}
}

// --- Figure 11(a)/(b) (16-thread improvement) ---

// BenchmarkFig11a measures the Fig. 10 configurations at 16 threads.
func BenchmarkFig11a(b *testing.B) {
	for _, name := range []string{"vacation-high", "vacation-low", "genome", "intruder", "kmeans-high", "yada"} {
		for _, p := range bench.Fig10Configs() {
			b.Run(name+"/"+p.Name(), func(b *testing.B) {
				runBench(b, name, p.Perf(), benchThreads)
			})
		}
	}
}

// BenchmarkFig11b compares the three allocation-log implementations
// (heap-only, write-only checks) and the compiler at 16 threads.
func BenchmarkFig11b(b *testing.B) {
	for _, name := range []string{"vacation-high", "vacation-low", "genome", "intruder", "yada"} {
		for _, p := range bench.Fig11bConfigs() {
			b.Run(name+"/"+p.Name(), func(b *testing.B) {
				runBench(b, name, p.Perf(), benchThreads)
			})
		}
	}
}

// --- tmkv scenario pack (beyond the STAMP roster) ---

// tmkvVariants are the registered key-value/object-store mixes.
var tmkvVariants = []string{"tmkv", "tmkv-read", "tmkv-write"}

// BenchmarkTMKV measures the KV/object-store scenario single-threaded
// under the Fig. 10 configurations: the allocate-build-publish write
// paths make it the allocation-heaviest workload in the matrix, so the
// capture techniques shift its numbers more than most STAMP ports.
func BenchmarkTMKV(b *testing.B) {
	for _, name := range tmkvVariants {
		for _, p := range bench.Fig10Configs() {
			b.Run(name+"/"+p.Name(), func(b *testing.B) {
				runBench(b, name, p.Perf(), 1)
			})
		}
	}
}

// BenchmarkTMKVParallel measures the mixes contended at 16 threads
// under the baseline and the strongest runtime and compiler profiles.
func BenchmarkTMKVParallel(b *testing.B) {
	profiles := []tm.Profile{
		tm.Baseline(),
		tm.RuntimeAll(tm.LogTree),
		tm.CompilerElision(),
	}
	for _, name := range tmkvVariants {
		for _, p := range profiles {
			b.Run(name+"/"+p.Name(), func(b *testing.B) {
				runBench(b, name, p.Perf(), benchThreads)
			})
		}
	}
}

// --- tmmsg scenario pack (transactional message broker) ---

// tmmsgVariants are the registered broker mixes.
var tmmsgVariants = []string{"tmmsg", "tmmsg-pub", "tmmsg-sub"}

// BenchmarkTMMSG measures the broker single-threaded under the Fig. 10
// configurations. Batch publishes are pure allocate-build-publish, so
// the capture techniques move tmmsg-pub the most of any workload in
// the matrix, while tmmsg-sub's contended shared cursors barely move —
// the two regimes of the paper side by side in one scenario.
func BenchmarkTMMSG(b *testing.B) {
	for _, name := range tmmsgVariants {
		for _, p := range bench.Fig10Configs() {
			b.Run(name+"/"+p.Name(), func(b *testing.B) {
				runBench(b, name, p.Perf(), 1)
			})
		}
	}
}

// BenchmarkTMMSGParallel measures the mixes contended at 16 threads
// under the baseline and the strongest runtime and compiler profiles:
// the consumer-group cursors make this the most write-contended
// scenario in the matrix.
func BenchmarkTMMSGParallel(b *testing.B) {
	profiles := []tm.Profile{
		tm.Baseline(),
		tm.RuntimeAll(tm.LogTree),
		tm.CompilerElision(),
	}
	for _, name := range tmmsgVariants {
		for _, p := range profiles {
			b.Run(name+"/"+p.Name(), func(b *testing.B) {
				runBench(b, name, p.Perf(), benchThreads)
			})
		}
	}
}

// BenchmarkTMMSGPhased is the phase-hint A/B: each broker mix under
// one engine for the whole run (the strongest single-engine choices)
// vs phase-aware switching between the publish and cursor engines. On
// the publish-heavy mix the hinted run keeps capture checking exactly
// where it pays; on the cursor-heavy mix it removes the capture checks
// that can never elide — the regime split a single compiled engine
// must always sacrifice one side of.
func BenchmarkTMMSGPhased(b *testing.B) {
	single := []tm.Profile{
		tm.Baseline().Perf().Named("single-baseline"),
		tm.RuntimeAll(tm.LogTree).Perf().Named("single-runtime"),
	}
	hinted := []tm.Profile{
		tm.Baseline().Perf().With(tm.WithPhases(bench.PhaseRegimeSpecs()...)).Named("phased-baseline"),
		tm.RuntimeAll(tm.LogTree).Perf().With(tm.WithPhases(bench.PhaseRegimeSpecs()...)).Named("phased-runtime"),
	}
	for _, name := range tmmsgVariants {
		for i := range single {
			b.Run(name+"/"+single[i].Name(), func(b *testing.B) {
				runBench(b, name, single[i], 1)
			})
			b.Run(name+"/"+hinted[i].Name(), func(b *testing.B) {
				runBench(b, name, hinted[i], 1)
			})
		}
	}
}

// --- Served front-end (application-side transaction merging) ---

// BenchmarkServeMerge runs the served backends through the open-loop
// harness at peak load, one-transaction-per-request vs merged: the
// req/s and p95 metrics are the merge-width A/B the tmsrv sweeps
// explore in full (use cmd/tmsrv for the merge-width x worker x
// offered-load grid), and merged/req confirms the queue actually
// sustained batching rather than degenerating to width 1.
func BenchmarkServeMerge(b *testing.B) {
	p := tm.RuntimeAll(tm.LogTree).Perf()
	for _, backend := range []string{"srv-tmkv", "srv-tmmsg"} {
		for _, mw := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/mw%d", backend, mw), func(b *testing.B) {
				var last bench.Result
				for i := 0; i < b.N; i++ {
					res, err := bench.RunOpenLoop(bench.OpenLoopSpec{
						Backend:    backend,
						Profile:    p,
						Workers:    4,
						MergeWidth: mw,
						Clients:    8,
						Requests:   4096,
						Seed:       uint64(i) + 1,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Latency.Aborted > 0 {
						b.Fatalf("%d requests aborted", res.Latency.Aborted)
					}
					last = res
				}
				lat := last.Latency
				b.ReportMetric(lat.AchievedRPS, "req/s")
				b.ReportMetric(float64(lat.P95Ns), "p95-ns")
				b.ReportMetric(float64(lat.MergedReplies)/float64(lat.Requests), "merged/req")
			})
		}
	}
}

// --- Barrier engine (profile-compiled fast paths vs reference chain) ---

// BenchmarkEngineVsGeneric compares each specialized perf engine with
// the forced generic reference chain on the same profile: the delta is
// the cost of re-interpreting the optimization profile on every access,
// which the engine compilation removes.
func BenchmarkEngineVsGeneric(b *testing.B) {
	profiles := []tm.Profile{
		tm.Baseline().Perf(),
		tm.RuntimeAll(tm.LogTree).Perf(),
		tm.CompilerElision().Perf(),
	}
	for _, name := range []string{"tmkv", "vacation-low", "kmeans-high"} {
		for _, p := range profiles {
			b.Run(name+"/"+p.Name()+"/engine", func(b *testing.B) {
				runBench(b, name, p, 1)
			})
			b.Run(name+"/"+p.Name()+"/generic", func(b *testing.B) {
				runBench(b, name, p.With(tm.WithEngine(tm.EngineGeneric)), 1)
			})
		}
	}
}

// --- Barrier microbenchmarks (cost model of Fig. 2's fast path) ---

func barrierRT(p tm.Profile) (*tm.Runtime, *tm.Thread, tm.Struct) {
	rt := tm.Open(append(p.Options(), tm.WithMemory(tm.MemConfig{
		GlobalWords: 1 << 8, HeapWords: 1 << 16, StackWords: 1 << 10, MaxThreads: 2,
	}))...)
	th := rt.Thread(0)
	g := rt.AllocGlobal(64)
	return rt, th, g
}

// batched runs b.N barrier operations in transactions of 512
// operations each, so per-transaction log sizes stay realistic.
// prep runs at the start of every transaction and returns the base
// block the operation loop uses; heap-allocating preps free the
// block again before commit so the arena never grows.
func batched(b *testing.B, th *tm.Thread, prep func(tx *tm.Tx) tm.Struct, op func(tx *tm.Tx, base tm.Struct, i int)) {
	b.Helper()
	b.ResetTimer()
	i := 0
	for i < b.N {
		th.Atomic(func(tx *tm.Tx) {
			base := prep(tx)
			for j := 0; j < 512 && i < b.N; j++ {
				op(tx, base, i)
				i++
			}
		})
	}
}

// BenchmarkBarrierReadFull is the cost of one full (shared) read
// barrier inside a transaction.
func BenchmarkBarrierReadFull(b *testing.B) {
	_, th, g := barrierRT(tm.Baseline())
	var sink uint64
	batched(b, th, func(tx *tm.Tx) tm.Struct { return g },
		func(tx *tm.Tx, base tm.Struct, i int) {
			sink += base.Word(i & 63).Load(tx)
		})
	_ = sink
}

// BenchmarkBarrierWriteFull is the cost of one full write barrier
// (distinct addresses, so each pays undo logging; the lock acquisition
// amortizes over the 8 words of a cache line, as in a real workload).
func BenchmarkBarrierWriteFull(b *testing.B) {
	_, th, g := barrierRT(tm.Baseline().With(tm.WithoutWAWFilter()))
	batched(b, th, func(tx *tm.Tx) tm.Struct { return g },
		func(tx *tm.Tx, base tm.Struct, i int) {
			base.Word(i&63).Store(tx, uint64(i))
		})
}

// BenchmarkBarrierReadElided measures reads that hit the runtime
// capture analysis, per mechanism and log kind. (The freshly allocated
// block's provenance is ignored here: the profiles enable only runtime
// checks, so elision happens dynamically, as in the paper's Fig. 2.)
func BenchmarkBarrierReadElided(b *testing.B) {
	for _, k := range []tm.LogKind{tm.LogTree, tm.LogArray, tm.LogFilter} {
		b.Run("heap-"+k.String(), func(b *testing.B) {
			_, th, _ := barrierRT(tm.RuntimeAll(k))
			var sink uint64
			var cur tm.Struct
			batched(b, th, func(tx *tm.Tx) tm.Struct {
				if !cur.IsNil() {
					tx.Free(cur) // recycle the previous tx's block
				}
				cur = tx.Alloc(64)
				return cur
			}, func(tx *tm.Tx, base tm.Struct, i int) {
				sink += base.Word(i & 63).Load(tx)
			})
			_ = sink
		})
	}
	b.Run("stack", func(b *testing.B) {
		_, th, _ := barrierRT(tm.RuntimeAll(tm.LogTree))
		var sink uint64
		batched(b, th, func(tx *tm.Tx) tm.Struct { return tx.StackAlloc(64) },
			func(tx *tm.Tx, base tm.Struct, i int) {
				sink += base.Word(i & 63).Load(tx)
			})
		_ = sink
	})
	b.Run("static", func(b *testing.B) {
		_, th, _ := barrierRT(tm.CompilerElision())
		var sink uint64
		var cur tm.Struct
		batched(b, th, func(tx *tm.Tx) tm.Struct {
			if !cur.IsNil() {
				tx.Free(cur)
			}
			cur = tx.Alloc(64) // fresh provenance: statically elided
			return cur
		}, func(tx *tm.Tx, base tm.Struct, i int) {
			sink += base.Word(i & 63).Load(tx)
		})
		_ = sink
	})
}

// BenchmarkBarrierReadMiss measures the added cost of runtime capture
// analysis on reads that are NOT captured (the check is pure overhead,
// the kmeans case from Fig. 10).
func BenchmarkBarrierReadMiss(b *testing.B) {
	for _, k := range []tm.LogKind{tm.LogTree, tm.LogArray, tm.LogFilter} {
		b.Run(k.String()+"-empty-log", func(b *testing.B) {
			_, th, g := barrierRT(tm.RuntimeAll(k))
			var sink uint64
			batched(b, th, func(tx *tm.Tx) tm.Struct { return g },
				func(tx *tm.Tx, base tm.Struct, i int) {
					sink += base.Word(i & 63).Load(tx)
				})
			_ = sink
		})
		b.Run(k.String()+"-loaded-log", func(b *testing.B) {
			_, th, g := barrierRT(tm.RuntimeAll(k))
			var sink uint64
			var scratch [4]tm.Struct
			batched(b, th, func(tx *tm.Tx) tm.Struct {
				for j := 0; j < 4; j++ {
					if !scratch[j].IsNil() {
						tx.Free(scratch[j])
					}
					scratch[j] = tx.Alloc(8)
				}
				return g
			}, func(tx *tm.Tx, base tm.Struct, i int) {
				sink += base.Word(i & 63).Load(tx)
			})
			_ = sink
		})
	}
}

// BenchmarkBarrierWriteElided measures captured writes (lock and undo
// both elided) against the full barrier above.
func BenchmarkBarrierWriteElided(b *testing.B) {
	for _, k := range []tm.LogKind{tm.LogTree, tm.LogArray, tm.LogFilter} {
		b.Run("heap-"+k.String(), func(b *testing.B) {
			_, th, _ := barrierRT(tm.RuntimeAll(k))
			var cur tm.Struct
			batched(b, th, func(tx *tm.Tx) tm.Struct {
				if !cur.IsNil() {
					tx.Free(cur)
				}
				cur = tx.Alloc(64)
				return cur
			}, func(tx *tm.Tx, base tm.Struct, i int) {
				base.Word(i&63).Store(tx, uint64(i))
			})
		})
	}
}

// --- Ablations (engine design choices) ---

// BenchmarkAblationArrayCap sweeps the range-array capacity: the paper
// observes one cache line (4 ranges) captures almost the full
// potential; the elided/barrier metric shows where capacity starts to
// matter (yada exceeds it).
func BenchmarkAblationArrayCap(b *testing.B) {
	for _, capN := range []int{1, 2, 4, 8, 16} {
		p := tm.RuntimeAll(tm.LogArray).
			With(tm.WithArrayCap(capN)).
			Named(fmt.Sprintf("array-cap%d", capN))
		b.Run(fmt.Sprintf("yada/cap%d", capN), func(b *testing.B) {
			runBench(b, "yada", p, 1)
		})
	}
}

// BenchmarkAblationFilterSize sweeps the hash-filter size: smaller
// filters collide more, producing false negatives (lower elision).
func BenchmarkAblationFilterSize(b *testing.B) {
	for _, bits := range []int{4, 6, 8, 10, 12} {
		p := tm.RuntimeAll(tm.LogFilter).
			With(tm.WithFilterBits(bits)).
			Named(fmt.Sprintf("filter-%dbits", bits))
		b.Run(fmt.Sprintf("vacation-high/bits%d", bits), func(b *testing.B) {
			runBench(b, "vacation-high", p, 1)
		})
	}
}

// BenchmarkAblationOrecs shrinks the ownership-record table to expose
// false conflicts (Sec. 2.2's motivation): the aborts/commit metric
// rises as distinct lines alias.
func BenchmarkAblationOrecs(b *testing.B) {
	for _, bits := range []int{8, 12, 16, 20} {
		p := tm.Baseline().
			With(tm.WithOrecBits(bits)).
			Named(fmt.Sprintf("orecs-%dbits", bits))
		b.Run(fmt.Sprintf("vacation-high/orecs%d", bits), func(b *testing.B) {
			runBench(b, "vacation-high", p, 8)
		})
	}
}

// BenchmarkAblationSkipShared measures the paper's future-work
// extension: on the no-elision benchmark (kmeans), bypassing runtime
// capture checks for definitely-shared accesses recovers most of the
// check overhead that Fig. 10 shows.
func BenchmarkAblationSkipShared(b *testing.B) {
	for _, on := range []bool{false, true} {
		p := tm.RuntimeAll(tm.LogTree).Perf()
		name := "skip-off"
		if on {
			name = "skip-on"
			p = p.With(tm.WithSkipSharedChecks())
		}
		p = p.Named(name)
		b.Run("kmeans-high/"+name, func(b *testing.B) {
			runBench(b, "kmeans-high", p, 1)
		})
	}
}

// BenchmarkAblationWAW toggles the baseline's write-after-write filter
// (the feature that explains yada's Fig. 10 behaviour).
func BenchmarkAblationWAW(b *testing.B) {
	for _, off := range []bool{false, true} {
		p := tm.Baseline()
		name := "waw-on"
		if off {
			name = "waw-off"
			p = p.With(tm.WithoutWAWFilter())
		}
		p = p.Named(name)
		b.Run("yada/"+name, func(b *testing.B) {
			runBench(b, "yada", p, 1)
		})
	}
}
