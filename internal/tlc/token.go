// Package tlc implements TLC, a compiler for TL — a small C-like
// language with first-class atomic blocks — targeting the STM runtime
// in internal/stm. It exists to make the paper's Section 3.2 concrete:
// the compiler's *capture analysis* (an intraprocedural pointer
// analysis extended across calls by function inlining) decides,
// per memory access, whether the accessed location is provably
// transaction-local, and elides the STM barrier if so.
//
// Pipeline: lexer → parser → semantic analysis → inliner → lowering to
// a register IR → capture analysis (annotates every Load/Store with an
// stm.Acc) → interpreter executing the instrumented IR against the STM
// runtime.
//
// The analysis is validated against the runtime's precise dynamic
// capture analysis via stm.OptConfig.VerifyElision: every statically
// elided access is checked captured at runtime (no false elisions),
// and the test suite asserts it (see tlc_test.go).
package tlc

import "fmt"

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	// punctuation
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBrack
	tokRBrack
	tokComma
	tokSemi
	tokDot
	tokAssign
	tokStar
	// operators
	tokPlus
	tokMinus
	tokSlash
	tokPercent
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
	tokAndAnd
	tokOrOr
	tokBang
	tokAmp
	// keywords
	tokStruct
	tokFn
	tokVar
	tokIf
	tokElse
	tokWhile
	tokReturn
	tokAtomic
	tokAlloc
	tokFree
	tokNil
	tokTrue
	tokFalse
	tokBreak
	tokContinue
	tokAbort
)

var keywords = map[string]tokKind{
	"struct": tokStruct, "fn": tokFn, "var": tokVar, "if": tokIf,
	"else": tokElse, "while": tokWhile, "return": tokReturn,
	"atomic": tokAtomic, "alloc": tokAlloc, "free": tokFree,
	"nil": tokNil, "true": tokTrue, "false": tokFalse,
	"break": tokBreak, "continue": tokContinue, "abort": tokAbort,
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	text string
	val  uint64 // for tokInt
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a compile error with a source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
