package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Segment files are named seg-%08d.wal and begin with a 16-byte header:
// an 8-byte magic followed by the little-endian segment index, so a
// file renamed by accident cannot be replayed under the wrong index.
const (
	segMagic  = "WALSEGM1"
	segHdrLen = 16
)

// SegName returns the file name of segment idx.
func SegName(idx uint64) string { return fmt.Sprintf("seg-%08d.wal", idx) }

// Options tune the log. The zero value is usable.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// reaches this size. Default 8 MiB.
	SegmentBytes int
	// GroupInterval is how long the flusher lingers after waking to
	// accumulate more records into one write+fsync. Zero flushes as soon
	// as the flusher observes pending bytes (still batching whatever
	// arrived while the previous fsync was in flight).
	GroupInterval time.Duration
	// NoFsync skips fsync after each batch write. Crash simulations run
	// in-process, so tests use this to keep the differential fast; real
	// deployments leave it off.
	NoFsync bool
}

// LogStats counts log activity. Fields are read with atomic loads via
// Log.Stats.
type LogStats struct {
	Records  uint64 // records appended
	Bytes    uint64 // payload+frame bytes appended
	Batches  uint64 // flusher write batches
	Fsyncs   uint64 // fsync calls issued
	Segments uint64 // segment files created
}

// segBuf is one segment: the full byte image (header included) plus how
// much of it has reached the file.
type segBuf struct {
	idx     uint64
	data    []byte
	size    int // len(data) frozen once the buffer is released
	flushed int
	file    *os.File
}

// Log is a segmented append-only redo log with group commit. Append
// serializes a record into the in-memory tail under a mutex; a
// dedicated flusher goroutine batches everything that accumulated —
// across all appending threads — into one write+fsync and then closes
// that batch's done channel, acking every commit in the batch at once.
// This amortizes the write barrier across threads the same way
// tm.Batcher amortizes transactions.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	segs    []*segBuf // oldest first; tail = segs[len-1]
	nextSeq uint64
	doneCh  chan struct{} // closed when the current batch is durable
	err     error         // sticky I/O error
	closed  bool

	wake        chan struct{}
	quit        chan struct{}
	flusherDone chan struct{}
	scratch     []byte

	records  atomic.Uint64
	bytes    atomic.Uint64
	batches  atomic.Uint64
	fsyncs   atomic.Uint64
	segments atomic.Uint64
}

// OpenLog creates (or reuses) dir and starts a log whose first segment
// has index startSeg and whose first record gets sequence startSeq.
// A fresh log starts at (0, 0); a recovered runtime passes the
// RecoveredState's NextSeg/NextSeq so old and new segments never
// collide.
func OpenLog(dir string, startSeg, startSeq uint64, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{
		dir:         dir,
		opts:        opts,
		nextSeq:     startSeq,
		doneCh:      make(chan struct{}),
		wake:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	l.segs = append(l.segs, l.newSeg(startSeg))
	go l.flusher()
	return l, nil
}

func (l *Log) newSeg(idx uint64) *segBuf {
	data := make([]byte, segHdrLen, 64<<10)
	copy(data, segMagic)
	binary.LittleEndian.PutUint64(data[8:], idx)
	l.segments.Add(1)
	return &segBuf{idx: idx, data: data}
}

// Ack is a handle on the durability of one appended record.
type Ack struct {
	l  *Log
	ch chan struct{}
}

// Wait blocks until the record's batch has been written (and fsynced,
// unless NoFsync) and returns the log's sticky error state.
func (a Ack) Wait() error {
	if a.ch == nil {
		return nil
	}
	<-a.ch
	a.l.mu.Lock()
	err := a.l.err
	a.l.mu.Unlock()
	return err
}

// Append assigns rec the next sequence number, serializes it into the
// tail segment, and wakes the flusher. The returned Ack waits for the
// batch containing this record; callers that don't need the barrier
// (aborts, non-transactional journal entries) ignore it.
func (l *Log) Append(rec *Record) (Ack, error) {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		if err == nil {
			err = os.ErrClosed
		}
		return Ack{}, err
	}
	rec.Seq = l.nextSeq
	l.nextSeq++
	tail := l.segs[len(l.segs)-1]
	before := len(tail.data)
	tail.data = AppendRecord(tail.data, rec)
	l.records.Add(1)
	l.bytes.Add(uint64(len(tail.data) - before))
	// Rotate at append time so Position() values stay stable: a
	// (segment, offset) pair captured now is never shifted by a later
	// rotation.
	if len(tail.data) >= l.opts.SegmentBytes {
		l.segs = append(l.segs, l.newSeg(tail.idx+1))
	}
	ack := Ack{l: l, ch: l.doneCh}
	l.mu.Unlock()
	l.wakeFlusher()
	return ack, nil
}

func (l *Log) wakeFlusher() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Sync blocks until everything appended so far is durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	pending := false
	for _, s := range l.segs {
		if s.flushed < len(s.data) {
			pending = true
			break
		}
	}
	if !pending || l.closed {
		l.mu.Unlock()
		return nil
	}
	ch := l.doneCh
	l.mu.Unlock()
	l.wakeFlusher()
	<-ch
	// One batch may not have drained everything appended after our
	// snapshot of doneCh; loop until clean.
	return l.Sync()
}

// Position returns the current append position: the tail segment index
// and the byte offset within it (header included). A checkpoint records
// this as its log cut; recovery replays records at or after the cut.
func (l *Log) Position() (seg, off uint64) {
	l.mu.Lock()
	tail := l.segs[len(l.segs)-1]
	seg, off = tail.idx, uint64(len(tail.data))
	l.mu.Unlock()
	return seg, off
}

// TruncateBefore deletes segment files wholly below seg. Only fully
// flushed, non-tail segments are removed; the checkpointer calls Sync
// first so everything below its cut qualifies.
func (l *Log) TruncateBefore(seg uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	kept := l.segs[:0]
	for i, s := range l.segs {
		if s.idx >= seg || i == len(l.segs)-1 || s.flushed < len(s.data) {
			kept = append(kept, s)
			continue
		}
		if s.file != nil {
			s.file.Close()
			s.file = nil
		}
		if err := os.Remove(filepath.Join(l.dir, SegName(s.idx))); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	l.segs = kept
	return firstErr
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() LogStats {
	return LogStats{
		Records:  l.records.Load(),
		Bytes:    l.bytes.Load(),
		Batches:  l.batches.Load(),
		Fsyncs:   l.fsyncs.Load(),
		Segments: l.segments.Load(),
	}
}

// Close flushes everything pending and closes the segment files. It is
// idempotent. Close writes no seal record; the runtime layer appends
// one (and waits for its ack) before calling Close.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.flusherDone
	l.mu.Lock()
	err := l.err
	l.mu.Unlock()
	return err
}

// Kill simulates a crash for tests: pending bytes are flushed (an
// in-process "crash" cannot lose the page cache) and files are closed,
// but no seal is written and the log refuses further appends. Acked
// records are durable at ack time regardless; Kill only decides the
// fate of unacked tail records, and "all of them survived" is one of
// the legal crash outcomes.
func (l *Log) Kill() { l.Close() }

func (l *Log) flusher() {
	defer close(l.flusherDone)
	for {
		select {
		case <-l.quit:
			l.flushOnce()
			l.mu.Lock()
			close(l.doneCh) // release late Sync/Ack waiters; appends are rejected
			for _, s := range l.segs {
				if s.file != nil {
					s.file.Close()
					s.file = nil
				}
			}
			l.mu.Unlock()
			return
		case <-l.wake:
		}
		if d := l.opts.GroupInterval; d > 0 {
			select {
			case <-time.After(d):
			case <-l.quit:
			}
		}
		l.flushOnce()
	}
}

// flushOnce writes every byte appended since the last flush — across
// all segments — fsyncs the touched files, and closes the batch's done
// channel. Bytes are copied out under the mutex because appenders may
// grow (and reallocate) a segment's buffer while the write is in
// flight.
func (l *Log) flushOnce() {
	type chunk struct {
		seg  *segBuf
		from int
		upto int
		off  int // offset into scratch
	}
	// Even a batch with no unflushed bytes swaps and closes the done
	// channel: Sync may be waiting on it after a spurious wake (the
	// segment header counts as pending until its first flush).
	l.mu.Lock()
	var chunks []chunk
	need := 0
	for _, s := range l.segs {
		if s.flushed < len(s.data) {
			need += len(s.data) - s.flushed
		}
	}
	if cap(l.scratch) < need {
		l.scratch = make([]byte, need)
	}
	buf := l.scratch[:0]
	for _, s := range l.segs {
		if s.flushed >= len(s.data) {
			continue
		}
		upto := len(s.data)
		chunks = append(chunks, chunk{seg: s, from: s.flushed, upto: upto, off: len(buf)})
		buf = append(buf, s.data[s.flushed:upto]...)
	}
	done := l.doneCh
	l.doneCh = make(chan struct{})
	l.mu.Unlock()

	var ioErr error
	for _, c := range chunks {
		if c.seg.file == nil {
			f, err := os.OpenFile(filepath.Join(l.dir, SegName(c.seg.idx)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				ioErr = err
				break
			}
			c.seg.file = f
		}
		if _, err := c.seg.file.Write(buf[c.off : c.off+(c.upto-c.from)]); err != nil {
			ioErr = err
			break
		}
		if !l.opts.NoFsync {
			if err := c.seg.file.Sync(); err != nil {
				ioErr = err
				break
			}
			l.fsyncs.Add(1)
		}
	}
	l.batches.Add(1)

	l.mu.Lock()
	if ioErr != nil {
		if l.err == nil {
			l.err = ioErr
		}
	} else {
		tail := l.segs[len(l.segs)-1]
		for _, c := range chunks {
			c.seg.flushed = c.upto
			// A fully flushed non-tail segment is immutable: release its
			// buffer and file handle.
			if c.seg != tail && c.seg.flushed == len(c.seg.data) {
				c.seg.size = len(c.seg.data)
				c.seg.data = nil
				if c.seg.file != nil {
					c.seg.file.Close()
					c.seg.file = nil
				}
			}
		}
	}
	l.mu.Unlock()
	close(done)
}
