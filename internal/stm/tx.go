package stm

import (
	"fmt"
	"math"

	"repro/internal/capture"
	"repro/internal/mem"
)

type readEntry struct {
	oi uint64 // orec index
	v  uint64 // orec word observed at read time
}

type writeEntry struct {
	oi   uint64 // orec index
	prev uint64 // orec word replaced by our lock (for release on abort validation)
}

type undoEntry struct {
	addr mem.Addr
	val  uint64
}

type allocRec struct {
	addr  mem.Addr
	size  int
	depth int32
	dead  bool // freed again within the same transaction
}

type savepoint struct {
	read, write, undo int
	alloc, free       int
	sp                mem.Addr
}

const wawSlots = 256 // power of two

// wawEntry remembers where in the undo log an address was last logged
// (undoIdx), so the skip test can verify the entry is still live and
// would actually be replayed by any abort affecting the new write.
type wawEntry struct {
	addr    mem.Addr
	epoch   uint64
	undoIdx int
}

// Tx is a transaction descriptor. It is owned by its Thread and reused
// across transactions; user code receives it from Thread.Atomic.
type Tx struct {
	th     *Thread
	active bool

	rv       uint64   // read version (global clock snapshot)
	startSP  mem.Addr // stack pointer at transaction begin (Fig. 3)
	depth    int32
	epoch    uint64 // distinguishes attempts in the WAW filter
	attempts int

	readset []readEntry
	writes  []writeEntry
	undo    []undoEntry

	allocs []allocRec
	frees  []mem.Addr // deferred frees of pre-existing blocks

	alog capture.Log   // runtime capture allocation log (per OptConfig)
	clog *capture.Tree // precise log for Counting mode

	// Devirtualized views of alog for the hot containment check, plus
	// a live-range counter so the overwhelmingly common "transaction
	// has allocated nothing" case costs a single predictable branch —
	// the property that keeps the paper's runtime checks cheap on
	// allocation-free benchmarks like kmeans and ssca2.
	alogKind  capture.Kind
	alogTree  *capture.Tree
	alogArr   *capture.Array
	alogFil   *capture.Filter
	allocLive int

	waw [wawSlots]wawEntry

	saves []savepoint

	// cached config decisions (avoid pointer chasing in barriers)
	trackAlog   bool
	useWAW      bool
	keepStats   bool
	counting    bool
	compiler    bool
	annotations bool
	readStack   bool
	readHeap    bool
	writeStack  bool
	writeHeap   bool

	verify     bool // VerifyElision oracle enabled
	skipShared bool // definitely-shared extension enabled

	// curSP mirrors the thread's stack pointer so the Fig. 4 range
	// check touches only the (cache-hot) descriptor.
	curSP mem.Addr
}

// verifyCaptured is the soundness oracle behind OptConfig.VerifyElision:
// a statically elided access must target memory the precise dynamic
// analysis confirms captured.
func (tx *Tx) verifyCaptured(a mem.Addr) {
	if tx.onTxStack(a) || tx.clog.Contains(a, 1) {
		return
	}
	panic(fmt.Sprintf("stm: compiler elided a non-captured access to %d", a))
}

func (tx *Tx) init(th *Thread) {
	tx.th = th
	cfg := &th.rt.cfg
	tx.trackAlog = cfg.Read.Heap || cfg.Write.Heap
	tx.useWAW = !cfg.NoWAWFilter
	tx.keepStats = !cfg.PerfMode
	tx.counting = cfg.Counting
	tx.compiler = cfg.Compiler
	tx.annotations = cfg.Annotations
	tx.readStack = cfg.Read.Stack
	tx.readHeap = cfg.Read.Heap
	tx.writeStack = cfg.Write.Stack
	tx.writeHeap = cfg.Write.Heap
	tx.verify = cfg.VerifyElision
	if tx.verify && !cfg.Counting {
		panic("stm: VerifyElision requires Counting")
	}
	tx.skipShared = cfg.SkipSharedChecks
	if tx.trackAlog {
		tx.alogKind = cfg.LogKind
		switch cfg.LogKind {
		case capture.KindTree:
			tx.alogTree = capture.NewTree()
			tx.alog = tx.alogTree
		case capture.KindArray:
			c := cfg.ArrayCap
			if c == 0 {
				c = capture.DefaultArrayCap
			}
			tx.alogArr = capture.NewArray(c)
			tx.alog = tx.alogArr
		case capture.KindFilter:
			b := cfg.FilterBits
			if b == 0 {
				b = capture.DefaultFilterBits
			}
			tx.alogFil = capture.NewFilter(b)
			tx.alog = tx.alogFil
		}
	}
	if cfg.Counting {
		tx.clog = capture.NewTree()
	}
}

// Thread returns the owning thread.
func (tx *Tx) Thread() *Thread { return tx.th }

// Depth returns the current nesting depth (1 = top level).
func (tx *Tx) Depth() int { return int(tx.depth) }

// Attempt returns the 1-based attempt number of the current top-level
// transaction (>1 after conflicts).
func (tx *Tx) Attempt() int { return tx.attempts }

func (tx *Tx) beginTop() {
	tx.active = true
	tx.attempts++
	tx.epoch++
	tx.depth = 1
	tx.th.rt.seqs[tx.th.id].Add(1) // now odd: in transaction
	tx.rv = tx.th.rt.clock.Load()
	tx.startSP = tx.th.stack.SP()
	tx.curSP = tx.startSP
}

// conflict abandons the current attempt.
func (tx *Tx) conflict() {
	panic(retrySignal{})
}

// UserAbort rolls back the innermost transaction; Atomic returns
// false. This is the paper's user abort (Sec. 2.2.1).
func (tx *Tx) UserAbort() {
	panic(userAbort{})
}

// Restart abandons the attempt and retries the top-level transaction
// from scratch (STAMP's TM_RESTART).
func (tx *Tx) Restart() {
	tx.conflict()
}

// --- Commit / abort ---

func (tx *Tx) commitTop() {
	rt := tx.th.rt
	if len(tx.writes) > 0 {
		wv := rt.clock.Add(1)
		if wv != tx.rv+1 && !tx.validate(rt) {
			tx.conflict() // unwinds into abortTop
		}
		rel := wv << 1
		for i := range tx.writes {
			rt.orecs[tx.writes[i].oi].Store(rel)
		}
	}
	// Deferred frees become effective now that the transaction is
	// durable, but the blocks are recycled only after every in-flight
	// transaction has finished (zombie readers may still dereference
	// into them), via the per-thread limbo list.
	if len(tx.frees) > 0 {
		tx.th.enqueueLimbo(tx.frees)
	}
	tx.th.stack.Pop(tx.startSP)
	tx.th.stats.Commits++
	tx.finish()
	tx.th.rt.seqs[tx.th.id].Add(1) // now even: quiescent
	tx.th.drainLimbo()
}

// abortTop rolls the whole transaction back. retried distinguishes
// conflict aborts (counted in Stats.Aborts, the paper's Table 1
// numerator) from user aborts that will not be retried.
func (tx *Tx) abortTop(retried bool) {
	rt := tx.th.rt
	// Roll back in-place updates in reverse order.
	for i := len(tx.undo) - 1; i >= 0; i-- {
		rt.space.Store(tx.undo[i].addr, tx.undo[i].val)
	}
	// Release ownership with a fresh version so concurrent optimistic
	// readers of our speculative values cannot validate (ABA safety).
	if len(tx.writes) > 0 {
		rel := rt.clock.Add(1) << 1
		for i := range tx.writes {
			rt.orecs[tx.writes[i].oi].Store(rel)
		}
	}
	// Speculative allocations die with the transaction.
	for i := len(tx.allocs) - 1; i >= 0; i-- {
		if !tx.allocs[i].dead {
			tx.th.alloc.Free(tx.allocs[i].addr)
		}
	}
	// Deferred frees are dropped: the blocks were never freed.
	tx.th.stack.Pop(tx.startSP)
	if retried {
		tx.th.stats.Aborts++
	} else {
		tx.th.stats.UserAborts++
	}
	tx.finish()
	tx.th.rt.seqs[tx.th.id].Add(1) // now even: quiescent
}

func (tx *Tx) finish() {
	tx.active = false
	tx.depth = 0
	tx.readset = tx.readset[:0]
	tx.writes = tx.writes[:0]
	tx.undo = tx.undo[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.saves = tx.saves[:0]
	if tx.alog != nil {
		tx.alog.Clear()
		tx.allocLive = 0
	}
	if tx.clog != nil {
		tx.clog.Clear()
	}
}

// validate checks every read-set entry: the orec must be unchanged, or
// locked by us with its pre-acquisition version matching what we read.
func (tx *Tx) validate(rt *Runtime) bool {
	for i := range tx.readset {
		re := &tx.readset[i]
		cur := rt.orecs[re.oi].Load()
		if cur == re.v {
			continue
		}
		if orecLocked(cur) && orecOwner(cur) == tx.th.id {
			if tx.prevOrecWord(re.oi) == re.v {
				continue
			}
		}
		return false
	}
	return true
}

// prevOrecWord returns the orec word we replaced when locking oi.
func (tx *Tx) prevOrecWord(oi uint64) uint64 {
	for i := range tx.writes {
		if tx.writes[i].oi == oi {
			return tx.writes[i].prev
		}
	}
	return ^uint64(0)
}

// extend revalidates the read set against the current clock, raising
// rv (TL2-style timestamp extension).
func (tx *Tx) extend() {
	rt := tx.th.rt
	newRv := rt.clock.Load()
	if !tx.validate(rt) {
		tx.conflict()
	}
	tx.rv = newRv
}

// --- Nesting (closed, with partial abort) ---

func (tx *Tx) beginNested() {
	tx.saves = append(tx.saves, savepoint{
		read:  len(tx.readset),
		write: len(tx.writes),
		undo:  len(tx.undo),
		alloc: len(tx.allocs),
		free:  len(tx.frees),
		sp:    tx.th.stack.SP(),
	})
	tx.depth++
}

func (tx *Tx) commitNested() {
	// Closed nesting: merge into the parent by dropping the savepoint.
	tx.saves = tx.saves[:len(tx.saves)-1]
	tx.depth--
}

// abortNested rolls the transaction back to the innermost savepoint:
// partial abort (Sec. 2.2.1).
func (tx *Tx) abortNested() {
	rt := tx.th.rt
	sp := tx.saves[len(tx.saves)-1]
	for i := len(tx.undo) - 1; i >= sp.undo; i-- {
		rt.space.Store(tx.undo[i].addr, tx.undo[i].val)
	}
	if len(tx.writes) > sp.write {
		rel := rt.clock.Add(1) << 1
		for i := sp.write; i < len(tx.writes); i++ {
			rt.orecs[tx.writes[i].oi].Store(rel)
		}
		// The version bump protects concurrent optimistic readers from
		// the speculative values (ABA), but it must not invalidate the
		// *enclosing* transaction's own reads: the undo replay above
		// restored the exact values, so the outer read set stays
		// semantically valid. Repair its entries for the released
		// records to the new version — otherwise the outer transaction
		// livelocks re-validating against versions it bumped itself.
		for j := range tx.readset {
			re := &tx.readset[j]
			for i := sp.write; i < len(tx.writes); i++ {
				if re.oi == tx.writes[i].oi {
					re.v = rel
					break
				}
			}
		}
	}
	for i := len(tx.allocs) - 1; i >= sp.alloc; i-- {
		a := &tx.allocs[i]
		if !a.dead {
			tx.removeFromLogs(a.addr, a.size)
			tx.th.alloc.Free(a.addr)
		}
	}
	tx.readset = tx.readset[:sp.read]
	tx.writes = tx.writes[:sp.write]
	tx.undo = tx.undo[:sp.undo]
	tx.allocs = tx.allocs[:sp.alloc]
	tx.frees = tx.frees[:sp.free]
	tx.th.stack.Pop(sp.sp)
	tx.saves = tx.saves[:len(tx.saves)-1]
	tx.depth--
}

// --- Transactional allocation (Sec. 3.1.2's extended allocator) ---

// Alloc allocates n words inside the transaction and records the block
// in the allocation log. The memory is captured: until commit it is
// invisible to every other transaction.
func (tx *Tx) Alloc(n int) mem.Addr {
	p := tx.th.alloc.Alloc(n)
	size := tx.th.alloc.BlockSize(p)
	tx.allocs = append(tx.allocs, allocRec{addr: p, size: size, depth: tx.depth})
	tx.insertIntoLogs(p, size)
	tx.th.stats.TxAllocs++
	return p
}

// Free frees a block inside the transaction. A block allocated by this
// transaction at the current nesting depth is reclaimed immediately
// (it never escaped and cannot be resurrected by a partial abort); a
// block allocated at an outer depth or before the transaction is freed
// only when the transaction commits, so aborts can undo the free.
func (tx *Tx) Free(p mem.Addr) {
	if p == mem.Nil {
		return
	}
	tx.th.stats.TxFrees++
	for i := len(tx.allocs) - 1; i >= 0; i-- {
		a := &tx.allocs[i]
		if a.addr == p && !a.dead {
			if a.depth == tx.depth {
				a.dead = true
				tx.removeFromLogs(p, a.size)
				tx.th.alloc.Free(p)
				return
			}
			break // allocated at an outer depth: defer
		}
	}
	tx.frees = append(tx.frees, p)
}

func (tx *Tx) insertIntoLogs(p mem.Addr, size int) {
	if tx.alog != nil {
		tx.alog.Insert(p, p+mem.Addr(size))
		tx.allocLive++
	}
	if tx.clog != nil {
		tx.clog.Insert(p, p+mem.Addr(size))
	}
}

func (tx *Tx) removeFromLogs(p mem.Addr, size int) {
	if tx.alog != nil {
		tx.alog.Remove(p, p+mem.Addr(size))
		tx.allocLive--
	}
	if tx.clog != nil {
		tx.clog.Remove(p, p+mem.Addr(size))
	}
}

// alogContains is the is_captured() heap probe of the paper's Fig. 2,
// devirtualized for the barrier fast path.
func (tx *Tx) alogContains(a mem.Addr) bool {
	if tx.allocLive == 0 {
		return false
	}
	switch tx.alogKind {
	case capture.KindTree:
		return tx.alogTree.Contains(a, 1)
	case capture.KindArray:
		return tx.alogArr.Contains(a, 1)
	default:
		return tx.alogFil.Contains(a, 1)
	}
}

// StackAlloc allocates an n-word frame on the transaction-local stack.
// The frame lives until the enclosing top-level transaction ends and
// is reclaimed automatically (Fig. 3: the region between start_sp and
// the current stack pointer).
func (tx *Tx) StackAlloc(n int) mem.Addr {
	f := tx.th.stack.Push(n)
	tx.curSP = f
	return f
}

// onTxStack is the paper's Fig. 4 range check: the address lies in the
// stack region grown since transaction begin.
func (tx *Tx) onTxStack(a mem.Addr) bool {
	return a >= tx.curSP && a < tx.startSP
}

// --- Barriers ---

// Load performs a transactional read of the word at a. ac carries the
// access-site metadata (provenance for compiler elision; whether the
// original program hand-instrumented the access).
func (tx *Tx) Load(a mem.Addr, ac Acc) uint64 {
	th := tx.th
	if tx.keepStats {
		st := &th.stats
		st.ReadTotal++
		if ac.Manual {
			st.ReadManual++
		}
		if tx.counting {
			if tx.onTxStack(a) {
				st.ReadCapStack++
			} else if tx.clog.Contains(a, 1) {
				st.ReadCapHeap++
			}
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		th.stats.ReadElStatic += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.skipShared && ac.Prov == ProvShared {
		th.stats.ReadSkipShared += tx.statInc()
		th.stats.ReadFull += tx.statInc()
		return tx.readFull(a)
	}
	if tx.readStack && tx.onTxStack(a) {
		th.stats.ReadElStack += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.readHeap && tx.alogContains(a) {
		th.stats.ReadElHeap += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		th.stats.ReadElPriv += tx.statInc()
		return th.rt.space.Load(a)
	}
	th.stats.ReadFull += tx.statInc()
	return tx.readFull(a)
}

// statInc returns 1 when statistics are kept, else 0, letting the
// barrier fast paths stay branch-light.
func (tx *Tx) statInc() uint64 {
	if tx.keepStats {
		return 1
	}
	return 0
}

func (tx *Tx) readFull(a mem.Addr) uint64 {
	rt := tx.th.rt
	oi := rt.orecIndex(a)
	for {
		v1 := rt.orecs[oi].Load()
		if orecLocked(v1) {
			if orecOwner(v1) == tx.th.id {
				return rt.space.Load(a) // read-after-write, in place
			}
			tx.conflict()
		}
		if orecVersion(v1) > tx.rv {
			tx.extend()
			continue
		}
		val := rt.space.Load(a)
		if rt.orecs[oi].Load() != v1 {
			tx.conflict()
		}
		tx.readset = append(tx.readset, readEntry{oi, v1})
		return val
	}
}

// Store performs a transactional write of the word at a.
func (tx *Tx) Store(a mem.Addr, val uint64, ac Acc) {
	th := tx.th
	if tx.keepStats {
		st := &th.stats
		st.WriteTotal++
		if ac.Manual {
			st.WriteManual++
		}
		if tx.counting {
			if tx.onTxStack(a) {
				st.WriteCapStack++
			} else if tx.clog.Contains(a, 1) {
				st.WriteCapHeap++
			}
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		th.stats.WriteElStatic += tx.statInc()
		tx.storeCaptured(a, val)
		return
	}
	if tx.skipShared && ac.Prov == ProvShared {
		th.stats.WriteSkipShared += tx.statInc()
		th.stats.WriteFull += tx.statInc()
		tx.writeFull(a, val)
		return
	}
	if tx.writeStack && tx.onTxStack(a) {
		th.stats.WriteElStack += tx.statInc()
		tx.storeCaptured(a, val)
		return
	}
	if tx.writeHeap && tx.alogContains(a) {
		th.stats.WriteElHeap += tx.statInc()
		tx.storeCaptured(a, val)
		return
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		// Annotated thread-local data can hold live-in values, so it
		// keeps undo logging but skips locking (Sec. 2.2.2).
		th.stats.WriteElPriv += tx.statInc()
		tx.logUndo(a)
		th.rt.space.Store(a, val)
		return
	}
	th.stats.WriteFull += tx.statInc()
	tx.writeFull(a, val)
}

// storeCaptured writes captured memory directly. At nesting depth > 1
// the location may be live-in for the nested transaction even though
// it is transaction-local to the outer one, so partial abort requires
// an undo entry (Sec. 2.2.1); at top level captured memory is dead on
// abort and skips undo logging entirely.
func (tx *Tx) storeCaptured(a mem.Addr, val uint64) {
	if tx.depth > 1 {
		tx.logUndo(a)
	}
	tx.th.rt.space.Store(a, val)
}

func (tx *Tx) writeFull(a mem.Addr, val uint64) {
	rt := tx.th.rt
	oi := rt.orecIndex(a)
	for {
		v := rt.orecs[oi].Load()
		if orecLocked(v) {
			if orecOwner(v) == tx.th.id {
				break
			}
			tx.conflict()
		}
		if orecVersion(v) > tx.rv {
			tx.extend()
			continue
		}
		if rt.orecs[oi].CompareAndSwap(v, orecLockWord(tx.th.id)) {
			tx.writes = append(tx.writes, writeEntry{oi, v})
			break
		}
		tx.conflict()
	}
	tx.logUndo(a)
	rt.space.Store(a, val)
}

// logUndo records the old value of a, unless the write-after-write
// filter shows a live undo entry already covers it — the baseline's
// cheap WAW check that the paper credits for yada.
//
// "Covers" is subtle under closed nesting with partial abort: the
// prior entry must (a) still be in the log (not truncated by a partial
// abort and not overwritten after truncation), and (b) lie at or after
// the innermost savepoint, so every abort that could undo the new
// write replays it. Entries from an outer scope fail (b): a partial
// abort of the current nested transaction would not replay them.
func (tx *Tx) logUndo(a mem.Addr) {
	if tx.useWAW {
		s := &tx.waw[(uint64(a)*0x9E3779B97F4A7C15>>33)&(wawSlots-1)]
		if s.addr == a && s.epoch == tx.epoch &&
			s.undoIdx < len(tx.undo) && tx.undo[s.undoIdx].addr == a &&
			s.undoIdx >= tx.undoScopeBase() {
			tx.th.stats.WriteWAWSkips += tx.statInc()
			return
		}
		s.addr = a
		s.epoch = tx.epoch
		s.undoIdx = len(tx.undo)
	}
	tx.undo = append(tx.undo, undoEntry{a, tx.th.rt.space.Load(a)})
}

// undoScopeBase returns the undo-log position of the innermost
// savepoint (0 at top level).
func (tx *Tx) undoScopeBase() int {
	if len(tx.saves) == 0 {
		return 0
	}
	return tx.saves[len(tx.saves)-1].undo
}

// --- Typed convenience accessors ---

// LoadFloat reads a float64 transactionally.
func (tx *Tx) LoadFloat(a mem.Addr, ac Acc) float64 {
	return math.Float64frombits(tx.Load(a, ac))
}

// StoreFloat writes a float64 transactionally.
func (tx *Tx) StoreFloat(a mem.Addr, f float64, ac Acc) {
	tx.Store(a, math.Float64bits(f), ac)
}

// LoadAddr reads a simulated pointer transactionally.
func (tx *Tx) LoadAddr(a mem.Addr, ac Acc) mem.Addr {
	return mem.Addr(tx.Load(a, ac))
}

// StoreAddr writes a simulated pointer transactionally.
func (tx *Tx) StoreAddr(a mem.Addr, p mem.Addr, ac Acc) {
	tx.Store(a, uint64(p), ac)
}
