// Package tmmsg is a transactional message broker scenario: a topic
// index, per-topic ring buffers of message records, batch publishes
// assembled entirely in captured memory, and consumer groups sharing
// cursors.
//
// It is the first workload built to separate the paper's two capture
// regimes inside one program. The publish path is the
// allocate-build-publish shape the paper optimizes — every header word
// and payload block of a batch is allocated with Tx.Alloc and filled
// with fresh-provenance stores, and only the final ring links and the
// head-sequence bump touch definitely-shared words — so runtime and
// static capture analysis both elide almost all of its barriers. The
// consumer path is the opposite: a consume transaction allocates
// nothing and spends its whole life in contended read-modify-writes on
// group cursor words and shared payload reads, so capture analysis can
// elide none of it (the anti-capture stress case, like kmeans in
// Fig. 10).
//
// Retention follows broker practice: each topic keeps its most recent
// RingCap messages; publishing into a full ring drops (and frees) the
// oldest, and a consumer whose cursor has fallen out of the window
// skips ahead to the tail, accounting the skipped sequences like an
// out-of-range cursor reset.
package tmmsg

import (
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/txlib"
)

// BlockWords is the payload granule; messages span MinBlocks..MaxBlocks
// of them, so building one payload is a multi-block tx-local assembly.
const BlockWords = 32

// Topic record layout (one per topic, owned by the index).
const (
	tpRing    = 0 // ring: seq → message record (txlib ring)
	tpHead    = 1 // next sequence to publish (== messages ever published)
	tpTail    = 2 // oldest retained sequence (== messages ever dropped)
	tpGroups  = 3 // group-record pointer array (tpNGroups entries)
	tpNGroups = 4
	tpSize    = 5
)

// Consumer-group record layout: the definitely-shared cursor words
// every consumer of the group contends on.
const (
	grCursor   = 0 // next sequence this group will consume
	grInflight = 1 // consumed but not yet acknowledged
	grAcked    = 2 // acknowledged
	grSkipped  = 3 // sequences lost to retention (cursor reset jumps)
	grSize     = 4
)

// Message record layout (headers; the payload block is separate).
const (
	msgSeq     = 0 // sequence within its topic
	msgWords   = 1 // payload length in words
	msgSum     = 2 // content checksum over the payload
	msgPayload = 3 // payload block address
	msgSize    = 4
)

// Broker holds the root of the shared structures. The root is fixed
// after setup; all mutation happens transactionally inside it.
type Broker struct {
	index mem.Addr // hashtable: topic key words → topic record
}

// NewBroker allocates the topic index inside the transaction.
func NewBroker(tx *stm.Tx, buckets int) Broker {
	return Broker{index: txlib.NewHashtable(tx, buckets)}
}

// Topics returns the number of live topics.
func (b Broker) Topics(tx *stm.Tx) int { return txlib.HTSize(tx, b.index, txlib.TM) }

// newTopic allocates a topic record: the retention ring and one cursor
// record per consumer group. Fresh memory reads as zero, so only the
// pointers and the group count need initializing stores.
func newTopic(tx *stm.Tx, ringCap, groups int) mem.Addr {
	tp := tx.Alloc(tpSize)
	ring := txlib.NewRing(tx, ringCap)
	ga := tx.Alloc(groups)
	for i := 0; i < groups; i++ {
		tx.StoreAddr(ga+mem.Addr(i), tx.Alloc(grSize), stm.AccFresh)
	}
	tx.StoreAddr(tp+tpRing, ring, stm.AccFresh)
	tx.StoreAddr(tp+tpGroups, ga, stm.AccFresh)
	tx.Store(tp+tpNGroups, uint64(groups), stm.AccFresh)
	return tp
}

// addTopic creates a topic under the probe key. Returns false (and
// builds nothing) when the key is already present.
func (b Broker) addTopic(tx *stm.Tx, key mem.Addr, keyWords, ringCap, groups int) bool {
	if txlib.HTContains(tx, b.index, key, keyWords, txlib.TM, stm.AccStack) {
		return false
	}
	tp := newTopic(tx, ringCap, groups)
	txlib.HTInsertIfAbsent(tx, b.index, key, keyWords, uint64(tp), txlib.TM, stm.AccStack)
	return true
}

// topic returns the topic record stored under the probe key, if any.
func (b Broker) topic(tx *stm.Tx, key mem.Addr, keyWords int) (mem.Addr, bool) {
	data, ok := txlib.HTGet(tx, b.index, key, keyWords, txlib.TM, stm.AccStack)
	return mem.Addr(data), ok
}

// group returns the gi-th consumer-group record of a topic.
func group(tx *stm.Tx, tp mem.Addr, gi int) mem.Addr {
	ga := tx.LoadAddr(tp+tpGroups, txlib.TM)
	return tx.LoadAddr(ga+mem.Addr(gi), txlib.TM)
}

// publishOne appends one message to the topic: the header and payload
// are allocated and filled in captured memory (fresh provenance — the
// allocate-build-publish pattern), the checksum is computed over
// plain-provenance staging reads (runtime-capturable but statically
// opaque across the call), and only the final ring link and sequence
// bump touch definitely-shared words. A full ring drops and frees the
// oldest retained message first. shape sizes the payload for the
// assigned sequence; fill writes its content.
func publishOne(tx *stm.Tx, tp mem.Addr,
	shape func(seq uint64) int, fill func(payload mem.Addr, seq uint64, words int)) (seq uint64, dropped bool) {
	seq = tx.Load(tp+tpHead, txlib.TM)
	words := shape(seq)
	payload := tx.Alloc(words)
	fill(payload, seq, words)
	sum := txlib.HashWords(tx, payload, words, txlib.P)
	m := tx.Alloc(msgSize)
	tx.Store(m+msgSeq, seq, stm.AccFresh)
	tx.Store(m+msgWords, uint64(words), stm.AccFresh)
	tx.Store(m+msgSum, sum, stm.AccFresh)
	tx.StoreAddr(m+msgPayload, payload, stm.AccFresh)

	ring := txlib.RingSnapshot(tx, tx.LoadAddr(tp+tpRing, txlib.TM), txlib.TM)
	tail := tx.Load(tp+tpTail, txlib.TM)
	if seq-tail == ring.Cap {
		old := mem.Addr(ring.Get(tx, tail, txlib.TM))
		tx.Free(tx.LoadAddr(old+msgPayload, txlib.TM))
		tx.Free(old)
		tx.Store(tp+tpTail, tail+1, txlib.TM)
		dropped = true
	}
	ring.Set(tx, seq, uint64(m), txlib.TM)
	tx.Store(tp+tpHead, seq+1, txlib.TM)
	return seq, dropped
}

// readMessage checks a retained message against its stored checksum
// through full shared barriers: on the consumer side nothing is
// captured, so none of these accesses can be elided.
func readMessage(tx *stm.Tx, m mem.Addr, wantSeq uint64) bool {
	if tx.Load(m+msgSeq, txlib.TM) != wantSeq {
		return false
	}
	words := int(tx.Load(m+msgWords, txlib.TM))
	payload := tx.LoadAddr(m+msgPayload, txlib.TM)
	return txlib.HashWords(tx, payload, words, txlib.TM) == tx.Load(m+msgSum, txlib.TM)
}

// consume advances one consumer group's shared cursor by up to max
// retained messages, verifying each delivered message's checksum. A
// cursor that has fallen behind the retention window first skips ahead
// to the tail, accounting the lost sequences. Everything it touches is
// definitely shared: the contended read-modify-write regime capture
// analysis cannot help.
func consume(tx *stm.Tx, tp mem.Addr, gi, max int) (consumed, skipped, bad int) {
	g := group(tx, tp, gi)
	cursor := tx.Load(g+grCursor, txlib.TM)
	tail := tx.Load(tp+tpTail, txlib.TM)
	head := tx.Load(tp+tpHead, txlib.TM)
	if cursor < tail {
		skipped = int(tail - cursor)
		cursor = tail
	}
	ring := txlib.RingSnapshot(tx, tx.LoadAddr(tp+tpRing, txlib.TM), txlib.TM)
	for consumed < max && cursor < head {
		m := mem.Addr(ring.Get(tx, cursor, txlib.TM))
		if !readMessage(tx, m, cursor) {
			bad++
		}
		cursor++
		consumed++
	}
	if consumed > 0 || skipped > 0 {
		tx.Store(g+grCursor, cursor, txlib.TM)
		tx.Store(g+grInflight, tx.Load(g+grInflight, txlib.TM)+uint64(consumed), txlib.TM)
		tx.Store(g+grSkipped, tx.Load(g+grSkipped, txlib.TM)+uint64(skipped), txlib.TM)
	}
	return consumed, skipped, bad
}

// ack moves up to max in-flight messages of one group to acked — a
// pure read-modify-write on two contended shared words.
func ack(tx *stm.Tx, tp mem.Addr, gi, max int) int {
	g := group(tx, tp, gi)
	inflight := tx.Load(g+grInflight, txlib.TM)
	n := uint64(max)
	if inflight < n {
		n = inflight
	}
	if n > 0 {
		tx.Store(g+grInflight, inflight-n, txlib.TM)
		tx.Store(g+grAcked, tx.Load(g+grAcked, txlib.TM)+n, txlib.TM)
	}
	return int(n)
}

// lagScan visits up to limit topics and sums every consumer group's
// backlog (head − cursor). The running total lives in a transaction-
// local stack slot (captured-stack traffic), but the cursors and heads
// it reads are all shared.
func (b Broker) lagScan(tx *stm.Tx, limit int) uint64 {
	acc := tx.StackAlloc(1)
	tx.Store(acc, 0, stm.AccStack)
	seen := 0
	txlib.HTForEach(tx, b.index, txlib.TM, func(_ mem.Addr, _ int, data uint64) bool {
		tp := mem.Addr(data)
		head := tx.Load(tp+tpHead, txlib.TM)
		n := int(tx.Load(tp+tpNGroups, txlib.TM))
		for i := 0; i < n; i++ {
			cursor := tx.Load(group(tx, tp, i)+grCursor, txlib.TM)
			if cursor < head {
				tx.Store(acc, tx.Load(acc, stm.AccStack)+(head-cursor), stm.AccStack)
			}
		}
		seen++
		return seen < limit
	})
	return tx.Load(acc, stm.AccStack)
}
