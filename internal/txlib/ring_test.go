package txlib

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/stm"
)

func TestRingBasic(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	var r mem.Addr
	th.Atomic(func(tx *stm.Tx) { r = NewRing(tx, 4) })
	th.Atomic(func(tx *stm.Tx) {
		if got := RingCap(tx, r, TM); got != 4 {
			t.Errorf("cap = %d, want 4", got)
		}
		// Fresh slots read as zero.
		for seq := uint64(0); seq < 4; seq++ {
			if got := RingGet(tx, r, seq, TM); got != 0 {
				t.Errorf("fresh slot %d = %d, want 0", seq, got)
			}
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		for seq := uint64(0); seq < 4; seq++ {
			RingSet(tx, r, seq, 100+seq, TM)
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		for seq := uint64(0); seq < 4; seq++ {
			if got := RingGet(tx, r, seq, TM); got != 100+seq {
				t.Errorf("slot %d = %d, want %d", seq, got, 100+seq)
			}
		}
	})
}

// TestRingWraps checks the seq → slot mapping: a sequence overwrites
// exactly the slot of the sequence `capacity` before it, and the most
// recent `capacity` sequences stay addressable.
func TestRingWraps(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	var r mem.Addr
	th.Atomic(func(tx *stm.Tx) { r = NewRing(tx, 3) })
	th.Atomic(func(tx *stm.Tx) {
		for seq := uint64(0); seq < 10; seq++ {
			RingSet(tx, r, seq, seq*seq+1, TM)
		}
		for seq := uint64(7); seq < 10; seq++ { // retained window: 7, 8, 9
			if got := RingGet(tx, r, seq, TM); got != seq*seq+1 {
				t.Errorf("seq %d = %d, want %d", seq, got, seq*seq+1)
			}
		}
		// Sequence 4 aliases sequence 7's slot (4 % 3 == 7 % 3).
		if got := RingGet(tx, r, 4, TM); got != 7*7+1 {
			t.Errorf("aliased seq 4 = %d, want %d (seq 7's value)", got, 7*7+1)
		}
	})
}

// TestRingRejectsBadCapacity: a capacity below 1 used to be silently
// clamped to 1 — a ring that retains one message where the caller
// sized for zero. It must panic instead.
func TestRingRejectsBadCapacity(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	for _, bad := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRing(%d) did not panic", bad)
				}
			}()
			th.Atomic(func(tx *stm.Tx) { NewRing(tx, bad) })
		}()
	}
	rt.Validate() // the panicking transactions must have rolled back
}

func TestRingMinCapacityAndFree(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	var r mem.Addr
	th.Atomic(func(tx *stm.Tx) { r = NewRing(tx, 1) })
	th.Atomic(func(tx *stm.Tx) {
		if got := RingCap(tx, r, TM); got != 1 {
			t.Errorf("cap = %d, want 1", got)
		}
		RingSet(tx, r, 41, 7, TM)
		if got := RingGet(tx, r, 41, TM); got != 7 {
			t.Errorf("slot = %d, want 7", got)
		}
	})
	th.Atomic(func(tx *stm.Tx) { RingFree(tx, r, TM) })
	rt.Validate()
}

// TestRingViewMatchesAccessors: the snapshot path must observe and
// produce exactly what the per-access helpers do.
func TestRingViewMatchesAccessors(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	var r mem.Addr
	th.Atomic(func(tx *stm.Tx) { r = NewRing(tx, 3) })
	th.Atomic(func(tx *stm.Tx) {
		v := RingSnapshot(tx, r, TM)
		if int(v.Cap) != RingCap(tx, r, TM) {
			t.Errorf("view cap = %d, RingCap = %d", v.Cap, RingCap(tx, r, TM))
		}
		for seq := uint64(0); seq < 9; seq++ {
			v.Set(tx, seq, seq*3+1, TM)
		}
		for seq := uint64(6); seq < 9; seq++ { // retained window
			if got, want := RingGet(tx, r, seq, TM), seq*3+1; got != want {
				t.Errorf("RingGet(%d) = %d, want %d (view wrote it)", seq, got, want)
			}
			if got := v.Get(tx, seq, TM); got != RingGet(tx, r, seq, TM) {
				t.Errorf("view Get(%d) = %d, RingGet = %d", seq, got, RingGet(tx, r, seq, TM))
			}
		}
	})
	rt.Validate()
}
