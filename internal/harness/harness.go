// Package harness runs the paper's experiments: it instantiates a
// workload from the tm registry under an optimization profile, times
// the parallel phase over repeated runs, validates the result, and
// formats the tables and figure series of the evaluation section
// (Sec. 4). The public façade over this package is tm/bench.
package harness

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/tm"
)

// Result is the outcome of running one workload under one profile at
// one thread count.
type Result struct {
	Bench   string
	Config  string
	Engine  string // barrier engine the profile compiled to
	Threads int
	Times   []time.Duration // one per run
	Stats   tm.Stats        // from the last run

	// PhaseStats is the per-phase breakdown of the last run, populated
	// only when the profile declares phases (tm.WithPhases).
	PhaseStats []tm.PhaseStats

	// Adaptive holds the final engine selection of every adaptive phase
	// kind, populated only under online engine selection
	// (tm.WithAdaptive).
	Adaptive []tm.AdaptiveSelection

	// CM is the contention-management block: the default manager, the
	// per-kind manager map, and the wait totals. Nil for the trivial
	// case (all-backoff, zero waits), so pre-existing reports compare
	// clean.
	CM *CMResult

	// Latency is the open-loop service-time block, populated only by
	// RunOpenLoop (nil for throughput results).
	Latency *LatencyStats

	// Durability holds the redo-log and checkpoint counters of the last
	// run, populated only under tm.WithDurability.
	Durability *tm.DurabilityStats
}

// Run executes the workload `runs` times (fresh instance each run;
// setup and validation excluded from timing) and returns the result.
// Workloads are resolved through the tm registry, so anything
// registered with tm.RegisterWorkload — the STAMP ports or an
// external scenario package — runs identically.
func Run(bench string, p tm.Profile, threads, runs int) (Result, error) {
	res := Result{Bench: bench, Config: p.Name(), Threads: threads}
	for i := 0; i < runs; i++ {
		w, err := tm.NewWorkload(bench)
		if err != nil {
			return res, err
		}
		rt := tm.Open(append(p.Options(), tm.WithMemory(w.MemConfig()))...)
		w.Setup(rt)
		rt.ResetStats() // report the timed phase only
		res.Times = append(res.Times, timedRun(w, rt, threads))
		// Snapshot before Validate: validation may itself transact
		// (tmmsg walks every topic, vacation re-reads every table), and
		// that work must not leak into the reported counters.
		snap := rt.Snapshot()
		res.Engine = snap.Engine
		res.Stats = snap.Stats
		res.Durability = snap.Durability
		if len(rt.Phases()) > 0 {
			res.PhaseStats = snap.Phases
		}
		res.Adaptive = snap.Adaptive
		res.CM = cmResult(snap)
		if err := w.Validate(rt); err != nil {
			rt.Close()
			return res, fmt.Errorf("%s [%s, %d threads]: %w", bench, p.Name(), threads, err)
		}
		if err := rt.Close(); err != nil {
			return res, fmt.Errorf("%s [%s, %d threads]: closing runtime: %w", bench, p.Name(), threads, err)
		}
	}
	return res, nil
}

// CMResult is the contention-management block of a Result: the default
// phase's manager, every kind whose manager differs from it (manual
// declarations and adaptive selections alike), and the run's wait
// totals (Stats.Waits/WaitNs summed over phases).
type CMResult struct {
	Default string
	Kinds   []CMKind
	Waits   uint64
	WaitNs  uint64
}

// CMKind maps one phase kind to its active contention manager.
type CMKind struct {
	Kind    string
	Manager string
}

// cmResult extracts the contention-management block from a snapshot.
// It returns nil for the trivial case — backoff everywhere and zero
// waits — so reports from before the layer existed stay comparable.
func cmResult(snap tm.Snapshot) *CMResult {
	if len(snap.Phases) == 0 {
		return nil
	}
	cm := &CMResult{
		Default: snap.Phases[0].CM,
		Waits:   snap.Stats.Waits,
		WaitNs:  snap.Stats.WaitNs,
	}
	for _, ps := range snap.Phases[1:] {
		if ps.Variant != "" {
			continue // adaptive variants report through snap.Adaptive
		}
		if ps.CM != cm.Default {
			cm.Kinds = append(cm.Kinds, CMKind{Kind: ps.Kind, Manager: ps.CM})
		}
	}
	for _, sel := range snap.Adaptive {
		if sel.CM != cm.Default {
			cm.Kinds = append(cm.Kinds, CMKind{Kind: sel.Kind, Manager: sel.CM})
		}
	}
	if cm.Default == tm.CMBackoff && len(cm.Kinds) == 0 && cm.Waits == 0 {
		return nil
	}
	return cm
}

// timedRun times the parallel phase with the Go runtime quiesced: GC
// now, then hold the collector off until the run finishes (the
// workloads allocate little Go memory), so the timed region measures
// the STM. The deferred restore keeps GC enabled for the rest of the
// process even when a workload panics.
func timedRun(w tm.Workload, rt *tm.Runtime, threads int) time.Duration {
	runtime.GC()
	gcPct := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcPct)
	start := time.Now()
	w.Run(rt, threads)
	return time.Since(start)
}

// RunMatrix measures the workload under every profile, interleaving
// the profiles round-robin so slow drift in machine speed (thermal,
// noisy neighbors) biases no configuration. Results are indexed like
// profiles.
func RunMatrix(bench string, profiles []tm.Profile, threads, runs int) ([]Result, error) {
	results := make([]Result, len(profiles))
	for i, p := range profiles {
		results[i] = Result{Bench: bench, Config: p.Name(), Threads: threads}
	}
	for r := 0; r < runs; r++ {
		for i, p := range profiles {
			one, err := Run(bench, p, threads, 1)
			if err != nil {
				return nil, err
			}
			results[i].Engine = one.Engine
			results[i].Times = append(results[i].Times, one.Times[0])
			results[i].Stats = one.Stats
			results[i].PhaseStats = one.PhaseStats
			results[i].Adaptive = one.Adaptive
			results[i].CM = one.CM
			results[i].Durability = one.Durability
		}
	}
	return results, nil
}

// DefaultThreadCounts returns a machine-sized sweep: every power of two
// below the CPU count, then the CPU count itself — e.g. 1,2,4,8 on an
// 8-way machine, 1,2,4,6 on a 6-way one.
func DefaultThreadCounts() []int {
	n := runtime.NumCPU()
	var ts []int
	for t := 1; t < n; t *= 2 {
		ts = append(ts, t)
	}
	return append(ts, n)
}

// Sweep measures the workload under the profile at each thread count —
// one scaling curve, ready for WriteJSON so curves can be diffed across
// machines and PRs. A nil threadCounts uses DefaultThreadCounts.
func Sweep(bench string, p tm.Profile, threadCounts []int, runs int) ([]Result, error) {
	if len(threadCounts) == 0 {
		threadCounts = DefaultThreadCounts()
	}
	results := make([]Result, 0, len(threadCounts))
	for _, th := range threadCounts {
		res, err := Run(bench, p, th, runs)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// SweepMatrix runs Sweep for every profile and concatenates the
// results: the full bench × profile × threads grid of one workload.
func SweepMatrix(bench string, profiles []tm.Profile, threadCounts []int, runs int) ([]Result, error) {
	var all []Result
	for _, p := range profiles {
		results, err := Sweep(bench, p, threadCounts, runs)
		if err != nil {
			return nil, err
		}
		all = append(all, results...)
	}
	return all, nil
}

// Mean returns the mean run time.
func (r Result) Mean() time.Duration {
	var sum time.Duration
	for _, t := range r.Times {
		sum += t
	}
	return sum / time.Duration(len(r.Times))
}

// Median returns the median run time (robust against scheduler noise).
func (r Result) Median() time.Duration {
	ts := append([]time.Duration(nil), r.Times...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts[len(ts)/2]
}

// Min returns the fastest run time. For CPU-bound runs on a shared
// machine the minimum is the most repeatable comparison statistic:
// noise (scheduler preemption, frequency shifts, collector activity)
// only ever adds time.
func (r Result) Min() time.Duration {
	min := r.Times[0]
	for _, t := range r.Times[1:] {
		if t < min {
			min = t
		}
	}
	return min
}

// RelStdDev returns the percent relative standard deviation of the run
// times — the paper's Table 2 metric.
func (r Result) RelStdDev() float64 {
	if len(r.Times) < 2 {
		return 0
	}
	m := float64(r.Mean())
	var ss float64
	for _, t := range r.Times {
		d := float64(t) - m
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(r.Times)-1))
	return 100 * sd / m
}

// Improvement returns the percent performance improvement of opt over
// base (the paper's Fig. 10/11 metric): positive means opt is faster.
// It compares minima (see Min).
func Improvement(base, opt Result) float64 {
	return 100 * (float64(base.Min()) - float64(opt.Min())) / float64(base.Min())
}

// PhaseRegimeSpecs returns the canonical three-regime phase
// declaration: publish-shaped transactions onto the capture-checking
// engines, cursor-shaped ones onto the definitely-shared bypass, and
// scan-shaped ones onto the read-mostly engine — the mapping the
// scenario drivers' EnterPhase hints are written for. Everything that
// A/Bs phase hints (the phased engine-equivalence differential,
// stampbench -phases, BenchmarkTMMSGPhased) must build on this one
// declaration, or the certified mapping and the measured one drift
// apart silently. The scan fragment carries the same capture shape as
// publish so its upgrade target — and the adaptive readmostly
// variant's configuration — match the capture engine exactly.
// Each regime also declares its contention manager: publish
// transactions are short and conflict rarely (immediate retry), the
// cursor hot spot parks losers on the owner (queue), and scans keep
// the backoff default — long read sets racing steady writers want the
// randomized separation, not a park on one owner among many.
func PhaseRegimeSpecs() []tm.PhaseSpec {
	return []tm.PhaseSpec{
		tm.PhaseProfile(tm.PhasePublish,
			tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap), tm.WithLogKind(tm.LogTree),
			tm.WithContention(tm.CMNone)),
		tm.PhaseProfile(tm.PhaseCursor, tm.WithSkipSharedChecks(), tm.WithContention(tm.CMQueue)),
		tm.PhaseProfile(tm.PhaseScan,
			tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap), tm.WithLogKind(tm.LogTree),
			tm.WithReadMostly(), tm.WithContention(tm.CMBackoff)),
	}
}

// --- Profile sets from the paper's evaluation ---

// Fig10Configs returns the profiles compared in Fig. 10 and
// Fig. 11(a): the baseline, the three runtime variants (tree log), and
// the compiler optimization.
func Fig10Configs() []tm.Profile {
	return []tm.Profile{
		tm.Baseline(),
		tm.RuntimeAll(tm.LogTree),
		tm.RuntimeWrite(tm.LogTree),
		tm.RuntimeHeapWrite(tm.LogTree),
		tm.CompilerElision(),
	}
}

// Fig11bConfigs returns the profiles of Fig. 11(b): heap-only
// write-barrier runtime checks under each log implementation, plus the
// compiler.
func Fig11bConfigs() []tm.Profile {
	return []tm.Profile{
		tm.Baseline(),
		tm.RuntimeHeapWrite(tm.LogTree),
		tm.RuntimeHeapWrite(tm.LogArray),
		tm.RuntimeHeapWrite(tm.LogFilter),
		tm.CompilerElision(),
	}
}

// Table1Configs returns the profiles of Table 1 / Table 2: baseline,
// the three full runtime variants, and the compiler.
func Table1Configs() []tm.Profile {
	return []tm.Profile{
		tm.Baseline(),
		tm.RuntimeAll(tm.LogTree),
		tm.RuntimeAll(tm.LogArray),
		tm.RuntimeAll(tm.LogFilter),
		tm.CompilerElision(),
	}
}

// Benches returns the STAMP roster in the paper's Table 1 order.
func Benches() []string {
	return []string{
		"bayes", "genome", "intruder", "kmeans-high", "kmeans-low",
		"labyrinth", "ssca2", "vacation-high", "vacation-low", "yada",
	}
}

// AllWorkloads returns every workload registered in this process: the
// STAMP roster first, in the paper's order, then any other registered
// scenarios sorted by name. The bench matrix and report tables iterate
// this, so external scenario packages show up with zero special-casing.
func AllWorkloads() []string {
	stampSet := make(map[string]bool)
	names := make([]string, 0, len(tm.Workloads()))
	for _, b := range Benches() {
		stampSet[b] = true
	}
	registered := make(map[string]bool)
	for _, b := range tm.Workloads() {
		registered[b] = true
	}
	for _, b := range Benches() {
		if registered[b] {
			names = append(names, b)
		}
	}
	for _, b := range tm.Workloads() { // already sorted
		if !stampSet[b] {
			names = append(names, b)
		}
	}
	return names
}
