package tm

// White-box tests: the functional options and preset profiles must
// build exactly the stm.OptConfig values the engine's own constructors
// produce, so results stay comparable with the paper's configuration
// names.

import (
	"reflect"
	"testing"

	"repro/internal/capture"
	"repro/internal/mem"
	"repro/internal/stm"
)

func buildCfg(t *testing.T, opts ...Option) stm.OptConfig {
	t.Helper()
	_, cfg := build(opts)
	return cfg
}

func TestPresetProfilesMatchEngineConstructors(t *testing.T) {
	cases := []struct {
		profile Profile
		want    stm.OptConfig
	}{
		{Baseline(), stm.Baseline()},
		{Counting(), stm.CountingConfig()},
		{RuntimeAll(LogTree), stm.RuntimeAll(capture.KindTree)},
		{RuntimeAll(LogArray), stm.RuntimeAll(capture.KindArray)},
		{RuntimeAll(LogFilter), stm.RuntimeAll(capture.KindFilter)},
		{RuntimeWrite(LogTree), stm.RuntimeWrite(capture.KindTree)},
		{RuntimeHeapWrite(LogFilter), stm.RuntimeHeapWrite(capture.KindFilter)},
		{CompilerElision(), stm.Compiler()},
		{RuntimeAll(LogTree).Perf(), stm.RuntimeAll(capture.KindTree).Perf()},
	}
	for _, c := range cases {
		got := buildCfg(t, c.profile.Options()...)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("profile %q built %+v, want %+v", c.profile.Name(), got, c.want)
		}
	}
}

func TestOptionFieldMapping(t *testing.T) {
	cfg := buildCfg(t,
		WithName("x"),
		WithRuntimeCapture(Checks{Stack: true}, Checks{Heap: true}),
		WithLogKind(LogArray),
		WithArrayCap(7),
		WithFilterBits(9),
		WithOrecBits(12),
		WithAnnotations(),
		WithCounting(),
		WithPerfMode(),
		WithSkipSharedChecks(),
		WithoutWAWFilter(),
	)
	want := stm.OptConfig{
		Name:             "x",
		Read:             stm.BarrierOpt{Stack: true},
		Write:            stm.BarrierOpt{Heap: true},
		LogKind:          capture.KindArray,
		ArrayCap:         7,
		FilterBits:       9,
		OrecBits:         12,
		Annotations:      true,
		Counting:         true,
		PerfMode:         true,
		SkipSharedChecks: true,
		NoWAWFilter:      true,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("built %+v, want %+v", cfg, want)
	}
	if cfg := buildCfg(t, WithCompilerElision()); !cfg.Compiler {
		t.Error("WithCompilerElision did not set Compiler")
	}
	// VerifyElision needs the precise log; the option must imply
	// Counting or the engine panics at first transaction.
	cfg = buildCfg(t, WithVerifyElision())
	if !cfg.VerifyElision || !cfg.Counting {
		t.Errorf("WithVerifyElision built %+v, want VerifyElision+Counting", cfg)
	}
	if cfg := buildCfg(t, WithEngine(EngineGeneric)); !cfg.ForceGeneric {
		t.Error("WithEngine(EngineGeneric) did not set ForceGeneric")
	}
	if cfg := buildCfg(t, WithEngine(EngineGeneric), WithEngine(EngineAuto)); cfg.ForceGeneric {
		t.Error("WithEngine(EngineAuto) did not clear ForceGeneric")
	}
}

// TestWithPhasesBuildsFragmentsOverFinalBase: phase fragments overlay
// the FINAL base configuration — options appearing after WithPhases in
// the list still reach the phase configs — and fragments cannot smuggle
// in nested phase declarations or memory changes.
func TestWithPhasesBuildsFragmentsOverFinalBase(t *testing.T) {
	_, cfg := build([]Option{
		WithPhases(
			PhaseProfile(PhasePublish, WithRuntimeCapture(StackAndHeap, StackAndHeap)),
			PhaseProfile(PhaseCursor, WithSkipSharedChecks(),
				WithPhases(PhaseProfile("sneaky")),     // ignored: phases do not nest
				WithMemory(MemConfig{GlobalWords: 1})), // ignored: memory is per-Runtime
		),
		WithPerfMode(), // after WithPhases: must still reach the fragments
		WithLogKind(LogArray),
	})
	if len(cfg.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(cfg.Phases))
	}
	pub, cur := cfg.Phases[0], cfg.Phases[1]
	if pub.Kind != PhasePublish || cur.Kind != PhaseCursor {
		t.Errorf("kinds = %q,%q", pub.Kind, cur.Kind)
	}
	if !pub.Cfg.PerfMode || !cur.Cfg.PerfMode {
		t.Error("option after WithPhases did not reach the fragments")
	}
	if pub.Cfg.LogKind != capture.KindArray {
		t.Errorf("publish fragment log kind = %v, want the base's array", pub.Cfg.LogKind)
	}
	if pub.Cfg.Read != (stm.BarrierOpt{Stack: true, Heap: true}) {
		t.Errorf("publish fragment read checks = %+v", pub.Cfg.Read)
	}
	if !cur.Cfg.SkipSharedChecks || cur.Cfg.Read.Stack {
		t.Errorf("cursor fragment = %+v", cur.Cfg)
	}
	if len(cur.Cfg.Phases) != 0 {
		t.Error("nested phase declaration leaked into a fragment")
	}
	// The base config itself must not inherit fragment options.
	if cfg.SkipSharedChecks || cfg.Read.Stack {
		t.Errorf("fragment options leaked into the base: %+v", cfg)
	}
}

// TestPhasedOpenEndToEnd drives the public surface: declared kinds,
// per-phase engine names, hint fallbacks, and per-phase stats rows.
func TestPhasedOpenEndToEnd(t *testing.T) {
	rt := Open(
		WithPerfMode(),
		WithPhases(
			PhaseProfile(PhasePublish, WithRuntimeCapture(StackAndHeap, StackAndHeap), WithLogKind(LogTree)),
			PhaseProfile(PhaseCursor, WithSkipSharedChecks()),
		),
		WithMemory(MemConfig{GlobalWords: 64, HeapWords: 1 << 16, StackWords: 1 << 8, MaxThreads: 2}),
	)
	if got := rt.Engine(); got != "perf-noinstr+phases" {
		t.Errorf("Engine() = %q", got)
	}
	if got := rt.EngineFor(PhasePublish); got != "perf-rw-stack-heap-tree" {
		t.Errorf("EngineFor(publish) = %q", got)
	}
	if got := rt.EngineFor(PhaseCursor); got != "perf-skipshared" {
		t.Errorf("EngineFor(cursor) = %q", got)
	}
	if ph := rt.Phases(); len(ph) != 2 || ph[0] != PhasePublish || ph[1] != PhaseCursor {
		t.Errorf("Phases() = %v", ph)
	}
	th := rt.Thread(0)
	cell := rt.AllocGlobal(1).Word(0)
	th.Atomic(func(tx *Tx) { cell.Add(tx, 1) }) // default phase
	th.EnterPhase(PhasePublish)
	if th.Phase() != PhasePublish {
		t.Errorf("Phase() = %q", th.Phase())
	}
	th.Atomic(func(tx *Tx) { cell.Add(tx, 1) })
	th.EnterPhase("undeclared-kind")
	if th.Phase() != "" {
		t.Errorf("undeclared kind selected phase %q, want default", th.Phase())
	}
	th.Atomic(func(tx *Tx) { cell.Add(tx, 1) })
	if got := cell.Peek(rt); got != 3 {
		t.Errorf("cell = %d, want 3", got)
	}
	ps := rt.PhaseStats()
	if len(ps) != 3 {
		t.Fatalf("PhaseStats rows = %d, want 3", len(ps))
	}
	if ps[0].Stats.Commits != 2 || ps[1].Stats.Commits != 1 || ps[2].Stats.Commits != 0 {
		t.Errorf("per-phase commits = %d,%d,%d, want 2,1,0",
			ps[0].Stats.Commits, ps[1].Stats.Commits, ps[2].Stats.Commits)
	}
	rt.Validate()
}

func TestMemoryAndDefaults(t *testing.T) {
	mc, cfg := build(nil)
	if mc != mem.DefaultConfig() {
		t.Errorf("default memory = %+v", mc)
	}
	if cfg.Name != "custom" {
		t.Errorf("default name = %q", cfg.Name)
	}
	custom := MemConfig{GlobalWords: 8, HeapWords: 16, StackWords: 4, MaxThreads: 2}
	mc, _ = build([]Option{WithMemory(custom)})
	if mc != custom {
		t.Errorf("WithMemory = %+v, want %+v", mc, custom)
	}
}

func TestProfileWithDoesNotAliasBase(t *testing.T) {
	base := NewProfile("base", WithCounting())
	a := base.With(WithPerfMode())
	b := base.With(WithOrecBits(8))
	acfg := buildCfg(t, a.Options()...)
	bcfg := buildCfg(t, b.Options()...)
	if acfg.OrecBits != 0 || !acfg.PerfMode {
		t.Errorf("profile a contaminated: %+v", acfg)
	}
	if bcfg.PerfMode || bcfg.OrecBits != 8 {
		t.Errorf("profile b contaminated: %+v", bcfg)
	}
	if a.Name() != "base" || b.Named("renamed").Name() != "renamed" {
		t.Error("profile naming broken")
	}
}
