// Package harness runs the paper's experiments: it instantiates a
// benchmark under an optimization configuration, times the parallel
// phase over repeated runs, validates the result, and formats the
// tables and figure series of the evaluation section (Sec. 4).
package harness

import (
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/capture"
	"repro/internal/stamp"
	"repro/internal/stm"
)

// Result is the outcome of running one benchmark under one
// configuration at one thread count.
type Result struct {
	Bench   string
	Config  string
	Threads int
	Times   []time.Duration // one per run
	Stats   stm.Stats       // from the last run
}

// Run executes the benchmark `runs` times (fresh instance each run;
// setup and validation excluded from timing) and returns the result.
func Run(bench string, cfg stm.OptConfig, threads, runs int) (Result, error) {
	res := Result{Bench: bench, Config: cfg.Name, Threads: threads}
	for i := 0; i < runs; i++ {
		b, err := stamp.New(bench)
		if err != nil {
			return res, err
		}
		rt := stm.New(b.MemConfig(), cfg)
		b.Setup(rt)
		rt.ResetStats() // report the timed phase only
		// Quiesce the Go runtime so the timed region measures the STM,
		// not the collector: GC now, then hold it off until the run
		// finishes (the workloads allocate little Go memory).
		runtime.GC()
		gcPct := debug.SetGCPercent(-1)
		start := time.Now()
		b.Run(rt, threads)
		res.Times = append(res.Times, time.Since(start))
		debug.SetGCPercent(gcPct)
		if err := b.Validate(rt); err != nil {
			return res, fmt.Errorf("%s [%s, %d threads]: %w", bench, cfg.Name, threads, err)
		}
		res.Stats = rt.Stats()
	}
	return res, nil
}

// RunMatrix measures bench under every configuration, interleaving
// the configurations round-robin so slow drift in machine speed
// (thermal, noisy neighbors) biases no configuration. Results are
// indexed like cfgs.
func RunMatrix(bench string, cfgs []stm.OptConfig, threads, runs int) ([]Result, error) {
	results := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		results[i] = Result{Bench: bench, Config: cfg.Name, Threads: threads}
	}
	for r := 0; r < runs; r++ {
		for i, cfg := range cfgs {
			one, err := Run(bench, cfg, threads, 1)
			if err != nil {
				return nil, err
			}
			results[i].Times = append(results[i].Times, one.Times[0])
			results[i].Stats = one.Stats
		}
	}
	return results, nil
}

// Mean returns the mean run time.
func (r Result) Mean() time.Duration {
	var sum time.Duration
	for _, t := range r.Times {
		sum += t
	}
	return sum / time.Duration(len(r.Times))
}

// Median returns the median run time (robust against scheduler noise).
func (r Result) Median() time.Duration {
	ts := append([]time.Duration(nil), r.Times...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts[len(ts)/2]
}

// Min returns the fastest run time. For CPU-bound runs on a shared
// machine the minimum is the most repeatable comparison statistic:
// noise (scheduler preemption, frequency shifts, collector activity)
// only ever adds time.
func (r Result) Min() time.Duration {
	min := r.Times[0]
	for _, t := range r.Times[1:] {
		if t < min {
			min = t
		}
	}
	return min
}

// RelStdDev returns the percent relative standard deviation of the run
// times — the paper's Table 2 metric.
func (r Result) RelStdDev() float64 {
	if len(r.Times) < 2 {
		return 0
	}
	m := float64(r.Mean())
	var ss float64
	for _, t := range r.Times {
		d := float64(t) - m
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(r.Times)-1))
	return 100 * sd / m
}

// Improvement returns the percent performance improvement of opt over
// base (the paper's Fig. 10/11 metric): positive means opt is faster.
// It compares minima (see Min).
func Improvement(base, opt Result) float64 {
	return 100 * (float64(base.Min()) - float64(opt.Min())) / float64(base.Min())
}

// --- Configuration sets from the paper's evaluation ---

// Fig10Configs returns the configurations compared in Fig. 10 and
// Fig. 11(a): the baseline, the three runtime variants (tree log), and
// the compiler optimization.
func Fig10Configs() []stm.OptConfig {
	return []stm.OptConfig{
		stm.Baseline(),
		stm.RuntimeAll(capture.KindTree),
		stm.RuntimeWrite(capture.KindTree),
		stm.RuntimeHeapWrite(capture.KindTree),
		stm.Compiler(),
	}
}

// Fig11bConfigs returns the configurations of Fig. 11(b): heap-only
// write-barrier runtime checks under each log implementation, plus the
// compiler.
func Fig11bConfigs() []stm.OptConfig {
	return []stm.OptConfig{
		stm.Baseline(),
		stm.RuntimeHeapWrite(capture.KindTree),
		stm.RuntimeHeapWrite(capture.KindArray),
		stm.RuntimeHeapWrite(capture.KindFilter),
		stm.Compiler(),
	}
}

// Table1Configs returns the configurations of Table 1 / Table 2:
// baseline, the three full runtime variants, and the compiler.
func Table1Configs() []stm.OptConfig {
	return []stm.OptConfig{
		stm.Baseline(),
		stm.RuntimeAll(capture.KindTree),
		stm.RuntimeAll(capture.KindArray),
		stm.RuntimeAll(capture.KindFilter),
		stm.Compiler(),
	}
}

// Benches returns the benchmark roster in the paper's Table 1 order.
func Benches() []string {
	return []string{
		"bayes", "genome", "intruder", "kmeans-high", "kmeans-low",
		"labyrinth", "ssca2", "vacation-high", "vacation-low", "yada",
	}
}
