package serve

import (
	"errors"
	"runtime"
	"sync"

	"repro/tm"
)

// Config sizes a Server.
type Config struct {
	// Workers is the worker-pool size; each worker owns one tm.Thread
	// and one tm.Batcher. <1 defaults to runtime.NumCPU(), the top of
	// the harness's DefaultThreadCounts grid.
	Workers int
	// MergeWidth is the maximum requests merged into one transaction;
	// 1 disables merging (every request runs in its own transaction).
	// <1 defaults to 1.
	MergeWidth int
	// AdaptiveWidth makes MergeWidth a ceiling instead of the fixed
	// width: each worker's batcher starts at width 1 and adapts within
	// [1, MergeWidth] from its own merge/fallback history
	// (tm.NewAdaptiveBatcher). The workers' flush thresholds follow the
	// live width automatically.
	AdaptiveWidth bool
	// WidthPolicy tunes adaptive width selection; the zero value uses
	// the tm package defaults. Ignored unless AdaptiveWidth is set.
	WidthPolicy tm.WidthPolicy
	// QueueDepth is the accept-queue capacity; Submit blocks when it
	// is full. <1 defaults to 4 × Workers × MergeWidth.
	QueueDepth int
	// Requests hints how many requests the server will execute, for
	// memory sizing. <1 defaults to 1<<16.
	Requests int
	// Options configure the transactional runtime (a tm.Profile's
	// Options(), typically). The backend's MemConfig is applied on
	// top, so profile options need not size memory.
	Options []tm.Option
}

// Reply is the application-visible outcome of one request.
type Reply struct {
	// Aborted reports that the request's Apply refused it in its own
	// transaction (after merged fallback, if any).
	Aborted bool
	// Merged reports that the request committed inside a merged
	// multi-request transaction.
	Merged bool
	// Words is the backend's ReplyWords-word reply block.
	Words []uint64
}

// job is one accepted request traveling to a worker.
type job struct {
	item tm.BatchItem
	done func(Reply)
}

// Server executes decoded requests on a pool of workers, merging
// compatible ones into single transactions. Lifecycle: NewServer
// (opens the runtime, runs the backend's Setup), Start, any number of
// concurrent Submits, Stop (drains and joins). Submit must not be
// called after Stop.
type Server struct {
	be       Backend
	cfg      Config
	rt       *tm.Runtime
	jobs     chan job
	wg       sync.WaitGroup
	batchers []*tm.Batcher

	// stopMu orders submissions against Stop: submitters hold the read
	// side while sending, Stop takes the write side before closing the
	// queue, so a late Submit returns ErrStopped instead of panicking on
	// a closed channel.
	stopMu  sync.RWMutex
	stopped bool
}

// ErrStopped is returned by Submit and SubmitRequest after Stop has
// begun.
var ErrStopped = errors.New("serve: server stopped")

// NewServer opens a runtime sized by the backend and populated by its
// Setup, ready to Start.
func NewServer(be Backend, cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.MergeWidth < 1 {
		cfg.MergeWidth = 1
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 4 * cfg.Workers * cfg.MergeWidth
	}
	if cfg.Requests < 1 {
		cfg.Requests = 1 << 16
	}
	opts := make([]tm.Option, 0, len(cfg.Options)+1)
	opts = append(opts, cfg.Options...)
	opts = append(opts, tm.WithMemory(be.MemConfig(cfg.Workers, cfg.Requests)))
	rt := tm.Open(opts...)
	be.Setup(rt)
	s := &Server{
		be:       be,
		cfg:      cfg,
		rt:       rt,
		jobs:     make(chan job, cfg.QueueDepth),
		batchers: make([]*tm.Batcher, cfg.Workers),
	}
	for i := range s.batchers {
		if cfg.AdaptiveWidth {
			s.batchers[i] = tm.NewAdaptiveBatcher(rt.Thread(i), cfg.MergeWidth, be.ReplyWords(), cfg.WidthPolicy)
		} else {
			s.batchers[i] = tm.NewBatcher(rt.Thread(i), cfg.MergeWidth, be.ReplyWords())
		}
	}
	return s
}

// Runtime returns the server's transactional runtime (statistics,
// validation).
func (s *Server) Runtime() *tm.Runtime { return s.rt }

// Backend returns the backend this server was built over.
func (s *Server) Backend() Backend { return s.be }

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
}

// Stop closes the accept queue, waits for the workers to drain it and
// flush their batches, then closes the server-owned runtime (flushing
// and sealing its redo log when the profile included tm.WithDurability).
// Every submitted request's done callback has run when Stop returns.
// Stop is idempotent; calls after the first return once the first drain
// has finished, reporting the same close outcome.
func (s *Server) Stop() error {
	s.stopMu.Lock()
	already := s.stopped
	s.stopped = true
	s.stopMu.Unlock()
	if !already {
		close(s.jobs)
	}
	s.wg.Wait()
	return s.rt.Close()
}

// Submit decodes one wire-encoded request and queues it; done is
// invoked with the reply on the serving worker's goroutine. It blocks
// while the accept queue is full, returns a codec error (leaving done
// uncalled) for a request that does not decode to exactly the given
// bytes, and ErrStopped after Stop has begun.
func (s *Server) Submit(wire []byte, done func(Reply)) error {
	req, n, err := DecodeRequest(wire)
	if err != nil {
		return err
	}
	if n != len(wire) {
		return ErrBadRequest
	}
	return s.SubmitRequest(req, done)
}

// SubmitRequest queues an already-decoded request (the in-process
// shortcut past the codec). It returns ErrStopped — leaving done
// uncalled — once Stop has begun.
func (s *Server) SubmitRequest(req Request, done func(Reply)) error {
	// The read lock spans the send: Stop cannot close the queue while
	// any submitter is between the stopped check and the send, and
	// workers keep draining until the close, so the send never blocks
	// against the drain.
	s.stopMu.RLock()
	defer s.stopMu.RUnlock()
	if s.stopped {
		return ErrStopped
	}
	s.jobs <- job{item: s.be.Item(req), done: done}
	return nil
}

// BatchStats sums the workers' batcher counters: requests, batches,
// merged commits, fallbacks, transactions. Call it after Stop (or
// before Start); reading while workers run is racy.
func (s *Server) BatchStats() tm.BatchStats {
	var sum tm.BatchStats
	for _, b := range s.batchers {
		st := b.Stats()
		sum.Requests += st.Requests
		sum.Batches += st.Batches
		sum.Merged += st.Merged
		sum.Fallbacks += st.Fallbacks
		sum.Txns += st.Txns
		sum.WidthGrows += st.WidthGrows
		sum.WidthShrinks += st.WidthShrinks
	}
	return sum
}

// Widths returns each worker's current merge width, in worker order —
// the final widths adaptive selection settled on when read after Stop.
func (s *Server) Widths() []int {
	out := make([]int, len(s.batchers))
	for i, b := range s.batchers {
		out[i] = b.Width()
	}
	return out
}

// worker is the per-thread serve loop: block for a request, then
// greedily drain the queue into the batcher, flushing when the batch
// fills, when an incompatible request arrives, or when the queue goes
// momentarily idle — so merging never trades latency for width beyond
// what the offered load sustains.
func (s *Server) worker(i int) {
	defer s.wg.Done()
	b := s.batchers[i]
	pending := make([]func(Reply), 0, b.Width())

	flush := func() {
		if b.Len() == 0 {
			return
		}
		res := b.Flush()
		for j, done := range pending {
			r := res.Replies[j]
			done(Reply{Aborted: r.Aborted, Merged: res.Merged && !r.Aborted, Words: r.Words})
		}
		pending = pending[:0]
	}
	admit := func(j job) {
		if !b.Admit(j.item) {
			flush()
			b.Admit(j.item) // an empty batch admits anything
		}
		pending = append(pending, j.done)
		if b.Len() >= b.Width() {
			flush()
		}
	}

	for {
		j, ok := <-s.jobs
		if !ok {
			flush()
			return
		}
		admit(j)
		for b.Len() > 0 {
			select {
			case j, ok := <-s.jobs:
				if !ok {
					flush()
					return
				}
				admit(j)
			default:
				flush()
			}
		}
	}
}
