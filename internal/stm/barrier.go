package stm

import (
	"math"

	"repro/internal/mem"
)

// This file is the barrier layer: the Load/Store entry points that
// dispatch into the engine compiled for the Runtime's profile
// (engine.go), the two instrumented reference chains (generic and
// counting), and the full-barrier slow paths every engine bottoms out
// in. The fast paths of the performance engines live in engine.go.

// Load performs a transactional read of the word at a. ac carries the
// access-site metadata (provenance for compiler elision; whether the
// original program hand-instrumented the access). The real work happens
// in the engine function selected once per Runtime, so the hot path
// re-tests no configuration state.
func (tx *Tx) Load(a mem.Addr, ac Acc) uint64 {
	return tx.load(tx, a, ac)
}

// Store performs a transactional write of the word at a.
func (tx *Tx) Store(a mem.Addr, val uint64, ac Acc) {
	tx.store(tx, a, val, ac)
}

// --- The generic reference chain ---
//
// loadGeneric/storeGeneric interpret the whole optimization profile at
// runtime: every cached configuration boolean is re-tested per access.
// This is the original barrier implementation, kept verbatim as the
// reference engine — differential tests force it with WithEngine and
// compare the specialized engines against it bit for bit.

func (tx *Tx) loadGeneric(a mem.Addr, ac Acc) uint64 {
	th := tx.th
	if tx.keepStats {
		st := th.stats
		st.ReadTotal++
		if ac.Manual {
			st.ReadManual++
		}
		if tx.counting {
			if tx.onTxStack(a) {
				st.ReadCapStack++
			} else if tx.clog.Contains(a, 1) {
				st.ReadCapHeap++
			}
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		th.stats.ReadElStatic += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.skipShared && ac.Prov == ProvShared {
		th.stats.ReadSkipShared += tx.statInc()
		th.stats.ReadFull += tx.statInc()
		return tx.readFull(a)
	}
	if tx.readStack && tx.onTxStack(a) {
		th.stats.ReadElStack += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.readHeap && tx.alogContains(a) {
		th.stats.ReadElHeap += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		th.stats.ReadElPriv += tx.statInc()
		return th.rt.space.Load(a)
	}
	th.stats.ReadFull += tx.statInc()
	return tx.readFull(a)
}

func (tx *Tx) storeGeneric(a mem.Addr, val uint64, ac Acc) {
	th := tx.th
	if tx.keepStats {
		st := th.stats
		st.WriteTotal++
		if ac.Manual {
			st.WriteManual++
		}
		if tx.counting {
			if tx.onTxStack(a) {
				st.WriteCapStack++
			} else if tx.clog.Contains(a, 1) {
				st.WriteCapHeap++
			}
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		th.stats.WriteElStatic += tx.statInc()
		tx.storeCaptured(a, val)
		return
	}
	if tx.skipShared && ac.Prov == ProvShared {
		th.stats.WriteSkipShared += tx.statInc()
		th.stats.WriteFull += tx.statInc()
		tx.writeFull(a, val)
		return
	}
	if tx.writeStack && tx.onTxStack(a) {
		th.stats.WriteElStack += tx.statInc()
		tx.storeCaptured(a, val)
		return
	}
	if tx.writeHeap && tx.alogContains(a) {
		th.stats.WriteElHeap += tx.statInc()
		tx.storeCaptured(a, val)
		return
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		// Annotated thread-local data can hold live-in values, so it
		// keeps undo logging but skips locking (Sec. 2.2.2).
		th.stats.WriteElPriv += tx.statInc()
		tx.logUndo(a)
		th.rt.space.Store(a, val)
		return
	}
	th.stats.WriteFull += tx.statInc()
	tx.writeFull(a, val)
}

// --- The counting (instrumented) chain ---
//
// loadCounting/storeCounting carry the full statistics accounting:
// barrier totals, the Fig. 8 classification, and per-mechanism elision
// counters. The engine selector picks this chain for every profile that
// keeps statistics (i.e. whenever PerfMode is off), so the accounting
// lives here and nowhere near the performance fast paths.

func (tx *Tx) loadCounting(a mem.Addr, ac Acc) uint64 {
	th := tx.th
	st := th.stats
	st.ReadTotal++
	if ac.Manual {
		st.ReadManual++
	}
	if tx.counting {
		if tx.onTxStack(a) {
			st.ReadCapStack++
		} else if tx.clog.Contains(a, 1) {
			st.ReadCapHeap++
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		st.ReadElStatic++
		return th.rt.space.Load(a)
	}
	if tx.skipShared && ac.Prov == ProvShared {
		st.ReadSkipShared++
		st.ReadFull++
		return tx.readFull(a)
	}
	if tx.readStack && tx.onTxStack(a) {
		st.ReadElStack++
		return th.rt.space.Load(a)
	}
	if tx.readHeap && tx.alogContains(a) {
		st.ReadElHeap++
		return th.rt.space.Load(a)
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		st.ReadElPriv++
		return th.rt.space.Load(a)
	}
	st.ReadFull++
	return tx.readFull(a)
}

func (tx *Tx) storeCounting(a mem.Addr, val uint64, ac Acc) {
	th := tx.th
	st := th.stats
	st.WriteTotal++
	if ac.Manual {
		st.WriteManual++
	}
	if tx.counting {
		if tx.onTxStack(a) {
			st.WriteCapStack++
		} else if tx.clog.Contains(a, 1) {
			st.WriteCapHeap++
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		st.WriteElStatic++
		tx.storeCaptured(a, val)
		return
	}
	if tx.skipShared && ac.Prov == ProvShared {
		st.WriteSkipShared++
		st.WriteFull++
		tx.writeFull(a, val)
		return
	}
	if tx.writeStack && tx.onTxStack(a) {
		st.WriteElStack++
		tx.storeCaptured(a, val)
		return
	}
	if tx.writeHeap && tx.alogContains(a) {
		st.WriteElHeap++
		tx.storeCaptured(a, val)
		return
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		// Annotated thread-local data can hold live-in values, so it
		// keeps undo logging but skips locking (Sec. 2.2.2).
		st.WriteElPriv++
		tx.logUndo(a)
		th.rt.space.Store(a, val)
		return
	}
	st.WriteFull++
	tx.writeFull(a, val)
}

// statInc returns 1 when statistics are kept, else 0, letting the
// generic reference chain stay branch-light under PerfMode.
func (tx *Tx) statInc() uint64 {
	if tx.keepStats {
		return 1
	}
	return 0
}

// --- Full-barrier slow paths (shared by every engine) ---

func (tx *Tx) readFull(a mem.Addr) uint64 {
	rt := tx.th.rt
	oi := rt.orecIndex(a)
	for {
		v1 := rt.orecs[oi].Load()
		if orecLocked(v1) {
			if orecOwner(v1) == tx.th.id {
				return rt.space.Load(a) // read-after-write, in place
			}
			tx.conflict()
		}
		if orecVersion(v1) > tx.rv {
			tx.extend()
			continue
		}
		val := rt.space.Load(a)
		if rt.orecs[oi].Load() != v1 {
			tx.conflict()
		}
		tx.readset = append(tx.readset, readEntry{oi, v1})
		return val
	}
}

// storeCaptured writes captured memory directly. At nesting depth > 1
// the location may be live-in for the nested transaction even though
// it is transaction-local to the outer one, so partial abort requires
// an undo entry (Sec. 2.2.1); at top level captured memory is dead on
// abort and skips undo logging entirely.
func (tx *Tx) storeCaptured(a mem.Addr, val uint64) {
	if tx.depth > 1 {
		tx.logUndo(a)
	}
	tx.th.rt.space.Store(a, val)
}

func (tx *Tx) writeFull(a mem.Addr, val uint64) {
	rt := tx.th.rt
	oi := rt.orecIndex(a)
	for {
		v := rt.orecs[oi].Load()
		if orecLocked(v) {
			if orecOwner(v) == tx.th.id {
				break
			}
			tx.conflict()
		}
		if orecVersion(v) > tx.rv {
			tx.extend()
			continue
		}
		if rt.orecs[oi].CompareAndSwap(v, orecLockWord(tx.th.id)) {
			tx.writes = append(tx.writes, writeEntry{oi})
			tx.lockedPrev[oi] = v
			break
		}
		tx.conflict()
	}
	tx.logUndo(a)
	rt.space.Store(a, val)
}

// --- Typed convenience accessors ---

// LoadFloat reads a float64 transactionally.
func (tx *Tx) LoadFloat(a mem.Addr, ac Acc) float64 {
	return math.Float64frombits(tx.Load(a, ac))
}

// StoreFloat writes a float64 transactionally.
func (tx *Tx) StoreFloat(a mem.Addr, f float64, ac Acc) {
	tx.Store(a, math.Float64bits(f), ac)
}

// LoadAddr reads a simulated pointer transactionally.
func (tx *Tx) LoadAddr(a mem.Addr, ac Acc) mem.Addr {
	return mem.Addr(tx.Load(a, ac))
}

// StoreAddr writes a simulated pointer transactionally.
func (tx *Tx) StoreAddr(a mem.Addr, p mem.Addr, ac Acc) {
	tx.Store(a, uint64(p), ac)
}
