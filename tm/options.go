package tm

import (
	"repro/internal/capture"
	"repro/internal/mem"
	"repro/internal/stm"
)

// LogKind selects the allocation-log implementation used by the
// runtime capture analysis (Sec. 3.1.2 of the paper).
type LogKind = capture.Kind

// The three allocation-log implementations the paper compares.
const (
	// LogTree is the precise balanced search tree of ranges.
	LogTree = capture.KindTree
	// LogArray is the bounded unsorted range array (one cache line of
	// ranges by default).
	LogArray = capture.KindArray
	// LogFilter is the hash-table address filter (false negatives
	// possible, never false positives).
	LogFilter = capture.KindFilter
)

// Checks selects which runtime capture checks a barrier performs.
type Checks struct {
	// Stack enables the transaction-local stack range check (Fig. 4).
	Stack bool
	// Heap enables the allocation-log search (Sec. 3.1.2).
	Heap bool
}

// Canonical check sets for WithRuntimeCapture. They are variables
// only because Go has no struct constants: treat them as read-only
// (mutating one would silently change every later Open in the
// process).
var (
	// StackAndHeap performs both capture checks.
	StackAndHeap = Checks{Stack: true, Heap: true}
	// HeapOnly performs only the allocation-log search.
	HeapOnly = Checks{Heap: true}
	// StackOnly performs only the stack range check.
	StackOnly = Checks{Stack: true}
	// NoChecks disables runtime capture analysis for the barrier.
	NoChecks = Checks{}
)

// settings accumulates the configuration an Open call builds.
type settings struct {
	mem    mem.Config
	cfg    stm.OptConfig
	phases []PhaseSpec
	dur    *durSettings
}

// Option configures a Runtime created by Open.
type Option func(*settings)

// fold applies opts over the defaults: default memory geometry and the
// paper's unoptimized baseline configuration. Phase fragments are
// applied last, onto the *final* base configuration, so a WithPhases
// appearing anywhere in the option list sees every other option.
func fold(opts []Option) settings {
	s := settings{mem: mem.DefaultConfig(), cfg: stm.OptConfig{Name: "custom"}}
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	for _, ph := range s.phases {
		s.cfg.Phases = append(s.cfg.Phases, ph.compile(&s))
	}
	return s
}

// build is fold for callers that only need the compiled configuration.
func build(opts []Option) (mem.Config, stm.OptConfig) {
	s := fold(opts)
	return s.mem, s.cfg
}

// WithName labels the configuration in statistics reports.
func WithName(name string) Option {
	return func(s *settings) { s.cfg.Name = name }
}

// WithMemory sizes the simulated address space. The default is
// DefaultMemConfig.
func WithMemory(mc MemConfig) Option {
	return func(s *settings) { s.mem = mc }
}

// WithRuntimeCapture enables the paper's runtime capture analysis:
// read selects the checks performed by read barriers, write those of
// write barriers. Captured locations found by a check are accessed
// with plain loads/stores instead of the full STM barrier.
func WithRuntimeCapture(read, write Checks) Option {
	return func(s *settings) {
		s.cfg.Read = stm.BarrierOpt{Stack: read.Stack, Heap: read.Heap}
		s.cfg.Write = stm.BarrierOpt{Stack: write.Stack, Heap: write.Heap}
	}
}

// WithCompilerElision enables static elision: accesses whose reference
// provenance proves capture (fresh, local, stack) skip the barrier
// entirely, with no runtime check (the paper's Sec. 3.2).
func WithCompilerElision() Option {
	return func(s *settings) { s.cfg.Compiler = true }
}

// WithLogKind picks the allocation-log implementation used by runtime
// capture analysis. The default is LogTree.
func WithLogKind(k LogKind) Option {
	return func(s *settings) { s.cfg.LogKind = k }
}

// WithArrayCap overrides the range-array capacity used by LogArray
// (0 = default).
func WithArrayCap(n int) Option {
	return func(s *settings) { s.cfg.ArrayCap = n }
}

// WithFilterBits overrides the LogFilter size (0 = default).
func WithFilterBits(bits int) Option {
	return func(s *settings) { s.cfg.FilterBits = bits }
}

// WithOrecBits sizes the ownership-record table at 1<<bits entries
// (0 = default). Shrinking it makes false conflicts visible.
func WithOrecBits(bits int) Option {
	return func(s *settings) { s.cfg.OrecBits = bits }
}

// WithAnnotations enables the thread-private data logs behind
// Thread.AddPrivateBlock/RemovePrivateBlock (the paper's Fig. 7 APIs).
func WithAnnotations() Option {
	return func(s *settings) { s.cfg.Annotations = true }
}

// WithCounting additionally classifies every barrier with a precise
// capture log without changing execution — the configuration behind
// the paper's Fig. 8 breakdown.
func WithCounting() Option {
	return func(s *settings) { s.cfg.Counting = true }
}

// WithPerfMode drops the per-access statistics counters from the
// barriers, like the paper's performance builds (commit/abort counts
// are kept).
func WithPerfMode() Option {
	return func(s *settings) { s.cfg.PerfMode = true }
}

// WithVerifyElision panics if a statically elided access turns out not
// to be captured — the soundness oracle for provenance claims. It
// implies WithCounting (the oracle needs the precise log).
func WithVerifyElision() Option {
	return func(s *settings) {
		s.cfg.Counting = true
		s.cfg.VerifyElision = true
	}
}

// WithSkipSharedChecks enables the paper's future-work extension:
// accesses proved *definitely shared* (ProvShared) bypass the runtime
// capture checks and go straight to the full barrier.
func WithSkipSharedChecks() Option {
	return func(s *settings) { s.cfg.SkipSharedChecks = true }
}

// WithReadMostly selects the read-mostly barrier engine: the
// begin/commit lifecycle performs zero write-path setup (no write-log,
// undo-log, or lock-lookup initialization), captured reads keep the
// profile's elisions, and full-barrier reads are validated against the
// transaction's snapshot at read time without maintaining a read set —
// so a transaction that never writes shared memory commits with no log
// traffic, no validation loop, and no clock bump. Captured stores —
// stack frames, fresh allocations, compiler-elided accesses — stay
// plain in-place writes; the first *shared* store upgrades the
// transaction onto the profile's full engine (counted in
// Stats.Upgrades): in-flight when no writer has committed since the
// snapshot, else by restarting the attempt on the full engine. Right
// for scan/report phases; usually declared per-phase (PhaseScan)
// rather than runtime-wide. Ignored under
// WithCounting/WithVerifyElision, whose oracles need the instrumented
// chain.
func WithReadMostly() Option {
	return func(s *settings) { s.cfg.ReadMostly = true }
}

// WithoutWAWFilter disables the baseline's cheap write-after-write
// undo-log filtering (on by default; its presence explains the
// paper's yada results).
func WithoutWAWFilter() Option {
	return func(s *settings) { s.cfg.NoWAWFilter = true }
}

// CM names a contention manager: the policy a thread runs between a
// conflict abort and the retry of its transaction.
type CM = string

const (
	// CMBackoff is the paper's randomized exponential backoff — the
	// default manager.
	CMBackoff CM = stm.CMBackoff
	// CMNone retries immediately, escalating into backoff only after a
	// transaction has lost several attempts in a row (so symmetric
	// writers cannot livelock). Right for short transactions whose
	// conflicts are rare.
	CMNone CM = stm.CMNone
	// CMQueue parks the loser on the conflicting owner thread and wakes
	// it at that owner's next commit or abort, FIFO. Right for contended
	// hot spots, where spinning burns the processor the owner needs.
	CMQueue CM = stm.CMQueue
)

// WithContention selects the contention manager conflict-aborted
// transactions resolve through. Like the barrier engine it is compiled
// per phase: a runtime-wide choice here is inherited by every declared
// phase, and a PhaseProfile fragment can override it per regime.
// Managers are perf-only — they change when a lost attempt retries,
// never what it computes — so any choice preserves results bit for
// bit. The default is CMBackoff.
func WithContention(m CM) Option {
	return func(s *settings) { s.cfg.CM = m }
}

// Engine selects the barrier-engine family a Runtime compiles its
// Load/Store hot paths into.
type Engine int

const (
	// EngineAuto (the default) lets Open pick the engine the profile
	// compiles to: the instrumented chain when statistics are kept, a
	// specialized stats-free fast path under WithPerfMode.
	EngineAuto Engine = iota
	// EngineGeneric forces the generic reference chain, which
	// re-interprets the whole profile on every access. It exists for
	// differential testing: a specialized engine must be
	// observationally identical to the generic one.
	EngineGeneric
)

// WithEngine forces a barrier-engine family. The default, EngineAuto,
// is right for everything except engine-equivalence testing; see
// Runtime.Engine for what was actually selected. The forced family
// applies to every declared phase.
func WithEngine(e Engine) Option {
	return func(s *settings) { s.cfg.ForceGeneric = e == EngineGeneric }
}

// --- Phases ---

// Phase names a declared workload phase kind. Kinds are free-form
// strings; PhasePublish and PhaseCursor are the conventional names for
// the paper's two capture regimes.
type Phase = string

const (
	// PhasePublish is the allocate-build-publish regime: transactions
	// that assemble their footprint in captured memory, where the
	// capture-checking engines elide most barriers.
	PhasePublish Phase = "publish"
	// PhaseCursor is the contended shared read-modify-write regime:
	// transactions that capture nothing, where capture checks are pure
	// overhead and the definitely-shared bypass is the right engine.
	PhaseCursor Phase = "cursor"
	// PhaseScan is the read-dominated regime: transactions that read
	// broadly and store only into captured memory (accumulators, result
	// vectors), where the read-mostly engine's unlogged
	// snapshot-validated reads and zero write-path setup win.
	PhaseScan Phase = "scan"
)

// PhaseSpec maps one phase kind to the profile fragment its barrier
// engine compiles from; build with PhaseProfile and declare with
// WithPhases.
type PhaseSpec struct {
	kind Phase
	opts []Option
}

// PhaseProfile binds a phase kind to a profile fragment: options
// applied on top of the runtime's base configuration to derive the
// phase's engine. Memory geometry and nested phase declarations inside
// the fragment are ignored — both are per-Runtime.
func PhaseProfile(kind Phase, opts ...Option) PhaseSpec {
	return PhaseSpec{kind: kind, opts: opts}
}

// compile overlays the fragment on a copy of the final base settings
// and returns the phase's full engine configuration.
func (ph PhaseSpec) compile(base *settings) stm.PhaseConfig {
	d := settings{mem: base.mem, cfg: base.cfg}
	d.cfg.Phases = nil
	for _, o := range ph.opts {
		if o != nil {
			o(&d)
		}
	}
	d.cfg.Phases = nil // fragments cannot nest phase declarations
	return stm.PhaseConfig{Kind: ph.kind, Cfg: d.cfg}
}

// WithPhases declares named workload phases, each compiled to its own
// barrier engine derived from the base configuration plus the spec's
// fragment. Threads switch engines with Thread.EnterPhase; switches
// take effect only between transactions. Workloads may hint phases
// unconditionally — under a profile that declares no phases (or not
// that kind), the hint falls back to the default engine and the run
// behaves exactly like the classic one-engine runtime.
func WithPhases(specs ...PhaseSpec) Option {
	return func(s *settings) { s.phases = append(s.phases, specs...) }
}

// AdaptiveConfig tunes online engine selection (WithAdaptive). The
// zero value selects the defaults: adapt the two conventional phase
// kinds with the package's epoch and threshold defaults.
type AdaptiveConfig = stm.AdaptiveConfig

// WithAdaptive enables online engine selection for phase kinds the
// workload hints: instead of declaring each kind's engine by hand
// (WithPhases), the runtime samples every listed kind on an
// instrumented probe engine and promotes it to the capture-checking
// fast path (mostly-captured epochs) or the definitely-shared bypass
// (capture-free epochs), demoting back to the probe on abort-ratio
// regression and on a re-probe schedule. Kinds an explicit WithPhases
// declaration also covers keep their manual engine — hints stay ground
// truth. An empty Kinds list adapts PhasePublish, PhaseCursor, and
// PhaseScan, the three regimes the paper's workloads exhibit. Current
// selections are observable via Runtime.AdaptiveSelections.
func WithAdaptive(a AdaptiveConfig) Option {
	return func(s *settings) {
		a.Enabled = true
		if len(a.Kinds) == 0 {
			a.Kinds = []string{PhasePublish, PhaseCursor, PhaseScan}
		}
		s.cfg.Adaptive = a
	}
}

// --- Profiles ---

// Profile is a named, reusable bundle of Options — one column of a
// bench matrix. The zero Profile is the unnamed baseline.
type Profile struct {
	name string
	opts []Option
}

// NewProfile creates a named option bundle.
func NewProfile(name string, opts ...Option) Profile {
	return Profile{name: name, opts: opts}
}

// Name returns the profile's report label.
func (p Profile) Name() string { return p.name }

// With returns a copy of the profile with extra options appended
// (later options override earlier ones).
func (p Profile) With(extra ...Option) Profile {
	opts := make([]Option, 0, len(p.opts)+len(extra))
	opts = append(opts, p.opts...)
	opts = append(opts, extra...)
	return Profile{name: p.name, opts: opts}
}

// Named returns a copy of the profile under a new report label.
func (p Profile) Named(name string) Profile {
	return Profile{name: name, opts: p.opts}
}

// Perf returns a copy of the profile with performance mode enabled,
// like the paper's timing builds.
func (p Profile) Perf() Profile { return p.With(WithPerfMode()) }

// Options returns the option list the profile denotes, including its
// name, ready to pass to Open.
func (p Profile) Options() []Option {
	opts := make([]Option, 0, len(p.opts)+1)
	opts = append(opts, WithName(p.name))
	opts = append(opts, p.opts...)
	return opts
}

// --- Preset profiles (the paper's evaluated configurations) ---

// Baseline is the unoptimized configuration: full barriers,
// write-after-write filtering on.
func Baseline() Profile { return NewProfile("baseline") }

// Counting is the baseline plus Fig. 8 classification counters.
func Counting() Profile { return NewProfile("counting", WithCounting()) }

// RuntimeAll enables runtime capture analysis for both the
// transaction-local stack and heap in both read and write barriers.
func RuntimeAll(k LogKind) Profile {
	return NewProfile("runtime-rw-stack-heap-"+k.String(),
		WithRuntimeCapture(StackAndHeap, StackAndHeap), WithLogKind(k))
}

// RuntimeWrite enables runtime capture analysis for stack and heap in
// write barriers only.
func RuntimeWrite(k LogKind) Profile {
	return NewProfile("runtime-w-stack-heap-"+k.String(),
		WithRuntimeCapture(NoChecks, StackAndHeap), WithLogKind(k))
}

// RuntimeHeapWrite enables runtime capture analysis for heap accesses
// in write barriers only (the configuration of the paper's Fig. 11b).
func RuntimeHeapWrite(k LogKind) Profile {
	return NewProfile("runtime-w-heap-"+k.String(),
		WithRuntimeCapture(NoChecks, HeapOnly), WithLogKind(k))
}

// CompilerElision is static elision only, no runtime checks.
func CompilerElision() Profile {
	return NewProfile("compiler", WithCompilerElision())
}
