package bayes

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/stm"
)

func small() Config {
	return Config{Name: "bayes-test", Vars: 16, Records: 256, MaxParents: 3, Seed: 29}
}

func runOne(t *testing.T, cfg Config, opt stm.OptConfig, threads int) (*B, *stm.Runtime) {
	t.Helper()
	b := NewWith(cfg)
	rt := stm.New(b.MemConfig(), opt)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("validate: %v", err)
	}
	rt.Validate()
	return b, rt
}

func TestSerialLearning(t *testing.T) {
	_, rt := runOne(t, small(), stm.Baseline(), 1)
	s := rt.Stats()
	if s.Commits == 0 {
		t.Fatal("no learner transactions ran")
	}
}

func TestParallelLearning(t *testing.T) {
	for _, threads := range []int{2, 6} {
		runOne(t, small(), stm.Baseline(), threads)
	}
}

// TestAnnotationsElideQueryVectors: the Fig. 1(b)/Fig. 7 case — the
// per-thread query vectors are elidable only via the annotation API.
func TestAnnotationsElideQueryVectors(t *testing.T) {
	// Without annotations: no private elisions.
	plain, rtPlain := runOne(t, small(), stm.RuntimeAll(capture.KindTree), 2)
	_ = plain
	if s := rtPlain.Stats(); s.ReadElPriv+s.WriteElPriv != 0 {
		t.Errorf("private elisions without annotations: %d", s.ReadElPriv+s.WriteElPriv)
	}
	// With annotations: query-vector traffic is elided.
	cfg := small()
	cfg.Annotate = true
	opt := stm.RuntimeAll(capture.KindTree)
	opt.Annotations = true
	_, rt := runOne(t, cfg, opt, 2)
	s := rt.Stats()
	if s.ReadElPriv == 0 || s.WriteElPriv == 0 {
		t.Errorf("annotated query vectors not elided: r=%d w=%d", s.ReadElPriv, s.WriteElPriv)
	}
}

func TestParentCapRespected(t *testing.T) {
	cfg := small()
	cfg.MaxParents = 1
	b, _ := runOne(t, cfg, stm.Baseline(), 4)
	_ = b // Validate() checks the cap and counter consistency
}
