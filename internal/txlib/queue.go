package txlib

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Queue is a growable circular FIFO of words (STAMP's queue.c, as used
// by intruder's packet and task queues).
//
// Layout:
//
//	header: [0] pop  [1] push  [2] cap  [3] data ptr
//
// pop is the index of the slot *before* the front element and push the
// index of the next free slot, exactly like STAMP's representation;
// the queue is empty when advancing pop reaches push.
const (
	qPop  = 0
	qPush = 1
	qCap  = 2
	qData = 3
	qHdr  = 4
)

// NewQueue allocates a queue with the given initial capacity (rounded
// up to at least 2).
func NewQueue(tx *stm.Tx, capacity int) mem.Addr {
	if capacity < 2 {
		capacity = 2
	}
	q := tx.Alloc(qHdr)
	d := tx.Alloc(capacity)
	tx.Store(q+qPop, uint64(capacity-1), stm.AccFresh)
	tx.Store(q+qPush, 0, stm.AccFresh)
	tx.Store(q+qCap, uint64(capacity), stm.AccFresh)
	tx.StoreAddr(q+qData, d, stm.AccFresh)
	return q
}

// QueueIsEmpty reports whether the queue holds no elements.
func QueueIsEmpty(tx *stm.Tx, q mem.Addr, mode stm.Acc) bool {
	pop := tx.Load(q+qPop, mode)
	push := tx.Load(q+qPush, mode)
	capWords := tx.Load(q+qCap, mode)
	return (pop+1)%capWords == push
}

// QueueSize returns the number of queued elements.
func QueueSize(tx *stm.Tx, q mem.Addr, mode stm.Acc) int {
	pop := tx.Load(q+qPop, mode)
	push := tx.Load(q+qPush, mode)
	capWords := tx.Load(q+qCap, mode)
	return int((push + capWords - (pop+1)%capWords) % capWords)
}

// QueuePush appends val at the back, doubling the buffer when full.
func QueuePush(tx *stm.Tx, q mem.Addr, val uint64, mode stm.Acc) {
	pop := tx.Load(q+qPop, mode)
	push := tx.Load(q+qPush, mode)
	capWords := tx.Load(q+qCap, mode)
	data := tx.LoadAddr(q+qData, mode)
	newPush := (push + 1) % capWords
	if newPush == pop {
		// Full: grow, compacting front to index 0 (STAMP's scheme).
		newCap := capWords * 2
		nd := tx.Alloc(int(newCap))
		dst := mem.Addr(0)
		for i := (pop + 1) % capWords; i != push; i = (i + 1) % capWords {
			tx.Store(nd+dst, tx.Load(data+mem.Addr(i), mode), stm.AccFresh)
			dst++
		}
		tx.Free(data)
		tx.StoreAddr(q+qData, nd, mode)
		tx.Store(q+qCap, newCap, mode)
		tx.Store(q+qPop, newCap-1, mode)
		tx.Store(q+qPush, uint64(dst), mode)
		data = nd
		push = uint64(dst)
		capWords = newCap
		newPush = push + 1
	}
	tx.Store(data+mem.Addr(push), val, mode)
	tx.Store(q+qPush, newPush%capWords, mode)
}

// QueuePop removes and returns the front element.
func QueuePop(tx *stm.Tx, q mem.Addr, mode stm.Acc) (uint64, bool) {
	pop := tx.Load(q+qPop, mode)
	push := tx.Load(q+qPush, mode)
	capWords := tx.Load(q+qCap, mode)
	newPop := (pop + 1) % capWords
	if newPop == push {
		return 0, false
	}
	data := tx.LoadAddr(q+qData, mode)
	val := tx.Load(data+mem.Addr(newPop), mode)
	tx.Store(q+qPop, newPop, mode)
	return val, true
}

// QueueFree frees the buffer and header.
func QueueFree(tx *stm.Tx, q mem.Addr, mode stm.Acc) {
	tx.Free(tx.LoadAddr(q+qData, mode))
	tx.Free(q)
}
