package harness

import (
	"testing"

	"repro/tm"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/scenarios/tmmsg"
	_ "repro/internal/stamp/all"
)

// namedProfiles is the cross-profile grid: every preset the package
// exports plus the two documented combinations. The optimizations may
// change which barriers run, never what the program computes, so every
// profile must drive a deterministic workload to the same final state.
func namedProfiles() []tm.Profile {
	return []tm.Profile{
		tm.Baseline(),
		tm.Counting(),
		tm.RuntimeAll(tm.LogTree),
		tm.RuntimeAll(tm.LogArray),
		tm.RuntimeAll(tm.LogFilter),
		tm.RuntimeWrite(tm.LogTree),
		tm.RuntimeHeapWrite(tm.LogTree),
		tm.CompilerElision(),
		tm.CompilerElision().With(
			tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap)).Named("compiler+runtime"),
		tm.RuntimeAll(tm.LogTree).With(tm.WithSkipSharedChecks()).Named("runtime+skipshared"),
	}
}

// runChecksum drives one full workload lifecycle and returns the
// final-state fingerprint of the simulated address space. It fails the
// test on a validation error or a leaked orec lock.
func runChecksum(t *testing.T, bench string, p tm.Profile, threads int) uint64 {
	t.Helper()
	w, err := tm.NewWorkload(bench)
	if err != nil {
		t.Fatal(err)
	}
	rt := tm.Open(append(p.Options(), tm.WithMemory(w.MemConfig()))...)
	w.Setup(rt)
	w.Run(rt, threads)
	if err := w.Validate(rt); err != nil {
		t.Fatalf("%s [%s, %d threads]: %v", bench, p.Name(), threads, err)
	}
	rt.Validate() // no orec may stay locked after the threads joined
	sum := rt.Unwrap().Space().Checksum()
	if err := rt.Close(); err != nil {
		t.Fatalf("%s [%s]: closing runtime: %v", bench, p.Name(), err)
	}
	return sum
}

// TestDifferentialProfiles runs every registered workload (the STAMP
// ports, the tmkv scenario pack, and anything test files registered)
// under each named profile at one thread and asserts all profiles
// reach the identical final state. A mismatch means an elision decided
// wrongly — precisely the bug class the paper's conservative capture
// analysis must exclude.
func TestDifferentialProfiles(t *testing.T) {
	profiles := namedProfiles()
	benches := AllWorkloads()
	if testing.Short() {
		profiles = []tm.Profile{tm.Baseline(), tm.RuntimeAll(tm.LogTree), tm.CompilerElision()}
		benches = []string{"ssca2", "labyrinth", "tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			base := runChecksum(t, bench, profiles[0], 1)
			for _, p := range profiles[1:] {
				if got := runChecksum(t, bench, p, 1); got != base {
					t.Errorf("%s under %s: final state %#x, want %#x (differs from %s)",
						bench, p.Name(), got, base, profiles[0].Name())
				}
			}
		})
	}
}

// TestDifferentialParallelNoLeaks repeats a contended slice of the
// grid at several threads: final states are scheduling-dependent, but
// validation must pass and no orec lock may leak.
func TestDifferentialParallelNoLeaks(t *testing.T) {
	profiles := []tm.Profile{tm.Baseline(), tm.RuntimeAll(tm.LogTree)}
	benches := AllWorkloads()
	if testing.Short() {
		benches = []string{"ssca2", "tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, p := range profiles {
				runChecksum(t, bench, p, 4)
			}
		})
	}
}
