// Package mem implements the simulated flat memory that the STM
// runtime and all workloads operate on.
//
// The paper's techniques (stack range checks, allocation-log
// containment, address→orec hashing) all need stable integer addresses
// and an allocator the runtime controls. Go's garbage collector
// provides neither, so this package supplies a word-addressable
// address space: a contiguous array of 64-bit words indexed by Addr.
// Address 0 is the nil guard and is never allocated.
//
// Layout of the space, low to high:
//
//	[0]                       nil guard
//	[1, globalsEnd)           globals region (bump allocated, never freed)
//	[globalsEnd, heapEnd)     heap region (size-class allocator)
//	[heapEnd, end)            per-thread stacks, each growing downward
//
// All word accesses go through sync/atomic so that elided (plain)
// accesses made by transactions remain well defined under the Go
// memory model and under the race detector.
package mem

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Addr is a simulated memory address: an index of a 64-bit word in the
// address space. The zero Addr is the nil pointer.
type Addr uint64

// Nil is the null simulated address.
const Nil Addr = 0

// LineWords is the number of words in one simulated cache line
// (8 words × 8 bytes = 64 bytes, matching the paper's cache-line-based
// orec mapping).
const LineWords = 8

// Config sizes an address space.
type Config struct {
	// GlobalWords is the size of the globals region.
	GlobalWords int
	// HeapWords is the size of the heap region.
	HeapWords int
	// StackWords is the size of each per-thread stack.
	StackWords int
	// MaxThreads is the number of per-thread stacks to reserve.
	MaxThreads int
}

// DefaultConfig returns a configuration suitable for the tests and the
// scaled-down STAMP workloads (≈48 MiB of simulated memory).
func DefaultConfig() Config {
	return Config{
		GlobalWords: 1 << 12,
		HeapWords:   1 << 22,
		StackWords:  1 << 14,
		MaxThreads:  32,
	}
}

// Space is a simulated address space.
type Space struct {
	words []uint64

	globalsNext atomic.Uint64 // bump pointer for AllocGlobal
	globalsEnd  Addr

	heapStart Addr
	heapEnd   Addr

	stackBase  Addr // start of the stacks region
	stackWords int
	maxThreads int

	central central // central heap allocator
}

// NewSpace creates an address space with the given configuration.
func NewSpace(cfg Config) *Space {
	if cfg.GlobalWords <= 0 || cfg.HeapWords <= 0 || cfg.StackWords <= 0 || cfg.MaxThreads <= 0 {
		panic("mem: all Config fields must be positive")
	}
	total := 1 + cfg.GlobalWords + cfg.HeapWords + cfg.StackWords*cfg.MaxThreads
	s := &Space{
		words:      make([]uint64, total),
		globalsEnd: Addr(1 + cfg.GlobalWords),
		stackWords: cfg.StackWords,
		maxThreads: cfg.MaxThreads,
	}
	s.globalsNext.Store(1)
	s.heapStart = s.globalsEnd
	s.heapEnd = s.heapStart + Addr(cfg.HeapWords)
	s.stackBase = s.heapEnd
	s.central.init(s.heapStart, s.heapEnd)
	return s
}

// Size returns the total number of words in the space.
func (s *Space) Size() int { return len(s.words) }

// Checksum returns an FNV-1a hash over every word of the space. Two
// single-threaded runs of the same deterministic workload must leave
// identical spaces whatever optimization profile was active — barriers
// and elisions change how values are written, never which values — so
// the checksum is the final-state fingerprint the differential tests
// compare across profiles. Call it only after worker threads joined.
func (s *Space) Checksum() uint64 {
	h := uint64(14695981039346656037)
	for i := range s.words {
		h = (h ^ atomic.LoadUint64(&s.words[i])) * 1099511628211
	}
	return h
}

// Load atomically reads the word at a.
func (s *Space) Load(a Addr) uint64 {
	return atomic.LoadUint64(&s.words[a])
}

// Store atomically writes the word at a.
func (s *Space) Store(a Addr, v uint64) {
	atomic.StoreUint64(&s.words[a], v)
}

// CAS performs a compare-and-swap on the word at a.
func (s *Space) CAS(a Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&s.words[a], old, new)
}

// LoadFloat reads the word at a as a float64.
func (s *Space) LoadFloat(a Addr) float64 {
	return math.Float64frombits(s.Load(a))
}

// StoreFloat writes a float64 to the word at a.
func (s *Space) StoreFloat(a Addr, f float64) {
	s.Store(a, math.Float64bits(f))
}

// AllocGlobal bump-allocates n words in the globals region. Globals
// are never freed. It is safe for concurrent use.
func (s *Space) AllocGlobal(n int) Addr {
	if n <= 0 {
		panic("mem: AllocGlobal size must be positive")
	}
	a := Addr(s.globalsNext.Add(uint64(n)) - uint64(n))
	if a+Addr(n) > s.globalsEnd {
		panic(fmt.Sprintf("mem: globals region exhausted (want %d words)", n))
	}
	return a
}

// HeapRange reports the [start, end) bounds of the heap region.
func (s *Space) HeapRange() (Addr, Addr) { return s.heapStart, s.heapEnd }

// StackRange reports the [low, high) bounds of thread tid's stack.
// The stack grows downward from high toward low.
func (s *Space) StackRange(tid int) (Addr, Addr) {
	if tid < 0 || tid >= s.maxThreads {
		panic(fmt.Sprintf("mem: thread id %d out of range [0,%d)", tid, s.maxThreads))
	}
	low := s.stackBase + Addr(tid*s.stackWords)
	return low, low + Addr(s.stackWords)
}

// InHeap reports whether a lies in the heap region.
func (s *Space) InHeap(a Addr) bool { return a >= s.heapStart && a < s.heapEnd }

// Zero clears n words starting at a.
func (s *Space) Zero(a Addr, n int) {
	for i := 0; i < n; i++ {
		s.Store(a+Addr(i), 0)
	}
}
