package tmmsg

// Served front-end adapter: exposes the tmmsg broker as a
// serve.Backend ("srv-tmmsg"). It is the adapter that exercises the
// Batcher's phase discipline: publish requests carry tm.PhasePublish
// and merge with each other (distinct topics), consume/ack requests
// carry tm.PhaseCursor and merge per (topic, group), backlog scans
// carry tm.PhaseScan, and distinct kinds never share a merged
// transaction — a publish-shaped batch runs on the capture-checking
// engine, a cursor-shaped one on the definitely-shared bypass, a
// scan-shaped one on the read-mostly engine.

import (
	"repro/internal/prng"
	"repro/internal/scenarios/dist"
	"repro/internal/stm"
	"repro/tm"
	"repro/tm/serve"
)

// Request opcodes of the srv-tmmsg backend (serve.Request.Op).
const (
	OpPublish = 0 // publish Arg messages to topic Key
	OpConsume = 1 // consume up to ConsumeMax from (topic Key, group Arg)
	OpAck     = 2 // ack up to AckMax on (topic Key, group Arg)
	OpLag     = 3 // backlog scan over up to ScanLimit topics (exclusive)
)

// Reply layout (serve.Reply.Words).
const (
	RepA       = 0 // publish: messages linked · consume: delivered · ack: acked · lag: backlog
	RepB       = 1 // publish: retention drops · consume: skipped<<8|badsum
	ReplyWords = 2
)

// MsgBackend adapts one tmmsg broker to the serving front-end.
type MsgBackend struct {
	cfg    Config
	broker Broker
	zipf   *dist.Zipf
}

// ServeMix returns the request mix the registered "srv-tmmsg" backend
// uses: the balanced blend of Mixed under the served opcode set.
func ServeMix() Config {
	c := Mixed()
	c.Name = "srv-tmmsg"
	return c
}

func init() {
	serve.Register("srv-tmmsg",
		"served message broker: publish merges under the publish phase, consume/ack under cursor",
		func() serve.Backend { return NewMsgBackend(ServeMix()) })
}

// NewMsgBackend creates a backend over cfg (the Ops field is unused:
// the client population decides how many requests to issue). Exported
// with a Config parameter so differential tests can pin custom mixes.
func NewMsgBackend(cfg Config) *MsgBackend {
	New(cfg) // reuse the workload's validation panics
	m := &MsgBackend{cfg: cfg}
	if cfg.Zipf {
		m.zipf = dist.NewZipf(cfg.Topics, cfg.Theta)
	}
	return m
}

// Footprint keys: topics and (topic, group) cursors live in one
// namespace, separated by the low bit. Publish writes its topic;
// consume writes its cursor and reads its topic (it loads the head
// sequence and ring), ack writes only its cursor.
func topicKey(id uint64) uint64             { return id << 1 }
func cursorKey(id uint64, gi uint64) uint64 { return (id<<8|gi)<<1 | 1 }

// MemConfig implements serve.Backend: the retained rings plus worst-
// case churn of every request publishing a full batch.
func (m *MsgBackend) MemConfig(workers, totalRequests int) tm.MemConfig {
	c := m.cfg
	mc := c.memConfig(c.Topics*c.PreloadMsgs + totalRequests*c.MaxBatch)
	if mc.MaxThreads < workers {
		mc.MaxThreads = workers
	}
	return mc
}

// Setup implements serve.Backend: create the broker and topics, then
// preload PreloadMsgs messages per topic, like the workload's Setup.
func (m *MsgBackend) Setup(trt *tm.Runtime) {
	rt := trt.Unwrap()
	c := m.cfg
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		m.broker = NewBroker(tx, c.Topics)
	})
	for t := 0; t < c.Topics; t++ {
		id := dist.RankToKey(t, c.Topics)
		th.Atomic(func(tx *stm.Tx) {
			kb := dist.StackKey(tx, id, c.KeyWords)
			if !m.broker.addTopic(tx, kb, c.KeyWords, c.RingCap, c.Groups) {
				panic("tmmsg: topic collision at setup")
			}
		})
	}
	th.EnterPhase(tm.PhasePublish) // preload publishes are publish-shaped
	for t := 0; t < c.Topics; t++ {
		id := dist.RankToKey(t, c.Topics)
		for done := 0; done < c.PreloadMsgs; {
			n := min(c.MaxBatch, c.PreloadMsgs-done)
			th.Atomic(func(tx *stm.Tx) {
				kb := dist.StackKey(tx, id, c.KeyWords)
				tp, found := m.broker.topic(tx, kb, c.KeyWords)
				if !found {
					panic("tmmsg: preload missed a topic")
				}
				publishN(tx, c, tp, id, n)
			})
			done += n
		}
	}
}

// ReplyWords implements serve.Backend.
func (m *MsgBackend) ReplyWords() int { return ReplyWords }

// NewRequest implements serve.Backend: request i of the deterministic
// stream for seed, drawn from the configured mix, topic distribution,
// and group/batch ranges.
func (m *MsgBackend) NewRequest(seed, i uint64) serve.Request {
	r := prng.New(seed + (i+1)*0x2545F4914F6CDD1D)
	th := m.cfg.opThresholds()
	op := r.Intn(100)
	var id uint64
	if m.zipf != nil {
		id = dist.RankToKey(m.zipf.Sample(r), m.cfg.Topics)
	} else {
		id = dist.RankToKey(r.Intn(m.cfg.Topics), m.cfg.Topics)
	}
	switch {
	case op < th[0]:
		return serve.Request{Op: OpPublish, Key: id, Arg: uint64(1 + r.Intn(m.cfg.MaxBatch))}
	case op < th[1]:
		return serve.Request{Op: OpConsume, Key: id, Arg: uint64(r.Intn(m.cfg.Groups))}
	case op < th[2]:
		return serve.Request{Op: OpAck, Key: id, Arg: uint64(r.Intn(m.cfg.Groups))}
	default:
		return serve.Request{Op: OpLag}
	}
}

// Item implements serve.Backend. A request on a topic Setup did not
// create refuses (Apply returns false) — with the registered configs
// that never happens, since Setup creates every topic.
func (m *MsgBackend) Item(req serve.Request) tm.BatchItem {
	c := m.cfg
	id := req.Key
	switch req.Op {
	case OpPublish:
		n := int(req.Arg)
		if n < 1 || n > c.MaxBatch {
			n = 1
		}
		return tm.BatchItem{
			Phase:     tm.PhasePublish,
			Footprint: tm.Footprint{Writes: []uint64{topicKey(id)}},
			Apply: func(ttx *tm.Tx, reply tm.Struct) bool {
				tx := ttx.Unwrap()
				kb := dist.StackKey(tx, id, c.KeyWords)
				tp, found := m.broker.topic(tx, kb, c.KeyWords)
				if !found {
					return false
				}
				pub, drops := publishN(tx, c, tp, id, n)
				reply.Word(RepA).Store(ttx, pub)
				reply.Word(RepB).Store(ttx, drops)
				return true
			},
		}
	case OpConsume:
		gi := int(req.Arg) % c.Groups
		return tm.BatchItem{
			Phase: tm.PhaseCursor,
			Footprint: tm.Footprint{
				Reads:  []uint64{topicKey(id)},
				Writes: []uint64{cursorKey(id, uint64(gi))},
			},
			Apply: func(ttx *tm.Tx, reply tm.Struct) bool {
				tx := ttx.Unwrap()
				kb := dist.StackKey(tx, id, c.KeyWords)
				tp, found := m.broker.topic(tx, kb, c.KeyWords)
				if !found {
					return false
				}
				consumed, skipped, bad := consume(tx, tp, gi, c.ConsumeMax)
				reply.Word(RepA).Store(ttx, uint64(consumed))
				reply.Word(RepB).Store(ttx, uint64(skipped)<<8|uint64(bad))
				return true
			},
		}
	case OpAck:
		gi := int(req.Arg) % c.Groups
		return tm.BatchItem{
			Phase:     tm.PhaseCursor,
			Footprint: tm.Footprint{Writes: []uint64{cursorKey(id, uint64(gi))}},
			Apply: func(ttx *tm.Tx, reply tm.Struct) bool {
				tx := ttx.Unwrap()
				kb := dist.StackKey(tx, id, c.KeyWords)
				tp, found := m.broker.topic(tx, kb, c.KeyWords)
				if !found {
					return false
				}
				reply.Word(RepA).Store(ttx, uint64(ack(tx, tp, gi, c.AckMax)))
				return true
			},
		}
	default: // OpLag
		return tm.BatchItem{
			Phase:     tm.PhaseScan,
			Exclusive: true,
			Apply: func(ttx *tm.Tx, reply tm.Struct) bool {
				reply.Word(RepA).Store(ttx, m.broker.lagScan(ttx.Unwrap(), c.ScanLimit))
				return true
			},
		}
	}
}
