// Broker: the tmmsg scenario's two capture regimes on the public API,
// with phase-aware engine selection.
//
//	go run ./examples/broker
//
// A miniature single-topic message broker: publishers assemble batches
// of message records in captured memory (tx.Alloc + fresh-provenance
// stores — the allocate-build-publish shape the paper optimizes) and
// link them into a shared ring; consumers share one group cursor and
// spend their whole transaction in contended read-modify-writes on
// definitely-shared words. The two regimes want opposite barrier
// engines, so the runtime declares a phase per regime (WithPhases) and
// each worker hints its regime with EnterPhase: publish transactions
// run on the capture-checking engine, consume transactions on the
// definitely-shared bypass that skips checks which can never elide.
// A final read-only audit walks the retained window under a third
// regime: the scan phase declares the read-mostly engine
// (WithReadMostly), whose transactions skip all write-path setup,
// validate shared reads against their snapshot instead of logging
// them, and would upgrade onto the full engine on a first shared
// store — the audit never stores, so its stats line shows zero
// upgrades.
// The printed per-phase statistics show the publish phase eliding most
// of its barriers and the cursor phase eliding none — the split the
// internal/scenarios/tmmsg workload measures at full scale.
package main

import (
	"fmt"
	"os"

	"repro/tm"
)

const (
	ringCap      = 64
	payloadWords = 8
	recSum       = 0 // message record: [0] checksum  [1..] payload
	recSize      = 1 + payloadWords
	batch        = 4
	batches      = 250 // per publisher
)

func main() {
	rt := tm.Open(
		tm.WithName("broker"),
		tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap),
		tm.WithLogKind(tm.LogTree),
		// One engine per regime: the publish phase inherits the capture
		// checks above; the cursor phase drops them (they cannot elide
		// anything there) and bypasses checks on definitely-shared
		// accesses instead.
		tm.WithPhases(
			tm.PhaseProfile(tm.PhasePublish),
			tm.PhaseProfile(tm.PhaseCursor,
				tm.WithRuntimeCapture(tm.NoChecks, tm.NoChecks),
				tm.WithSkipSharedChecks()),
			// Read-only audit: no write-path setup, no read logging; a
			// shared store (none here) would upgrade onto the full engine.
			tm.PhaseProfile(tm.PhaseScan, tm.WithReadMostly()),
		),
		tm.WithMemory(tm.MemConfig{
			GlobalWords: 1 << 10, HeapWords: 1 << 20, StackWords: 1 << 10, MaxThreads: 8,
		}),
	)
	defer rt.Close()

	// The topic state is definitely shared: the ring's message slots
	// and the head/tail/cursor sequences.
	ring := rt.AllocGlobal(ringCap)
	meta := rt.AllocGlobal(3)
	head, tail, cursor := meta.Word(0), meta.Word(1), meta.Word(2)

	// Phase 1 — batch publish from two producers. Every record is
	// allocated and filled inside its transaction; only the ring link
	// and the sequence bump touch shared words.
	rt.Parallel(2, func(th *tm.Thread, tid, _ int) {
		th.EnterPhase(tm.PhasePublish)
		for i := 0; i < batches; i++ {
			th.Atomic(func(tx *tm.Tx) {
				for m := 0; m < batch; m++ {
					rec := tx.Alloc(recSize) // captured: fresh provenance
					var sum uint64
					for j := 0; j < payloadWords; j++ {
						w := uint64(tid+1)*1_000_003 + uint64(i*batch+m)*31 + uint64(j)
						rec.Word(1+j).Store(tx, w) // elided store
						sum += w
					}
					rec.Word(recSum).Store(tx, sum)
					seq := head.Load(tx)
					if t := tail.Load(tx); seq-t == ringCap { // ring full: drop oldest
						tx.Free(ring.Ptr(int(t % ringCap)).Load(tx))
						tail.Store(tx, t+1)
					}
					ring.Ptr(int(seq%ringCap)).Store(tx, rec) // publish
					head.Store(tx, seq+1)
				}
			})
		}
	})

	// Phase 2 — two consumers sharing one group cursor: pure contended
	// read-modify-write on shared words, nothing captured.
	consumed := make([]int, 2)
	rt.Parallel(2, func(th *tm.Thread, tid, _ int) {
		th.EnterPhase(tm.PhaseCursor)
		for {
			var got, done bool
			th.Atomic(func(tx *tm.Tx) {
				got, done = false, false
				c := cursor.Load(tx)
				if t := tail.Load(tx); c < t {
					c = t // fell out of the retention window: skip ahead
				}
				if c == head.Load(tx) {
					done = true
					return
				}
				rec := ring.Ptr(int(c % ringCap)).Load(tx) // unknown provenance
				var sum uint64
				for j := 0; j < payloadWords; j++ {
					sum += rec.Word(1 + j).Load(tx) // full barrier
				}
				if sum != rec.Word(recSum).Load(tx) {
					fmt.Fprintln(os.Stderr, "broker: checksum mismatch")
					os.Exit(1)
				}
				cursor.Store(tx, c+1)
				got = true
			})
			if done {
				break
			}
			if got {
				consumed[tid]++
			}
		}
	})

	// Phase 3 — a read-only audit of the retained window: re-verify
	// every checksum still in the ring, one transaction per message.
	// The scan phase's read-mostly engine gives each transaction a
	// zero-cost begin and commit (no read set, write log, undo log, or
	// lock-restore map); nothing here stores, so no transaction ever
	// upgrades.
	t, h := tail.Peek(rt), head.Peek(rt)
	audited := 0
	rt.Parallel(1, func(th *tm.Thread, _, _ int) {
		th.EnterPhase(tm.PhaseScan)
		for c := t; c < h; c++ {
			th.Atomic(func(tx *tm.Tx) {
				rec := ring.Ptr(int(c % ringCap)).Load(tx)
				var sum uint64
				for j := 0; j < payloadWords; j++ {
					sum += rec.Word(1 + j).Load(tx)
				}
				if sum != rec.Word(recSum).Load(tx) {
					fmt.Fprintln(os.Stderr, "broker: audit checksum mismatch")
					os.Exit(1)
				}
			})
			audited++
		}
	})

	// The per-phase breakdown attributes each regime's barriers to the
	// engine that ran them — no ResetStats between phases needed.
	var pub, cur, scan tm.Stats
	for _, ps := range rt.PhaseStats() {
		switch ps.Kind {
		case tm.PhasePublish:
			pub = ps.Stats
		case tm.PhaseCursor:
			cur = ps.Stats
		case tm.PhaseScan:
			scan = ps.Stats
		}
	}
	report("publish (allocate-build-publish)", rt.EngineFor(tm.PhasePublish), pub)
	report("consume (shared cursor)", rt.EngineFor(tm.PhaseCursor), cur)
	report("scan (read-only audit)", rt.EngineFor(tm.PhaseScan), scan)
	fmt.Printf("%-34s %-10s %7d commits  %8d upgrades (read-only: none)\n",
		"", "", scan.Commits, scan.Upgrades)

	published := head.Peek(rt)
	retained := published - tail.Peek(rt)
	fmt.Printf("\npublished %d messages, retained %d, consumed %d (rest dropped by retention), audited %d\n",
		published, retained, consumed[0]+consumed[1], audited)
	if cur.ReadElHeap+cur.WriteElHeap != 0 {
		fmt.Fprintln(os.Stderr, "broker: consume phase should capture nothing")
		os.Exit(1)
	}
	if cur.ReadSkipShared == 0 {
		fmt.Fprintln(os.Stderr, "broker: cursor engine bypassed no definitely-shared checks")
		os.Exit(1)
	}
	if scan.Upgrades != 0 {
		fmt.Fprintln(os.Stderr, "broker: read-only audit upgraded off the read-mostly engine")
		os.Exit(1)
	}
	if scan.Commits == 0 {
		fmt.Fprintln(os.Stderr, "broker: audit committed nothing")
		os.Exit(1)
	}
}

// report prints the share of barriers the capture analysis removed in
// one phase, and the engine the phase compiled to.
func report(phase, engine string, s tm.Stats) {
	total := s.ReadTotal + s.WriteTotal
	elided := s.ReadElided() + s.WriteElided()
	fmt.Printf("%-34s %-10s %7d commits  %8d barriers  %5.1f%% elided\n",
		phase, engine, s.Commits, total, 100*float64(elided)/float64(total))
}
