package txlib

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stm"
)

func newTestRT() *stm.Runtime {
	return stm.New(mem.Config{GlobalWords: 1 << 8, HeapWords: 1 << 20, StackWords: 1 << 10, MaxThreads: 8},
		stm.Baseline())
}

func newCaptureRT() *stm.Runtime {
	return stm.New(mem.Config{GlobalWords: 1 << 8, HeapWords: 1 << 20, StackWords: 1 << 10, MaxThreads: 8},
		stm.RuntimeAll(capture.KindTree))
}

func TestListBasic(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	var l mem.Addr
	th.Atomic(func(tx *stm.Tx) { l = NewList(tx) })
	th.Atomic(func(tx *stm.Tx) {
		if !ListInsert(tx, l, 5, 50, TM) || !ListInsert(tx, l, 1, 10, TM) || !ListInsert(tx, l, 3, 30, TM) {
			t.Error("insert failed")
		}
		if ListInsert(tx, l, 3, 99, TM) {
			t.Error("duplicate insert succeeded")
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if ListSize(tx, l, TM) != 3 {
			t.Errorf("size = %d, want 3", ListSize(tx, l, TM))
		}
		if v, ok := ListFind(tx, l, 3, TM); !ok || v != 30 {
			t.Errorf("find(3) = %d,%v", v, ok)
		}
		if _, ok := ListFind(tx, l, 4, TM); ok {
			t.Error("found absent key")
		}
		// Iteration yields sorted keys.
		it := ListIterNew(tx)
		ListIterReset(tx, it, l, TM)
		var keys []uint64
		for ListIterHasNext(tx, it) {
			k, _ := ListIterNext(tx, it, TM)
			keys = append(keys, k)
		}
		if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 5 {
			t.Errorf("iteration = %v", keys)
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if v, ok := ListRemove(tx, l, 3, TM); !ok || v != 30 {
			t.Errorf("remove(3) = %d,%v", v, ok)
		}
		if _, ok := ListRemove(tx, l, 3, TM); ok {
			t.Error("double remove succeeded")
		}
		if k, d, ok := ListRemoveHead(tx, l, TM); !ok || k != 1 || d != 10 {
			t.Errorf("removeHead = %d,%d,%v", k, d, ok)
		}
		if ListSize(tx, l, TM) != 1 {
			t.Errorf("size = %d, want 1", ListSize(tx, l, TM))
		}
	})
}

func TestListEmptyOps(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		l := NewList(tx)
		if !ListIsEmpty(tx, l, P) {
			t.Error("new list not empty")
		}
		if _, _, ok := ListRemoveHead(tx, l, P); ok {
			t.Error("removeHead on empty succeeded")
		}
		if _, ok := ListRemove(tx, l, 1, P); ok {
			t.Error("remove on empty succeeded")
		}
		ListFree(tx, l, P)
	})
}

func TestListFreeReclaims(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		l := NewList(tx)
		for i := uint64(0); i < 10; i++ {
			ListInsert(tx, l, i, i, L)
		}
		ListFree(tx, l, L)
	})
	s := rt.Stats()
	if s.TxAllocs != s.TxFrees {
		t.Errorf("allocs=%d frees=%d; ListFree leaked", s.TxAllocs, s.TxFrees)
	}
}

func TestMapAgainstReference(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	var m mem.Addr
	th.Atomic(func(tx *stm.Tx) { m = NewMap(tx) })
	ref := map[uint64]uint64{}
	r := prng.New(77)
	for step := 0; step < 3000; step++ {
		key := uint64(r.Intn(200))
		switch r.Intn(4) {
		case 0, 1:
			val := r.Next()
			th.Atomic(func(tx *stm.Tx) {
				ins := MapInsert(tx, m, key, val, TM)
				_, exists := ref[key]
				if ins == exists {
					t.Fatalf("step %d: insert(%d) = %v, exists = %v", step, key, ins, exists)
				}
				if !exists {
					ref[key] = val
				}
			})
		case 2:
			th.Atomic(func(tx *stm.Tx) {
				v, ok := MapRemove(tx, m, key, TM)
				want, exists := ref[key]
				if ok != exists || (ok && v != want) {
					t.Fatalf("step %d: remove(%d) = %d,%v want %d,%v", step, key, v, ok, want, exists)
				}
				delete(ref, key)
			})
		case 3:
			th.Atomic(func(tx *stm.Tx) {
				v, ok := MapGet(tx, m, key, TM)
				want, exists := ref[key]
				if ok != exists || (ok && v != want) {
					t.Fatalf("step %d: get(%d) = %d,%v want %d,%v", step, key, v, ok, want, exists)
				}
			})
		}
	}
	// Final structural check: in-order iteration is sorted and matches.
	th.Atomic(func(tx *stm.Tx) {
		if MapSize(tx, m, TM) != len(ref) {
			t.Errorf("size = %d, want %d", MapSize(tx, m, TM), len(ref))
		}
		var keys []uint64
		MapForEach(tx, m, TM, func(k, v uint64) bool {
			keys = append(keys, k)
			if ref[k] != v {
				t.Errorf("key %d: val %d, want %d", k, v, ref[k])
			}
			return true
		})
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Error("in-order traversal not sorted")
		}
		if len(keys) != len(ref) {
			t.Errorf("traversal yielded %d keys, want %d", len(keys), len(ref))
		}
	})
}

func TestMapSet(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		m := NewMap(tx)
		MapSet(tx, m, 1, 10, P)
		MapSet(tx, m, 1, 20, P)
		if v, _ := MapGet(tx, m, 1, P); v != 20 {
			t.Errorf("MapSet overwrite = %d, want 20", v)
		}
		if MapSize(tx, m, P) != 1 {
			t.Error("MapSet duplicated key")
		}
	})
}

func TestMapFreeReclaims(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		m := NewMap(tx)
		for i := uint64(0); i < 64; i++ {
			MapInsert(tx, m, i*7%64, i, L)
		}
		MapFree(tx, m, L)
	})
	s := rt.Stats()
	if s.TxAllocs != s.TxFrees {
		t.Errorf("allocs=%d frees=%d; MapFree leaked", s.TxAllocs, s.TxFrees)
	}
}

func TestHashtable(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	var ht mem.Addr
	th.Atomic(func(tx *stm.Tx) { ht = NewHashtable(tx, 16) })
	// Insert 100 distinct 2-word keys; re-inserting must fail.
	for i := uint64(0); i < 100; i++ {
		i := i
		th.Atomic(func(tx *stm.Tx) {
			key := tx.StackAlloc(2)
			tx.Store(key, i, stm.AccStack)
			tx.Store(key+1, i*3, stm.AccStack)
			if !HTInsertIfAbsent(tx, ht, key, 2, i+1000, TM, stm.AccStack) {
				t.Errorf("insert %d failed", i)
			}
			if HTInsertIfAbsent(tx, ht, key, 2, 0, TM, stm.AccStack) {
				t.Errorf("duplicate insert %d succeeded", i)
			}
		})
	}
	th.Atomic(func(tx *stm.Tx) {
		if HTSize(tx, ht, TM) != 100 {
			t.Errorf("size = %d, want 100", HTSize(tx, ht, TM))
		}
		key := tx.StackAlloc(2)
		tx.Store(key, 42, stm.AccStack)
		tx.Store(key+1, 126, stm.AccStack)
		if v, ok := HTGet(tx, ht, key, 2, TM, stm.AccStack); !ok || v != 1042 {
			t.Errorf("get = %d,%v want 1042,true", v, ok)
		}
		tx.Store(key+1, 999, stm.AccStack) // different content, same first word
		if HTContains(tx, ht, key, 2, TM, stm.AccStack) {
			t.Error("contains with wrong content")
		}
		count := 0
		HTForEach(tx, ht, TM, func(kp mem.Addr, kw int, data uint64) bool {
			if kw != 2 {
				t.Errorf("keyWords = %d", kw)
			}
			count++
			return true
		})
		if count != 100 {
			t.Errorf("ForEach visited %d, want 100", count)
		}
	})
}

func TestVector(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		v := NewVector(tx, 2)
		for i := uint64(0); i < 50; i++ {
			VecPushBack(tx, v, i*i, L)
		}
		if VecSize(tx, v, L) != 50 {
			t.Errorf("size = %d", VecSize(tx, v, L))
		}
		for i := 0; i < 50; i++ {
			if got := VecGet(tx, v, i, L); got != uint64(i*i) {
				t.Errorf("VecGet(%d) = %d", i, got)
			}
		}
		VecSet(tx, v, 10, 7, L)
		if VecGet(tx, v, 10, L) != 7 {
			t.Error("VecSet lost")
		}
		VecClear(tx, v, L)
		if VecSize(tx, v, L) != 0 {
			t.Error("clear failed")
		}
		VecFree(tx, v, L)
	})
	s := rt.Stats()
	if s.TxAllocs != s.TxFrees {
		t.Errorf("allocs=%d frees=%d; vector leaked", s.TxAllocs, s.TxFrees)
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	th.Atomic(func(tx *stm.Tx) {
		v := NewVector(tx, 2)
		VecGet(tx, v, 0, P)
	})
}

func TestQueueFIFO(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		q := NewQueue(tx, 2)
		if !QueueIsEmpty(tx, q, P) {
			t.Error("new queue not empty")
		}
		if _, ok := QueuePop(tx, q, P); ok {
			t.Error("pop from empty succeeded")
		}
		for i := uint64(0); i < 40; i++ { // forces several growths
			QueuePush(tx, q, i, P)
		}
		if QueueSize(tx, q, P) != 40 {
			t.Errorf("size = %d, want 40", QueueSize(tx, q, P))
		}
		for i := uint64(0); i < 40; i++ {
			v, ok := QueuePop(tx, q, P)
			if !ok || v != i {
				t.Fatalf("pop = %d,%v want %d", v, ok, i)
			}
		}
		if !QueueIsEmpty(tx, q, P) {
			t.Error("queue not empty after draining")
		}
		QueueFree(tx, q, P)
	})
}

func TestQueueInterleaved(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	r := prng.New(5)
	var q mem.Addr
	th.Atomic(func(tx *stm.Tx) { q = NewQueue(tx, 4) })
	var ref []uint64
	next := uint64(0)
	for step := 0; step < 500; step++ {
		if r.Intn(2) == 0 || len(ref) == 0 {
			v := next
			next++
			ref = append(ref, v)
			th.Atomic(func(tx *stm.Tx) { QueuePush(tx, q, v, TM) })
		} else {
			want := ref[0]
			ref = ref[1:]
			th.Atomic(func(tx *stm.Tx) {
				v, ok := QueuePop(tx, q, TM)
				if !ok || v != want {
					t.Fatalf("step %d: pop = %d,%v want %d", step, v, ok, want)
				}
			})
		}
	}
}

func TestHeapOrdering(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	r := prng.New(11)
	th.Atomic(func(tx *stm.Tx) {
		h := NewHeap(tx, 2)
		var prios []uint64
		for i := 0; i < 200; i++ {
			p := r.Next() % 1000
			prios = append(prios, p)
			HeapInsert(tx, h, p, p*2, L)
		}
		sort.Slice(prios, func(i, j int) bool { return prios[i] > prios[j] })
		for i, want := range prios {
			p, payload, ok := HeapExtractMax(tx, h, L)
			if !ok || p != want || payload != p*2 {
				t.Fatalf("extract %d = (%d,%d,%v), want prio %d", i, p, payload, ok, want)
			}
		}
		if _, _, ok := HeapExtractMax(tx, h, L); ok {
			t.Error("extract from empty succeeded")
		}
		HeapFree(tx, h, L)
	})
}

func TestBitmap(t *testing.T) {
	rt := newTestRT()
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		b := NewBitmap(tx, 200)
		if BitmapNBits(tx, b, P) != 200 {
			t.Error("wrong nbits")
		}
		if !BitmapTestAndSet(tx, b, 0, P) || !BitmapTestAndSet(tx, b, 63, P) ||
			!BitmapTestAndSet(tx, b, 64, P) || !BitmapTestAndSet(tx, b, 199, P) {
			t.Error("set failed")
		}
		if BitmapTestAndSet(tx, b, 63, P) {
			t.Error("second set returned true")
		}
		if !BitmapTest(tx, b, 64, P) || BitmapTest(tx, b, 65, P) {
			t.Error("test wrong")
		}
		if BitmapCount(tx, b, P) != 4 {
			t.Errorf("count = %d, want 4", BitmapCount(tx, b, P))
		}
		BitmapClear(tx, b, 63, P)
		if BitmapTest(tx, b, 63, P) {
			t.Error("clear failed")
		}
		if BitmapCount(tx, b, P) != 3 {
			t.Errorf("count = %d, want 3", BitmapCount(tx, b, P))
		}
	})
}

// TestConcurrentMapInsert hammers one shared map from several threads;
// every inserted key must be present exactly once afterwards.
func TestConcurrentMapInsert(t *testing.T) {
	for _, mkRT := range []func() *stm.Runtime{newTestRT, newCaptureRT} {
		rt := mkRT()
		th0 := rt.Thread(0)
		var m mem.Addr
		th0.Atomic(func(tx *stm.Tx) { m = NewMap(tx) })
		const threads, per = 6, 200
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				for j := 0; j < per; j++ {
					key := uint64(id*per + j)
					th.Atomic(func(tx *stm.Tx) {
						MapInsert(tx, m, key, key+1, TM)
					})
				}
			}(i)
		}
		wg.Wait()
		th0.Atomic(func(tx *stm.Tx) {
			if got := MapSize(tx, m, TM); got != threads*per {
				t.Errorf("size = %d, want %d", got, threads*per)
			}
			for k := uint64(0); k < threads*per; k++ {
				if v, ok := MapGet(tx, m, k, TM); !ok || v != k+1 {
					t.Fatalf("key %d = %d,%v", k, v, ok)
				}
			}
		})
		rt.Validate()
	}
}

// TestConcurrentQueueProducersConsumers moves tokens through a shared
// queue; nothing may be lost or duplicated.
func TestConcurrentQueueProducersConsumers(t *testing.T) {
	rt := newCaptureRT()
	th0 := rt.Thread(0)
	var q mem.Addr
	th0.Atomic(func(tx *stm.Tx) { q = NewQueue(tx, 8) })
	const producers, per = 3, 150
	var wg sync.WaitGroup
	seen := make([]int, producers*per)
	var mu sync.Mutex
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for j := 0; j < per; j++ {
				v := uint64(id*per + j)
				th.Atomic(func(tx *stm.Tx) { QueuePush(tx, q, v, TM) })
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(producers + id)
			for {
				var v uint64
				var ok bool
				th.Atomic(func(tx *stm.Tx) { v, ok = QueuePop(tx, q, TM) })
				if !ok {
					mu.Lock()
					done := true
					for _, c := range seen {
						if c == 0 {
							done = false
							break
						}
					}
					mu.Unlock()
					if done {
						return
					}
					continue
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for v, c := range seen {
		if c != 1 {
			t.Errorf("token %d seen %d times", v, c)
		}
	}
	rt.Validate()
}
