package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// The heap allocator is a size-class segregated allocator in the
// spirit of McRT-malloc (Hudson et al., ISMM 2006), which is what the
// paper's STM runtime uses underneath its transactional allocator:
//
//   - A central region is carved into spans under a mutex.
//   - Each thread owns a cache with per-size-class free lists and a
//     private bump span, so steady-state allocation is lock free.
//   - Every block has a one-word header holding the payload size, so
//     Free(addr) and the STM's allocation log can recover the block
//     range from the payload address alone.
//
// There is no coalescing: freed blocks return to the freeing thread's
// class list. That matches the workloads here (fixed-shape nodes
// recycled at high rates) and keeps the allocator deterministic.

// numClasses size classes cover payloads up to 1<<14 words; larger
// allocations are carved directly from the central region.
var classSizes = []int{
	1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64, 96, 128,
	192, 256, 384, 512, 768, 1024, 2048, 4096, 8192, 16384,
}

const spanWords = 8192 // words fetched from central per refill

// sizeClass returns the smallest class index whose size is ≥ n, or -1
// if n exceeds the largest class.
func sizeClass(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

type central struct {
	mu    sync.Mutex
	next  Addr
	limit Addr
	// hi mirrors next so the durability tier can read the bump pointer
	// lock-free on every redo record (Space.HeapNext).
	hi atomic.Uint64
}

func (c *central) init(start, end Addr) {
	c.next = start
	c.limit = end
	c.hi.Store(uint64(start))
}

// grab carves n words from the central region.
func (c *central) grab(n int) Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.next+Addr(n) > c.limit {
		panic(fmt.Sprintf("mem: heap exhausted (want %d words, %d left)", n, c.limit-c.next))
	}
	a := c.next
	c.next += Addr(n)
	c.hi.Store(uint64(c.next))
	return a
}

// Allocator is a per-thread heap allocation cache. An Allocator must
// only be used by one goroutine at a time.
type Allocator struct {
	space *Space
	free  [][]Addr // per-class free lists of payload addresses
	span  Addr     // private bump span
	spanN int      // words left in span

	// Stats
	Allocs uint64
	Frees  uint64
}

// NewAllocator creates a heap allocation cache on s.
func NewAllocator(s *Space) *Allocator {
	return &Allocator{
		space: s,
		free:  make([][]Addr, len(classSizes)),
	}
}

// Alloc allocates n payload words and returns the payload address.
// The payload is zeroed. Alloc panics if n is not positive.
func (al *Allocator) Alloc(n int) Addr {
	if n <= 0 {
		panic("mem: Alloc size must be positive")
	}
	al.Allocs++
	ci := sizeClass(n)
	if ci < 0 {
		// Large allocation straight from central; header + payload.
		a := al.space.central.grab(n + 1)
		al.space.Store(a, uint64(n)<<1|1) // header: size<<1 | large bit
		p := a + 1
		al.space.Zero(p, n)
		return p
	}
	cs := classSizes[ci]
	if fl := al.free[ci]; len(fl) > 0 {
		p := fl[len(fl)-1]
		al.free[ci] = fl[:len(fl)-1]
		al.space.Zero(p, cs)
		return p
	}
	// Carve from the private span; refill if needed.
	need := cs + 1
	if al.spanN < need {
		if need > spanWords {
			// Jumbo size class: carve a dedicated span so the block
			// cannot overflow a standard refill span.
			a := al.space.central.grab(need)
			al.space.Store(a, uint64(cs)<<1)
			p := a + 1
			al.space.Zero(p, cs)
			return p
		}
		// Remainder of the old span is abandoned (bounded waste).
		al.span = al.space.central.grab(spanWords)
		al.spanN = spanWords
	}
	a := al.span
	al.span += Addr(need)
	al.spanN -= need
	al.space.Store(a, uint64(cs)<<1) // header: class payload size, small
	p := a + 1
	al.space.Zero(p, cs)
	return p
}

// BlockSize returns the payload size in words of the block whose
// payload starts at p.
func (al *Allocator) BlockSize(p Addr) int {
	return int(al.space.Load(p-1) >> 1)
}

// Free returns the block whose payload starts at p to this cache.
// Freeing Nil is a no-op, as with C free.
func (al *Allocator) Free(p Addr) {
	if p == Nil {
		return
	}
	h := al.space.Load(p - 1)
	al.Frees++
	if h&1 != 0 {
		// Large block: dropped (never recycled). The workloads make
		// few large allocations, all long lived.
		return
	}
	cs := int(h >> 1)
	ci := sizeClass(cs)
	if ci < 0 || classSizes[ci] != cs {
		panic(fmt.Sprintf("mem: Free(%d): corrupt block header %#x", p, h))
	}
	al.free[ci] = append(al.free[ci], p)
}

// Live returns allocs minus frees, a leak-check aid for tests.
func (al *Allocator) Live() uint64 { return al.Allocs - al.Frees }
