package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/tm"
)

// Breakdown is the paper's Fig. 8 classification of the compiler-
// inserted barriers of one benchmark: captured heap, captured stack,
// required (hand-instrumented) and other (not required but not
// captured), as fractions of the total.
type Breakdown struct {
	Bench             string
	Total             uint64
	CapHeap, CapStack float64
	Required, Other   float64
}

func breakdown(bench string, total, capHeap, capStack, manual uint64) Breakdown {
	t := float64(total)
	if t == 0 {
		return Breakdown{Bench: bench}
	}
	b := Breakdown{
		Bench:    bench,
		Total:    total,
		CapHeap:  float64(capHeap) / t,
		CapStack: float64(capStack) / t,
		Required: float64(manual) / t,
	}
	// The paper estimates "other not required" as the remainder after
	// captured and required accesses (Sec. 4.1).
	b.Other = 1 - b.CapHeap - b.CapStack - b.Required
	if b.Other < 0 {
		b.Other = 0
	}
	return b
}

// measure runs one fresh instance of the workload single-threaded
// under the profile and returns the statistics of the timed phase.
// The snapshot is taken before Validate, whose own transactional
// walking would otherwise pollute the counts.
func measure(bench string, p tm.Profile) (tm.Stats, error) {
	w, err := tm.NewWorkload(bench)
	if err != nil {
		return tm.Stats{}, err
	}
	rt := tm.Open(append(p.Options(), tm.WithMemory(w.MemConfig()))...)
	w.Setup(rt)
	rt.ResetStats() // count the timed phase only, as in Sec. 4.1
	w.Run(rt, 1)
	s := rt.Stats()
	if err := w.Validate(rt); err != nil {
		return tm.Stats{}, fmt.Errorf("%s [%s]: %w", bench, p.Name(), err)
	}
	return s, nil
}

// MeasureBreakdown runs bench single-threaded in counting mode and
// returns the read, write, and combined classifications (Fig. 8 a/b/c).
func MeasureBreakdown(bench string) (read, write, all Breakdown, err error) {
	s, err := measure(bench, tm.Counting())
	if err != nil {
		return read, write, all, err
	}
	read = breakdown(bench, s.ReadTotal, s.ReadCapHeap, s.ReadCapStack, s.ReadManual)
	write = breakdown(bench, s.WriteTotal, s.WriteCapHeap, s.WriteCapStack, s.WriteManual)
	all = breakdown(bench, s.ReadTotal+s.WriteTotal,
		s.ReadCapHeap+s.WriteCapHeap, s.ReadCapStack+s.WriteCapStack,
		s.ReadManual+s.WriteManual)
	return read, write, all, nil
}

// WriteFig8 prints the Fig. 8 table for the given access class
// ("reads", "writes" or "all").
func WriteFig8(w io.Writer, class string, rows []Breakdown) {
	fmt.Fprintf(w, "Figure 8: breakdown of compiler-inserted STM barriers (%s)\n", class)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tbarriers\ttx-heap\ttx-stack\tother\trequired")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Bench, r.Total, 100*r.CapHeap, 100*r.CapStack, 100*r.Other, 100*r.Required)
	}
	tw.Flush()
}

// Removal is one benchmark's Fig. 9 row: the portion of read and write
// barriers removed by each capture-analysis technique.
type Removal struct {
	Bench       string
	Read, Write map[string]float64 // technique → fraction removed
}

// Fig9Techniques lists the technique columns of Fig. 9.
func Fig9Techniques() []string { return []string{"tree", "array", "filter", "compiler"} }

// MeasureRemoval runs bench single-threaded under each technique and
// reports the portion of barriers each one removed.
func MeasureRemoval(bench string) (Removal, error) {
	rm := Removal{Bench: bench, Read: map[string]float64{}, Write: map[string]float64{}}
	profiles := map[string]tm.Profile{
		"tree":     tm.RuntimeAll(tm.LogTree),
		"array":    tm.RuntimeAll(tm.LogArray),
		"filter":   tm.RuntimeAll(tm.LogFilter),
		"compiler": tm.CompilerElision(),
	}
	for _, tech := range Fig9Techniques() {
		s, err := measure(bench, profiles[tech])
		if err != nil {
			return rm, err
		}
		if s.ReadTotal > 0 {
			rm.Read[tech] = float64(s.ReadElided()) / float64(s.ReadTotal)
		}
		if s.WriteTotal > 0 {
			rm.Write[tech] = float64(s.WriteElided()) / float64(s.WriteTotal)
		}
	}
	return rm, nil
}

// WriteFig9 prints the Fig. 9 table for reads or writes.
func WriteFig9(w io.Writer, class string, rows []Removal) {
	fmt.Fprintf(w, "Figure 9: portion of %s barriers removed by technique\n", class)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, t := range Fig9Techniques() {
		fmt.Fprintf(tw, "\t%s", t)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		m := r.Read
		if class == "writes" {
			m = r.Write
		}
		fmt.Fprintf(tw, "%s", r.Bench)
		for _, t := range Fig9Techniques() {
			fmt.Fprintf(tw, "\t%.1f%%", 100*m[t])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// CaptureStat is one row of the capture/elision report: the barrier
// counters of a single-threaded run of one workload under one profile,
// read before validation so the row covers the timed phase only.
type CaptureStat struct {
	Bench, Config         string
	Commits               uint64
	ReadTotal, WriteTotal uint64
	ElStatic              uint64 // statically elided (compiler)
	ElStack, ElHeap       uint64 // runtime-captured, by mechanism
	ElPriv                uint64 // annotated thread-private
	SkipShared            uint64 // definitely-shared check bypasses
	Full                  uint64 // full barriers executed
}

// CaptureConfigs returns the profile set of the capture report: each
// elision mechanism alone, both combined, and the definitely-shared
// extension on top of the runtime checks.
func CaptureConfigs() []tm.Profile {
	return []tm.Profile{
		tm.Baseline(),
		tm.RuntimeAll(tm.LogTree),
		tm.CompilerElision(),
		tm.CompilerElision().With(
			tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap)).Named("compiler+runtime"),
		tm.RuntimeAll(tm.LogTree).With(tm.WithSkipSharedChecks()).Named("runtime+skipshared"),
	}
}

// MeasureCaptureStats runs the workload single-threaded under each
// profile and returns one CaptureStat row per profile.
func MeasureCaptureStats(bench string, profiles []tm.Profile) ([]CaptureStat, error) {
	rows := make([]CaptureStat, 0, len(profiles))
	for _, p := range profiles {
		s, err := measure(bench, p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CaptureStat{
			Bench: bench, Config: p.Name(),
			Commits:   s.Commits,
			ReadTotal: s.ReadTotal, WriteTotal: s.WriteTotal,
			ElStatic:   s.ReadElStatic + s.WriteElStatic,
			ElStack:    s.ReadElStack + s.WriteElStack,
			ElHeap:     s.ReadElHeap + s.WriteElHeap,
			ElPriv:     s.ReadElPriv + s.WriteElPriv,
			SkipShared: s.ReadSkipShared + s.WriteSkipShared,
			Full:       s.ReadFull + s.WriteFull,
		})
	}
	return rows, nil
}

// WriteCaptureStats prints the per-profile capture/elision table of
// one or more workloads.
func WriteCaptureStats(w io.Writer, rows []CaptureStat) {
	fmt.Fprintln(w, "Capture/elision breakdown (single-threaded; barrier counts per mechanism)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tconfig\tcommits\tbarriers\tstatic\tstack\theap\tpriv\tskip-shared\tfull")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Bench, r.Config, r.Commits, r.ReadTotal+r.WriteTotal,
			r.ElStatic, r.ElStack, r.ElHeap, r.ElPriv, r.SkipShared, r.Full)
	}
	tw.Flush()
}

// rowNames returns the benchmark rows of a table in sorted order, so
// externally registered workloads appear alongside the STAMP roster.
func rowNames(rows map[string]map[string]float64) []string {
	names := make([]string, 0, len(rows))
	for b := range rows {
		names = append(names, b)
	}
	sort.Strings(names)
	return names
}

// WriteTable1 prints the abort-to-commit ratios (Table 1).
func WriteTable1(w io.Writer, rows map[string]map[string]float64, configs []string, threads int) {
	fmt.Fprintf(w, "Table 1: abort-to-commit ratio at %d threads\n", threads)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, c := range configs {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, b := range rowNames(rows) {
		fmt.Fprintf(tw, "%s", b)
		for _, c := range configs {
			fmt.Fprintf(tw, "\t%.2f", rows[b][c])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// WriteTable2 prints the percent relative standard deviations (Table 2).
func WriteTable2(w io.Writer, rows map[string]map[string]float64, configs []string, threads, runs int) {
	fmt.Fprintf(w, "Table 2: %% relative standard deviation at %d threads (%d runs)\n", threads, runs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, c := range configs {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, b := range rowNames(rows) {
		fmt.Fprintf(tw, "%s", b)
		for _, c := range configs {
			fmt.Fprintf(tw, "\t%.2f", rows[b][c])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// WriteImprovements prints a Fig. 10 / Fig. 11 style table: percent
// improvement over the baseline per benchmark and configuration.
func WriteImprovements(w io.Writer, title string, rows map[string]map[string]float64, configs []string) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "benchmark")
	for _, c := range configs {
		if c == "baseline" {
			continue
		}
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, b := range rowNames(rows) {
		fmt.Fprintf(tw, "%s", b)
		for _, c := range configs {
			if c == "baseline" {
				continue
			}
			fmt.Fprintf(tw, "\t%+.1f%%", rows[b][c])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}
