package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/tm"

	_ "repro/internal/stamp/all"
)

func TestRunProducesTimesAndStats(t *testing.T) {
	res, err := Run("ssca2", tm.Baseline(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 2 {
		t.Fatalf("times = %v", res.Times)
	}
	if res.Stats.Commits == 0 {
		t.Error("no commits recorded")
	}
	if res.Mean() <= 0 || res.Median() <= 0 || res.Min() <= 0 {
		t.Error("non-positive aggregate time")
	}
}

func TestRunUnknownBenchErrors(t *testing.T) {
	_, err := Run("nope", tm.Baseline(), 1, 1)
	if err == nil {
		t.Fatal("no error for unknown benchmark")
	}
	// The registry error is the UX for typos: it lists what exists.
	if !strings.Contains(err.Error(), "vacation-low") {
		t.Errorf("error does not list registered workloads: %v", err)
	}
}

func TestStatisticsHelpers(t *testing.T) {
	r := Result{Times: []time.Duration{10, 20, 30, 40, 100}}
	if r.Min() != 10 {
		t.Errorf("Min = %v", r.Min())
	}
	if r.Median() != 30 {
		t.Errorf("Median = %v", r.Median())
	}
	if r.Mean() != 40 {
		t.Errorf("Mean = %v", r.Mean())
	}
	if r.RelStdDev() <= 0 {
		t.Error("RelStdDev should be positive for varied samples")
	}
	same := Result{Times: []time.Duration{50, 50, 50}}
	if same.RelStdDev() != 0 {
		t.Errorf("RelStdDev of constant samples = %v", same.RelStdDev())
	}
	one := Result{Times: []time.Duration{50}}
	if one.RelStdDev() != 0 {
		t.Error("RelStdDev of one sample should be 0")
	}
}

func TestImprovementSign(t *testing.T) {
	base := Result{Times: []time.Duration{100}}
	faster := Result{Times: []time.Duration{80}}
	slower := Result{Times: []time.Duration{120}}
	if imp := Improvement(base, faster); imp != 20 {
		t.Errorf("Improvement = %v, want 20", imp)
	}
	if imp := Improvement(base, slower); imp != -20 {
		t.Errorf("Improvement = %v, want -20", imp)
	}
}

func TestConfigSets(t *testing.T) {
	if n := len(Fig10Configs()); n != 5 {
		t.Errorf("Fig10Configs = %d, want 5", n)
	}
	if n := len(Fig11bConfigs()); n != 5 {
		t.Errorf("Fig11bConfigs = %d, want 5", n)
	}
	if n := len(Table1Configs()); n != 5 {
		t.Errorf("Table1Configs = %d, want 5", n)
	}
	for _, sets := range [][]tm.Profile{Fig10Configs(), Fig11bConfigs(), Table1Configs()} {
		if sets[0].Name() != "baseline" {
			t.Errorf("first profile %q, want baseline", sets[0].Name())
		}
	}
	if len(Benches()) != 10 {
		t.Errorf("Benches = %d, want 10 (Table 1 roster)", len(Benches()))
	}
}

func TestMeasureBreakdownSums(t *testing.T) {
	r, w, all, err := MeasureBreakdown("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Breakdown{r, w, all} {
		if b.Total == 0 {
			t.Fatal("empty breakdown")
		}
		sum := b.CapHeap + b.CapStack + b.Other + b.Required
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("breakdown fractions sum to %v", sum)
		}
	}
	if all.Total != r.Total+w.Total {
		t.Errorf("all.Total %d != reads %d + writes %d", all.Total, r.Total, w.Total)
	}
}

func TestMeasureRemovalWithinBounds(t *testing.T) {
	rm, err := MeasureRemoval("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range Fig9Techniques() {
		if rm.Read[tech] < 0 || rm.Read[tech] > 1 || rm.Write[tech] < 0 || rm.Write[tech] > 1 {
			t.Errorf("removal fraction out of range for %s", tech)
		}
	}
}

func TestReportWriters(t *testing.T) {
	var buf bytes.Buffer
	WriteFig8(&buf, "reads", []Breakdown{{Bench: "x", Total: 10, CapHeap: 0.5, Required: 0.5}})
	if !strings.Contains(buf.String(), "Figure 8") || !strings.Contains(buf.String(), "50.0%") {
		t.Errorf("Fig8 output:\n%s", buf.String())
	}
	buf.Reset()
	WriteFig9(&buf, "writes", []Removal{{
		Bench: "x",
		Read:  map[string]float64{"tree": 1},
		Write: map[string]float64{"tree": 0.25},
	}})
	if !strings.Contains(buf.String(), "25.0%") {
		t.Errorf("Fig9 output:\n%s", buf.String())
	}
	buf.Reset()
	rows := map[string]map[string]float64{}
	for _, b := range Benches() {
		rows[b] = map[string]float64{"baseline": 0.5, "compiler": 0.1}
	}
	WriteTable1(&buf, rows, []string{"baseline", "compiler"}, 16)
	if !strings.Contains(buf.String(), "Table 1") || !strings.Contains(buf.String(), "0.50") {
		t.Errorf("Table1 output:\n%s", buf.String())
	}
	buf.Reset()
	WriteTable2(&buf, rows, []string{"baseline"}, 16, 5)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Errorf("Table2 output:\n%s", buf.String())
	}
	buf.Reset()
	imp := map[string]map[string]float64{}
	for _, b := range Benches() {
		imp[b] = map[string]float64{"compiler": 14.0}
	}
	WriteImprovements(&buf, "Figure 11", imp, []string{"baseline", "compiler"})
	if !strings.Contains(buf.String(), "+14.0%") {
		t.Errorf("Improvements output:\n%s", buf.String())
	}
}

func TestRunMatrixInterleaves(t *testing.T) {
	profiles := []tm.Profile{tm.Baseline(), tm.CompilerElision()}
	results, err := RunMatrix("ssca2", profiles, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if len(r.Times) != 2 {
			t.Errorf("config %d: %d times, want 2", i, len(r.Times))
		}
		if r.Config != profiles[i].Name() {
			t.Errorf("config %d name %q", i, r.Config)
		}
	}
}

// --- An external workload, written purely against the tm package ---

// extCounter is a scenario defined outside internal/stamp: concurrent
// counter increments plus a per-transaction scratch record, so both
// full barriers and captured (elidable) accesses occur.
type extCounter struct {
	perThread int
	cell      tm.Word
	want      uint64
}

func (c *extCounter) Name() string { return "ext-counter" }

func (c *extCounter) MemConfig() tm.MemConfig {
	// Each thread's allocation cache grabs 8192-word spans from the
	// central heap, so size for MaxThreads spans plus slack.
	return tm.MemConfig{GlobalWords: 64, HeapWords: 1 << 17, StackWords: 1 << 8, MaxThreads: 8}
}

func (c *extCounter) Setup(rt *tm.Runtime) {
	c.cell = rt.AllocGlobal(1).Word(0)
}

func (c *extCounter) Run(rt *tm.Runtime, nthreads int) {
	rt.Parallel(nthreads, func(th *tm.Thread, tid, _ int) {
		for i := 0; i < c.perThread; i++ {
			th.Atomic(func(tx *tm.Tx) {
				scratch := tx.Alloc(2) // captured: elidable stores
				scratch.Word(0).Store(tx, uint64(tid))
				scratch.Word(1).Store(tx, uint64(i))
				c.cell.Add(tx, 1)
				tx.Free(scratch)
			})
		}
	})
	c.want += uint64(nthreads * c.perThread)
}

func (c *extCounter) Validate(rt *tm.Runtime) error {
	if got := c.cell.Peek(rt); got != c.want {
		return fmt.Errorf("counter = %d, want %d", got, c.want)
	}
	return nil
}

func init() {
	tm.RegisterWorkload("ext-counter", func() tm.Workload {
		return &extCounter{perThread: 300}
	})
}

// valTxCounter is a workload whose Setup AND Validate both run
// transactions — the shape (tmmsg walks every topic, vacation re-reads
// every table) that used to pollute the reported statistics, because
// Run snapshotted rt.Stats() only after Validate.
type valTxCounter struct {
	perThread   int
	cell        tm.Word
	want        uint64
	preValidate tm.Stats // rt.Stats() at the instant Validate starts
	validated   bool
}

// lastValTx is the most recently constructed instance, so the test can
// reach through the registry to its snapshots.
var lastValTx *valTxCounter

func (c *valTxCounter) Name() string { return "ext-valtx" }

func (c *valTxCounter) MemConfig() tm.MemConfig {
	return tm.MemConfig{GlobalWords: 64, HeapWords: 1 << 17, StackWords: 1 << 8, MaxThreads: 8}
}

func (c *valTxCounter) Setup(rt *tm.Runtime) {
	c.cell = rt.AllocGlobal(1).Word(0)
	rt.Thread(0).Atomic(func(tx *tm.Tx) { c.cell.Store(tx, 0) }) // transactional setup
}

func (c *valTxCounter) Run(rt *tm.Runtime, nthreads int) {
	rt.Parallel(nthreads, func(th *tm.Thread, tid, _ int) {
		for i := 0; i < c.perThread; i++ {
			th.Atomic(func(tx *tm.Tx) { c.cell.Add(tx, 1) })
		}
	})
	c.want += uint64(nthreads * c.perThread)
}

func (c *valTxCounter) Validate(rt *tm.Runtime) error {
	c.preValidate = rt.Stats()
	c.validated = true
	var got uint64
	th := rt.Thread(0)
	for i := 0; i < 16; i++ { // transactional re-reads, like a topic walk
		th.Atomic(func(tx *tm.Tx) { got = c.cell.Load(tx) })
	}
	if got != c.want {
		return fmt.Errorf("counter = %d, want %d", got, c.want)
	}
	return nil
}

func init() {
	tm.RegisterWorkload("ext-valtx", func() tm.Workload {
		lastValTx = &valTxCounter{perThread: 100}
		return lastValTx
	})
}

// TestRunStatsExcludeValidation pins the measurement-integrity fix:
// the stats a Result reports must equal the snapshot taken before
// Validate ran, and must count exactly the timed phase's transactions
// — neither the transactional setup nor the transactional validation.
func TestRunStatsExcludeValidation(t *testing.T) {
	res, err := Run("ext-valtx", tm.Baseline(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := lastValTx
	if w == nil || !w.validated {
		t.Fatal("ext-valtx did not run its transactional Validate")
	}
	if res.Stats != w.preValidate {
		t.Errorf("reported stats differ from the pre-Validate snapshot:\n  reported: %+v\n  snapshot: %+v",
			res.Stats, w.preValidate)
	}
	if want := uint64(2 * w.perThread); res.Stats.Commits != want {
		t.Errorf("reported commits = %d, want exactly %d (timed phase only)", res.Stats.Commits, want)
	}
}

// TestCaptureStatsExcludeValidation pins the same invariant for the
// capture report rows that feed BENCH_capture.json: every profile's
// commit count is exactly the timed phase's.
func TestCaptureStatsExcludeValidation(t *testing.T) {
	rows, err := MeasureCaptureStats("ext-valtx", CaptureConfigs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if want := uint64(lastValTx.perThread); r.Commits != want {
			t.Errorf("%s: capture row commits = %d, want exactly %d (setup and validation excluded)",
				r.Config, r.Commits, want)
		}
	}
}

// TestExternalWorkloadThroughHarness is the acceptance test for the
// pluggable registry: a workload registered outside internal/stamp
// runs through harness.Run and shows up in the report output next to
// the STAMP roster.
func TestExternalWorkloadThroughHarness(t *testing.T) {
	res, err := Run("ext-counter", tm.RuntimeAll(tm.LogTree), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Commits == 0 {
		t.Error("no commits recorded")
	}
	if res.Stats.WriteElided() == 0 {
		t.Error("runtime capture analysis elided nothing for the scratch records")
	}
	rows := map[string]map[string]float64{
		"vacation-low": {"baseline": 0.1},
		"ext-counter":  {"baseline": res.Stats.AbortRatio()},
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows, []string{"baseline"}, 2)
	out := buf.String()
	if !strings.Contains(out, "ext-counter") {
		t.Errorf("external workload missing from report:\n%s", out)
	}
}
