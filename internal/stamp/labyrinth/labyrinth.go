// Package labyrinth ports STAMP's labyrinth: concurrent maze routing
// with Lee's algorithm. Like STAMP, each router takes a *non-
// transactional* (possibly stale) snapshot of the shared grid into a
// private buffer, expands a breadth-first wavefront on the copy, and
// then claims the chosen path with one transaction that re-reads each
// path cell (still free?) and marks it. Stale snapshots are safe: the
// claiming transaction re-validates exactly the cells it writes, and a
// collision re-routes from a fresh snapshot. Every barrier labyrinth
// executes is therefore a hand-instrumented shared access — the
// paper's Fig. 8 shows labyrinth with no elidable barriers at all.
package labyrinth

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txlib"
)

// Config sizes the maze.
type Config struct {
	Name    string
	X, Y, Z int
	Pairs   int
	Seed    uint64
}

// Default returns the scaled-down labyrinth configuration.
func Default() Config {
	return Config{Name: "labyrinth", X: 64, Y: 64, Z: 3, Pairs: 96, Seed: 6}
}

type point struct{ x, y, z int }

// B is one labyrinth run.
type B struct {
	cfg   Config
	grid  mem.Addr // X*Y*Z cells; 0 = free, otherwise path id
	queue mem.Addr // shared work queue of pair indices
	pairs [][2]point

	mu     sync.Mutex
	routed [][]point // successful paths (path id = index+2 at record time)
	ids    []uint64
	failed int
}

func init() {
	stamp.Register("labyrinth",
		"STAMP labyrinth: maze routing over privatized grid copies", func() stamp.Benchmark { return &B{cfg: Default()} })
}

// NewWith creates a labyrinth instance with a custom configuration.
func NewWith(cfg Config) *B { return &B{cfg: cfg} }

// Name implements stamp.Benchmark.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements stamp.Benchmark.
func (b *B) MemConfig() mem.Config {
	words := b.cfg.X*b.cfg.Y*b.cfg.Z + b.cfg.Pairs*4 + (1 << 19)
	return mem.Config{GlobalWords: 1 << 10, HeapWords: words, StackWords: 1 << 10, MaxThreads: 32}
}

func (b *B) cells() int { return b.cfg.X * b.cfg.Y * b.cfg.Z }

func (b *B) idx(p point) int {
	return (p.z*b.cfg.Y+p.y)*b.cfg.X + p.x
}

// Setup allocates the grid and generates distinct endpoint pairs.
func (b *B) Setup(rt *stm.Runtime) {
	th := rt.Thread(0)
	b.grid = th.Alloc(b.cells())
	r := prng.New(b.cfg.Seed)
	used := map[point]bool{}
	rnd := func() point {
		for {
			p := point{r.Intn(b.cfg.X), r.Intn(b.cfg.Y), r.Intn(b.cfg.Z)}
			if !used[p] {
				used[p] = true
				return p
			}
		}
	}
	for i := 0; i < b.cfg.Pairs; i++ {
		b.pairs = append(b.pairs, [2]point{rnd(), rnd()})
	}
	th.Atomic(func(tx *stm.Tx) {
		b.queue = txlib.NewQueue(tx, b.cfg.Pairs+1)
		for i := 0; i < b.cfg.Pairs; i++ {
			txlib.QueuePush(tx, b.queue, uint64(i), txlib.TM)
		}
	})
}

// Run routes all pairs (STAMP's router_solve).
func (b *B) Run(rt *stm.Runtime, nthreads int) {
	stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
		// The private expansion grid is allocated once per thread and
		// reused, like STAMP's myGridPtr.
		local := make([]int32, b.cells())
		for {
			var workIdx uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) {
				workIdx, ok = txlib.QueuePop(tx, b.queue, txlib.TM)
			})
			if !ok {
				return
			}
			b.route(th, local, int(workIdx))
		}
	})
}

// route plans pair i on a private snapshot and claims the path
// transactionally, re-routing from a fresh snapshot when another path
// raced it (STAMP's router retry loop).
func (b *B) route(th *stm.Thread, local []int32, i int) {
	src, dst := b.pairs[i][0], b.pairs[i][1]
	pathID := uint64(i + 2)
	s := th.Runtime().Space()
	const maxTries = 24
	for try := 0; try < maxTries; try++ {
		// Non-transactional (stale) snapshot, as in STAMP's grid_copy.
		for c := 0; c < b.cells(); c++ {
			if s.Load(b.grid+mem.Addr(c)) == 0 {
				local[c] = 0 // free
			} else {
				local[c] = -1 // occupied
			}
		}
		si, di := b.idx(src), b.idx(dst)
		if local[si] != 0 || local[di] != 0 || !b.expand(local, src, dst) {
			break // unroutable in the current grid: give up on the pair
		}
		path := b.traceback(local, src, dst)
		// Claim: re-read each path cell transactionally (it may have
		// been taken since the snapshot) and mark it.
		committed := th.Atomic(func(tx *stm.Tx) {
			for _, p := range path {
				if tx.Load(b.grid+mem.Addr(b.idx(p)), stm.AccShared) != 0 {
					tx.UserAbort() // stale plan: replan from a new snapshot
				}
			}
			for _, p := range path {
				tx.Store(b.grid+mem.Addr(b.idx(p)), pathID, stm.AccShared)
			}
		})
		if committed {
			b.mu.Lock()
			b.routed = append(b.routed, path)
			b.ids = append(b.ids, pathID)
			b.mu.Unlock()
			return
		}
	}
	b.mu.Lock()
	b.failed++
	b.mu.Unlock()
}

var dirs = []point{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}

// expand runs the breadth-first wavefront on the private grid,
// writing distance+2 values (0 free, -1 blocked).
func (b *B) expand(local []int32, src, dst point) bool {
	frontier := []point{src}
	local[b.idx(src)] = 2
	for len(frontier) > 0 {
		var next []point
		for _, p := range frontier {
			d := local[b.idx(p)]
			if p == dst {
				return true
			}
			for _, dir := range dirs {
				q := point{p.x + dir.x, p.y + dir.y, p.z + dir.z}
				if q.x < 0 || q.x >= b.cfg.X || q.y < 0 || q.y >= b.cfg.Y || q.z < 0 || q.z >= b.cfg.Z {
					continue
				}
				qi := b.idx(q)
				if local[qi] == 0 {
					local[qi] = d + 1
					next = append(next, q)
				}
			}
		}
		frontier = next
	}
	return false
}

// traceback walks from dst back to src along decreasing distances.
func (b *B) traceback(local []int32, src, dst point) []point {
	path := []point{dst}
	cur := dst
	for cur != src {
		d := local[b.idx(cur)]
		for _, dir := range dirs {
			q := point{cur.x + dir.x, cur.y + dir.y, cur.z + dir.z}
			if q.x < 0 || q.x >= b.cfg.X || q.y < 0 || q.y >= b.cfg.Y || q.z < 0 || q.z >= b.cfg.Z {
				continue
			}
			if local[b.idx(q)] == d-1 {
				cur = q
				break
			}
		}
		path = append(path, cur)
	}
	return path
}

// Validate re-walks every committed path: cells still carry the path's
// id (so no two paths overlap), consecutive cells are adjacent, and
// the endpoints match. All pairs are accounted for.
func (b *B) Validate(rt *stm.Runtime) error {
	s := rt.Space()
	if len(b.routed)+b.failed != b.cfg.Pairs {
		return fmt.Errorf("routed %d + failed %d != pairs %d", len(b.routed), b.failed, b.cfg.Pairs)
	}
	for k, path := range b.routed {
		id := b.ids[k]
		for j, p := range path {
			if got := s.Load(b.grid + mem.Addr(b.idx(p))); got != id {
				return fmt.Errorf("path %d cell %v holds %d, want %d (overlap)", id, p, got, id)
			}
			if j > 0 {
				q := path[j-1]
				md := abs(p.x-q.x) + abs(p.y-q.y) + abs(p.z-q.z)
				if md != 1 {
					return fmt.Errorf("path %d not connected at step %d", id, j)
				}
			}
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
