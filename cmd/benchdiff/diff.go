package main

import (
	"fmt"
	"sort"
	"time"

	"repro/tm/bench"
)

// Metric names for Key.Metric: the best observed time of a throughput
// row, and the open-loop service-time quantiles of a latency row. All
// three are durations in nanoseconds where smaller is better, so one
// threshold/floor policy gates them uniformly.
const (
	MetricMin = "min"
	MetricP95 = "p95"
	MetricP99 = "p99"
)

// Key identifies one comparable measurement across reports: the same
// workload under the same profile, thread count, and compiled barrier
// engine, for the same metric. A row that changes engine between runs
// is not comparable — the engine *is* the code under test — so it
// surfaces as unmatched instead of as a bogus delta. A result row with
// a latency block yields up to three keys (min, p95, p99); one without
// yields just min, so old reports keep diffing unchanged.
type Key struct {
	Bench, Config, Engine string
	Threads               int
	Metric                string
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/%dt/%s", k.Bench, k.Config, k.Engine, k.Threads, k.Metric)
}

// Delta is one matched row: the best (minimum) observed time from each
// report and the relative slowdown of current against baseline.
// Minima are the comparison statistic throughout the harness: noise
// only ever adds time, so the minimum is the most repeatable view of
// the same code on the same machine.
type Delta struct {
	Key
	BaseNs, CurNs int64
	Pct           float64 // positive: current is slower (throughput regression)
	Regressed     bool
}

// Comparison is the outcome of diffing two reports.
type Comparison struct {
	Deltas   []Delta
	OnlyBase []Key // timed rows present only in the baseline
	OnlyCur  []Key // timed rows present only in the current report
}

// Regressions returns the flagged deltas, worst first; equal slowdowns
// keep their key order, so the listing is deterministic run to run.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pct > out[j].Pct })
	return out
}

// indexResults maps each comparable metric of each timed row to its
// best (smallest) observed value: the minimum run time, plus the p95
// and p99 service times when the row carries an open-loop latency
// block. Rows without times (capture-only reports) are skipped; a
// duplicate key keeps the fastest run.
func indexResults(rep bench.Report) map[Key]int64 {
	idx := make(map[Key]int64)
	add := func(k Key, ns int64) {
		if prev, ok := idx[k]; !ok || ns < prev {
			idx[k] = ns
		}
	}
	for _, r := range rep.Results {
		k := Key{Bench: r.Bench, Config: r.Config, Engine: r.Engine, Threads: r.Threads}
		if r.MinNs > 0 {
			k.Metric = MetricMin
			add(k, r.MinNs)
		}
		if l := r.Latency; l != nil {
			if l.P95Ns > 0 {
				k.Metric = MetricP95
				add(k, l.P95Ns)
			}
			if l.P99Ns > 0 {
				k.Metric = MetricP99
				add(k, l.P99Ns)
			}
		}
	}
	return idx
}

func sortedKeys(idx map[Key]int64) []Key {
	keys := make([]Key, 0, len(idx))
	for k := range idx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Engine != b.Engine {
			return a.Engine < b.Engine
		}
		if a.Threads != b.Threads {
			return a.Threads < b.Threads
		}
		return a.Metric < b.Metric
	})
	return keys
}

// Compare matches the timed rows of two reports by key and flags every
// match whose best time rose by more than thresholdPct. A row whose
// current time is still under floor is reported but never flagged:
// at sub-floor durations scheduler noise swamps any real regression,
// while a genuine catastrophic slowdown pushes the current time past
// the floor and fires regardless of how small the baseline was.
func Compare(base, cur bench.Report, thresholdPct float64, floor time.Duration) Comparison {
	bidx, cidx := indexResults(base), indexResults(cur)
	var c Comparison
	for _, k := range sortedKeys(bidx) {
		bNs := bidx[k]
		cNs, ok := cidx[k]
		if !ok {
			c.OnlyBase = append(c.OnlyBase, k)
			continue
		}
		d := Delta{Key: k, BaseNs: bNs, CurNs: cNs,
			Pct: 100 * (float64(cNs) - float64(bNs)) / float64(bNs)}
		d.Regressed = d.Pct > thresholdPct && cNs >= floor.Nanoseconds()
		c.Deltas = append(c.Deltas, d)
	}
	for _, k := range sortedKeys(cidx) {
		if _, ok := bidx[k]; !ok {
			c.OnlyCur = append(c.OnlyCur, k)
		}
	}
	return c
}
