package stm

import (
	"strings"

	"repro/internal/capture"
	"repro/internal/mem"
)

// This file is the barrier engine: the per-profile "compiled" Load and
// Store implementations the paper's Sec. 3.2 compiler would emit. The
// generic chain (barrier.go) interprets the optimization profile by
// re-testing eight cached configuration booleans on every access; the
// engine selector runs that decision procedure ONCE per Runtime and
// hands every Tx a pair of function pointers whose bodies contain only
// the checks the profile enables. The performance engines carry zero
// statistics code and probe the allocation log through its concrete
// type for the configured capture.Kind — no capture.Log interface
// dispatch and no stats branches on the fast path.

// loadFn and storeFn are the barrier entry points an engine provides.
// They receive the Tx explicitly so engines can be plain functions
// (method expressions and closures both fit).
type loadFn func(tx *Tx, a mem.Addr, ac Acc) uint64
type storeFn func(tx *Tx, a mem.Addr, val uint64, ac Acc)

// engine is one compiled barrier implementation, selected per Runtime.
type engine struct {
	name  string
	load  loadFn
	store storeFn

	// up is the in-flight upgrade target of a read-mostly engine: the
	// full engine compiled from the same profile with ReadMostly off.
	// upgradeWrite re-points the Tx's barrier pair at it on the first
	// store that needs the full write barrier; nil for every other
	// engine family.
	up *engine
}

// genericEngine is the reference chain: the original interpreting
// barrier, forced via OptConfig.ForceGeneric (tm.WithEngine) for
// differential testing and selected automatically for debug
// configurations the specialized engines do not model.
func genericEngine() *engine {
	return &engine{name: "generic", load: (*Tx).loadGeneric, store: (*Tx).storeGeneric}
}

// newEngine compiles the optimization profile into a barrier engine:
//
//   - "generic"   — the reference chain (forced, or rare debug combos)
//   - "counting"  — full instrumentation, for every profile that keeps
//     statistics (PerfMode off)
//   - "readmostly" / "perf-readmostly" — the read-mostly family:
//     unlogged snapshot-validated loads (no read set), shared stores
//     upgrade in-flight onto the full engine (newReadMostlyEngine)
//   - "perf-*"    — specialized fast paths with no statistics code and
//     the capture probe inlined for the configured log kind
func newEngine(cfg OptConfig) *engine {
	if cfg.ForceGeneric {
		if cfg.ReadMostly && !cfg.Counting && !cfg.VerifyElision {
			// The reference for a read-mostly profile must interpret the
			// same semantics — the generic capture dispatch with unlogged
			// rmReadFull loads and in-flight upgrade onto the plain
			// generic chain — or the differentials would compare two
			// different specifications. Same selection condition as the
			// specialized family below.
			full := cfg
			full.ReadMostly = false
			return &engine{name: "generic",
				load: (*Tx).loadGenericRM, store: (*Tx).storeGenericRM,
				up: newEngine(full)}
		}
		return genericEngine()
	}
	if cfg.ReadMostly && !cfg.Counting && !cfg.VerifyElision {
		// The counting/verification oracles need their instrumented
		// chains to observe every access, so they win over ReadMostly.
		return newReadMostlyEngine(cfg)
	}
	if !cfg.PerfMode {
		// Statistics are on: the instrumented chain carries all the
		// accounting, so the perf engines never need a stats branch.
		return &engine{name: "counting", load: (*Tx).loadCounting, store: (*Tx).storeCounting}
	}
	if cfg.Counting || cfg.VerifyElision {
		// PerfMode combined with the counting/verification oracles is a
		// debug configuration; the reference chain models it exactly.
		return genericEngine()
	}
	return newPerfEngine(cfg)
}

// newPerfEngine builds the specialized performance engine for cfg. The
// common profile shapes (the paper's evaluated configurations) map to
// flat hand-specialized functions; annotations and other long-tail
// combinations fall back to a stats-free closure chain.
func newPerfEngine(cfg OptConfig) *engine {
	if cfg.Annotations {
		// The private-log probe sits between the capture checks and the
		// full barrier, so it cannot be a wrapper around the flat fast
		// paths; use the stats-free interpreting chain.
		return &engine{name: "perf-mixed", load: perfLoadChain(cfg), store: perfStoreChain(cfg)}
	}

	load := perfLoadCore(cfg.Read, cfg.LogKind)
	store := perfStoreCore(cfg.Write, cfg.LogKind)
	name := perfName(cfg)

	// The definitely-shared extension bypasses the capture checks for
	// ProvShared accesses; the compiler optimization statically elides
	// provably-captured ones. Both compose as prologues to the core.
	if cfg.SkipSharedChecks {
		load, store = withSkipShared(load, store)
	}
	if cfg.Compiler {
		load, store = withStaticElide(load, store)
	}
	return &engine{name: name, load: load, store: store}
}

// newReadMostlyEngine builds the read-mostly family for cfg: a barrier
// pair specialized for transactions that read shared data and write
// (at most) captured memory. The Load chain keeps every capture
// elision the profile compiles — even "read" operations load back
// reply staging and scan scratch from captured memory, and an elided
// captured read is strictly cheaper than any barrier — but the
// full-barrier fallback is rmReadFull (barrier.go): the read is
// validated against the attempt's snapshot at read time and NEVER
// logged. A transaction that stays on this engine therefore commits
// with no read-set traffic, no validation loop, and no clock bump at
// all. The Store chain keeps the profile's capture dispatch; only a
// store that would need the full write barrier falls through to
// upgradeWrite (barrier.go), which continues in-flight on the full
// engine when no writer has committed since the snapshot and restarts
// the attempt on the full engine otherwise. Until that happens the
// write log, undo log, and lockedPrev map are never touched.
func newReadMostlyEngine(cfg OptConfig) *engine {
	full := cfg
	full.ReadMostly = false
	e := &engine{up: newEngine(full)}
	if !cfg.PerfMode {
		// Statistics on: the instrumented read-mostly chain accounts for
		// the elisions; post-upgrade accesses are counted by the upgrade
		// target's own chain.
		e.name = "readmostly"
		e.load = (*Tx).loadReadMostly
		e.store = (*Tx).storeReadMostly
		return e
	}
	e.name = "perf-readmostly"
	e.load = rmLoadPerf(cfg)
	e.store = rmStorePerf(cfg)
	return e
}

// rmLoadPerf is the stats-free read-mostly load: the profile's capture
// dispatch with the full-barrier fallback replaced by the unlogged
// snapshot-validated read. The composition mirrors newPerfEngine.
func rmLoadPerf(cfg OptConfig) loadFn {
	if cfg.Annotations {
		return rmLoadChain(cfg)
	}
	load := rmLoadCore(cfg.Read, cfg.LogKind)
	if cfg.SkipSharedChecks {
		load = rmLoadSkipShared(load)
	}
	if cfg.Compiler {
		load = rmLoadStaticElide(load)
	}
	return load
}

// rmStorePerf is the stats-free read-mostly store: the profile's
// capture dispatch with the full-barrier fallback replaced by the
// one-time in-flight upgrade.
func rmStorePerf(cfg OptConfig) storeFn {
	compiler := cfg.Compiler
	wStack, wHeap := cfg.Write.Stack, cfg.Write.Heap
	return func(tx *Tx, a mem.Addr, val uint64, ac Acc) {
		if compiler && StaticElide(ac.Prov) {
			tx.storeCaptured(a, val)
			return
		}
		if wStack && tx.onTxStack(a) {
			tx.storeCaptured(a, val)
			return
		}
		if wHeap && tx.alogContains(a) {
			tx.storeCaptured(a, val)
			return
		}
		tx.upgradeWrite(a, val, ac)
	}
}

// perfName derives the engine label from the profile shape.
func perfName(cfg OptConfig) string {
	var parts []string
	if cfg.Compiler {
		parts = append(parts, "compiler")
	}
	r, w := checksDesc(cfg.Read), checksDesc(cfg.Write)
	kind := "-" + cfg.LogKind.String()
	switch {
	case r == "" && w == "":
	case r == w:
		parts = append(parts, "rw-"+r+kindSuffix(cfg.Read, cfg.Write, kind))
	case r == "":
		parts = append(parts, "w-"+w+kindSuffix(BarrierOpt{}, cfg.Write, kind))
	case w == "":
		parts = append(parts, "r-"+r+kindSuffix(cfg.Read, BarrierOpt{}, kind))
	default:
		parts = append(parts, "r-"+r+"+w-"+w+kindSuffix(cfg.Read, cfg.Write, kind))
	}
	if cfg.SkipSharedChecks {
		parts = append(parts, "skipshared")
	}
	if len(parts) == 0 {
		return "perf-noinstr"
	}
	return "perf-" + strings.Join(parts, "+")
}

func checksDesc(b BarrierOpt) string {
	switch {
	case b.Stack && b.Heap:
		return "stack-heap"
	case b.Stack:
		return "stack"
	case b.Heap:
		return "heap"
	}
	return ""
}

// kindSuffix appends the log-kind name only when a heap probe exists.
func kindSuffix(r, w BarrierOpt, kind string) string {
	if r.Heap || w.Heap {
		return kind
	}
	return ""
}

// --- Flat load fast paths ---

func perfLoadFull(tx *Tx, a mem.Addr, _ Acc) uint64 { return tx.readFull(a) }

func perfLoadStack(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.onTxStack(a) {
		return tx.th.rt.space.Load(a)
	}
	return tx.readFull(a)
}

func perfLoadStackHeapTree(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.onTxStack(a) || (tx.allocLive > 0 && tx.alogTree.Contains(a, 1)) {
		return tx.th.rt.space.Load(a)
	}
	return tx.readFull(a)
}

func perfLoadStackHeapArray(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.onTxStack(a) || (tx.allocLive > 0 && tx.alogArr.Contains(a, 1)) {
		return tx.th.rt.space.Load(a)
	}
	return tx.readFull(a)
}

func perfLoadStackHeapFilter(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.onTxStack(a) || (tx.allocLive > 0 && tx.alogFil.Contains(a, 1)) {
		return tx.th.rt.space.Load(a)
	}
	return tx.readFull(a)
}

func perfLoadHeapTree(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.allocLive > 0 && tx.alogTree.Contains(a, 1) {
		return tx.th.rt.space.Load(a)
	}
	return tx.readFull(a)
}

func perfLoadHeapArray(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.allocLive > 0 && tx.alogArr.Contains(a, 1) {
		return tx.th.rt.space.Load(a)
	}
	return tx.readFull(a)
}

func perfLoadHeapFilter(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.allocLive > 0 && tx.alogFil.Contains(a, 1) {
		return tx.th.rt.space.Load(a)
	}
	return tx.readFull(a)
}

func perfLoadCore(b BarrierOpt, k capture.Kind) loadFn {
	switch {
	case b.Stack && b.Heap:
		switch k {
		case capture.KindArray:
			return perfLoadStackHeapArray
		case capture.KindFilter:
			return perfLoadStackHeapFilter
		default:
			return perfLoadStackHeapTree
		}
	case b.Heap:
		switch k {
		case capture.KindArray:
			return perfLoadHeapArray
		case capture.KindFilter:
			return perfLoadHeapFilter
		default:
			return perfLoadHeapTree
		}
	case b.Stack:
		return perfLoadStack
	}
	return perfLoadFull
}

// --- Read-mostly flat load fast paths ---
//
// Mirrors of the perfLoad* specializations with readFull replaced by
// rmReadFull: the capture checks are identical, the full-barrier
// fallback validates against the snapshot and keeps no read set.

func rmLoadFull(tx *Tx, a mem.Addr, _ Acc) uint64 { return tx.rmReadFull(a) }

func rmLoadStack(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.onTxStack(a) {
		return tx.th.rt.space.Load(a)
	}
	return tx.rmReadFull(a)
}

func rmLoadStackHeapTree(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.onTxStack(a) || (tx.allocLive > 0 && tx.alogTree.Contains(a, 1)) {
		return tx.th.rt.space.Load(a)
	}
	return tx.rmReadFull(a)
}

func rmLoadStackHeapArray(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.onTxStack(a) || (tx.allocLive > 0 && tx.alogArr.Contains(a, 1)) {
		return tx.th.rt.space.Load(a)
	}
	return tx.rmReadFull(a)
}

func rmLoadStackHeapFilter(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.onTxStack(a) || (tx.allocLive > 0 && tx.alogFil.Contains(a, 1)) {
		return tx.th.rt.space.Load(a)
	}
	return tx.rmReadFull(a)
}

func rmLoadHeapTree(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.allocLive > 0 && tx.alogTree.Contains(a, 1) {
		return tx.th.rt.space.Load(a)
	}
	return tx.rmReadFull(a)
}

func rmLoadHeapArray(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.allocLive > 0 && tx.alogArr.Contains(a, 1) {
		return tx.th.rt.space.Load(a)
	}
	return tx.rmReadFull(a)
}

func rmLoadHeapFilter(tx *Tx, a mem.Addr, _ Acc) uint64 {
	if tx.allocLive > 0 && tx.alogFil.Contains(a, 1) {
		return tx.th.rt.space.Load(a)
	}
	return tx.rmReadFull(a)
}

func rmLoadCore(b BarrierOpt, k capture.Kind) loadFn {
	switch {
	case b.Stack && b.Heap:
		switch k {
		case capture.KindArray:
			return rmLoadStackHeapArray
		case capture.KindFilter:
			return rmLoadStackHeapFilter
		default:
			return rmLoadStackHeapTree
		}
	case b.Heap:
		switch k {
		case capture.KindArray:
			return rmLoadHeapArray
		case capture.KindFilter:
			return rmLoadHeapFilter
		default:
			return rmLoadHeapTree
		}
	case b.Stack:
		return rmLoadStack
	}
	return rmLoadFull
}

// rmLoadSkipShared and rmLoadStaticElide are the load halves of the
// composable prologues below, with the definitely-shared fast path
// routed to the unlogged read.
func rmLoadSkipShared(load loadFn) loadFn {
	return func(tx *Tx, a mem.Addr, ac Acc) uint64 {
		if ac.Prov == ProvShared {
			return tx.rmReadFull(a)
		}
		return load(tx, a, ac)
	}
}

func rmLoadStaticElide(load loadFn) loadFn {
	return func(tx *Tx, a mem.Addr, ac Acc) uint64 {
		if StaticElide(ac.Prov) {
			return tx.th.rt.space.Load(a)
		}
		return load(tx, a, ac)
	}
}

// rmLoadChain is the stats-free interpreting read-mostly load for
// long-tail profiles (annotations): perfLoadChain with the unlogged
// fallback.
func rmLoadChain(cfg OptConfig) loadFn {
	compiler, skipShared := cfg.Compiler, cfg.SkipSharedChecks
	readStack, readHeap := cfg.Read.Stack, cfg.Read.Heap
	annotations := cfg.Annotations
	return func(tx *Tx, a mem.Addr, ac Acc) uint64 {
		if compiler && StaticElide(ac.Prov) {
			return tx.th.rt.space.Load(a)
		}
		if skipShared && ac.Prov == ProvShared {
			return tx.rmReadFull(a)
		}
		if readStack && tx.onTxStack(a) {
			return tx.th.rt.space.Load(a)
		}
		if readHeap && tx.alogContains(a) {
			return tx.th.rt.space.Load(a)
		}
		if annotations && tx.th.priv.Contains(a, 1) {
			return tx.th.rt.space.Load(a)
		}
		return tx.rmReadFull(a)
	}
}

// --- Flat store fast paths ---

func perfStoreFull(tx *Tx, a mem.Addr, val uint64, _ Acc) { tx.writeFull(a, val) }

func perfStoreStack(tx *Tx, a mem.Addr, val uint64, _ Acc) {
	if tx.onTxStack(a) {
		tx.storeCaptured(a, val)
		return
	}
	tx.writeFull(a, val)
}

func perfStoreStackHeapTree(tx *Tx, a mem.Addr, val uint64, _ Acc) {
	if tx.onTxStack(a) || (tx.allocLive > 0 && tx.alogTree.Contains(a, 1)) {
		tx.storeCaptured(a, val)
		return
	}
	tx.writeFull(a, val)
}

func perfStoreStackHeapArray(tx *Tx, a mem.Addr, val uint64, _ Acc) {
	if tx.onTxStack(a) || (tx.allocLive > 0 && tx.alogArr.Contains(a, 1)) {
		tx.storeCaptured(a, val)
		return
	}
	tx.writeFull(a, val)
}

func perfStoreStackHeapFilter(tx *Tx, a mem.Addr, val uint64, _ Acc) {
	if tx.onTxStack(a) || (tx.allocLive > 0 && tx.alogFil.Contains(a, 1)) {
		tx.storeCaptured(a, val)
		return
	}
	tx.writeFull(a, val)
}

func perfStoreHeapTree(tx *Tx, a mem.Addr, val uint64, _ Acc) {
	if tx.allocLive > 0 && tx.alogTree.Contains(a, 1) {
		tx.storeCaptured(a, val)
		return
	}
	tx.writeFull(a, val)
}

func perfStoreHeapArray(tx *Tx, a mem.Addr, val uint64, _ Acc) {
	if tx.allocLive > 0 && tx.alogArr.Contains(a, 1) {
		tx.storeCaptured(a, val)
		return
	}
	tx.writeFull(a, val)
}

func perfStoreHeapFilter(tx *Tx, a mem.Addr, val uint64, _ Acc) {
	if tx.allocLive > 0 && tx.alogFil.Contains(a, 1) {
		tx.storeCaptured(a, val)
		return
	}
	tx.writeFull(a, val)
}

func perfStoreCore(b BarrierOpt, k capture.Kind) storeFn {
	switch {
	case b.Stack && b.Heap:
		switch k {
		case capture.KindArray:
			return perfStoreStackHeapArray
		case capture.KindFilter:
			return perfStoreStackHeapFilter
		default:
			return perfStoreStackHeapTree
		}
	case b.Heap:
		switch k {
		case capture.KindArray:
			return perfStoreHeapArray
		case capture.KindFilter:
			return perfStoreHeapFilter
		default:
			return perfStoreHeapTree
		}
	case b.Stack:
		return perfStoreStack
	}
	return perfStoreFull
}

// --- Composable prologues ---

// withStaticElide prepends the compiler optimization (Sec. 3.2): an
// access whose provenance proves capture is a plain memory access.
func withStaticElide(load loadFn, store storeFn) (loadFn, storeFn) {
	return func(tx *Tx, a mem.Addr, ac Acc) uint64 {
			if StaticElide(ac.Prov) {
				return tx.th.rt.space.Load(a)
			}
			return load(tx, a, ac)
		}, func(tx *Tx, a mem.Addr, val uint64, ac Acc) {
			if StaticElide(ac.Prov) {
				tx.storeCaptured(a, val)
				return
			}
			store(tx, a, val, ac)
		}
}

// withSkipShared prepends the definitely-shared extension: a ProvShared
// access goes straight to the full barrier, skipping capture checks
// that cannot succeed.
func withSkipShared(load loadFn, store storeFn) (loadFn, storeFn) {
	return func(tx *Tx, a mem.Addr, ac Acc) uint64 {
			if ac.Prov == ProvShared {
				return tx.readFull(a)
			}
			return load(tx, a, ac)
		}, func(tx *Tx, a mem.Addr, val uint64, ac Acc) {
			if ac.Prov == ProvShared {
				tx.writeFull(a, val)
				return
			}
			store(tx, a, val, ac)
		}
}

// --- Stats-free interpreting chain (long-tail combinations) ---

// perfLoadChain and perfStoreChain bake the configuration into a
// closure: the same decision order as the generic chain, with every
// statistics update removed. Used for profiles (annotations, unusual
// check mixes) that have no flat specialization.
func perfLoadChain(cfg OptConfig) loadFn {
	compiler, skipShared := cfg.Compiler, cfg.SkipSharedChecks
	readStack, readHeap := cfg.Read.Stack, cfg.Read.Heap
	annotations := cfg.Annotations
	return func(tx *Tx, a mem.Addr, ac Acc) uint64 {
		if compiler && StaticElide(ac.Prov) {
			return tx.th.rt.space.Load(a)
		}
		if skipShared && ac.Prov == ProvShared {
			return tx.readFull(a)
		}
		if readStack && tx.onTxStack(a) {
			return tx.th.rt.space.Load(a)
		}
		if readHeap && tx.alogContains(a) {
			return tx.th.rt.space.Load(a)
		}
		if annotations && tx.th.priv.Contains(a, 1) {
			return tx.th.rt.space.Load(a)
		}
		return tx.readFull(a)
	}
}

func perfStoreChain(cfg OptConfig) storeFn {
	compiler, skipShared := cfg.Compiler, cfg.SkipSharedChecks
	writeStack, writeHeap := cfg.Write.Stack, cfg.Write.Heap
	annotations := cfg.Annotations
	return func(tx *Tx, a mem.Addr, val uint64, ac Acc) {
		if compiler && StaticElide(ac.Prov) {
			tx.storeCaptured(a, val)
			return
		}
		if skipShared && ac.Prov == ProvShared {
			tx.writeFull(a, val)
			return
		}
		if writeStack && tx.onTxStack(a) {
			tx.storeCaptured(a, val)
			return
		}
		if writeHeap && tx.alogContains(a) {
			tx.storeCaptured(a, val)
			return
		}
		if annotations && tx.th.priv.Contains(a, 1) {
			// Annotated thread-local data can hold live-in values, so it
			// keeps undo logging but skips locking (Sec. 2.2.2).
			tx.logUndo(a)
			tx.th.rt.space.Store(a, val)
			return
		}
		tx.writeFull(a, val)
	}
}
