package tm_test

// Black-box tests of the Batcher: admission policy, merged execution,
// per-request fallback after a merged abort, and the statistics the
// merge ratio is computed from.

import (
	"testing"

	"repro/tm"
)

// incItem returns a batch item that adds delta to counter cell i and
// reports the post-increment value in reply word 0.
func incItem(g tm.Struct, i int, delta uint64) tm.BatchItem {
	return tm.BatchItem{
		Footprint: tm.Footprint{Writes: []uint64{uint64(i)}},
		Apply: func(tx *tm.Tx, reply tm.Struct) bool {
			reply.Word(0).Store(tx, g.Word(i).Add(tx, delta))
			return true
		},
	}
}

func TestBatcherAdmission(t *testing.T) {
	rt := tm.Open(smallMem())
	b := tm.NewBatcher(rt.Thread(0), 3, 1)
	g := rt.AllocGlobal(8)

	if !b.Admit(incItem(g, 0, 1)) {
		t.Fatal("empty batch refused an item")
	}
	// Write-write conflict on key 0.
	if b.Admit(incItem(g, 0, 1)) {
		t.Error("admitted write-write conflict")
	}
	// Read of a queued write.
	if b.Admit(tm.BatchItem{
		Footprint: tm.Footprint{Reads: []uint64{0}},
		Apply:     func(tx *tm.Tx, reply tm.Struct) bool { return true },
	}) {
		t.Error("admitted read of a queued write")
	}
	// Write of a queued read: queue a reader of key 5 first.
	if !b.Admit(tm.BatchItem{
		Footprint: tm.Footprint{Reads: []uint64{5}},
		Apply:     func(tx *tm.Tx, reply tm.Struct) bool { return true },
	}) {
		t.Fatal("refused a compatible reader")
	}
	if b.Admit(incItem(g, 5, 1)) {
		t.Error("admitted write of a queued read")
	}
	// Readers never conflict with readers.
	if !b.Admit(tm.BatchItem{
		Footprint: tm.Footprint{Reads: []uint64{5}},
		Apply:     func(tx *tm.Tx, reply tm.Struct) bool { return true },
	}) {
		t.Error("refused read-read overlap")
	}
	// Batch is now full (width 3).
	if b.Admit(incItem(g, 7, 1)) {
		t.Error("admitted past width")
	}
	b.Flush()

	// Phase mismatch.
	pub := incItem(g, 1, 1)
	pub.Phase = tm.PhasePublish
	cur := incItem(g, 2, 1)
	cur.Phase = tm.PhaseCursor
	if !b.Admit(pub) {
		t.Fatal("refused first phased item")
	}
	if b.Admit(cur) {
		t.Error("admitted mixed phase kinds")
	}
	b.Flush()

	// Exclusive items merge with nothing, in either order.
	excl := incItem(g, 3, 1)
	excl.Exclusive = true
	if !b.Admit(excl) {
		t.Fatal("refused exclusive into empty batch")
	}
	if b.Admit(incItem(g, 4, 1)) {
		t.Error("admitted item after exclusive")
	}
	b.Flush()
	if !b.Admit(incItem(g, 4, 1)) {
		t.Fatal("refused plain item into empty batch")
	}
	if b.Admit(excl) {
		t.Error("admitted exclusive into non-empty batch")
	}
	b.Flush()
	rt.Validate()
}

func TestBatcherMergedFlush(t *testing.T) {
	rt := tm.Open(smallMem())
	b := tm.NewBatcher(rt.Thread(0), 4, 2)
	g := rt.AllocGlobal(4)

	for i := 0; i < 4; i++ {
		it := incItem(g, i, uint64(10*(i+1)))
		base := it.Apply
		it.Apply = func(tx *tm.Tx, reply tm.Struct) bool {
			ok := base(tx, reply)
			reply.Word(1).Store(tx, 7) // second reply word
			return ok
		}
		if !b.Admit(it) {
			t.Fatalf("item %d refused", i)
		}
	}
	res := b.Flush()
	if !res.Merged {
		t.Fatal("4 compatible items did not merge")
	}
	for i, r := range res.Replies {
		if r.Aborted {
			t.Errorf("reply %d aborted", i)
		}
		want := uint64(10 * (i + 1))
		if r.Words[0] != want || r.Words[1] != 7 {
			t.Errorf("reply %d = %v, want [%d 7]", i, r.Words, want)
		}
		if v := g.Word(i).Peek(rt); v != want {
			t.Errorf("cell %d = %d, want %d", i, v, want)
		}
	}
	s := b.Stats()
	if s.Requests != 4 || s.Batches != 1 || s.Merged != 1 || s.Fallbacks != 0 || s.Txns != 1 {
		t.Errorf("stats = %+v", s)
	}
	if r := s.MergeRatio(); r != 4 {
		t.Errorf("merge ratio = %v, want 4", r)
	}
	if b.Len() != 0 {
		t.Errorf("batch not emptied: %d", b.Len())
	}
	rt.Validate()
}

func TestBatcherFallbackOnAbort(t *testing.T) {
	rt := tm.Open(smallMem())
	b := tm.NewBatcher(rt.Thread(0), 3, 1)
	g := rt.AllocGlobal(4)

	b.Admit(incItem(g, 0, 1))
	b.Admit(tm.BatchItem{
		Footprint: tm.Footprint{Writes: []uint64{1}},
		Apply: func(tx *tm.Tx, reply tm.Struct) bool {
			g.Word(1).Add(tx, 1) // must be rolled back
			return false
		},
	})
	b.Admit(incItem(g, 2, 1))

	res := b.Flush()
	if res.Merged {
		t.Fatal("batch with an aborting item reported merged")
	}
	if res.Replies[0].Aborted || res.Replies[2].Aborted {
		t.Error("non-aborting items flagged aborted")
	}
	if !res.Replies[1].Aborted {
		t.Error("aborting item not flagged")
	}
	if res.Replies[0].Words[0] != 1 || res.Replies[2].Words[0] != 1 {
		t.Errorf("fallback replies = %v, %v, want [1], [1]",
			res.Replies[0].Words, res.Replies[2].Words)
	}
	if res.Replies[1].Words[0] != 0 {
		t.Errorf("aborted reply = %v, want zeros", res.Replies[1].Words)
	}
	if v := g.Word(0).Peek(rt); v != 1 {
		t.Errorf("cell 0 = %d, want 1", v)
	}
	if v := g.Word(1).Peek(rt); v != 0 {
		t.Errorf("aborted item's effect visible: cell 1 = %d", v)
	}
	if v := g.Word(2).Peek(rt); v != 1 {
		t.Errorf("cell 2 = %d, want 1", v)
	}
	s := b.Stats()
	// Txns counts the aborted merged attempt too: 1 merged attempt + 3
	// per-item fallback transactions.
	if s.Requests != 3 || s.Batches != 1 || s.Merged != 0 || s.Fallbacks != 1 || s.Txns != 4 {
		t.Errorf("stats = %+v", s)
	}
	if r := s.MergeRatio(); r != 0.75 {
		t.Errorf("merge ratio = %v, want 0.75 (fallback costs the attempt)", r)
	}
	rt.Validate()
}

func TestBatcherSoloAndEmpty(t *testing.T) {
	rt := tm.Open(smallMem())
	b := tm.NewBatcher(rt.Thread(0), 1, 1)
	g := rt.AllocGlobal(1)

	if res := b.Flush(); res.Merged || len(res.Replies) != 0 {
		t.Errorf("empty flush = %+v", res)
	}
	b.Admit(incItem(g, 0, 5))
	res := b.Flush()
	if res.Merged {
		t.Error("single item reported merged")
	}
	if res.Replies[0].Words[0] != 5 {
		t.Errorf("solo reply = %v, want [5]", res.Replies[0].Words)
	}
	s := b.Stats()
	if s.Requests != 1 || s.Txns != 1 || s.Merged != 0 || s.Fallbacks != 0 {
		t.Errorf("stats = %+v", s)
	}
	rt.Validate()
}

// abortItem returns a batch item that always asks to abort — in a
// merged batch it forces the per-item fallback.
func abortItem(key int) tm.BatchItem {
	return tm.BatchItem{
		Footprint: tm.Footprint{Writes: []uint64{uint64(key)}},
		Apply:     func(tx *tm.Tx, reply tm.Struct) bool { return false },
	}
}

// fillAndFlush admits one compatible item per current width slot and
// flushes, returning the result.
func fillAndFlush(b *tm.Batcher, g tm.Struct) tm.BatchResult {
	for j := 0; j < b.Width(); j++ {
		if !b.Admit(incItem(g, j, 1)) {
			break
		}
	}
	return b.Flush()
}

// TestAdaptiveBatcherGrows: a fallback-free workload climbs from width
// 1 to the configured maximum, one doubling per policy window.
func TestAdaptiveBatcherGrows(t *testing.T) {
	rt := tm.Open(smallMem())
	b := tm.NewAdaptiveBatcher(rt.Thread(0), 8, 1, tm.WidthPolicy{Epoch: 4})
	g := rt.AllocGlobal(8)

	if b.Width() != 1 || b.MaxWidth() != 8 {
		t.Fatalf("initial width=%d max=%d, want 1 and 8", b.Width(), b.MaxWidth())
	}
	widths := []int{}
	for i := 0; i < 5*4; i++ {
		fillAndFlush(b, g)
		widths = append(widths, b.Width())
	}
	if b.Width() != 8 {
		t.Errorf("width after 5 windows = %d (trajectory %v), want 8", b.Width(), widths)
	}
	s := b.Stats()
	if s.WidthGrows != 3 || s.WidthShrinks != 0 {
		t.Errorf("grows=%d shrinks=%d, want 3 and 0", s.WidthGrows, s.WidthShrinks)
	}
	rt.Validate()
}

// TestAdaptiveBatcherBurstShrink: consecutive fallback batches shrink
// the width immediately, without waiting for the window.
func TestAdaptiveBatcherBurstShrink(t *testing.T) {
	rt := tm.Open(smallMem())
	b := tm.NewAdaptiveBatcher(rt.Thread(0), 4, 1, tm.WidthPolicy{Epoch: 2, Burst: 2})
	g := rt.AllocGlobal(8)

	// One window of solo batches climbs to width 2.
	fillAndFlush(b, g)
	fillAndFlush(b, g)
	if b.Width() != 2 {
		t.Fatalf("width after solo window = %d, want 2", b.Width())
	}
	// Two consecutive fallback batches trip the burst.
	for i := 0; i < 2; i++ {
		b.Admit(incItem(g, 0, 1))
		b.Admit(abortItem(1))
		if res := b.Flush(); res.Merged {
			t.Fatal("aborting batch reported merged")
		}
	}
	if b.Width() != 1 {
		t.Errorf("width after burst = %d, want 1", b.Width())
	}
	if s := b.Stats(); s.WidthShrinks != 1 {
		t.Errorf("shrinks = %d, want 1", s.WidthShrinks)
	}
	rt.Validate()
}

// TestAdaptiveBatcherShareShrink: a window whose fallback share reaches
// the policy threshold shrinks even without a burst.
func TestAdaptiveBatcherShareShrink(t *testing.T) {
	rt := tm.Open(smallMem())
	b := tm.NewAdaptiveBatcher(rt.Thread(0), 4, 1,
		tm.WidthPolicy{Epoch: 4, ShrinkPct: 0.25, Burst: 100})
	g := rt.AllocGlobal(8)

	fillAndFlush(b, g)
	fillAndFlush(b, g)
	fillAndFlush(b, g)
	fillAndFlush(b, g)
	if b.Width() != 2 {
		t.Fatalf("width after solo window = %d, want 2", b.Width())
	}
	// One fallback spread among merges: share 1/4 hits the threshold.
	b.Admit(incItem(g, 0, 1))
	b.Admit(abortItem(1))
	b.Flush()
	fillAndFlush(b, g)
	fillAndFlush(b, g)
	fillAndFlush(b, g)
	if b.Width() != 1 {
		t.Errorf("width after fallback-heavy window = %d, want 1", b.Width())
	}
	rt.Validate()
}

// TestFixedBatcherWidthStats: fixed-width batchers never move.
func TestFixedBatcherWidthStats(t *testing.T) {
	rt := tm.Open(smallMem())
	b := tm.NewBatcher(rt.Thread(0), 4, 1)
	g := rt.AllocGlobal(8)
	for i := 0; i < 40; i++ {
		fillAndFlush(b, g)
	}
	if b.Width() != 4 || b.MaxWidth() != 4 {
		t.Errorf("fixed width moved: width=%d max=%d", b.Width(), b.MaxWidth())
	}
	if s := b.Stats(); s.WidthGrows != 0 || s.WidthShrinks != 0 {
		t.Errorf("fixed batcher recorded width moves: %+v", s)
	}
	rt.Validate()
}

// TestBatcherReplyAssemblyElides: under runtime capture analysis, the
// stores assembling replies in the merged batch's stack block are
// elided — the mechanism the merging optimization leans on.
func TestBatcherReplyAssemblyElides(t *testing.T) {
	rt := tm.Open(append(tm.RuntimeAll(tm.LogTree).Options(), smallMem())...)
	b := tm.NewBatcher(rt.Thread(0), 4, 1)
	g := rt.AllocGlobal(4)
	for i := 0; i < 4; i++ {
		b.Admit(incItem(g, i, 1))
	}
	if res := b.Flush(); !res.Merged {
		t.Fatal("batch did not merge")
	}
	s := rt.Stats()
	if s.WriteElStack != 4 {
		t.Errorf("stack write elisions = %d, want 4 (one reply store per item)", s.WriteElStack)
	}
	if s.ReadElStack != 4 {
		t.Errorf("stack read elisions = %d, want 4 (the reply copy-out)", s.ReadElStack)
	}
	rt.Validate()
}
