// Command benchdiff compares two benchmark reports (schema
// repro/bench-report/v1, as written by `stampbench -format json` and
// tm/bench.WriteJSON) and fails when the current report shows a
// throughput regression against the baseline: a matched (workload,
// profile, threads, engine) row whose best time rose by more than the
// threshold. CI runs it against the previous successful run's
// artifact, making the perf trajectory a gate instead of an archive.
//
// Usage:
//
//	benchdiff [-threshold 25] [-floor 5ms] [-skip-bad-baseline] [-require-matched [-allow-vanished W,...]] baseline.json current.json
//
// Rows are matched on (bench, config, threads, engine, metric). A
// throughput row contributes its best time as the "min" metric; a row
// carrying an open-loop latency block (tmsrv sweeps) additionally
// contributes its p95 and p99 service times, gated by the same
// threshold and floor — all three are durations where smaller is
// better. Rows present in only one report are listed. By default baseline-only rows never
// fail the run — but that default lets a workload silently dropped
// from the sweep (a registration typo, a skipped bench) pass the CI
// gate forever, so gates should pass -require-matched: then any
// baseline-only row fails the run unless its workload is named in the
// -allow-vanished allowlist (deliberate removals). Rows whose current
// best time is below -floor are compared but cannot fire: at that
// scale scheduler noise swamps real regressions. With
// -skip-bad-baseline an unreadable or schema-mismatched *baseline* is
// treated like an absent one (exit 0), so a schema bump cannot wedge
// CI against a stale artifact; problems with the *current* report
// always fail. Exit status: 0 clean, 1 regression or (under
// -require-matched) vanished rows, 2 usage or input error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/tm/bench"
)

func main() {
	threshold := flag.Float64("threshold", 25, "flag matched rows whose best time rose more than this percent")
	floor := flag.Duration("floor", 5*time.Millisecond, "never flag rows whose current best time is below this")
	skipBadBaseline := flag.Bool("skip-bad-baseline", false,
		"treat an unreadable or schema-mismatched baseline as absent (exit 0) instead of an error")
	requireMatched := flag.Bool("require-matched", false,
		"fail when a baseline row has no current counterpart (catches silently dropped workloads)")
	allowVanished := flag.String("allow-vanished", "",
		"comma-separated workload names whose baseline-only rows are deliberate removals (with -require-matched)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] [-floor DUR] [-skip-bad-baseline] [-require-matched [-allow-vanished W,...]] baseline.json current.json")
		os.Exit(2)
	}
	g := gate{thresholdPct: *threshold, floor: *floor, skipBadBaseline: *skipBadBaseline,
		requireMatched: *requireMatched, allowVanished: splitNames(*allowVanished)}
	os.Exit(g.run(flag.Arg(0), flag.Arg(1), os.Stdout, os.Stderr))
}

// splitNames parses a comma-separated allowlist into a set.
func splitNames(s string) map[string]bool {
	set := map[string]bool{}
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			set[n] = true
		}
	}
	return set
}

// worstShown caps the regressions listed in the failure summary: the
// worst offenders ranked first tell a reviewer where to look without
// scrolling, and the tail is summarized as a count.
const worstShown = 5

// gate bundles the comparison policy of one benchdiff invocation.
type gate struct {
	thresholdPct    float64
	floor           time.Duration
	skipBadBaseline bool
	requireMatched  bool
	allowVanished   map[string]bool
}

// run executes the whole gate and returns the process exit code. Each
// report is read exactly once; only the baseline's errors are
// forgivable, and only under -skip-bad-baseline.
func (g gate) run(basePath, curPath string, out, errw io.Writer) int {
	base, err := readReport(basePath)
	if err != nil {
		if g.skipBadBaseline {
			fmt.Fprintf(out, "skipping regression gate: baseline unusable: %v\n", err)
			return 0
		}
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}
	cur, err := readReport(curPath)
	if err != nil {
		fmt.Fprintln(errw, "benchdiff:", err)
		return 2
	}
	if g.diffReports(base, cur, out) {
		return 1
	}
	return 0
}

// readReport loads one report and rejects unknown schemas: silently
// diffing a report whose fields changed meaning would gate on noise.
func readReport(path string) (bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.Report{}, err
	}
	defer f.Close()
	rep, err := bench.ReadJSON(f)
	if err != nil {
		return bench.Report{}, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != bench.ReportSchema {
		return bench.Report{}, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, bench.ReportSchema)
	}
	return rep, nil
}

// runDiff is the path-based form the tests drive: load both reports,
// then compare.
func (g gate) runDiff(basePath, curPath string, w io.Writer) (bool, error) {
	base, err := readReport(basePath)
	if err != nil {
		return false, err
	}
	cur, err := readReport(curPath)
	if err != nil {
		return false, err
	}
	return g.diffReports(base, cur, w), nil
}

// diffReports prints the comparison to w and reports whether the gate
// fails: a regressed row, or (under -require-matched) a baseline row
// that vanished from the current report without being allowlisted.
func (g gate) diffReports(base, cur bench.Report, w io.Writer) bool {
	thresholdPct, floor := g.thresholdPct, g.floor
	if base.Machine != cur.Machine {
		fmt.Fprintf(w, "note: reports come from different machines (%+v vs %+v); deltas may reflect the machine, not the code\n",
			base.Machine, cur.Machine)
	}

	c := Compare(base, cur, thresholdPct, floor)
	if len(c.Deltas) == 0 {
		fmt.Fprintln(w, "no comparable timed rows between the two reports")
	} else {
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "benchmark\tconfig\tengine\tthreads\tmetric\tbaseline\tcurrent\tdelta")
		for _, d := range c.Deltas {
			mark := ""
			if d.Regressed {
				mark = "  REGRESSED"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%v\t%v\t%+.1f%%%s\n",
				d.Bench, d.Config, d.Engine, d.Threads, d.Metric,
				time.Duration(d.BaseNs).Round(time.Microsecond),
				time.Duration(d.CurNs).Round(time.Microsecond),
				d.Pct, mark)
		}
		tw.Flush()
	}
	var vanished []Key
	for _, k := range c.OnlyBase {
		switch {
		case !g.requireMatched:
			fmt.Fprintf(w, "only in baseline: %s\n", k)
		case g.allowVanished[k.Bench]:
			fmt.Fprintf(w, "only in baseline (allowed removal): %s\n", k)
		default:
			fmt.Fprintf(w, "only in baseline: %s  VANISHED\n", k)
			vanished = append(vanished, k)
		}
	}
	for _, k := range c.OnlyCur {
		fmt.Fprintf(w, "only in current: %s\n", k)
	}

	failed := false
	if len(vanished) > 0 {
		fmt.Fprintf(w, "FAIL: %d baseline rows have no current counterpart (first: %s); a dropped workload would otherwise pass this gate forever — re-register it or list it in -allow-vanished\n",
			len(vanished), vanished[0])
		failed = true
	}
	regs := c.Regressions()
	if len(regs) > 0 {
		fmt.Fprintf(w, "FAIL: %d of %d rows regressed beyond +%.0f%% (floor %v); worst first:\n",
			len(regs), len(c.Deltas), thresholdPct, floor)
		for i, d := range regs {
			if i == worstShown {
				fmt.Fprintf(w, "  ... and %d more\n", len(regs)-worstShown)
				break
			}
			fmt.Fprintf(w, "  %s %+.1f%% (%v -> %v)\n", d.Key, d.Pct,
				time.Duration(d.BaseNs).Round(time.Microsecond),
				time.Duration(d.CurNs).Round(time.Microsecond))
		}
		failed = true
	}
	if !failed {
		fmt.Fprintf(w, "OK: %d rows compared, none beyond +%.0f%% (floor %v)\n",
			len(c.Deltas), thresholdPct, floor)
	}
	return failed
}
