package capture

import "repro/internal/mem"

// Filter is the hash-table allocation log of Section 3.1.2: when a
// block is allocated, every word address in the block is hashed and
// the slot is marked with the exact address; a containment probe is a
// hash plus a compare. Collisions overwrite older marks, producing
// false negatives but never false positives. Deallocation clears only
// slots that still hold the block's own addresses.
//
// As the paper notes, probes are fast but insertion/removal cost is
// proportional to the block size, which is what makes the filter
// slightly slower than the tree and array on allocation-heavy
// workloads (Fig. 11b).
type Filter struct {
	slots []mem.Addr // slot holds the marked address + 1, or 0 if empty
	mask  uint64
	dirty []uint32 // slot indices to clear on Clear()
	n     int
}

// NewFilter creates a filter with 1<<bits slots.
func NewFilter(bits int) *Filter {
	if bits <= 0 || bits > 30 {
		panic("capture: Filter bits out of range")
	}
	return &Filter{
		slots: make([]mem.Addr, 1<<bits),
		mask:  uint64(1<<bits - 1),
		dirty: make([]uint32, 0, 64),
	}
}

func (f *Filter) slot(a mem.Addr) uint32 {
	// Fibonacci hashing spreads consecutive addresses across slots.
	return uint32((uint64(a) * 0x9E3779B97F4A7C15 >> 33) & f.mask)
}

// Len reports the number of currently marked words.
func (f *Filter) Len() int { return f.n }

// Insert marks every word of [start, end).
func (f *Filter) Insert(start, end mem.Addr) {
	if start >= end {
		panic("capture: Filter.Insert: empty range")
	}
	for a := start; a < end; a++ {
		s := f.slot(a)
		if f.slots[s] == 0 {
			f.n++
			f.dirty = append(f.dirty, s)
		} else if f.slots[s] == a+1 {
			continue // already marked by an earlier allocation
		}
		f.slots[s] = a + 1
	}
}

// Remove clears the marks of [start, end) that still belong to it.
func (f *Filter) Remove(start, end mem.Addr) {
	for a := start; a < end; a++ {
		s := f.slot(a)
		if f.slots[s] == a+1 {
			f.slots[s] = 0
			f.n--
		}
	}
}

// Contains reports whether every word of [addr, addr+size) is marked.
// The filter is word-granular, so unlike the tree and array it also
// answers true for an access spanning *adjacent* recorded ranges —
// every such word is still captured memory, so elision stays safe.
func (f *Filter) Contains(addr mem.Addr, size int) bool {
	for i := 0; i < size; i++ {
		a := addr + mem.Addr(i)
		if f.slots[f.slot(a)] != a+1 {
			return false
		}
	}
	return true
}

// Clear unmarks everything touched since the last Clear.
func (f *Filter) Clear() {
	for _, s := range f.dirty {
		f.slots[s] = 0
	}
	f.dirty = f.dirty[:0]
	f.n = 0
}
