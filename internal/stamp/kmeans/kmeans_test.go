package kmeans

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/mem"
	"repro/internal/stm"
)

func small() Config {
	return Config{Name: "kmeans-test", Points: 256, Dims: 4, Clusters: 4, Iters: 3, Seed: 11}
}

func runOne(t *testing.T, cfg Config, opt stm.OptConfig, threads int) (*B, *stm.Runtime) {
	t.Helper()
	b := NewWith(cfg)
	rt := stm.New(b.MemConfig(), opt)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("validate: %v", err)
	}
	rt.Validate()
	return b, rt
}

func TestSerial(t *testing.T) {
	_, rt := runOne(t, small(), stm.Baseline(), 1)
	s := rt.Stats()
	if s.Commits != 256*3 {
		t.Errorf("commits = %d, want one per point per iteration (%d)", s.Commits, 256*3)
	}
}

// TestParallelMatchesSerialCenters: the per-iteration accumulation is
// commutative (floating-point association differences aside the values
// are sums of the same multiset), so centers must match closely.
func TestParallelCentersClose(t *testing.T) {
	bs, rts := runOne(t, small(), stm.Baseline(), 1)
	bp, rtp := runOne(t, small(), stm.RuntimeAll(capture.KindTree), 6)
	ss, sp := rts.Space(), rtp.Space()
	for c := 0; c < bs.cfg.Clusters; c++ {
		for d := 0; d < bs.cfg.Dims; d++ {
			a := ss.LoadFloat(bs.centers + mem.Addr(c*bs.cfg.Dims+d))
			b := sp.LoadFloat(bp.centers + mem.Addr(c*bp.cfg.Dims+d))
			diff := a - b
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-6 {
				t.Fatalf("center (%d,%d): serial %v vs parallel %v", c, d, a, b)
			}
		}
	}
}

// TestNoCaptureOpportunities: kmeans is the paper's no-elision
// benchmark — runtime capture analysis must find nothing.
func TestNoCaptureOpportunities(t *testing.T) {
	_, rt := runOne(t, small(), stm.RuntimeAll(capture.KindTree), 1)
	s := rt.Stats()
	if e := s.ReadElided() + s.WriteElided(); e != 0 {
		t.Errorf("%d barriers elided; kmeans has no captured memory", e)
	}
}

func TestHighVsLowContentionPresets(t *testing.T) {
	if HighContention().Clusters >= LowContention().Clusters {
		t.Error("high contention must use fewer clusters")
	}
}
