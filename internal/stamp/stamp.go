// Package stamp defines the benchmark interface shared by the Go
// ports of the STAMP 0.9.9 applications the paper evaluates, plus the
// registry the harness, CLI tools, and benches enumerate.
//
// Each port preserves its original's *transactional structure* — which
// data structures are shared, what each transaction reads and writes,
// where memory is allocated inside transactions, and which accesses
// the original hand-instrumented (TM_* vs P_* variants) — because
// those properties determine the paper's barrier-mix and performance
// results. Input sizes are scaled to laptop scale; all generators are
// deterministic. Substitutions are documented per benchmark and in
// DESIGN.md.
package stamp

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/stm"
)

// Benchmark is one STAMP application configuration.
type Benchmark interface {
	// Name is the STAMP-style name (e.g. "vacation-high").
	Name() string
	// MemConfig sizes the simulated address space for this workload.
	MemConfig() mem.Config
	// Setup populates initial data single-threadedly on rt's thread 0.
	Setup(rt *stm.Runtime)
	// Run executes the timed parallel phase on nthreads workers.
	Run(rt *stm.Runtime, nthreads int)
	// Validate checks post-run invariants (run after Run returns).
	Validate(rt *stm.Runtime) error
}

// Factory creates a fresh benchmark instance (instances are single
// use: Setup/Run/Validate once each).
type Factory func() Benchmark

var registry []struct {
	name string
	f    Factory
}

// Register adds a benchmark factory to the global registry. It is
// called from the benchmark packages' init functions.
func Register(name string, f Factory) {
	for _, e := range registry {
		if e.name == name {
			panic("stamp: duplicate benchmark " + name)
		}
	}
	registry = append(registry, struct {
		name string
		f    Factory
	}{name, f})
}

// Names returns the registered benchmark names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// New instantiates a registered benchmark.
func New(name string) (Benchmark, error) {
	for _, e := range registry {
		if e.name == name {
			return e.f(), nil
		}
	}
	return nil, fmt.Errorf("stamp: unknown benchmark %q (have %v)", name, Names())
}

// RunParallel executes worker on nthreads goroutines, each bound to
// its own stm.Thread, and waits for all of them.
func RunParallel(rt *stm.Runtime, nthreads int, worker func(th *stm.Thread, tid int, ntotal int)) {
	var wg sync.WaitGroup
	for i := 0; i < nthreads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			worker(rt.Thread(tid), tid, nthreads)
		}(i)
	}
	wg.Wait()
}
