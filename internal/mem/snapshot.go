package mem

import "sync/atomic"

// Snapshot and restore support for the durability tier. A checkpoint
// needs a word-for-word copy of the space plus the two allocation bump
// pointers (globals and central heap); recovery writes them back into a
// freshly sized space. Both directions use atomic word accesses, so a
// fuzzy snapshot taken while transactions run is well defined — every
// word read is some committed-or-in-flight value, and redo-tail replay
// from the checkpoint's log cut repairs any in-flight ones.

// Snapshot copies every word of the space into dst (grown as needed)
// and returns it.
func (s *Space) Snapshot(dst []uint64) []uint64 {
	if cap(dst) < len(s.words) {
		dst = make([]uint64, len(s.words))
	}
	dst = dst[:len(s.words)]
	for i := range s.words {
		dst[i] = atomic.LoadUint64(&s.words[i])
	}
	return dst
}

// SetWords overwrites the space with the recovered image, which must
// have exactly the space's word count.
func (s *Space) SetWords(words []uint64) {
	if len(words) != len(s.words) {
		panic("mem: SetWords image size mismatch")
	}
	for i, w := range words {
		atomic.StoreUint64(&s.words[i], w)
	}
}

// GlobalsNext reports the globals-region bump pointer.
func (s *Space) GlobalsNext() uint64 { return s.globalsNext.Load() }

// SetGlobalsNext restores the globals-region bump pointer. Only valid
// during recovery, before any allocation.
func (s *Space) SetGlobalsNext(v uint64) { s.globalsNext.Store(v) }

// HeapNext reports the central heap bump pointer (lock-free; the
// durability tier reads it on every redo record).
func (s *Space) HeapNext() uint64 { return s.central.hi.Load() }

// SetHeapNext restores the central heap bump pointer. Only valid during
// recovery, before any allocation. Per-thread free lists and bump spans
// from the previous incarnation are not reconstructed: the words they
// covered were already carved out of central, so the recovered runtime
// simply never reuses them. Recovery trades that bounded leak for not
// having to serialize allocator caches.
func (s *Space) SetHeapNext(v uint64) {
	s.central.mu.Lock()
	defer s.central.mu.Unlock()
	s.central.next = Addr(v)
	s.central.hi.Store(v)
}
