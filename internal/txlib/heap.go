package txlib

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Heap is a growable binary max-heap of (priority, data) pairs
// (STAMP's heap.c, as used by yada's bad-triangle work queue).
//
// Layout:
//
//	header: [0] size  [1] cap  [2] data ptr
//	slot i: data[2i] = priority, data[2i+1] = payload
const (
	hpSize = 0
	hpCap  = 1
	hpData = 2
	hpHdr  = 3
)

// NewHeap allocates a heap with room for capacity elements.
func NewHeap(tx *stm.Tx, capacity int) mem.Addr {
	if capacity < 2 {
		capacity = 2
	}
	h := tx.Alloc(hpHdr)
	d := tx.Alloc(2 * capacity)
	tx.Store(h+hpSize, 0, stm.AccFresh)
	tx.Store(h+hpCap, uint64(capacity), stm.AccFresh)
	tx.StoreAddr(h+hpData, d, stm.AccFresh)
	return h
}

// HeapSize returns the element count.
func HeapSize(tx *stm.Tx, h mem.Addr, mode stm.Acc) int {
	return int(tx.Load(h+hpSize, mode))
}

// HeapInsert adds (prio, data), sifting up.
func HeapInsert(tx *stm.Tx, h mem.Addr, prio, payload uint64, mode stm.Acc) {
	size := tx.Load(h+hpSize, mode)
	capN := tx.Load(h+hpCap, mode)
	d := tx.LoadAddr(h+hpData, mode)
	if size == capN {
		newCap := capN * 2
		nd := tx.Alloc(int(2 * newCap))
		for i := mem.Addr(0); i < mem.Addr(2*size); i++ {
			tx.Store(nd+i, tx.Load(d+i, mode), stm.AccFresh)
		}
		tx.Free(d)
		tx.StoreAddr(h+hpData, nd, mode)
		tx.Store(h+hpCap, newCap, mode)
		d = nd
	}
	i := size
	tx.Store(d+mem.Addr(2*i), prio, mode)
	tx.Store(d+mem.Addr(2*i+1), payload, mode)
	tx.Store(h+hpSize, size+1, mode)
	for i > 0 {
		parent := (i - 1) / 2
		pp := tx.Load(d+mem.Addr(2*parent), mode)
		if pp >= prio {
			break
		}
		heapSwap(tx, d, i, parent, mode)
		i = parent
	}
}

func heapSwap(tx *stm.Tx, d mem.Addr, i, j uint64, mode stm.Acc) {
	pi := tx.Load(d+mem.Addr(2*i), mode)
	vi := tx.Load(d+mem.Addr(2*i+1), mode)
	pj := tx.Load(d+mem.Addr(2*j), mode)
	vj := tx.Load(d+mem.Addr(2*j+1), mode)
	tx.Store(d+mem.Addr(2*i), pj, mode)
	tx.Store(d+mem.Addr(2*i+1), vj, mode)
	tx.Store(d+mem.Addr(2*j), pi, mode)
	tx.Store(d+mem.Addr(2*j+1), vi, mode)
}

// HeapExtractMax removes and returns the highest-priority element.
func HeapExtractMax(tx *stm.Tx, h mem.Addr, mode stm.Acc) (prio, payload uint64, ok bool) {
	size := tx.Load(h+hpSize, mode)
	if size == 0 {
		return 0, 0, false
	}
	d := tx.LoadAddr(h+hpData, mode)
	prio = tx.Load(d, mode)
	payload = tx.Load(d+1, mode)
	size--
	tx.Store(h+hpSize, size, mode)
	if size == 0 {
		return prio, payload, true
	}
	// Move the last element to the root and sift down.
	tx.Store(d, tx.Load(d+mem.Addr(2*size), mode), mode)
	tx.Store(d+1, tx.Load(d+mem.Addr(2*size+1), mode), mode)
	i := uint64(0)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		lp := tx.Load(d+mem.Addr(2*largest), mode)
		if l < size {
			if p := tx.Load(d+mem.Addr(2*l), mode); p > lp {
				largest, lp = l, p
			}
		}
		if r < size {
			if p := tx.Load(d+mem.Addr(2*r), mode); p > lp {
				largest = r
			}
		}
		if largest == i {
			break
		}
		heapSwap(tx, d, i, largest, mode)
		i = largest
	}
	return prio, payload, true
}

// HeapFree frees the slots and header.
func HeapFree(tx *stm.Tx, h mem.Addr, mode stm.Acc) {
	tx.Free(tx.LoadAddr(h+hpData, mode))
	tx.Free(h)
}
