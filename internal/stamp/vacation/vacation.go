// Package vacation ports STAMP's vacation: an in-memory travel
// reservation system. A manager keeps four ordered maps — cars,
// flights, rooms (id → reservation record) and customers (id →
// customer record). Client threads run three transaction types:
//
//   - make-reservation: query prices of several random ids across the
//     three resource tables, then reserve the best; the customer
//     record, its reservation list and every reservation-info node are
//     *allocated inside the transaction* — the captured-heap writes
//     that dominate the paper's vacation numbers.
//   - delete-customer: cancel all of a customer's reservations and
//     free the records.
//   - update-tables: add/remove resources and change prices.
//
// STAMP's high-contention configuration (-n4 -q60 -u90) queries more
// ids per transaction over a smaller id range than the low-contention
// one (-n2 -q90 -u98); both are registered, scaled down.
package vacation

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txlib"
)

// Reservation record layout (one per resource id).
const (
	resNumUsed  = 0
	resNumFree  = 1
	resNumTotal = 2
	resPrice    = 3
	resSize     = 4
)

// Customer record layout.
const (
	custID   = 0
	custList = 1 // reservation-info list
	custSize = 2
)

// Reservation-info node payload (list data words point at these).
const (
	infoType  = 0
	infoID    = 1
	infoPrice = 2
	infoSize  = 3
)

// Resource table indices.
const (
	tableCar = iota
	tableFlight
	tableRoom
	numTables
)

// Config holds the STAMP command-line equivalents.
type Config struct {
	Name          string
	Relations     int // -r: ids per resource table
	NumTx         int // -t: total client transactions
	QueriesPerTx  int // -n
	QueryRangePct int // -q: percentage of ids queried
	PctUser       int // -u: % of transactions that are reservations
	Seed          uint64
}

// HighContention returns STAMP's vacation-high, scaled down.
func HighContention() Config {
	return Config{Name: "vacation-high", Relations: 16384, NumTx: 16384,
		QueriesPerTx: 4, QueryRangePct: 60, PctUser: 90, Seed: 1}
}

// LowContention returns STAMP's vacation-low, scaled down.
func LowContention() Config {
	return Config{Name: "vacation-low", Relations: 16384, NumTx: 16384,
		QueriesPerTx: 2, QueryRangePct: 90, PctUser: 98, Seed: 2}
}

// B is one vacation run.
type B struct {
	cfg       Config
	tables    [numTables]mem.Addr // maps id → reservation record
	customers mem.Addr            // map id → customer record
	initTotal uint64              // total capacity across tables at setup
}

func init() {
	stamp.Register("vacation-high",
		"STAMP vacation: travel-reservation OLTP, high-contention mix", func() stamp.Benchmark { return &B{cfg: HighContention()} })
	stamp.Register("vacation-low",
		"STAMP vacation: travel-reservation OLTP, low-contention mix", func() stamp.Benchmark { return &B{cfg: LowContention()} })
}

// NewWith creates a vacation instance with a custom configuration.
func NewWith(cfg Config) *B { return &B{cfg: cfg} }

// Name implements stamp.Benchmark.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements stamp.Benchmark.
func (b *B) MemConfig() mem.Config {
	words := b.cfg.Relations*numTables*16 + b.cfg.NumTx*8 + (1 << 19)
	return mem.Config{GlobalWords: 1 << 10, HeapWords: words, StackWords: 1 << 12, MaxThreads: 32}
}

// Setup populates the three resource tables with Relations records
// each, mirroring STAMP's manager initialization.
func (b *B) Setup(rt *stm.Runtime) {
	th := rt.Thread(0)
	r := prng.New(b.cfg.Seed)
	th.Atomic(func(tx *stm.Tx) {
		for t := 0; t < numTables; t++ {
			b.tables[t] = txlib.NewMap(tx)
		}
		b.customers = txlib.NewMap(tx)
	})
	for t := 0; t < numTables; t++ {
		for id := 1; id <= b.cfg.Relations; id++ {
			num := uint64(100 + r.Intn(5)*100)
			price := uint64(50 + r.Intn(5)*10)
			b.initTotal += num
			th.Atomic(func(tx *stm.Tx) {
				res := tx.Alloc(resSize)
				tx.Store(res+resNumUsed, 0, stm.AccFresh)
				tx.Store(res+resNumFree, num, stm.AccFresh)
				tx.Store(res+resNumTotal, num, stm.AccFresh)
				tx.Store(res+resPrice, price, stm.AccFresh)
				txlib.MapInsert(tx, b.tables[t], uint64(id), uint64(res), txlib.TM)
			})
		}
	}
	// STAMP's manager_initialize also pre-populates every customer, so
	// the client phase rarely restructures the customers tree: its
	// conflicts come from reservation counters and captured-memory
	// false sharing, not from tree rebalancing.
	for id := 1; id <= b.cfg.Relations; id++ {
		id := uint64(id)
		th.Atomic(func(tx *stm.Tx) {
			c := tx.Alloc(custSize)
			tx.Store(c+custID, id, stm.AccFresh)
			l := txlib.NewList(tx)
			tx.StoreAddr(c+custList, l, stm.AccFresh)
			txlib.MapInsert(tx, b.customers, id, uint64(c), txlib.TM)
		})
	}
}

// queryRange returns the id range transactions draw from.
func (b *B) queryRange() int {
	qr := b.cfg.Relations * b.cfg.QueryRangePct / 100
	if qr < 1 {
		qr = 1
	}
	return qr
}

// Run implements the client loop (STAMP's client_run).
func (b *B) Run(rt *stm.Runtime, nthreads int) {
	perThread := b.cfg.NumTx / nthreads
	stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
		r := prng.New(b.cfg.Seed ^ uint64(tid)<<32 ^ 0xABCD)
		qr := b.queryRange()
		for i := 0; i < perThread; i++ {
			op := r.Intn(100)
			switch {
			case op < b.cfg.PctUser:
				b.makeReservation(th, r, qr)
			case op < b.cfg.PctUser+(100-b.cfg.PctUser)/2:
				b.deleteCustomer(th, r, qr)
			default:
				b.updateTables(th, r, qr)
			}
		}
	})
}

// makeReservation is STAMP's MAKE_RESERVATION action. Like STAMP's
// client, the query scratch arrays (queryTypes, queryIds, maxPrices,
// maxIds) are locals declared inside the atomic block: they live on
// the transaction-local stack and their accesses are the captured-
// stack barriers of Fig. 8.
func (b *B) makeReservation(th *stm.Thread, r *prng.R, queryRange int) {
	n := b.cfg.QueriesPerTx
	draws := make([]uint64, 2*n)
	for i := 0; i < n; i++ {
		draws[2*i] = uint64(r.Intn(numTables))
		draws[2*i+1] = uint64(1 + r.Intn(queryRange))
	}
	custID64 := uint64(1 + r.Intn(queryRange))
	th.Atomic(func(tx *stm.Tx) {
		// Locals of the atomic block, on the transaction-local stack.
		types := tx.StackAlloc(n)
		ids := tx.StackAlloc(n)
		bestID := tx.StackAlloc(numTables)
		bestPrice := tx.StackAlloc(numTables)
		for i := 0; i < n; i++ {
			tx.Store(types+mem.Addr(i), draws[2*i], stm.AccStack)
			tx.Store(ids+mem.Addr(i), draws[2*i+1], stm.AccStack)
		}
		// Query phase: find, per table, the max-price id with free
		// capacity among this transaction's candidates.
		for i := 0; i < n; i++ {
			t := int(tx.Load(types+mem.Addr(i), stm.AccStack))
			id := tx.Load(ids+mem.Addr(i), stm.AccStack)
			resPtr, ok := txlib.MapGet(tx, b.tables[t], id, txlib.TM)
			if !ok {
				continue
			}
			res := mem.Addr(resPtr)
			if tx.Load(res+resNumFree, stm.AccShared) == 0 {
				continue
			}
			price := tx.Load(res+resPrice, stm.AccShared)
			if price > tx.Load(bestPrice+mem.Addr(t), stm.AccStack) {
				tx.Store(bestPrice+mem.Addr(t), price, stm.AccStack)
				tx.Store(bestID+mem.Addr(t), id, stm.AccStack)
			}
		}
		// Reserve phase.
		for t := 0; t < numTables; t++ {
			id := tx.Load(bestID+mem.Addr(t), stm.AccStack)
			if id == 0 {
				continue
			}
			b.reserve(tx, t, custID64, id, tx.Load(bestPrice+mem.Addr(t), stm.AccStack))
		}
	})
}

// customerGetOrAdd finds the customer record, creating it (and its
// reservation list) inside the transaction if absent — the captured
// allocation pattern of STAMP's manager_addCustomer.
func (b *B) customerGetOrAdd(tx *stm.Tx, id uint64) mem.Addr {
	if p, ok := txlib.MapGet(tx, b.customers, id, txlib.TM); ok {
		return mem.Addr(p)
	}
	c := tx.Alloc(custSize)
	tx.Store(c+custID, id, stm.AccFresh)
	// The list is created inside this transaction; with inlining the
	// compiler proves it transaction-local (mode L).
	l := txlib.NewList(tx)
	tx.StoreAddr(c+custList, l, stm.AccFresh)
	txlib.MapInsert(tx, b.customers, id, uint64(c), txlib.TM)
	return c
}

// reserve books one unit of (table t, resource id) for the customer.
func (b *B) reserve(tx *stm.Tx, t int, custID64, id, price uint64) bool {
	resPtr, ok := txlib.MapGet(tx, b.tables[t], id, txlib.TM)
	if !ok {
		return false
	}
	res := mem.Addr(resPtr)
	free := tx.Load(res+resNumFree, stm.AccShared)
	if free == 0 {
		return false
	}
	tx.Store(res+resNumFree, free-1, stm.AccShared)
	tx.Store(res+resNumUsed, tx.Load(res+resNumUsed, stm.AccShared)+1, stm.AccShared)

	cust := b.customerGetOrAdd(tx, custID64)
	info := tx.Alloc(infoSize)
	tx.Store(info+infoType, uint64(t), stm.AccFresh)
	tx.Store(info+infoID, id, stm.AccFresh)
	tx.Store(info+infoPrice, price, stm.AccFresh)
	list := tx.LoadAddr(cust+custList, stm.AccShared)
	// Reservation keys combine table and id so one customer can hold
	// one reservation per (table, id), like STAMP.
	key := uint64(t)<<32 | id
	if !txlib.ListInsert(tx, list, key, uint64(info), txlib.TM) {
		// Already reserved: undo the capacity change and drop info.
		tx.Free(info)
		tx.Store(res+resNumFree, tx.Load(res+resNumFree, stm.AccShared)+1, stm.AccShared)
		tx.Store(res+resNumUsed, tx.Load(res+resNumUsed, stm.AccShared)-1, stm.AccShared)
		return false
	}
	return true
}

// deleteCustomer is STAMP's DELETE_CUSTOMER action: release all of a
// customer's reservations and free the records.
func (b *B) deleteCustomer(th *stm.Thread, r *prng.R, queryRange int) {
	id := uint64(1 + r.Intn(queryRange))
	th.Atomic(func(tx *stm.Tx) {
		p, ok := txlib.MapGet(tx, b.customers, id, txlib.TM)
		if !ok {
			return
		}
		cust := mem.Addr(p)
		list := tx.LoadAddr(cust+custList, stm.AccShared)
		// Walk the reservation list with a stack iterator (Fig. 1(a)).
		it := txlib.ListIterNew(tx)
		txlib.ListIterReset(tx, it, list, txlib.TM)
		for txlib.ListIterHasNext(tx, it) {
			_, data := txlib.ListIterNext(tx, it, txlib.TM)
			info := mem.Addr(data)
			t := int(tx.Load(info+infoType, stm.AccShared))
			rid := tx.Load(info+infoID, stm.AccShared)
			if resPtr, ok := txlib.MapGet(tx, b.tables[t], rid, txlib.TM); ok {
				res := mem.Addr(resPtr)
				tx.Store(res+resNumFree, tx.Load(res+resNumFree, stm.AccShared)+1, stm.AccShared)
				tx.Store(res+resNumUsed, tx.Load(res+resNumUsed, stm.AccShared)-1, stm.AccShared)
			}
			tx.Free(info)
		}
		txlib.ListFree(tx, list, txlib.TM)
		txlib.MapRemove(tx, b.customers, id, txlib.TM)
		tx.Free(cust)
	})
}

// updateTables is STAMP's UPDATE_TABLES action: grow or shrink random
// resources and adjust prices.
func (b *B) updateTables(th *stm.Thread, r *prng.R, queryRange int) {
	n := b.cfg.QueriesPerTx
	draws := make([]uint64, 2*n)
	grow := make([]bool, n)
	for i := 0; i < n; i++ {
		draws[2*i] = uint64(1 + r.Intn(queryRange))
		grow[i] = r.Intn(2) == 0
		draws[2*i+1] = uint64(50 + r.Intn(5)*10)
	}
	th.Atomic(func(tx *stm.Tx) {
		// Update scratch arrays: atomic-block locals on the stack.
		ids := tx.StackAlloc(n)
		prices := tx.StackAlloc(n)
		for i := 0; i < n; i++ {
			tx.Store(ids+mem.Addr(i), draws[2*i], stm.AccStack)
			tx.Store(prices+mem.Addr(i), draws[2*i+1], stm.AccStack)
		}
		for i := 0; i < n; i++ {
			t := r.Intn(numTables) // table choice inside tx, like STAMP
			resPtr, ok := txlib.MapGet(tx, b.tables[t], tx.Load(ids+mem.Addr(i), stm.AccStack), txlib.TM)
			if !ok {
				continue
			}
			res := mem.Addr(resPtr)
			if grow[i] {
				tx.Store(res+resNumFree, tx.Load(res+resNumFree, stm.AccShared)+10, stm.AccShared)
				tx.Store(res+resNumTotal, tx.Load(res+resNumTotal, stm.AccShared)+10, stm.AccShared)
				tx.Store(res+resPrice, tx.Load(prices+mem.Addr(i), stm.AccStack), stm.AccShared)
			} else {
				free := tx.Load(res+resNumFree, stm.AccShared)
				if free >= 10 {
					tx.Store(res+resNumFree, free-10, stm.AccShared)
					tx.Store(res+resNumTotal, tx.Load(res+resNumTotal, stm.AccShared)-10, stm.AccShared)
				}
			}
		}
	})
}

// Validate checks the manager invariants, STAMP's manager consistency
// check: for every resource, used+free == total, and every customer
// reservation is backed by a used unit.
func (b *B) Validate(rt *stm.Runtime) error {
	th := rt.Thread(0)
	var err error
	th.Atomic(func(tx *stm.Tx) {
		used := make(map[[2]uint64]uint64) // (table,id) → used count
		for t := 0; t < numTables; t++ {
			t := t
			txlib.MapForEach(tx, b.tables[t], txlib.TM, func(id, resPtr uint64) bool {
				res := mem.Addr(resPtr)
				u := tx.Load(res+resNumUsed, stm.AccShared)
				f := tx.Load(res+resNumFree, stm.AccShared)
				tot := tx.Load(res+resNumTotal, stm.AccShared)
				if u+f != tot {
					err = fmt.Errorf("table %d id %d: used %d + free %d != total %d", t, id, u, f, tot)
					return false
				}
				used[[2]uint64{uint64(t), id}] = u
				return true
			})
			if err != nil {
				return
			}
		}
		// Every reservation held by a customer maps to a used unit.
		held := make(map[[2]uint64]uint64)
		// One iterator word for the whole walk: transaction-local stack
		// frames are reclaimed at transaction end, not per iteration.
		it := txlib.ListIterNew(tx)
		txlib.MapForEach(tx, b.customers, txlib.TM, func(id, custPtr uint64) bool {
			cust := mem.Addr(custPtr)
			list := tx.LoadAddr(cust+custList, stm.AccShared)
			txlib.ListIterReset(tx, it, list, txlib.TM)
			for txlib.ListIterHasNext(tx, it) {
				_, data := txlib.ListIterNext(tx, it, txlib.TM)
				info := mem.Addr(data)
				t := tx.Load(info+infoType, stm.AccShared)
				rid := tx.Load(info+infoID, stm.AccShared)
				held[[2]uint64{t, rid}]++
			}
			return true
		})
		for k, h := range held {
			if used[k] < h {
				err = fmt.Errorf("resource table %d id %d: %d holds > %d used", k[0], k[1], h, used[k])
				return
			}
		}
	})
	return err
}

// mapGetForTest exposes a resource lookup to the package tests.
func mapGetForTest(tx *stm.Tx, b *B, table int, id uint64) (mem.Addr, bool) {
	p, ok := txlib.MapGet(tx, b.tables[table], id, txlib.TM)
	return mem.Addr(p), ok
}
