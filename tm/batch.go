package tm

// Application-side transaction merging: a Batcher coalesces several
// small units of work (server requests, typically) into ONE merged
// transaction when their declared footprints are compatible, amortizing
// begin/commit bookkeeping and ownership-record traffic across the
// batch — and, in this runtime, turning every request's reply assembly
// into captured-memory stores the elision machinery removes. This is
// the optimization of "Improving Database Performance by
// Application-side Transaction Merging" (see PAPERS.md) applied on top
// of the paper's captured-memory analysis.
//
// Correctness does not depend on the footprint declarations: a merged
// batch executes its items sequentially inside one transaction, in
// admission order, so the final state and the per-item replies are
// identical to running the items in their own transactions in the same
// order. Footprints are a *policy* input — merging two writers of the
// same key would couple their conflict windows and reorder them
// relative to concurrent batches more aggressively, so the admission
// test keeps such items apart.
//
// Per-item atomicity is preserved through fallback: if any item of a
// merged batch asks to abort, the whole merged transaction rolls back
// (none of the batch's effects are published) and every item re-runs
// in its own transaction, where only the aborting item aborts. No
// request is lost and the outcome again equals unmerged execution.

// Footprint declares the application-level compatibility keys of one
// batch item: opaque words (key hashes, topic ids, …) the item reads
// and writes. Two items conflict when one writes a key the other
// touches. How coarse the keys are is the application's choice —
// coarser keys merge less and never affect correctness.
type Footprint struct {
	Reads  []uint64
	Writes []uint64
}

// BatchItem is one unit of work submitted to a Batcher.
type BatchItem struct {
	// Phase is the capture regime the item's transaction belongs to
	// (PhasePublish, PhaseCursor, or "" for the default). Items merge
	// only with items of the same kind, and the batch executes on that
	// phase's compiled barrier engine.
	Phase Phase
	// Footprint is the item's compatibility declaration.
	Footprint Footprint
	// Exclusive marks an item that never merges with anything (e.g. a
	// whole-store scan whose footprint is unbounded).
	Exclusive bool
	// Apply executes the item inside tx. reply is a zeroed
	// transaction-local scratch block of the Batcher's replyWords —
	// captured memory, so assembling the result there is elidable by
	// exactly the mechanisms the paper describes. Returning false
	// aborts the item: in a merged batch the whole transaction rolls
	// back and every item re-runs alone; in solo execution only this
	// item's transaction aborts. Apply must be retry-safe (no
	// Go-side effects that survive an abort).
	Apply func(tx *Tx, reply Struct) bool
}

// BatchReply is the outcome of one item of an executed batch.
type BatchReply struct {
	// Aborted reports that the item's Apply returned false in its own
	// (solo or fallback) transaction.
	Aborted bool
	// Words is the item's reply block, copied out at commit. Aborted
	// items read all zero.
	Words []uint64
}

// BatchStats counts what a Batcher did across its lifetime.
type BatchStats struct {
	Requests  uint64 // items executed
	Batches   uint64 // Flush calls that executed at least one item
	Merged    uint64 // batches that committed as one merged transaction
	Fallbacks uint64 // merged attempts that aborted and re-ran per item
	Txns      uint64 // top-level transactions executed (committed or user-aborted)

	// Adaptive-width trajectory (zero for fixed-width batchers).
	WidthGrows   uint64 // epoch decisions that grew the merge width
	WidthShrinks uint64 // decisions (epoch or burst) that shrank it
}

// MergeRatio returns requests per transaction — 1.0 means merging
// never paid off, width W means every batch committed merged and full.
func (s BatchStats) MergeRatio() float64 {
	if s.Txns == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Txns)
}

// Batcher queues compatible items and executes them as one merged
// transaction. It is bound to one Thread and, like the Thread, must be
// used by one goroutine at a time.
type Batcher struct {
	th         *Thread
	width      int // current admission width (== maxWidth when fixed)
	maxWidth   int
	replyWords int

	items  []BatchItem
	reads  map[uint64]struct{}
	writes map[uint64]struct{}

	// Adaptive-width state (adaptive batchers only): the policy, the
	// current decision window's batch outcomes, and the running count of
	// consecutive fallback batches for burst detection.
	adaptive    bool
	policy      WidthPolicy
	winBatches  int
	winMerged   int
	winFallback int
	fallRun     int

	stats BatchStats
}

// NewBatcher creates a batcher over th that merges up to width items
// per transaction, giving each item a replyWords-word captured reply
// block. width < 1 and replyWords < 1 are clamped to 1.
func NewBatcher(th *Thread, width, replyWords int) *Batcher {
	if width < 1 {
		width = 1
	}
	if replyWords < 1 {
		replyWords = 1
	}
	return &Batcher{
		th: th, width: width, maxWidth: width, replyWords: replyWords,
		reads:  make(map[uint64]struct{}),
		writes: make(map[uint64]struct{}),
	}
}

// WidthPolicy tunes adaptive merge-width selection
// (NewAdaptiveBatcher). Zero knobs select the Default* constants.
type WidthPolicy struct {
	// Epoch is the decision window: executed batches per width decision.
	Epoch int
	// GrowPct is the merged share (merged batches / batches in the
	// window) at or above which the width doubles, up to the maximum.
	GrowPct float64
	// ShrinkPct is the fallback share at or above which the width
	// halves, down to 1.
	ShrinkPct float64
	// Burst shrinks immediately — without waiting for the window — after
	// this many consecutive fallback batches.
	Burst int
}

// Defaults for WidthPolicy's knobs (0 selects them).
const (
	DefaultWidthEpoch     = 16
	DefaultWidthGrowPct   = 0.5
	DefaultWidthShrinkPct = 0.25
	DefaultWidthBurst     = 4
)

func (p WidthPolicy) normalize() WidthPolicy {
	if p.Epoch <= 0 {
		p.Epoch = DefaultWidthEpoch
	}
	if p.GrowPct <= 0 {
		p.GrowPct = DefaultWidthGrowPct
	}
	if p.ShrinkPct <= 0 {
		p.ShrinkPct = DefaultWidthShrinkPct
	}
	if p.Burst <= 0 {
		p.Burst = DefaultWidthBurst
	}
	return p
}

// NewAdaptiveBatcher creates a batcher whose merge width starts at 1
// and adapts between 1 and maxWidth: every policy window it doubles the
// width while merging keeps succeeding (merged share ≥ GrowPct, and a
// width-1 window always grows — solo batches carry no merge signal) and
// halves it when fallbacks are eating the merge win (fallback share ≥
// ShrinkPct, or Burst consecutive fallback batches, which shrink
// immediately). Width moves only at Flush boundaries, so a queued batch
// is never truncated retroactively.
func NewAdaptiveBatcher(th *Thread, maxWidth, replyWords int, p WidthPolicy) *Batcher {
	b := NewBatcher(th, maxWidth, replyWords)
	b.width = 1
	b.adaptive = true
	b.policy = p.normalize()
	return b
}

// Width returns the current admission width: the fixed width for
// NewBatcher, the live selection for NewAdaptiveBatcher. Callers using
// it as a flush threshold adapt automatically.
func (b *Batcher) Width() int { return b.width }

// MaxWidth returns the configured width ceiling (equal to Width for
// fixed-width batchers).
func (b *Batcher) MaxWidth() int { return b.maxWidth }

// Len returns the number of queued items.
func (b *Batcher) Len() int { return len(b.items) }

// Stats returns the lifetime counters.
func (b *Batcher) Stats() BatchStats { return b.stats }

// Admit queues the item if it is compatible with the queued batch:
// the batch is not full, the item's phase kind matches, neither side
// is exclusive (unless the batch is empty), and the item's footprint
// keys do not conflict with the queued footprints. It returns false
// when the item cannot join — the caller should Flush and re-Admit
// (admission into an empty batch always succeeds).
func (b *Batcher) Admit(it BatchItem) bool {
	if len(b.items) >= b.width {
		return false
	}
	if len(b.items) > 0 {
		if it.Exclusive || b.items[0].Exclusive {
			return false
		}
		if it.Phase != b.items[0].Phase {
			return false
		}
		for _, k := range it.Footprint.Writes {
			if _, ok := b.reads[k]; ok {
				return false
			}
			if _, ok := b.writes[k]; ok {
				return false
			}
		}
		for _, k := range it.Footprint.Reads {
			if _, ok := b.writes[k]; ok {
				return false
			}
		}
	}
	b.items = append(b.items, it)
	for _, k := range it.Footprint.Reads {
		b.reads[k] = struct{}{}
	}
	for _, k := range it.Footprint.Writes {
		b.writes[k] = struct{}{}
	}
	return true
}

// Flush executes the queued items and empties the batch. Two or more
// items run as one merged transaction whose replies are assembled in a
// single captured stack block; if any item aborts, the merged
// transaction rolls back and every item re-runs in its own transaction
// (per-request fallback). A single queued item runs solo. Flush on an
// empty batch is a no-op returning an empty result.
func (b *Batcher) Flush() BatchResult {
	n := len(b.items)
	res := BatchResult{Replies: make([]BatchReply, n)}
	if n == 0 {
		return res
	}
	b.stats.Requests += uint64(n)
	b.stats.Batches++
	// The whole batch shares one phase kind (Admit enforced it), so
	// the merged transaction — and each fallback transaction — runs on
	// that regime's compiled engine. The hint is free when the runtime
	// declares no phases.
	b.th.EnterPhase(b.items[0].Phase)

	if n > 1 && b.runMerged(&res) {
		res.Merged = true
		b.stats.Merged++
		b.stats.Txns++
	} else {
		if n > 1 {
			// The aborted merged attempt was a top-level transaction too
			// (it user-aborted); Txns must count it or MergeRatio
			// overstates what merging achieved on fallback-heavy runs.
			b.stats.Fallbacks++
			b.stats.Txns++
		}
		for i := range b.items {
			res.Replies[i] = b.runSolo(&b.items[i])
			b.stats.Txns++
		}
	}
	if b.adaptive {
		b.adaptWidth(n, res.Merged)
	}

	b.items = b.items[:0]
	clear(b.reads)
	clear(b.writes)
	return res
}

// adaptWidth records one executed batch's outcome and moves the
// admission width at window boundaries (or immediately on a fallback
// burst). Single-item batches are counted in the window but carry no
// merge/fallback signal.
func (b *Batcher) adaptWidth(n int, merged bool) {
	b.winBatches++
	fallback := false
	switch {
	case merged:
		b.winMerged++
		b.fallRun = 0
	case n > 1:
		b.winFallback++
		b.fallRun++
		fallback = true
	}
	if fallback && b.fallRun >= b.policy.Burst {
		b.shrink()
		return
	}
	if b.winBatches < b.policy.Epoch {
		return
	}
	mergedShare := float64(b.winMerged) / float64(b.winBatches)
	fallShare := float64(b.winFallback) / float64(b.winBatches)
	switch {
	case fallShare >= b.policy.ShrinkPct:
		b.shrink()
	case b.width < b.maxWidth && (b.width == 1 || mergedShare >= b.policy.GrowPct):
		b.width *= 2
		if b.width > b.maxWidth {
			b.width = b.maxWidth
		}
		b.stats.WidthGrows++
		b.resetWindow()
	default:
		b.resetWindow()
	}
}

// shrink halves the width (floor 1) and opens a fresh window.
func (b *Batcher) shrink() {
	if b.width > 1 {
		b.width /= 2
		b.stats.WidthShrinks++
	}
	b.resetWindow()
}

func (b *Batcher) resetWindow() {
	b.winBatches, b.winMerged, b.winFallback, b.fallRun = 0, 0, 0, 0
}

// BatchResult is the outcome of one Flush.
type BatchResult struct {
	// Merged reports that the items committed as one transaction.
	Merged bool
	// Replies holds one reply per item, in admission order.
	Replies []BatchReply
}

// runMerged attempts the batch as one transaction. It returns false
// when an item asked to abort (the transaction rolled back; nothing
// was published).
func (b *Batcher) runMerged(res *BatchResult) bool {
	n := len(b.items)
	return b.th.Atomic(func(tx *Tx) {
		// One captured block carries every item's reply: the stores
		// that assemble results and the loads that copy them out are
		// all transaction-local, so the capture machinery elides them.
		buf := tx.StackAlloc(n * b.replyWords)
		for i := range b.items {
			if !b.items[i].Apply(tx, buf.Slice(i*b.replyWords, b.replyWords)) {
				tx.Abort() // unwinds; Atomic returns false
			}
		}
		for i := range b.items {
			words := make([]uint64, b.replyWords)
			for j := range words {
				words[j] = buf.Word(i*b.replyWords + j).Load(tx)
			}
			res.Replies[i] = BatchReply{Words: words}
		}
	})
}

// runSolo executes one item in its own transaction — the unmerged
// path, also used as the per-request fallback after a merged abort.
func (b *Batcher) runSolo(it *BatchItem) BatchReply {
	var words []uint64
	committed := b.th.Atomic(func(tx *Tx) {
		reply := tx.StackAlloc(b.replyWords)
		if !it.Apply(tx, reply) {
			tx.Abort()
		}
		words = make([]uint64, b.replyWords)
		for j := range words {
			words[j] = reply.Word(j).Load(tx)
		}
	})
	if !committed {
		return BatchReply{Aborted: true, Words: make([]uint64, b.replyWords)}
	}
	return BatchReply{Words: words}
}
