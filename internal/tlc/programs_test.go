package tlc

// File-driven tests: every program in testdata/ must compile, run to
// its expected result under every optimization configuration, and pass
// the elision-soundness oracle.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/capture"
	"repro/internal/stm"
)

var programResults = map[string]uint64{
	"bank.tl":     1600, // money conserved
	"sieve.tl":    46,   // primes below 200
	"worklist.tl": 1275, // sum 1..50
}

func loadProgram(t *testing.T, name string) string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func TestPrograms(t *testing.T) {
	cfgs := []stm.OptConfig{
		stm.Baseline(),
		stm.RuntimeAll(capture.KindTree),
		stm.RuntimeAll(capture.KindArray),
		stm.RuntimeAll(capture.KindFilter),
		stm.Compiler(),
	}
	for name, want := range programResults {
		src := loadProgram(t, name)
		c, err := Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, cfg := range cfgs {
			t.Run(name+"/"+cfg.Name, func(t *testing.T) {
				rt := stm.New(c.DefaultMemConfig(), cfg)
				in := NewInterp(c, rt)
				got, err := in.Call(rt.Thread(0), "main")
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("main() = %d, want %d", got, want)
				}
				rt.Validate()
			})
		}
	}
}

// TestProgramsSoundness runs every program under the dynamic
// elision-verification oracle.
func TestProgramsSoundness(t *testing.T) {
	for name, want := range programResults {
		t.Run(name, func(t *testing.T) {
			c, err := Compile(loadProgram(t, name))
			if err != nil {
				t.Fatal(err)
			}
			cfg := stm.Compiler()
			cfg.Counting = true
			cfg.VerifyElision = true
			rt := stm.New(c.DefaultMemConfig(), cfg)
			in := NewInterp(c, rt)
			got, err := in.Call(rt.Thread(0), "main")
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("main() = %d, want %d", got, want)
			}
		})
	}
}

// TestProgramsElideSomething: the captured-memory patterns in the
// programs must actually produce static elisions.
func TestProgramsElideSomething(t *testing.T) {
	for _, name := range []string{"bank.tl", "worklist.tl"} {
		c, err := Compile(loadProgram(t, name))
		if err != nil {
			t.Fatal(err)
		}
		if c.Analysis.Fresh == 0 {
			t.Errorf("%s: analysis proved nothing captured:\n%s", name, c.Report())
		}
	}
}

// TestProgramsSkipSharedExtension: global accesses are classified
// definitely-shared, so the extension bypasses their runtime checks.
func TestProgramsSkipSharedExtension(t *testing.T) {
	c, err := Compile(loadProgram(t, "bank.tl"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Analysis.Shared == 0 {
		t.Fatalf("no definitely-shared sites:\n%s", c.Report())
	}
	cfg := stm.RuntimeAll(capture.KindTree)
	cfg.SkipSharedChecks = true
	rt := stm.New(c.DefaultMemConfig(), cfg)
	in := NewInterp(c, rt)
	got, err := in.Call(rt.Thread(0), "main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 1600 {
		t.Errorf("main() = %d, want 1600", got)
	}
	if s := rt.Stats(); s.ReadSkipShared+s.WriteSkipShared == 0 {
		t.Error("extension skipped no checks")
	}
}
