// Package serve is the served front-end of the transactional runtime:
// a Server owns a worker pool where each worker drives its own
// tm.Thread and tm.Batcher, decodes compact wire requests, and
// executes compatible requests as merged transactions whose replies
// are assembled in captured memory.
//
// The point of the subsystem is the interaction of two optimizations.
// Application-side transaction merging (PAPERS.md's arXiv 2601.10596)
// coalesces many small requests into one transaction, amortizing
// begin/commit bookkeeping; the paper's captured-memory analysis then
// elides the barriers on the merged batch's reply assembly, because
// every reply slot lives in a transaction-local stack block. Each
// request declares a Footprint of compatibility keys and a phase kind;
// the Batcher admits only non-conflicting, same-phase requests into
// one transaction and falls back to per-request execution when a
// merged transaction aborts, so no request is ever lost.
//
// Backends adapt a workload's data structures to the request codec.
// The in-tree scenarios register themselves (srv-tmkv, srv-tmmsg);
// external code registers its own with Register and drives the same
// Server, open-loop client population, and latency harness.
package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/tm"
)

// Backend adapts one workload to the serving front-end: it sizes and
// populates the shared state, generates deterministic request streams,
// and translates decoded requests into executable batch items.
// Instances are single use: one Backend serves one Server.
type Backend interface {
	// MemConfig sizes the simulated address space for a server with
	// the given worker count expected to execute about totalRequests
	// requests (MaxThreads must cover workers).
	MemConfig(workers, totalRequests int) tm.MemConfig
	// Setup builds the shared state single-threadedly on thread 0,
	// before any worker runs.
	Setup(rt *tm.Runtime)
	// ReplyWords is the per-request reply block size, in words.
	ReplyWords() int
	// NewRequest derives the i-th request of the deterministic stream
	// for seed — the open-loop client population's request source.
	NewRequest(seed, i uint64) Request
	// Item translates a decoded request into a batch item: footprint,
	// phase kind, and the transactional Apply that serves it.
	Item(req Request) tm.BatchItem
}

// BackendFactory creates a fresh backend instance.
type BackendFactory func() Backend

// regEntry is one registration: the factory plus a one-line
// description surfaced by listings.
type regEntry struct {
	factory BackendFactory
	desc    string
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]regEntry)
)

// Register adds a backend factory under name, with a one-line
// description for listings (tmsrv -help, CI logs). It panics on an
// empty name or a duplicate registration, like tm.RegisterWorkload.
func Register(name, desc string, f BackendFactory) {
	if name == "" || f == nil {
		panic("serve: Register with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("serve: duplicate backend " + name)
	}
	registry[name] = regEntry{factory: f, desc: desc}
}

// Description returns the description a backend was registered with
// ("" for an unknown name).
func Description(name string) string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[name].desc
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New instantiates a registered backend. An unknown name is an error
// that lists what is registered.
func New(name string) (Backend, error) {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown backend %q (registered: %s)",
			name, strings.Join(Backends(), ", "))
	}
	return e.factory(), nil
}
