package tlc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
)

// Compiled is a TL program after the full pipeline: parse → inline →
// semantic analysis → capture analysis.
type Compiled struct {
	prog *Program
	s    *semaInfo
	// Analysis summarizes the capture analysis: how many access sites
	// it proved transaction-local.
	Analysis analysisStats
}

// Compile runs the whole compiler over one TL source file.
func Compile(src string) (*Compiled, error) {
	return compile(src, true)
}

// CompileNoInline compiles without the inlining pass (to observe how
// much of the analysis power comes from inlining, as in Sec. 3.2).
func CompileNoInline(src string) (*Compiled, error) {
	return compile(src, false)
}

func compile(src string, inline bool) (*Compiled, error) {
	prog, perr := parse(src)
	if perr != nil {
		return nil, perr
	}
	if inline {
		inlineAll(prog)
	}
	s, serr := analyze(prog)
	if serr != nil {
		return nil, serr
	}
	c := &Compiled{prog: prog, s: s}
	c.Analysis = captureAnalysis(prog, s)
	return c, nil
}

// GlobalWords reports how many words of the globals region the
// program needs.
func (c *Compiled) GlobalWords() int { return c.s.gWords }

// DefaultMemConfig returns an address-space configuration suitable for
// running the program.
func (c *Compiled) DefaultMemConfig() mem.Config {
	g := c.s.gWords + 16
	if g < 1<<10 {
		g = 1 << 10
	}
	return mem.Config{GlobalWords: g, HeapWords: 1 << 20, StackWords: 1 << 12, MaxThreads: 32}
}

// Report formats the capture-analysis result: the totals and every
// transactional access site with its classification, in source order.
func (c *Compiled) Report() string {
	var sb strings.Builder
	a := c.Analysis
	total := a.Fresh + a.Stack + a.Unknown + a.Shared
	fmt.Fprintf(&sb, "capture analysis: %d transactional access sites\n", total)
	if total > 0 {
		fmt.Fprintf(&sb, "  elided  (tx-local heap):    %3d (%.0f%%)\n", a.Fresh, pct(a.Fresh, total))
		fmt.Fprintf(&sb, "  elided  (tx-local stack):   %3d (%.0f%%)\n", a.Stack, pct(a.Stack, total))
		fmt.Fprintf(&sb, "  kept    (definitely shared):%3d (%.0f%%)\n", a.Shared, pct(a.Shared, total))
		fmt.Fprintf(&sb, "  kept    (unknown):          %3d (%.0f%%)\n", a.Unknown, pct(a.Unknown, total))
	}
	type site struct {
		line int
		desc string
	}
	var sites []site
	for e, cl := range c.s.accOf {
		sites = append(sites, site{line(e), fmt.Sprintf("line %3d: %-18s %s", line(e), describe(e), cl)})
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].line != sites[j].line {
			return sites[i].line < sites[j].line
		}
		return sites[i].desc < sites[j].desc
	})
	for _, s := range sites {
		sb.WriteString("  " + s.desc + "\n")
	}
	return sb.String()
}

func pct(n, total int) float64 { return 100 * float64(n) / float64(total) }

func describe(e Expr) string {
	switch e := e.(type) {
	case *FieldExpr:
		return "." + e.Name
	case *IndexExpr:
		if id, ok := e.X.(*Ident); ok {
			return id.Name + "[...]"
		}
		return "[...]"
	case *Ident:
		return e.Name + " (global)"
	}
	return "?"
}
