package stm

import (
	"math"

	"repro/internal/mem"
)

// This file is the barrier layer: the Load/Store entry points that
// dispatch into the engine compiled for the Runtime's profile
// (engine.go), the two instrumented reference chains (generic and
// counting), and the full-barrier slow paths every engine bottoms out
// in. The fast paths of the performance engines live in engine.go.

// Load performs a transactional read of the word at a. ac carries the
// access-site metadata (provenance for compiler elision; whether the
// original program hand-instrumented the access). The real work happens
// in the engine function selected once per Runtime, so the hot path
// re-tests no configuration state.
func (tx *Tx) Load(a mem.Addr, ac Acc) uint64 {
	return tx.load(tx, a, ac)
}

// Store performs a transactional write of the word at a.
func (tx *Tx) Store(a mem.Addr, val uint64, ac Acc) {
	tx.store(tx, a, val, ac)
}

// --- The generic reference chain ---
//
// loadGeneric/storeGeneric interpret the whole optimization profile at
// runtime: every cached configuration boolean is re-tested per access.
// This is the original barrier implementation, kept verbatim as the
// reference engine — differential tests force it with WithEngine and
// compare the specialized engines against it bit for bit.

func (tx *Tx) loadGeneric(a mem.Addr, ac Acc) uint64 {
	th := tx.th
	if tx.keepStats {
		st := th.stats
		st.ReadTotal++
		if ac.Manual {
			st.ReadManual++
		}
		if tx.counting {
			if tx.onTxStack(a) {
				st.ReadCapStack++
			} else if tx.clog.Contains(a, 1) {
				st.ReadCapHeap++
			}
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		th.stats.ReadElStatic += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.skipShared && ac.Prov == ProvShared {
		th.stats.ReadSkipShared += tx.statInc()
		th.stats.ReadFull += tx.statInc()
		return tx.readFull(a)
	}
	if tx.readStack && tx.onTxStack(a) {
		th.stats.ReadElStack += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.readHeap && tx.alogContains(a) {
		th.stats.ReadElHeap += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		th.stats.ReadElPriv += tx.statInc()
		return th.rt.space.Load(a)
	}
	th.stats.ReadFull += tx.statInc()
	return tx.readFull(a)
}

func (tx *Tx) storeGeneric(a mem.Addr, val uint64, ac Acc) {
	th := tx.th
	if tx.keepStats {
		st := th.stats
		st.WriteTotal++
		if ac.Manual {
			st.WriteManual++
		}
		if tx.counting {
			if tx.onTxStack(a) {
				st.WriteCapStack++
			} else if tx.clog.Contains(a, 1) {
				st.WriteCapHeap++
			}
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		th.stats.WriteElStatic += tx.statInc()
		tx.storeCaptured(a, val)
		return
	}
	if tx.skipShared && ac.Prov == ProvShared {
		th.stats.WriteSkipShared += tx.statInc()
		th.stats.WriteFull += tx.statInc()
		tx.writeFull(a, val)
		return
	}
	if tx.writeStack && tx.onTxStack(a) {
		th.stats.WriteElStack += tx.statInc()
		tx.storeCaptured(a, val)
		return
	}
	if tx.writeHeap && tx.alogContains(a) {
		th.stats.WriteElHeap += tx.statInc()
		tx.storeCaptured(a, val)
		return
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		// Annotated thread-local data can hold live-in values, so it
		// keeps undo logging but skips locking (Sec. 2.2.2).
		th.stats.WriteElPriv += tx.statInc()
		tx.logUndo(a)
		th.rt.space.Store(a, val)
		return
	}
	th.stats.WriteFull += tx.statInc()
	tx.writeFull(a, val)
}

// --- The counting (instrumented) chain ---
//
// loadCounting/storeCounting carry the full statistics accounting:
// barrier totals, the Fig. 8 classification, and per-mechanism elision
// counters. The engine selector picks this chain for every profile that
// keeps statistics (i.e. whenever PerfMode is off), so the accounting
// lives here and nowhere near the performance fast paths.

func (tx *Tx) loadCounting(a mem.Addr, ac Acc) uint64 {
	th := tx.th
	st := th.stats
	st.ReadTotal++
	if ac.Manual {
		st.ReadManual++
	}
	if tx.counting {
		if tx.onTxStack(a) {
			st.ReadCapStack++
		} else if tx.clog.Contains(a, 1) {
			st.ReadCapHeap++
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		st.ReadElStatic++
		return th.rt.space.Load(a)
	}
	if tx.skipShared && ac.Prov == ProvShared {
		st.ReadSkipShared++
		st.ReadFull++
		return tx.readFull(a)
	}
	if tx.readStack && tx.onTxStack(a) {
		st.ReadElStack++
		return th.rt.space.Load(a)
	}
	if tx.readHeap && tx.alogContains(a) {
		st.ReadElHeap++
		return th.rt.space.Load(a)
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		st.ReadElPriv++
		return th.rt.space.Load(a)
	}
	st.ReadFull++
	return tx.readFull(a)
}

func (tx *Tx) storeCounting(a mem.Addr, val uint64, ac Acc) {
	th := tx.th
	st := th.stats
	st.WriteTotal++
	if ac.Manual {
		st.WriteManual++
	}
	if tx.counting {
		if tx.onTxStack(a) {
			st.WriteCapStack++
		} else if tx.clog.Contains(a, 1) {
			st.WriteCapHeap++
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.verify {
			tx.verifyCaptured(a)
		}
		st.WriteElStatic++
		tx.storeCaptured(a, val)
		return
	}
	if tx.skipShared && ac.Prov == ProvShared {
		st.WriteSkipShared++
		st.WriteFull++
		tx.writeFull(a, val)
		return
	}
	if tx.writeStack && tx.onTxStack(a) {
		st.WriteElStack++
		tx.storeCaptured(a, val)
		return
	}
	if tx.writeHeap && tx.alogContains(a) {
		st.WriteElHeap++
		tx.storeCaptured(a, val)
		return
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		// Annotated thread-local data can hold live-in values, so it
		// keeps undo logging but skips locking (Sec. 2.2.2).
		st.WriteElPriv++
		tx.logUndo(a)
		th.rt.space.Store(a, val)
		return
	}
	st.WriteFull++
	tx.writeFull(a, val)
}

// --- The read-mostly instrumented chain ---
//
// loadReadMostly/storeReadMostly are the statistics-keeping chain of
// the read-mostly engine (engine.go). Loads keep the profile's full
// capture-elision dispatch (an elided read is cheaper than any
// barrier), but the fallback is rmReadFull — validation against the
// attempt's snapshot with NO read-set entry — instead of readFull.
// Stores keep the capture dispatch, and the first store that falls
// through upgrades onto the full engine — whose own chain then
// accounts for every later access, so nothing is double-counted.

func (tx *Tx) loadReadMostly(a mem.Addr, ac Acc) uint64 {
	th := tx.th
	st := th.stats
	st.ReadTotal++
	if ac.Manual {
		st.ReadManual++
	}
	if tx.compiler && StaticElide(ac.Prov) {
		st.ReadElStatic++
		return th.rt.space.Load(a)
	}
	if tx.skipShared && ac.Prov == ProvShared {
		st.ReadSkipShared++
		st.ReadFull++
		return tx.rmReadFull(a)
	}
	if tx.readStack && tx.onTxStack(a) {
		st.ReadElStack++
		return th.rt.space.Load(a)
	}
	if tx.readHeap && tx.alogContains(a) {
		st.ReadElHeap++
		return th.rt.space.Load(a)
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		st.ReadElPriv++
		return th.rt.space.Load(a)
	}
	st.ReadFull++
	return tx.rmReadFull(a)
}

func (tx *Tx) storeReadMostly(a mem.Addr, val uint64, ac Acc) {
	st := tx.th.stats
	if tx.compiler && StaticElide(ac.Prov) {
		st.WriteTotal++
		if ac.Manual {
			st.WriteManual++
		}
		st.WriteElStatic++
		tx.storeCaptured(a, val)
		return
	}
	if tx.writeStack && tx.onTxStack(a) {
		st.WriteTotal++
		if ac.Manual {
			st.WriteManual++
		}
		st.WriteElStack++
		tx.storeCaptured(a, val)
		return
	}
	if tx.writeHeap && tx.alogContains(a) {
		st.WriteTotal++
		if ac.Manual {
			st.WriteManual++
		}
		st.WriteElHeap++
		tx.storeCaptured(a, val)
		return
	}
	// The upgrade target's chain counts this store (and all later
	// accesses) itself.
	tx.upgradeWrite(a, val, ac)
}

// loadGenericRM/storeGenericRM are the forced-generic reference chain
// for a read-mostly profile (engine.go): the same chain shapes as
// loadReadMostly/storeReadMostly — the profile's capture dispatch with
// the rmReadFull fallback on loads and upgradeWrite on the first
// shared store — with the generic chain's keepStats guards, and the
// plain generic chain as the upgrade target. Differential runs against
// the specialized read-mostly engines must produce identical counters
// and identical upgrade decisions, so the reference interprets the
// same specification.

func (tx *Tx) loadGenericRM(a mem.Addr, ac Acc) uint64 {
	th := tx.th
	if tx.keepStats {
		st := th.stats
		st.ReadTotal++
		if ac.Manual {
			st.ReadManual++
		}
	}
	if tx.compiler && StaticElide(ac.Prov) {
		th.stats.ReadElStatic += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.skipShared && ac.Prov == ProvShared {
		th.stats.ReadSkipShared += tx.statInc()
		th.stats.ReadFull += tx.statInc()
		return tx.rmReadFull(a)
	}
	if tx.readStack && tx.onTxStack(a) {
		th.stats.ReadElStack += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.readHeap && tx.alogContains(a) {
		th.stats.ReadElHeap += tx.statInc()
		return th.rt.space.Load(a)
	}
	if tx.annotations && th.priv.Contains(a, 1) {
		th.stats.ReadElPriv += tx.statInc()
		return th.rt.space.Load(a)
	}
	th.stats.ReadFull += tx.statInc()
	return tx.rmReadFull(a)
}

func (tx *Tx) storeGenericRM(a mem.Addr, val uint64, ac Acc) {
	th := tx.th
	if tx.compiler && StaticElide(ac.Prov) {
		if tx.keepStats {
			st := th.stats
			st.WriteTotal++
			if ac.Manual {
				st.WriteManual++
			}
			st.WriteElStatic++
		}
		tx.storeCaptured(a, val)
		return
	}
	if tx.writeStack && tx.onTxStack(a) {
		if tx.keepStats {
			st := th.stats
			st.WriteTotal++
			if ac.Manual {
				st.WriteManual++
			}
			st.WriteElStack++
		}
		tx.storeCaptured(a, val)
		return
	}
	if tx.writeHeap && tx.alogContains(a) {
		if tx.keepStats {
			st := th.stats
			st.WriteTotal++
			if ac.Manual {
				st.WriteManual++
			}
			st.WriteElHeap++
		}
		tx.storeCaptured(a, val)
		return
	}
	// The upgrade target's chain counts this store (and all later
	// accesses) itself.
	tx.upgradeWrite(a, val, ac)
}

// upgradeWrite is the read-mostly engine's one-time in-flight upgrade:
// the first store that needs the full write barrier re-points the
// descriptor's barrier pair at the full engine compiled from the same
// profile and re-dispatches the store through it. The write machinery
// (write/undo logs, lockedPrev) then materializes lazily as the full
// paths touch it.
//
// The read-mostly loads before this point were never logged (rmReadFull
// validates against rv and keeps no read set), so continuing in-flight
// is sound only when nothing has committed since the attempt's
// snapshot: then every unlogged read is provably still valid. The
// clock==rv test proves exactly that. Otherwise the attempt restarts
// with upNext set, and beginTop runs the retry on the full engine from
// the start so every read is logged and normal validation applies.
// finish() undoes the swap at the end of the attempt, so a later
// transaction starts read-mostly again; that keeps the upgrade correct
// under retry by construction.
func (tx *Tx) upgradeWrite(a mem.Addr, val uint64, ac Acc) {
	tx.th.stats.Upgrades++
	if tx.th.rt.clock.Load() != tx.rv {
		tx.upNext = true
		tx.conflict()
	}
	up := tx.eng.up
	tx.load, tx.store = up.load, up.store
	tx.upgraded = true
	tx.store(tx, a, val, ac)
}

// statInc returns 1 when statistics are kept, else 0, letting the
// generic reference chain stay branch-light under PerfMode.
func (tx *Tx) statInc() uint64 {
	if tx.keepStats {
		return 1
	}
	return 0
}

// --- Full-barrier slow paths (shared by every engine) ---

func (tx *Tx) readFull(a mem.Addr) uint64 {
	rt := tx.th.rt
	oi := rt.orecIndex(a)
	for {
		v1 := rt.orecs[oi].Load()
		if orecLocked(v1) {
			if orecOwner(v1) == tx.th.id {
				return rt.space.Load(a) // read-after-write, in place
			}
			tx.conflictAt(oi, v1)
		}
		if orecVersion(v1) > tx.rv {
			tx.extend()
			continue
		}
		val := rt.space.Load(a)
		if v2 := rt.orecs[oi].Load(); v2 != v1 {
			tx.conflictAt(oi, v2)
		}
		tx.readset = append(tx.readset, readEntry{oi, v1})
		return val
	}
}

// rmReadFull is the read-mostly full read barrier: the TL2 read-only
// load. The orec is validated against the attempt's snapshot rv at read
// time and NO read-set entry is appended — a transaction that never
// upgrades therefore commits with no validation loop, no clock bump,
// and no log traffic at all. The price is that the read set cannot
// vouch for these reads later: extension and commit-time validation for
// attempts containing unlogged reads are gated in lifecycle.go
// (extend/commitTop) on proof that no other thread's commit intervened.
// No owner check is needed: pre-upgrade the transaction holds no orecs
// (post-upgrade loads run the full engine's readFull).
func (tx *Tx) rmReadFull(a mem.Addr) uint64 {
	rt := tx.th.rt
	oi := rt.orecIndex(a)
	for {
		v1 := rt.orecs[oi].Load()
		if orecLocked(v1) {
			tx.conflictAt(oi, v1)
		}
		if orecVersion(v1) > tx.rv {
			tx.extend()
			continue
		}
		val := rt.space.Load(a)
		if v2 := rt.orecs[oi].Load(); v2 != v1 {
			tx.conflictAt(oi, v2)
		}
		return val
	}
}

// storeCaptured writes captured memory directly. At nesting depth > 1
// the location may be live-in for the nested transaction even though
// it is transaction-local to the outer one, so partial abort requires
// an undo entry (Sec. 2.2.1); at top level captured memory is dead on
// abort and skips undo logging entirely.
func (tx *Tx) storeCaptured(a mem.Addr, val uint64) {
	if tx.depth > 1 {
		tx.logUndo(a)
	}
	tx.th.rt.space.Store(a, val)
}

func (tx *Tx) writeFull(a mem.Addr, val uint64) {
	rt := tx.th.rt
	oi := rt.orecIndex(a)
	for {
		v := rt.orecs[oi].Load()
		if orecLocked(v) {
			if orecOwner(v) == tx.th.id {
				break
			}
			tx.conflictAt(oi, v)
		}
		if orecVersion(v) > tx.rv {
			tx.extend()
			continue
		}
		if rt.orecs[oi].CompareAndSwap(v, orecLockWord(tx.th.id)) {
			tx.writes = append(tx.writes, writeEntry{oi})
			if tx.lockedPrev == nil {
				// Allocated on the thread's first lock ever (then reused
				// via clear in finish), not per Tx: transactions that
				// never lock an orec never pay for the map.
				tx.lockedPrev = make(map[uint64]uint64, 8)
			}
			tx.lockedPrev[oi] = v
			break
		}
		tx.conflictAt(oi, rt.orecs[oi].Load())
	}
	tx.logUndo(a)
	rt.space.Store(a, val)
}

// --- Typed convenience accessors ---

// LoadFloat reads a float64 transactionally.
func (tx *Tx) LoadFloat(a mem.Addr, ac Acc) float64 {
	return math.Float64frombits(tx.Load(a, ac))
}

// StoreFloat writes a float64 transactionally.
func (tx *Tx) StoreFloat(a mem.Addr, f float64, ac Acc) {
	tx.Store(a, math.Float64bits(f), ac)
}

// LoadAddr reads a simulated pointer transactionally.
func (tx *Tx) LoadAddr(a mem.Addr, ac Acc) mem.Addr {
	return mem.Addr(tx.Load(a, ac))
}

// StoreAddr writes a simulated pointer transactionally.
func (tx *Tx) StoreAddr(a mem.Addr, p mem.Addr, ac Acc) {
	tx.Store(a, uint64(p), ac)
}
