// Annotations: the paper's Fig. 7 user APIs —
// addPrivateMemoryBlock/removePrivateMemoryBlock — on the bayes-style
// thread-local query-vector pattern from Fig. 1(b), written against
// the public tm API.
//
//	go run ./examples/annotations
//
// Each worker owns scratch vectors that live across transactions, so
// neither the runtime capture analysis (not transaction-local) nor the
// compiler (not provable) can elide their barriers. Annotating them as
// private can — exactly the case the paper reserves for programmer
// knowledge.
package main

import (
	"fmt"

	"repro/tm"
)

const vecLen = 64

func run(annotate bool) tm.Stats {
	rt := tm.Open(
		tm.WithName("annotations-demo"),
		tm.WithAnnotations(), // the runtime consults the private log
		tm.WithMemory(tm.MemConfig{
			GlobalWords: 1 << 8, HeapWords: 1 << 18, StackWords: 1 << 10, MaxThreads: 8,
		}),
	)
	defer rt.Close()
	shared := rt.AllocGlobal(1).Word(0)

	const threads, rounds = 4, 500
	rt.Parallel(threads, func(th *tm.Thread, tid, _ int) {
		// The thread-local query vector of the paper's Fig. 1(b):
		// allocated once, reused by every transaction. Its references
		// carry unknown provenance — only the programmer knows it is
		// private, which is what the annotation asserts.
		qv := th.Alloc(vecLen)
		if annotate {
			th.AddPrivateBlock(qv) // Fig. 7 API
			defer th.RemovePrivateBlock(qv)
		}
		for r := 0; r < rounds; r++ {
			th.Atomic(func(tx *tm.Tx) {
				// Populate and reduce the private vector; a naive
				// compiler instruments all of these accesses.
				var sum uint64
				for i := 0; i < vecLen; i++ {
					qv.Word(i).Store(tx, uint64(r+i))
				}
				for i := 0; i < vecLen; i++ {
					sum += qv.Word(i).Load(tx)
				}
				// One genuinely shared update.
				shared.Add(tx, sum%7)
			})
		}
	})
	return rt.Stats()
}

func main() {
	plain := run(false)
	annotated := run(true)
	fmt.Println("bayes-style thread-local query vectors, 4 threads × 500 transactions:")
	fmt.Printf("  without annotations: %8d full barriers, %8d elided\n",
		plain.ReadFull+plain.WriteFull, plain.ReadElided()+plain.WriteElided())
	fmt.Printf("  with annotations:    %8d full barriers, %8d elided (%d reads, %d writes)\n",
		annotated.ReadFull+annotated.WriteFull,
		annotated.ReadElided()+annotated.WriteElided(),
		annotated.ReadElPriv, annotated.WriteElPriv)
	fmt.Println("\nAnnotated writes keep undo logging (live-in values must survive an")
	fmt.Println("abort) but skip ownership-record locking; reads skip everything.")
}
