package tmkv

// Served front-end adapter: exposes the tmkv store as a serve.Backend
// ("srv-tmkv", and the phase-tagged read-heavy "srv-tmkv-read"),
// translating compact wire requests into batchable transactional
// operations. Point ops declare the key id as their footprint, so a
// batch of requests on distinct keys merges into one transaction;
// whole-store scans are exclusive.

import (
	"repro/internal/prng"
	"repro/internal/scenarios/dist"
	"repro/internal/stm"
	"repro/internal/txlib"
	"repro/tm"
	"repro/tm/serve"
)

// Request opcodes of the srv-tmkv backend (serve.Request.Op).
const (
	OpRead   = 0 // checksum-verified read of Key's newest version
	OpUpsert = 1 // new version of Key (insert if absent)
	OpInsert = 2 // insert Key (no-op reply if present)
	OpDelete = 3 // remove Key and every version
	OpScan   = 4 // visit up to Arg keys (exclusive: never merged)
)

// Reply layout (serve.Reply.Words).
const (
	RepStatus  = 0 // per-op status code (see the Item cases)
	RepInfo    = 1 // op-specific payload: words read, version written, …
	ReplyWords = 2
)

// Read statuses.
const (
	ReadMiss   = 0
	ReadOK     = 1
	ReadBadSum = 2 // checksum mismatch: must never happen
)

// KVBackend adapts one tmkv store to the serving front-end.
type KVBackend struct {
	cfg   Config
	store Store
	zipf  *dist.Zipf
}

// ServeMix returns the request mix the registered "srv-tmkv" backend
// uses: the OLTP blend of Mixed under the served opcode set.
func ServeMix() Config {
	c := Mixed()
	c.Name = "srv-tmkv"
	return c
}

// ServeReadMix returns the request mix of the registered
// "srv-tmkv-read" backend: the ReadHeavy blend with phase tagging on,
// so read batches merge under the scan regime (the read-mostly engine
// on a phased profile) and the rare mutations under publish. The mix
// is skewed enough (84% scan-shaped) that same-phase runs stay long
// and merging survives the phase split.
func ServeReadMix() Config {
	c := ReadHeavy()
	c.Name = "srv-tmkv-read"
	c.Phased = true
	return c
}

func init() {
	serve.Register("srv-tmkv", "served KV/object store: mixed OLTP blend, footprint = key id",
		func() serve.Backend { return NewKVBackend(ServeMix()) })
	serve.Register("srv-tmkv-read",
		"served KV read heavy: scan-phased read batches for the read-mostly engine",
		func() serve.Backend { return NewKVBackend(ServeReadMix()) })
}

// NewKVBackend creates a backend over cfg (the Ops field is unused:
// the client population decides how many requests to issue). Exported
// with a Config parameter so differential tests can pin custom mixes.
func NewKVBackend(cfg Config) *KVBackend {
	New(cfg) // reuse the workload's validation panics
	k := &KVBackend{cfg: cfg}
	if cfg.Zipf {
		k.zipf = dist.NewZipf(cfg.Keys, cfg.Theta)
	}
	return k
}

// MemConfig implements serve.Backend: the workload's worst-case live
// set plus one version build of churn per expected request (deleted
// and trimmed versions recycle through limbo lists only at quiescence,
// which a busy server may never reach).
func (k *KVBackend) MemConfig(workers, totalRequests int) tm.MemConfig {
	mc := k.cfg.memConfig(totalRequests)
	if mc.MaxThreads < workers {
		mc.MaxThreads = workers
	}
	return mc
}

// Setup implements serve.Backend: create the store and preload
// PreloadPct of the key space, exactly like the workload's Setup.
func (k *KVBackend) Setup(trt *tm.Runtime) {
	rt := trt.Unwrap()
	c := k.cfg
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		k.store = NewStore(tx, c.Keys/2, c.Keys*c.MaxBlocks/2)
	})
	preload := c.Keys * c.PreloadPct / 100
	for i := 0; i < preload; i++ {
		id := dist.RankToKey(i, c.Keys)
		th.Atomic(func(tx *stm.Tx) {
			kb := dist.StackKey(tx, id, c.KeyWords)
			stage, words := c.stageValue(tx, id, 1)
			if !k.store.insert(tx, kb, c.KeyWords, stage, words) {
				panic("tmkv: preload collision")
			}
			tx.Free(stage)
		})
	}
}

// ReplyWords implements serve.Backend.
func (k *KVBackend) ReplyWords() int { return ReplyWords }

// NewRequest implements serve.Backend: request i of the deterministic
// stream for seed, drawn from the configured mix and key distribution.
func (k *KVBackend) NewRequest(seed, i uint64) serve.Request {
	r := prng.New(seed + (i+1)*0x2545F4914F6CDD1D)
	th := k.cfg.opThresholds()
	op := r.Intn(100)
	var id uint64
	if k.zipf != nil {
		id = dist.RankToKey(k.zipf.Sample(r), k.cfg.Keys)
	} else {
		id = dist.RankToKey(r.Intn(k.cfg.Keys), k.cfg.Keys)
	}
	switch {
	case op < th[0]:
		return serve.Request{Op: OpRead, Key: id}
	case op < th[1]:
		return serve.Request{Op: OpUpsert, Key: id}
	case op < th[2]:
		return serve.Request{Op: OpInsert, Key: id}
	case op < th[3]:
		return serve.Request{Op: OpDelete, Key: id}
	default:
		return serve.Request{Op: OpScan, Arg: uint64(k.cfg.ScanLimit)}
	}
}

// Item implements serve.Backend. Requests never refuse (no Apply
// returns false): a missing key is an application-level miss reported
// in the status word, so merged batches of tmkv requests only fall
// back on engine-level conflicts, never by construction.
func (k *KVBackend) Item(req serve.Request) tm.BatchItem {
	c := k.cfg
	id := req.Key
	// Phase tags are opt-in per mix (Config.Phased): they buy per-batch
	// engine specialization at the cost of splitting merged batches by
	// regime.
	phase := func(p tm.Phase) tm.Phase {
		if c.Phased {
			return p
		}
		return ""
	}
	switch req.Op {
	case OpUpsert:
		return tm.BatchItem{
			Phase:     phase(tm.PhasePublish),
			Footprint: tm.Footprint{Writes: []uint64{id}},
			Apply: func(ttx *tm.Tx, reply tm.Struct) bool {
				tx := ttx.Unwrap()
				kb := dist.StackKey(tx, id, c.KeyWords)
				if kr, ok := k.store.lookup(tx, kb, c.KeyWords); ok {
					version := tx.Load(kr+krLatest, txlib.TM) + 1
					stage, words := c.stageValue(tx, id, version)
					k.store.update(tx, kr, stage, words, c.MaxVersions)
					tx.Free(stage)
					reply.Word(RepStatus).Store(ttx, 1)
					reply.Word(RepInfo).Store(ttx, version)
				} else {
					stage, words := c.stageValue(tx, id, 1)
					k.store.insert(tx, kb, c.KeyWords, stage, words)
					tx.Free(stage)
					reply.Word(RepStatus).Store(ttx, 2)
					reply.Word(RepInfo).Store(ttx, 1)
				}
				return true
			},
		}
	case OpInsert:
		return tm.BatchItem{
			Phase:     phase(tm.PhasePublish),
			Footprint: tm.Footprint{Writes: []uint64{id}},
			Apply: func(ttx *tm.Tx, reply tm.Struct) bool {
				tx := ttx.Unwrap()
				kb := dist.StackKey(tx, id, c.KeyWords)
				stage, words := c.stageValue(tx, id, 1)
				inserted := k.store.insert(tx, kb, c.KeyWords, stage, words)
				tx.Free(stage)
				if inserted {
					reply.Word(RepStatus).Store(ttx, 1)
				}
				return true
			},
		}
	case OpDelete:
		return tm.BatchItem{
			Phase:     phase(tm.PhasePublish),
			Footprint: tm.Footprint{Writes: []uint64{id}},
			Apply: func(ttx *tm.Tx, reply tm.Struct) bool {
				tx := ttx.Unwrap()
				kb := dist.StackKey(tx, id, c.KeyWords)
				if k.store.remove(tx, kb, c.KeyWords) {
					reply.Word(RepStatus).Store(ttx, 1)
				}
				return true
			},
		}
	case OpScan:
		limit := int(req.Arg)
		if limit < 1 {
			limit = 1
		}
		return tm.BatchItem{
			Phase:     phase(tm.PhaseScan),
			Exclusive: true,
			Apply: func(ttx *tm.Tx, reply tm.Struct) bool {
				seen := k.store.scan(ttx.Unwrap(), limit)
				reply.Word(RepStatus).Store(ttx, 1)
				reply.Word(RepInfo).Store(ttx, uint64(seen))
				return true
			},
		}
	default: // OpRead
		return tm.BatchItem{
			Phase:     phase(tm.PhaseScan),
			Footprint: tm.Footprint{Reads: []uint64{id}},
			Apply: func(ttx *tm.Tx, reply tm.Struct) bool {
				tx := ttx.Unwrap()
				kb := dist.StackKey(tx, id, c.KeyWords)
				kr, ok := k.store.lookup(tx, kb, c.KeyWords)
				if !ok {
					reply.Word(RepStatus).Store(ttx, ReadMiss)
					return true
				}
				words, sumOK := k.store.readLatest(tx, kr)
				status := uint64(ReadOK)
				if !sumOK {
					status = ReadBadSum
				}
				reply.Word(RepStatus).Store(ttx, status)
				reply.Word(RepInfo).Store(ttx, uint64(words))
				return true
			},
		}
	}
}
