package tmkv

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/txlib"
	"repro/tm"
)

// open builds a runtime sized for the workload under the profile.
func open(t testing.TB, b *B, p tm.Profile) *tm.Runtime {
	t.Helper()
	return tm.Open(append(p.Options(), tm.WithMemory(b.MemConfig()))...)
}

// runOnce drives one full workload lifecycle and fails on any
// validation error or leaked orec lock.
func runOnce(t *testing.T, cfg Config, p tm.Profile, threads int) (*B, *tm.Runtime) {
	t.Helper()
	b := New(cfg)
	rt := open(t, b, p)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("%s [%s, %d threads]: %v", cfg.Name, p.Name(), threads, err)
	}
	rt.Validate()
	return b, rt
}

func TestRegisteredVariants(t *testing.T) {
	for _, name := range []string{"tmkv", "tmkv-read", "tmkv-write"} {
		w, err := tm.NewWorkload(name)
		if err != nil {
			t.Fatalf("registry: %v", err)
		}
		if w.Name() != name {
			t.Errorf("workload %q reports name %q", name, w.Name())
		}
	}
}

func TestMixSumsValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad mix did not panic")
		}
	}()
	cfg := Small()
	cfg.ReadPct += 5
	New(cfg)
}

func TestRunAndValidateSingleThread(t *testing.T) {
	b, _ := runOnce(t, Small(), tm.Baseline(), 1)
	var effects uint64
	for i := range b.perTh {
		st := &b.perTh[i]
		effects += st.reads + st.updates + st.inserts + st.deletes + st.scans + st.misses
	}
	if effects != uint64(b.cfg.Ops) {
		t.Errorf("accounted %d ops, want %d", effects, b.cfg.Ops)
	}
}

// TestDedupShares asserts the venti-style content map actually shares
// blocks: the store must hold fewer unique blocks than the index holds
// block references.
func TestDedupShares(t *testing.T) {
	b, rt := runOnce(t, Small(), tm.Baseline(), 1)
	th := rt.Unwrap().Thread(0)
	var unique, refs int
	th.Atomic(func(tx *stm.Tx) {
		unique = txlib.HTSize(tx, b.store.dedup, txlib.TM)
		txlib.HTForEach(tx, b.store.dedup, txlib.TM, func(_ mem.Addr, _ int, data uint64) bool {
			refs += int(tx.Load(mem.Addr(data)+brRef, txlib.TM))
			return true
		})
	})
	if unique == 0 || refs == 0 {
		t.Fatalf("empty store after run (unique %d, refs %d)", unique, refs)
	}
	if unique >= refs {
		t.Errorf("no dedup sharing: %d unique blocks for %d references", unique, refs)
	}
}

// TestCaptureMechanismsLightUp is the acceptance property of this
// scenario: under runtime capture the allocation-log and stack checks
// must elide barriers, under compiler elision the provenance
// annotations must, and under the definitely-shared extension the
// hand-instrumented accesses must bypass the checks.
func TestCaptureMechanismsLightUp(t *testing.T) {
	cfg := Small()

	_, rt := runOnce(t, cfg, tm.RuntimeAll(tm.LogTree), 1)
	s := rt.Stats()
	if s.ReadElHeap == 0 || s.WriteElHeap == 0 {
		t.Errorf("runtime capture elided no heap barriers: reads %d, writes %d", s.ReadElHeap, s.WriteElHeap)
	}
	if s.ReadElStack == 0 || s.WriteElStack == 0 {
		t.Errorf("runtime capture elided no stack barriers: reads %d, writes %d", s.ReadElStack, s.WriteElStack)
	}

	_, rt = runOnce(t, cfg, tm.CompilerElision(), 1)
	s = rt.Stats()
	if s.ReadElStatic == 0 || s.WriteElStatic == 0 {
		t.Errorf("compiler elided no barriers statically: reads %d, writes %d", s.ReadElStatic, s.WriteElStatic)
	}

	skip := tm.RuntimeAll(tm.LogTree).With(tm.WithSkipSharedChecks()).Named("runtime+skipshared")
	_, rt = runOnce(t, cfg, skip, 1)
	s = rt.Stats()
	if s.ReadSkipShared == 0 || s.WriteSkipShared == 0 {
		t.Errorf("definitely-shared extension bypassed no checks: reads %d, writes %d", s.ReadSkipShared, s.WriteSkipShared)
	}
}

// TestElisionClaimsSound runs the soundness oracle: every statically
// elided access must genuinely be captured, or WithVerifyElision
// panics. This guards the Prov annotations on the whole store.
func TestElisionClaimsSound(t *testing.T) {
	p := tm.CompilerElision().With(tm.WithVerifyElision())
	runOnce(t, Small(), p, 1)
	runOnce(t, Small(), p, 2)
}

// TestDeterministicSingleThread runs the same configuration twice and
// compares full address-space checksums: the scenario must be
// bit-for-bit reproducible at one thread.
func TestDeterministicSingleThread(t *testing.T) {
	_, rt1 := runOnce(t, Small(), tm.Baseline(), 1)
	_, rt2 := runOnce(t, Small(), tm.Baseline(), 1)
	c1 := rt1.Unwrap().Space().Checksum()
	c2 := rt2.Unwrap().Space().Checksum()
	if c1 != c2 {
		t.Errorf("two identical runs left different spaces: %#x vs %#x", c1, c2)
	}
}

// TestConcurrentStress is the short multi-goroutine stress run the
// race CI job leans on: several workers churn one store, then the full
// cross-view validation must still hold.
func TestConcurrentStress(t *testing.T) {
	cfg := Small()
	cfg.Ops = 2048
	for _, threads := range []int{2, 4} {
		runOnce(t, cfg, tm.Baseline(), threads)
		runOnce(t, cfg, tm.RuntimeAll(tm.LogTree), threads)
	}
}
