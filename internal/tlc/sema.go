package tlc

import "fmt"

// Semantic analysis: resolves struct layouts, variables, and function
// signatures; type-checks every statement and expression. The results
// are recorded in side tables keyed by AST node, which the capture
// analysis and the interpreter both consume.

// varRef resolves an identifier.
type varRef struct {
	global bool
	slot   int // frame slot (locals/params) or global word offset
	typ    Type
}

// structInfo is a struct layout: one word per int/bool/pointer field,
// ArrLen words per array field.
type structInfo struct {
	decl    *StructDecl
	size    int
	offsets map[string]int
	types   map[string]Type
}

// funcInfo is a checked function.
type funcInfo struct {
	decl   *FuncDecl
	nSlots int // frame slots (params first)
}

// semaInfo carries all resolution results.
type semaInfo struct {
	structs map[string]*structInfo
	funcs   map[string]*funcInfo
	globals map[string]*varRef
	gWords  int // total global words

	identRef  map[*Ident]*varRef
	exprType  map[Expr]Type
	fieldOff  map[*FieldExpr]int
	fieldType map[*FieldExpr]Type
	allocOf   map[*AllocExpr]*structInfo
	callee    map[*CallExpr]*funcInfo

	// localSlot assigns frame slots; declInAtomic marks array locals
	// declared inside an atomic block (their accesses are
	// transaction-local stack, the paper's Fig. 1(a) case).
	localSlot    map[*DeclStmt]int
	declInAtomic map[*DeclStmt]bool

	// acc is filled by the capture analysis: the stm.Acc equivalent
	// classification for every transactional access node.
	accOf map[Expr]accClass
}

// accClass is the analysis verdict for an access site.
type accClass int

const (
	accUnknown accClass = iota // barrier kept
	accFresh                   // provably tx-local heap (elide)
	accStack                   // tx-local stack array (elide)
	accShared                  // definitely shared (skip runtime checks)
)

func (a accClass) String() string {
	switch a {
	case accFresh:
		return "fresh"
	case accStack:
		return "stack"
	case accShared:
		return "shared"
	}
	return "unknown"
}

func newSema() *semaInfo {
	return &semaInfo{
		structs:      map[string]*structInfo{},
		funcs:        map[string]*funcInfo{},
		globals:      map[string]*varRef{},
		identRef:     map[*Ident]*varRef{},
		exprType:     map[Expr]Type{},
		fieldOff:     map[*FieldExpr]int{},
		fieldType:    map[*FieldExpr]Type{},
		allocOf:      map[*AllocExpr]*structInfo{},
		callee:       map[*CallExpr]*funcInfo{},
		localSlot:    map[*DeclStmt]int{},
		declInAtomic: map[*DeclStmt]bool{},
		accOf:        map[Expr]accClass{},
	}
}

// checker walks one function.
type checker struct {
	s       *semaInfo
	fn      *funcInfo
	scopes  []map[string]*varRef
	nextVar int
	loop    int // loop nesting depth
	atomic  int // atomic nesting depth
}

// analyze runs semantic analysis over the program.
func analyze(prog *Program) (*semaInfo, *Error) {
	s := newSema()
	// Struct layouts.
	for _, sd := range prog.Structs {
		if _, dup := s.structs[sd.Name]; dup {
			return nil, errf(sd.Line, 1, "duplicate struct %q", sd.Name)
		}
		s.structs[sd.Name] = &structInfo{decl: sd, offsets: map[string]int{}, types: map[string]Type{}}
	}
	for _, sd := range prog.Structs {
		si := s.structs[sd.Name]
		off := 0
		for _, f := range sd.Fields {
			if _, dup := si.offsets[f.Name]; dup {
				return nil, errf(sd.Line, 1, "duplicate field %q in struct %s", f.Name, sd.Name)
			}
			if f.Type.Kind == TPtr {
				if _, ok := s.structs[f.Type.Elem]; !ok {
					return nil, errf(sd.Line, 1, "field %s.%s: unknown struct %q", sd.Name, f.Name, f.Type.Elem)
				}
			}
			si.offsets[f.Name] = off
			si.types[f.Name] = f.Type
			if f.Type.Kind == TArray {
				off += f.Type.ArrLen
			} else {
				off++
			}
		}
		si.size = off
		if si.size == 0 {
			si.size = 1
		}
	}
	// Globals (scalar/pointer only; one word each).
	off := 0
	for _, g := range prog.Globals {
		if _, dup := s.globals[g.Name]; dup {
			return nil, errf(g.Line, 1, "duplicate global %q", g.Name)
		}
		if g.Type.Kind == TArray {
			s.globals[g.Name] = &varRef{global: true, slot: off, typ: g.Type}
			off += g.Type.ArrLen
			continue
		}
		if g.Type.Kind == TPtr {
			if _, ok := s.structs[g.Type.Elem]; !ok {
				return nil, errf(g.Line, 1, "global %s: unknown struct %q", g.Name, g.Type.Elem)
			}
		}
		s.globals[g.Name] = &varRef{global: true, slot: off, typ: g.Type}
		off++
	}
	s.gWords = off
	if s.gWords == 0 {
		s.gWords = 1
	}
	// Function signatures.
	for _, fd := range prog.Funcs {
		if _, dup := s.funcs[fd.Name]; dup {
			return nil, errf(fd.Line, 1, "duplicate function %q", fd.Name)
		}
		s.funcs[fd.Name] = &funcInfo{decl: fd}
	}
	// Bodies.
	for _, fd := range prog.Funcs {
		c := &checker{s: s, fn: s.funcs[fd.Name]}
		c.push()
		for i, p := range fd.Params {
			if p.Type.Kind == TPtr {
				if _, ok := s.structs[p.Type.Elem]; !ok {
					return nil, errf(p.Line, 1, "param %s: unknown struct %q", p.Name, p.Type.Elem)
				}
			}
			c.declare(p.Name, &varRef{slot: i, typ: p.Type})
		}
		c.nextVar = len(fd.Params)
		if err := c.block(fd.Body); err != nil {
			return nil, err
		}
		c.fn.nSlots = c.nextVar
	}
	return s, nil
}

func (c *checker) push()                       { c.scopes = append(c.scopes, map[string]*varRef{}) }
func (c *checker) pop()                        { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *checker) declare(n string, r *varRef) { c.scopes[len(c.scopes)-1][n] = r }

func (c *checker) lookup(n string) *varRef {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if r, ok := c.scopes[i][n]; ok {
			return r
		}
	}
	if r, ok := c.s.globals[n]; ok {
		return r
	}
	return nil
}

func (c *checker) block(b *Block) *Error {
	c.push()
	defer c.pop()
	for _, st := range b.Stmts {
		if err := c.stmt(st); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(st Stmt) *Error {
	switch st := st.(type) {
	case *Block:
		return c.block(st)
	case *DeclStmt:
		d := st.Decl
		if d.Type.Kind == TPtr {
			if _, ok := c.s.structs[d.Type.Elem]; !ok {
				return errf(d.Line, 1, "var %s: unknown struct %q", d.Name, d.Type.Elem)
			}
		}
		r := &varRef{slot: c.nextVar, typ: d.Type}
		c.nextVar++
		c.declare(d.Name, r)
		c.s.localSlot[st] = r.slot
		c.s.declInAtomic[st] = c.atomic > 0
		return nil
	case *AssignStmt:
		lt, err := c.expr(st.Lhs)
		if err != nil {
			return err
		}
		if !isLValue(st.Lhs) {
			return errf(st.Line, 1, "left side of assignment is not assignable")
		}
		rt, err := c.expr(st.Rhs)
		if err != nil {
			return err
		}
		if !assignable(lt, rt) {
			return errf(st.Line, 1, "cannot assign %s to %s", rt, lt)
		}
		return nil
	case *IfStmt:
		t, err := c.expr(st.Cond)
		if err != nil {
			return err
		}
		if t.Kind != TBool {
			return errf(line(st.Cond), 1, "if condition must be bool, got %s", t)
		}
		if err := c.block(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.block(st.Else)
		}
		return nil
	case *WhileStmt:
		t, err := c.expr(st.Cond)
		if err != nil {
			return err
		}
		if t.Kind != TBool {
			return errf(line(st.Cond), 1, "while condition must be bool, got %s", t)
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.block(st.Body)
	case *ReturnStmt:
		want := c.fn.decl.Ret
		if st.Val == nil {
			if want.Kind != TVoid {
				return errf(st.Line, 1, "missing return value (%s)", want)
			}
			return nil
		}
		got, err := c.expr(st.Val)
		if err != nil {
			return err
		}
		if !assignable(want, got) {
			return errf(st.Line, 1, "cannot return %s as %s", got, want)
		}
		return nil
	case *ExprStmt:
		_, err := c.expr(st.X)
		return err
	case *AtomicStmt:
		c.atomic++
		defer func() { c.atomic-- }()
		return c.block(st.Body)
	case *FreeStmt:
		t, err := c.expr(st.Ptr)
		if err != nil {
			return err
		}
		if t.Kind != TPtr {
			return errf(st.Line, 1, "free needs a pointer, got %s", t)
		}
		return nil
	case *BreakStmt:
		if c.loop == 0 {
			return errf(st.Line, 1, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loop == 0 {
			return errf(st.Line, 1, "continue outside loop")
		}
		return nil
	case *AbortStmt:
		if c.atomic == 0 {
			return errf(st.Line, 1, "abort outside atomic block")
		}
		return nil
	}
	return errf(0, 0, "unhandled statement %T", st)
}

func isLValue(e Expr) bool {
	switch e.(type) {
	case *Ident, *FieldExpr, *IndexExpr:
		return true
	}
	return false
}

func assignable(dst, src Type) bool {
	if dst.Kind == TPtr && src.Kind == TPtr {
		return dst.Elem == src.Elem || src.Elem == "" // "" = nil
	}
	if dst.Kind == TArray || src.Kind == TArray {
		return false // arrays are not assignable wholesale
	}
	return dst.Kind == src.Kind
}

func line(e Expr) int {
	switch e := e.(type) {
	case *IntLit:
		return e.Line
	case *BoolLit:
		return e.Line
	case *NilLit:
		return e.Line
	case *Ident:
		return e.Line
	case *FieldExpr:
		return e.Line
	case *IndexExpr:
		return e.Line
	case *AllocExpr:
		return e.Line
	case *CallExpr:
		return e.Line
	case *BinExpr:
		return e.Line
	case *UnExpr:
		return e.Line
	}
	return 0
}

func (c *checker) expr(e Expr) (Type, *Error) {
	t, err := c.exprInner(e)
	if err == nil {
		c.s.exprType[e] = t
	}
	return t, err
}

func (c *checker) exprInner(e Expr) (Type, *Error) {
	switch e := e.(type) {
	case *IntLit:
		return Type{Kind: TInt}, nil
	case *BoolLit:
		return Type{Kind: TBool}, nil
	case *NilLit:
		return Type{Kind: TPtr, Elem: ""}, nil
	case *Ident:
		r := c.lookup(e.Name)
		if r == nil {
			return Type{}, errf(e.Line, 1, "undefined: %s", e.Name)
		}
		c.s.identRef[e] = r
		return r.typ, nil
	case *FieldExpr:
		bt, err := c.expr(e.X)
		if err != nil {
			return Type{}, err
		}
		if bt.Kind != TPtr || bt.Elem == "" {
			return Type{}, errf(e.Line, 1, "field access on non-pointer %s", bt)
		}
		si := c.s.structs[bt.Elem]
		off, ok := si.offsets[e.Name]
		if !ok {
			return Type{}, errf(e.Line, 1, "struct %s has no field %q", bt.Elem, e.Name)
		}
		c.s.fieldOff[e] = off
		ft := si.types[e.Name]
		c.s.fieldType[e] = ft
		return ft, nil
	case *IndexExpr:
		bt, err := c.expr(e.X)
		if err != nil {
			return Type{}, err
		}
		if bt.Kind != TArray {
			return Type{}, errf(e.Line, 1, "indexing non-array %s", bt)
		}
		it, err := c.expr(e.I)
		if err != nil {
			return Type{}, err
		}
		if it.Kind != TInt {
			return Type{}, errf(e.Line, 1, "array index must be int, got %s", it)
		}
		return Type{Kind: TInt}, nil
	case *AllocExpr:
		si, ok := c.s.structs[e.TypeName]
		if !ok {
			return Type{}, errf(e.Line, 1, "alloc of unknown struct %q", e.TypeName)
		}
		c.s.allocOf[e] = si
		return Type{Kind: TPtr, Elem: e.TypeName}, nil
	case *CallExpr:
		if e.Name == "print" { // builtin
			if len(e.Args) != 1 {
				return Type{}, errf(e.Line, 1, "print takes one argument")
			}
			if _, err := c.expr(e.Args[0]); err != nil {
				return Type{}, err
			}
			return Type{Kind: TVoid}, nil
		}
		fi, ok := c.s.funcs[e.Name]
		if !ok {
			return Type{}, errf(e.Line, 1, "undefined function %q", e.Name)
		}
		c.s.callee[e] = fi
		if len(e.Args) != len(fi.decl.Params) {
			return Type{}, errf(e.Line, 1, "%s takes %d arguments, got %d",
				e.Name, len(fi.decl.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at, err := c.expr(a)
			if err != nil {
				return Type{}, err
			}
			if !assignable(fi.decl.Params[i].Type, at) {
				return Type{}, errf(e.Line, 1, "argument %d: cannot use %s as %s",
					i+1, at, fi.decl.Params[i].Type)
			}
		}
		return fi.decl.Ret, nil
	case *BinExpr:
		lt, err := c.expr(e.L)
		if err != nil {
			return Type{}, err
		}
		rt, err := c.expr(e.R)
		if err != nil {
			return Type{}, err
		}
		switch e.Op {
		case tokAndAnd, tokOrOr:
			if lt.Kind != TBool || rt.Kind != TBool {
				return Type{}, errf(e.Line, 1, "logical op needs bool operands")
			}
			return Type{Kind: TBool}, nil
		case tokEQ, tokNE:
			if lt.Kind == TPtr && rt.Kind == TPtr {
				return Type{Kind: TBool}, nil
			}
			if lt.Kind == rt.Kind && lt.Kind != TArray {
				return Type{Kind: TBool}, nil
			}
			return Type{}, errf(e.Line, 1, "cannot compare %s and %s", lt, rt)
		case tokLT, tokLE, tokGT, tokGE:
			if lt.Kind != TInt || rt.Kind != TInt {
				return Type{}, errf(e.Line, 1, "comparison needs int operands")
			}
			return Type{Kind: TBool}, nil
		default:
			if lt.Kind != TInt || rt.Kind != TInt {
				return Type{}, errf(e.Line, 1, "arithmetic needs int operands, got %s and %s", lt, rt)
			}
			return Type{Kind: TInt}, nil
		}
	case *UnExpr:
		xt, err := c.expr(e.X)
		if err != nil {
			return Type{}, err
		}
		if e.Op == tokBang {
			if xt.Kind != TBool {
				return Type{}, errf(e.Line, 1, "! needs bool")
			}
			return Type{Kind: TBool}, nil
		}
		if xt.Kind != TInt {
			return Type{}, errf(e.Line, 1, "unary - needs int")
		}
		return Type{Kind: TInt}, nil
	}
	return Type{}, errf(0, 0, "unhandled expression %T", e)
}

var _ = fmt.Sprintf
