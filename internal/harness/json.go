package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/tm"
)

// ReportSchema versions the JSON report layout. Bump it when a field
// changes meaning; additions are backward compatible.
const ReportSchema = "repro/bench-report/v1"

// Machine describes where a report was produced, so cross-PR diffs can
// tell a code change from a machine change.
type Machine struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// ResultJSON is one Result flattened for machine consumption: raw
// per-run times plus the aggregates and the counters of the last run.
type ResultJSON struct {
	Bench      string   `json:"bench"`
	Config     string   `json:"config"`
	Engine     string   `json:"engine,omitempty"`
	Threads    int      `json:"threads"`
	TimesNs    []int64  `json:"times_ns"`
	MinNs      int64    `json:"min_ns"`
	MedianNs   int64    `json:"median_ns"`
	MeanNs     int64    `json:"mean_ns"`
	RelStdDev  float64  `json:"rel_std_dev_pct"`
	AbortRatio float64  `json:"abort_ratio"`
	Stats      tm.Stats `json:"stats"`

	// Phases is the per-phase breakdown of the last run; present only
	// for profiles that declare phases (tm.WithPhases).
	Phases []PhaseJSON `json:"phases,omitempty"`

	// Adaptive is the final engine selection per adaptive phase kind;
	// present only under online engine selection (tm.WithAdaptive).
	Adaptive []AdaptiveJSON `json:"adaptive,omitempty"`

	// CM is the contention-management block: the default manager, the
	// kinds whose manager differs, and the wait totals. Present only
	// when non-trivial (a non-backoff manager somewhere, or waits
	// observed); like Latency, its addition does not bump ReportSchema.
	CM *CMJSON `json:"cm,omitempty"`

	// Latency is the open-loop service-time block; present only for
	// results produced by RunOpenLoop. Its addition does not bump
	// ReportSchema: consumers that ignore it read the rest unchanged.
	Latency *LatencyStats `json:"latency,omitempty"`

	// Durability is the redo-log and checkpoint counter block; present
	// only for profiles run under tm.WithDurability. Like Latency, its
	// addition does not bump ReportSchema.
	Durability *DurabilityJSON `json:"durability,omitempty"`
}

// DurabilityJSON flattens tm.DurabilityStats for the report.
type DurabilityJSON struct {
	Records       uint64 `json:"records"`
	LogBytes      uint64 `json:"log_bytes"`
	Batches       uint64 `json:"batches"`
	Fsyncs        uint64 `json:"fsyncs"`
	Segments      uint64 `json:"segments"`
	Checkpoints   uint64 `json:"checkpoints"`
	ChunksWritten uint64 `json:"chunks_written"`
	ChunksDeduped uint64 `json:"chunks_deduped"`
	PackBytes     uint64 `json:"pack_bytes"`
}

// CMJSON flattens a CMResult for the report.
type CMJSON struct {
	Default string       `json:"default"`
	Kinds   []CMKindJSON `json:"kinds,omitempty"`
	Waits   uint64       `json:"waits"`
	WaitNs  uint64       `json:"wait_ns"`
}

// CMKindJSON maps one phase kind to its active contention manager.
type CMKindJSON struct {
	Kind    string `json:"kind"`
	Manager string `json:"manager"`
}

// PhaseJSON is one per-phase statistics row of a result: the phase
// kind ("" = default), the adaptive variant ("" for manual/default
// entries), the engine it compiled to, and its counters.
type PhaseJSON struct {
	Kind    string   `json:"kind"`
	Variant string   `json:"variant,omitempty"`
	Engine  string   `json:"engine"`
	CM      string   `json:"cm,omitempty"`
	Stats   tm.Stats `json:"stats"`
}

// AdaptiveJSON is the final engine selection of one adaptive phase
// kind.
type AdaptiveJSON struct {
	Kind    string `json:"kind"`
	Variant string `json:"variant"`
	Engine  string `json:"engine"`
	CM      string `json:"cm,omitempty"`
}

// Report is the diffable artifact of a benchmark run: results and/or
// capture rows, tagged with the schema and the producing machine.
// Everything in it marshals deterministically (structs and slices, no
// maps), so two reports from identical runs are byte-identical modulo
// the measured times.
type Report struct {
	Schema  string        `json:"schema"`
	Machine Machine       `json:"machine"`
	Results []ResultJSON  `json:"results,omitempty"`
	Capture []CaptureStat `json:"capture,omitempty"`
}

// NewReport wraps results into a Report stamped with this machine.
func NewReport(results []Result) Report {
	rep := Report{
		Schema: ReportSchema,
		Machine: Machine{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
	}
	for _, r := range results {
		rep.Results = append(rep.Results, resultJSON(r))
	}
	return rep
}

func resultJSON(r Result) ResultJSON {
	out := ResultJSON{
		Bench:      r.Bench,
		Config:     r.Config,
		Engine:     r.Engine,
		Threads:    r.Threads,
		AbortRatio: r.Stats.AbortRatio(),
		Stats:      r.Stats,
		Latency:    r.Latency,
	}
	for _, ps := range r.PhaseStats {
		out.Phases = append(out.Phases, PhaseJSON{
			Kind: ps.Kind, Variant: ps.Variant, Engine: ps.Engine, CM: ps.CM, Stats: ps.Stats,
		})
	}
	for _, sel := range r.Adaptive {
		out.Adaptive = append(out.Adaptive, AdaptiveJSON{
			Kind: sel.Kind, Variant: sel.Variant, Engine: sel.Engine, CM: sel.CM,
		})
	}
	if cm := r.CM; cm != nil {
		out.CM = &CMJSON{Default: cm.Default, Waits: cm.Waits, WaitNs: cm.WaitNs}
		for _, k := range cm.Kinds {
			out.CM.Kinds = append(out.CM.Kinds, CMKindJSON{Kind: k.Kind, Manager: k.Manager})
		}
	}
	if d := r.Durability; d != nil {
		out.Durability = &DurabilityJSON{
			Records:       d.Records,
			LogBytes:      d.LogBytes,
			Batches:       d.Batches,
			Fsyncs:        d.Fsyncs,
			Segments:      d.Segments,
			Checkpoints:   d.Checkpoints,
			ChunksWritten: d.ChunksWritten,
			ChunksDeduped: d.ChunksDeduped,
			PackBytes:     d.PackBytes,
		}
	}
	for _, t := range r.Times {
		out.TimesNs = append(out.TimesNs, t.Nanoseconds())
	}
	if len(r.Times) > 0 {
		out.MinNs = r.Min().Nanoseconds()
		out.MedianNs = r.Median().Nanoseconds()
		out.MeanNs = r.Mean().Nanoseconds()
		out.RelStdDev = r.RelStdDev()
	}
	return out
}

// WriteJSON writes the report as indented JSON with a trailing newline.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadJSON parses a report written by WriteJSON (for diff tooling and
// round-trip tests).
func ReadJSON(r io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("harness: parsing report: %w", err)
	}
	return rep, nil
}

// WriteSweep prints a scaling-curve table for human consumption (the
// JSON form of the same data is NewReport + WriteJSON).
func WriteSweep(w io.Writer, results []Result) {
	fmt.Fprintln(w, "Thread sweep (median of runs)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tconfig\tengine\tthreads\tmedian\tmin\taborts/commit")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%v\t%v\t%.2f\n",
			r.Bench, r.Config, r.Engine, r.Threads,
			r.Median().Round(time.Microsecond), r.Min().Round(time.Microsecond),
			r.Stats.AbortRatio())
	}
	tw.Flush()
}
