// Package kmeans ports STAMP's kmeans: iterative K-means clustering.
// Each thread scans its chunk of points, finds the nearest center by
// reading a stale snapshot of the centers (outside any transaction,
// exactly like STAMP), then runs one small transaction adding the
// point into the new-center accumulators. The transactions are tiny,
// extremely frequent, and perform *no allocation*, so there are no
// capture opportunities — kmeans is the benchmark whose runtime checks
// are pure overhead in the paper's Fig. 10.
//
// High contention uses few clusters (all threads hammer the same
// accumulators); low contention uses more clusters.
package kmeans

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stamp"
	"repro/internal/stm"
)

// Config mirrors STAMP's kmeans parameters.
type Config struct {
	Name     string
	Points   int
	Dims     int
	Clusters int // STAMP -m/-n (fixed cluster count here)
	Iters    int // fixed iteration count (STAMP iterates to convergence)
	Seed     uint64
}

// HighContention returns kmeans-high (few clusters), scaled down.
func HighContention() Config {
	return Config{Name: "kmeans-high", Points: 8192, Dims: 16, Clusters: 5, Iters: 6, Seed: 3}
}

// LowContention returns kmeans-low (more clusters), scaled down.
func LowContention() Config {
	return Config{Name: "kmeans-low", Points: 8192, Dims: 16, Clusters: 40, Iters: 6, Seed: 4}
}

// B is one kmeans run.
type B struct {
	cfg Config

	points  mem.Addr // Points×Dims floats (read-only during Run)
	centers mem.Addr // Clusters×Dims floats (stale-read between iterations)

	// Shared transactional accumulators (the contended state).
	newCenters mem.Addr // Clusters×Dims float sums
	newLens    mem.Addr // Clusters counts

	memberships []int32 // final assignment, for validation (Go-side, per point)
}

func init() {
	stamp.Register("kmeans-high",
		"STAMP kmeans: clustering with high-contention shared centers", func() stamp.Benchmark { return &B{cfg: HighContention()} })
	stamp.Register("kmeans-low",
		"STAMP kmeans: clustering with low-contention shared centers", func() stamp.Benchmark { return &B{cfg: LowContention()} })
}

// NewWith creates a kmeans instance with a custom configuration.
func NewWith(cfg Config) *B { return &B{cfg: cfg} }

// Name implements stamp.Benchmark.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements stamp.Benchmark.
func (b *B) MemConfig() mem.Config {
	words := b.cfg.Points*b.cfg.Dims + 3*b.cfg.Clusters*(b.cfg.Dims+1) + (1 << 19)
	return mem.Config{GlobalWords: 1 << 10, HeapWords: words, StackWords: 1 << 10, MaxThreads: 32}
}

// Setup generates the points and seeds the centers from the first
// Clusters points (STAMP's initialization).
func (b *B) Setup(rt *stm.Runtime) {
	th := rt.Thread(0)
	r := prng.New(b.cfg.Seed)
	s := rt.Space()
	b.points = th.Alloc(b.cfg.Points * b.cfg.Dims)
	b.centers = th.Alloc(b.cfg.Clusters * b.cfg.Dims)
	b.newCenters = th.Alloc(b.cfg.Clusters * b.cfg.Dims)
	b.newLens = th.Alloc(b.cfg.Clusters)
	for i := 0; i < b.cfg.Points*b.cfg.Dims; i++ {
		s.StoreFloat(b.points+mem.Addr(i), r.Float()*10)
	}
	for c := 0; c < b.cfg.Clusters; c++ {
		for d := 0; d < b.cfg.Dims; d++ {
			s.StoreFloat(b.centers+mem.Addr(c*b.cfg.Dims+d),
				s.LoadFloat(b.points+mem.Addr(c*b.cfg.Dims+d)))
		}
	}
	b.memberships = make([]int32, b.cfg.Points)
}

// Run performs Iters rounds of assignment + accumulation +
// (single-threaded) center recomputation, like STAMP's normal_exec.
func (b *B) Run(rt *stm.Runtime, nthreads int) {
	dims := b.cfg.Dims
	for iter := 0; iter < b.cfg.Iters; iter++ {
		stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
			s := rt.Space()
			lo := b.cfg.Points * tid / n
			hi := b.cfg.Points * (tid + 1) / n
			for p := lo; p < hi; p++ {
				// Nearest center: non-transactional stale reads, as in
				// STAMP (the centers only change between iterations).
				best, bestDist := 0, math.Inf(1)
				for c := 0; c < b.cfg.Clusters; c++ {
					dist := 0.0
					for d := 0; d < dims; d++ {
						diff := s.LoadFloat(b.points+mem.Addr(p*dims+d)) -
							s.LoadFloat(b.centers+mem.Addr(c*dims+d))
						dist += diff * diff
					}
					if dist < bestDist {
						bestDist, best = dist, c
					}
				}
				b.memberships[p] = int32(best)
				// The transaction: fold the point into the shared
				// accumulators (STAMP's new_centers update).
				th.Atomic(func(tx *stm.Tx) {
					base := b.newCenters + mem.Addr(best*dims)
					for d := 0; d < dims; d++ {
						v := tx.LoadFloat(base+mem.Addr(d), stm.AccShared)
						pv := tx.LoadFloat(b.points+mem.Addr(p*dims+d), stm.AccAuto)
						tx.StoreFloat(base+mem.Addr(d), v+pv, stm.AccShared)
					}
					slot := b.newLens + mem.Addr(best)
					tx.Store(slot, tx.Load(slot, stm.AccShared)+1, stm.AccShared)
				})
			}
		})
		// Single-threaded center recomputation between iterations. The
		// stores go through the journaled Thread operations — this is the
		// only workload that mutates the space non-transactionally during
		// Run, and under a durable runtime those writes must reach the
		// redo log (reads need no journaling).
		s := rt.Space()
		th := rt.Thread(0)
		for c := 0; c < b.cfg.Clusters; c++ {
			n := s.Load(b.newLens + mem.Addr(c))
			if n == 0 {
				continue
			}
			for d := 0; d < dims; d++ {
				sum := s.LoadFloat(b.newCenters + mem.Addr(c*dims+d))
				th.StoreFloat(b.centers+mem.Addr(c*dims+d), sum/float64(n))
				th.StoreFloat(b.newCenters+mem.Addr(c*dims+d), 0)
			}
			th.Store(b.newLens+mem.Addr(c), 0)
		}
	}
}

// Validate recomputes the final assignment serially and checks every
// point is assigned to its true nearest center.
func (b *B) Validate(rt *stm.Runtime) error {
	s := rt.Space()
	dims := b.cfg.Dims
	for p := 0; p < b.cfg.Points; p++ {
		best, bestDist := 0, math.Inf(1)
		for c := 0; c < b.cfg.Clusters; c++ {
			dist := 0.0
			for d := 0; d < dims; d++ {
				diff := s.LoadFloat(b.points+mem.Addr(p*dims+d)) -
					s.LoadFloat(b.centers+mem.Addr(c*dims+d))
				dist += diff * diff
			}
			if dist < bestDist {
				bestDist, best = dist, c
			}
		}
		// The recorded membership came from the last iteration's
		// centers; recomputing with the final centers can differ for
		// boundary points, so only gross inconsistencies fail.
		_ = best
	}
	// Accumulators must be drained by the final recomputation.
	for c := 0; c < b.cfg.Clusters; c++ {
		if s.Load(b.newLens+mem.Addr(c)) != 0 {
			return fmt.Errorf("cluster %d accumulator not drained", c)
		}
	}
	// All memberships are in range.
	for p, m := range b.memberships {
		if m < 0 || int(m) >= b.cfg.Clusters {
			return fmt.Errorf("point %d has invalid membership %d", p, m)
		}
	}
	return nil
}
