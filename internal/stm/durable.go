package stm

import (
	"math"

	"repro/internal/mem"
	"repro/internal/wal"
)

// Durability glue: when a redo log is attached (SetDurable), the
// lifecycle layer serializes the effects of every state-changing event
// into wal records. The contract is word-for-word: replaying the log
// over a checkpoint must reproduce the exact space image — including
// the "garbage" an abort leaves in freed blocks and popped stack
// frames, because mem.Space.Checksum covers every word.
//
// Coverage argument. Every word a transaction attempt changes is in at
// least one of:
//
//   - the undo log: writeFull always logs before storing, annotated
//     private writes log (without locking), and captured stores log at
//     nesting depth > 1;
//   - a block in the allocation log (captured stores at depth 1 —
//     including compiler-elided ones, whose provenance confines them to
//     captured memory);
//   - the transaction-local stack region [curSP, startSP) — curSP only
//     decreases within an attempt, so the range also covers frames a
//     partial abort popped.
//
// Record build therefore reads the *current* space at the undo-logged
// addresses and dumps the alloc blocks and stack region verbatim; every
// source is either orec-locked by us or thread-private at that point,
// so the reads are race-free.
//
// Ordering argument. A commit or abort record is enqueued (assigning
// its log position under the log mutex) after the undo replay /
// validation but *before* the ownership records are released, so no
// conflicting transaction can obtain a later position with an earlier
// conflict order. A nested partial abort also releases orecs, so it
// emits its replayed undo range as its own record at the same point —
// deferring those words to the top-level record would let a foreign
// commit slip between the nested release and our top-level record and
// then be overwritten at replay. Thread-private residue (alloc block
// contents, stack scribbles) cannot race foreign commits and is
// covered once, by the top-level record.
//
// Commit durability: commitTop waits for the group-commit ack after
// releasing ownership and draining limbo, so the fsync wait overlaps
// other threads' progress. Aborts never wait.

// SetDurable attaches (or detaches, with nil) the redo log. Must be
// called before worker threads run. With no log attached every hook
// below is a single nil check.
func (rt *Runtime) SetDurable(l *wal.Log) { rt.durable = l }

// Durable returns the attached redo log, or nil.
func (rt *Runtime) Durable() *wal.Log { return rt.durable }

// Clock reads the global version clock (for checkpoint manifests).
func (rt *Runtime) Clock() uint64 { return rt.clock.Load() }

// SetClock restores the global version clock during recovery. The orec
// table of a recovered runtime is fresh (all version 0), so any clock
// at or above the highest logged version is consistent.
func (rt *Runtime) SetClock(v uint64) { rt.clock.Store(v) }

// StoreFloat writes a float64 word non-transactionally, journaling it
// like Store when durable.
func (th *Thread) StoreFloat(a mem.Addr, f float64) {
	th.Store(a, math.Float64bits(f))
}

// journal appends a KindNonTx record covering [addr, addr+n) with the
// space's current contents. Non-transactional mutations must journal
// eagerly, one record per operation: buffering per thread would break
// cross-thread ordering (a barrier-synchronized writer's reset must
// reach the log before other threads' subsequent commits).
func (th *Thread) journal(addr mem.Addr, n int) {
	rt := th.rt
	rec := &th.drec
	rec.Kind = wal.KindNonTx
	rec.Version = rt.clock.Load()
	rec.GlobalsNext = rt.space.GlobalsNext()
	rec.HeapNext = rt.space.HeapNext()
	if cap(th.dvals) < n {
		th.dvals = make([]uint64, 0, n)
	}
	vals := th.dvals[:n]
	for i := 0; i < n; i++ {
		vals[i] = rt.space.Load(addr + mem.Addr(i))
	}
	rec.Spans = append(rec.Spans[:0], wal.Span{Addr: uint64(addr), Vals: vals})
	rt.durable.Append(rec) // ack ignored: Sync/Close surface sticky errors
}

// durableDirty reports whether a transaction with no acquired orecs
// still changed memory: annotated-private writes (undo without locks),
// allocations, or stack growth.
func (tx *Tx) durableDirty() bool {
	return len(tx.undo) > 0 || len(tx.allocs) > 0 || tx.curSP != tx.startSP
}

// durableCommit emits the top-level commit record and returns the
// group-commit ack to wait on.
func (tx *Tx) durableCommit(version uint64) wal.Ack {
	return tx.emitDurable(wal.KindCommit, version, 0, 0, true)
}

// durableAbort emits the top-level abort record: the undo-restored
// values plus the thread-private residue of the failed attempt.
func (tx *Tx) durableAbort() {
	tx.emitDurable(wal.KindAbort, tx.th.rt.clock.Load(), 0, 0, true)
}

// durableNestedAbort emits the partial abort's record: the replayed
// undo range plus the scope's allocation blocks, whose zeroed contents
// and headers vanish from tx.allocs when the scope truncates. Called
// after the replay and before the scope's ownership records are
// released.
func (tx *Tx) durableNestedAbort(undoFrom, allocFrom int) {
	if undoFrom >= len(tx.undo) && allocFrom >= len(tx.allocs) {
		return
	}
	tx.emitDurable(wal.KindAbort, tx.th.rt.clock.Load(), undoFrom, allocFrom, false)
}

// emitDurable builds and enqueues one record covering the undo entries
// at or above undoFrom (current space values) and the allocation-log
// blocks at or above allocFrom — dead ones included: an in-transaction
// free changes no words, and if the block was recycled by a later Alloc
// of the same transaction both spans read the same current contents.
// With withStack set (top-level records) it also dumps the stack region
// [curSP, startSP). Values are carved out of one pre-sized scratch
// buffer so the span slices stay valid while the log copies them.
func (tx *Tx) emitDurable(kind wal.Kind, version uint64, undoFrom, allocFrom int, withStack bool) wal.Ack {
	th := tx.th
	rt := th.rt
	space := rt.space
	rec := &th.drec
	rec.Kind = kind
	rec.Version = version
	rec.GlobalsNext = space.GlobalsNext()
	rec.HeapNext = space.HeapNext()

	need := len(tx.undo) - undoFrom
	for i := allocFrom; i < len(tx.allocs); i++ {
		need += tx.allocs[i].size + 1 // header word at addr-1
	}
	stackWords := 0
	if withStack {
		stackWords = int(tx.startSP - tx.curSP)
		need += stackWords
	}
	if cap(th.dvals) < need {
		th.dvals = make([]uint64, 0, need)
	}
	vals := th.dvals[:0]
	spans := rec.Spans[:0]

	carve := func(addr mem.Addr, n int) {
		start := len(vals)
		for i := 0; i < n; i++ {
			vals = append(vals, space.Load(addr+mem.Addr(i)))
		}
		spans = append(spans, wal.Span{Addr: uint64(addr), Vals: vals[start:len(vals):len(vals)]})
	}

	for i := undoFrom; i < len(tx.undo); i++ {
		carve(tx.undo[i].addr, 1)
	}
	for i := allocFrom; i < len(tx.allocs); i++ {
		a := &tx.allocs[i]
		carve(a.addr-1, a.size+1)
	}
	if stackWords > 0 {
		carve(tx.curSP, stackWords)
	}
	rec.Spans = spans
	th.dvals = vals[:0]
	ack, _ := rt.durable.Append(rec) // sticky errors surface at Sync/Close
	return ack
}
