package labyrinth

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/stm"
)

func small() Config { return Config{Name: "labyrinth-test", X: 12, Y: 12, Z: 2, Pairs: 20, Seed: 3} }

func runOne(t *testing.T, cfg Config, opt stm.OptConfig, threads int) (*B, *stm.Runtime) {
	t.Helper()
	b := NewWith(cfg)
	rt := stm.New(b.MemConfig(), opt)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("validate: %v", err)
	}
	rt.Validate()
	return b, rt
}

func TestSerialRoutesAll(t *testing.T) {
	b, _ := runOne(t, small(), stm.Baseline(), 1)
	// On an empty grid with few pairs, serial routing should succeed
	// for nearly every pair (later pairs can be walled in).
	if len(b.routed) == 0 {
		t.Fatal("no pairs routed")
	}
	for _, p := range b.routed {
		if len(p) < 1 {
			t.Error("empty path recorded")
		}
	}
}

func TestParallelRoutingDisjoint(t *testing.T) {
	for _, threads := range []int{2, 8} {
		b, rt := runOne(t, small(), stm.RuntimeAll(capture.KindTree), threads)
		_ = b
		_ = rt
	}
}

func TestPathEndpointsMatchPairs(t *testing.T) {
	b, _ := runOne(t, small(), stm.Baseline(), 2)
	for k, path := range b.routed {
		id := int(b.ids[k]) - 2
		src, dst := b.pairs[id][0], b.pairs[id][1]
		// traceback builds dst→src.
		if path[0] != dst || path[len(path)-1] != src {
			t.Errorf("path %d endpoints %v..%v, want %v..%v",
				id, path[0], path[len(path)-1], dst, src)
		}
	}
}

// TestGridFullContention: many pairs on a tiny grid force failures and
// conflicts; the accounting must still add up.
func TestGridFullContention(t *testing.T) {
	cfg := Config{Name: "cramped", X: 6, Y: 6, Z: 1, Pairs: 17, Seed: 9}
	b, _ := runOne(t, cfg, stm.Baseline(), 4)
	if len(b.routed)+b.failed != cfg.Pairs {
		t.Errorf("routed %d + failed %d != %d", len(b.routed), b.failed, cfg.Pairs)
	}
	if b.failed == 0 {
		t.Log("note: all pairs routed even on cramped grid")
	}
}
