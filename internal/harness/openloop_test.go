package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/tm"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/scenarios/tmmsg"
)

func TestQuantileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}, {1.0, 100},
	}
	for _, c := range cases {
		if got := quantileNs(sorted, c.q); got != c.want {
			t.Errorf("q%.2f = %d, want %d", c.q, got, c.want)
		}
	}
	if got := quantileNs([]int64{42}, 0.99); got != 42 {
		t.Errorf("single sample = %d", got)
	}
	if got := quantileNs(nil, 0.5); got != 0 {
		t.Errorf("empty sample = %d", got)
	}
}

func TestLatencyReportRoundTrip(t *testing.T) {
	with := Result{
		Bench: "srv-tmkv", Config: "baseline+mw4@50000rps", Engine: "perf-noinstr", Threads: 2,
		Times: []time.Duration{time.Second},
		Stats: tm.Stats{Commits: 10},
		Latency: &LatencyStats{
			OfferedRPS: 50000, AchievedRPS: 49000,
			P50Ns: 1000, P95Ns: 5000, P99Ns: 9000, MaxNs: 12000,
			Requests: 1024, MergedReplies: 900, MergeWidth: 4, Clients: 4,
			MergeRatio: 3.5, Batches: 300, MergedBatches: 280, Txns: 320,
		},
	}
	without := Result{
		Bench: "tmkv", Config: "baseline", Engine: "perf-noinstr", Threads: 2,
		Times: []time.Duration{time.Second}, Stats: tm.Stats{Commits: 10},
	}
	rep := NewReport([]Result{with, without})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"latency"`, `"p95_ns"`, `"p99_ns"`, `"offered_rps"`, `"merge_ratio"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("report missing %s", key)
		}
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rep) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", back, rep)
	}
	if back.Results[0].Latency == nil || back.Results[0].Latency.P95Ns != 5000 {
		t.Errorf("latency block lost: %+v", back.Results[0].Latency)
	}
	// The block must be absent, not zero-valued, on throughput rows.
	var raw struct {
		Results []map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.Results[1]["latency"]; ok {
		t.Error("throughput row carries a latency block")
	}
}

// TestRunOpenLoop drives a small open-loop run end to end over the
// served KV backend and checks the latency block is self-consistent.
func TestRunOpenLoop(t *testing.T) {
	spec := OpenLoopSpec{
		Backend:    "srv-tmkv",
		Profile:    tm.RuntimeAll(tm.LogTree),
		Workers:    2,
		MergeWidth: 4,
		Clients:    4,
		Rate:       200_000,
		Requests:   512,
		Seed:       7,
	}
	res, err := RunOpenLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bench != "srv-tmkv" || res.Threads != 2 {
		t.Errorf("result key = %s/%d", res.Bench, res.Threads)
	}
	if want := "runtime-rw-stack-heap-tree+mw4@200000rps"; res.Config != want {
		t.Errorf("config = %q, want %q", res.Config, want)
	}
	l := res.Latency
	if l == nil {
		t.Fatal("no latency block")
	}
	if l.Requests != 512 || l.MergeWidth != 4 || l.Clients != 4 || l.OfferedRPS != 200_000 {
		t.Errorf("spec echo drifted: %+v", l)
	}
	if l.P50Ns <= 0 || l.P95Ns < l.P50Ns || l.P99Ns < l.P95Ns || l.MaxNs < l.P99Ns {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d max=%d", l.P50Ns, l.P95Ns, l.P99Ns, l.MaxNs)
	}
	if l.AchievedRPS <= 0 {
		t.Errorf("achieved rps = %v", l.AchievedRPS)
	}
	if l.Txns == 0 || l.MergeRatio < 1 {
		t.Errorf("merge counters: txns=%d ratio=%v", l.Txns, l.MergeRatio)
	}
	if l.MergedReplies > l.Requests || l.Aborted != 0 {
		t.Errorf("reply counters: merged=%d aborted=%d", l.MergedReplies, l.Aborted)
	}
	if res.Stats.Commits == 0 {
		t.Error("no commits recorded")
	}
	var buf bytes.Buffer
	WriteLatencyTable(&buf, []Result{res})
	if !strings.Contains(buf.String(), "srv-tmkv") || !strings.Contains(buf.String(), "mw4") {
		t.Errorf("latency table:\n%s", buf.String())
	}
}

// TestRunOpenLoopUnpaced: Rate<=0 is peak stress — every request
// scheduled at the start — and the config string says so.
func TestRunOpenLoopUnpaced(t *testing.T) {
	res, err := RunOpenLoop(OpenLoopSpec{
		Backend:    "srv-tmmsg",
		Profile:    tm.Baseline().Perf(),
		Workers:    2,
		MergeWidth: 8,
		Clients:    2,
		Requests:   256,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "baseline+mw8@peak"; res.Config != want {
		t.Errorf("config = %q, want %q", res.Config, want)
	}
	if res.Latency.OfferedRPS != 0 {
		t.Errorf("offered rps = %v, want 0 (unpaced)", res.Latency.OfferedRPS)
	}
	if res.Latency.Requests != 256 {
		t.Errorf("requests = %d", res.Latency.Requests)
	}
}

func TestRunOpenLoopUnknownBackend(t *testing.T) {
	if _, err := RunOpenLoop(OpenLoopSpec{Backend: "no-such-backend", Profile: tm.Baseline()}); err == nil {
		t.Fatal("expected error for unknown backend")
	}
}
