package harness

// Open-loop latency measurement over the serving front-end (tm/serve):
// where Run times a fixed op count executed flat-out, RunOpenLoop
// offers load at a configured rate from a Poisson client population
// and reports the service-time distribution — the latency view of the
// same captured-memory story the throughput harness tells. Merging
// compatible requests into one transaction (tm.Batcher) amortizes
// commit work and assembles replies in captured stack blocks, so the
// p95/p99 columns and the elision counters move together.

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"repro/tm"
	"repro/tm/serve"
)

// OpenLoopSpec configures one open-loop measurement point: a serve
// backend under a profile, a server shape, and an offered load.
type OpenLoopSpec struct {
	Backend    string     // serve registry name ("srv-tmkv", "srv-tmmsg")
	Profile    tm.Profile // runtime options; memory comes from the backend
	Workers    int        // server worker pool; <1 = NumCPU
	MergeWidth int        // max requests merged per transaction; <1 = 1
	Clients    int        // issuing goroutines; <1 = 4
	Rate       float64    // offered requests/sec; <=0 = unpaced (peak stress)
	Requests   int        // total requests; <1 = 1
	Seed       uint64     // drives interarrivals and the request stream

	// CM selects a runtime-wide contention manager ("" keeps the
	// profile's default). Applied via tm.WithContention, it is the
	// manager arm of the served A/B: without Phases the whole runtime
	// resolves conflicts through the named manager, so the p95/p99 delta
	// between arms isolates the policy.
	CM tm.CM

	// Phases overlays the canonical hand-tuned per-phase engine
	// declaration (PhaseRegimeSpecs) on the profile — the hinted arm of
	// the adaptive/hinted/single-engine A/B.
	Phases bool
	// Adaptive turns on the runtime's online selection instead: adaptive
	// per-phase engines (tm.WithAdaptive) and adaptive merge width
	// (MergeWidth becomes the ceiling, each worker starting at width 1).
	Adaptive bool
	// AdaptiveEpoch overrides the engine-selection sampling window
	// (0 = the stm default). Only meaningful with Adaptive.
	AdaptiveEpoch int
}

// LatencyStats is the open-loop block of a result: the service-time
// quantiles, the offered and achieved load, and the merge counters
// that explain them. All quantiles are nearest-rank over the full
// per-request population (latency measured from *scheduled* arrival,
// so queueing delay behind a stall is charged, not omitted).
type LatencyStats struct {
	OfferedRPS    float64 `json:"offered_rps"`  // 0 = unpaced
	AchievedRPS   float64 `json:"achieved_rps"` // completed / wall time
	P50Ns         int64   `json:"p50_ns"`
	P95Ns         int64   `json:"p95_ns"`
	P99Ns         int64   `json:"p99_ns"`
	MaxNs         int64   `json:"max_ns"`
	Requests      int     `json:"requests"`
	Aborted       int     `json:"aborted"`        // Apply refused (after fallback)
	MergedReplies int     `json:"merged_replies"` // served from merged transactions
	MergeWidth    int     `json:"merge_width"`
	Clients       int     `json:"clients"`
	MergeRatio    float64 `json:"merge_ratio"` // requests per transaction
	Batches       uint64  `json:"batches"`
	MergedBatches uint64  `json:"merged_batches"`
	Fallbacks     uint64  `json:"fallbacks"`
	Txns          uint64  `json:"txns"`

	// Adaptive-width trajectory (present only under OpenLoopSpec.Adaptive).
	WidthGrows   uint64 `json:"width_grows,omitempty"`
	WidthShrinks uint64 `json:"width_shrinks,omitempty"`
	FinalWidths  []int  `json:"final_widths,omitempty"` // per worker, after Stop
}

// RunOpenLoop builds a server over the named backend, drives the
// open-loop population to completion, validates the runtime, and
// returns a Result whose Latency block is populated. The Config string
// encodes profile, merge width, and offered load, so every sweep point
// is a distinct (bench, config, engine, threads) key to benchdiff.
func RunOpenLoop(spec OpenLoopSpec) (Result, error) {
	if spec.Workers < 1 {
		spec.Workers = runtime.NumCPU()
	}
	if spec.MergeWidth < 1 {
		spec.MergeWidth = 1
	}
	if spec.Clients < 1 {
		spec.Clients = 4
	}
	if spec.Requests < 1 {
		spec.Requests = 1
	}
	res := Result{Bench: spec.Backend, Config: openLoopConfig(spec), Threads: spec.Workers}
	be, err := serve.New(spec.Backend)
	if err != nil {
		return res, err
	}
	profile := spec.Profile
	if spec.CM != "" {
		profile = profile.With(tm.WithContention(spec.CM))
	}
	if spec.Phases {
		profile = profile.With(tm.WithPhases(PhaseRegimeSpecs()...))
	}
	if spec.Adaptive {
		profile = profile.With(tm.WithAdaptive(tm.AdaptiveConfig{Epoch: spec.AdaptiveEpoch}))
	}
	srv := serve.NewServer(be, serve.Config{
		Workers:       spec.Workers,
		MergeWidth:    spec.MergeWidth,
		AdaptiveWidth: spec.Adaptive,
		Requests:      spec.Requests,
		Options:       profile.Options(),
	})
	rt := srv.Runtime()
	res.Engine = rt.Engine()
	rt.ResetStats() // report the served phase only, not Setup's preload
	srv.Start()
	olr := srv.RunOpenLoop(serve.OpenLoop{
		Clients:  spec.Clients,
		Rate:     spec.Rate,
		Requests: spec.Requests,
		Seed:     spec.Seed,
	})
	if err := srv.Stop(); err != nil {
		return res, fmt.Errorf("open-loop %s: stopping server: %w", spec.Backend, err)
	}
	// Snapshot after the workers joined but before Validate, like Run:
	// validation must not leak into the reported counters. Counter reads
	// (and durability stats) stay valid after Stop's runtime Close.
	snap := rt.Snapshot()
	res.Times = []time.Duration{time.Duration(olr.ElapsedNs)}
	res.Stats = snap.Stats
	res.Durability = snap.Durability
	if len(rt.Phases()) > 0 {
		res.PhaseStats = snap.Phases
	}
	res.Adaptive = snap.Adaptive
	res.CM = cmResult(snap)
	rt.Validate() // panics on a leaked orec — merged txns must release all
	res.Latency = newLatencyStats(spec, olr, srv.BatchStats())
	if spec.Adaptive {
		res.Latency.FinalWidths = srv.Widths()
	}
	return res, nil
}

func openLoopConfig(spec OpenLoopSpec) string {
	load := "peak"
	if spec.Rate > 0 {
		// Fixed notation, not %g: a 1e6 rate must key as "1000000rps",
		// never "1e+06rps", or benchdiff baseline matching breaks at
		// high-rate grid points.
		load = strconv.FormatFloat(spec.Rate, 'f', -1, 64) + "rps"
	}
	name := spec.Profile.Name()
	if spec.CM != "" {
		name += "+cm" + spec.CM
	}
	if spec.Phases {
		name += "+phases"
	}
	mw := fmt.Sprintf("mw%d", spec.MergeWidth)
	if spec.Adaptive {
		// Adaptive selects engines and width online: the key must not
		// collide with the fixed-width, fixed-engine point of the same
		// profile.
		name += "+adaptive"
		mw = fmt.Sprintf("amw%d", spec.MergeWidth)
	}
	return fmt.Sprintf("%s+%s@%s", name, mw, load)
}

func newLatencyStats(spec OpenLoopSpec, olr serve.OpenLoopResult, bs tm.BatchStats) *LatencyStats {
	sorted := append([]int64(nil), olr.LatenciesNs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ls := &LatencyStats{
		AchievedRPS:   olr.AchievedRPS(),
		P50Ns:         quantileNs(sorted, 0.50),
		P95Ns:         quantileNs(sorted, 0.95),
		P99Ns:         quantileNs(sorted, 0.99),
		Requests:      olr.Requests,
		Aborted:       olr.Aborted,
		MergedReplies: olr.MergedReplies,
		MergeWidth:    spec.MergeWidth,
		Clients:       spec.Clients,
		MergeRatio:    bs.MergeRatio(),
		Batches:       bs.Batches,
		MergedBatches: bs.Merged,
		Fallbacks:     bs.Fallbacks,
		Txns:          bs.Txns,
		WidthGrows:    bs.WidthGrows,
		WidthShrinks:  bs.WidthShrinks,
	}
	if spec.Rate > 0 {
		ls.OfferedRPS = spec.Rate
	}
	if n := len(sorted); n > 0 {
		ls.MaxNs = sorted[n-1]
	}
	return ls
}

// quantileNs returns the nearest-rank q-quantile of an ascending
// sample: the smallest value with at least q·n observations at or
// below it. No interpolation — a reported p99 is a latency some
// request actually experienced.
func quantileNs(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteLatencyTable prints the open-loop results as a human-readable
// table, one row per measurement point (the JSON form of the same
// data is NewReport + WriteJSON). Results without a Latency block are
// skipped.
func WriteLatencyTable(w io.Writer, results []Result) {
	fmt.Fprintln(w, "Open-loop latency (per-request, from scheduled arrival)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tconfig\tengine\tworkers\toffered\tachieved\tp50\tp95\tp99\tmerge\tfallbacks")
	for _, r := range results {
		l := r.Latency
		if l == nil {
			continue
		}
		offered := "peak"
		if l.OfferedRPS > 0 {
			offered = fmt.Sprintf("%.0f/s", l.OfferedRPS)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%.0f/s\t%v\t%v\t%v\t%.2fx\t%d\n",
			r.Bench, r.Config, r.Engine, r.Threads, offered, l.AchievedRPS,
			time.Duration(l.P50Ns).Round(time.Microsecond),
			time.Duration(l.P95Ns).Round(time.Microsecond),
			time.Duration(l.P99Ns).Round(time.Microsecond),
			l.MergeRatio, l.Fallbacks)
	}
	tw.Flush()
}
