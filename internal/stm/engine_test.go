package stm

import (
	"reflect"
	"testing"

	"repro/internal/capture"
	"repro/internal/mem"
)

// TestEngineSelection pins the profile → engine compilation: every
// instrumented profile uses the counting chain, perf profiles compile
// to their specialization, and the force knob always yields generic.
func TestEngineSelection(t *testing.T) {
	cases := []struct {
		name string
		cfg  OptConfig
		want string
	}{
		{"baseline", Baseline(), "counting"},
		{"counting", CountingConfig(), "counting"},
		{"runtime-tree", RuntimeAll(capture.KindTree), "counting"},
		{"baseline-perf", Baseline().Perf(), "perf-noinstr"},
		{"runtime-tree-perf", RuntimeAll(capture.KindTree).Perf(), "perf-rw-stack-heap-tree"},
		{"runtime-array-perf", RuntimeAll(capture.KindArray).Perf(), "perf-rw-stack-heap-array"},
		{"runtime-filter-perf", RuntimeAll(capture.KindFilter).Perf(), "perf-rw-stack-heap-filter"},
		{"write-only-perf", RuntimeWrite(capture.KindTree).Perf(), "perf-w-stack-heap-tree"},
		{"heap-write-perf", RuntimeHeapWrite(capture.KindArray).Perf(), "perf-w-heap-array"},
		{"compiler-perf", Compiler().Perf(), "perf-compiler"},
	}
	for _, c := range cases {
		if got := newEngine(c.cfg).name; got != c.want {
			t.Errorf("%s: engine %q, want %q", c.name, got, c.want)
		}
	}

	forced := RuntimeAll(capture.KindTree).Perf()
	forced.ForceGeneric = true
	if got := newEngine(forced).name; got != "generic" {
		t.Errorf("forced: engine %q, want generic", got)
	}

	// Debug oracles under PerfMode fall back to the reference chain.
	dbg := CountingConfig().Perf()
	if got := newEngine(dbg).name; got != "generic" {
		t.Errorf("perf+counting: engine %q, want generic", got)
	}

	// Combinations compose prologues onto the specialized core.
	combo := RuntimeAll(capture.KindTree).Perf()
	combo.Compiler = true
	combo.SkipSharedChecks = true
	if got := newEngine(combo).name; got != "perf-compiler+rw-stack-heap-tree+skipshared" {
		t.Errorf("combo: engine %q", got)
	}

	// Annotations have no flat specialization: stats-free chain.
	ann := RuntimeAll(capture.KindTree).Perf()
	ann.Annotations = true
	if got := newEngine(ann).name; got != "perf-mixed" {
		t.Errorf("annotations: engine %q, want perf-mixed", got)
	}

	// The read-mostly family: one name per statistics mode, the upgrade
	// target compiled from the same profile with the knob off, and the
	// debug oracles (forced generic, counting) winning over the knob.
	rm := RuntimeAll(capture.KindTree).Perf()
	rm.ReadMostly = true
	e := newEngine(rm)
	if e.name != "perf-readmostly" {
		t.Errorf("readmostly-perf: engine %q, want perf-readmostly", e.name)
	}
	if e.up == nil || e.up.name != "perf-rw-stack-heap-tree" {
		t.Errorf("readmostly-perf upgrade target = %+v", e.up)
	}
	rmStats := rm
	rmStats.PerfMode = false
	e = newEngine(rmStats)
	if e.name != "readmostly" {
		t.Errorf("readmostly: engine %q, want readmostly", e.name)
	}
	if e.up == nil || e.up.name != "counting" {
		t.Errorf("readmostly upgrade target = %+v", e.up)
	}
	rmForced := rm
	rmForced.ForceGeneric = true
	if got := newEngine(rmForced).name; got != "generic" {
		t.Errorf("readmostly+forced: engine %q, want generic", got)
	}
	rmCount := rmStats
	rmCount.Counting = true
	if got := newEngine(rmCount).name; got != "counting" {
		t.Errorf("readmostly+counting: engine %q, want counting", got)
	}
}

// engineScenario drives one deterministic transaction mix touching
// every barrier mechanism: shared reads/writes, fresh heap blocks,
// stack frames, read-after-write, a user abort, and a nested partial
// abort. It returns the final global values.
func engineScenario(t *testing.T, cfg OptConfig) ([]uint64, Stats) {
	t.Helper()
	rt := newRT(cfg)
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(4)
	th.Atomic(func(tx *Tx) {
		p := tx.Alloc(4)
		tx.Store(p, 5, AccFresh)
		tx.Store(p+1, tx.Load(p, AccFresh)+1, AccLocal)
		f := tx.StackAlloc(2)
		tx.Store(f, 9, AccStack)
		tx.Store(g, tx.Load(f, AccStack), AccShared)
		tx.Store(g+1, tx.Load(p+1, AccAuto), AccAuto)
	})
	th.Atomic(func(tx *Tx) {
		tx.Store(g+2, 77, AccShared)
		tx.UserAbort()
	})
	th.Atomic(func(tx *Tx) {
		tx.Store(g+2, 100, AccShared)
		th.Atomic(func(tx2 *Tx) {
			tx2.Store(g+3, 200, AccShared)
			tx2.UserAbort()
		})
	})
	rt.Validate()
	out := make([]uint64, 4)
	for i := range out {
		out[i] = rt.Space().Load(g + mem.Addr(i))
	}
	return out, rt.Stats()
}

// TestEnginesAgreeWithGeneric runs the scenario under every profile
// twice — specialized engine vs forced generic — and demands identical
// memory effects and identical statistics.
func TestEnginesAgreeWithGeneric(t *testing.T) {
	profiles := allConfigs()
	for _, base := range allConfigs() {
		profiles = append(profiles, base.Perf())
	}
	skipCfg := RuntimeAll(capture.KindTree)
	skipCfg.SkipSharedChecks = true
	skipCfg.Name = "runtime+skipshared"
	profiles = append(profiles, skipCfg, skipCfg.Perf())
	for _, cfg := range profiles {
		name := cfg.Name
		if cfg.PerfMode {
			name += "-perf"
		}
		t.Run(name, func(t *testing.T) {
			gen := cfg
			gen.ForceGeneric = true
			wantVals, wantStats := engineScenario(t, gen)
			gotVals, gotStats := engineScenario(t, cfg)
			if !reflect.DeepEqual(gotVals, wantVals) {
				t.Errorf("engine %q final state %v, want %v (generic)",
					newEngine(cfg).name, gotVals, wantVals)
			}
			if !reflect.DeepEqual(gotStats, wantStats) {
				t.Errorf("engine %q stats %+v, want %+v (generic)",
					newEngine(cfg).name, gotStats, wantStats)
			}
		})
	}
}

// TestPerfEngineKeepsNoBarrierStats is the acceptance check that the
// specialized engines carry zero statistics code: after a transaction
// full of every access flavor, only the lifecycle counters (commits,
// allocator traffic) may be nonzero.
func TestPerfEngineKeepsNoBarrierStats(t *testing.T) {
	rm := RuntimeAll(capture.KindTree).Perf()
	rm.ReadMostly = true
	rm.Name = "readmostly"
	for _, cfg := range []OptConfig{
		Baseline().Perf(),
		RuntimeAll(capture.KindTree).Perf(),
		Compiler().Perf(),
		rm,
	} {
		_, s := engineScenario(t, cfg)
		barrier := s
		barrier.Commits, barrier.Aborts, barrier.UserAborts = 0, 0, 0
		barrier.Upgrades = 0 // lifecycle accounting, like the outcomes
		barrier.TxAllocs, barrier.TxFrees = 0, 0
		if barrier != (Stats{}) {
			t.Errorf("%s: perf engine recorded barrier stats: %+v", cfg.Name, barrier)
		}
		if s.Commits == 0 {
			t.Errorf("%s: commit counter lost", cfg.Name)
		}
	}
}

// TestForcedGenericEndToEnd reruns the concurrent bank invariant under
// the forced generic engine, so the reference chain stays exercised in
// the correctness matrix even though no profile selects it by default.
func TestForcedGenericEndToEnd(t *testing.T) {
	cfg := RuntimeAll(capture.KindTree).Perf()
	cfg.ForceGeneric = true
	rt := newRT(cfg)
	if rt.Engine() != "generic" {
		t.Fatalf("engine %q", rt.Engine())
	}
	a := rt.Space().AllocGlobal(1)
	th := rt.Thread(0)
	for i := 0; i < 100; i++ {
		th.Atomic(func(tx *Tx) {
			tx.Store(a, tx.Load(a, AccShared)+1, AccShared)
		})
	}
	if got := rt.Space().Load(a); got != 100 {
		t.Errorf("counter = %d, want 100", got)
	}
	rt.Validate()
}

// TestPrevOrecWordLookup covers the orec-index lookup that replaced the
// linear write-set scan: reads validated against self-locked orecs must
// see the pre-acquisition version, and partial aborts must drop the
// released entries from the lookup.
func TestPrevOrecWordLookup(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(mem.LineWords * 4)
	th.Atomic(func(tx *Tx) {
		for i := 0; i < 4; i++ {
			a := g + mem.Addr(i*mem.LineWords)
			pre := rt.orecs[rt.orecIndex(a)].Load()
			tx.Store(a, uint64(i), AccShared)
			if got := tx.prevOrecWord(rt.orecIndex(a)); got != pre {
				t.Errorf("prevOrecWord(orec of word %d) = %d, want %d", i, got, pre)
			}
		}
		if got := tx.prevOrecWord(^uint64(0) >> 1); got != ^uint64(0) {
			t.Errorf("unlocked orec lookup = %d, want ^0", got)
		}
		// A nested transaction locks a fresh line, then partially
		// aborts: its entry must leave the lookup, the outer ones stay.
		inner := g + mem.Addr(3*mem.LineWords)
		_ = inner
		th.Atomic(func(tx2 *Tx) {
			tx2.Store(g+mem.Addr(2*mem.LineWords)+1, 9, AccShared) // same line as word 2: already locked
			tx2.UserAbort()
		})
		if got := tx.prevOrecWord(rt.orecIndex(g)); got == ^uint64(0) {
			t.Error("outer lock entry lost after nested abort")
		}
	})
	// After commit the lookup is cleared.
	if len(th.tx.lockedPrev) != 0 {
		t.Errorf("lockedPrev not cleared: %d entries", len(th.tx.lockedPrev))
	}
	rt.Validate()
}

// TestLimboSnapshotsOnlyOddThreads locks in the enqueueLimbo slimming:
// a quiescent system produces an empty snapshot (self excepted), so
// batches drain on the very next commit.
func TestLimboSnapshotsOnlyOddThreads(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	rt.Thread(1) // exists but never transacts: must not be snapshotted
	p := th.Alloc(4)
	th.Atomic(func(tx *Tx) { tx.Free(p) })
	if n := len(th.limbo); n != 0 {
		// The freeing thread itself is odd at enqueue time but has
		// quiesced by drain time, so the batch must already be gone.
		t.Fatalf("limbo batches = %d, want 0", n)
	}
	if th.alloc.Live() != 0 {
		t.Errorf("live = %d, want 0", th.alloc.Live())
	}
	// The snapshot in a fresh batch records only the enqueuing thread.
	q := th.Alloc(4)
	var ids []int32
	th.Atomic(func(tx *Tx) {
		tx.Free(q)
		// Peek after commitTop would be too late; instead enqueue
		// directly to observe the snapshot shape.
	})
	th.enqueueLimbo([]mem.Addr{})
	ids = th.limbo[len(th.limbo)-1].ids
	if len(ids) != 0 {
		t.Errorf("quiescent snapshot ids = %v, want empty", ids)
	}
	th.drainLimbo()
}
