package txlib

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Bitmap is a fixed-size bit set in simulated memory (STAMP's
// bitmap.c, as used by genome and ssca2).
//
// Layout:
//
//	header: [0] nbits, words follow inline.
const (
	bmNBits = 0
	bmHdr   = 1
)

// NewBitmap allocates a bitmap of nbits cleared bits.
func NewBitmap(tx *stm.Tx, nbits int) mem.Addr {
	words := (nbits + 63) / 64
	b := tx.Alloc(bmHdr + words)
	tx.Store(b+bmNBits, uint64(nbits), stm.AccFresh)
	return b
}

// BitmapNBits returns the bitmap's capacity in bits.
func BitmapNBits(tx *stm.Tx, b mem.Addr, mode stm.Acc) int {
	return int(tx.Load(b+bmNBits, mode))
}

func bmSlot(i int) (word mem.Addr, bit uint64) {
	return bmHdr + mem.Addr(i/64), 1 << (uint(i) % 64)
}

// BitmapTestAndSet sets bit i, reporting whether it was clear before
// (STAMP's bitmap_set returning whether the bit changed).
func BitmapTestAndSet(tx *stm.Tx, b mem.Addr, i int, mode stm.Acc) bool {
	w, bit := bmSlot(i)
	v := tx.Load(b+w, mode)
	if v&bit != 0 {
		return false
	}
	tx.Store(b+w, v|bit, mode)
	return true
}

// BitmapTest reports whether bit i is set.
func BitmapTest(tx *stm.Tx, b mem.Addr, i int, mode stm.Acc) bool {
	w, bit := bmSlot(i)
	return tx.Load(b+w, mode)&bit != 0
}

// BitmapClear clears bit i.
func BitmapClear(tx *stm.Tx, b mem.Addr, i int, mode stm.Acc) {
	w, bit := bmSlot(i)
	tx.Store(b+w, tx.Load(b+w, mode)&^bit, mode)
}

// BitmapCount returns the number of set bits.
func BitmapCount(tx *stm.Tx, b mem.Addr, mode stm.Acc) int {
	nbits := int(tx.Load(b+bmNBits, mode))
	words := (nbits + 63) / 64
	total := 0
	for w := 0; w < words; w++ {
		v := tx.Load(b+bmHdr+mem.Addr(w), mode)
		for v != 0 {
			v &= v - 1
			total++
		}
	}
	return total
}
