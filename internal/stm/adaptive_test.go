package stm

import (
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/mem"
)

// adaptiveCfg returns a perf base profile adapting "publish" and
// "cursor" with a small epoch, so tests converge in a few dozen
// transactions.
func adaptiveCfg(epoch int) OptConfig {
	cfg := RuntimeAll(capture.KindTree).Perf()
	cfg.Adaptive = AdaptiveConfig{
		Enabled: true,
		Kinds:   []string{"publish", "cursor"},
		Epoch:   epoch,
	}
	return cfg
}

// runCaptured executes one allocate-build-publish transaction: eight of
// its nine barriers target captured memory (a fresh allocation), one
// store links the record into a shared slot, so a probe epoch observes
// ~89% captured share. The shared link is what keeps this regime off
// the read-mostly variant — every transaction would upgrade on it — and
// on the capture engine (a kind with no shared writes at all selects
// read-mostly instead; see readmostly_test.go).
func runCaptured(th *Thread, g mem.Addr) {
	th.Atomic(func(tx *Tx) {
		p := tx.Alloc(4)
		for i := 0; i < 4; i++ {
			tx.Store(p+mem.Addr(i), uint64(i), AccAuto)
		}
		for i := 0; i < 4; i++ {
			_ = tx.Load(p+mem.Addr(i), AccAuto)
		}
		tx.Store(g, uint64(p), AccShared)
		tx.Free(p)
	})
}

// runShared executes one read-modify-write on a shared global: zero
// captured accesses.
func runShared(th *Thread, g mem.Addr) {
	th.Atomic(func(tx *Tx) {
		tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
	})
}

// TestAdaptiveCompilation pins the adaptive engine table: four variant
// entries per adaptive kind, probe selected initially, manual
// declarations left alone, the "+adaptive" marker, and the variant
// configurations matching what a manual fragment would compile to.
func TestAdaptiveCompilation(t *testing.T) {
	rt := newRT(adaptiveCfg(8))
	// Table: default + 2 kinds x 4 variants.
	if len(rt.phases) != 9 {
		t.Fatalf("engine table has %d entries, want 9", len(rt.phases))
	}
	if got := rt.Engine(); got != "perf-rw-stack-heap-tree+adaptive" {
		t.Errorf("Engine() = %q", got)
	}
	if kinds := rt.PhaseKinds(); len(kinds) != 2 || kinds[0] != "publish" || kinds[1] != "cursor" {
		t.Errorf("PhaseKinds = %v", kinds)
	}
	sels := rt.AdaptiveSelections()
	if len(sels) != 2 {
		t.Fatalf("AdaptiveSelections rows = %d, want 2", len(sels))
	}
	for _, sel := range sels {
		if sel.Variant != VariantProbe {
			t.Errorf("%s starts on %q, want probe", sel.Kind, sel.Variant)
		}
		if sel.Engine != "counting" {
			t.Errorf("%s probe engine = %q, want counting", sel.Kind, sel.Engine)
		}
	}
	// The fast variants compile to the same engines the canonical manual
	// declaration (capture fragment / skipshared fragment on this base)
	// would produce.
	st := rt.adapt[0]
	if got := rt.phases[st.capture].eng.name; got != "perf-rw-stack-heap-tree" {
		t.Errorf("capture variant engine = %q", got)
	}
	if got := rt.phases[st.skip].eng.name; got != "perf-rw-stack-heap-tree+skipshared" {
		t.Errorf("skipshared variant engine = %q", got)
	}
	if got := rt.phases[st.rm].eng.name; got != "perf-readmostly" {
		t.Errorf("readmostly variant engine = %q", got)
	}
	if up := rt.phases[st.rm].eng.up; up == nil || up.name != "perf-rw-stack-heap-tree" {
		t.Errorf("readmostly upgrade target = %+v, want perf-rw-stack-heap-tree", up)
	}

	// A kind declared manually is ground truth: no variants for it.
	mixed := adaptiveCfg(8)
	mixed.Phases = []PhaseConfig{{Kind: "publish", Cfg: Baseline()}}
	mrt := newRT(mixed)
	if len(mrt.phases) != 6 { // default + manual publish + 4 cursor variants
		t.Errorf("mixed table has %d entries, want 6", len(mrt.phases))
	}
	if len(mrt.adapt) != 1 || mrt.adapt[0].kind != "cursor" {
		t.Errorf("mixed adapt states = %+v", mrt.adapt)
	}
	if got := mrt.Engine(); got != "perf-rw-stack-heap-tree+phases+adaptive" {
		t.Errorf("mixed Engine() = %q", got)
	}
	if kinds := mrt.PhaseKinds(); len(kinds) != 2 || kinds[0] != "publish" || kinds[1] != "cursor" {
		t.Errorf("mixed PhaseKinds = %v", kinds)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	expectPanic := func(name string, cfg OptConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New did not panic", name)
			}
		}()
		newRT(cfg)
	}
	empty := Baseline()
	empty.Adaptive = AdaptiveConfig{Enabled: true}
	expectPanic("no kinds", empty)
	blank := Baseline()
	blank.Adaptive = AdaptiveConfig{Enabled: true, Kinds: []string{""}}
	expectPanic("empty kind", blank)
	dup := Baseline()
	dup.Adaptive = AdaptiveConfig{Enabled: true, Kinds: []string{"a", "a"}}
	expectPanic("duplicate kind", dup)
	bad := Baseline()
	bad.Adaptive = AdaptiveConfig{Enabled: true, Kinds: []string{"a"}, PromotePct: 0.1, DemotePct: 0.2}
	expectPanic("demote above promote", bad)
}

// TestAdaptivePromotion pins the headline behavior: a kind whose probe
// epochs observe a high captured share is promoted to the capture-
// checking fast path, and one capturing nothing gets the
// definitely-shared bypass — with EngineFor following the selection.
func TestAdaptivePromotion(t *testing.T) {
	const epoch = 8
	rt := newRT(adaptiveCfg(epoch))
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(1)

	th.EnterPhase("publish")
	for i := 0; i < 3*epoch; i++ {
		runCaptured(th, g)
	}
	th.EnterPhase("cursor")
	for i := 0; i < 3*epoch; i++ {
		runShared(th, g)
	}

	want := map[string]string{"publish": VariantCapture, "cursor": VariantSkipShared}
	for _, sel := range rt.AdaptiveSelections() {
		if sel.Variant != want[sel.Kind] {
			t.Errorf("%s selected %q, want %q", sel.Kind, sel.Variant, want[sel.Kind])
		}
	}
	if got := rt.EngineFor("publish"); got != "perf-rw-stack-heap-tree" {
		t.Errorf("EngineFor(publish) = %q", got)
	}
	if got := rt.EngineFor("cursor"); got != "perf-rw-stack-heap-tree+skipshared" {
		t.Errorf("EngineFor(cursor) = %q", got)
	}
	// The trajectory is visible in the per-variant stats rows: the first
	// epoch ran on the probe, later ones on the fast variant.
	var probeCommits, fastCommits uint64
	for _, row := range rt.PhaseStats() {
		if row.Kind != "publish" {
			continue
		}
		switch row.Variant {
		case VariantProbe:
			probeCommits = row.Stats.Commits
		case VariantCapture:
			fastCommits = row.Stats.Commits
		}
	}
	if probeCommits == 0 || fastCommits == 0 {
		t.Errorf("publish trajectory probe=%d capture=%d, want both nonzero", probeCommits, fastCommits)
	}
	rt.Validate()
}

// TestAdaptiveMixedStaysOnProbe: a phase alternating captured and
// shared work (share between the thresholds) keeps being measured.
func TestAdaptiveMixedStaysOnProbe(t *testing.T) {
	const epoch = 8
	rt := newRT(adaptiveCfg(epoch))
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(1)

	th.EnterPhase("publish")
	for i := 0; i < 4*epoch; i++ {
		// Half captured, half shared accesses per transaction: ~50%
		// captured share, inside the (5%, 60%) hysteresis band.
		th.Atomic(func(tx *Tx) {
			p := tx.Alloc(2)
			tx.Store(p, uint64(i), AccAuto)
			tx.Store(p+1, uint64(i), AccAuto)
			tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
			tx.Free(p)
		})
	}
	for _, sel := range rt.AdaptiveSelections() {
		if sel.Kind == "publish" && sel.Variant != VariantProbe {
			t.Errorf("mixed publish moved to %q, want probe", sel.Variant)
		}
	}
}

// TestAdaptiveReprobe pins the re-probe schedule: after ProbeEvery fast
// epochs the kind returns to the probe, so its probe row keeps
// accumulating commits well past the first epoch.
func TestAdaptiveReprobe(t *testing.T) {
	const epoch = 4
	cfg := adaptiveCfg(epoch)
	cfg.Adaptive.ProbeEvery = 2
	rt := newRT(cfg)
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(1)

	th.EnterPhase("publish")
	// 1 probe epoch + 2 fast + 1 probe + 2 fast + ... : ~1/3 of epochs
	// probe after the first.
	for i := 0; i < 12*epoch; i++ {
		runCaptured(th, g)
	}
	var probeCommits uint64
	for _, row := range rt.PhaseStats() {
		if row.Kind == "publish" && row.Variant == VariantProbe {
			probeCommits = row.Stats.Commits
		}
	}
	if probeCommits <= epoch {
		t.Errorf("probe row commits = %d, want > %d (re-probe never fired)", probeCommits, epoch)
	}
}

// TestAdaptiveSwitchStress is the -race pin: threads hammer shared
// counters while flipping between adaptive kinds, so selections are
// published and adopted concurrently. The final sums must be exact,
// every commit must be attributed to some row, and no orec may leak.
func TestAdaptiveSwitchStress(t *testing.T) {
	const threads, perThread = 4, 2000
	rt := newRT(adaptiveCfg(16))
	g := rt.Space().AllocGlobal(1)
	kinds := []string{"", "publish", "cursor"}
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := rt.Thread(tid)
			for i := 0; i < perThread; i++ {
				th.EnterPhase(kinds[(tid+i)%len(kinds)])
				if i%2 == 0 {
					th.Atomic(func(tx *Tx) {
						tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
					})
				} else {
					th.Atomic(func(tx *Tx) {
						p := tx.Alloc(1)
						tx.Store(p, uint64(i), AccAuto)
						tx.Free(p)
						tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
					})
				}
			}
		}(tid)
	}
	wg.Wait()
	if got := rt.Space().Load(g); got != threads*perThread {
		t.Errorf("counter = %d, want %d", got, threads*perThread)
	}
	var commits uint64
	for _, row := range rt.PhaseStats() {
		commits += row.Stats.Commits
	}
	if commits != threads*perThread {
		t.Errorf("phase rows account for %d commits, want %d", commits, threads*perThread)
	}
	rt.Validate()
}
