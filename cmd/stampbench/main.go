// Command stampbench regenerates the performance experiments of the
// paper's evaluation (Sec. 4): Table 1 (abort-to-commit ratios),
// Table 2 (run-to-run variation), Fig. 10 (single-thread improvement),
// and Fig. 11(a)/(b) (16-thread improvement). It is written entirely
// against the public tm / tm/bench API; workloads are resolved through
// the tm registry, so externally registered scenarios work with the
// -bench flag too.
//
// The matrix covers every workload registered in the tm registry: the
// STAMP roster plus the in-tree scenario packs (tmkv) and anything an
// external package registers.
//
// Usage:
//
//	stampbench -experiment list             # registered workloads
//	stampbench -experiment fig10            # 1-thread improvements
//	stampbench -experiment fig11a -threads 16
//	stampbench -experiment fig11b -threads 16
//	stampbench -experiment table1 -threads 16
//	stampbench -experiment table2 -threads 16 -runs 5
//	stampbench -experiment capture -bench tmkv   # per-mechanism elision counts
//	stampbench -experiment sweep -bench vacation-low   # scaling curve
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tm"
	"repro/tm/bench"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/stamp/all"
)

func main() {
	exp := flag.String("experiment", "fig10", "list|table1|table2|fig10|fig11a|fig11b|capture|sweep")
	threads := flag.Int("threads", 1, "worker threads for the parallel phase")
	runs := flag.Int("runs", 3, "repetitions per data point")
	benchFlag := flag.String("bench", "all", "comma-separated workload names or 'all'")
	flag.Parse()

	benches := bench.AllWorkloads()
	if *benchFlag != "all" {
		benches = strings.Split(*benchFlag, ",")
	}

	var err error
	switch *exp {
	case "list":
		for _, b := range benches {
			fmt.Println(b)
		}
	case "capture":
		err = capture(benches)
	case "table1":
		err = tables(benches, *threads, *runs, true)
	case "table2":
		err = tables(benches, *threads, *runs, false)
	case "fig10":
		err = improvements(benches, bench.Fig10Configs(), 1, *runs,
			"Figure 10: % improvement over baseline at 1 thread")
	case "fig11a":
		err = improvements(benches, bench.Fig10Configs(), *threads, *runs,
			fmt.Sprintf("Figure 11(a): %% improvement over baseline at %d threads", *threads))
	case "fig11b":
		err = improvements(benches, bench.Fig11bConfigs(), *threads, *runs,
			fmt.Sprintf("Figure 11(b): %% improvement over baseline at %d threads", *threads))
	case "sweep":
		err = sweep(benches, *runs)
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stampbench:", err)
		os.Exit(1)
	}
}

// capture prints the per-mechanism capture/elision table for each
// workload: which barriers the runtime checks, the compiler, and the
// definitely-shared extension removed.
func capture(benches []string) error {
	for _, b := range benches {
		rows, err := bench.MeasureCaptureStats(b, bench.CaptureConfigs())
		if err != nil {
			return err
		}
		bench.WriteCaptureStats(os.Stdout, rows)
		fmt.Println()
	}
	return nil
}

// tables prints Table 1 (ratio=true) or Table 2 (ratio=false).
func tables(benches []string, threads, runs int, ratio bool) error {
	profiles := bench.Table1Configs()
	rows := map[string]map[string]float64{}
	var names []string
	for _, p := range profiles {
		names = append(names, p.Name())
	}
	for _, b := range benches {
		rows[b] = map[string]float64{}
		for _, p := range profiles {
			res, err := bench.Run(b, p, threads, runs)
			if err != nil {
				return err
			}
			if ratio {
				rows[b][p.Name()] = res.Stats.AbortRatio()
			} else {
				rows[b][p.Name()] = res.RelStdDev()
			}
		}
	}
	if ratio {
		bench.WriteTable1(os.Stdout, rows, names, threads)
	} else {
		bench.WriteTable2(os.Stdout, rows, names, threads, runs)
	}
	return nil
}

// improvements prints a Fig. 10/11-style improvement table.
func improvements(benches []string, profiles []tm.Profile, threads, runs int, title string) error {
	rows := map[string]map[string]float64{}
	var names []string
	for _, p := range profiles {
		names = append(names, p.Name())
	}
	for _, b := range benches {
		rows[b] = map[string]float64{}
		// Timing runs use perf mode: no per-access counters, like the
		// paper's performance builds.
		perf := make([]tm.Profile, len(profiles))
		for i, p := range profiles {
			perf[i] = p.Perf()
		}
		results, err := bench.RunMatrix(b, perf, threads, runs)
		if err != nil {
			return err
		}
		for i, p := range profiles[1:] {
			rows[b][p.Name()] = bench.Improvement(results[0], results[i+1])
		}
	}
	bench.WriteImprovements(os.Stdout, title, rows, names)
	return nil
}

// sweep prints raw times across thread counts for scaling curves.
func sweep(benches []string, runs int) error {
	for _, b := range benches {
		fmt.Printf("%s scaling (baseline):\n", b)
		for _, th := range []int{1, 2, 4, 8, 16} {
			res, err := bench.Run(b, tm.Baseline(), th, runs)
			if err != nil {
				return err
			}
			fmt.Printf("  %2d threads: %v (aborts/commit %.2f)\n",
				th, res.Median().Round(1000), res.Stats.AbortRatio())
		}
	}
	return nil
}
