package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		f := r.Float()
		if f < 0 || f >= 1 {
			t.Fatalf("Float() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(1).Intn(0)
}

func TestRoughUniformity(t *testing.T) {
	r := New(123)
	buckets := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, c := range buckets {
		if c < n/8-n/40 || c > n/8+n/40 {
			t.Errorf("bucket %d count %d far from %d", i, c, n/8)
		}
	}
}
