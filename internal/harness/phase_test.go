package harness

import (
	"strings"
	"testing"

	"repro/tm"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/scenarios/tmmsg"
	_ "repro/internal/stamp/all"
)

// phased wraps a profile with the canonical phase declaration
// (PhaseRegimeSpecs — the one source of truth every phase-hint A/B
// shares), under a report name that marks the hinted rows.
func phased(p tm.Profile) tm.Profile {
	return p.With(tm.WithPhases(PhaseRegimeSpecs()...)).Named(p.Name() + "+phases")
}

// phaseRow is a comparable per-phase stats row: the engine name is
// intentionally dropped, because the specialized and forced-generic
// runs compile different engines by construction.
type phaseRow struct {
	kind  string
	stats tm.Stats
}

// runPhased drives one full workload lifecycle under a phased profile
// and returns the final-state fingerprint, the per-phase stats of the
// timed phase (snapshotted before Validate), and the engine label.
func runPhased(t *testing.T, bench string, p tm.Profile, threads int) (uint64, []phaseRow, string) {
	t.Helper()
	w, err := tm.NewWorkload(bench)
	if err != nil {
		t.Fatal(err)
	}
	rt := tm.Open(append(p.Options(), tm.WithMemory(w.MemConfig()))...)
	w.Setup(rt)
	rt.ResetStats()
	w.Run(rt, threads)
	rows := make([]phaseRow, 0, 3)
	for _, ps := range rt.PhaseStats() {
		rows = append(rows, phaseRow{kind: ps.Kind, stats: ps.Stats})
	}
	if err := w.Validate(rt); err != nil {
		t.Fatalf("%s [%s, engine %s, %d threads]: %v", bench, p.Name(), rt.Engine(), threads, err)
	}
	rt.Validate() // no orec may stay locked after the threads joined
	return rt.Unwrap().Space().Checksum(), rows, rt.Engine()
}

func equalPhaseRows(a, b []phaseRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEngineEquivalencePhased extends the engine-vs-generic
// differential across mid-run phase switches: every registered workload
// under every named profile, with the canonical phase declaration on
// top, must produce a bit-identical final state AND identical per-phase
// stats with the compiled engines vs the forced generic reference chain
// at one thread. Workloads that never hint run entirely in the default
// phase — the declaration alone must change nothing; tmmsg's driver
// hints every operation, so its runs actually cross engines mid-run.
func TestEngineEquivalencePhased(t *testing.T) {
	profiles := namedProfiles()
	benches := AllWorkloads()
	if testing.Short() {
		profiles = []tm.Profile{tm.Baseline(), tm.RuntimeAll(tm.LogTree), tm.CompilerElision()}
		benches = []string{"ssca2", "tmmsg", "tmmsg-sub"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, p := range profiles {
				pp := phased(p)
				sum, rows, eng := runPhased(t, bench, pp, 1)
				gsum, grows, geng := runPhased(t, bench, forceGeneric(pp), 1)
				if !strings.HasPrefix(geng, "generic") {
					t.Fatalf("%s: forced engine is %q", pp.Name(), geng)
				}
				if sum != gsum {
					t.Errorf("%s: engine %s final state %#x, generic %#x",
						pp.Name(), eng, sum, gsum)
				}
				if !equalPhaseRows(rows, grows) {
					t.Errorf("%s: engine %s per-phase stats diverge from generic:\n  engine:  %+v\n  generic: %+v",
						pp.Name(), eng, rows, grows)
				}
			}
		})
	}
}

// TestPhaseHintsPreserveState pins that phase hints are a pure
// performance lever on the workloads that give them: the tmmsg
// variants must reach the same final state with and without the phase
// declaration under each named profile.
func TestPhaseHintsPreserveState(t *testing.T) {
	profiles := namedProfiles()
	if testing.Short() {
		profiles = profiles[:3]
	}
	for _, bench := range []string{"tmmsg", "tmmsg-pub", "tmmsg-sub"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, p := range profiles {
				base, _, _ := runEngine(t, bench, p, 1)
				sum, _, _ := runPhased(t, bench, phased(p), 1)
				if sum != base {
					t.Errorf("%s: phased final state %#x, unphased %#x", p.Name(), sum, base)
				}
			}
		})
	}
}

// TestEnginePhasedParallelNoLeaks runs contended phased slices of the
// grid: final states are scheduling-dependent, but validation must pass
// and no orec lock may leak while threads switch engines mid-run,
// specialized and forced-generic alike.
func TestEnginePhasedParallelNoLeaks(t *testing.T) {
	profiles := []tm.Profile{
		phased(tm.RuntimeAll(tm.LogTree).Perf()),               // specialized per-phase fast paths
		forceGeneric(phased(tm.RuntimeAll(tm.LogTree).Perf())), // reference chain in every phase
		phased(tm.RuntimeAll(tm.LogTree)),                      // instrumented engines
	}
	benches := AllWorkloads()
	if testing.Short() {
		benches = []string{"tmmsg", "tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, p := range profiles {
				runPhased(t, bench, p, 4)
			}
		})
	}
}

// TestPhasedRunReportsPhaseRows pins the harness plumbing: a phased
// profile's Result carries the per-phase breakdown (snapshotted before
// Validate) and the "+phases" engine marker, and the tmmsg driver's
// hints actually land transactions in both declared phases.
func TestPhasedRunReportsPhaseRows(t *testing.T) {
	res, err := Run("tmmsg-sub", phased(tm.RuntimeAll(tm.LogTree)), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(res.Engine, "+phases") {
		t.Errorf("engine label %q lacks the +phases marker", res.Engine)
	}
	if len(res.PhaseStats) != 4 {
		t.Fatalf("PhaseStats rows = %d, want 4 (default, publish, cursor, scan)", len(res.PhaseStats))
	}
	var pub, cur tm.Stats
	for _, ps := range res.PhaseStats {
		switch ps.Kind {
		case tm.PhasePublish:
			pub = ps.Stats
		case tm.PhaseCursor:
			cur = ps.Stats
		}
	}
	if pub.Commits == 0 || cur.Commits == 0 {
		t.Errorf("phase rows not populated: publish %d commits, cursor %d commits",
			pub.Commits, cur.Commits)
	}
	// The regimes separate exactly as the capture report shows: the
	// publish phase elides captured-heap barriers, the cursor phase
	// (which allocates nothing) cannot.
	if pub.WriteElHeap == 0 {
		t.Error("publish phase elided no captured-heap writes")
	}
	if cur.WriteElHeap != 0 || cur.ReadElHeap != 0 {
		t.Errorf("cursor phase elided captured-heap barriers: %d reads, %d writes",
			cur.ReadElHeap, cur.WriteElHeap)
	}
	total := res.Stats
	var sum tm.Stats
	for _, ps := range res.PhaseStats {
		sum.Add(&ps.Stats)
	}
	if total != sum {
		t.Errorf("Stats %+v != sum of phase rows %+v", total, sum)
	}
	// An unphased profile reports no phase rows: the JSON field stays
	// absent and old reports keep diffing cleanly.
	plain, err := Run("ssca2", tm.Baseline(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.PhaseStats) != 0 {
		t.Errorf("unphased run carries %d phase rows", len(plain.PhaseStats))
	}
}
