// Vacation: run the paper's flagship STAMP workload (a travel
// reservation system) under every optimization and print the
// improvement over the baseline — a miniature of the paper's Fig. 11,
// driven entirely through the public tm / tm/bench API.
//
//	go run ./examples/vacation [-threads N]
package main

import (
	"flag"
	"fmt"
	"runtime"

	"repro/tm/bench"

	_ "repro/internal/stamp/all"
)

func main() {
	threads := flag.Int("threads", min(8, runtime.NumCPU()), "worker threads")
	flag.Parse()

	fmt.Printf("vacation-low on %d threads, 3 runs per configuration\n\n", *threads)
	profiles := bench.Table1Configs()
	results, err := bench.RunMatrix("vacation-low", profiles, *threads, 3)
	if err != nil {
		panic(err)
	}
	base := results[0]
	fmt.Printf("%-28s %12s %14s %10s\n", "configuration", "time", "aborts/commit", "vs baseline")
	for i, res := range results {
		mark := "(baseline)"
		if i != 0 {
			mark = fmt.Sprintf("%+.1f%%", bench.Improvement(base, res))
		}
		fmt.Printf("%-28s %12v %14.3f %10s\n",
			profiles[i].Name(), res.Min().Round(100000), res.Stats.AbortRatio(), mark)
	}
	fmt.Println("\nThe optimizations elide barriers for memory captured by each")
	fmt.Println("transaction (reservation records allocated inside it), which also")
	fmt.Println("removes false conflicts — compare the aborts/commit column with")
	fmt.Println("the paper's Table 1.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
