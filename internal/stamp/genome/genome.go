// Package genome ports STAMP's genome: gene sequencing by segment
// deduplication and overlap matching.
//
//   - Phase 1 (parallel): every segment *instance* (positions are read
//     with coverage-fold duplication) is inserted into a shared hash
//     set. The probe key lives in a transaction-local stack buffer
//     (captured-stack reads during hashing/compare) and the unique-
//     segment entry is allocated inside the transaction (captured-heap
//     writes) — genome's Fig. 8 mix.
//   - Phase 2a (parallel): a shared ordered map from (L-1)-base prefix
//     to segment entry is built.
//   - Phase 2b (parallel): each segment looks up the entry whose
//     prefix equals its own suffix and links to it, claiming the
//     successor's has-predecessor bit.
//
// Validation rebuilds the chain and checks every overlap. Segments are
// 32 bases packed 2 bits/base into one word; prefix/suffix are 62-bit
// values, collision-free with overwhelming probability at this scale.
package genome

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txlib"
)

// segLen is the number of bases per segment (one packed word).
const segLen = 32

// Entry layout: a unique segment in the chain.
const (
	entSeg  = 0 // packed segment
	entNext = 1 // successor entry address
	entIdx  = 2 // dense index (for the has-predecessor bitmap)
	entSize = 3
)

// Config mirrors STAMP's gene length / coverage parameters.
type Config struct {
	Name     string
	GeneLen  int // -g: bases in the gene
	Coverage int // duplication factor for segment instances
	Seed     uint64
}

// Default returns the scaled-down genome configuration.
func Default() Config {
	return Config{Name: "genome", GeneLen: 16384, Coverage: 4, Seed: 7}
}

// B is one genome run.
type B struct {
	cfg  Config
	gene []byte // base values 0..3, Go side (the input "reads" source)

	ht        mem.Addr // shared segment hash set
	entryQ    mem.Addr // queue of unique entry addresses (filled phase 1)
	prefixMap mem.Addr // prefix → entry address
	hasPred   mem.Addr // bitmap over entry positions

	instances []int // segment start positions, with duplication, shuffled

	entries []mem.Addr // collected between phases (serial step)
}

func init() {
	stamp.Register("genome",
		"STAMP genome: segment dedup and overlap matching assemble a genome", func() stamp.Benchmark { return &B{cfg: Default()} })
}

// NewWith creates a genome instance with a custom configuration.
func NewWith(cfg Config) *B { return &B{cfg: cfg} }

// Name implements stamp.Benchmark.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements stamp.Benchmark.
func (b *B) MemConfig() mem.Config {
	n := b.cfg.GeneLen
	words := n*24 + (1 << 19)
	return mem.Config{GlobalWords: 1 << 10, HeapWords: words, StackWords: 1 << 10, MaxThreads: 32}
}

func (b *B) nSegments() int { return b.cfg.GeneLen - segLen + 1 }

// segWord packs the 32 bases starting at pos.
func (b *B) segWord(pos int) uint64 {
	var w uint64
	for i := 0; i < segLen; i++ {
		w = w<<2 | uint64(b.gene[pos+i])
	}
	return w
}

func prefix(seg uint64) uint64 { return seg >> 2 }
func suffix(seg uint64) uint64 { return seg & (1<<62 - 1) }

// Setup generates the gene and the duplicated, shuffled instance list.
func (b *B) Setup(rt *stm.Runtime) {
	r := prng.New(b.cfg.Seed)
	b.gene = make([]byte, b.cfg.GeneLen)
	for i := range b.gene {
		b.gene[i] = byte(r.Intn(4))
	}
	n := b.nSegments()
	b.instances = make([]int, 0, n*b.cfg.Coverage)
	for c := 0; c < b.cfg.Coverage; c++ {
		for p := 0; p < n; p++ {
			b.instances = append(b.instances, p)
		}
	}
	r.Shuffle(b.instances)

	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		b.ht = txlib.NewHashtable(tx, n/2+1)
		b.entryQ = txlib.NewQueue(tx, n+2)
		b.prefixMap = txlib.NewMap(tx)
		b.hasPred = txlib.NewBitmap(tx, n)
	})
}

// Run executes the three phases (STAMP's sequencer_run).
func (b *B) Run(rt *stm.Runtime, nthreads int) {
	// Phase 1: deduplicate segment instances into the hash set.
	stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
		lo := len(b.instances) * tid / n
		hi := len(b.instances) * (tid + 1) / n
		for i := lo; i < hi; i++ {
			pos := b.instances[i]
			seg := b.segWord(pos)
			th.Atomic(func(tx *stm.Tx) {
				// Probe key in a transaction-local stack buffer
				// (Fig. 1(a)-style captured stack accesses).
				key := tx.StackAlloc(1)
				tx.Store(key, seg, stm.AccStack)
				ent := tx.Alloc(entSize)
				tx.Store(ent+entSeg, seg, stm.AccFresh)
				tx.StoreAddr(ent+entNext, 0, stm.AccFresh)
				// The dense index is the segment's gene position:
				// unique per content, so no shared counter is needed.
				tx.Store(ent+entIdx, uint64(pos), stm.AccFresh)
				if txlib.HTInsertIfAbsent(tx, b.ht, key, 1, uint64(ent), txlib.TM, stm.AccStack) {
					txlib.QueuePush(tx, b.entryQ, uint64(ent), txlib.TM)
				} else {
					tx.Free(ent) // duplicate: captured block, freed in place
				}
			})
		}
	})

	// Serial step: collect the unique entries (STAMP has equivalent
	// serial steps between sequencer phases).
	th0 := rt.Thread(0)
	b.entries = b.entries[:0]
	th0.Atomic(func(tx *stm.Tx) {
		for {
			v, ok := txlib.QueuePop(tx, b.entryQ, txlib.TM)
			if !ok {
				break
			}
			b.entries = append(b.entries, mem.Addr(v))
		}
	})

	// Phase 2a: publish every entry under its prefix.
	stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
		lo := len(b.entries) * tid / n
		hi := len(b.entries) * (tid + 1) / n
		for i := lo; i < hi; i++ {
			ent := b.entries[i]
			th.Atomic(func(tx *stm.Tx) {
				seg := tx.Load(ent+entSeg, stm.AccShared)
				txlib.MapInsert(tx, b.prefixMap, prefix(seg), uint64(ent), txlib.TM)
			})
		}
	})

	// Phase 2b: link each entry to the one whose prefix matches its
	// suffix, claiming the successor's has-predecessor bit.
	stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
		lo := len(b.entries) * tid / n
		hi := len(b.entries) * (tid + 1) / n
		for i := lo; i < hi; i++ {
			ent := b.entries[i]
			th.Atomic(func(tx *stm.Tx) {
				seg := tx.Load(ent+entSeg, stm.AccShared)
				succ, ok := txlib.MapGet(tx, b.prefixMap, suffix(seg), txlib.TM)
				if !ok || mem.Addr(succ) == ent {
					return
				}
				sIdx := int(tx.Load(mem.Addr(succ)+entIdx, stm.AccShared))
				if txlib.BitmapTestAndSet(tx, b.hasPred, sIdx, txlib.TM) {
					tx.StoreAddr(ent+entNext, mem.Addr(succ), stm.AccShared)
				}
			})
		}
	})
}

// Validate follows the reconstructed chain: exactly one start, every
// link's overlap is consistent, and all unique segments are visited.
func (b *B) Validate(rt *stm.Runtime) error {
	s := rt.Space()
	unique := len(b.entries)
	if unique == 0 {
		return fmt.Errorf("no unique segments")
	}
	// Find starts (entries without predecessor).
	var start mem.Addr
	starts := 0
	for _, ent := range b.entries {
		idx := int(s.Load(ent + entIdx))
		w := idx / 64
		bit := uint64(1) << (uint(idx) % 64)
		if s.Load(b.hasPred+1+mem.Addr(w))&bit == 0 {
			starts++
			start = ent
		}
	}
	if starts != 1 {
		return fmt.Errorf("%d chain starts, want 1", starts)
	}
	// Walk the chain.
	visited := 0
	cur := start
	var prev uint64
	for cur != mem.Nil {
		seg := s.Load(cur + entSeg)
		if visited > 0 && suffix(prev) != prefix(seg) {
			return fmt.Errorf("overlap mismatch at link %d", visited)
		}
		prev = seg
		visited++
		if visited > unique {
			return fmt.Errorf("chain cycle detected")
		}
		cur = mem.Addr(s.Load(cur + entNext))
	}
	if visited != unique {
		return fmt.Errorf("chain visited %d of %d segments", visited, unique)
	}
	return nil
}
