package yada

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/stm"
)

func small() Config { return Config{Name: "yada-test", Elements: 512, Threshold: 100, Seed: 23} }

func runOne(t *testing.T, cfg Config, opt stm.OptConfig, threads int) (*B, *stm.Runtime) {
	t.Helper()
	b := NewWith(cfg)
	rt := stm.New(b.MemConfig(), opt)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("validate: %v", err)
	}
	rt.Validate()
	return b, rt
}

func TestSerialRefinement(t *testing.T) {
	b, rt := runOne(t, small(), stm.Baseline(), 1)
	if b.removed.Load() == 0 {
		t.Fatal("no cavities refined; bad-quality seeding broken")
	}
	s := rt.Stats()
	if s.TxAllocs == 0 {
		t.Error("refinement allocated nothing")
	}
	// The WAW filter must absorb the double-written link words.
	if s.WriteWAWSkips == 0 {
		t.Error("no write-after-write skips; yada's signature is missing")
	}
}

func TestParallelRefinement(t *testing.T) {
	for _, opt := range []stm.OptConfig{stm.Baseline(), stm.RuntimeAll(capture.KindTree), stm.Compiler()} {
		runOne(t, small(), opt, 8)
	}
}

func TestAllGoodMeshIsNoop(t *testing.T) {
	cfg := small()
	cfg.Threshold = 1 // nothing is bad
	b, rt := runOne(t, cfg, stm.Baseline(), 2)
	if b.removed.Load() != 0 {
		t.Errorf("removed %d elements from an already-good mesh", b.removed.Load())
	}
	_ = rt
}

// TestArrayLogOverflow: yada's transactions allocate more blocks than
// the 4-range array holds, so the array must elide strictly fewer
// barriers than the tree (the paper's Fig. 9 yada result).
func TestArrayLogOverflow(t *testing.T) {
	run := func(k capture.Kind) stm.Stats {
		_, rt := runOne(t, small(), stm.RuntimeAll(k), 1)
		return rt.Stats()
	}
	tree := run(capture.KindTree)
	arr := run(capture.KindArray)
	if arr.WriteElided() >= tree.WriteElided() {
		t.Errorf("array elided %d ≥ tree %d; expected overflow losses",
			arr.WriteElided(), tree.WriteElided())
	}
}

func TestNoWAWFilterGrowsUndoLog(t *testing.T) {
	on, _ := runOne(t, small(), stm.Baseline(), 1)
	_ = on
	cfg := stm.Baseline()
	cfg.NoWAWFilter = true
	b := NewWith(small())
	rt := stm.New(b.MemConfig(), cfg)
	b.Setup(rt)
	b.Run(rt, 1)
	if err := b.Validate(rt); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().WriteWAWSkips != 0 {
		t.Error("WAW skips counted with the filter disabled")
	}
}
