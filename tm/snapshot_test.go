package tm_test

import (
	"strings"
	"testing"

	"repro/tm"
)

func TestOpenErrConflicts(t *testing.T) {
	cases := []struct {
		name string
		opts []tm.Option
		want string // substring of the error; "" = must succeed
	}{
		{"clean baseline", nil, ""},
		{"readmostly alone", []tm.Option{tm.WithReadMostly()}, ""},
		{"counting alone", []tm.Option{tm.WithCounting()}, ""},
		{"readmostly under counting", []tm.Option{tm.WithReadMostly(), tm.WithCounting()}, "WithReadMostly"},
		{"readmostly under verify", []tm.Option{tm.WithReadMostly(), tm.WithVerifyElision()}, "WithReadMostly"},
		{"counting under perfmode", []tm.Option{tm.WithCounting(), tm.WithPerfMode()}, "WithCounting"},
		// VerifyElision implies Counting, and verify+perf is the supported
		// debug configuration — no error.
		{"verify under perfmode", []tm.Option{tm.WithVerifyElision(), tm.WithPerfMode()}, ""},
		{"conflict inside phase fragment", []tm.Option{
			tm.WithPhases(tm.PhaseProfile(tm.PhaseScan, tm.WithReadMostly(), tm.WithCounting())),
		}, `phase "scan"`},
		{"adaptive kind shadowed by phases", []tm.Option{
			tm.WithPhases(tm.PhaseProfile(tm.PhasePublish, tm.WithCompilerElision())),
			tm.WithAdaptive(tm.AdaptiveConfig{}),
		}, "shadowed"},
		{"adaptive with disjoint phases", []tm.Option{
			tm.WithPhases(tm.PhaseProfile("etl", tm.WithCompilerElision())),
			tm.WithAdaptive(tm.AdaptiveConfig{Kinds: []string{tm.PhaseCursor}}),
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]tm.Option{smallMem()}, tc.opts...)
			rt, err := tm.OpenErr(opts...)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("OpenErr: %v, want success", err)
				}
				rt.Close()
				// Open must accept the same options by silent precedence.
				tm.Open(opts...).Close()
				return
			}
			if err == nil {
				rt.Close()
				t.Fatalf("OpenErr succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("OpenErr error %q does not mention %q", err, tc.want)
			}
			// The same combination must still open (by precedence) via Open.
			tm.Open(opts...).Close()
		})
	}
}

func TestSnapshotConsolidatesGetters(t *testing.T) {
	rt := tm.Open(smallMem(), tm.WithCounting(),
		tm.WithPhases(tm.PhaseProfile(tm.PhasePublish, tm.WithCompilerElision())))
	defer rt.Close()
	g := rt.AllocGlobal(4)
	th := rt.Thread(0)
	for i := 0; i < 10; i++ {
		th.Atomic(func(tx *tm.Tx) { g.Word(0).Store(tx, g.Word(0).Load(tx)+1) })
	}
	snap := rt.Snapshot()
	if snap.Engine != rt.Engine() {
		t.Errorf("Snapshot.Engine = %q, want %q", snap.Engine, rt.Engine())
	}
	if snap.Stats != rt.Stats() {
		t.Errorf("Snapshot.Stats = %+v, want %+v", snap.Stats, rt.Stats())
	}
	if want := rt.PhaseStats(); len(snap.Phases) != len(want) {
		t.Errorf("Snapshot.Phases rows = %d, want %d", len(snap.Phases), len(want))
	}
	if snap.Stats.Commits != 10 {
		t.Errorf("Snapshot.Stats.Commits = %d, want 10", snap.Stats.Commits)
	}
	if snap.Durability != nil {
		t.Errorf("Snapshot.Durability = %+v, want nil without WithDurability", snap.Durability)
	}
	if len(snap.Adaptive) != 0 {
		t.Errorf("Snapshot.Adaptive = %+v, want empty without WithAdaptive", snap.Adaptive)
	}
}

func TestSnapshotDurabilityBlock(t *testing.T) {
	dir := t.TempDir()
	rt := tm.Open(smallMem(),
		tm.WithDurability(dir, tm.DurNoFsync()))
	g := rt.AllocGlobal(1)
	th := rt.Thread(0)
	for i := 0; i < 5; i++ {
		th.Atomic(func(tx *tm.Tx) { g.Word(0).Store(tx, uint64(i)) })
	}
	if err := rt.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap := rt.Snapshot()
	d := snap.Durability
	if d == nil {
		t.Fatal("Snapshot.Durability is nil on a durable runtime")
	}
	if d.Records < 5 {
		t.Errorf("Durability.Records = %d, want >= 5", d.Records)
	}
	// Open writes the initial checkpoint, plus our explicit one.
	if d.Checkpoints < 2 {
		t.Errorf("Durability.Checkpoints = %d, want >= 2", d.Checkpoints)
	}
	if d.LogBytes == 0 || d.Batches == 0 {
		t.Errorf("Durability log counters zero: %+v", d)
	}
	if !rt.Durable() {
		t.Error("Durable() = false before Close")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if rt.Durable() {
		t.Error("Durable() = true after Close")
	}
}

func TestRecoverErrors(t *testing.T) {
	if _, err := tm.Recover(t.TempDir()); err == nil {
		t.Fatal("Recover of an empty directory succeeded")
	}
}
