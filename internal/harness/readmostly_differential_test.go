package harness

import (
	"testing"

	"repro/tm"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/scenarios/tmmsg"
	_ "repro/internal/stamp/all"
)

// readMostly returns the profile with the read-mostly engine selected
// runtime-wide, under the same report name. Every transaction then
// starts on the zero-write-setup chain and upgrades in-flight on its
// first shared store — the maximal-stress shape for the upgrade path,
// since none of the workloads are read-only throughout.
func readMostly(p tm.Profile) tm.Profile {
	return p.With(tm.WithReadMostly()).Named(p.Name())
}

// TestReadMostlyEquivalence is the upgrade-path differential: every
// registered workload under every named profile (instrumented and
// perf) with the read-mostly knob on must reach a bit-identical final
// state with the compiled read-mostly engine vs the forced generic
// reference at one thread. Statistics are not compared — the upgrade
// counter and post-upgrade chain attribution legitimately differ from
// the reference — so a divergence here means the upgrade lost or
// replayed a memory effect.
func TestReadMostlyEquivalence(t *testing.T) {
	profiles := namedProfiles()
	for _, p := range perfProfiles() {
		profiles = append(profiles, p)
	}
	benches := AllWorkloads()
	if testing.Short() {
		profiles = []tm.Profile{
			tm.RuntimeAll(tm.LogTree), tm.RuntimeAll(tm.LogTree).Perf(), tm.CompilerElision().Perf(),
		}
		benches = []string{"ssca2", "tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, p := range profiles {
				rm := readMostly(p)
				sum, _, eng := runEngine(t, bench, rm, 1)
				gsum, _, geng := runEngine(t, bench, forceGeneric(rm), 1)
				if geng != "generic" {
					t.Fatalf("%s: forced engine is %q", p.Name(), geng)
				}
				if sum != gsum {
					t.Errorf("%s: engine %s final state %#x, generic %#x",
						p.Name(), eng, sum, gsum)
				}
			}
		})
	}
}

// TestReadMostlyParallelNoLeaks runs every workload contended at four
// threads on the read-mostly perf engine: final states are
// scheduling-dependent, but workload validation must pass and no orec
// lock may leak across the repeated mid-transaction engine swaps.
func TestReadMostlyParallelNoLeaks(t *testing.T) {
	profiles := []tm.Profile{
		readMostly(tm.RuntimeAll(tm.LogTree).Perf()),
		readMostly(tm.RuntimeAll(tm.LogTree)),
	}
	benches := AllWorkloads()
	if testing.Short() {
		benches = []string{"ssca2", "tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, p := range profiles {
				runEngine(t, bench, p, 4)
			}
		})
	}
}
