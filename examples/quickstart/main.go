// Quickstart: the STM public API on the classic bank-transfer example.
//
//	go run ./examples/quickstart
//
// It creates a runtime with runtime capture analysis enabled, runs
// concurrent transfers between accounts, and prints the barrier
// statistics — showing the captured (transaction-local) accesses that
// the paper's optimization elides: each transfer allocates a log
// record inside its transaction.
package main

import (
	"fmt"
	"sync"

	"repro/internal/capture"
	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stm"
)

func main() {
	rt := stm.New(mem.Config{
		GlobalWords: 1 << 10,
		HeapWords:   1 << 20,
		StackWords:  1 << 12,
		MaxThreads:  8,
	}, stm.RuntimeAll(capture.KindTree))

	// Accounts live in the simulated globals region.
	const accounts = 32
	const initial = 1000
	base := rt.Space().AllocGlobal(accounts)
	for i := 0; i < accounts; i++ {
		rt.Space().Store(base+mem.Addr(i), initial)
	}
	// A shared audit list head: each transfer prepends a record
	// allocated inside the transaction (captured memory!).
	auditHead := rt.Space().AllocGlobal(1)

	const threads, transfers = 4, 2000
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			r := prng.New(uint64(id + 1))
			for i := 0; i < transfers; i++ {
				from := mem.Addr(r.Intn(accounts))
				to := mem.Addr(r.Intn(accounts))
				amount := uint64(1 + r.Intn(10))
				th.Atomic(func(tx *stm.Tx) {
					f := tx.Load(base+from, stm.AccShared)
					if f < amount {
						return // insufficient funds; commit empty
					}
					tx.Store(base+from, f-amount, stm.AccShared)
					t := tx.Load(base+to, stm.AccShared)
					tx.Store(base+to, t+amount, stm.AccShared)

					// The audit record is transaction-local until
					// commit: its initializing stores need no
					// barriers, and the runtime capture analysis
					// (or the compiler, via AccFresh) elides them.
					rec := tx.Alloc(3)
					tx.Store(rec, uint64(from), stm.AccFresh)
					tx.Store(rec+1, uint64(to), stm.AccFresh)
					tx.StoreAddr(rec+2, tx.LoadAddr(auditHead, stm.AccShared), stm.AccFresh)
					tx.StoreAddr(auditHead, rec, stm.AccShared)
				})
			}
		}(t)
	}
	wg.Wait()

	// Verify conservation and count audit records.
	var total uint64
	for i := 0; i < accounts; i++ {
		total += rt.Space().Load(base + mem.Addr(i))
	}
	records := 0
	for p := mem.Addr(rt.Space().Load(auditHead)); p != mem.Nil; p = mem.Addr(rt.Space().Load(p + 2)) {
		records++
	}
	s := rt.Stats()
	fmt.Printf("total money: %d (expected %d)\n", total, accounts*initial)
	fmt.Printf("audit records: %d\n", records)
	fmt.Printf("commits: %d, conflict aborts: %d\n", s.Commits, s.Aborts)
	fmt.Printf("write barriers: %d, elided as captured: %d (%.0f%%)\n",
		s.WriteTotal, s.WriteElided(), 100*float64(s.WriteElided())/float64(s.WriteTotal))
	if total != accounts*initial {
		panic("money not conserved")
	}
}
