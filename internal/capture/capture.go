// Package capture implements the runtime capture-analysis data
// structures from Section 3.1 of the paper: the per-transaction
// allocation log searched by every STM barrier to decide whether the
// accessed address is captured (transaction-local), and the persistent
// per-thread log behind the thread-local/read-only annotation APIs.
//
// Three interchangeable implementations are provided, matching the
// paper's Section 3.1.2:
//
//   - Tree: a balanced search tree of ranges (precise; Fig. 5)
//   - Array: a cache-line-sized unsorted array of ranges (bounded,
//     drops on overflow; Fig. 6)
//   - Filter: a hash table marking exact addresses (false negatives on
//     collision, never false positives)
//
// All implementations are conservative: Contains may under-report
// (missing an elision opportunity) but never over-reports, which is
// the correctness requirement for a direct-update STM (Sec. 3.1.2).
package capture

import "repro/internal/mem"

// Log records the memory ranges allocated by (or annotated as private
// to) a transaction or thread, and answers containment queries from
// the STM barriers. A Log is confined to a single thread.
type Log interface {
	// Insert records the range [start, end).
	Insert(start, end mem.Addr)
	// Remove forgets the range [start, end). Removing a range that was
	// never recorded (e.g. dropped by a bounded implementation) is a
	// no-op.
	Remove(start, end mem.Addr)
	// Contains reports whether the whole access [addr, addr+size) lies
	// inside some recorded range. It must never return true for memory
	// that is not currently recorded (no false positives).
	Contains(addr mem.Addr, size int) bool
	// Clear empties the log (called at transaction end).
	Clear()
	// Len reports how many ranges (tree, array) or marked words
	// (filter) are currently recorded.
	Len() int
}

// Kind selects a Log implementation.
type Kind int

const (
	// KindTree is the precise balanced search tree of ranges.
	KindTree Kind = iota
	// KindArray is the bounded unsorted range array.
	KindArray
	// KindFilter is the hash-table address filter.
	KindFilter
)

// String returns the paper's name for the implementation.
func (k Kind) String() string {
	switch k {
	case KindTree:
		return "tree"
	case KindArray:
		return "array"
	case KindFilter:
		return "filter"
	}
	return "unknown"
}

// DefaultArrayCap is the number of ranges in one 64-byte cache line of
// (start, end) pairs on a 32-bit machine, the paper's Fig. 6 layout.
const DefaultArrayCap = 4

// DefaultFilterBits sizes the filter at 1<<DefaultFilterBits slots.
const DefaultFilterBits = 10

// New creates a Log of the given kind with default parameters.
func New(k Kind) Log {
	switch k {
	case KindTree:
		return NewTree()
	case KindArray:
		return NewArray(DefaultArrayCap)
	case KindFilter:
		return NewFilter(DefaultFilterBits)
	}
	panic("capture: unknown Kind")
}
