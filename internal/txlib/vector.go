package txlib

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Vector is a growable array of words (STAMP's vector.c, as used by
// bayes' query vectors — the paper's Fig. 1(b) thread-local example).
//
// Layout:
//
//	header: [0] size  [1] cap  [2] data ptr
const (
	vecSize = 0
	vecCap  = 1
	vecData = 2
	vecHdr  = 3
)

// NewVector allocates a vector with the given initial capacity.
func NewVector(tx *stm.Tx, capacity int) mem.Addr {
	if capacity < 1 {
		capacity = 1
	}
	v := tx.Alloc(vecHdr)
	d := tx.Alloc(capacity)
	tx.Store(v+vecSize, 0, stm.AccFresh)
	tx.Store(v+vecCap, uint64(capacity), stm.AccFresh)
	tx.StoreAddr(v+vecData, d, stm.AccFresh)
	return v
}

// VecSize returns the element count.
func VecSize(tx *stm.Tx, v mem.Addr, mode stm.Acc) int {
	return int(tx.Load(v+vecSize, mode))
}

// VecPushBack appends val, growing the backing array if needed.
func VecPushBack(tx *stm.Tx, v mem.Addr, val uint64, mode stm.Acc) {
	size := tx.Load(v+vecSize, mode)
	capWords := tx.Load(v+vecCap, mode)
	data := tx.LoadAddr(v+vecData, mode)
	if size == capWords {
		newCap := capWords * 2
		nd := tx.Alloc(int(newCap))
		for i := mem.Addr(0); i < mem.Addr(size); i++ {
			tx.Store(nd+i, tx.Load(data+i, mode), stm.AccFresh)
		}
		tx.Free(data)
		tx.StoreAddr(v+vecData, nd, mode)
		tx.Store(v+vecCap, newCap, mode)
		data = nd
	}
	tx.Store(data+mem.Addr(size), val, mode)
	tx.Store(v+vecSize, size+1, mode)
}

// VecGet returns element i. It panics on out-of-range access, like a
// Go slice.
func VecGet(tx *stm.Tx, v mem.Addr, i int, mode stm.Acc) uint64 {
	if uint64(i) >= tx.Load(v+vecSize, mode) {
		panic("txlib: VecGet out of range")
	}
	data := tx.LoadAddr(v+vecData, mode)
	return tx.Load(data+mem.Addr(i), mode)
}

// VecSet overwrites element i.
func VecSet(tx *stm.Tx, v mem.Addr, i int, val uint64, mode stm.Acc) {
	if uint64(i) >= tx.Load(v+vecSize, mode) {
		panic("txlib: VecSet out of range")
	}
	data := tx.LoadAddr(v+vecData, mode)
	tx.Store(data+mem.Addr(i), val, mode)
}

// VecClear resets the size to zero, keeping the capacity.
func VecClear(tx *stm.Tx, v mem.Addr, mode stm.Acc) {
	tx.Store(v+vecSize, 0, mode)
}

// VecFree frees the backing array and header.
func VecFree(tx *stm.Tx, v mem.Addr, mode stm.Acc) {
	tx.Free(tx.LoadAddr(v+vecData, mode))
	tx.Free(v)
}
