package core

import "testing"

// TestFacade exercises the paper's headline behaviour end to end
// through the package-core API: a transaction that allocates, writes
// captured memory barrier-free, publishes it, and commits.
func TestFacade(t *testing.T) {
	rt := New(MemConfig{GlobalWords: 1 << 8, HeapWords: 1 << 16, StackWords: 1 << 10, MaxThreads: 2},
		RuntimeAll(KindTree))
	th := rt.Thread(0)
	shared := rt.Space().AllocGlobal(1)

	ok := th.Atomic(func(tx *Tx) {
		p := tx.Alloc(4)
		tx.Store(p, 42, AccFresh) // captured: elided
		tx.StoreAddr(shared, p, AccShared)
	})
	if !ok {
		t.Fatal("transaction did not commit")
	}
	s := rt.Stats()
	if s.WriteElided() == 0 {
		t.Error("no barriers elided through the facade")
	}
	p := Addr(rt.Space().Load(shared))
	if rt.Space().Load(p) != 42 {
		t.Error("published captured block lost its value")
	}
}
