// Extkv: writing and registering an external scenario.
//
//	go run ./examples/extkv
//
// This is the worked example behind the README's "Writing your own
// scenario" section: a miniature key-value store defined entirely
// against the public tm API — no internal packages — registered with
// tm.RegisterWorkload, and then driven through tm/bench exactly like
// the in-tree STAMP ports and the tmkv scenario pack. The store keeps
// a fixed-size bucket table in the globals region; every put assembles
// its record inside the transaction (captured memory) before linking
// it, so the capture report shows the paper's optimizations firing on
// code this repository has never seen.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/tm"
	"repro/tm/bench"
)

// record layout: [0] next  [1] key  [2..] payload
const (
	recNext    = 0
	recKey     = 1
	recPayload = 2
	payload    = 6
	recSize    = recPayload + payload
)

// miniKV implements tm.Workload.
type miniKV struct {
	buckets tm.Struct // globals: bucket heads (Ptr per slot)
	nslots  int
	ops     int
}

func newMiniKV() *miniKV { return &miniKV{nslots: 128, ops: 4096} }

func (m *miniKV) Name() string { return "extkv" }

func (m *miniKV) MemConfig() tm.MemConfig {
	return tm.MemConfig{GlobalWords: 1 << 10, HeapWords: 1 << 20, StackWords: 1 << 10, MaxThreads: 16}
}

func (m *miniKV) Setup(rt *tm.Runtime) {
	m.buckets = rt.AllocGlobal(m.nslots)
}

func (m *miniKV) Run(rt *tm.Runtime, nthreads int) {
	rt.Parallel(nthreads, func(th *tm.Thread, tid, ntotal int) {
		r := rand.New(rand.NewSource(int64(tid + 1)))
		ops := m.ops / ntotal
		for i := 0; i < ops; i++ {
			key := uint64(r.Intn(512))
			slot := m.buckets.Ptr(int(key) % m.nslots)
			th.Atomic(func(tx *tm.Tx) {
				// Walk the chain; loaded pointers carry unknown
				// provenance, so these reads keep their barriers.
				for cur := slot.Load(tx); !cur.IsNil(); {
					if cur.Word(recKey).Load(tx) == key {
						return // present: done
					}
					cur = cur.Ptr(recNext).Load(tx)
				}
				// Absent: build the record in captured memory. The
				// reference from tx.Alloc carries fresh provenance, so
				// the compiler profile elides these stores statically
				// and the runtime profiles catch them in the
				// allocation log.
				rec := tx.Alloc(recSize)
				rec.Word(recKey).Store(tx, key)
				for j := 0; j < payload; j++ {
					rec.Word(recPayload+j).Store(tx, key*31+uint64(j))
				}
				rec.Ptr(recNext).Store(tx, slot.Load(tx))
				slot.Store(tx, rec) // publish
			})
		}
	})
}

func (m *miniKV) Validate(rt *tm.Runtime) error {
	// Every chained record must live in the slot its key hashes to.
	for s := 0; s < m.nslots; s++ {
		for cur := m.buckets.Ptr(s).Peek(rt); !cur.IsNil(); {
			key := cur.Word(recKey).Peek(rt)
			if int(key)%m.nslots != s {
				return fmt.Errorf("extkv: key %d chained in slot %d", key, s)
			}
			cur = cur.Ptr(recNext).Peek(rt)
		}
	}
	return nil
}

func main() {
	// Registration is all it takes: the harness, the matrix, and every
	// report writer resolve workloads through the same registry.
	tm.RegisterWorkload("extkv", func() tm.Workload { return newMiniKV() })

	fmt.Println("registered workloads:", bench.AllWorkloads())
	fmt.Println()

	rows, err := bench.MeasureCaptureStats("extkv", bench.CaptureConfigs())
	if err != nil {
		fmt.Fprintln(os.Stderr, "extkv:", err)
		os.Exit(1)
	}
	bench.WriteCaptureStats(os.Stdout, rows)
	fmt.Println()

	res, err := bench.Run("extkv", tm.RuntimeAll(tm.LogTree), 4, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "extkv:", err)
		os.Exit(1)
	}
	fmt.Printf("4 threads, runtime capture: median %v, %d commits, %.2f aborts/commit\n",
		res.Median().Round(1000), res.Stats.Commits, res.Stats.AbortRatio())
}
