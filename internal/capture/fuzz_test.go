package capture

import (
	"sort"
	"testing"

	"repro/internal/mem"
)

// The fuzz harness drives a Log with the operation mix the STM
// produces — disjoint range inserts (allocations), exact removes
// (frees), containment probes, and clears (transaction end) — decoded
// from the fuzz input, against a range-set oracle. The contract under
// test is the paper's conservativeness requirement: Contains may
// under-report captured memory but must never over-report it, and the
// precise tree must not under-report either.

// oracleRange is one live range in the reference model.
type oracleRange struct{ start, end mem.Addr }

// oracle is the exact reference model: the sorted set of live ranges.
type oracle struct{ ranges []oracleRange }

func (o *oracle) overlaps(start, end mem.Addr) bool {
	for _, r := range o.ranges {
		if start < r.end && r.start < end {
			return true
		}
	}
	return false
}

func (o *oracle) insert(start, end mem.Addr) { o.ranges = append(o.ranges, oracleRange{start, end}) }

func (o *oracle) remove(i int) {
	o.ranges[i] = o.ranges[len(o.ranges)-1]
	o.ranges = o.ranges[:len(o.ranges)-1]
}

// contains reports whether [addr, addr+size) lies inside one live range.
func (o *oracle) contains(addr mem.Addr, size int) bool {
	for _, r := range o.ranges {
		if addr >= r.start && addr+mem.Addr(size) <= r.end {
			return true
		}
	}
	return false
}

// wordsLive reports whether every word of [addr, addr+size) lies in
// some live range. This is the safety property elision rests on: a
// true Contains is only ever dangerous if it covers an unrecorded
// word. The word-granular filter legitimately answers true for an
// access spanning two adjacent recorded ranges, which contains (the
// single-range reading, matched exactly by the tree) rejects.
func (o *oracle) wordsLive(addr mem.Addr, size int) bool {
	for i := 0; i < size; i++ {
		if !o.contains(addr+mem.Addr(i), 1) {
			return false
		}
	}
	return true
}

// fuzzLog interprets data as an op sequence over a fresh log of the
// given kind. precise asserts the no-false-negative direction too
// (only the tree guarantees it).
func fuzzLog(t *testing.T, k Kind, data []byte, precise bool) {
	t.Helper()
	l := New(k)
	var o oracle
	// Small address universe and sizes force collisions (filter),
	// overflow (array), and rebalancing (tree).
	const universe = 512
	next := func(i int) uint64 {
		if i >= len(data) {
			return 0
		}
		return uint64(data[i])
	}
	for i := 0; i+2 < len(data); i += 3 {
		op := next(i) % 8
		addr := mem.Addr(next(i+1) * 2 % universe)
		size := int(next(i+2)%48) + 1
		switch {
		case op <= 2: // insert a fresh disjoint range
			if o.overlaps(addr, addr+mem.Addr(size)) {
				continue // allocator never produces overlapping blocks
			}
			l.Insert(addr, addr+mem.Addr(size))
			o.insert(addr, addr+mem.Addr(size))
		case op == 3: // remove a live range, chosen by the input
			if len(o.ranges) == 0 {
				continue
			}
			j := int(next(i+1)) % len(o.ranges)
			r := o.ranges[j]
			l.Remove(r.start, r.end)
			o.remove(j)
		case op == 4: // remove an absent range: must be a no-op
			if o.overlaps(addr, addr+mem.Addr(size)) {
				continue
			}
			l.Remove(addr, addr+mem.Addr(size))
		case op == 5 && next(i+1)%16 == 0: // transaction end
			l.Clear()
			o.ranges = o.ranges[:0]
		default: // containment probe
			got := l.Contains(addr, size)
			if got && !o.wordsLive(addr, size) {
				t.Fatalf("%v: Contains(%d,%d) = true for unrecorded memory (live %v)",
					k, addr, size, o.sorted())
			}
			if precise {
				if want := o.contains(addr, size); got != want {
					t.Fatalf("%v: Contains(%d,%d) = %v, oracle says %v (live %v)",
						k, addr, size, got, want, o.sorted())
				}
			}
		}
	}
	// Epilogue: sweep the whole universe at the final state — every
	// positive answer must cover only live words (all kinds), and the
	// precise tree must also still find each live range.
	for a := mem.Addr(0); a < universe; a += 5 {
		for _, size := range []int{1, 3} {
			if l.Contains(a, size) && !o.wordsLive(a, size) {
				t.Fatalf("%v: epilogue Contains(%d,%d) = true for unrecorded memory (live %v)",
					k, a, size, o.sorted())
			}
		}
	}
	for _, r := range o.ranges {
		if precise && !l.Contains(r.start, int(r.end-r.start)) {
			t.Fatalf("%v: epilogue false negative on [%d,%d)", k, r.start, r.end)
		}
	}
	if precise {
		if want := len(o.ranges); l.Len() != want {
			t.Fatalf("%v: Len = %d, oracle has %d ranges", k, l.Len(), want)
		}
	}
	// Clear must empty the log: no probe may hit afterwards.
	l.Clear()
	for a := mem.Addr(0); a < universe; a += 7 {
		if l.Contains(a, 1) {
			t.Fatalf("%v: Contains(%d,1) = true after Clear", k, a)
		}
	}
}

func (o *oracle) sorted() []oracleRange {
	rs := append([]oracleRange(nil), o.ranges...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].start < rs[j].start })
	return rs
}

// seedCorpus feeds each target inputs that reach every op: dense
// inserts, remove/probe interleavings, clears, and empty/short inputs.
func seedCorpus(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 5})
	f.Add([]byte{0, 10, 5, 7, 10, 5, 3, 0, 0})
	f.Add([]byte{0, 1, 8, 1, 40, 8, 2, 80, 8, 7, 1, 8, 3, 1, 0, 7, 1, 8})
	f.Add([]byte{0, 0, 48, 0, 60, 48, 0, 120, 48, 0, 180, 48, 0, 240, 48, 7, 60, 24})
	f.Add([]byte{5, 0, 1, 0, 9, 9, 5, 16, 2, 7, 9, 9})
	f.Add([]byte{4, 33, 12, 7, 33, 12, 0, 33, 12, 7, 33, 12})
	longer := make([]byte, 240)
	for i := range longer {
		longer[i] = byte(i*37 + 11)
	}
	f.Add(longer)
}

// FuzzTree fuzzes the precise balanced-tree log; the tree must agree
// with the oracle exactly, and its internal invariants must hold.
func FuzzTree(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzLog(t, KindTree, data, true)
	})
}

// FuzzArray fuzzes the bounded range array: conservative only (drops
// on overflow), so just the no-false-positive direction holds.
func FuzzArray(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzLog(t, KindArray, data, false)
	})
}

// FuzzFilter fuzzes the hash-table address filter: collisions produce
// false negatives, never false positives.
func FuzzFilter(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzLog(t, KindFilter, data, false)
	})
}
