package wal

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Checkpoints are content-addressed, venti-style: the snapshot is split
// into fixed-size chunks of words, each chunk is keyed by the SHA-256
// of its bytes (its "score"), and only chunks whose score is not
// already stored are appended to a pack file. A sorted fixed-width
// index file per pack maps scores to pack offsets, and a small JSON
// manifest per checkpoint lists the score sequence plus the runtime
// metadata (clock, bump pointers, geometry, log cut) recovery needs.
// Successive checkpoints of a mostly-idle space therefore cost almost
// nothing: unchanged chunks dedup against the index.
const (
	packEntryHdr  = scoreLen + 4 // score + u32 word count
	idxEntryLen   = scoreLen + 8 + 8 + 4
	scoreLen      = 32
	manifestKind  = "repro/wal-checkpoint/v1"
	defaultChunkW = 1 << 12
)

// PackName, IndexName, and ManifestName name the on-disk artifacts of
// pack p / checkpoint n.
func PackName(p uint64) string     { return fmt.Sprintf("pack-%06d.pack", p) }
func IndexName(p uint64) string    { return fmt.Sprintf("pack-%06d.idx", p) }
func ManifestName(n uint64) string { return fmt.Sprintf("cp-%08d.json", n) }

// Score is the content address of one chunk.
type Score [scoreLen]byte

func (s Score) String() string { return hex.EncodeToString(s[:]) }

// Geometry mirrors mem.Config so a manifest fully determines the shape
// of the space being restored. wal stays a stdlib-only leaf package, so
// the fields are copied rather than importing internal/mem.
type Geometry struct {
	GlobalWords int `json:"globalWords"`
	HeapWords   int `json:"heapWords"`
	StackWords  int `json:"stackWords"`
	MaxThreads  int `json:"maxThreads"`
}

// Manifest is the JSON descriptor of one checkpoint.
type Manifest struct {
	Format      string   `json:"format"`
	Seq         uint64   `json:"seq"`
	Clock       uint64   `json:"clock"`
	GlobalsNext uint64   `json:"globalsNext"`
	HeapNext    uint64   `json:"heapNext"`
	Geometry    Geometry `json:"geometry"`
	SpaceWords  int      `json:"spaceWords"`
	ChunkWords  int      `json:"chunkWords"`
	// CutSeg/CutOff are the log position at snapshot time: every record
	// before the cut is reflected in the snapshot; replay starts here.
	CutSeg uint64 `json:"cutSeg"`
	CutOff uint64 `json:"cutOff"`
	// Scores lists the chunk scores in space order (hex).
	Scores []string `json:"scores"`
	// Sum is an FNV-1a 64 checksum of the raw words, verified at load.
	Sum uint64 `json:"sum"`
}

// Snapshot is the input to WriteCheckpoint.
type Snapshot struct {
	Words       []uint64
	Clock       uint64
	GlobalsNext uint64
	HeapNext    uint64
	Geometry    Geometry
	CutSeg      uint64
	CutOff      uint64
}

// StoreStats counts checkpoint activity.
type StoreStats struct {
	Checkpoints   uint64
	ChunksWritten uint64 // chunks appended to packs
	ChunksDeduped uint64 // chunks already present
	BytesWritten  uint64 // pack bytes appended
}

type chunkLoc struct {
	pack   uint64
	off    int64 // offset of the entry header within the pack
	nwords int
}

// CheckpointStore owns the packs, indexes, and manifests of one
// durability directory (shared with the log's segments).
type CheckpointStore struct {
	dir        string
	chunkWords int

	mu       sync.Mutex
	index    map[Score]chunkLoc
	nextPack uint64
	nextCP   uint64
	stats    StoreStats
}

// OpenStore opens dir's checkpoint store, loading every existing pack
// index so new checkpoints dedup against chunks written by earlier
// incarnations. chunkWords <= 0 selects the default (4096 words).
func OpenStore(dir string, chunkWords int) (*CheckpointStore, error) {
	if chunkWords <= 0 {
		chunkWords = defaultChunkW
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &CheckpointStore{dir: dir, chunkWords: chunkWords, index: make(map[Score]chunkLoc)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		var n uint64
		switch {
		case matchName(e.Name(), "pack-%06d.idx", &n):
			if err := st.loadIndex(n); err != nil {
				return nil, err
			}
			if n+1 > st.nextPack {
				st.nextPack = n + 1
			}
		case matchName(e.Name(), "pack-%06d.pack", &n):
			if n+1 > st.nextPack {
				st.nextPack = n + 1
			}
		case matchName(e.Name(), "cp-%08d.json", &n):
			if n+1 > st.nextCP {
				st.nextCP = n + 1
			}
		}
	}
	return st, nil
}

func matchName(name, format string, out *uint64) bool {
	var n uint64
	if _, err := fmt.Sscanf(name, format, &n); err != nil {
		return false
	}
	if fmt.Sprintf(format, n) != name {
		return false
	}
	*out = n
	return true
}

func (st *CheckpointStore) loadIndex(pack uint64) error {
	b, err := os.ReadFile(filepath.Join(st.dir, IndexName(pack)))
	if err != nil {
		return err
	}
	if len(b)%idxEntryLen != 0 {
		return fmt.Errorf("wal: index %s: size %d not a multiple of %d", IndexName(pack), len(b), idxEntryLen)
	}
	for off := 0; off < len(b); off += idxEntryLen {
		var sc Score
		copy(sc[:], b[off:])
		st.index[sc] = chunkLoc{
			pack:   binary.LittleEndian.Uint64(b[off+scoreLen:]),
			off:    int64(binary.LittleEndian.Uint64(b[off+scoreLen+8:])),
			nwords: int(binary.LittleEndian.Uint32(b[off+scoreLen+16:])),
		}
	}
	return nil
}

// ChunkWords reports the chunking granularity.
func (st *CheckpointStore) ChunkWords() int { return st.chunkWords }

// Stats returns a snapshot of the store counters.
func (st *CheckpointStore) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

func wordBytes(words []uint64, buf []byte) []byte {
	if cap(buf) < 8*len(words) {
		buf = make([]byte, 8*len(words))
	}
	buf = buf[:8*len(words)]
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return buf
}

// fnvWords hashes words with FNV-1a 64 for manifest integrity.
func fnvWords(words []uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// WriteCheckpoint chunks snap.Words, appends every novel chunk to a new
// pack (with its sorted index), and finalizes the manifest with a
// tmp+rename so a crash mid-checkpoint leaves no partial manifest for
// recovery to trust.
func (st *CheckpointStore) WriteCheckpoint(snap Snapshot) (*Manifest, error) {
	st.mu.Lock()
	defer st.mu.Unlock()

	cw := st.chunkWords
	nchunks := (len(snap.Words) + cw - 1) / cw
	m := &Manifest{
		Format:      manifestKind,
		Seq:         st.nextCP,
		Clock:       snap.Clock,
		GlobalsNext: snap.GlobalsNext,
		HeapNext:    snap.HeapNext,
		Geometry:    snap.Geometry,
		SpaceWords:  len(snap.Words),
		ChunkWords:  cw,
		CutSeg:      snap.CutSeg,
		CutOff:      snap.CutOff,
		Scores:      make([]string, 0, nchunks),
		Sum:         fnvWords(snap.Words),
	}

	type novel struct {
		score  Score
		chunk  []uint64
		offset int64
	}
	var fresh []novel
	var scratch []byte
	for c := 0; c < nchunks; c++ {
		lo := c * cw
		hi := lo + cw
		if hi > len(snap.Words) {
			hi = len(snap.Words)
		}
		chunk := snap.Words[lo:hi]
		scratch = wordBytes(chunk, scratch)
		sc := Score(sha256.Sum256(scratch))
		m.Scores = append(m.Scores, sc.String())
		if _, ok := st.index[sc]; ok {
			st.stats.ChunksDeduped++
			continue
		}
		already := false
		for i := range fresh {
			if fresh[i].score == sc {
				already = true
				break
			}
		}
		if already {
			st.stats.ChunksDeduped++
			continue
		}
		fresh = append(fresh, novel{score: sc, chunk: chunk})
	}

	if len(fresh) > 0 {
		packID := st.nextPack
		var pack bytes.Buffer
		for i := range fresh {
			fresh[i].offset = int64(pack.Len())
			pack.Write(fresh[i].score[:])
			var hdr [4]byte
			binary.LittleEndian.PutUint32(hdr[:], uint32(len(fresh[i].chunk)))
			pack.Write(hdr[:])
			pack.Write(wordBytes(fresh[i].chunk, nil))
		}
		if err := writeFileSync(filepath.Join(st.dir, PackName(packID)), pack.Bytes()); err != nil {
			return nil, err
		}
		sort.Slice(fresh, func(i, j int) bool {
			return bytes.Compare(fresh[i].score[:], fresh[j].score[:]) < 0
		})
		idx := make([]byte, 0, len(fresh)*idxEntryLen)
		for i := range fresh {
			idx = append(idx, fresh[i].score[:]...)
			var tail [20]byte
			binary.LittleEndian.PutUint64(tail[0:], packID)
			binary.LittleEndian.PutUint64(tail[8:], uint64(fresh[i].offset))
			binary.LittleEndian.PutUint32(tail[16:], uint32(len(fresh[i].chunk)))
			idx = append(idx, tail[:]...)
		}
		if err := writeFileSync(filepath.Join(st.dir, IndexName(packID)), idx); err != nil {
			return nil, err
		}
		for i := range fresh {
			st.index[fresh[i].score] = chunkLoc{pack: packID, off: fresh[i].offset, nwords: len(fresh[i].chunk)}
		}
		st.nextPack++
		st.stats.ChunksWritten += uint64(len(fresh))
		st.stats.BytesWritten += uint64(pack.Len())
	}

	mj, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(st.dir, ManifestName(m.Seq))
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, append(mj, '\n')); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	st.nextCP = m.Seq + 1
	st.stats.Checkpoints++
	return m, nil
}

// ReadChunk resolves a score to its words.
func (st *CheckpointStore) ReadChunk(sc Score) ([]uint64, error) {
	st.mu.Lock()
	loc, ok := st.index[sc]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("wal: chunk %s not indexed", sc)
	}
	f, err := os.Open(filepath.Join(st.dir, PackName(loc.pack)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hdr := make([]byte, packEntryHdr)
	if _, err := f.ReadAt(hdr, loc.off); err != nil {
		return nil, err
	}
	if !bytes.Equal(hdr[:scoreLen], sc[:]) {
		return nil, fmt.Errorf("wal: pack %d offset %d holds score %x, want %s", loc.pack, loc.off, hdr[:scoreLen], sc)
	}
	n := int(binary.LittleEndian.Uint32(hdr[scoreLen:]))
	if n != loc.nwords {
		return nil, fmt.Errorf("wal: chunk %s: pack says %d words, index says %d", sc, n, loc.nwords)
	}
	raw := make([]byte, 8*n)
	if _, err := f.ReadAt(raw, loc.off+packEntryHdr); err != nil {
		return nil, err
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(raw[8*i:])
	}
	return words, nil
}

func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
