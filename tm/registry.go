package tm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Workload is one benchmark scenario the harness can run: it sizes its
// own address space, populates initial data, executes a timed parallel
// phase, and checks post-run invariants. Instances are single use
// (Setup/Run/Validate once each); the factory creates a fresh one per
// run.
type Workload interface {
	// Name is the workload's registry/report name.
	Name() string
	// MemConfig sizes the simulated address space for this workload.
	MemConfig() MemConfig
	// Setup populates initial data single-threadedly on thread 0.
	Setup(rt *Runtime)
	// Run executes the timed parallel phase on nthreads workers.
	Run(rt *Runtime, nthreads int)
	// Validate checks post-run invariants (called after Run returns).
	Validate(rt *Runtime) error
}

// WorkloadFactory creates a fresh workload instance.
type WorkloadFactory func() Workload

// regEntry is one registration: the factory plus an optional one-line
// description surfaced by listings.
type regEntry struct {
	factory WorkloadFactory
	desc    string
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]regEntry)
)

// RegisterWorkload adds a workload factory under name. The in-tree
// STAMP ports self-register via internal/stamp; external scenario
// packages call it from init to plug into the same harness, reports,
// and bench matrix. It panics on an empty name or a duplicate
// registration, like database/sql.Register.
func RegisterWorkload(name string, f WorkloadFactory) {
	RegisterWorkloadDesc(name, "", f)
}

// RegisterWorkloadDesc is RegisterWorkload with a one-line description
// attached, so listings (stampbench -experiment list, CI logs) can
// explain what each workload models without resolving it.
func RegisterWorkloadDesc(name, desc string, f WorkloadFactory) {
	if name == "" || f == nil {
		panic("tm: RegisterWorkload with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("tm: duplicate workload " + name)
	}
	registry[name] = regEntry{factory: f, desc: desc}
}

// WorkloadDescription returns the description a workload was
// registered with ("" when none was given or the name is unknown).
func WorkloadDescription(name string) string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[name].desc
}

// Workloads returns the registered workload names, sorted.
func Workloads() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewWorkload instantiates a registered workload. An unknown name is
// an error that lists what is registered.
func NewWorkload(name string) (Workload, error) {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("tm: unknown workload %q (registered: %s)",
			name, strings.Join(Workloads(), ", "))
	}
	return e.factory(), nil
}
