package tlc

// AST node definitions. Positions are kept on the nodes that can fail
// type checking or need diagnostics.

// Program is a parsed TL source file.
type Program struct {
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// Type is a TL type: int, bool, a pointer to a named struct, or a
// fixed-size int array (only as a local/struct field).
type Type struct {
	Kind   TypeKind
	Elem   string // struct name for pointers
	ArrLen int    // for arrays
}

// TypeKind enumerates TL types.
type TypeKind int

// TL type kinds.
const (
	TInt TypeKind = iota
	TBool
	TPtr
	TArray
	TVoid
)

func (t Type) String() string {
	switch t.Kind {
	case TInt:
		return "int"
	case TBool:
		return "bool"
	case TPtr:
		return "*" + t.Elem
	case TArray:
		return "array"
	case TVoid:
		return "void"
	}
	return "?"
}

// StructDecl is a struct type declaration.
type StructDecl struct {
	Name   string
	Fields []Field
	Line   int
}

// Field is one struct field; arrays of int are allowed inline.
type Field struct {
	Name string
	Type Type
}

// VarDecl declares a global or local variable.
type VarDecl struct {
	Name string
	Type Type
	Line int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []VarDecl
	Ret    Type
	Body   *Block
	Line   int
}

// --- Statements ---

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is a { ... } statement list with its own scope.
type Block struct {
	Stmts []Stmt
}

// DeclStmt declares a local variable (zero initialized).
type DeclStmt struct {
	Decl VarDecl
}

// AssignStmt stores Rhs into an lvalue (variable, field, or index).
type AssignStmt struct {
	Lhs  Expr
	Rhs  Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Val  Expr // nil for void
	Line int
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X Expr
}

// AtomicStmt is a transaction: atomic { ... }.
type AtomicStmt struct {
	Body *Block
	Line int
}

// FreeStmt frees a heap block: free(p).
type FreeStmt struct {
	Ptr  Expr
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

// AbortStmt aborts the innermost atomic block (the paper's user abort).
type AbortStmt struct{ Line int }

func (*Block) stmt()        {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*AtomicStmt) stmt()   {}
func (*FreeStmt) stmt()     {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*AbortStmt) stmt()    {}

// --- Expressions ---

// Expr is an expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Val  uint64
	Line int
}

// BoolLit is true/false.
type BoolLit struct {
	Val  bool
	Line int
}

// NilLit is the nil pointer.
type NilLit struct{ Line int }

// Ident references a variable (local, param, or global).
type Ident struct {
	Name string
	Line int
}

// FieldExpr is X.Name on a struct pointer.
type FieldExpr struct {
	X    Expr
	Name string
	Line int
}

// IndexExpr is X[I] on an array field or array local.
type IndexExpr struct {
	X    Expr
	I    Expr
	Line int
}

// AllocExpr allocates a struct on the heap: alloc T.
type AllocExpr struct {
	TypeName string
	Line     int
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   tokKind
	L, R Expr
	Line int
}

// UnExpr is unary ! or -.
type UnExpr struct {
	Op   tokKind
	X    Expr
	Line int
}

func (*IntLit) expr()    {}
func (*BoolLit) expr()   {}
func (*NilLit) expr()    {}
func (*Ident) expr()     {}
func (*FieldExpr) expr() {}
func (*IndexExpr) expr() {}
func (*AllocExpr) expr() {}
func (*CallExpr) expr()  {}
func (*BinExpr) expr()   {}
func (*UnExpr) expr()    {}
