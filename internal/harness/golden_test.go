package harness

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenarios/tmkv"
	"repro/tm"
)

// update regenerates the golden report: go test ./internal/harness -update
var update = flag.Bool("update", false, "rewrite golden report files")

func init() {
	// A fast fixed-seed tmkv configuration for the golden matrix; the
	// full-size variants register themselves from the scenario package.
	tm.RegisterWorkload("tmkv-small", func() tm.Workload { return tmkv.New(tmkv.Small()) })
}

// renderGoldenReport runs the small fixed-seed matrix single-threaded
// and renders every deterministic report: barrier counts never depend
// on scheduling at one thread, so the exact table text is reproducible
// (timing-based tables, which are not, stay out).
func renderGoldenReport() (string, error) {
	const bench = "tmkv-small"
	var buf bytes.Buffer

	rows, err := MeasureCaptureStats(bench, CaptureConfigs())
	if err != nil {
		return "", err
	}
	WriteCaptureStats(&buf, rows)
	fmt.Fprintln(&buf)

	read, write, all, err := MeasureBreakdown(bench)
	if err != nil {
		return "", err
	}
	WriteFig8(&buf, "reads", []Breakdown{read})
	WriteFig8(&buf, "writes", []Breakdown{write})
	WriteFig8(&buf, "all", []Breakdown{all})
	fmt.Fprintln(&buf)

	rm, err := MeasureRemoval(bench)
	if err != nil {
		return "", err
	}
	WriteFig9(&buf, "reads", []Removal{rm})
	WriteFig9(&buf, "writes", []Removal{rm})
	fmt.Fprintln(&buf)

	res, err := Run(bench, tm.Baseline(), 1, 1)
	if err != nil {
		return "", err
	}
	WriteTable1(&buf, map[string]map[string]float64{
		bench: {"baseline": res.Stats.AbortRatio()},
	}, []string{"baseline"}, 1)

	return buf.String(), nil
}

// TestGoldenReport locks the rendered report text — layout and
// counter values — against testdata/report.golden. A legitimate change
// to barriers, allocator, scenario, or table formatting regenerates it
// with -update; an accidental one fails here.
func TestGoldenReport(t *testing.T) {
	got, err := renderGoldenReport()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/harness -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from %s (re-run with -update if intended)\n--- got ---\n%s--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenReportStable re-renders the report and asserts it is
// byte-identical run to run — the determinism the golden file relies
// on, checked independently of the checked-in bytes.
func TestGoldenReportStable(t *testing.T) {
	a, err := renderGoldenReport()
	if err != nil {
		t.Fatal(err)
	}
	b, err := renderGoldenReport()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two renders differ:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}
