package vacation

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/stm"
)

func smallCfg() Config {
	return Config{Name: "vacation-test", Relations: 256, NumTx: 512,
		QueriesPerTx: 4, QueryRangePct: 60, PctUser: 80, Seed: 42}
}

func runCfg(t *testing.T, cfg Config, opt stm.OptConfig, threads int) *stm.Runtime {
	t.Helper()
	b := NewWith(cfg)
	rt := stm.New(b.MemConfig(), opt)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("validate: %v", err)
	}
	rt.Validate()
	return rt
}

func TestSmallSerial(t *testing.T) {
	rt := runCfg(t, smallCfg(), stm.Baseline(), 1)
	s := rt.Stats()
	if s.Commits == 0 || s.TxAllocs == 0 {
		t.Errorf("commits=%d allocs=%d; expected transactional work", s.Commits, s.TxAllocs)
	}
}

func TestSmallParallelContended(t *testing.T) {
	cfg := smallCfg()
	cfg.QueryRangePct = 10 // tiny range: heavy contention
	rt := runCfg(t, cfg, stm.RuntimeAll(capture.KindTree), 8)
	if rt.Stats().Aborts == 0 {
		t.Log("note: no conflicts under heavy contention this run")
	}
}

func TestHighAndLowPresets(t *testing.T) {
	h, l := HighContention(), LowContention()
	if h.QueriesPerTx <= l.QueriesPerTx {
		t.Error("high contention must query more per transaction")
	}
	if h.QueryRangePct >= l.QueryRangePct {
		t.Error("high contention must query a smaller range")
	}
	if h.PctUser >= l.PctUser {
		t.Error("low contention runs more user transactions")
	}
}

// TestActionMixes drives skewed action mixes through the manager:
// reservations only, then deletions/updates only; invariants must hold
// for both.
func TestActionMixes(t *testing.T) {
	resOnly := smallCfg()
	resOnly.PctUser = 100
	runCfg(t, resOnly, stm.Baseline(), 2)

	delAndUpdate := smallCfg()
	delAndUpdate.PctUser = 0
	runCfg(t, delAndUpdate, stm.Baseline(), 2)
}

func TestDeterministicSetup(t *testing.T) {
	mk := func() uint64 {
		b := NewWith(smallCfg())
		rt := stm.New(b.MemConfig(), stm.Baseline())
		b.Setup(rt)
		// Hash the first table's total capacity as a determinism probe.
		var sum uint64
		th := rt.Thread(0)
		th.Atomic(func(tx *stm.Tx) {
			for id := 1; id <= 16; id++ {
				if p, ok := mapGetForTest(tx, b, 0, uint64(id)); ok {
					sum += tx.Load(p+resNumTotal, stm.AccShared)
				}
			}
		})
		return sum
	}
	if mk() != mk() {
		t.Error("setup is not deterministic")
	}
}
