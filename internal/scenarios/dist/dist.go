// Package dist holds the key/topic-selection helpers shared by the
// scenario packs (tmkv, tmmsg): a Zipfian sampler, the rank-scattering
// bijection that keeps the hot set from clustering, and the multi-word
// probe-key encoding.
package dist

import (
	"math"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stm"
)

// Zipf samples ranks in [0, n) with Zipfian skew using the standard
// YCSB/Gray et al. inversion method. The constants are precomputed
// once (the zeta sum is O(n)); Sample then costs one Pow per draw.
// Sampling is deterministic given the caller's generator, so every
// thread shares one Zipf but owns its prng.
type Zipf struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

func zetaSum(n int, theta float64) float64 {
	var z float64
	for i := 1; i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

// NewZipf builds a sampler over [0, n) with skew theta in (0, 1).
func NewZipf(n int, theta float64) *Zipf {
	zetan := zetaSum(n, theta)
	return &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zetaSum(2, theta)/zetan),
	}
}

// Sample draws a rank: rank 0 is the hottest.
func (z *Zipf) Sample(r *prng.R) int {
	u := r.Float()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// RankToKey spreads ranks over the key space with an odd-multiplier
// bijection (keys must be a power of two), so the hot set is not a
// contiguous id prefix that would cluster in an index.
func RankToKey(rank, keys int) uint64 {
	return (uint64(rank) * 0x9E3779B97F4A7C15) & uint64(keys-1)
}

// StackKey writes the packs' shared probe-key encoding for id into a
// transaction-local stack buffer: word 0 is the id, the rest mix it so
// equality needs the full multi-word compare (captured-stack traffic,
// like STAMP's iterator words).
func StackKey(tx *stm.Tx, id uint64, words int) mem.Addr {
	kb := tx.StackAlloc(words)
	tx.Store(kb, id, stm.AccStack)
	for i := 1; i < words; i++ {
		tx.Store(kb+mem.Addr(i), id*0x9E3779B97F4A7C15+uint64(i), stm.AccStack)
	}
	return kb
}
