// Package bayes ports STAMP's bayes: Bayesian network structure
// learning by hill climbing. A shared task list keeps candidate
// (variable, parent) insertions ordered by expected benefit; worker
// threads pop the best task, score it against precomputed pairwise
// co-occurrence counts (the adtree substitute: a large read-only table
// whose accesses the naive compiler instruments — bayes' big
// "not-required-other" slice in the paper's Fig. 8), accumulate the
// score in *per-thread query vectors* (the paper's Fig. 1(b)
// thread-local data, elidable only with the annotation API), and on
// success add the parent edge and push follow-up tasks.
//
// Substitution note: STAMP's adtree (a dynamic count index over the
// record set) is replaced by a dense pairwise count table computed at
// setup; both are read-only during the learning phase and are read on
// every score evaluation, which is the property the experiments use.
package bayes

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txlib"
)

// Config mirrors STAMP's learner parameters.
type Config struct {
	Name       string
	Vars       int // -v: variables in the network
	Records    int // -r: records used to build the counts
	MaxParents int // -p: parent cap per variable
	Seed       uint64
	// Annotate marks the per-thread query vectors with the paper's
	// addPrivateMemoryBlock API (Sec. 3.1.3) so configurations with
	// Annotations enabled can elide their barriers.
	Annotate bool
}

// Default returns the scaled-down bayes configuration.
func Default() Config {
	return Config{Name: "bayes", Vars: 64, Records: 2048, MaxParents: 6, Seed: 9}
}

// Task list keys order by descending benefit; key = ^benefit so the
// sorted list pops the best first.
const (
	taskVar    = 0
	taskParent = 1
	taskScore  = 2
	taskSize   = 3
)

// B is one bayes run.
type B struct {
	cfg Config

	counts  mem.Addr // Vars×Vars pairwise co-occurrence counts (read-only)
	singles mem.Addr // Vars single counts (read-only)
	parents mem.Addr // per-var parent list heads: Vars list addrs
	nParent mem.Addr // per-var parent counters
	tasks   mem.Addr // shared task list ordered by benefit
	applied mem.Addr // global count of applied edges

	inflight atomic.Int64 // queued-but-unprocessed tasks
}

func init() {
	stamp.Register("bayes",
		"STAMP bayes: Bayesian network structure learning over an adtree", func() stamp.Benchmark { return &B{cfg: Default()} })
}

// NewWith creates a bayes instance with a custom configuration.
func NewWith(cfg Config) *B { return &B{cfg: cfg} }

// Name implements stamp.Benchmark.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements stamp.Benchmark.
func (b *B) MemConfig() mem.Config {
	words := b.cfg.Vars*b.cfg.Vars + b.cfg.Vars*8 + (1 << 19)
	return mem.Config{GlobalWords: 1 << 10, HeapWords: words, StackWords: 1 << 12, MaxThreads: 32}
}

// Setup builds the count tables from synthetic records and seeds the
// task list with one candidate per variable.
func (b *B) Setup(rt *stm.Runtime) {
	r := prng.New(b.cfg.Seed)
	v := b.cfg.Vars
	th := rt.Thread(0)
	s := rt.Space()

	b.counts = th.Alloc(v * v)
	b.singles = th.Alloc(v)
	b.parents = th.Alloc(v)
	b.nParent = th.Alloc(v)
	b.applied = th.Alloc(1)

	// Synthetic records: each variable biased by a hidden dependency
	// on variable (i+1)%v so scores are non-trivial.
	rec := make([]byte, v)
	for n := 0; n < b.cfg.Records; n++ {
		for i := 0; i < v; i++ {
			rec[i] = byte(r.Intn(2))
		}
		for i := 0; i < v; i++ {
			if rec[(i+1)%v] == 1 && r.Intn(100) < 70 {
				rec[i] = 1
			}
		}
		for i := 0; i < v; i++ {
			if rec[i] == 1 {
				s.Store(b.singles+mem.Addr(i), s.Load(b.singles+mem.Addr(i))+1)
				for j := 0; j < v; j++ {
					if rec[j] == 1 {
						c := b.counts + mem.Addr(i*v+j)
						s.Store(c, s.Load(c)+1)
					}
				}
			}
		}
	}

	th.Atomic(func(tx *stm.Tx) {
		b.tasks = txlib.NewList(tx)
		for i := 0; i < v; i++ {
			l := txlib.NewList(tx)
			tx.StoreAddr(b.parents+mem.Addr(i), l, stm.AccFresh)
		}
	})
	// Seed one task per variable: candidate parent = (i+1)%v.
	for i := 0; i < v; i++ {
		i := i
		th.Atomic(func(tx *stm.Tx) {
			b.pushTask(tx, uint64(i), uint64((i+1)%b.cfg.Vars), 0)
		})
	}
	b.inflight.Store(int64(v))
}

// pushTask allocates a task record inside the transaction (captured)
// and inserts it into the shared benefit-ordered list.
func (b *B) pushTask(tx *stm.Tx, varID, parent, round uint64) {
	t := tx.Alloc(taskSize)
	tx.Store(t+taskVar, varID, stm.AccFresh)
	tx.Store(t+taskParent, parent, stm.AccFresh)
	tx.Store(t+taskScore, round, stm.AccFresh)
	// Key: earlier rounds first, then by variable (unique per (v,r)).
	key := round<<32 | varID
	txlib.ListInsert(tx, b.tasks, key, uint64(t), txlib.TM)
}

// Run executes the learner loop.
func (b *B) Run(rt *stm.Runtime, nthreads int) {
	v := b.cfg.Vars
	stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
		// The per-thread query vectors of the paper's Fig. 1(b):
		// allocated once per thread, reused across transactions —
		// thread-local but *not* transaction-local, so only the
		// annotation API can elide their barriers.
		qv := th.Alloc(v)
		qv2 := th.Alloc(v)
		if b.cfg.Annotate {
			th.AddPrivateBlock(qv, v)
			th.AddPrivateBlock(qv2, v)
		}
		for {
			var task mem.Addr
			th.Atomic(func(tx *stm.Tx) {
				task = 0
				if _, data, ok := txlib.ListRemoveHead(tx, b.tasks, txlib.TM); ok {
					task = mem.Addr(data)
				}
			})
			if task == 0 {
				if b.inflight.Load() == 0 {
					return
				}
				continue // a follow-up task may still be coming
			}
			queued := b.learn(th, task, qv, qv2)
			b.inflight.Add(queued - 1)
		}
		// Note: the private blocks stay annotated; threads are not
		// reused across benchmarks.
	})
}

// learn evaluates one task and applies it if beneficial, returning
// how many follow-up tasks it queued.
func (b *B) learn(th *stm.Thread, task, qv, qv2 mem.Addr) int64 {
	v := b.cfg.Vars
	var queued int64
	th.Atomic(func(tx *stm.Tx) {
		queued = 0
		varID := tx.Load(task+taskVar, stm.AccShared)
		parent := tx.Load(task+taskParent, stm.AccShared)
		round := tx.Load(task+taskScore, stm.AccShared)

		// Score: populate the query vectors (thread-local, AccAuto)
		// from the read-only count tables (AccAuto: instrumented by
		// the naive compiler, not captured, not hand-annotated).
		for j := 0; j < v; j++ {
			c := tx.Load(b.counts+mem.Addr(int(varID)*v+j), stm.AccAuto)
			tx.Store(qv+mem.Addr(j), c, stm.AccAuto)
		}
		for j := 0; j < v; j++ {
			c := tx.Load(b.counts+mem.Addr(int(parent)*v+j), stm.AccAuto)
			tx.Store(qv2+mem.Addr(j), c, stm.AccAuto)
		}
		var score uint64
		for j := 0; j < v; j++ {
			a := tx.Load(qv+mem.Addr(j), stm.AccAuto)
			c := tx.Load(qv2+mem.Addr(j), stm.AccAuto)
			if c != 0 {
				score += a * 1024 / (a + c)
			}
		}
		single := tx.Load(b.singles+mem.Addr(parent), stm.AccAuto)
		beneficial := score > single // synthetic acceptance criterion

		np := tx.Load(b.nParent+mem.Addr(varID), stm.AccShared)
		if beneficial && np < uint64(b.cfg.MaxParents) {
			// Apply: record the parent edge.
			plist := tx.LoadAddr(b.parents+mem.Addr(varID), stm.AccShared)
			if txlib.ListInsert(tx, plist, parent, score, txlib.TM) {
				tx.Store(b.nParent+mem.Addr(varID), np+1, stm.AccShared)
				tx.Store(b.applied, tx.Load(b.applied, stm.AccShared)+1, stm.AccShared)
				// Follow-up: try the next candidate parent.
				next := (parent + 1) % uint64(v)
				if next != varID && round+1 < uint64(b.cfg.MaxParents) {
					b.pushTask(tx, varID, next, round+1)
					queued++
				}
			}
		}
		tx.Free(task)
	})
	return queued
}

// Validate checks the structural invariants: parent counts within the
// cap and consistent with the lists, and the applied counter matching.
func (b *B) Validate(rt *stm.Runtime) error {
	var err error
	rt.Thread(0).Atomic(func(tx *stm.Tx) {
		if txlib.ListSize(tx, b.tasks, txlib.TM) != 0 {
			err = fmt.Errorf("task list not drained")
			return
		}
		var total uint64
		for i := 0; i < b.cfg.Vars; i++ {
			plist := tx.LoadAddr(b.parents+mem.Addr(i), stm.AccShared)
			n := txlib.ListSize(tx, plist, txlib.TM)
			if n > b.cfg.MaxParents {
				err = fmt.Errorf("var %d has %d parents > cap %d", i, n, b.cfg.MaxParents)
				return
			}
			if c := tx.Load(b.nParent+mem.Addr(i), stm.AccShared); c != uint64(n) {
				err = fmt.Errorf("var %d: counter %d != list size %d", i, c, n)
				return
			}
			total += uint64(n)
		}
		if got := tx.Load(b.applied, stm.AccShared); got != total {
			err = fmt.Errorf("applied counter %d != total parents %d", got, total)
		}
	})
	return err
}
