package stm

// This file is the contention-manager layer: the policy that decides
// what a thread does between a conflict abort and the retry of its
// transaction. Like the barrier engines (engine.go) the policy is
// compiled once per phase kind — conflict resolution is a regime
// property, not a runtime property: the capture-heavy publish path is
// short and cheap to retry (waiting only adds latency), while the
// contended cursor path is an RMW hot spot where randomized spinning
// wastes the slot and a park/wake discipline wins.
//
// A manager has one compiled hook, wait, dispatched from Atomic's
// retry loop. The hook runs at a precise point in the lifecycle: the
// conflicting attempt has fully unwound through abortTop, which
// released every ownership record the attempt held. A waiting thread
// therefore owns nothing, so no wait-for cycle through orecs can form
// and parking is deadlock-free by construction.
//
// The release side is not per-manager: commitTop, abortTop, and
// abortNested wake parked waiters right after storing the unlocked
// orec words, whatever manager the *releasing* phase compiled —
// a queue-phase thread may park on an owner running a backoff phase,
// and mixed-manager runtimes are the point of the layer. When nobody
// waits the hook is a single atomic load.
//
// Three policies are provided:
//
//	backoff  the paper's randomized exponential backoff (the extracted
//	         former Thread.backoff), behavior-preserving default
//	none     immediate retry; after cmNoneEscalateAfter attempts the
//	         policy escalates into backoff so symmetric writers cannot
//	         livelock each other
//	queue    park on the conflicting orec's owner and wake at its next
//	         release; conflicts that carry no owner (version overtakes,
//	         validation failures) fall back to backoff
//
// Stats.Waits counts the conflicts where the manager imposed a wait
// (a backoff spin, an engaged escalation, or a park); Stats.WaitNs is
// the time spent doing so. Both are lifecycle accounting like
// Commits/Aborts: kept under PerfMode, attributed to the phase the
// conflicting transaction ran in.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Contention-manager names, as accepted by OptConfig.CM and reported
// by Runtime.CMFor and PhaseStats.CM. The empty string selects
// CMBackoff.
const (
	CMBackoff = "backoff"
	CMNone    = "none"
	CMQueue   = "queue"
)

// ValidCM reports whether name is a known contention-manager name
// (the empty string selects the default, CMBackoff).
func ValidCM(name string) bool {
	switch name {
	case "", CMBackoff, CMNone, CMQueue:
		return true
	}
	return false
}

// CMName normalizes a configured manager name ("" = the default).
func CMName(name string) string {
	if name == "" {
		return CMBackoff
	}
	return name
}

// cmNoneEscalateAfter is the attempt count from which the none policy
// escalates into backoff. Below it retries are immediate — the policy's
// reason to exist; above it two symmetric writers repeatedly aborting
// each other are forced apart the same way the backoff policy forces
// them apart from attempt one.
const cmNoneEscalateAfter = 8

// cmgr is one compiled contention manager. wait runs between a
// conflict abort and the retry (see the file comment for the
// invariants at that point). Managers are stateless singletons: all
// mutable state lives in the Thread (rng, spin sink), the Tx (attempt
// count, recorded conflict owner), or the Runtime (wait gates), so one
// compiled manager is shared by every phase and runtime that names it.
type cmgr struct {
	name string
	wait func(th *Thread, tx *Tx)
}

// The manager table: index order is the adaptState.cmSel encoding.
const (
	cmIdxBackoff = iota
	cmIdxNone
	cmIdxQueue
)

var cmgrs = [...]*cmgr{
	cmIdxBackoff: {name: CMBackoff, wait: cmBackoffWait},
	cmIdxNone:    {name: CMNone, wait: cmNoneWait},
	cmIdxQueue:   {name: CMQueue, wait: cmQueueWait},
}

// cmIndex maps a validated manager name to its table index.
func cmIndex(name string) int {
	switch name {
	case CMNone:
		return cmIdxNone
	case CMQueue:
		return cmIdxQueue
	}
	return cmIdxBackoff
}

// cmFor compiles a manager name (validated by validatePhaseCfg).
func cmFor(name string) *cmgr { return cmgrs[cmIndex(name)] }

// cmAt returns the live manager of engine-table entry idx: the
// compiled one, or — for an adaptive kind — the kind's currently
// selected manager (adaptive.go).
func (rt *Runtime) cmAt(idx int) *cmgr {
	if st := rt.adaptByIdx[idx]; st != nil {
		return cmgrs[st.cmSel.Load()]
	}
	return rt.phases[idx].cm
}

// CMFor names the contention manager active for the given phase kind;
// "" names the default phase. An undeclared kind reports the default
// phase's manager, mirroring EnterPhase's hint semantics. For an
// adaptive kind this follows the current selection.
func (rt *Runtime) CMFor(kind string) string {
	return rt.cmAt(rt.phaseIndex(kind)).name
}

// --- backoff ---

// cmBackoffWait is the paper's simple randomized exponential-backoff
// contention manager, extracted verbatim from the old retry loop: spin
// a jittered, exponentially growing number of iterations, and yield
// the processor once the transaction keeps losing.
func cmBackoffWait(th *Thread, tx *Tx) {
	th.backoffSpin(tx.attempts)
}

// backoffSpin is the shared spin kernel (the none policy's escalation
// and the queue policy's ownerless fallback reuse it with an adjusted
// attempt number).
func (th *Thread) backoffSpin(attempt int) {
	if attempt <= 0 {
		return
	}
	start := time.Now()
	k := attempt
	if k > 10 {
		k = 10
	}
	spins := int(th.nextRand() % uint64(16<<k))
	var acc uint64
	for i := 0; i < spins; i++ {
		acc += uint64(i)
	}
	// The sink keeps the spin loop observable so the compiler cannot
	// delete it. It is per-thread state: the old process-global
	// atomic.Uint64 put every backing-off thread on one cache line,
	// so the backoff path itself caused the coherence traffic it was
	// supposed to drain.
	th.backoffAcc += acc
	if attempt > 4 {
		runtime.Gosched()
	}
	th.stats.Waits++
	th.stats.WaitNs += uint64(time.Since(start))
}

// --- none ---

// cmNoneWait retries immediately — the right policy for short
// transactions whose conflicts are rare and cheap to redo — but
// escalates into backoff once the same transaction has lost
// cmNoneEscalateAfter attempts, so symmetric writers (two threads
// whose footprints always collide) cannot livelock aborting each
// other. The escalation enters the backoff schedule at its gentlest
// step and grows from there.
func cmNoneWait(th *Thread, tx *Tx) {
	if tx.attempts > cmNoneEscalateAfter {
		th.backoffSpin(tx.attempts - cmNoneEscalateAfter)
	}
}

// --- queue ---

// waitGate is one thread's park point: conflicting threads whose
// manager is the queue policy park here, keyed by the *owner* thread's
// id, and the owner wakes them when it next releases ownership
// records. seq counts releases so a waiter that raced the release
// never sleeps through it; waiters gates the release-side work — when
// it is zero (the overwhelmingly common case) waking is a single
// atomic load. Wake order follows park order: sync.Cond's notify list
// is FIFO, so Broadcast resumes waiters in the order they took their
// place in the queue.
type waitGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	seq     uint64 // releases by the gate's owner; guarded by mu
	waiters atomic.Int32
}

// cmQueueWait parks the thread on the conflicting orec's recorded
// owner until that owner releases ownership records. Conflicts without
// an owner to park on — version overtakes, validation failures, a CAS
// race that resolved unlocked — fall back to the backoff policy: there
// is no release event to wait for.
func cmQueueWait(th *Thread, tx *Tx) {
	owner := int(tx.cmOwner)
	if owner < 0 || owner == th.id || owner >= len(th.rt.gates) {
		cmBackoffWait(th, tx)
		return
	}
	start := time.Now()
	if th.parkOn(owner, tx.cmOrec) {
		th.stats.Waits++
		th.stats.WaitNs += uint64(time.Since(start))
	}
}

// parkOn blocks until thread owner performs a release, or returns
// immediately when the orec oi is no longer locked by owner (the
// conflict already resolved). It reports whether it actually parked.
//
// The no-lost-wakeup argument: the waiter publishes itself
// (waiters.Add) before re-checking the orec under the gate's mutex.
// If the re-check still sees owner's lock, the owner's release store
// has not happened yet; the owner's wake path runs after that store,
// observes the published waiter, and must acquire the same mutex to
// bump seq — either after the waiter entered Wait (the Broadcast
// reaches it) or before (the seq change stops the wait loop).
func (th *Thread) parkOn(owner int, oi uint64) bool {
	rt := th.rt
	g := &rt.gates[owner]
	g.waiters.Add(1)
	g.mu.Lock()
	start := g.seq
	parked := false
	for {
		v := rt.orecs[oi].Load()
		if !orecLocked(v) || orecOwner(v) != owner || g.seq != start {
			break
		}
		parked = true
		g.cond.Wait()
	}
	g.mu.Unlock()
	g.waiters.Add(-1)
	return parked
}

// wakeWaiters is the release hook: commitTop, abortTop, and
// abortNested call it right after storing unlocked orec words. It is
// deliberately manager-independent (see the file comment) and costs
// one atomic load when nobody waits.
func (th *Thread) wakeWaiters() {
	g := &th.rt.gates[th.id]
	if g.waiters.Load() == 0 {
		return
	}
	g.mu.Lock()
	g.seq++
	g.mu.Unlock()
	g.cond.Broadcast()
}

// newGates builds the per-thread wait-gate array (indexed like
// Runtime.seqs, by worker id).
func newGates(n int) []waitGate {
	gates := make([]waitGate, n)
	for i := range gates {
		gates[i].cond = sync.NewCond(&gates[i].mu)
	}
	return gates
}
