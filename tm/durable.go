package tm

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/wal"
)

// Durability tier. WithDurability(dir) attaches a segmented redo log
// with group commit and a content-addressed checkpoint store to the
// runtime: every committed transaction's effects are serialized into
// the log before Atomic returns (batched across threads, acked after
// fsync), and Checkpoint writes the whole space as deduplicated,
// SHA-256-addressed pack chunks. Recover(dir) rebuilds a runtime from
// the newest checkpoint plus the redo tail — bit-identical
// (mem.Space.Checksum) to the crashed instance at its last enqueued
// record.
//
// Recovery contract:
//
//   - Non-transactional writes through Runtime.Space() (typical
//     workload setup code) are NOT journaled. Call Runtime.Checkpoint
//     once setup is done; everything after that — Atomic transactions
//     and the journaled Thread operations (Store, StoreFloat, Alloc,
//     StackPush) — is replayable.
//   - Recovered runtimes do not reconstruct per-thread allocator free
//     lists or bump spans; blocks that were on a free list at the crash
//     leak (their words are preserved, they are just never reused).
//   - The global clock restores to the maximum logged version, which is
//     consistent because the ownership-record table restarts fresh.

// durSettings is the configuration WithDurability accumulates.
type durSettings struct {
	dir        string
	scratch    bool // dir is created fresh at Open and removed at Close
	group      time.Duration
	noFsync    bool
	segBytes   int
	chunkWords int
	autoBytes  uint64
}

// DurOption tunes WithDurability.
type DurOption func(*durSettings)

// DurGroupInterval sets how long the log flusher lingers to accumulate
// records from other threads into one write+fsync (0, the default,
// flushes as soon as the flusher observes pending records — which still
// batches whatever arrived during the previous fsync).
func DurGroupInterval(d time.Duration) DurOption {
	return func(ds *durSettings) { ds.group = d }
}

// DurNoFsync skips fsync on log batches and is intended for tests: the
// crash-replay differential simulates crashes in-process, where the
// page cache survives.
func DurNoFsync() DurOption {
	return func(ds *durSettings) { ds.noFsync = true }
}

// DurSegmentBytes sets the log segment rotation size (default 8 MiB).
func DurSegmentBytes(n int) DurOption {
	return func(ds *durSettings) { ds.segBytes = n }
}

// DurChunkWords sets the checkpoint chunking granularity (default 4096
// words per content-addressed chunk).
func DurChunkWords(n int) DurOption {
	return func(ds *durSettings) { ds.chunkWords = n }
}

// DurAutoCheckpoint checkpoints in the background whenever roughly n
// bytes of redo records have accumulated since the last checkpoint
// (0, the default, checkpoints only on explicit Runtime.Checkpoint).
func DurAutoCheckpoint(n uint64) DurOption {
	return func(ds *durSettings) { ds.autoBytes = n }
}

// WithDurability persists the runtime into dir: a segmented redo log
// with group commit plus content-addressed checkpoints. See the
// recovery contract above; with this option absent the commit path is
// completely unchanged (pay-as-you-go).
func WithDurability(dir string, tune ...DurOption) Option {
	return func(s *settings) {
		ds := &durSettings{dir: dir}
		for _, o := range tune {
			if o != nil {
				o(ds)
			}
		}
		s.dur = ds
	}
}

// WithDurabilityScratch persists the runtime into a fresh directory
// under the system temp dir, deleted again on Close. Benchmarks use it
// to measure the durability tier's overhead: tm/bench reopens the same
// profile for every repetition, so a fixed directory would collide with
// the previous run's log. Real deployments want WithDurability with a
// stable directory — a scratch runtime leaves nothing to Recover.
func WithDurabilityScratch(tune ...DurOption) Option {
	return func(s *settings) {
		ds := &durSettings{scratch: true}
		for _, o := range tune {
			if o != nil {
				o(ds)
			}
		}
		s.dur = ds
	}
}

// durRuntime is the live durability state of one Runtime.
type durRuntime struct {
	dir     string
	scratch bool
	log     *wal.Log
	store   *wal.CheckpointStore

	cpMu    sync.Mutex // serializes checkpoints; also guards snapBuf
	snapBuf []uint64
	cpBytes uint64 // log bytes at the last checkpoint (auto trigger)

	auto      uint64
	stopAuto  chan struct{}
	autoDone  chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// openDurable wires a fresh (or recovered) runtime to its log and
// checkpoint store. startSeg/startSeq are zero for a fresh directory
// and the recovered continuation point otherwise.
func openDurable(rt *Runtime, ds *durSettings, startSeg, startSeq uint64, initialCP bool) error {
	if ds.scratch && ds.dir == "" {
		dir, err := os.MkdirTemp("", "tmdur-")
		if err != nil {
			return err
		}
		ds.dir = dir
	}
	log, err := wal.OpenLog(ds.dir, startSeg, startSeq, wal.Options{
		SegmentBytes:  ds.segBytes,
		GroupInterval: ds.group,
		NoFsync:       ds.noFsync,
	})
	if err != nil {
		return err
	}
	store, err := wal.OpenStore(ds.dir, ds.chunkWords)
	if err != nil {
		log.Close()
		return err
	}
	d := &durRuntime{dir: ds.dir, scratch: ds.scratch, log: log, store: store, auto: ds.autoBytes}
	rt.dur = d
	rt.rt.SetDurable(log)
	if initialCP {
		// An initial checkpoint makes Recover total: any directory that
		// ever hosted a durable runtime has at least one manifest.
		if err := rt.Checkpoint(); err != nil {
			log.Close()
			rt.dur = nil
			rt.rt.SetDurable(nil)
			return err
		}
	}
	if d.auto > 0 {
		d.stopAuto = make(chan struct{})
		d.autoDone = make(chan struct{})
		go d.autoLoop(rt)
	}
	return nil
}

func (d *durRuntime) autoLoop(rt *Runtime) {
	defer close(d.autoDone)
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-d.stopAuto:
			return
		case <-t.C:
		}
		d.cpMu.Lock()
		due := d.log.Stats().Bytes-d.cpBytes >= d.auto
		d.cpMu.Unlock()
		if due {
			rt.Checkpoint() // errors stick in the log and surface at Close
		}
	}
}

// geometryOf converts the space geometry for a checkpoint manifest.
func geometryOf(mc mem.Config) wal.Geometry {
	return wal.Geometry{
		GlobalWords: mc.GlobalWords,
		HeapWords:   mc.HeapWords,
		StackWords:  mc.StackWords,
		MaxThreads:  mc.MaxThreads,
	}
}

// Checkpoint writes a content-addressed snapshot of the whole space and
// prunes redo segments wholly below its log cut. Safe to call while
// transactions run (the snapshot is fuzzy; the redo tail repairs any
// in-flight effects at recovery) — but after non-journaled setup writes
// via Space(), a checkpoint is *required* for those to survive a crash.
// Without WithDurability it is a no-op.
func (rt *Runtime) Checkpoint() error {
	d := rt.dur
	if d == nil {
		return nil
	}
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	if err := d.log.Sync(); err != nil {
		return err
	}
	cutSeg, cutOff := d.log.Position()
	space := rt.rt.Space()
	d.snapBuf = space.Snapshot(d.snapBuf)
	_, err := d.store.WriteCheckpoint(wal.Snapshot{
		Words:       d.snapBuf,
		Clock:       rt.rt.Clock(),
		GlobalsNext: space.GlobalsNext(),
		HeapNext:    space.HeapNext(),
		Geometry:    geometryOf(rt.mc),
		CutSeg:      cutSeg,
		CutOff:      cutOff,
	})
	if err != nil {
		return err
	}
	d.cpBytes = d.log.Stats().Bytes
	return d.log.TruncateBefore(cutSeg)
}

// Sync blocks until every record appended so far is durable. A no-op
// without WithDurability.
func (rt *Runtime) Sync() error {
	if rt.dur == nil {
		return nil
	}
	return rt.dur.log.Sync()
}

// Close shuts the runtime down. When durable it flushes and fsyncs the
// redo log, appends a seal record, and closes the segment files; it is
// idempotent and a no-op for non-durable runtimes. Call it after worker
// threads have joined.
func (rt *Runtime) Close() error {
	d := rt.dur
	if d == nil {
		return nil
	}
	d.closeOnce.Do(func() {
		d.stopAutoLoop()
		space := rt.rt.Space()
		seal := &wal.Record{
			Kind:        wal.KindSeal,
			Version:     rt.rt.Clock(),
			GlobalsNext: space.GlobalsNext(),
			HeapNext:    space.HeapNext(),
		}
		if ack, err := d.log.Append(seal); err == nil {
			if werr := ack.Wait(); werr != nil {
				d.closeErr = werr
			}
		} else {
			d.closeErr = err
		}
		if err := d.log.Close(); err != nil && d.closeErr == nil {
			d.closeErr = err
		}
		rt.rt.SetDurable(nil)
		if d.scratch {
			if err := os.RemoveAll(d.dir); err != nil && d.closeErr == nil {
				d.closeErr = err
			}
		}
	})
	return d.closeErr
}

// Crash simulates a process kill for recovery tests: the log stops
// without a seal record and the runtime must not be used afterwards.
// Records already enqueued remain readable (an in-process crash cannot
// lose the page cache); acked commits were durable regardless.
func (rt *Runtime) Crash() {
	d := rt.dur
	if d == nil {
		return
	}
	d.closeOnce.Do(func() {
		d.stopAutoLoop()
		d.log.Kill()
		rt.rt.SetDurable(nil)
	})
}

func (d *durRuntime) stopAutoLoop() {
	if d.stopAuto != nil {
		close(d.stopAuto)
		<-d.autoDone
		d.stopAuto = nil
	}
}

// Recover rebuilds a runtime from dir: the newest loadable checkpoint
// plus a replay of the redo tail (truncating a torn final record). The
// memory geometry comes from the checkpoint manifest; opts configure
// everything else (engine profile, phases, …) and should match the
// options the crashed instance ran with. A WithDurability option among
// opts contributes its tuning knobs (its directory argument is ignored
// in favor of dir); without one, defaults apply. The recovered runtime
// is durable again: it continues the log after the replayed tail and
// writes a fresh post-recovery checkpoint.
func Recover(dir string, opts ...Option) (*Runtime, error) {
	st, err := wal.Recover(dir)
	if err != nil {
		return nil, err
	}
	s := fold(opts)
	s.mem = mem.Config{
		GlobalWords: st.Geometry.GlobalWords,
		HeapWords:   st.Geometry.HeapWords,
		StackWords:  st.Geometry.StackWords,
		MaxThreads:  st.Geometry.MaxThreads,
	}
	if s.mem.GlobalWords <= 0 || s.mem.HeapWords <= 0 || s.mem.StackWords <= 0 || s.mem.MaxThreads <= 0 {
		return nil, fmt.Errorf("tm: checkpoint manifest has invalid geometry %+v", st.Geometry)
	}
	ds := s.dur
	if ds == nil {
		ds = &durSettings{}
	}
	ds.dir = dir
	rt := newRuntime(s)
	space := rt.rt.Space()
	space.SetWords(st.Words)
	space.SetGlobalsNext(st.GlobalsNext)
	space.SetHeapNext(st.HeapNext)
	rt.rt.SetClock(st.Clock)
	if err := openDurable(rt, ds, st.NextSeg, st.NextSeq, false); err != nil {
		return nil, err
	}
	// A post-recovery checkpoint folds the replayed tail in, so the next
	// recovery is fast, and lets us reclaim the previous incarnation's
	// segments (the new log only truncates its own).
	if err := rt.Checkpoint(); err != nil {
		rt.Close()
		return nil, err
	}
	if err := wal.RemoveSegmentsBelow(dir, st.NextSeg); err != nil {
		rt.Close()
		return nil, err
	}
	return rt, nil
}

// Durable reports whether the runtime was opened with WithDurability
// (and has not been closed or crashed).
func (rt *Runtime) Durable() bool { return rt.dur != nil && rt.rt.Durable() != nil }

// durabilityStats flattens the log and checkpoint counters, or nil when
// the runtime is not durable.
func (rt *Runtime) durabilityStats() *DurabilityStats {
	d := rt.dur
	if d == nil {
		return nil
	}
	ls := d.log.Stats()
	ss := d.store.Stats()
	return &DurabilityStats{
		Records:       ls.Records,
		LogBytes:      ls.Bytes,
		Batches:       ls.Batches,
		Fsyncs:        ls.Fsyncs,
		Segments:      ls.Segments,
		Checkpoints:   ss.Checkpoints,
		ChunksWritten: ss.ChunksWritten,
		ChunksDeduped: ss.ChunksDeduped,
		PackBytes:     ss.BytesWritten,
	}
}
