package txlib

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// List is a sorted singly linked list with unique uint64 keys and one
// data word per node (STAMP's list.c). The header holds the head
// pointer and the size; each node is {next, key, data}.
//
// Layout:
//
//	header: [0] head  [1] size
//	node:   [0] next  [1] key  [2] data
const (
	listHead = 0
	listSize = 1
	listHdr  = 2

	nodeNext = 0
	nodeKey  = 1
	nodeData = 2
	nodeSize = 3
)

// NewList allocates an empty list inside the transaction.
func NewList(tx *stm.Tx) mem.Addr {
	l := tx.Alloc(listHdr)
	tx.Store(l+listHead, 0, stm.AccFresh)
	tx.Store(l+listSize, 0, stm.AccFresh)
	return l
}

// ListSize returns the number of nodes.
func ListSize(tx *stm.Tx, l mem.Addr, mode stm.Acc) int {
	return int(tx.Load(l+listSize, mode))
}

// ListIsEmpty reports whether the list has no nodes.
func ListIsEmpty(tx *stm.Tx, l mem.Addr, mode stm.Acc) bool {
	return tx.LoadAddr(l+listHead, mode) == mem.Nil
}

// listFindPrev returns the last node (or the header slot) whose key is
// < key, and the following node.
func listFindPrev(tx *stm.Tx, l mem.Addr, key uint64, mode stm.Acc) (prevSlot, cur mem.Addr) {
	prevSlot = l + listHead
	cur = tx.LoadAddr(prevSlot, mode)
	for cur != mem.Nil && tx.Load(cur+nodeKey, mode) < key {
		prevSlot = cur + nodeNext
		cur = tx.LoadAddr(prevSlot, mode)
	}
	return prevSlot, cur
}

// ListInsert inserts key with data, keeping the list sorted. It
// returns false if the key is already present.
func ListInsert(tx *stm.Tx, l mem.Addr, key, data uint64, mode stm.Acc) bool {
	prevSlot, cur := listFindPrev(tx, l, key, mode)
	if cur != mem.Nil && tx.Load(cur+nodeKey, mode) == key {
		return false
	}
	n := tx.Alloc(nodeSize)
	tx.Store(n+nodeKey, key, stm.AccFresh)
	tx.Store(n+nodeData, data, stm.AccFresh)
	tx.StoreAddr(n+nodeNext, cur, stm.AccFresh)
	tx.StoreAddr(prevSlot, n, mode)
	tx.Store(l+listSize, tx.Load(l+listSize, mode)+1, mode)
	return true
}

// ListFind returns the data stored under key.
func ListFind(tx *stm.Tx, l mem.Addr, key uint64, mode stm.Acc) (uint64, bool) {
	_, cur := listFindPrev(tx, l, key, mode)
	if cur != mem.Nil && tx.Load(cur+nodeKey, mode) == key {
		return tx.Load(cur+nodeData, mode), true
	}
	return 0, false
}

// ListRemove unlinks and frees the node with the given key, returning
// its data word.
func ListRemove(tx *stm.Tx, l mem.Addr, key uint64, mode stm.Acc) (uint64, bool) {
	prevSlot, cur := listFindPrev(tx, l, key, mode)
	if cur == mem.Nil || tx.Load(cur+nodeKey, mode) != key {
		return 0, false
	}
	data := tx.Load(cur+nodeData, mode)
	tx.StoreAddr(prevSlot, tx.LoadAddr(cur+nodeNext, mode), mode)
	tx.Store(l+listSize, tx.Load(l+listSize, mode)-1, mode)
	tx.Free(cur)
	return data, true
}

// ListRemoveHead unlinks and frees the first node (lowest key).
func ListRemoveHead(tx *stm.Tx, l mem.Addr, mode stm.Acc) (key, data uint64, ok bool) {
	head := tx.LoadAddr(l+listHead, mode)
	if head == mem.Nil {
		return 0, 0, false
	}
	key = tx.Load(head+nodeKey, mode)
	data = tx.Load(head+nodeData, mode)
	tx.StoreAddr(l+listHead, tx.LoadAddr(head+nodeNext, mode), mode)
	tx.Store(l+listSize, tx.Load(l+listSize, mode)-1, mode)
	tx.Free(head)
	return key, data, true
}

// ListFree frees every node and the header. The list must not be used
// afterwards.
func ListFree(tx *stm.Tx, l mem.Addr, mode stm.Acc) {
	cur := tx.LoadAddr(l+listHead, mode)
	for cur != mem.Nil {
		next := tx.LoadAddr(cur+nodeNext, mode)
		tx.Free(cur)
		cur = next
	}
	tx.Free(l)
}

// --- Iterator (the paper's Fig. 1(a) pattern) ---
//
// The iterator is a single word allocated on the *transaction-local
// stack*, exactly like STAMP bayes' list_iter_t: the stores and loads
// of the iterator word are the captured-stack accesses of Fig. 8.

// ListIterNew allocates an iterator on the transaction-local stack.
func ListIterNew(tx *stm.Tx) mem.Addr {
	return tx.StackAlloc(1)
}

// ListIterReset points the iterator at the first node.
func ListIterReset(tx *stm.Tx, it, l mem.Addr, mode stm.Acc) {
	tx.StoreAddr(it, tx.LoadAddr(l+listHead, mode), stm.AccStack)
}

// ListIterHasNext reports whether another node is available.
func ListIterHasNext(tx *stm.Tx, it mem.Addr) bool {
	return tx.LoadAddr(it, stm.AccStack) != mem.Nil
}

// ListIterNext returns the current node's key and data and advances.
func ListIterNext(tx *stm.Tx, it mem.Addr, mode stm.Acc) (key, data uint64) {
	cur := tx.LoadAddr(it, stm.AccStack)
	key = tx.Load(cur+nodeKey, mode)
	data = tx.Load(cur+nodeData, mode)
	tx.StoreAddr(it, tx.LoadAddr(cur+nodeNext, mode), stm.AccStack)
	return key, data
}
