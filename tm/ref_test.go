package tm_test

// Black-box tests of the typed references: round-trips for each
// reference kind, provenance defaults on each allocation path, and
// the elision behaviour the provenance buys.

import (
	"testing"

	"repro/tm"
)

func smallMem() tm.Option {
	return tm.WithMemory(tm.MemConfig{
		GlobalWords: 1 << 8, HeapWords: 1 << 14, StackWords: 1 << 10, MaxThreads: 4,
	})
}

func TestWordRoundTrip(t *testing.T) {
	rt := tm.Open(smallMem())
	th := rt.Thread(0)
	g := rt.AllocGlobal(4)

	g.Word(1).Poke(rt, 7)
	if v := g.Word(1).Peek(rt); v != 7 {
		t.Fatalf("Peek after Poke = %d", v)
	}
	th.Atomic(func(tx *tm.Tx) {
		if v := g.Word(1).Load(tx); v != 7 {
			t.Errorf("Load = %d, want 7", v)
		}
		g.Word(1).Store(tx, 40)
		if v := g.Word(1).Add(tx, 2); v != 42 {
			t.Errorf("Add = %d, want 42", v)
		}
	})
	if v := g.Word(1).Peek(rt); v != 42 {
		t.Errorf("after commit = %d, want 42", v)
	}
	rt.Validate()
}

func TestFloatRoundTrip(t *testing.T) {
	rt := tm.Open(smallMem())
	th := rt.Thread(0)
	g := rt.AllocGlobal(2)

	g.Float(0).Poke(rt, 3.25)
	th.Atomic(func(tx *tm.Tx) {
		v := g.Float(0).Load(tx)
		g.Float(1).Store(tx, v*2)
	})
	if v := g.Float(1).Peek(rt); v != 6.5 {
		t.Errorf("float round-trip = %v, want 6.5", v)
	}
}

func TestPtrRoundTripAndNil(t *testing.T) {
	rt := tm.Open(smallMem())
	th := rt.Thread(0)
	head := rt.AllocGlobal(1).Ptr(0)

	if !head.Peek(rt).IsNil() {
		t.Fatal("fresh pointer cell not nil")
	}
	th.Atomic(func(tx *tm.Tx) {
		node := tx.Alloc(2)
		node.Word(0).Store(tx, 99)
		node.Ptr(1).Store(tx, head.Load(tx)) // nil link
		head.Store(tx, node)
	})
	node := head.Peek(rt)
	if node.IsNil() {
		t.Fatal("head still nil after commit")
	}
	if v := node.Word(0).Peek(rt); v != 99 {
		t.Errorf("node value = %d, want 99", v)
	}
	if !node.Ptr(1).Peek(rt).IsNil() {
		t.Error("link should be nil")
	}
}

func TestProvenanceDefaults(t *testing.T) {
	rt := tm.Open(smallMem())
	th := rt.Thread(0)

	if p := rt.AllocGlobal(2).Prov(); p != tm.ProvShared {
		t.Errorf("AllocGlobal provenance = %v, want shared", p)
	}
	if p := th.Alloc(2).Prov(); p != tm.ProvUnknown {
		t.Errorf("Thread.Alloc provenance = %v, want unknown", p)
	}
	head := rt.AllocGlobal(1).Ptr(0)
	th.Atomic(func(tx *tm.Tx) {
		fresh := tx.Alloc(2)
		if p := fresh.Prov(); p != tm.ProvFresh {
			t.Errorf("Tx.Alloc provenance = %v, want fresh", p)
		}
		if p := fresh.At(1).Prov(); p != tm.ProvFresh {
			t.Errorf("sub-view provenance = %v, want fresh (inherited)", p)
		}
		stack := tx.StackAlloc(2)
		if p := stack.Prov(); p != tm.ProvStack {
			t.Errorf("StackAlloc provenance = %v, want stack", p)
		}
		head.Store(tx, fresh)
		if p := head.Load(tx).Prov(); p != tm.ProvUnknown {
			t.Errorf("Ptr.Load provenance = %v, want unknown", p)
		}
		if p := fresh.WithProv(tm.ProvShared).Prov(); p != tm.ProvShared {
			t.Errorf("WithProv = %v, want shared", p)
		}
	})
}

// TestProvenanceDrivesStaticElision: under the compiler profile, a
// fresh reference's stores are elided statically while shared stores
// keep the barrier — without the call site naming any access
// descriptor.
func TestProvenanceDrivesStaticElision(t *testing.T) {
	rt := tm.Open(append(tm.CompilerElision().With(tm.WithVerifyElision()).Options(), smallMem())...)
	th := rt.Thread(0)
	g := rt.AllocGlobal(1)
	th.Atomic(func(tx *tm.Tx) {
		rec := tx.Alloc(4)
		for i := 0; i < 4; i++ {
			rec.Word(i).Store(tx, uint64(i))
		}
		g.Word(0).Store(tx, rec.Word(2).Load(tx))
	})
	s := rt.Stats()
	if s.WriteElStatic != 4 {
		t.Errorf("static write elisions = %d, want 4 (the fresh record)", s.WriteElStatic)
	}
	if s.WriteFull != 1 {
		t.Errorf("full write barriers = %d, want 1 (the shared word)", s.WriteFull)
	}
	if s.ReadElStatic != 1 {
		t.Errorf("static read elisions = %d, want 1", s.ReadElStatic)
	}
}

// TestRuntimeCaptureElidesFreshBlocks: the same workload under runtime
// capture analysis elides dynamically via the allocation log.
func TestRuntimeCaptureElidesFreshBlocks(t *testing.T) {
	rt := tm.Open(append(tm.RuntimeAll(tm.LogTree).Options(), smallMem())...)
	th := rt.Thread(0)
	keep := rt.AllocGlobal(1).Ptr(0)
	th.Atomic(func(tx *tm.Tx) {
		rec := tx.Alloc(4)
		for i := 0; i < 4; i++ {
			rec.Word(i).Store(tx, uint64(i))
		}
		keep.Store(tx, rec)
	})
	if s := rt.Stats(); s.WriteElHeap != 4 {
		t.Errorf("runtime heap elisions = %d, want 4", s.WriteElHeap)
	}
}

func TestAbortRollsBackTypedStores(t *testing.T) {
	rt := tm.Open(smallMem())
	th := rt.Thread(0)
	g := rt.AllocGlobal(1)
	g.Word(0).Poke(rt, 5)
	committed := th.Atomic(func(tx *tm.Tx) {
		g.Word(0).Store(tx, 123)
		tx.Abort()
	})
	if committed {
		t.Error("aborted transaction reported committed")
	}
	if v := g.Word(0).Peek(rt); v != 5 {
		t.Errorf("aborted store visible: %d, want 5", v)
	}
	rt.Validate()
}

func TestRefSafetyPanics(t *testing.T) {
	rt := tm.Open(smallMem())
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	g := rt.AllocGlobal(2)
	expectPanic("out of range", func() { g.Word(2) })
	expectPanic("negative", func() { g.Word(-1) })
	var nilRef tm.Struct
	expectPanic("nil deref", func() { nilRef.Word(0) })
	expectPanic("unsized private block", func() {
		head := rt.AllocGlobal(1).Ptr(0)
		rt.Thread(0).AddPrivateBlock(head.Peek(rt))
	})
}

func TestParallelThreadsAndStats(t *testing.T) {
	rt := tm.Open(smallMem())
	cell := rt.AllocGlobal(1).Word(0)
	rt.Parallel(4, func(th *tm.Thread, tid, ntotal int) {
		if ntotal != 4 {
			t.Errorf("ntotal = %d", ntotal)
		}
		if th.ID() != tid {
			t.Errorf("thread id %d != tid %d", th.ID(), tid)
		}
		for i := 0; i < 100; i++ {
			th.Atomic(func(tx *tm.Tx) { cell.Add(tx, 1) })
		}
	})
	if v := cell.Peek(rt); v != 400 {
		t.Errorf("counter = %d, want 400", v)
	}
	if s := rt.Stats(); s.Commits < 400 {
		t.Errorf("commits = %d, want >= 400", s.Commits)
	}
	rt.Validate()
}
