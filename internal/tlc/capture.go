package tlc

// Capture analysis (the paper's Sec. 3.2): a flow-sensitive
// intraprocedural pointer analysis run after inlining. For every
// memory access inside an atomic block it decides whether the accessed
// location is *provably* transaction-local:
//
//   - accFresh: the base pointer's value derives from an allocation
//     made earlier in the same atomic block (tracked through local
//     assignments and control-flow merges);
//   - accStack: the access targets an int array declared inside the
//     atomic block (transaction-local stack, Fig. 1(a));
//   - accUnknown: everything else — the barrier is kept.
//
// The analysis is conservative (false negatives only): pointers loaded
// from memory, returned from non-inlined calls, or merged with unknown
// values are Unknown. Soundness is enforced at runtime in tests via
// stm.OptConfig.VerifyElision.

// provState maps local slots to "provably fresh in this atomic block".
type provState map[int]bool

func (ps provState) clone() provState {
	cp := make(provState, len(ps))
	for k, v := range ps {
		cp[k] = v
	}
	return cp
}

// meet merges two states at a control-flow join: fresh only if fresh
// on both paths.
func (ps provState) meet(o provState) provState {
	out := provState{}
	for k, v := range ps {
		if v && o[k] {
			out[k] = true
		}
	}
	return out
}

// analysisStats summarizes the classification for reports.
type analysisStats struct {
	Fresh, Stack, Unknown int
	Shared                int // definitely shared (runtime checks skipped)
	Inlined               int
}

// captureAnalysis annotates s.accOf for every transactional access.
func captureAnalysis(prog *Program, s *semaInfo) analysisStats {
	var st analysisStats
	for _, f := range prog.Funcs {
		a := &capAnalyzer{s: s, stats: &st}
		a.block(f.Body, provState{}, false)
	}
	return st
}

type capAnalyzer struct {
	s     *semaInfo
	stats *analysisStats
}

// block analyzes a block, returning the outgoing state.
func (a *capAnalyzer) block(b *Block, ps provState, inAtomic bool) provState {
	for _, st := range b.Stmts {
		ps = a.stmt(st, ps, inAtomic)
	}
	return ps
}

func (a *capAnalyzer) stmt(st Stmt, ps provState, inAtomic bool) provState {
	switch st := st.(type) {
	case *Block:
		return a.block(st, ps, inAtomic)
	case *DeclStmt:
		// A fresh declaration holds nil/zero: trivially private.
		if st.Decl.Type.Kind == TPtr {
			ps = ps.clone()
			ps[a.s.localSlot[st]] = true
		}
		return ps
	case *AssignStmt:
		a.expr(st.Rhs, ps, inAtomic)
		a.lvalue(st.Lhs, ps, inAtomic)
		if id, ok := st.Lhs.(*Ident); ok {
			if r := a.s.identRef[id]; r != nil && !r.global && r.typ.Kind == TPtr {
				ps = ps.clone()
				ps[r.slot] = inAtomic && a.exprFresh(st.Rhs, ps)
			}
		}
		return ps
	case *IfStmt:
		a.expr(st.Cond, ps, inAtomic)
		thenOut := a.block(st.Then, ps.clone(), inAtomic)
		elseOut := ps
		if st.Else != nil {
			elseOut = a.block(st.Else, ps.clone(), inAtomic)
		}
		return thenOut.meet(elseOut)
	case *WhileStmt:
		// Two rounds reach the fixed point of this two-level lattice:
		// the first discovers kills, the second classifies accesses
		// under the stable state.
		entry := ps
		for i := 0; i < 2; i++ {
			a.expr(st.Cond, entry, inAtomic)
			bodyOut := a.block(st.Body, entry.clone(), inAtomic)
			entry = entry.meet(bodyOut)
		}
		return entry
	case *ReturnStmt:
		if st.Val != nil {
			a.expr(st.Val, ps, inAtomic)
		}
		return ps
	case *ExprStmt:
		a.expr(st.X, ps, inAtomic)
		return ps
	case *AtomicStmt:
		// Entering a transaction: nothing allocated yet, so every
		// pointer holding a pre-transaction value is not captured.
		// (Pointers that are provably nil could be retained; starting
		// empty is simpler and conservative.)
		out := a.block(st.Body, provState{}, true)
		_ = out
		// After commit the allocations escape: all bets are off.
		return provState{}
	case *FreeStmt:
		a.expr(st.Ptr, ps, inAtomic)
		return ps
	default:
		return ps
	}
}

// lvalue classifies a store target.
func (a *capAnalyzer) lvalue(e Expr, ps provState, inAtomic bool) {
	switch e := e.(type) {
	case *Ident:
		// Globals live outside the heap and the transactional stack,
		// so a direct global access is *definitely shared*: the
		// future-work extension skips runtime capture checks on it.
		if inAtomic {
			if r := a.s.identRef[e]; r != nil && r.global {
				a.classify(e, accShared)
			}
		}
	case *FieldExpr:
		a.expr(e.X, ps, inAtomic)
		if inAtomic {
			a.classify(e, a.baseClass(e.X, ps))
		}
	case *IndexExpr:
		a.expr(e.I, ps, inAtomic)
		if inAtomic {
			a.classify(e, a.indexClass(e))
		}
	}
}

// expr walks an expression, classifying the loads inside it.
func (a *capAnalyzer) expr(e Expr, ps provState, inAtomic bool) {
	switch e := e.(type) {
	case *Ident:
		if inAtomic {
			if r := a.s.identRef[e]; r != nil && r.global {
				a.classify(e, accShared)
			}
		}
	case *FieldExpr:
		a.expr(e.X, ps, inAtomic)
		if inAtomic {
			a.classify(e, a.baseClass(e.X, ps))
		}
	case *IndexExpr:
		a.expr(e.X, ps, inAtomic)
		a.expr(e.I, ps, inAtomic)
		if inAtomic {
			a.classify(e, a.indexClass(e))
		}
	case *CallExpr:
		for _, arg := range e.Args {
			a.expr(arg, ps, inAtomic)
		}
	case *BinExpr:
		a.expr(e.L, ps, inAtomic)
		a.expr(e.R, ps, inAtomic)
	case *UnExpr:
		a.expr(e.X, ps, inAtomic)
	}
}

// baseClass classifies a field access by its base pointer.
func (a *capAnalyzer) baseClass(base Expr, ps provState) accClass {
	if a.exprFresh(base, ps) {
		return accFresh
	}
	return accUnknown
}

// indexClass classifies an array access: captured iff the array local
// was declared inside an atomic block (its storage was pushed on the
// simulated stack after the transaction began).
func (a *capAnalyzer) indexClass(e *IndexExpr) accClass {
	id, ok := e.X.(*Ident)
	if !ok {
		return accUnknown
	}
	r := a.s.identRef[id]
	if r == nil {
		return accUnknown
	}
	if r.global {
		return accShared
	}
	// Find the declaring DeclStmt via slot match.
	for decl, slot := range a.s.localSlot {
		if slot == r.slot && a.s.declInAtomic[decl] {
			return accStack
		}
	}
	return accUnknown
}

// exprFresh reports whether the expression's value is provably a
// pointer captured by the current transaction.
func (a *capAnalyzer) exprFresh(e Expr, ps provState) bool {
	switch e := e.(type) {
	case *AllocExpr:
		return true
	case *NilLit:
		return true
	case *Ident:
		r := a.s.identRef[e]
		return r != nil && !r.global && ps[r.slot]
	default:
		return false
	}
}

// classify records the verdict (keeping the weakest when a node is
// reached twice, e.g. while-body reanalysis).
func (a *capAnalyzer) classify(e Expr, c accClass) {
	if prev, ok := a.s.accOf[e]; ok && (prev == accUnknown || c == accUnknown) {
		a.s.accOf[e] = accUnknown
		if prev != accUnknown && c == accUnknown {
			// downgraded: fix the counters
			a.adjust(prev, -1)
			a.adjust(accUnknown, 1)
		}
		return
	}
	if _, ok := a.s.accOf[e]; ok {
		return
	}
	a.s.accOf[e] = c
	a.adjust(c, 1)
}

func (a *capAnalyzer) adjust(c accClass, d int) {
	switch c {
	case accFresh:
		a.stats.Fresh += d
	case accStack:
		a.stats.Stack += d
	case accShared:
		a.stats.Shared += d
	default:
		a.stats.Unknown += d
	}
}
