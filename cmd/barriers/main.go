// Command barriers regenerates the paper's barrier-mix data: Fig. 8
// (breakdown of compiler-inserted barriers into transaction-local
// heap, transaction-local stack, other-not-required, and required) and
// Fig. 9 (portion of barriers removed by each capture-analysis
// technique). Both run every benchmark single-threaded, as in Sec. 4.1.
//
// Usage:
//
//	barriers -fig 8
//	barriers -fig 9
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tm/bench"

	_ "repro/internal/stamp/all"
)

func main() {
	fig := flag.Int("fig", 8, "8 (breakdown) or 9 (removal by technique)")
	benchFlag := flag.String("bench", "all", "comma-separated benchmark names or 'all'")
	flag.Parse()

	benches := bench.Benches()
	if *benchFlag != "all" {
		benches = strings.Split(*benchFlag, ",")
	}

	switch *fig {
	case 8:
		var reads, writes, alls []bench.Breakdown
		for _, b := range benches {
			r, w, a, err := bench.MeasureBreakdown(b)
			if err != nil {
				fmt.Fprintln(os.Stderr, "barriers:", err)
				os.Exit(1)
			}
			reads, writes, alls = append(reads, r), append(writes, w), append(alls, a)
		}
		bench.WriteFig8(os.Stdout, "reads", reads)
		fmt.Println()
		bench.WriteFig8(os.Stdout, "writes", writes)
		fmt.Println()
		bench.WriteFig8(os.Stdout, "all accesses", alls)
	case 9:
		var rows []bench.Removal
		for _, b := range benches {
			r, err := bench.MeasureRemoval(b)
			if err != nil {
				fmt.Fprintln(os.Stderr, "barriers:", err)
				os.Exit(1)
			}
			rows = append(rows, r)
		}
		bench.WriteFig9(os.Stdout, "reads", rows)
		fmt.Println()
		bench.WriteFig9(os.Stdout, "writes", rows)
	default:
		fmt.Fprintln(os.Stderr, "barriers: -fig must be 8 or 9")
		os.Exit(1)
	}
}
