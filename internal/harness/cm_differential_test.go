package harness

// Cross-manager differentials: a contention manager decides how a
// thread waits after a conflict — never what a transaction computes.
// Every workload under every named profile must therefore reach a
// bit-identical final state whichever manager resolves its conflicts,
// and a served request stream must return bit-identical replies. The
// grid here is the perf-only pin for the contention layer: a checksum
// mismatch means a manager leaked into semantics (most plausibly the
// queue manager waking a waiter before its orec was released, or the
// none manager retrying against state an abort failed to roll back).

import (
	"testing"

	"repro/internal/scenarios/tmkv"
	"repro/internal/scenarios/tmmsg"
	"repro/tm"
	"repro/tm/serve"
)

// cmArms returns the profile grid for one manager: every named profile
// re-opened with the manager as the runtime-wide policy.
func cmArms(profiles []tm.Profile, m tm.CM) []tm.Profile {
	arms := make([]tm.Profile, 0, len(profiles))
	for _, p := range profiles {
		arms = append(arms, p.With(tm.WithContention(m)).Named(p.Name()+"+cm"+m))
	}
	return arms
}

// TestCMDifferentialProfiles runs every registered workload under each
// named profile with each non-default contention manager at one thread
// and asserts the final state matches the backoff-default baseline.
// One thread means the managers never actually wait — the test pins
// that merely compiling a manager (the none escalation counter, the
// queue owner bookkeeping threaded through conflictAt) perturbs
// nothing.
func TestCMDifferentialProfiles(t *testing.T) {
	profiles := namedProfiles()
	benches := AllWorkloads()
	if testing.Short() {
		profiles = []tm.Profile{tm.Baseline(), tm.RuntimeAll(tm.LogTree), tm.CompilerElision()}
		benches = []string{"ssca2", "tmkv", "tmmsg"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			base := runChecksum(t, bench, profiles[0], 1)
			for _, m := range []tm.CM{tm.CMNone, tm.CMQueue} {
				for _, p := range cmArms(profiles, m) {
					if got := runChecksum(t, bench, p, 1); got != base {
						t.Errorf("%s under %s: final state %#x, want %#x",
							bench, p.Name(), got, base)
					}
				}
			}
		})
	}
}

// TestCMParallelNoLeaks repeats the contended grid at four threads
// under each manager: final states are scheduling-dependent, but every
// run must validate and leave no orec locked — the queue manager's
// park/wake handshake in particular must not strand a waiter or a
// lock.
func TestCMParallelNoLeaks(t *testing.T) {
	benches := AllWorkloads()
	if testing.Short() {
		benches = []string{"ssca2", "tmkv", "tmmsg"}
	}
	base := tm.RuntimeAll(tm.LogTree)
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, m := range []tm.CM{tm.CMBackoff, tm.CMNone, tm.CMQueue} {
				runChecksum(t, bench, base.With(tm.WithContention(m)).Named("runtime+cm"+m), 4)
			}
		})
	}
}

// TestServeCMReplyIdentity drives the served differential streams with
// each runtime-wide manager: a single worker over a pre-queued stream
// is fully deterministic, so state and every reply must match the
// default-manager run bit for bit. (The per-phase manager mix rides
// along in TestServeMergeDifferentialMsg via PhaseRegimeSpecs, whose
// fragments now carry WithContention.)
func TestServeCMReplyIdentity(t *testing.T) {
	const seed, width = 21, 8
	backends := map[string]func() serve.Backend{
		"srv-tmkv":  func() serve.Backend { return tmkv.NewKVBackend(diffKVConfig()) },
		"srv-tmmsg": func() serve.Backend { return tmmsg.NewMsgBackend(diffMsgConfig(diffRequests)) },
	}
	for name, nb := range backends {
		name, nb := name, nb
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := runServed(t, nb(), tm.Baseline(), 1, width, diffRequests, seed)
			for _, m := range []tm.CM{tm.CMNone, tm.CMQueue} {
				p := tm.Baseline().With(tm.WithContention(m)).Named("baseline+cm" + m)
				got := runServed(t, nb(), p, 1, width, diffRequests, seed)
				if got.checksum != base.checksum {
					t.Errorf("%s under %s: final state %#x, want %#x",
						name, p.Name(), got.checksum, base.checksum)
				}
				if i, ok := sameReplies(base.replies, got.replies); !ok {
					t.Errorf("%s under %s: reply %d = %v, want %v",
						name, p.Name(), i, got.replies[i], base.replies[i])
				}
			}
		})
	}
}

// TestCMLivelockProfiles is the livelock regression at the tm layer:
// two threads writing the same two words in opposite orders under the
// none manager, across the profile grid the conflict path actually
// varies over — including the read-mostly engine, whose fallback
// (attempt 3 re-runs on the full engine) composes with the none
// manager's own escalation (attempt 8 starts backing off). The run
// must terminate with every increment applied and a bounded abort
// bill; an unbounded ratio means escalation failed and symmetric
// writers ping-ponged.
func TestCMLivelockProfiles(t *testing.T) {
	const iters = 400
	profiles := []tm.Profile{
		tm.Baseline(),
		tm.RuntimeAll(tm.LogTree),
		tm.RuntimeAll(tm.LogTree).With(tm.WithReadMostly()).Named("runtime+readmostly"),
	}
	for _, p := range profiles {
		p := p.With(tm.WithContention(tm.CMNone)).Named(p.Name() + "+cmnone")
		t.Run(p.Name(), func(t *testing.T) {
			rt := tm.Open(append(p.Options(), tm.WithMemory(tm.MemConfig{
				GlobalWords: 1 << 8, HeapWords: 1 << 14, StackWords: 1 << 10, MaxThreads: 4,
			}))...)
			g := rt.AllocGlobal(2)
			rt.Parallel(2, func(th *tm.Thread, tid, _ int) {
				for i := 0; i < iters; i++ {
					th.Atomic(func(tx *tm.Tx) {
						// Opposite acquisition orders: the classic
						// symmetric-writer livelock shape.
						a, b := 0, 1
						if tid == 1 {
							a, b = 1, 0
						}
						g.Word(a).Add(tx, 1)
						g.Word(b).Add(tx, 1)
					})
				}
			})
			var sum uint64
			th := rt.Thread(0)
			th.Atomic(func(tx *tm.Tx) {
				sum = g.Word(0).Load(tx) + g.Word(1).Load(tx)
			})
			if want := uint64(2 * 2 * iters); sum != want {
				t.Errorf("counter sum = %d, want %d", sum, want)
			}
			s := rt.Stats()
			if s.Aborts > 50*s.Commits {
				t.Errorf("abort ratio %.1f: none-manager escalation failed to break the livelock", s.AbortRatio())
			}
			rt.Validate()
		})
	}
}

// TestAdaptiveCMOnMsg pins the adaptive manager trajectory on the
// tmmsg mix. The single-worker half is deterministic: a pre-queued
// stream on one worker never conflicts, so every adaptively managed
// kind must settle on the none manager (abort ratio 0 is below
// CMNonePct at every epoch close). The four-worker half is
// scheduling-dependent on contention, so it pins the API instead:
// every selection names a real manager and CMFor routes through the
// same adaptive state the selections report.
func TestAdaptiveCMOnMsg(t *testing.T) {
	const seed, width = 21, 8
	adaptive := tm.RuntimeAll(tm.LogTree).Perf().
		With(tm.WithAdaptive(tm.AdaptiveConfig{Epoch: 16, ProbeEvery: 1 << 20})).
		Named("adaptive")
	newBackend := func() serve.Backend {
		return tmmsg.NewMsgBackend(diffMsgConfig(adaptiveDiffRequests))
	}
	cfg := func(workers int) serve.Config {
		return serve.Config{
			Workers: workers, MergeWidth: width,
			QueueDepth: adaptiveDiffRequests, Requests: adaptiveDiffRequests,
			Options: adaptive.Options(),
		}
	}

	_, solo := runServedCfg(t, newBackend(), cfg(1), adaptiveDiffRequests, seed)
	sels := solo.Runtime().AdaptiveSelections()
	if len(sels) == 0 {
		t.Fatal("no adaptive selections on the tmmsg run")
	}
	for _, sel := range sels {
		if sel.CM != tm.CMNone {
			t.Errorf("uncontended %s settled on manager %q, want %q", sel.Kind, sel.CM, tm.CMNone)
		}
	}

	_, quad := runServedCfg(t, newBackend(), cfg(4), adaptiveDiffRequests, seed)
	for _, sel := range quad.Runtime().AdaptiveSelections() {
		switch sel.CM {
		case tm.CMBackoff, tm.CMNone, tm.CMQueue:
		default:
			t.Errorf("contended %s selected unknown manager %q", sel.Kind, sel.CM)
		}
		if got := quad.Runtime().CMFor(sel.Kind); got != sel.CM {
			t.Errorf("CMFor(%s) = %q, selection reports %q", sel.Kind, got, sel.CM)
		}
		t.Logf("contended %s manager = %q", sel.Kind, sel.CM)
	}
}
