package tlc

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/stm"
)

// Interp executes a compiled TL program against an STM runtime. All TL
// heap and global data lives in the runtime's simulated memory; every
// access inside an atomic block goes through the STM barriers with the
// stm.Acc the capture analysis assigned, so the runtime configuration
// (baseline / runtime capture analysis / compiler elision) applies to
// TL programs exactly as it does to the Go workloads.
//
// Locals of scalar and pointer type live in frame slots (registers) —
// they are private to the executing thread and never instrumented,
// like register-allocated temporaries in the paper's compiler. Frame
// slots are checkpointed at transaction begin and restored on retry,
// the register-checkpointing every STM compiler performs. Array locals
// live on the simulated stack.
type Interp struct {
	c     *Compiled
	rt    *stm.Runtime
	gbase mem.Addr

	mu  sync.Mutex
	out []uint64
}

// NewInterp prepares a program for execution on rt, allocating its
// globals in the simulated globals region.
func NewInterp(c *Compiled, rt *stm.Runtime) *Interp {
	return &Interp{c: c, rt: rt, gbase: rt.Space().AllocGlobal(c.s.gWords)}
}

// Output returns the values printed so far (in print order).
func (in *Interp) Output() []uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]uint64(nil), in.out...)
}

// RuntimeError is a TL execution error with a source line.
type RuntimeError struct {
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error at line %d: %s", e.Line, e.Msg)
}

func rtErrf(line int, format string, args ...any) *RuntimeError {
	return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// interpPanic carries a runtime error through Thread.Atomic's rollback.
type interpPanic struct{ err *RuntimeError }

// env is one thread's execution state.
type env struct {
	in *Interp
	th *stm.Thread
	tx *stm.Tx // innermost transaction, nil outside
}

// frame is one function invocation.
type frame struct {
	slots     []uint64
	stackMark mem.Addr // simulated-stack mark to pop at return
	popStack  bool
}

type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

// Call runs the named function on the given thread. Arguments and the
// return value are raw words (pointers are simulated addresses).
func (in *Interp) Call(th *stm.Thread, name string, args ...uint64) (ret uint64, err error) {
	fi, ok := in.c.s.funcs[name]
	if !ok {
		return 0, fmt.Errorf("tlc: no function %q", name)
	}
	if len(args) != len(fi.decl.Params) {
		return 0, fmt.Errorf("tlc: %s takes %d arguments, got %d", name, len(fi.decl.Params), len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if ip, ok := r.(interpPanic); ok {
				err = ip.err
				return
			}
			panic(r)
		}
	}()
	e := &env{in: in, th: th}
	return e.call(fi, args), nil
}

// call executes one function invocation.
func (e *env) call(fi *funcInfo, args []uint64) uint64 {
	fr := &frame{slots: make([]uint64, fi.nSlots)}
	copy(fr.slots, args)
	c, v := e.block(fi.decl.Body, fr)
	if fr.popStack && e.tx == nil {
		e.th.StackPop(fr.stackMark)
	}
	if c == ctrlReturn {
		return v
	}
	return 0
}

func (e *env) block(b *Block, fr *frame) (ctrl, uint64) {
	for _, st := range b.Stmts {
		if c, v := e.stmt(st, fr); c != ctrlNext {
			return c, v
		}
	}
	return ctrlNext, 0
}

func (e *env) stmt(st Stmt, fr *frame) (ctrl, uint64) {
	s := e.in.c.s
	switch st := st.(type) {
	case *Block:
		return e.block(st, fr)
	case *DeclStmt:
		slot := s.localSlot[st]
		if st.Decl.Type.Kind == TArray {
			// Array locals get simulated-stack storage: inside a
			// transaction it is transaction-local (captured); outside
			// it is reclaimed when the function returns.
			n := st.Decl.Type.ArrLen
			if e.tx != nil {
				fr.slots[slot] = uint64(e.tx.StackAlloc(n))
			} else {
				f, mk := e.th.StackPush(n)
				if !fr.popStack {
					fr.stackMark = mk
					fr.popStack = true
				}
				fr.slots[slot] = uint64(f)
			}
		} else {
			fr.slots[slot] = 0
		}
		return ctrlNext, 0
	case *AssignStmt:
		v := e.expr(st.Rhs, fr)
		e.assign(st.Lhs, v, fr)
		return ctrlNext, 0
	case *IfStmt:
		if e.expr(st.Cond, fr) != 0 {
			return e.block(st.Then, fr)
		}
		if st.Else != nil {
			return e.block(st.Else, fr)
		}
		return ctrlNext, 0
	case *WhileStmt:
		for e.expr(st.Cond, fr) != 0 {
			c, v := e.block(st.Body, fr)
			switch c {
			case ctrlReturn:
				return c, v
			case ctrlBreak:
				return ctrlNext, 0
			}
		}
		return ctrlNext, 0
	case *ReturnStmt:
		if st.Val != nil {
			return ctrlReturn, e.expr(st.Val, fr)
		}
		return ctrlReturn, 0
	case *ExprStmt:
		e.expr(st.X, fr)
		return ctrlNext, 0
	case *AtomicStmt:
		return e.atomic(st, fr)
	case *FreeStmt:
		p := mem.Addr(e.expr(st.Ptr, fr))
		if p == mem.Nil {
			return ctrlNext, 0
		}
		if e.tx != nil {
			e.tx.Free(p)
		} else {
			e.th.Free(p)
		}
		return ctrlNext, 0
	case *BreakStmt:
		return ctrlBreak, 0
	case *ContinueStmt:
		return ctrlContinue, 0
	case *AbortStmt:
		if e.tx == nil {
			panic(interpPanic{rtErrf(st.Line, "abort outside transaction")})
		}
		e.tx.UserAbort()
		return ctrlNext, 0 // unreachable
	}
	panic(interpPanic{rtErrf(0, "unhandled statement %T", st)})
}

// atomic runs an atomic block as a transaction, checkpointing the
// frame registers for retry, and propagates control flow that exits
// the block after commit.
func (e *env) atomic(st *AtomicStmt, fr *frame) (ctrl, uint64) {
	if e.tx != nil {
		// Already transactional: closed nested transaction.
		saved := append([]uint64(nil), fr.slots...)
		var c ctrl
		var v uint64
		e.th.Atomic(func(tx *stm.Tx) {
			copy(fr.slots, saved)
			prev := e.tx
			e.tx = tx
			c, v = e.block(st.Body, fr)
			e.tx = prev
		})
		return c, v
	}
	saved := append([]uint64(nil), fr.slots...)
	var c ctrl
	var v uint64
	e.th.Atomic(func(tx *stm.Tx) {
		copy(fr.slots, saved) // restore registers on retry
		e.tx = tx
		c, v = e.block(st.Body, fr)
		e.tx = nil
	})
	e.tx = nil
	return c, v
}

// acc returns the stm.Acc the capture analysis assigned to an access.
func (e *env) acc(node Expr) stm.Acc {
	switch e.in.c.s.accOf[node] {
	case accFresh:
		return stm.AccFresh
	case accStack:
		return stm.AccStack
	case accShared:
		return stm.Acc{Prov: stm.ProvShared}
	default:
		return stm.AccAuto
	}
}

// load reads a simulated word, transactionally inside atomic blocks.
func (e *env) load(a mem.Addr, node Expr) uint64 {
	if e.tx != nil {
		return e.tx.Load(a, e.acc(node))
	}
	return e.th.Load(a)
}

// store writes a simulated word, transactionally inside atomic blocks.
func (e *env) store(a mem.Addr, v uint64, node Expr) {
	if e.tx != nil {
		e.tx.Store(a, v, e.acc(node))
		return
	}
	e.th.Store(a, v)
}

// address computes the simulated address of an lvalue (field or index
// expression, or a global variable).
func (e *env) address(lv Expr, fr *frame) (mem.Addr, bool) {
	s := e.in.c.s
	switch lv := lv.(type) {
	case *Ident:
		r := s.identRef[lv]
		if r.global {
			return e.in.gbase + mem.Addr(r.slot), true
		}
		return 0, false // register
	case *FieldExpr:
		base := mem.Addr(e.expr(lv.X, fr))
		if base == mem.Nil {
			panic(interpPanic{rtErrf(lv.Line, "nil pointer dereference (.%s)", lv.Name)})
		}
		return base + mem.Addr(s.fieldOff[lv]), true
	case *IndexExpr:
		arrT := s.exprType[lv.X]
		idx := e.expr(lv.I, fr)
		if idx >= uint64(arrT.ArrLen) {
			panic(interpPanic{rtErrf(lv.Line, "index %d out of range [0,%d)", idx, arrT.ArrLen)})
		}
		switch x := lv.X.(type) {
		case *Ident:
			r := s.identRef[x]
			if r.global {
				return e.in.gbase + mem.Addr(r.slot) + mem.Addr(idx), true
			}
			return mem.Addr(fr.slots[r.slot]) + mem.Addr(idx), true
		case *FieldExpr:
			base := mem.Addr(e.expr(x.X, fr))
			if base == mem.Nil {
				panic(interpPanic{rtErrf(x.Line, "nil pointer dereference (.%s)", x.Name)})
			}
			return base + mem.Addr(s.fieldOff[x]) + mem.Addr(idx), true
		}
		panic(interpPanic{rtErrf(lv.Line, "unsupported array expression")})
	}
	panic(interpPanic{rtErrf(line(lv), "not an lvalue")})
}

func (e *env) assign(lv Expr, v uint64, fr *frame) {
	if id, ok := lv.(*Ident); ok {
		r := e.in.c.s.identRef[id]
		if !r.global {
			fr.slots[r.slot] = v
			return
		}
	}
	a, _ := e.address(lv, fr)
	e.store(a, v, lv)
}

func (e *env) expr(x Expr, fr *frame) uint64 {
	s := e.in.c.s
	switch x := x.(type) {
	case *IntLit:
		return x.Val
	case *BoolLit:
		if x.Val {
			return 1
		}
		return 0
	case *NilLit:
		return 0
	case *Ident:
		r := s.identRef[x]
		if r.global {
			if r.typ.Kind == TArray {
				return uint64(e.in.gbase) + uint64(r.slot) // array decays to base
			}
			return e.load(e.in.gbase+mem.Addr(r.slot), x)
		}
		return fr.slots[r.slot]
	case *FieldExpr:
		a, _ := e.address(x, fr)
		if s.fieldType[x].Kind == TArray {
			return uint64(a) // field array decays to its address
		}
		return e.load(a, x)
	case *IndexExpr:
		a, _ := e.address(x, fr)
		return e.load(a, x)
	case *AllocExpr:
		size := s.allocOf[x].size
		if e.tx != nil {
			return uint64(e.tx.Alloc(size))
		}
		return uint64(e.th.Alloc(size))
	case *CallExpr:
		if x.Name == "print" {
			v := e.expr(x.Args[0], fr)
			e.in.mu.Lock()
			e.in.out = append(e.in.out, v)
			e.in.mu.Unlock()
			return 0
		}
		fi := s.callee[x]
		args := make([]uint64, len(x.Args))
		for i, a := range x.Args {
			args[i] = e.expr(a, fr)
		}
		return e.call(fi, args)
	case *BinExpr:
		switch x.Op {
		case tokAndAnd:
			if e.expr(x.L, fr) == 0 {
				return 0
			}
			return e.expr(x.R, fr)
		case tokOrOr:
			if e.expr(x.L, fr) != 0 {
				return 1
			}
			return e.expr(x.R, fr)
		}
		l := e.expr(x.L, fr)
		r := e.expr(x.R, fr)
		switch x.Op {
		case tokPlus:
			return l + r
		case tokMinus:
			return l - r
		case tokStar:
			return l * r
		case tokSlash:
			if r == 0 {
				panic(interpPanic{rtErrf(x.Line, "division by zero")})
			}
			return l / r
		case tokPercent:
			if r == 0 {
				panic(interpPanic{rtErrf(x.Line, "division by zero")})
			}
			return l % r
		case tokEQ:
			return b2u(l == r)
		case tokNE:
			return b2u(l != r)
		case tokLT:
			return b2u(l < r)
		case tokLE:
			return b2u(l <= r)
		case tokGT:
			return b2u(l > r)
		case tokGE:
			return b2u(l >= r)
		}
	case *UnExpr:
		v := e.expr(x.X, fr)
		if x.Op == tokBang {
			return b2u(v == 0)
		}
		return -v
	}
	panic(interpPanic{rtErrf(line(x), "unhandled expression %T", x)})
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
