package tmmsg

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/scenarios/dist"
	"repro/internal/stm"
	"repro/internal/txlib"
	"repro/tm"
)

// Config describes one tmmsg workload mix. Percentages must sum to
// 100; Topics must be a power of two.
type Config struct {
	Name   string
	Topics int // topic-space size (power of two)
	Ops    int // total client transactions across all threads

	KeyWords             int // topic probe-key length in words
	RingCap              int // messages retained per topic
	Groups               int // consumer groups per topic
	MinBlocks, MaxBlocks int // payload size range, in BlockWords blocks

	PublishPct, ConsumePct, AckPct, LagPct int
	MaxBatch                               int // batch publish links 1..MaxBatch messages per commit
	ConsumeMax                             int // messages delivered per consume transaction
	AckMax                                 int // messages acknowledged per ack transaction
	ScanLimit                              int // topics visited per lag scan

	Zipf  bool    // Zipfian (true) or uniform (false) topic choice
	Theta float64 // Zipfian skew, in (0, 1)

	PreloadMsgs int // messages published per topic by Setup
	Seed        uint64
}

// Mixed returns the registered "tmmsg" configuration: a balanced
// broker blend over a Zipfian topic space.
func Mixed() Config {
	return Config{Name: "tmmsg", Topics: 64, Ops: 8192,
		KeyWords: 4, RingCap: 32, Groups: 2, MinBlocks: 1, MaxBlocks: 4,
		PublishPct: 40, ConsumePct: 30, AckPct: 20, LagPct: 10,
		MaxBatch: 4, ConsumeMax: 8, AckMax: 8, ScanLimit: 16,
		Zipf: true, Theta: 0.85, PreloadMsgs: 8, Seed: 1}
}

// PubHeavy returns "tmmsg-pub": batch-publish dominated — the
// allocate-build-publish regime where captured-memory elision has the
// most barriers to remove.
func PubHeavy() Config {
	return Config{Name: "tmmsg-pub", Topics: 64, Ops: 8192,
		KeyWords: 4, RingCap: 32, Groups: 2, MinBlocks: 2, MaxBlocks: 6,
		PublishPct: 70, ConsumePct: 15, AckPct: 5, LagPct: 10,
		MaxBatch: 8, ConsumeMax: 8, AckMax: 8, ScanLimit: 8,
		Zipf: true, Theta: 0.9, PreloadMsgs: 4, Seed: 2}
}

// SubHeavy returns "tmmsg-sub": cursor-dominated consume/ack traffic —
// contended read-modify-writes on definitely-shared words, the regime
// where capture checks are pure overhead.
func SubHeavy() Config {
	return Config{Name: "tmmsg-sub", Topics: 64, Ops: 8192,
		KeyWords: 4, RingCap: 48, Groups: 3, MinBlocks: 1, MaxBlocks: 3,
		PublishPct: 15, ConsumePct: 50, AckPct: 25, LagPct: 10,
		MaxBatch: 4, ConsumeMax: 12, AckMax: 12, ScanLimit: 16,
		Zipf: true, Theta: 0.85, PreloadMsgs: 24, Seed: 3}
}

// LagHeavy returns "tmmsg-lag": backlog-scan dominated monitoring
// traffic — read-only walks over many topics that store only into a
// captured stack accumulator, the regime where the read-mostly
// engine's zero write-path setup pays off.
func LagHeavy() Config {
	return Config{Name: "tmmsg-lag", Topics: 64, Ops: 8192,
		KeyWords: 4, RingCap: 32, Groups: 2, MinBlocks: 1, MaxBlocks: 3,
		PublishPct: 10, ConsumePct: 10, AckPct: 5, LagPct: 75,
		MaxBatch: 4, ConsumeMax: 8, AckMax: 8, ScanLimit: 32,
		Zipf: true, Theta: 0.85, PreloadMsgs: 16, Seed: 4}
}

// Small returns a fast fixed-seed configuration for tests; it is not
// registered.
func Small() Config {
	return Config{Name: "tmmsg-small", Topics: 16, Ops: 1024,
		KeyWords: 3, RingCap: 8, Groups: 2, MinBlocks: 1, MaxBlocks: 3,
		PublishPct: 35, ConsumePct: 35, AckPct: 20, LagPct: 10,
		MaxBatch: 3, ConsumeMax: 6, AckMax: 6, ScanLimit: 8,
		Zipf: true, Theta: 0.9, PreloadMsgs: 4, Seed: 7}
}

func init() {
	for _, reg := range []struct {
		cfg  Config
		desc string
	}{
		{Mixed(), "transactional message broker: mixed publish/consume/ack/lag blend"},
		{PubHeavy(), "tmmsg batch-publish heavy: captured-memory assembly dominates"},
		{SubHeavy(), "tmmsg consume/ack heavy: contended shared consumer cursors dominate"},
		{LagHeavy(), "tmmsg backlog-scan heavy: read-only topic walks dominate"},
	} {
		cfg := reg.cfg
		tm.RegisterWorkloadDesc(cfg.Name, reg.desc, func() tm.Workload { return New(cfg) })
	}
}

// threadStats counts the committed effects of one worker, applied to
// the Go side only after each transaction commits.
type threadStats struct {
	batches, published, drops uint64 // publish ops, messages linked, retention drops
	consumes, acks, lags      uint64 // committed ops by kind
	consumed, skipped, acked  uint64 // messages moved through group ledgers
	misses                    uint64 // ops that found no topic (must stay zero)
	badSum                    uint64 // checksum mismatches seen by consumers
}

// B is one tmmsg run. It implements tm.Workload; like the STAMP ports
// it is written against the low-level engine via Runtime.Unwrap.
type B struct {
	cfg    Config
	broker Broker
	dist   *dist.Zipf
	perTh  []threadStats

	preloadPub, preloadDrops uint64 // Setup's committed publishes
}

// New creates a workload instance from a configuration (instances are
// single use, like every registered workload).
func New(cfg Config) *B {
	if cfg.Topics&(cfg.Topics-1) != 0 || cfg.Topics == 0 {
		panic("tmmsg: Topics must be a power of two")
	}
	if p := cfg.PublishPct + cfg.ConsumePct + cfg.AckPct + cfg.LagPct; p != 100 {
		panic(fmt.Sprintf("tmmsg: %s mix sums to %d%%, want 100%%", cfg.Name, p))
	}
	return &B{cfg: cfg}
}

// Name implements tm.Workload.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements tm.Workload: it sizes the heap for every topic
// retaining RingCap maximum-size messages, plus the full publish churn
// of the run. Dropped messages are reclaimed through per-thread limbo
// lists only at quiescence and recycle into the *freeing* thread's
// class lists, so under contention the central region must absorb, in
// the worst case, every message the run ever publishes (as if nothing
// were recycled). Address-space words are virtual — untouched ones
// cost nothing — so the headroom is cheap insurance against flaky
// heap exhaustion in the 4-thread matrices.
func (b *B) MemConfig() tm.MemConfig {
	c := b.cfg
	return c.memConfig(c.Topics*c.PreloadMsgs + c.Ops*c.MaxBatch)
}

// memConfig sizes the simulated address space for totalPublishes
// messages ever published (as if none were recycled), shared by the
// self-driving workload and the served backend.
func (c Config) memConfig(totalPublishes int) tm.MemConfig {
	perMsg := 1 + msgSize + 1 + c.MaxBlocks*BlockWords + 8 /* headers + class rounding */
	perTopic := tpSize + 2 + c.RingCap /* ring */ +
		c.Groups*(grSize+1) + c.Groups /* group records + array */ +
		8 + c.KeyWords /* index entry + key copy */
	live := c.Topics * (perTopic + c.RingCap*perMsg)
	churn := totalPublishes * perMsg
	words := live + churn +
		32*8192 /* per-thread allocation-cache spans */ +
		2*c.Topics /* buckets */ + (1 << 14)
	heap := 1 << 17
	for heap < words+words/2 {
		heap <<= 1
	}
	return tm.MemConfig{GlobalWords: 1 << 10, HeapWords: heap, StackWords: 1 << 12, MaxThreads: 32}
}

// opThresholds precomputes the cumulative mix boundaries.
func (c Config) opThresholds() [3]int {
	return [3]int{
		c.PublishPct,
		c.PublishPct + c.ConsumePct,
		c.PublishPct + c.ConsumePct + c.AckPct,
	}
}

// makeKey builds the probe key for a topic id in a transaction-local
// stack buffer (the packs' shared encoding).
func (b *B) makeKey(tx *stm.Tx, id uint64) mem.Addr {
	return dist.StackKey(tx, id, b.cfg.KeyWords)
}

// payloadShape derives a message's block count deterministically from
// (topic, sequence), so single-threaded runs are bit-reproducible.
func (c Config) payloadShape(id, seq uint64) int {
	span := c.MaxBlocks - c.MinBlocks + 1
	mix := (id*0x9E3779B97F4A7C15 + seq*0x2545F4914F6CDD1D) >> 17
	return (c.MinBlocks + int(mix%uint64(span))) * BlockWords
}

// fillPayload writes the deterministic content for (topic, sequence):
// fresh-provenance stores into the just-allocated payload — the
// captured-heap writes of the paper's Fig. 8. Shared by the
// self-driving workload and the served backend, so both generate
// bit-identical messages.
func (c Config) fillPayload(tx *stm.Tx, payload mem.Addr, id, seq uint64, words int) {
	base := id*0x9E3779B97F4A7C15 + seq*0x2545F4914F6CDD1D
	for j := 0; j < words; j++ {
		tx.Store(payload+mem.Addr(j), base+uint64(j)*13, stm.AccFresh)
	}
}

// publishN links n messages for the topic inside the current
// transaction, each assembled entirely in captured memory with the
// configuration's deterministic shape and content.
func publishN(tx *stm.Tx, c Config, tp mem.Addr, id uint64, n int) (published, drops uint64) {
	for i := 0; i < n; i++ {
		_, dropped := publishOne(tx, tp,
			func(seq uint64) int { return c.payloadShape(id, seq) },
			func(payload mem.Addr, seq uint64, words int) { c.fillPayload(tx, payload, id, seq, words) })
		published++
		if dropped {
			drops++
		}
	}
	return published, drops
}

// publishBatch runs one batch-publish transaction: n messages for the
// topic, all linked into the ring by the one commit.
func (b *B) publishBatch(th *stm.Thread, id uint64, n int) (published, drops uint64, ok bool) {
	th.Atomic(func(tx *stm.Tx) {
		published, drops, ok = 0, 0, false // retry-safe: judge only the committed attempt
		kb := b.makeKey(tx, id)
		tp, found := b.broker.topic(tx, kb, b.cfg.KeyWords)
		if !found {
			return
		}
		ok = true
		published, drops = publishN(tx, b.cfg, tp, id, n)
	})
	return published, drops, ok
}

// Setup implements tm.Workload: it creates the broker and topics, then
// preloads PreloadMsgs messages per topic single-threadedly using the
// same batch-publish path as the timed phase.
func (b *B) Setup(trt *tm.Runtime) {
	rt := trt.Unwrap()
	c := b.cfg
	if c.Zipf {
		b.dist = dist.NewZipf(c.Topics, c.Theta)
	}
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		b.broker = NewBroker(tx, c.Topics)
	})
	for t := 0; t < c.Topics; t++ {
		id := dist.RankToKey(t, c.Topics)
		th.Atomic(func(tx *stm.Tx) {
			kb := b.makeKey(tx, id)
			if !b.broker.addTopic(tx, kb, c.KeyWords, c.RingCap, c.Groups) {
				panic("tmmsg: topic collision at setup")
			}
		})
	}
	th.EnterPhase(tm.PhasePublish) // preload publishes are publish-shaped
	for t := 0; t < c.Topics; t++ {
		id := dist.RankToKey(t, c.Topics)
		for done := 0; done < c.PreloadMsgs; {
			n := c.MaxBatch
			if n > c.PreloadMsgs-done {
				n = c.PreloadMsgs - done
			}
			pub, drops, ok := b.publishBatch(th, id, n)
			if !ok {
				panic("tmmsg: preload missed a topic")
			}
			b.preloadPub += pub
			b.preloadDrops += drops
			done += n
		}
	}
}

// pickTopic draws a topic id for one operation.
func (b *B) pickTopic(r *prng.R) uint64 {
	if b.dist != nil {
		return dist.RankToKey(b.dist.Sample(r), b.cfg.Topics)
	}
	return dist.RankToKey(r.Intn(b.cfg.Topics), b.cfg.Topics)
}

// Run implements tm.Workload: the timed parallel phase. Ops are split
// across nthreads workers, each with its own deterministic generator.
func (b *B) Run(trt *tm.Runtime, nthreads int) {
	rt := trt.Unwrap()
	b.perTh = make([]threadStats, nthreads)
	thresholds := b.cfg.opThresholds()
	var wg sync.WaitGroup
	for t := 0; t < nthreads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			b.worker(rt.Thread(tid), tid, nthreads, thresholds)
		}(t)
	}
	wg.Wait()
}

func (b *B) worker(th *stm.Thread, tid, nthreads int, thresholds [3]int) {
	c := b.cfg
	ops := c.Ops / nthreads
	if tid == 0 {
		ops += c.Ops % nthreads
	}
	r := prng.New(c.Seed + uint64(tid)*0x9E3779B97F4A7C15)
	st := &b.perTh[tid]
	for i := 0; i < ops; i++ {
		op := r.Intn(100)
		id := b.pickTopic(r)
		// Each operation is tagged with its capture regime. The hints
		// are unconditional: under a profile without tm.WithPhases they
		// select the default engine and the run is byte-for-byte the
		// classic single-engine one; under a phased profile they move
		// the thread onto the regime's compiled engine at the next
		// transaction boundary.
		switch {
		case op < thresholds[0]:
			th.EnterPhase(tm.PhasePublish)
			b.opPublish(th, st, r, id)
		case op < thresholds[1]:
			th.EnterPhase(tm.PhaseCursor)
			b.opConsume(th, st, r, id)
		case op < thresholds[2]:
			th.EnterPhase(tm.PhaseCursor)
			b.opAck(th, st, r, id)
		default:
			th.EnterPhase(tm.PhaseScan)
			b.opLag(th, st)
		}
	}
}

func (b *B) opPublish(th *stm.Thread, st *threadStats, r *prng.R, id uint64) {
	n := 1 + r.Intn(b.cfg.MaxBatch)
	pub, drops, ok := b.publishBatch(th, id, n)
	if !ok {
		st.misses++
		return
	}
	st.batches++
	st.published += pub
	st.drops += drops
}

func (b *B) opConsume(th *stm.Thread, st *threadStats, r *prng.R, id uint64) {
	gi := r.Intn(b.cfg.Groups)
	var consumed, skipped, bad int
	var ok bool
	th.Atomic(func(tx *stm.Tx) {
		consumed, skipped, bad, ok = 0, 0, 0, false // retry-safe
		kb := b.makeKey(tx, id)
		tp, found := b.broker.topic(tx, kb, b.cfg.KeyWords)
		if !found {
			return
		}
		ok = true
		consumed, skipped, bad = consume(tx, tp, gi, b.cfg.ConsumeMax)
	})
	if !ok {
		st.misses++
		return
	}
	st.consumes++
	st.consumed += uint64(consumed)
	st.skipped += uint64(skipped)
	st.badSum += uint64(bad)
}

func (b *B) opAck(th *stm.Thread, st *threadStats, r *prng.R, id uint64) {
	gi := r.Intn(b.cfg.Groups)
	var acked int
	var ok bool
	th.Atomic(func(tx *stm.Tx) {
		acked, ok = 0, false // retry-safe
		kb := b.makeKey(tx, id)
		tp, found := b.broker.topic(tx, kb, b.cfg.KeyWords)
		if !found {
			return
		}
		ok = true
		acked = ack(tx, tp, gi, b.cfg.AckMax)
	})
	if !ok {
		st.misses++
		return
	}
	st.acks++
	st.acked += uint64(acked)
}

func (b *B) opLag(th *stm.Thread, st *threadStats) {
	th.Atomic(func(tx *stm.Tx) {
		b.broker.lagScan(tx, b.cfg.ScanLimit)
	})
	st.lags++
}

// Validate implements tm.Workload. It reconciles three independent
// views of the final state: the per-thread committed-effect counters
// against the topic sequences, every retained message's checksum
// against its payload, and each consumer group's ledger — acked +
// in-flight + skipped == cursor ≤ head, so consumed + in-flight +
// skipped + remaining == published holds per (topic, group).
func (b *B) Validate(trt *tm.Runtime) error {
	rt := trt.Unwrap()
	th := rt.Thread(0)
	th.EnterPhase(tm.PhaseScan) // walking topics is read-mostly scan work
	c := b.cfg

	var pub, drops, consumed, skipped, acked, badSum, misses uint64
	for i := range b.perTh {
		st := &b.perTh[i]
		pub += st.published
		drops += st.drops
		consumed += st.consumed
		skipped += st.skipped
		acked += st.acked
		badSum += st.badSum
		misses += st.misses
	}
	pub += b.preloadPub
	drops += b.preloadDrops
	if badSum != 0 {
		return fmt.Errorf("tmmsg: %d consumed messages failed their checksum", badSum)
	}
	if misses != 0 {
		return fmt.Errorf("tmmsg: %d operations missed a topic Setup created", misses)
	}

	var topics int
	th.Atomic(func(tx *stm.Tx) { topics = b.broker.Topics(tx) })
	if topics != c.Topics {
		return fmt.Errorf("tmmsg: index holds %d topics, want %d", topics, c.Topics)
	}

	// Pass 1: collect every topic record, then verify each in its own
	// transaction (bounded read sets).
	var tps []mem.Addr
	th.Atomic(func(tx *stm.Tx) {
		tps = tps[:0] // retry-safe: judge only the committed attempt
		txlib.HTForEach(tx, b.broker.index, txlib.TM, func(_ mem.Addr, _ int, data uint64) bool {
			tps = append(tps, mem.Addr(data))
			return true
		})
	})
	if len(tps) != topics {
		return fmt.Errorf("tmmsg: index walk found %d topics, size says %d", len(tps), topics)
	}

	var headSum, tailSum, grpConsumed, grpSkipped, grpAcked uint64
	for _, tp := range tps {
		var err error
		th.Atomic(func(tx *stm.Tx) {
			err = b.validateTopic(tx, tp, &headSum, &tailSum, &grpConsumed, &grpSkipped, &grpAcked)
		})
		if err != nil {
			return err
		}
	}

	if headSum != pub {
		return fmt.Errorf("tmmsg: topics hold %d published sequences, threads committed %d", headSum, pub)
	}
	if tailSum != drops {
		return fmt.Errorf("tmmsg: topics dropped %d sequences, threads observed %d", tailSum, drops)
	}
	if grpConsumed != consumed {
		return fmt.Errorf("tmmsg: group ledgers consumed %d, threads committed %d", grpConsumed, consumed)
	}
	if grpSkipped != skipped {
		return fmt.Errorf("tmmsg: group ledgers skipped %d, threads observed %d", grpSkipped, skipped)
	}
	if grpAcked != acked {
		return fmt.Errorf("tmmsg: group ledgers acked %d, threads committed %d", grpAcked, acked)
	}
	return nil
}

// validateTopic checks one topic in a single transaction: retention
// bounds, every retained message's sequence and checksum, and each
// consumer group's cursor ledger. The aggregate sums are reset-safe
// because the caller reruns the whole closure on retry. The visible
// *uint64 accumulators are only advanced on values read in this
// attempt; single-threaded validation transactions do not retry, and
// the per-attempt deltas are recomputed from scratch each time.
func (b *B) validateTopic(tx *stm.Tx, tp mem.Addr,
	headSum, tailSum, grpConsumed, grpSkipped, grpAcked *uint64) error {
	c := b.cfg
	head := tx.Load(tp+tpHead, txlib.TM)
	tail := tx.Load(tp+tpTail, txlib.TM)
	if tail > head {
		return fmt.Errorf("tmmsg: topic %d tail %d beyond head %d", tp, tail, head)
	}
	if head-tail > uint64(c.RingCap) {
		return fmt.Errorf("tmmsg: topic %d retains %d messages, ring holds %d", tp, head-tail, c.RingCap)
	}
	ring := txlib.RingSnapshot(tx, tx.LoadAddr(tp+tpRing, txlib.TM), txlib.TM)
	for seq := tail; seq < head; seq++ {
		m := mem.Addr(ring.Get(tx, seq, txlib.TM))
		if !readMessage(tx, m, seq) {
			return fmt.Errorf("tmmsg: topic %d message %d fails its sequence/checksum", tp, seq)
		}
	}
	if n := int(tx.Load(tp+tpNGroups, txlib.TM)); n != c.Groups {
		return fmt.Errorf("tmmsg: topic %d holds %d groups, want %d", tp, n, c.Groups)
	}
	for gi := 0; gi < c.Groups; gi++ {
		g := group(tx, tp, gi)
		cursor := tx.Load(g+grCursor, txlib.TM)
		inflight := tx.Load(g+grInflight, txlib.TM)
		ackedG := tx.Load(g+grAcked, txlib.TM)
		skippedG := tx.Load(g+grSkipped, txlib.TM)
		if cursor > head {
			return fmt.Errorf("tmmsg: topic %d group %d cursor %d beyond head %d", tp, gi, cursor, head)
		}
		if ackedG+inflight+skippedG != cursor {
			return fmt.Errorf("tmmsg: topic %d group %d ledger %d+%d+%d != cursor %d (remaining %d of %d published)",
				tp, gi, ackedG, inflight, skippedG, cursor, head-cursor, head)
		}
		*grpConsumed += ackedG + inflight
		*grpSkipped += skippedG
		*grpAcked += ackedG
	}
	*headSum += head
	*tailSum += tail
	return nil
}
