package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Error("zero seed stuck at zero")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		f := r.Float()
		if f < 0 || f >= 1 {
			t.Fatalf("Float() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(1).Intn(0)
}

// TestExpShape checks the exponential sampler against the closed-form
// distribution: mean 1/rate, and the CDF 1-exp(-rate*x) at a few
// quantile points. Tolerances are sized for n=200k samples (relative
// standard error of the mean is 1/sqrt(n) ≈ 0.22%).
func TestExpShape(t *testing.T) {
	const (
		rate = 2.5
		n    = 200000
	)
	r := New(31)
	var sum float64
	samples := make([]float64, n)
	for i := range samples {
		x := r.Exp(rate)
		if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("Exp sample %v", x)
		}
		samples[i] = x
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1/rate)/(1/rate) > 0.02 {
		t.Errorf("mean = %v, want ≈ %v", mean, 1/rate)
	}
	// Empirical CDF at x: fraction of samples below x must match
	// 1-exp(-rate*x) to within a couple of percent.
	for _, x := range []float64{0.1, 1 / rate, 1.0} {
		want := 1 - math.Exp(-rate*x)
		below := 0
		for _, s := range samples {
			if s < x {
				below++
			}
		}
		got := float64(below) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(1).Exp(0)
}

func TestRoughUniformity(t *testing.T) {
	r := New(123)
	buckets := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, c := range buckets {
		if c < n/8-n/40 || c > n/8+n/40 {
			t.Errorf("bucket %d count %d far from %d", i, c, n/8)
		}
	}
}
