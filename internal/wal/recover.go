package wal

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ErrNoCheckpoint means the directory holds no loadable checkpoint
// manifest. Durable runtimes write an initial checkpoint at open, so a
// directory that ever hosted one always recovers.
var ErrNoCheckpoint = errors.New("wal: no usable checkpoint manifest")

// RecoveredState is the outcome of Recover: the reconstructed word
// image plus everything a runtime needs to resume appending.
type RecoveredState struct {
	Words       []uint64
	Clock       uint64
	GlobalsNext uint64
	HeapNext    uint64
	Geometry    Geometry
	// NextSeg/NextSeq are where a re-opened log should continue.
	NextSeg uint64
	NextSeq uint64
	// CheckpointSeq is the manifest the recovery started from; Records
	// counts redo records replayed on top of it. Truncated reports that
	// a torn final record was cut off the last segment.
	CheckpointSeq uint64
	Records       uint64
	Truncated     bool
}

// Recover rebuilds state from dir: load the newest manifest whose
// chunks resolve and whose checksum verifies, then replay every redo
// record at or after its log cut, in segment order. A decode failure in
// the final segment is a torn tail — the file is truncated at the last
// good record and recovery succeeds; a failure anywhere else is
// corruption and recovery fails.
func Recover(dir string) (*RecoveredState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var cps []uint64
	for _, e := range entries {
		var n uint64
		if matchName(e.Name(), "cp-%08d.json", &n) {
			cps = append(cps, n)
		}
	}
	if len(cps) == 0 {
		return nil, ErrNoCheckpoint
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i] > cps[j] })

	store, err := OpenStore(dir, 0)
	if err != nil {
		return nil, err
	}
	var m *Manifest
	var words []uint64
	var lastErr error
	for _, n := range cps {
		cand, w, err := loadManifest(dir, store, n)
		if err != nil {
			lastErr = err
			continue
		}
		m, words = cand, w
		break
	}
	if m == nil {
		return nil, fmt.Errorf("%w (last error: %v)", ErrNoCheckpoint, lastErr)
	}

	st := &RecoveredState{
		Words:         words,
		Clock:         m.Clock,
		GlobalsNext:   m.GlobalsNext,
		HeapNext:      m.HeapNext,
		Geometry:      m.Geometry,
		NextSeg:       m.CutSeg,
		CheckpointSeq: m.Seq,
	}
	if err := st.replayTail(dir, m); err != nil {
		return nil, err
	}
	return st, nil
}

func loadManifest(dir string, store *CheckpointStore, n uint64) (*Manifest, []uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName(n)))
	if err != nil {
		return nil, nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, nil, fmt.Errorf("manifest %d: %w", n, err)
	}
	if m.Format != manifestKind {
		return nil, nil, fmt.Errorf("manifest %d: unknown format %q", n, m.Format)
	}
	if m.SpaceWords < 0 || m.ChunkWords <= 0 {
		return nil, nil, fmt.Errorf("manifest %d: bad dimensions", n)
	}
	words := make([]uint64, 0, m.SpaceWords)
	for i, hs := range m.Scores {
		raw, err := hex.DecodeString(hs)
		if err != nil || len(raw) != scoreLen {
			return nil, nil, fmt.Errorf("manifest %d: bad score %d", n, i)
		}
		var sc Score
		copy(sc[:], raw)
		chunk, err := store.ReadChunk(sc)
		if err != nil {
			return nil, nil, fmt.Errorf("manifest %d: %w", n, err)
		}
		words = append(words, chunk...)
	}
	if len(words) != m.SpaceWords {
		return nil, nil, fmt.Errorf("manifest %d: chunks sum to %d words, want %d", n, len(words), m.SpaceWords)
	}
	if sum := fnvWords(words); sum != m.Sum {
		return nil, nil, fmt.Errorf("manifest %d: checksum mismatch (%#x != %#x)", n, sum, m.Sum)
	}
	return &m, words, nil
}

// replayTail applies every record at or after the manifest's cut.
func (st *RecoveredState) replayTail(dir string, m *Manifest) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var segIdxs []uint64
	for _, e := range entries {
		var n uint64
		if matchName(e.Name(), "seg-%08d.wal", &n) && n >= m.CutSeg {
			segIdxs = append(segIdxs, n)
		}
	}
	sort.Slice(segIdxs, func(i, j int) bool { return segIdxs[i] < segIdxs[j] })
	// Segment files are created lazily by the flusher, so the cut
	// segment may legitimately not exist (nothing after the cut was ever
	// flushed) — but a gap in the middle of the tail is corruption.
	for i, idx := range segIdxs {
		if want := segIdxs[0] + uint64(i); idx != want {
			return fmt.Errorf("wal: segment gap: have %d, want %d", idx, want)
		}
	}
	if len(segIdxs) > 0 && segIdxs[0] != m.CutSeg {
		return fmt.Errorf("wal: tail starts at segment %d, cut is in %d", segIdxs[0], m.CutSeg)
	}

	var rec Record
	for i, idx := range segIdxs {
		last := i == len(segIdxs)-1
		path := filepath.Join(dir, SegName(idx))
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(b) < segHdrLen || string(b[:8]) != segMagic {
			if last {
				// Torn header: the flusher crashed before the segment's
				// first batch completed. Nothing in it was acked.
				if err := os.Remove(path); err != nil {
					return err
				}
				st.Truncated = true
				break
			}
			return fmt.Errorf("wal: segment %d: bad header", idx)
		}
		if got := binary.LittleEndian.Uint64(b[8:]); got != idx {
			return fmt.Errorf("wal: segment file %d labeled %d", idx, got)
		}
		off := segHdrLen
		if idx == m.CutSeg {
			if m.CutOff > uint64(len(b)) {
				// The cut lies beyond what reached this file: every record
				// here predates the snapshot.
				off = len(b)
			} else if m.CutOff > segHdrLen {
				off = int(m.CutOff)
			}
		}
		for off < len(b) {
			n, err := DecodeRecord(b[off:], &rec)
			if err != nil {
				if last && errors.Is(err, ErrTorn) {
					if err := os.Truncate(path, int64(off)); err != nil {
						return err
					}
					st.Truncated = true
					break
				}
				return fmt.Errorf("wal: segment %d offset %d: %w", idx, off, err)
			}
			st.apply(&rec)
			off += n
		}
		st.NextSeg = idx + 1
	}
	return nil
}

// RemoveSegmentsBelow deletes every segment file with index < seg.
// Recovery leaves pre-cut segments from the previous incarnation on
// disk; the post-recovery checkpoint calls this to reclaim them, since
// the new log only tracks (and truncates) its own segments.
func RemoveSegmentsBelow(dir string, seg uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, e := range entries {
		var n uint64
		if matchName(e.Name(), "seg-%08d.wal", &n) && n < seg {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (st *RecoveredState) apply(rec *Record) {
	for i := range rec.Spans {
		s := &rec.Spans[i]
		for j, v := range s.Vals {
			a := s.Addr + uint64(j)
			if a < uint64(len(st.Words)) {
				st.Words[a] = v
			}
		}
	}
	if rec.Version > st.Clock {
		st.Clock = rec.Version
	}
	if rec.GlobalsNext > st.GlobalsNext {
		st.GlobalsNext = rec.GlobalsNext
	}
	if rec.HeapNext > st.HeapNext {
		st.HeapNext = rec.HeapNext
	}
	if rec.Seq+1 > st.NextSeq {
		st.NextSeq = rec.Seq + 1
	}
	st.Records++
}
