package serve

import (
	"sync"
	"time"

	"repro/internal/prng"
)

// OpenLoop configures an open-loop client population: clients issue
// requests at scheduled times drawn from a Poisson process, regardless
// of whether earlier requests have completed. Latency is measured from
// each request's *scheduled* arrival to its completion, so a stalled
// server accrues the queueing delay of every request scheduled behind
// the stall — the standard guard against coordinated omission that a
// closed-loop (issue-after-reply) client would hide.
type OpenLoop struct {
	// Clients is the number of issuing goroutines; the offered load is
	// split evenly across them. <1 defaults to 4.
	Clients int
	// Rate is the total offered load in requests per second. <=0 means
	// no pacing: every request is scheduled at the start (peak stress).
	Rate float64
	// Requests is the total number of requests to issue.
	Requests int
	// Seed drives both the interarrival draws and the backend's
	// deterministic request stream.
	Seed uint64
}

// OpenLoopResult is the outcome of one open-loop run.
type OpenLoopResult struct {
	// LatenciesNs is the per-request service time in nanoseconds
	// (completion − scheduled arrival), in request-index order.
	LatenciesNs []int64
	// ElapsedNs is the wall time from the first scheduled arrival to
	// the last completion.
	ElapsedNs int64
	// Requests is the number of requests issued and completed.
	Requests int
	// Aborted counts requests whose Apply refused them.
	Aborted int
	// MergedReplies counts requests served from merged multi-request
	// transactions; MergedReplies/Requests is the effective merge rate
	// seen by clients.
	MergedReplies int
}

// AchievedRPS returns the completed requests per wall-clock second.
func (r OpenLoopResult) AchievedRPS() float64 {
	if r.ElapsedNs <= 0 {
		return 0
	}
	return float64(r.Requests) / (float64(r.ElapsedNs) / 1e9)
}

// RunOpenLoop drives the population against a started server and
// blocks until every request has completed. Request i of the stream is
// backend.NewRequest(cfg.Seed, i), issued by client i%Clients at its
// scheduled arrival, encoded through the wire codec, and submitted.
func (s *Server) RunOpenLoop(cfg OpenLoop) OpenLoopResult {
	clients := cfg.Clients
	if clients < 1 {
		clients = 4
	}
	n := cfg.Requests
	if n < 1 {
		n = 1
	}
	// One slot per request, written exactly once by its done callback;
	// the WaitGroup publishes the writes to the aggregating reader.
	type rec struct {
		latNs           int64
		aborted, merged bool
	}
	recs := make([]rec, n)
	var done sync.WaitGroup
	done.Add(n)

	start := time.Now()
	var issuers sync.WaitGroup
	for c := 0; c < clients; c++ {
		issuers.Add(1)
		go func(c int) {
			defer issuers.Done()
			r := prng.New(cfg.Seed + (uint64(c)+1)*0x9E3779B97F4A7C15)
			perClient := cfg.Rate / float64(clients)
			var offset time.Duration
			var wire []byte
			for i := c; i < n; i += clients {
				if perClient > 0 {
					offset += time.Duration(r.Exp(perClient) * float64(time.Second))
				}
				sched := start.Add(offset)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				req := s.be.NewRequest(cfg.Seed, uint64(i))
				req.Client = uint32(c)
				wire = AppendRequest(wire[:0], req)
				idx := i
				if err := s.Submit(wire, func(rep Reply) {
					recs[idx] = rec{
						latNs:   time.Since(sched).Nanoseconds(),
						aborted: rep.Aborted,
						merged:  rep.Merged,
					}
					done.Done()
				}); err != nil {
					// The wire bytes were produced by AppendRequest one
					// line up; a decode failure is a codec bug.
					panic(err)
				}
			}
		}(c)
	}
	issuers.Wait()
	done.Wait()
	elapsed := time.Since(start)

	res := OpenLoopResult{
		LatenciesNs: make([]int64, n),
		ElapsedNs:   elapsed.Nanoseconds(),
		Requests:    n,
	}
	for i := range recs {
		res.LatenciesNs[i] = recs[i].latNs
		if recs[i].aborted {
			res.Aborted++
		}
		if recs[i].merged {
			res.MergedReplies++
		}
	}
	return res
}
