package txlib

import (
	"sync"
	"testing"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stm"
)

// Concurrency property tests for the shared containers: N goroutines
// of random operations against a mutex-guarded Go reference model.
//
// Two phases with different strengths:
//
//   - serialized phase: the model mutex spans each transaction, so the
//     reference applies operations in exactly the STM's commit order
//     and the final states must match key for key;
//   - contended phase: no model, full STM concurrency. Then the
//     committed per-thread effects must reconcile with the final state
//     (every successful insert/remove toggles presence exactly once),
//     and the structural invariants (size fields, sort order) must
//     hold. Under `go test -race` this doubles as the multi-goroutine
//     stress run of the engine's barrier paths.

const (
	ccThreads = 4
	ccOps     = 1500
	ccKeys    = 64 // small key range: heavy contention
)

func ccRuntime(t testing.TB, cfg stm.OptConfig) *stm.Runtime {
	t.Helper()
	return stm.New(mem.Config{
		GlobalWords: 1 << 8, HeapWords: 1 << 20, StackWords: 1 << 10, MaxThreads: ccThreads + 1,
	}, cfg)
}

// --- Phase 1: serialized against the reference model ---

func TestHashtableMatchesModelSerialized(t *testing.T) {
	rt := ccRuntime(t, stm.OptConfig{})
	var ht mem.Addr
	rt.Thread(ccThreads).Atomic(func(tx *stm.Tx) { ht = NewHashtable(tx, 16) })

	var mu sync.Mutex
	model := make(map[uint64]uint64)
	var wg sync.WaitGroup
	for tid := 0; tid < ccThreads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := rt.Thread(tid)
			r := prng.New(uint64(tid)*977 + 13)
			for i := 0; i < ccOps; i++ {
				key := uint64(r.Intn(ccKeys))
				data := r.Next()
				op := r.Intn(3)
				var diverged string
				mu.Lock() // model order == commit order
				th.Atomic(func(tx *stm.Tx) {
					diverged = "" // judge only the committed attempt
					kb := tx.StackAlloc(1)
					tx.Store(kb, key, stm.AccStack)
					switch op {
					case 0:
						ok := HTInsertIfAbsent(tx, ht, kb, 1, data, TM, stm.AccStack)
						if _, dup := model[key]; ok == dup {
							diverged = "insert"
						}
					case 1:
						_, ok := HTRemove(tx, ht, kb, 1, TM, stm.AccStack)
						if _, had := model[key]; ok != had {
							diverged = "remove"
						}
					default:
						got, ok := HTGet(tx, ht, kb, 1, TM, stm.AccStack)
						want, had := model[key]
						if ok != had || (ok && got != want) {
							diverged = "get"
						}
					}
				})
				// Apply to the model only after the commit succeeded.
				switch op {
				case 0:
					if _, dup := model[key]; !dup {
						model[key] = data
					}
				case 1:
					delete(model, key)
				}
				mu.Unlock()
				if diverged != "" {
					t.Errorf("thread %d: %s on key %d disagreed with the model", tid, diverged, key)
					return
				}
			}
		}(tid)
	}
	wg.Wait()
	rt.Validate()

	th := rt.Thread(ccThreads)
	th.Atomic(func(tx *stm.Tx) {
		if got := HTSize(tx, ht, TM); got != len(model) {
			t.Errorf("final size %d, model has %d", got, len(model))
		}
		seen := 0
		HTForEach(tx, ht, TM, func(kp mem.Addr, kw int, data uint64) bool {
			seen++
			key := tx.Load(kp, TM)
			want, ok := model[key]
			if !ok {
				t.Errorf("table holds key %d the model lacks", key)
			} else if data != want {
				t.Errorf("key %d = %d, model says %d", key, data, want)
			}
			return true
		})
		if seen != len(model) {
			t.Errorf("walked %d entries, model has %d", seen, len(model))
		}
		for key := range model {
			kb := tx.StackAlloc(1)
			tx.Store(kb, key, stm.AccStack)
			if !HTContains(tx, ht, kb, 1, TM, stm.AccStack) {
				t.Errorf("model key %d missing from table", key)
			}
		}
	})
}

// --- Phase 2: contended, reconciled by committed effects ---

// effect is one thread's committed-op tally for a single key.
type effect struct{ ins, del int }

func TestHashtableAndListContended(t *testing.T) {
	for _, cfg := range []stm.OptConfig{
		{Name: "baseline"},
		{Name: "runtime-tree", Read: stm.BarrierOpt{Stack: true, Heap: true},
			Write: stm.BarrierOpt{Stack: true, Heap: true}},
		{Name: "compiler", Compiler: true},
	} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			rt := ccRuntime(t, cfg)
			var ht, list mem.Addr
			rt.Thread(ccThreads).Atomic(func(tx *stm.Tx) {
				ht = NewHashtable(tx, 16)
				list = NewList(tx)
			})

			perTh := make([]map[uint64]*effect, ccThreads)
			var wg sync.WaitGroup
			for tid := 0; tid < ccThreads; tid++ {
				perTh[tid] = make(map[uint64]*effect)
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					th := rt.Thread(tid)
					r := prng.New(uint64(tid)*31337 + 7)
					eff := perTh[tid]
					tally := func(key uint64) *effect {
						e := eff[key]
						if e == nil {
							e = &effect{}
							eff[key] = e
						}
						return e
					}
					for i := 0; i < ccOps; i++ {
						key := uint64(r.Intn(ccKeys))
						var htOK, liOK bool
						op := r.Intn(4)
						th.Atomic(func(tx *stm.Tx) {
							kb := tx.StackAlloc(1)
							tx.Store(kb, key, stm.AccStack)
							switch op {
							case 0:
								// Insert into both structures in one
								// transaction: all-or-nothing.
								htOK = HTInsertIfAbsent(tx, ht, kb, 1, key*3, TM, stm.AccStack)
								liOK = ListInsert(tx, list, key, key*3, TM)
							case 1:
								_, htOK = HTRemove(tx, ht, kb, 1, TM, stm.AccStack)
								_, liOK = ListRemove(tx, list, key, TM)
							case 2:
								_, htOK = HTGet(tx, ht, kb, 1, TM, stm.AccStack)
								_, liOK = ListFind(tx, list, key, TM)
								if htOK != liOK {
									// The two structures are updated
									// atomically together, so a reader
									// may never see them disagree.
									panic("hashtable and list diverged inside a transaction")
								}
								htOK, liOK = false, false
							default:
								it := ListIterNew(tx)
								ListIterReset(tx, it, list, TM)
								prev := uint64(0)
								for n := 0; ListIterHasNext(tx, it) && n < 16; n++ {
									k, _ := ListIterNext(tx, it, TM)
									if k < prev {
										panic("list iteration out of order")
									}
									prev = k
								}
							}
						})
						if op <= 1 && htOK != liOK {
							t.Errorf("op %d on key %d: hashtable ok=%v but list ok=%v", op, key, htOK, liOK)
							return
						}
						if op == 0 && htOK {
							tally(key).ins++
						}
						if op == 1 && htOK {
							tally(key).del++
						}
					}
				}(tid)
			}
			wg.Wait()
			rt.Validate()

			// Reconcile: presence(key) == net committed toggles. Every
			// successful insert flips absent→present and every
			// successful remove present→absent, independent of order.
			net := make(map[uint64]int)
			for _, eff := range perTh {
				for key, e := range eff {
					net[key] += e.ins - e.del
				}
			}
			th := rt.Thread(ccThreads)
			th.Atomic(func(tx *stm.Tx) {
				total := 0
				for key := uint64(0); key < ccKeys; key++ {
					if n := net[key]; n < 0 || n > 1 {
						t.Errorf("key %d: impossible net effect %d", key, n)
					}
					kb := tx.StackAlloc(1)
					tx.Store(kb, key, stm.AccStack)
					present := HTContains(tx, ht, kb, 1, TM, stm.AccStack)
					_, inList := ListFind(tx, list, key, TM)
					if present != (net[key] == 1) || inList != present {
						t.Errorf("key %d: present=%v inList=%v, net effects say %v",
							key, present, inList, net[key] == 1)
					}
					if present {
						total++
					}
				}
				if got := HTSize(tx, ht, TM); got != total {
					t.Errorf("hashtable size field %d, %d keys present", got, total)
				}
				if got := ListSize(tx, list, TM); got != total {
					t.Errorf("list size field %d, %d keys present", got, total)
				}
			})
		})
	}
}
