// Annotations: the paper's Fig. 7 user APIs —
// addPrivateMemoryBlock/removePrivateMemoryBlock — on the bayes-style
// thread-local query-vector pattern from Fig. 1(b).
//
//	go run ./examples/annotations
//
// Each worker owns scratch vectors that live across transactions, so
// neither the runtime capture analysis (not transaction-local) nor the
// compiler (not provable) can elide their barriers. Annotating them as
// private can — exactly the case the paper reserves for programmer
// knowledge.
package main

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/stm"
)

const vecLen = 64

func run(annotate bool) stm.Stats {
	cfg := stm.Baseline()
	cfg.Annotations = true // the runtime consults the private log
	cfg.Name = "annotations-demo"
	rt := stm.New(mem.Config{
		GlobalWords: 1 << 8, HeapWords: 1 << 18, StackWords: 1 << 10, MaxThreads: 8,
	}, cfg)
	shared := rt.Space().AllocGlobal(1)

	const threads, rounds = 4, 500
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			// The thread-local query vector of the paper's Fig. 1(b):
			// allocated once, reused by every transaction.
			qv := th.Alloc(vecLen)
			if annotate {
				th.AddPrivateBlock(qv, vecLen) // Fig. 7 API
				defer th.RemovePrivateBlock(qv, vecLen)
			}
			for r := 0; r < rounds; r++ {
				th.Atomic(func(tx *stm.Tx) {
					// Populate and reduce the private vector; a naive
					// compiler instruments all of these accesses.
					var sum uint64
					for i := 0; i < vecLen; i++ {
						tx.Store(qv+mem.Addr(i), uint64(r+i), stm.AccAuto)
					}
					for i := 0; i < vecLen; i++ {
						sum += tx.Load(qv+mem.Addr(i), stm.AccAuto)
					}
					// One genuinely shared update.
					tx.Store(shared, tx.Load(shared, stm.AccShared)+sum%7, stm.AccShared)
				})
			}
		}(t)
	}
	wg.Wait()
	return rt.Stats()
}

func main() {
	plain := run(false)
	annotated := run(true)
	fmt.Println("bayes-style thread-local query vectors, 4 threads × 500 transactions:")
	fmt.Printf("  without annotations: %8d full barriers, %8d elided\n",
		plain.ReadFull+plain.WriteFull, plain.ReadElided()+plain.WriteElided())
	fmt.Printf("  with annotations:    %8d full barriers, %8d elided (%d reads, %d writes)\n",
		annotated.ReadFull+annotated.WriteFull,
		annotated.ReadElided()+annotated.WriteElided(),
		annotated.ReadElPriv, annotated.WriteElPriv)
	fmt.Println("\nAnnotated writes keep undo logging (live-in values must survive an")
	fmt.Println("abort) but skip ownership-record locking; reads skip everything.")
}
