package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/tm"

	_ "repro/internal/stamp/all"
)

func fixtureResults() []Result {
	return []Result{
		{
			Bench: "tmkv", Config: "baseline", Engine: "perf-noinstr", Threads: 2,
			Times: []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond},
			Stats: tm.Stats{Commits: 100, Aborts: 4, ReadTotal: 1000, WriteTotal: 500},
		},
		{
			Bench: "tmkv", Config: "compiler", Engine: "perf-compiler", Threads: 2,
			Times: []time.Duration{15 * time.Millisecond},
			Stats: tm.Stats{Commits: 100},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport(fixtureResults())
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Machine.NumCPU != runtime.NumCPU() || rep.Machine.GoVersion == "" {
		t.Errorf("machine = %+v", rep.Machine)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rep) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", back, rep)
	}
}

func TestReportAggregates(t *testing.T) {
	rep := NewReport(fixtureResults())
	r := rep.Results[0]
	if r.MinNs != int64(10*time.Millisecond) || r.MedianNs != int64(20*time.Millisecond) ||
		r.MeanNs != int64(20*time.Millisecond) {
		t.Errorf("aggregates min=%d median=%d mean=%d", r.MinNs, r.MedianNs, r.MeanNs)
	}
	if r.AbortRatio != 0.04 {
		t.Errorf("abort ratio = %v", r.AbortRatio)
	}
	if len(r.TimesNs) != 3 || r.TimesNs[0] != int64(30*time.Millisecond) {
		t.Errorf("times = %v", r.TimesNs)
	}
	if r.Engine != "perf-noinstr" {
		t.Errorf("engine = %q", r.Engine)
	}
}

// TestReportDeterministic: two marshals of the same report must be
// byte-identical — the property cross-PR diffing relies on.
func TestReportDeterministic(t *testing.T) {
	rep := NewReport(fixtureResults())
	var a, b bytes.Buffer
	if err := WriteJSON(&a, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, rep); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two marshals differ")
	}
	if !strings.HasSuffix(a.String(), "\n") {
		t.Error("report does not end in newline")
	}
	// Field names are part of the diffable contract.
	for _, key := range []string{`"schema"`, `"machine"`, `"bench"`, `"engine"`, `"times_ns"`, `"min_ns"`, `"abort_ratio"`} {
		if !strings.Contains(a.String(), key) {
			t.Errorf("report missing %s:\n%s", key, a.String())
		}
	}
}

func TestCaptureReportJSON(t *testing.T) {
	rep := NewReport(nil)
	rep.Capture = []CaptureStat{{Bench: "tmkv", Config: "baseline", Commits: 10, Full: 20}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["capture"]; !ok {
		t.Errorf("capture rows missing: %s", buf.String())
	}
	if _, ok := raw["results"]; ok {
		t.Error("empty results should be omitted")
	}
}

func TestDefaultThreadCounts(t *testing.T) {
	counts := DefaultThreadCounts()
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	n := runtime.NumCPU()
	if counts[len(counts)-1] != n {
		t.Errorf("last count = %d, want NumCPU %d", counts[len(counts)-1], n)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Errorf("counts not strictly increasing: %v", counts)
		}
	}
}

func TestSweepProducesCurve(t *testing.T) {
	results, err := Sweep("ssca2", tm.Baseline().Perf(), []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, want := range []int{1, 2} {
		if results[i].Threads != want {
			t.Errorf("result %d threads = %d, want %d", i, results[i].Threads, want)
		}
		if results[i].Engine != "perf-noinstr" {
			t.Errorf("result %d engine = %q", i, results[i].Engine)
		}
		if len(results[i].Times) != 1 {
			t.Errorf("result %d times = %v", i, results[i].Times)
		}
	}
	var buf bytes.Buffer
	WriteSweep(&buf, results)
	if !strings.Contains(buf.String(), "perf-noinstr") || !strings.Contains(buf.String(), "ssca2") {
		t.Errorf("sweep table:\n%s", buf.String())
	}
}
