// Package txlib is the transactional data-structure library the STAMP
// ports are built from — the equivalent of STAMP's lib/ directory. All
// structures live in the simulated address space and are accessed
// through STM barriers.
//
// # Access modes
//
// Every operation takes a mode (an stm.Acc) describing how the
// *container* is being accessed, mirroring STAMP's call variants:
//
//   - TM: the hand-instrumented shared variant (STAMP's TMLIST_*,
//     TMMAP_* macros). These accesses are "required" in the paper's
//     Fig. 8 terminology.
//   - P: the plain variant (STAMP's PLIST_*, PVECTOR_*), which the
//     original program runs without barriers but a naive STM compiler
//     still instruments — the over-instrumentation the paper measures.
//   - L: like P, but the container is provably transaction-local at
//     the call site after inlining, so the compiler's capture analysis
//     (Sec. 3.2) can elide the barriers statically.
//
// Independent of the container mode, stores that initialize freshly
// allocated nodes carry stm.AccFresh: STAMP writes them as plain
// stores (the authors knew fresh memory needs no barriers), a naive
// compiler instruments them anyway, and they are precisely the
// captured-heap writes that dominate the paper's Fig. 8 breakdown.
package txlib

import "repro/internal/stm"

// Container access modes (see package comment).
var (
	TM = stm.AccShared
	P  = stm.AccAuto
	L  = stm.AccLocal
)
