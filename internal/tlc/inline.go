package tlc

import "fmt"

// Function inlining. The paper's compiler capture analysis is
// intraprocedural and "relies on function inlining to extend the
// analysis results across function calls" (Sec. 3.2). This pass
// inlines calls that appear inside atomic blocks so that allocations
// made in helpers become visible to the caller's analysis.
//
// A function is inlinable when it is non-recursive, contains no atomic
// block of its own, and is single-exit (no return statement except
// optionally as the last statement of the body) — the shape of typical
// helpers. Calls in statement position (`f(x);`) and simple assignment
// position (`p = f(x);`) are inlined; other call sites are left alone
// and the analysis treats their results conservatively.

const maxInlinePasses = 3

// inlinePass rewrites the program, returning how many calls it
// inlined.
func inlinePass(prog *Program) int {
	funcs := map[string]*FuncDecl{}
	for _, f := range prog.Funcs {
		funcs[f.Name] = f
	}
	recursive := findRecursive(prog)
	in := &inliner{funcs: funcs, recursive: recursive}
	total := 0
	for _, f := range prog.Funcs {
		in.atomicDepth = 0
		f.Body = in.block(f.Body)
	}
	total = in.count
	return total
}

// inlineAll runs inlinePass to a (bounded) fixed point.
func inlineAll(prog *Program) {
	for i := 0; i < maxInlinePasses; i++ {
		if inlinePass(prog) == 0 {
			return
		}
	}
}

// findRecursive returns the set of functions on call-graph cycles
// (including self-recursion), which must not be inlined.
func findRecursive(prog *Program) map[string]bool {
	calls := map[string]map[string]bool{}
	for _, f := range prog.Funcs {
		calls[f.Name] = map[string]bool{}
		collectCalls(f.Body, calls[f.Name])
	}
	rec := map[string]bool{}
	for name := range calls {
		// DFS from name; if it can reach itself, it is recursive.
		seen := map[string]bool{}
		var walk func(n string) bool
		walk = func(n string) bool {
			for callee := range calls[n] {
				if callee == name {
					return true
				}
				if !seen[callee] {
					seen[callee] = true
					if calls[callee] != nil && walk(callee) {
						return true
					}
				}
			}
			return false
		}
		if walk(name) {
			rec[name] = true
		}
	}
	return rec
}

func collectCalls(b *Block, out map[string]bool) {
	var walkStmt func(s Stmt)
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *CallExpr:
			out[e.Name] = true
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *FieldExpr:
			walkExpr(e.X)
		case *IndexExpr:
			walkExpr(e.X)
			walkExpr(e.I)
		case *BinExpr:
			walkExpr(e.L)
			walkExpr(e.R)
		case *UnExpr:
			walkExpr(e.X)
		}
	}
	walkStmt = func(s Stmt) {
		switch s := s.(type) {
		case *Block:
			for _, st := range s.Stmts {
				walkStmt(st)
			}
		case *AssignStmt:
			walkExpr(s.Lhs)
			walkExpr(s.Rhs)
		case *IfStmt:
			walkExpr(s.Cond)
			walkStmt(s.Then)
			if s.Else != nil {
				walkStmt(s.Else)
			}
		case *WhileStmt:
			walkExpr(s.Cond)
			walkStmt(s.Body)
		case *ReturnStmt:
			if s.Val != nil {
				walkExpr(s.Val)
			}
		case *ExprStmt:
			walkExpr(s.X)
		case *AtomicStmt:
			walkStmt(s.Body)
		case *FreeStmt:
			walkExpr(s.Ptr)
		}
	}
	walkStmt(b)
}

type inliner struct {
	funcs       map[string]*FuncDecl
	recursive   map[string]bool
	atomicDepth int
	count       int
	fresh       int
}

// inlinable reports whether f can be substituted at a call site.
func (in *inliner) inlinable(name string) (*FuncDecl, bool) {
	f, ok := in.funcs[name]
	if !ok || in.recursive[name] {
		return nil, false
	}
	if hasAtomic(f.Body) || !singleExit(f.Body) {
		return nil, false
	}
	return f, true
}

func hasAtomic(b *Block) bool {
	found := false
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch s := s.(type) {
		case *AtomicStmt:
			found = true
		case *Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *IfStmt:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *WhileStmt:
			walk(s.Body)
		}
	}
	walk(b)
	return found
}

// singleExit reports whether the only return (if any) is the last
// statement of the top-level body.
func singleExit(b *Block) bool {
	bad := false
	var walk func(s Stmt, mayReturn bool)
	walk = func(s Stmt, mayReturn bool) {
		switch s := s.(type) {
		case *ReturnStmt:
			if !mayReturn {
				bad = true
			}
		case *Block:
			for i, st := range s.Stmts {
				walk(st, mayReturn && i == len(s.Stmts)-1)
			}
		case *IfStmt:
			walk(s.Then, false)
			if s.Else != nil {
				walk(s.Else, false)
			}
		case *WhileStmt:
			walk(s.Body, false)
		}
	}
	walk(b, true)
	return !bad
}

func (in *inliner) block(b *Block) *Block {
	out := &Block{}
	for _, st := range b.Stmts {
		out.Stmts = append(out.Stmts, in.stmt(st))
	}
	return out
}

func (in *inliner) stmt(st Stmt) Stmt {
	switch st := st.(type) {
	case *Block:
		return in.block(st)
	case *IfStmt:
		cp := *st
		cp.Then = in.block(st.Then)
		if st.Else != nil {
			cp.Else = in.block(st.Else)
		}
		return &cp
	case *WhileStmt:
		cp := *st
		cp.Body = in.block(st.Body)
		return &cp
	case *AtomicStmt:
		in.atomicDepth++
		cp := *st
		cp.Body = in.block(st.Body)
		in.atomicDepth--
		return &cp
	case *ExprStmt:
		if call, ok := st.X.(*CallExpr); ok && in.atomicDepth > 0 {
			if f, ok := in.inlinable(call.Name); ok {
				in.count++
				return in.substitute(f, call, nil)
			}
		}
		return st
	case *AssignStmt:
		if call, ok := st.Rhs.(*CallExpr); ok && in.atomicDepth > 0 {
			if dst, isIdent := st.Lhs.(*Ident); isIdent {
				if f, ok := in.inlinable(call.Name); ok {
					in.count++
					return in.substitute(f, call, dst)
				}
			}
		}
		return st
	default:
		return st
	}
}

// substitute builds the inlined block: fresh parameter locals,
// argument assignments, the renamed body, and the return value
// assignment into dst (when present).
func (in *inliner) substitute(f *FuncDecl, call *CallExpr, dst *Ident) *Block {
	in.fresh++
	prefix := fmt.Sprintf("__in%d_", in.fresh)
	rename := map[string]string{}
	out := &Block{}
	for i, p := range f.Params {
		nn := prefix + p.Name
		rename[p.Name] = nn
		out.Stmts = append(out.Stmts, &DeclStmt{Decl: VarDecl{Name: nn, Type: p.Type, Line: call.Line}})
		out.Stmts = append(out.Stmts, &AssignStmt{
			Lhs: &Ident{Name: nn, Line: call.Line}, Rhs: call.Args[i], Line: call.Line})
	}
	body := cloneBlock(f.Body, prefix, rename)
	// Rewrite the trailing return into an assignment (or drop it).
	if n := len(body.Stmts); n > 0 {
		if ret, ok := body.Stmts[n-1].(*ReturnStmt); ok {
			body.Stmts = body.Stmts[:n-1]
			if dst != nil && ret.Val != nil {
				body.Stmts = append(body.Stmts, &AssignStmt{Lhs: dst, Rhs: ret.Val, Line: ret.Line})
				dst = nil
			}
		}
	}
	if dst != nil {
		// Void call result assigned? sema would have rejected it, so
		// dst is only non-nil for value-returning single-exit bodies
		// that end in return; reaching here means the callee falls off
		// the end, which sema permits only for void functions.
		panic("tlc: inlining value call without trailing return")
	}
	out.Stmts = append(out.Stmts, body)
	return out
}

// cloneBlock deep-copies a block, renaming every declared local with
// the given prefix (captured in rename, which maps old → new names).
func cloneBlock(b *Block, prefix string, rename map[string]string) *Block {
	out := &Block{}
	for _, st := range b.Stmts {
		out.Stmts = append(out.Stmts, cloneStmt(st, prefix, rename))
	}
	return out
}

func cloneStmt(st Stmt, prefix string, rename map[string]string) Stmt {
	switch st := st.(type) {
	case *Block:
		return cloneBlock(st, prefix, rename)
	case *DeclStmt:
		nn := prefix + st.Decl.Name
		rename[st.Decl.Name] = nn
		d := st.Decl
		d.Name = nn
		return &DeclStmt{Decl: d}
	case *AssignStmt:
		return &AssignStmt{Lhs: cloneExpr(st.Lhs, rename), Rhs: cloneExpr(st.Rhs, rename), Line: st.Line}
	case *IfStmt:
		cp := &IfStmt{Cond: cloneExpr(st.Cond, rename), Then: cloneBlock(st.Then, prefix, rename)}
		if st.Else != nil {
			cp.Else = cloneBlock(st.Else, prefix, rename)
		}
		return cp
	case *WhileStmt:
		return &WhileStmt{Cond: cloneExpr(st.Cond, rename), Body: cloneBlock(st.Body, prefix, rename)}
	case *ReturnStmt:
		cp := &ReturnStmt{Line: st.Line}
		if st.Val != nil {
			cp.Val = cloneExpr(st.Val, rename)
		}
		return cp
	case *ExprStmt:
		return &ExprStmt{X: cloneExpr(st.X, rename)}
	case *AtomicStmt:
		return &AtomicStmt{Body: cloneBlock(st.Body, prefix, rename), Line: st.Line}
	case *FreeStmt:
		return &FreeStmt{Ptr: cloneExpr(st.Ptr, rename), Line: st.Line}
	case *BreakStmt:
		return &BreakStmt{Line: st.Line}
	case *ContinueStmt:
		return &ContinueStmt{Line: st.Line}
	case *AbortStmt:
		return &AbortStmt{Line: st.Line}
	}
	panic(fmt.Sprintf("tlc: clone of unhandled statement %T", st))
}

func cloneExpr(e Expr, rename map[string]string) Expr {
	switch e := e.(type) {
	case *IntLit:
		cp := *e
		return &cp
	case *BoolLit:
		cp := *e
		return &cp
	case *NilLit:
		cp := *e
		return &cp
	case *Ident:
		name := e.Name
		if nn, ok := rename[name]; ok {
			name = nn
		}
		return &Ident{Name: name, Line: e.Line}
	case *FieldExpr:
		return &FieldExpr{X: cloneExpr(e.X, rename), Name: e.Name, Line: e.Line}
	case *IndexExpr:
		return &IndexExpr{X: cloneExpr(e.X, rename), I: cloneExpr(e.I, rename), Line: e.Line}
	case *AllocExpr:
		cp := *e
		return &cp
	case *CallExpr:
		cp := &CallExpr{Name: e.Name, Line: e.Line}
		for _, a := range e.Args {
			cp.Args = append(cp.Args, cloneExpr(a, rename))
		}
		return cp
	case *BinExpr:
		return &BinExpr{Op: e.Op, L: cloneExpr(e.L, rename), R: cloneExpr(e.R, rename), Line: e.Line}
	case *UnExpr:
		return &UnExpr{Op: e.Op, X: cloneExpr(e.X, rename), Line: e.Line}
	}
	panic(fmt.Sprintf("tlc: clone of unhandled expression %T", e))
}
