package stm

import (
	"fmt"

	"repro/internal/capture"
	"repro/internal/mem"
	"repro/internal/wal"
)

// This file is the transaction lifecycle layer: the Tx descriptor, top-
// level begin/commit/abort, closed nesting with partial abort, and
// timestamp extension. The barrier hot paths live in barrier.go and
// engine.go; the logs they maintain live in logs.go.

// Tx is a transaction descriptor. It is owned by its Thread and reused
// across transactions; user code receives it from Thread.Atomic.
type Tx struct {
	th     *Thread
	active bool

	rv       uint64   // read version (global clock snapshot)
	startSP  mem.Addr // stack pointer at transaction begin (Fig. 3)
	depth    int32
	epoch    uint64 // distinguishes attempts in the WAW filter
	attempts int

	// cmOwner/cmOrec carry the conflict that aborted the current
	// attempt to the contention manager (cm.go): the conflicting orec's
	// owner thread id (-1 when the conflict has no owner to wait on —
	// version overtakes, validation failures, CAS races that resolved
	// unlocked) and the orec index itself. Set by conflict/conflictAt,
	// read by the queue manager's park path.
	cmOwner int32
	cmOrec  uint64

	readset []readEntry
	writes  []writeEntry
	undo    []undoEntry

	// lockedPrev maps an orec index we own to the orec word our lock
	// replaced, populated at lock time so validate never rescans the
	// write log (see prevOrecWord in logs.go). Allocated lazily on the
	// first lock acquisition (writeFull) and reused via clear after
	// that, so read-only transactions never pay for it.
	lockedPrev map[uint64]uint64

	allocs []allocRec
	frees  []mem.Addr // deferred frees of pre-existing blocks

	alog capture.Log   // runtime capture allocation log (per OptConfig)
	clog *capture.Tree // precise log for Counting mode

	// load and store are the barrier entry points, compiled once per
	// Runtime from the optimization profile (engine.go). Tx.Load and
	// Tx.Store dispatch through them, so the hot path never re-tests
	// the configuration booleans below.
	load  loadFn
	store storeFn

	// eng is the current phase's compiled engine; upgraded is set while
	// a read-mostly attempt has swapped load/store onto eng.up (the
	// in-flight upgrade, barrier.go). finish restores the pair, so each
	// attempt starts on the phase's own engine.
	//
	// rmUnlogged marks an attempt that began on the read-mostly loads:
	// its pre-upgrade reads were validated at read time but never logged,
	// so extend and commitTop must prove no foreign commit intervened
	// instead of revalidating a read set. selfBumps counts the clock
	// bumps this attempt itself performed (nested partial aborts release
	// orecs with fresh versions): clock == rv+selfBumps proves exactly
	// that. upNext asks beginTop to run the next attempt of this
	// transaction on the full engine from the start — set when an
	// upgrade or an unlogged-read revalidation finds foreign commits, so
	// the retry logs its reads and proceeds normally.
	eng        *engine
	upgraded   bool
	rmUnlogged bool
	upNext     bool
	selfBumps  uint64

	// Devirtualized views of alog for the hot containment check, plus
	// a live-range counter so the overwhelmingly common "transaction
	// has allocated nothing" case costs a single predictable branch —
	// the property that keeps the paper's runtime checks cheap on
	// allocation-free benchmarks like kmeans and ssca2. The concrete
	// logs live in phaseLogs, one cached set per phase (built lazily on
	// first entry, each with its phase's sizing), so flipping phases
	// between transactions allocates nothing on the steady state.
	alogKind  capture.Kind
	alogTree  *capture.Tree
	alogArr   *capture.Array
	alogFil   *capture.Filter
	allocLive int
	phaseLogs []phaseLogSet

	waw [wawSlots]wawEntry

	saves []savepoint

	// cached config decisions for the instrumented (generic, counting)
	// engines; the specialized perf engines bake them into code.
	trackAlog   bool
	useWAW      bool
	keepStats   bool
	counting    bool
	compiler    bool
	annotations bool
	readStack   bool
	readHeap    bool
	writeStack  bool
	writeHeap   bool

	verify     bool // VerifyElision oracle enabled
	skipShared bool // definitely-shared extension enabled

	// curSP mirrors the thread's stack pointer so the Fig. 4 range
	// check touches only the (cache-hot) descriptor.
	curSP mem.Addr
}

func (tx *Tx) init(th *Thread) {
	tx.th = th
	tx.applyPhase(0)
}

// phaseLogSet caches one phase's concrete capture logs, so switching
// back and forth between phases — the tmmsg driver hints once per
// operation — reuses the logs built (with that phase's sizing) on its
// first entry instead of reallocating.
type phaseLogSet struct {
	alog capture.Log
	tree *capture.Tree
	arr  *capture.Array
	fil  *capture.Filter
	clog *capture.Tree
}

// applyPhase points the descriptor at one compiled phase: the engine's
// barrier pair plus the cached configuration decisions the instrumented
// chains re-test per access. It must only run between transactions
// (setPhase enforces this); the logs it selects are empty then, so no
// captured range can leak across a switch.
func (tx *Tx) applyPhase(idx int) {
	ph := &tx.th.rt.phases[idx]
	cfg := &ph.cfg
	tx.eng = ph.eng
	tx.upgraded = false
	tx.upNext = false
	tx.load = ph.eng.load
	tx.store = ph.eng.store
	tx.trackAlog = cfg.Read.Heap || cfg.Write.Heap
	tx.useWAW = !cfg.NoWAWFilter
	tx.keepStats = !cfg.PerfMode
	tx.counting = cfg.Counting
	tx.compiler = cfg.Compiler
	tx.annotations = cfg.Annotations
	tx.readStack = cfg.Read.Stack
	tx.readHeap = cfg.Read.Heap
	tx.writeStack = cfg.Write.Stack
	tx.writeHeap = cfg.Write.Heap
	tx.verify = cfg.VerifyElision
	tx.skipShared = cfg.SkipSharedChecks
	if tx.phaseLogs == nil {
		tx.phaseLogs = make([]phaseLogSet, len(tx.th.rt.phases))
	}
	pl := &tx.phaseLogs[idx]
	tx.alog = nil
	if tx.trackAlog {
		tx.alogKind = cfg.LogKind
		if pl.alog == nil {
			switch cfg.LogKind {
			case capture.KindTree:
				pl.tree = capture.NewTree()
				pl.alog = pl.tree
			case capture.KindArray:
				c := cfg.ArrayCap
				if c == 0 {
					c = capture.DefaultArrayCap
				}
				pl.arr = capture.NewArray(c)
				pl.alog = pl.arr
			case capture.KindFilter:
				b := cfg.FilterBits
				if b == 0 {
					b = capture.DefaultFilterBits
				}
				pl.fil = capture.NewFilter(b)
				pl.alog = pl.fil
			}
		}
		tx.alogTree, tx.alogArr, tx.alogFil = pl.tree, pl.arr, pl.fil
		tx.alog = pl.alog
	}
	tx.clog = nil
	if cfg.Counting {
		if pl.clog == nil {
			pl.clog = capture.NewTree()
		}
		tx.clog = pl.clog
	}
}

// Thread returns the owning thread.
func (tx *Tx) Thread() *Thread { return tx.th }

// Depth returns the current nesting depth (1 = top level).
func (tx *Tx) Depth() int { return int(tx.depth) }

// Attempt returns the 1-based attempt number of the current top-level
// transaction (>1 after conflicts).
func (tx *Tx) Attempt() int { return tx.attempts }

// rmFallbackAttempt bounds read-mostly retries: from this attempt on,
// the transaction runs on the full engine, whose logged reads survive
// concurrent commits via extension. Without the bound, a long unlogged
// scan racing a steady writer could retry forever — rmReadFull cannot
// extend past a foreign commit.
const rmFallbackAttempt = 3

func (tx *Tx) beginTop() {
	tx.active = true
	tx.attempts++
	tx.epoch++
	tx.depth = 1
	tx.th.rt.seqs[tx.th.id].Add(1) // now odd: in transaction
	tx.rv = tx.th.rt.clock.Load()
	tx.selfBumps = 0
	if up := tx.eng.up; up != nil && (tx.upNext || tx.attempts >= rmFallbackAttempt) {
		// A previous attempt's upgrade found foreign commits past its
		// snapshot (upNext), or retries keep failing: run this attempt
		// on the full engine from the first access, so every read is
		// logged and extension/validation work normally. finish()
		// restores the read-mostly pair for the next transaction.
		tx.load, tx.store = up.load, up.store
		tx.upgraded = true
	}
	tx.rmUnlogged = tx.eng.up != nil && !tx.upgraded
	tx.startSP = tx.th.stack.SP()
	tx.curSP = tx.startSP
}

// conflict abandons the current attempt. The conflict carries no owner
// to wait on (the queue manager falls back to backoff).
func (tx *Tx) conflict() {
	tx.cmOwner = -1
	panic(retrySignal{})
}

// conflictAt abandons the current attempt over orec oi, whose observed
// word was v. When v is locked by another thread, the owner is recorded
// for the contention manager — the queue policy parks on it until its
// next release; any other word (a version overtake, a concurrent
// release) leaves no one to wait on.
func (tx *Tx) conflictAt(oi, v uint64) {
	if orecLocked(v) && orecOwner(v) != tx.th.id {
		tx.cmOwner = int32(orecOwner(v))
		tx.cmOrec = oi
	} else {
		tx.cmOwner = -1
	}
	panic(retrySignal{})
}

// UserAbort rolls back the innermost transaction; Atomic returns
// false. This is the paper's user abort (Sec. 2.2.1).
func (tx *Tx) UserAbort() {
	panic(userAbort{})
}

// Restart abandons the attempt and retries the top-level transaction
// from scratch (STAMP's TM_RESTART).
func (tx *Tx) Restart() {
	tx.conflict()
}

// verifyCaptured is the soundness oracle behind OptConfig.VerifyElision:
// a statically elided access must target memory the precise dynamic
// analysis confirms captured.
func (tx *Tx) verifyCaptured(a mem.Addr) {
	if tx.onTxStack(a) || tx.clog.Contains(a, 1) {
		return
	}
	panic(fmt.Sprintf("stm: compiler elided a non-captured access to %d", a))
}

// --- Commit / abort ---

func (tx *Tx) commitTop() {
	rt := tx.th.rt
	var ack wal.Ack
	durable := false
	if len(tx.writes) > 0 {
		wv := rt.clock.Add(1)
		if wv != tx.rv+1 {
			if tx.rmUnlogged {
				// The attempt upgraded in-flight from read-mostly loads:
				// its pre-upgrade reads are unlogged, so the read set
				// cannot vouch for them. Committing is sound exactly when
				// every clock bump since the snapshot was this attempt's
				// own (nested partial aborts); otherwise retry on the
				// full engine.
				if wv != tx.rv+tx.selfBumps+1 {
					tx.upNext = true
					tx.conflict() // unwinds into abortTop
				}
			} else if !tx.validate(rt) {
				tx.conflict() // unwinds into abortTop
			}
		}
		if rt.durable != nil {
			// Enqueue the redo record while we still own every orec, so
			// log order respects conflict order; the fsync wait happens
			// after release (end of this function).
			ack = tx.durableCommit(wv)
			durable = true
		}
		rel := wv << 1
		for i := range tx.writes {
			rt.orecs[tx.writes[i].oi].Store(rel)
		}
		tx.th.wakeWaiters()
	} else if rt.durable != nil && tx.durableDirty() {
		// No orecs acquired, but memory changed anyway: annotated-private
		// writes, captured allocations, or stack growth.
		ack = tx.durableCommit(rt.clock.Load())
		durable = true
	}
	// Deferred frees become effective now that the transaction is
	// durable, but the blocks are recycled only after every in-flight
	// transaction has finished (zombie readers may still dereference
	// into them), via the per-thread limbo list.
	if len(tx.frees) > 0 {
		tx.th.enqueueLimbo(tx.frees)
	}
	tx.th.stack.Pop(tx.startSP)
	tx.th.stats.Commits++
	tx.finish()
	tx.th.rt.seqs[tx.th.id].Add(1) // now even: quiescent
	tx.th.drainLimbo()
	if durable {
		// Group-commit barrier: return to the application only once the
		// record (batched with everything the flusher accumulated) is on
		// disk. Sticky log errors surface at Sync/Close.
		ack.Wait()
	}
}

// abortTop rolls the whole transaction back. retried distinguishes
// conflict aborts (counted in Stats.Aborts, the paper's Table 1
// numerator) from user aborts that will not be retried.
func (tx *Tx) abortTop(retried bool) {
	rt := tx.th.rt
	// Roll back in-place updates in reverse order.
	for i := len(tx.undo) - 1; i >= 0; i-- {
		rt.space.Store(tx.undo[i].addr, tx.undo[i].val)
	}
	if rt.durable != nil && tx.durableDirty() {
		// The attempt's residue (restored words, alloc-block scribbles,
		// stack garbage) is checksum-visible state; record it before the
		// orecs are released so no conflicting commit can order ahead.
		tx.durableAbort()
	}
	// Release ownership with a fresh version so concurrent optimistic
	// readers of our speculative values cannot validate (ABA safety).
	if len(tx.writes) > 0 {
		rel := rt.clock.Add(1) << 1
		for i := range tx.writes {
			rt.orecs[tx.writes[i].oi].Store(rel)
		}
		tx.th.wakeWaiters()
	}
	// Speculative allocations die with the transaction.
	for i := len(tx.allocs) - 1; i >= 0; i-- {
		if !tx.allocs[i].dead {
			tx.th.alloc.Free(tx.allocs[i].addr)
		}
	}
	// Deferred frees are dropped: the blocks were never freed.
	tx.th.stack.Pop(tx.startSP)
	if retried {
		tx.th.stats.Aborts++
	} else {
		tx.th.stats.UserAborts++
	}
	tx.finish()
	tx.th.rt.seqs[tx.th.id].Add(1) // now even: quiescent
}

func (tx *Tx) finish() {
	tx.active = false
	tx.depth = 0
	if tx.upgraded {
		// Undo the read-mostly in-flight upgrade: the next attempt (a
		// retry of this transaction or a fresh one) starts back on the
		// phase's own engine and re-upgrades on its first shared store.
		tx.upgraded = false
		tx.load, tx.store = tx.eng.load, tx.eng.store
	}
	tx.readset = tx.readset[:0]
	tx.writes = tx.writes[:0]
	tx.undo = tx.undo[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.saves = tx.saves[:0]
	clear(tx.lockedPrev)
	if tx.alog != nil {
		tx.alog.Clear()
		tx.allocLive = 0
	}
	if tx.clog != nil {
		tx.clog.Clear()
	}
}

// extend revalidates the read set against the current clock, raising
// rv (TL2-style timestamp extension). An attempt that began on the
// read-mostly loads has unlogged reads the read set cannot vouch for:
// it may extend only past its own clock bumps (nested partial aborts
// re-version the orecs it released, but the undo replay restored the
// exact values, so unlogged reads of them stay valid); any foreign
// commit in the window forces a retry — on the full engine if the
// attempt had already upgraded, since it would hit the same wall again.
func (tx *Tx) extend() {
	rt := tx.th.rt
	newRv := rt.clock.Load()
	if tx.rmUnlogged {
		if newRv != tx.rv+tx.selfBumps {
			tx.upNext = tx.upgraded
			tx.conflict()
		}
		tx.rv = newRv
		tx.selfBumps = 0
		return
	}
	if !tx.validate(rt) {
		tx.conflict()
	}
	tx.rv = newRv
}

// --- Nesting (closed, with partial abort) ---

func (tx *Tx) beginNested() {
	tx.saves = append(tx.saves, savepoint{
		read:  len(tx.readset),
		write: len(tx.writes),
		undo:  len(tx.undo),
		alloc: len(tx.allocs),
		free:  len(tx.frees),
		sp:    tx.th.stack.SP(),
	})
	tx.depth++
}

func (tx *Tx) commitNested() {
	// Closed nesting: merge into the parent by dropping the savepoint.
	tx.saves = tx.saves[:len(tx.saves)-1]
	tx.depth--
}

// abortNested rolls the transaction back to the innermost savepoint:
// partial abort (Sec. 2.2.1).
func (tx *Tx) abortNested() {
	rt := tx.th.rt
	sp := tx.saves[len(tx.saves)-1]
	for i := len(tx.undo) - 1; i >= sp.undo; i-- {
		rt.space.Store(tx.undo[i].addr, tx.undo[i].val)
	}
	if rt.durable != nil {
		// The scope's orecs are released below, so a foreign commit could
		// otherwise overwrite these words and still log *before* our
		// eventual top-level record; emit the replayed range now, while
		// we still hold them. Thread-private residue (scope allocations,
		// popped frames) cannot race and is left to the top-level record,
		// whose stack span [curSP, startSP) and allocation dump cover it.
		tx.durableNestedAbort(sp.undo, sp.alloc)
	}
	if len(tx.writes) > sp.write {
		rel := rt.clock.Add(1) << 1
		tx.selfBumps++ // our own bump: unlogged-read revalidation allows it
		for i := sp.write; i < len(tx.writes); i++ {
			rt.orecs[tx.writes[i].oi].Store(rel)
			delete(tx.lockedPrev, tx.writes[i].oi)
		}
		tx.th.wakeWaiters()
		// The version bump protects concurrent optimistic readers from
		// the speculative values (ABA), but it must not invalidate the
		// *enclosing* transaction's own reads: the undo replay above
		// restored the exact values, so the outer read set stays
		// semantically valid. Repair its entries for the released
		// records to the new version — otherwise the outer transaction
		// livelocks re-validating against versions it bumped itself.
		for j := range tx.readset {
			re := &tx.readset[j]
			for i := sp.write; i < len(tx.writes); i++ {
				if re.oi == tx.writes[i].oi {
					re.v = rel
					break
				}
			}
		}
	}
	for i := len(tx.allocs) - 1; i >= sp.alloc; i-- {
		a := &tx.allocs[i]
		if !a.dead {
			tx.removeFromLogs(a.addr, a.size)
			tx.th.alloc.Free(a.addr)
		}
	}
	tx.readset = tx.readset[:sp.read]
	tx.writes = tx.writes[:sp.write]
	tx.undo = tx.undo[:sp.undo]
	tx.allocs = tx.allocs[:sp.alloc]
	tx.frees = tx.frees[:sp.free]
	tx.th.stack.Pop(sp.sp)
	tx.saves = tx.saves[:len(tx.saves)-1]
	tx.depth--
}
