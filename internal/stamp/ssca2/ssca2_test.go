package ssca2

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/stm"
)

func small() Config { return Config{Name: "ssca2-test", Vertices: 128, Edges: 2048, Seed: 17} }

func runOne(t *testing.T, cfg Config, opt stm.OptConfig, threads int) (*B, *stm.Runtime) {
	t.Helper()
	b := NewWith(cfg)
	rt := stm.New(b.MemConfig(), opt)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("validate: %v", err)
	}
	rt.Validate()
	return b, rt
}

func TestSerialGraphConstruction(t *testing.T) {
	_, rt := runOne(t, small(), stm.Baseline(), 1)
	if rt.Stats().Commits != 2048 {
		t.Errorf("commits = %d, want one per edge", rt.Stats().Commits)
	}
}

func TestParallelGraphConstruction(t *testing.T) {
	for _, threads := range []int{2, 8, 16} {
		runOne(t, small(), stm.Baseline(), threads)
	}
}

func TestNoElisionOpportunities(t *testing.T) {
	_, rt := runOne(t, small(), stm.RuntimeAll(capture.KindTree), 4)
	s := rt.Stats()
	if e := s.ReadElided() + s.WriteElided(); e != 0 {
		t.Errorf("%d barriers elided; ssca2 allocates nothing in transactions", e)
	}
}

// TestHotVertexContention concentrates all edges on few vertices,
// forcing write-write conflicts on the degree counters.
func TestHotVertexContention(t *testing.T) {
	cfg := Config{Name: "hot", Vertices: 4, Edges: 4096, Seed: 19}
	_, rt := runOne(t, cfg, stm.Baseline(), 8)
	if rt.Stats().Aborts == 0 {
		t.Log("note: no conflicts on hot vertices this run")
	}
}
