package serve

import (
	"encoding/binary"
	"errors"
	"math"
)

// Request is one decoded client request. The fields are deliberately
// generic — an opcode, the issuing client, and two operands — so one
// codec serves every backend; each backend defines its own opcode
// space and operand meaning.
type Request struct {
	Op     uint8  // backend-defined opcode
	Client uint32 // issuing client id (reply routing, diagnostics)
	Key    uint64 // primary operand: key id, topic id, …
	Arg    uint64 // secondary operand: batch size, group id, …
}

// Wire-format errors returned by DecodeRequest.
var (
	ErrShortRequest = errors.New("serve: truncated request")
	ErrBadRequest   = errors.New("serve: malformed request")
)

// AppendRequest appends the wire encoding of r to dst and returns the
// extended slice: one opcode byte followed by the client, key, and
// arg as unsigned varints (3–28 bytes total).
func AppendRequest(dst []byte, r Request) []byte {
	dst = append(dst, r.Op)
	dst = binary.AppendUvarint(dst, uint64(r.Client))
	dst = binary.AppendUvarint(dst, r.Key)
	dst = binary.AppendUvarint(dst, r.Arg)
	return dst
}

// DecodeRequest decodes one request from the front of src, returning
// it and the number of bytes consumed.
func DecodeRequest(src []byte) (Request, int, error) {
	if len(src) < 1 {
		return Request{}, 0, ErrShortRequest
	}
	r := Request{Op: src[0]}
	pos := 1
	client, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return Request{}, 0, uvarintErr(n)
	}
	if client > math.MaxUint32 {
		return Request{}, 0, ErrBadRequest
	}
	r.Client = uint32(client)
	pos += n
	if r.Key, n = binary.Uvarint(src[pos:]); n <= 0 {
		return Request{}, 0, uvarintErr(n)
	}
	pos += n
	if r.Arg, n = binary.Uvarint(src[pos:]); n <= 0 {
		return Request{}, 0, uvarintErr(n)
	}
	return r, pos + n, nil
}

// uvarintErr maps binary.Uvarint's failure convention (0 = truncated,
// negative = overflow) to the codec's errors.
func uvarintErr(n int) error {
	if n == 0 {
		return ErrShortRequest
	}
	return ErrBadRequest
}
