// Package prng provides the deterministic pseudo-random generator used
// by the workload generators and the contention manager's jitter. It
// replaces STAMP's Mersenne twister; determinism across runs is what
// matters for reproducibility, not the generator family.
package prng

import "math"

// R is a xorshift64* generator. Not safe for concurrent use; each
// thread owns its own.
type R struct {
	s uint64
}

// New creates a generator. A zero seed is remapped to a fixed
// constant, since xorshift has an all-zero fixed point.
func New(seed uint64) *R {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &R{s: seed}
}

// Next returns the next 64 random bits.
func (r *R) Next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *R) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Uint64n returns a value in [0, n). It panics if n == 0.
func (r *R) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	return r.Next() % n
}

// Float returns a value in [0, 1) with 53 bits of precision.
func (r *R) Float() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate) — the interarrival gap of a Poisson process, used by
// the open-loop client population. It panics if rate <= 0.
func (r *R) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("prng: Exp with non-positive rate")
	}
	// Float is in [0, 1), so 1-Float is in (0, 1] and the log is finite.
	return -math.Log(1-r.Float()) / rate
}

// Shuffle permutes xs in place (Fisher–Yates).
func (r *R) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Perm returns a random permutation of [0, n).
func (r *R) Perm(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	r.Shuffle(xs)
	return xs
}
