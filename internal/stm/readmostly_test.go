package stm

import (
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/mem"
)

// rmCfg returns the canonical read-mostly perf profile: the full
// runtime-capture base with the ReadMostly knob on, so the upgrade
// target is the rw-stack-heap-tree specialization.
func rmCfg() OptConfig {
	cfg := RuntimeAll(capture.KindTree).Perf()
	cfg.ReadMostly = true
	return cfg
}

// TestReadMostlyZeroWriteActivity is the zero-setup acceptance pin: a
// phase that never stores to shared memory must leave the write-side
// machinery untouched — no write-log or undo-log capacity ever
// allocated, no lockedPrev map materialized, zero upgrades — and,
// because read-mostly full reads validate against the snapshot instead
// of logging, no read-set capacity either.
func TestReadMostlyZeroWriteActivity(t *testing.T) {
	for _, perf := range []bool{false, true} {
		cfg := rmCfg()
		cfg.PerfMode = perf
		rt := newRT(cfg)
		th := rt.Thread(0)
		g := rt.Space().AllocGlobal(8)
		for i := 0; i < 8; i++ {
			rt.Space().Store(g+mem.Addr(i), uint64(i*3))
		}
		var sum uint64
		for iter := 0; iter < 50; iter++ {
			th.Atomic(func(tx *Tx) {
				// Captured stores (stack accumulator) must not upgrade.
				f := tx.StackAlloc(1)
				tx.Store(f, 0, AccStack)
				for i := 0; i < 8; i++ {
					tx.Store(f, tx.Load(f, AccStack)+tx.Load(g+mem.Addr(i), AccShared), AccStack)
				}
				sum = tx.Load(f, AccStack)
			})
		}
		if sum != 0+3+6+9+12+15+18+21 {
			t.Errorf("perf=%v: sum = %d", perf, sum)
		}
		s := rt.Stats()
		if s.Upgrades != 0 {
			t.Errorf("perf=%v: %d upgrades on a never-storing phase", perf, s.Upgrades)
		}
		if s.Commits != 50 {
			t.Errorf("perf=%v: commits = %d, want 50", perf, s.Commits)
		}
		tx := th.tx
		if cap(tx.writes) != 0 || cap(tx.undo) != 0 {
			t.Errorf("perf=%v: write machinery allocated: writes cap %d, undo cap %d",
				perf, cap(tx.writes), cap(tx.undo))
		}
		if cap(tx.readset) != 0 {
			t.Errorf("perf=%v: read set allocated (cap %d) on unlogged loads", perf, cap(tx.readset))
		}
		if tx.lockedPrev != nil {
			t.Errorf("perf=%v: lockedPrev materialized with %d entries", perf, len(tx.lockedPrev))
		}
		rt.Validate()
	}
}

// TestReadMostlyUpgrade covers the in-flight upgrade: the first shared
// store swaps the transaction onto the full engine mid-flight, the
// store and everything after it behaves exactly like the full engine,
// and finish() restores the read-mostly pair so the next transaction
// starts fresh.
func TestReadMostlyUpgrade(t *testing.T) {
	for _, perf := range []bool{false, true} {
		cfg := rmCfg()
		cfg.PerfMode = perf
		rt := newRT(cfg)
		th := rt.Thread(0)
		g := rt.Space().AllocGlobal(2)
		rt.Space().Store(g, 40)
		th.Atomic(func(tx *Tx) {
			v := tx.Load(g, AccShared)
			tx.Store(g, v+2, AccShared) // first shared store: upgrade here
			if !tx.upgraded {
				t.Error("tx not marked upgraded after shared store")
			}
			// Read-after-write and a second store run on the full engine.
			tx.Store(g+1, tx.Load(g, AccShared), AccShared)
		})
		if got := rt.Space().Load(g); got != 42 {
			t.Errorf("perf=%v: g = %d, want 42", perf, got)
		}
		if got := rt.Space().Load(g + 1); got != 42 {
			t.Errorf("perf=%v: g+1 = %d, want 42", perf, got)
		}
		if s := rt.Stats(); s.Upgrades != 1 {
			t.Errorf("perf=%v: upgrades = %d, want 1", perf, s.Upgrades)
		}
		// The barrier pair is restored: a following read-only transaction
		// reports no further upgrades.
		th.Atomic(func(tx *Tx) {
			if tx.upgraded {
				t.Error("upgraded flag leaked into next transaction")
			}
			_ = tx.Load(g, AccShared)
		})
		if s := rt.Stats(); s.Upgrades != 1 {
			t.Errorf("perf=%v: upgrades after read-only tx = %d, want 1", perf, s.Upgrades)
		}
		rt.Validate()
	}
}

// TestReadMostlyUpgradeRestart pins the restart half of the upgrade
// contract: when a writer commits between a read-mostly attempt's
// snapshot and its first shared store, the unlogged reads cannot be
// revalidated, so the in-flight path must refuse and the retry must
// run the full engine from its first access (upNext).
func TestReadMostlyUpgradeRestart(t *testing.T) {
	rt := newRT(rmCfg())
	th := rt.Thread(0)
	wr := rt.Thread(1)
	g := rt.Space().AllocGlobal(2)
	attempts := 0
	th.Atomic(func(tx *Tx) {
		attempts++
		v := tx.Load(g, AccShared)
		if attempts == 1 {
			// A concurrent writer commits after the snapshot.
			wr.Atomic(func(wtx *Tx) {
				wtx.Store(g+1, 7, AccShared)
			})
			if tx.upgraded {
				t.Error("attempt 1 started upgraded")
			}
		} else if !tx.upgraded {
			t.Error("retry did not start on the full engine")
		}
		tx.Store(g, v+1, AccShared)
	})
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if got := rt.Space().Load(g); got != 1 {
		t.Errorf("g = %d, want 1", got)
	}
	// Two upgrade events: the interfering writer's (in-flight, it saw a
	// clean clock) and the refused one that forced the restart. The
	// retried attempt runs the full engine from the start, so it does
	// not count a third.
	if s := rt.Stats(); s.Upgrades != 2 {
		t.Errorf("upgrades = %d, want 2", s.Upgrades)
	}
	rt.Validate()
}

// TestReadMostlyUpgradeNestedAbort drives the upgrade inside a nested
// transaction that partially aborts: the inner stores roll back, the
// upgrade sticks for the rest of the outer transaction (the engine swap
// is per-attempt, not per-nesting-level), and the outer commit is
// intact.
func TestReadMostlyUpgradeNestedAbort(t *testing.T) {
	rt := newRT(rmCfg())
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(2)
	rt.Space().Store(g, 7)
	th.Atomic(func(tx *Tx) {
		_ = tx.Load(g, AccShared)
		th.Atomic(func(tx2 *Tx) {
			tx2.Store(g+1, 99, AccShared) // upgrade fires inside the nested tx
			tx2.UserAbort()
		})
		if !tx.upgraded {
			t.Error("upgrade did not survive the nested abort")
		}
		tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
	})
	if got := rt.Space().Load(g); got != 8 {
		t.Errorf("g = %d, want 8", got)
	}
	if got := rt.Space().Load(g + 1); got != 0 {
		t.Errorf("aborted nested store leaked: g+1 = %d", got)
	}
	rt.Validate()
}

// TestReadMostlyMatchesGeneric runs the full engine scenario (every
// barrier mechanism, including shared stores that force upgrades) under
// the read-mostly family and under the forced-generic reference, and
// demands identical memory effects. Statistics legitimately differ
// (the upgrade counter, and the post-upgrade chain attribution), so
// only values are compared.
func TestReadMostlyMatchesGeneric(t *testing.T) {
	for _, perf := range []bool{false, true} {
		cfg := rmCfg()
		cfg.PerfMode = perf
		gen := cfg
		gen.ForceGeneric = true
		wantVals, _ := engineScenario(t, gen)
		gotVals, gotStats := engineScenario(t, cfg)
		for i, v := range gotVals {
			if v != wantVals[i] {
				t.Errorf("perf=%v: word %d = %d, want %d (generic)", perf, i, v, wantVals[i])
			}
		}
		if gotStats.Upgrades == 0 {
			t.Errorf("perf=%v: scenario has shared stores but no upgrades recorded", perf)
		}
	}
}

// TestReadMostlyUpgradeStress is the -race pin for the upgrade path:
// threads run a mix of read-only scans and upgrading increments against
// the same counter line, so retried attempts repeatedly re-enter the
// read-mostly chain and re-upgrade. The final sum must be exact and no
// orec may stay locked.
func TestReadMostlyUpgradeStress(t *testing.T) {
	const threads, perThread = 4, 1500
	rt := newRT(rmCfg())
	g := rt.Space().AllocGlobal(2)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := rt.Thread(tid)
			for i := 0; i < perThread; i++ {
				if i%3 == 0 {
					// Read-only: stays on the read-mostly chain end to end.
					th.Atomic(func(tx *Tx) {
						_ = tx.Load(g, AccShared) + tx.Load(g+1, AccShared)
					})
				} else {
					// Upgrading increment: contended, so aborted attempts
					// restart on the read-mostly pair and upgrade again.
					th.Atomic(func(tx *Tx) {
						tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
					})
				}
			}
		}(tid)
	}
	wg.Wait()
	want := uint64(threads * perThread * 2 / 3)
	if got := rt.Space().Load(g); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	rt.Validate()
}

// runScanHeavy executes one read-dominated transaction: many shared
// reads plus a couple of captured stack stores, the shape a scan phase
// presents to the adaptive probe (captured share well under the
// promote threshold, zero shared writes).
func runScanHeavy(th *Thread, g mem.Addr) {
	th.Atomic(func(tx *Tx) {
		f := tx.StackAlloc(1)
		tx.Store(f, 0, AccStack)
		var sum uint64
		for i := 0; i < 16; i++ {
			sum += tx.Load(g+mem.Addr(i), AccShared)
		}
		tx.Store(f, sum, AccStack)
	})
}

// TestAdaptiveReadMostlyConvergence pins the fourth variant's promotion
// rule: a kind whose probe epochs observe zero shared writes converges
// to the read-mostly engine with no hints, and a later shift to
// write-heavy work demotes it back to the probe via the upgrade-rate
// fast check.
func TestAdaptiveReadMostlyConvergence(t *testing.T) {
	const epoch = 8
	cfg := adaptiveCfg(epoch)
	cfg.Adaptive.ProbeEvery = 1 << 20 // isolate the upgrade-rate demotion
	rt := newRT(cfg)
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(16)

	th.EnterPhase("publish")
	for i := 0; i < 3*epoch; i++ {
		runScanHeavy(th, g)
	}
	sel := rt.AdaptiveSelections()
	if sel[0].Variant != VariantReadMostly {
		t.Fatalf("scan-shaped kind selected %q, want %q", sel[0].Variant, VariantReadMostly)
	}
	if got := rt.EngineFor("publish"); got != "perf-readmostly" {
		t.Errorf("EngineFor(publish) = %q", got)
	}

	// The workload turns write-heavy: every transaction now upgrades, so
	// the upgrade-per-commit rate blows through UpgradePct and the kind
	// returns to the probe for remeasurement.
	for i := 0; i < 3*epoch; i++ {
		runShared(th, g)
	}
	sel = rt.AdaptiveSelections()
	if sel[0].Variant == VariantReadMostly {
		t.Errorf("write-heavy shift left kind on %q, want demotion", sel[0].Variant)
	}
	rt.Validate()
}
