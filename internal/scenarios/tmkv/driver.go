package tmkv

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/scenarios/dist"
	"repro/internal/stm"
	"repro/internal/txlib"
	"repro/tm"
)

// Config describes one tmkv workload mix. Percentages must sum to
// 100; Keys must be a power of two.
type Config struct {
	Name string
	Keys int // key-space size (power of two)
	Ops  int // total client transactions across all threads

	KeyWords             int // probe-key length in words (multi-word compares)
	MinBlocks, MaxBlocks int // value size range, in BlockWords blocks
	MaxVersions          int // version-chain length before trimming

	ReadPct, UpdatePct, InsertPct, DeletePct, ScanPct int
	ScanLimit                                         int

	Zipf  bool    // Zipfian (true) or uniform (false) key choice
	Theta float64 // Zipfian skew, in (0, 1)

	// Phased makes the served adapter tag each request with its capture
	// regime (reads/scans → PhaseScan, mutations → PhasePublish). Tagged
	// items only merge with same-phase items, so this trades merge width
	// for per-batch engine specialization — right for skewed mixes where
	// one phase dominates, wrong for balanced ones. The self-driving
	// workload always hints (hints are free without tm.WithPhases).
	Phased bool

	PreloadPct int // portion of the key space populated by Setup
	Seed       uint64
}

// Mixed returns the registered "tmkv" configuration: an OLTP-like
// blend over a Zipfian key space.
func Mixed() Config {
	return Config{Name: "tmkv", Keys: 4096, Ops: 16384,
		KeyWords: 4, MinBlocks: 1, MaxBlocks: 4, MaxVersions: 2,
		ReadPct: 50, UpdatePct: 20, InsertPct: 10, DeletePct: 10, ScanPct: 10,
		ScanLimit: 16, Zipf: true, Theta: 0.85, PreloadPct: 50, Seed: 1}
}

// ReadHeavy returns "tmkv-read": mostly checksum-verified point reads
// over a hotter Zipfian distribution.
func ReadHeavy() Config {
	return Config{Name: "tmkv-read", Keys: 4096, Ops: 16384,
		KeyWords: 4, MinBlocks: 1, MaxBlocks: 4, MaxVersions: 2,
		ReadPct: 80, UpdatePct: 8, InsertPct: 4, DeletePct: 4, ScanPct: 4,
		ScanLimit: 16, Zipf: true, Theta: 0.95, PreloadPct: 75, Seed: 2}
}

// WriteHeavy returns "tmkv-write": allocation-dominated churn over a
// uniform key space — the mix where captured-memory elision has the
// most barriers to remove.
func WriteHeavy() Config {
	return Config{Name: "tmkv-write", Keys: 4096, Ops: 16384,
		KeyWords: 4, MinBlocks: 2, MaxBlocks: 6, MaxVersions: 2,
		ReadPct: 10, UpdatePct: 40, InsertPct: 25, DeletePct: 20, ScanPct: 5,
		ScanLimit: 8, Zipf: false, PreloadPct: 50, Seed: 3}
}

// Small returns a fast fixed-seed configuration for tests and golden
// reports; it is not registered.
func Small() Config {
	return Config{Name: "tmkv-small", Keys: 256, Ops: 1024,
		KeyWords: 3, MinBlocks: 1, MaxBlocks: 3, MaxVersions: 2,
		ReadPct: 40, UpdatePct: 25, InsertPct: 15, DeletePct: 10, ScanPct: 10,
		ScanLimit: 8, Zipf: true, Theta: 0.9, PreloadPct: 50, Seed: 7}
}

func init() {
	for _, reg := range []struct {
		cfg  Config
		desc string
	}{
		{Mixed(), "transactional KV/object store: mixed OLTP blend with content-hash dedup"},
		{ReadHeavy(), "tmkv read heavy: checksum-verified point reads over a hot key set"},
		{WriteHeavy(), "tmkv write heavy: allocation-dominated churn, peak elision headroom"},
	} {
		cfg := reg.cfg
		tm.RegisterWorkloadDesc(cfg.Name, reg.desc, func() tm.Workload { return New(cfg) })
	}
}

// threadStats counts the committed effects of one worker, applied to
// the Go side only after the transaction commits.
type threadStats struct {
	inserts, deletes uint64 // successful ones
	reads, updates   uint64
	misses, scans    uint64
	badSum           uint64 // checksum mismatches seen by reads
}

// B is one tmkv run. It implements tm.Workload; like the STAMP ports
// it is written against the low-level engine via Runtime.Unwrap.
type B struct {
	cfg     Config
	store   Store
	dist    *dist.Zipf
	preload int
	perTh   []threadStats
}

// New creates a workload instance from a configuration (instances are
// single use, like every registered workload).
func New(cfg Config) *B {
	if cfg.Keys&(cfg.Keys-1) != 0 || cfg.Keys == 0 {
		panic("tmkv: Keys must be a power of two")
	}
	if p := cfg.ReadPct + cfg.UpdatePct + cfg.InsertPct + cfg.DeletePct + cfg.ScanPct; p != 100 {
		panic(fmt.Sprintf("tmkv: %s mix sums to %d%%, want 100%%", cfg.Name, p))
	}
	return &B{cfg: cfg}
}

// Name implements tm.Workload.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements tm.Workload: it sizes the heap for the worst
// case of every key holding MaxVersions values of MaxBlocks unshared
// blocks, with slack for allocator rounding and dedup-map churn.
func (b *B) MemConfig() tm.MemConfig { return b.cfg.memConfig(0) }

// memConfig sizes the simulated address space for the worst case of
// every key holding MaxVersions maximum-size values, plus churnVersions
// extra value builds whose trimmed-and-freed predecessors may sit
// unrecycled in per-thread limbo lists (the served front-end's churn;
// the self-driving workload's version trims recycle fast enough that
// it passes 0). Address-space words are virtual — untouched ones cost
// nothing — so the headroom is cheap insurance.
func (c Config) memConfig(churnVersions int) tm.MemConfig {
	perBlock := BlockWords + brSize + 8 /* dedup entry + hash key */ + 4
	perVersion := c.MaxBlocks*perBlock + objSize + 4 + c.MaxBlocks + 4 /* vector */ + 4 /* list node */
	perKey := c.MaxVersions*perVersion + krSize + 8 /* index entry + key copy */ + c.KeyWords
	words := c.Keys*perKey + churnVersions*perVersion + 4*c.Keys /* buckets */ + (1 << 16)
	heap := 1 << 18
	for heap < 2*words {
		heap <<= 1
	}
	return tm.MemConfig{GlobalWords: 1 << 10, HeapWords: heap, StackWords: 1 << 12, MaxThreads: 32}
}

// opThresholds precomputes the cumulative mix boundaries.
func (c Config) opThresholds() [4]int {
	return [4]int{
		c.ReadPct,
		c.ReadPct + c.UpdatePct,
		c.ReadPct + c.UpdatePct + c.InsertPct,
		c.ReadPct + c.UpdatePct + c.InsertPct + c.DeletePct,
	}
}

// makeKey builds the probe key for id in a transaction-local stack
// buffer (the packs' shared encoding).
func (b *B) makeKey(tx *stm.Tx, id uint64) mem.Addr {
	return dist.StackKey(tx, id, b.cfg.KeyWords)
}

// valueShape derives a value's block count deterministically from the
// key and version, so re-inserting a deleted key regenerates identical
// content and hits the dedup map.
func (c Config) valueShape(id, version uint64) int {
	span := c.MaxBlocks - c.MinBlocks + 1
	mix := (id*0x9E3779B97F4A7C15 + version) >> 17
	return c.MinBlocks + int(mix%uint64(span))
}

// stageValue allocates a staging buffer inside the transaction and
// fills it with the value for (id, version). Roughly a quarter of the
// blocks take a pattern from a small shared pool, so the dedup map
// sees real sharing across keys; the rest are unique to (id, version,
// block). Fills are fresh-provenance stores — the captured-heap writes
// of the paper's Fig. 8. Shared by the self-driving workload and the
// served backend, so both generate bit-identical values.
func (c Config) stageValue(tx *stm.Tx, id, version uint64) (mem.Addr, int) {
	nblocks := c.valueShape(id, version)
	words := nblocks * BlockWords
	stage := tx.Alloc(words)
	for blk := 0; blk < nblocks; blk++ {
		sel := id*31 + version*7 + uint64(blk)
		base := stage + mem.Addr(blk*BlockWords)
		if sel%4 == 0 {
			pool := sel % 8 // one of eight common patterns
			for j := 0; j < BlockWords; j++ {
				tx.Store(base+mem.Addr(j), pool*0xABCD+uint64(j), stm.AccFresh)
			}
		} else {
			for j := 0; j < BlockWords; j++ {
				tx.Store(base+mem.Addr(j), sel*0x2545F4914F6CDD1D+uint64(j)*13, stm.AccFresh)
			}
		}
	}
	return stage, words
}

// Setup implements tm.Workload: it creates the store and preloads
// PreloadPct of the key space single-threadedly.
func (b *B) Setup(trt *tm.Runtime) {
	rt := trt.Unwrap()
	c := b.cfg
	if c.Zipf {
		b.dist = dist.NewZipf(c.Keys, c.Theta)
	}
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		b.store = NewStore(tx, c.Keys/2, c.Keys*c.MaxBlocks/2)
	})
	b.preload = c.Keys * c.PreloadPct / 100
	for i := 0; i < b.preload; i++ {
		id := dist.RankToKey(i, c.Keys)
		th.Atomic(func(tx *stm.Tx) {
			kb := b.makeKey(tx, id)
			stage, words := b.cfg.stageValue(tx, id, 1)
			if !b.store.insert(tx, kb, c.KeyWords, stage, words) {
				panic("tmkv: preload collision")
			}
			tx.Free(stage)
		})
	}
}

// pickKey draws a key id for one operation.
func (b *B) pickKey(r *prng.R) uint64 {
	if b.dist != nil {
		return dist.RankToKey(b.dist.Sample(r), b.cfg.Keys)
	}
	return dist.RankToKey(r.Intn(b.cfg.Keys), b.cfg.Keys)
}

// Run implements tm.Workload: the timed parallel phase. Ops are split
// across nthreads workers, each with its own deterministic generator.
func (b *B) Run(trt *tm.Runtime, nthreads int) {
	rt := trt.Unwrap()
	b.perTh = make([]threadStats, nthreads)
	thresholds := b.cfg.opThresholds()
	var wg sync.WaitGroup
	for t := 0; t < nthreads; t++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			b.worker(rt.Thread(tid), tid, nthreads, thresholds)
		}(t)
	}
	wg.Wait()
}

func (b *B) worker(th *stm.Thread, tid, nthreads int, thresholds [4]int) {
	c := b.cfg
	ops := c.Ops / nthreads
	if tid == 0 {
		ops += c.Ops % nthreads
	}
	r := prng.New(c.Seed + uint64(tid)*0x9E3779B97F4A7C15)
	st := &b.perTh[tid]
	for i := 0; i < ops; i++ {
		op := r.Intn(100)
		id := b.pickKey(r)
		// Each operation is tagged with its capture regime, like the
		// tmmsg driver: reads and scans store only into captured memory
		// (stack keys, result vectors) and are scan-shaped; mutations
		// assemble their value in captured staging space and publish it
		// to the shared index. The hints are unconditional — under a
		// profile without tm.WithPhases they select the default engine
		// and the run is byte-for-byte the classic single-engine one.
		switch {
		case op < thresholds[0]:
			th.EnterPhase(tm.PhaseScan)
			b.opRead(th, st, id)
		case op < thresholds[1]:
			th.EnterPhase(tm.PhasePublish)
			b.opUpdate(th, st, id)
		case op < thresholds[2]:
			th.EnterPhase(tm.PhasePublish)
			b.opInsert(th, st, id)
		case op < thresholds[3]:
			th.EnterPhase(tm.PhasePublish)
			b.opDelete(th, st, id)
		default:
			th.EnterPhase(tm.PhaseScan)
			b.opScan(th, st)
		}
	}
}

func (b *B) opRead(th *stm.Thread, st *threadStats, id uint64) {
	var hit, sumOK bool
	th.Atomic(func(tx *stm.Tx) {
		hit, sumOK = false, true
		kb := b.makeKey(tx, id)
		if kr, ok := b.store.lookup(tx, kb, b.cfg.KeyWords); ok {
			hit = true
			_, sumOK = b.store.readLatest(tx, kr)
		}
	})
	if !hit {
		st.misses++
		return
	}
	st.reads++
	if !sumOK {
		st.badSum++
	}
}

func (b *B) opUpdate(th *stm.Thread, st *threadStats, id uint64) {
	var did, inserted bool
	th.Atomic(func(tx *stm.Tx) {
		did, inserted = false, false
		kb := b.makeKey(tx, id)
		if kr, ok := b.store.lookup(tx, kb, b.cfg.KeyWords); ok {
			version := tx.Load(kr+krLatest, txlib.TM) + 1
			stage, words := b.cfg.stageValue(tx, id, version)
			b.store.update(tx, kr, stage, words, b.cfg.MaxVersions)
			tx.Free(stage)
			did = true
		} else {
			// Update of an absent key falls back to an insert, like an
			// upsert path would.
			stage, words := b.cfg.stageValue(tx, id, 1)
			inserted = b.store.insert(tx, kb, b.cfg.KeyWords, stage, words)
			tx.Free(stage)
		}
	})
	if did {
		st.updates++
	} else if inserted {
		st.inserts++
	}
}

func (b *B) opInsert(th *stm.Thread, st *threadStats, id uint64) {
	var inserted bool
	th.Atomic(func(tx *stm.Tx) {
		kb := b.makeKey(tx, id)
		stage, words := b.cfg.stageValue(tx, id, 1)
		inserted = b.store.insert(tx, kb, b.cfg.KeyWords, stage, words)
		tx.Free(stage)
	})
	if inserted {
		st.inserts++
	} else {
		st.misses++
	}
}

func (b *B) opDelete(th *stm.Thread, st *threadStats, id uint64) {
	var removed bool
	th.Atomic(func(tx *stm.Tx) {
		kb := b.makeKey(tx, id)
		removed = b.store.remove(tx, kb, b.cfg.KeyWords)
	})
	if removed {
		st.deletes++
	} else {
		st.misses++
	}
}

func (b *B) opScan(th *stm.Thread, st *threadStats) {
	th.Atomic(func(tx *stm.Tx) {
		b.store.scan(tx, b.cfg.ScanLimit)
	})
	st.scans++
}

// Validate implements tm.Workload. It cross-checks three independent
// views of the final state: the per-thread committed-effect counters
// against the index size, every object's stored checksum against its
// block contents, and the dedup map's reference counts against the
// references actually reachable from the index.
func (b *B) Validate(trt *tm.Runtime) error {
	rt := trt.Unwrap()
	th := rt.Thread(0)
	th.EnterPhase(tm.PhaseScan) // read-only verification walks

	var inserts, deletes, badSum uint64
	for i := range b.perTh {
		inserts += b.perTh[i].inserts
		deletes += b.perTh[i].deletes
		badSum += b.perTh[i].badSum
	}
	if badSum != 0 {
		return fmt.Errorf("tmkv: %d reads saw a checksum mismatch", badSum)
	}

	var size int
	th.Atomic(func(tx *stm.Tx) { size = b.store.Size(tx) })
	want := b.preload + int(inserts) - int(deletes)
	if size != want {
		return fmt.Errorf("tmkv: index size %d, want %d (preload %d + inserts %d - deletes %d)",
			size, want, b.preload, inserts, deletes)
	}

	// Pass 1: collect every key record, then verify each in its own
	// transaction (bounded read sets), counting block references.
	var krs []mem.Addr
	th.Atomic(func(tx *stm.Tx) {
		krs = krs[:0] // retry-safe: judge only the committed attempt
		txlib.HTForEach(tx, b.store.index, txlib.TM, func(_ mem.Addr, _ int, data uint64) bool {
			krs = append(krs, mem.Addr(data))
			return true
		})
	})
	if len(krs) != size {
		return fmt.Errorf("tmkv: index walk found %d records, size says %d", len(krs), size)
	}
	refs := make(map[mem.Addr]uint64)
	for _, kr := range krs {
		var err error
		th.Atomic(func(tx *stm.Tx) {
			err = b.validateKey(tx, kr, refs)
		})
		if err != nil {
			return err
		}
	}

	// Pass 2: the dedup map must hold exactly the referenced block
	// records, each with a matching refcount and content hash.
	var err error
	th.Atomic(func(tx *stm.Tx) {
		err = nil // retry-safe: judge only the committed attempt
		entries := 0
		txlib.HTForEach(tx, b.store.dedup, txlib.TM, func(keyPtr mem.Addr, keyWords int, data uint64) bool {
			entries++
			br := mem.Addr(data)
			wantRef, ok := refs[br]
			if !ok {
				err = fmt.Errorf("tmkv: dedup map holds unreferenced block record %d", br)
				return false
			}
			if got := tx.Load(br+brRef, txlib.TM); got != wantRef {
				err = fmt.Errorf("tmkv: block record %d refcount %d, want %d", br, got, wantRef)
				return false
			}
			block := tx.LoadAddr(br+brBlock, txlib.TM)
			content := make([]uint64, BlockWords)
			for j := range content {
				content[j] = tx.Load(block+mem.Addr(j), txlib.TM)
			}
			h := contentHash(content)
			if h != tx.Load(br+brHash, txlib.TM) || h != tx.Load(keyPtr, txlib.TM) {
				err = fmt.Errorf("tmkv: block record %d hash does not match its content", br)
				return false
			}
			if keyWords != 1 {
				err = fmt.Errorf("tmkv: dedup key of %d words, want 1", keyWords)
				return false
			}
			return true
		})
		if err == nil && entries != len(refs) {
			err = fmt.Errorf("tmkv: dedup map holds %d blocks, index references %d", entries, len(refs))
		}
	})
	return err
}

// validateKey checks one key record's version chain: chain length in
// bounds, newest version present, every object's checksum matching its
// blocks. Block references are tallied into refs.
func (b *B) validateKey(tx *stm.Tx, kr mem.Addr, refs map[mem.Addr]uint64) error {
	versions := tx.LoadAddr(kr+krVersions, txlib.TM)
	n := txlib.ListSize(tx, versions, txlib.TM)
	if n < 1 || n > b.cfg.MaxVersions {
		return fmt.Errorf("tmkv: key record %d holds %d versions, want 1..%d", kr, n, b.cfg.MaxVersions)
	}
	latest := tx.Load(kr+krLatest, txlib.TM)
	if _, ok := txlib.ListFind(tx, versions, latest, txlib.TM); !ok {
		return fmt.Errorf("tmkv: key record %d missing its latest version %d", kr, latest)
	}
	it := txlib.ListIterNew(tx)
	txlib.ListIterReset(tx, it, versions, txlib.TM)
	for txlib.ListIterHasNext(tx, it) {
		v, data := txlib.ListIterNext(tx, it, txlib.TM)
		if v > latest {
			return fmt.Errorf("tmkv: key record %d holds version %d beyond latest %d", kr, v, latest)
		}
		obj := mem.Addr(data)
		if _, ok := b.store.readObject(tx, obj); !ok {
			return fmt.Errorf("tmkv: object %d (key record %d, version %d) fails its checksum", obj, kr, v)
		}
		vec := tx.LoadAddr(obj+objVec, txlib.TM)
		for i := 0; i < txlib.VecSize(tx, vec, txlib.TM); i++ {
			refs[mem.Addr(txlib.VecGet(tx, vec, i, txlib.TM))]++
		}
	}
	return nil
}
