// Package tmkv is a transactional key-value/object store scenario: the
// first workload outside the STAMP roster, built to exercise the
// paper's captured-memory optimizations in OLTP-shaped code.
//
// The store keeps a chained hashtable as the key index (key words →
// key record), a sorted list per key as the version chain (version
// number → object), and assembles every value from fixed-size content
// blocks that are deduplicated through a content-hash map in the style
// of Plan 9's venti: a block is stored once and reference counted, and
// writers that produce an identical block share it.
//
// Every write path follows the allocate-build-publish pattern the
// paper optimizes: a transaction allocates a staging buffer and the
// object skeleton with Tx.Alloc (captured memory), fills them with
// plain-provenance and fresh-provenance stores, and only then links
// the object into the shared index. Probe keys and content hashes are
// built in transaction-local stack slots, so all three capture
// mechanisms (stack range check, allocation log, static elision) and
// the definitely-shared extension light up on non-STAMP code.
package tmkv

import (
	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/txlib"
)

// BlockWords is the content-block granule. Values span several blocks,
// so building one value is a multi-block tx-local assembly.
const BlockWords = 32

// Key record layout (one per live key, owned by the index).
const (
	krVersions = 0 // version chain: txlib list, version → object
	krLatest   = 1 // newest version number
	krSize     = 2
)

// Object layout (one per stored version).
const (
	objWords = 0 // value length in words
	objSum   = 1 // content checksum over all value words
	objVec   = 2 // txlib vector of block-record addresses
	objSize  = 3
)

// Block record layout (one per unique content block, owned by the
// dedup map).
const (
	brBlock = 0 // content block address (BlockWords words)
	brRef   = 1 // reference count across all objects
	brHash  = 2 // content hash (the dedup key)
	brSize  = 3
)

// Store holds the root addresses of the shared structures. The roots
// are fixed after setup; all mutation happens transactionally inside
// the referenced structures.
type Store struct {
	index mem.Addr // hashtable: key words → key record
	dedup mem.Addr // hashtable: content hash (1 word) → block record
}

// NewStore allocates the index and dedup map inside the transaction.
func NewStore(tx *stm.Tx, indexBuckets, dedupBuckets int) Store {
	return Store{
		index: txlib.NewHashtable(tx, indexBuckets),
		dedup: txlib.NewHashtable(tx, dedupBuckets),
	}
}

// Size returns the number of live keys.
func (s Store) Size(tx *stm.Tx) int { return txlib.HTSize(tx, s.index, txlib.TM) }

// contentHash mirrors txlib.HashWords over a Go slice; the driver uses
// it to predict block hashes and Validate uses it to recompute them.
func contentHash(words []uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, w := range words {
		h = (h ^ w) * 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// hashSlot writes a content hash into a transaction-local stack slot
// so it can serve as a one-word hashtable key (captured-stack traffic,
// like STAMP's iterator words).
func hashSlot(tx *stm.Tx, hash uint64) mem.Addr {
	hs := tx.StackAlloc(1)
	tx.Store(hs, hash, stm.AccStack)
	return hs
}

// internBlock stores one staged content block through the dedup map
// and returns the block record the object should reference. An
// identical block already interned is shared (its refcount rises); a
// new block is copied out of the staging buffer into a fresh block.
// Staging reads carry plain provenance — the compiler cannot prove the
// buffer local across the call boundary, but the runtime allocation
// log can, which is exactly the paper's runtime-vs-static gap.
func (s Store) internBlock(tx *stm.Tx, stage mem.Addr) mem.Addr {
	hash := txlib.HashWords(tx, stage, BlockWords, txlib.P)
	hs := hashSlot(tx, hash)
	if data, ok := txlib.HTGet(tx, s.dedup, hs, 1, txlib.TM, stm.AccStack); ok {
		br := mem.Addr(data)
		tx.Store(br+brRef, tx.Load(br+brRef, txlib.TM)+1, txlib.TM)
		return br
	}
	block := tx.Alloc(BlockWords)
	for i := 0; i < BlockWords; i++ {
		tx.Store(block+mem.Addr(i), tx.Load(stage+mem.Addr(i), txlib.P), stm.AccFresh)
	}
	br := tx.Alloc(brSize)
	tx.StoreAddr(br+brBlock, block, stm.AccFresh)
	tx.Store(br+brRef, 1, stm.AccFresh)
	tx.Store(br+brHash, hash, stm.AccFresh)
	txlib.HTInsertIfAbsent(tx, s.dedup, hs, 1, uint64(br), txlib.TM, stm.AccStack)
	return br
}

// derefBlock drops one reference to a block record, removing it from
// the dedup map and freeing the content block once unreferenced.
func (s Store) derefBlock(tx *stm.Tx, br mem.Addr) {
	refs := tx.Load(br+brRef, txlib.TM)
	if refs > 1 {
		tx.Store(br+brRef, refs-1, txlib.TM)
		return
	}
	hs := hashSlot(tx, tx.Load(br+brHash, txlib.TM))
	txlib.HTRemove(tx, s.dedup, hs, 1, txlib.TM, stm.AccStack)
	tx.Free(tx.LoadAddr(br+brBlock, txlib.TM))
	tx.Free(br)
}

// buildObject assembles an object from a staged value: the staging
// buffer is split into BlockWords-sized blocks, each block is interned
// through the dedup map, and the block references are collected in a
// freshly allocated vector. words must be a multiple of BlockWords.
func (s Store) buildObject(tx *stm.Tx, stage mem.Addr, words int) mem.Addr {
	nblocks := words / BlockWords
	vec := txlib.NewVector(tx, nblocks)
	sum := txlib.HashWords(tx, stage, words, txlib.P)
	for i := 0; i < nblocks; i++ {
		br := s.internBlock(tx, stage+mem.Addr(i*BlockWords))
		// The vector was allocated by this transaction, so these
		// plain-provenance container ops are runtime-capturable.
		txlib.VecPushBack(tx, vec, uint64(br), txlib.P)
	}
	obj := tx.Alloc(objSize)
	tx.Store(obj+objWords, uint64(words), stm.AccFresh)
	tx.Store(obj+objSum, sum, stm.AccFresh)
	tx.StoreAddr(obj+objVec, vec, stm.AccFresh)
	return obj
}

// dropObject releases an object: every referenced block is dereffed,
// then the vector and the object itself are freed.
func (s Store) dropObject(tx *stm.Tx, obj mem.Addr) {
	vec := tx.LoadAddr(obj+objVec, txlib.TM)
	n := txlib.VecSize(tx, vec, txlib.TM)
	for i := 0; i < n; i++ {
		s.derefBlock(tx, mem.Addr(txlib.VecGet(tx, vec, i, txlib.TM)))
	}
	txlib.VecFree(tx, vec, txlib.TM)
	tx.Free(obj)
}

// readObject walks an object's blocks, recomputes the content
// checksum, and reports whether it matches the stored one.
func (s Store) readObject(tx *stm.Tx, obj mem.Addr) (words int, ok bool) {
	words = int(tx.Load(obj+objWords, txlib.TM))
	vec := tx.LoadAddr(obj+objVec, txlib.TM)
	n := txlib.VecSize(tx, vec, txlib.TM)
	h := uint64(1469598103934665603)
	for i := 0; i < n; i++ {
		br := mem.Addr(txlib.VecGet(tx, vec, i, txlib.TM))
		block := tx.LoadAddr(br+brBlock, txlib.TM)
		for j := 0; j < BlockWords; j++ {
			h = (h ^ tx.Load(block+mem.Addr(j), txlib.TM)) * 1099511628211
		}
	}
	if h == 0 {
		h = 1
	}
	return words, h == tx.Load(obj+objSum, txlib.TM)
}

// lookup returns the key record stored under the probe key, if any.
func (s Store) lookup(tx *stm.Tx, key mem.Addr, keyWords int) (mem.Addr, bool) {
	data, ok := txlib.HTGet(tx, s.index, key, keyWords, txlib.TM, stm.AccStack)
	return mem.Addr(data), ok
}

// insert creates a key record with the staged value as version 1. It
// returns false (and builds nothing) when the key is already present.
func (s Store) insert(tx *stm.Tx, key mem.Addr, keyWords int, stage mem.Addr, words int) bool {
	if txlib.HTContains(tx, s.index, key, keyWords, txlib.TM, stm.AccStack) {
		return false
	}
	obj := s.buildObject(tx, stage, words)
	kr := tx.Alloc(krSize)
	versions := txlib.NewList(tx)
	txlib.ListInsert(tx, versions, 1, uint64(obj), txlib.P)
	tx.StoreAddr(kr+krVersions, versions, stm.AccFresh)
	tx.Store(kr+krLatest, 1, stm.AccFresh)
	txlib.HTInsertIfAbsent(tx, s.index, key, keyWords, uint64(kr), txlib.TM, stm.AccStack)
	return true
}

// update appends the staged value as a new version of an existing key
// record, trimming the oldest version beyond maxVersions.
func (s Store) update(tx *stm.Tx, kr mem.Addr, stage mem.Addr, words, maxVersions int) {
	obj := s.buildObject(tx, stage, words)
	version := tx.Load(kr+krLatest, txlib.TM) + 1
	versions := tx.LoadAddr(kr+krVersions, txlib.TM)
	txlib.ListInsert(tx, versions, version, uint64(obj), txlib.TM)
	tx.Store(kr+krLatest, version, txlib.TM)
	if txlib.ListSize(tx, versions, txlib.TM) > maxVersions {
		if _, old, ok := txlib.ListRemoveHead(tx, versions, txlib.TM); ok {
			s.dropObject(tx, mem.Addr(old))
		}
	}
}

// readLatest checks the newest version of a key record against its
// stored checksum.
func (s Store) readLatest(tx *stm.Tx, kr mem.Addr) (words int, ok bool) {
	latest := tx.Load(kr+krLatest, txlib.TM)
	versions := tx.LoadAddr(kr+krVersions, txlib.TM)
	data, found := txlib.ListFind(tx, versions, latest, txlib.TM)
	if !found {
		return 0, false
	}
	return s.readObject(tx, mem.Addr(data))
}

// remove deletes a key: every version's object is dropped, the version
// chain and key record are freed, and the index entry is removed.
func (s Store) remove(tx *stm.Tx, key mem.Addr, keyWords int) bool {
	data, ok := txlib.HTRemove(tx, s.index, key, keyWords, txlib.TM, stm.AccStack)
	if !ok {
		return false
	}
	kr := mem.Addr(data)
	versions := tx.LoadAddr(kr+krVersions, txlib.TM)
	for {
		_, obj, ok := txlib.ListRemoveHead(tx, versions, txlib.TM)
		if !ok {
			break
		}
		s.dropObject(tx, mem.Addr(obj))
	}
	txlib.ListFree(tx, versions, txlib.TM)
	tx.Free(kr)
	return true
}

// scan visits up to limit keys in index order, touching each key
// record's newest version number. Visited records are collected in a
// scratch vector the compiler can prove transaction-local (txlib.L),
// mirroring the paper's Fig. 1(b) thread-local query pattern.
func (s Store) scan(tx *stm.Tx, limit int) int {
	scratch := txlib.NewVector(tx, limit)
	seen := 0
	txlib.HTForEach(tx, s.index, txlib.TM, func(_ mem.Addr, _ int, data uint64) bool {
		kr := mem.Addr(data)
		txlib.VecPushBack(tx, scratch, tx.Load(kr+krLatest, txlib.TM), txlib.L)
		seen++
		return seen < limit
	})
	// Reduce over the local copy, then discard it.
	var acc uint64
	for i := 0; i < txlib.VecSize(tx, scratch, txlib.L); i++ {
		acc += txlib.VecGet(tx, scratch, i, txlib.L)
	}
	_ = acc
	txlib.VecFree(tx, scratch, txlib.L)
	return seen
}
