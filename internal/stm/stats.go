package stm

// Stats are per-thread counters. They are written only by the owning
// thread and read after the threads have joined, so they need no
// synchronization.
type Stats struct {
	// Transaction outcomes.
	Commits    uint64
	Aborts     uint64 // conflict aborts followed by retry (Table 1's metric)
	UserAborts uint64 // explicit user aborts (rolled back, not retried)

	// Upgrades counts read-mostly attempts that hit their first shared
	// store and swapped in-flight onto the full engine (engine.go). Like
	// the outcome counters it is lifecycle accounting, kept under
	// PerfMode — the adaptive sampler demotes a read-mostly kind on it.
	Upgrades uint64

	// Waits counts conflicts where the contention manager imposed a
	// wait — a backoff spin, the none policy's engaged escalation, or a
	// queue park (cm.go); WaitNs is the time spent in those waits. Like
	// Aborts they are lifecycle accounting, kept under PerfMode and
	// attributed to the phase the conflicting transaction ran in.
	Waits  uint64
	WaitNs uint64

	// Barrier totals: every read/write access a naive STM compiler
	// would instrument inside a transaction, including those elided
	// statically or at runtime.
	ReadTotal  uint64
	WriteTotal uint64

	// Hand-instrumented accesses (the paper's "required" estimate).
	ReadManual  uint64
	WriteManual uint64

	// Runtime elisions, by mechanism.
	ReadElStack  uint64
	ReadElHeap   uint64
	ReadElPriv   uint64
	WriteElStack uint64
	WriteElHeap  uint64
	WriteElPriv  uint64

	// Static (compiler) elisions.
	ReadElStatic  uint64
	WriteElStatic uint64

	// Undo-log entries skipped by the baseline write-after-write
	// filter (not an elision of the barrier itself).
	WriteWAWSkips uint64

	// Full barriers actually executed.
	ReadFull  uint64
	WriteFull uint64

	// Runtime checks bypassed by the definitely-shared extension.
	ReadSkipShared  uint64
	WriteSkipShared uint64

	// Fig. 8 classification (Counting mode): how many accesses were
	// captured, by where the memory lives. Counted independently of
	// what the active configuration elides.
	ReadCapStack  uint64
	ReadCapHeap   uint64
	WriteCapStack uint64
	WriteCapHeap  uint64

	// Transactional allocator traffic.
	TxAllocs uint64
	TxFrees  uint64
}

// Add accumulates other into s.
func (s *Stats) Add(o *Stats) {
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.UserAborts += o.UserAborts
	s.Upgrades += o.Upgrades
	s.Waits += o.Waits
	s.WaitNs += o.WaitNs
	s.ReadTotal += o.ReadTotal
	s.WriteTotal += o.WriteTotal
	s.ReadManual += o.ReadManual
	s.WriteManual += o.WriteManual
	s.ReadElStack += o.ReadElStack
	s.ReadElHeap += o.ReadElHeap
	s.ReadElPriv += o.ReadElPriv
	s.WriteElStack += o.WriteElStack
	s.WriteElHeap += o.WriteElHeap
	s.WriteElPriv += o.WriteElPriv
	s.ReadElStatic += o.ReadElStatic
	s.WriteElStatic += o.WriteElStatic
	s.WriteWAWSkips += o.WriteWAWSkips
	s.ReadFull += o.ReadFull
	s.WriteFull += o.WriteFull
	s.ReadSkipShared += o.ReadSkipShared
	s.WriteSkipShared += o.WriteSkipShared
	s.ReadCapStack += o.ReadCapStack
	s.ReadCapHeap += o.ReadCapHeap
	s.WriteCapStack += o.WriteCapStack
	s.WriteCapHeap += o.WriteCapHeap
	s.TxAllocs += o.TxAllocs
	s.TxFrees += o.TxFrees
}

// ReadElided returns the total number of elided read barriers.
func (s *Stats) ReadElided() uint64 {
	return s.ReadElStack + s.ReadElHeap + s.ReadElPriv + s.ReadElStatic
}

// WriteElided returns the total number of elided write barriers.
func (s *Stats) WriteElided() uint64 {
	return s.WriteElStack + s.WriteElHeap + s.WriteElPriv + s.WriteElStatic
}

// AbortRatio returns aborts per commit (the paper's Table 1 metric).
func (s *Stats) AbortRatio() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits)
}
