// TLC demo: compile a TL program, show the Sec. 3.2 capture analysis,
// then run it under the baseline and the compiler optimization and
// compare barrier counts.
//
//	go run ./examples/tlcdemo
package main

import (
	"fmt"

	"repro/internal/tlc"
	"repro/tm"
)

const program = `
// A shared stack of nodes: each push allocates its node inside the
// transaction. After inlining push() into the atomic block, the
// compiler's capture analysis proves n transaction-local and elides
// the barriers for n.key/n.next; the accesses through the shared list
// header stay instrumented.
struct Node {
	key  int;
	next *Node;
}
struct List {
	head *Node;
	size int;
}
var list *List;

fn push(l *List, key int) {
	var n *Node;
	n = alloc Node;
	n.key = key;        // captured (fresh): elided
	n.next = l.head;    // l.head load is shared; the n.next store is elided
	l.head = n;         // shared: kept
	l.size = l.size + 1;
}

fn sum(l *List) int {
	var s int;
	var cur *Node;
	cur = l.head;
	while cur != nil {
		s = s + cur.key;   // shared loads: kept
		cur = cur.next;
	}
	return s;
}

fn main() int {
	atomic { list = alloc List; }
	var i int;
	i = 1;
	while i <= 200 {
		atomic {
			push(list, i);
			var scratch [4]int;   // transaction-local stack array
			scratch[0] = i;
			scratch[1] = scratch[0] * 2;
		}
		i = i + 1;
	}
	var total int;
	atomic { total = sum(list); }
	return total;
}`

func main() {
	c, err := tlc.Compile(program)
	if err != nil {
		panic(err)
	}
	fmt.Println("=== capture analysis (after inlining) ===")
	fmt.Print(c.Report())

	noInline, err := tlc.CompileNoInline(program)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nwithout inlining the analysis proves only %d sites (vs %d)\n",
		noInline.Analysis.Fresh+noInline.Analysis.Stack,
		c.Analysis.Fresh+c.Analysis.Stack)

	for _, p := range []tm.Profile{tm.Baseline(), tm.CompilerElision()} {
		rt := tm.Open(append(p.Options(), tm.WithMemory(c.DefaultMemConfig()))...)
		in := tlc.NewInterp(c, rt.Unwrap())
		ret, err := in.Call(rt.Unwrap().Thread(0), "main")
		if err != nil {
			panic(err)
		}
		s := rt.Stats()
		fmt.Printf("\n[%s] main() = %d; reads: %d (%d elided), writes: %d (%d elided)\n",
			p.Name(), ret, s.ReadTotal, s.ReadElided(), s.WriteTotal, s.WriteElided())
		rt.Close()
	}
	fmt.Println("\nEvery elided access was proven transaction-local by the")
	fmt.Println("intraprocedural pointer analysis after inlining; the tests in")
	fmt.Println("internal/tlc validate the analysis against the dynamic oracle.")
}
