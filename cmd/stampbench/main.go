// Command stampbench regenerates the performance experiments of the
// paper's evaluation (Sec. 4): Table 1 (abort-to-commit ratios),
// Table 2 (run-to-run variation), Fig. 10 (single-thread improvement),
// and Fig. 11(a)/(b) (16-thread improvement).
//
// Usage:
//
//	stampbench -experiment fig10            # 1-thread improvements
//	stampbench -experiment fig11a -threads 16
//	stampbench -experiment fig11b -threads 16
//	stampbench -experiment table1 -threads 16
//	stampbench -experiment table2 -threads 16 -runs 5
//	stampbench -experiment sweep -bench vacation-low   # scaling curve
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/stm"

	_ "repro/internal/stamp/all"
)

func main() {
	exp := flag.String("experiment", "fig10", "table1|table2|fig10|fig11a|fig11b|sweep")
	threads := flag.Int("threads", 1, "worker threads for the parallel phase")
	runs := flag.Int("runs", 3, "repetitions per data point")
	benchFlag := flag.String("bench", "all", "comma-separated benchmark names or 'all'")
	flag.Parse()

	benches := harness.Benches()
	if *benchFlag != "all" {
		benches = strings.Split(*benchFlag, ",")
	}

	var err error
	switch *exp {
	case "table1":
		err = tables(benches, *threads, *runs, true)
	case "table2":
		err = tables(benches, *threads, *runs, false)
	case "fig10":
		err = improvements(benches, harness.Fig10Configs(), 1, *runs,
			"Figure 10: % improvement over baseline at 1 thread")
	case "fig11a":
		err = improvements(benches, harness.Fig10Configs(), *threads, *runs,
			fmt.Sprintf("Figure 11(a): %% improvement over baseline at %d threads", *threads))
	case "fig11b":
		err = improvements(benches, harness.Fig11bConfigs(), *threads, *runs,
			fmt.Sprintf("Figure 11(b): %% improvement over baseline at %d threads", *threads))
	case "sweep":
		err = sweep(benches, *runs)
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stampbench:", err)
		os.Exit(1)
	}
}

// tables prints Table 1 (ratio=true) or Table 2 (ratio=false).
func tables(benches []string, threads, runs int, ratio bool) error {
	cfgs := harness.Table1Configs()
	rows := map[string]map[string]float64{}
	var names []string
	for _, c := range cfgs {
		names = append(names, c.Name)
	}
	for _, b := range benches {
		rows[b] = map[string]float64{}
		for _, cfg := range cfgs {
			res, err := harness.Run(b, cfg, threads, runs)
			if err != nil {
				return err
			}
			if ratio {
				rows[b][cfg.Name] = res.Stats.AbortRatio()
			} else {
				rows[b][cfg.Name] = res.RelStdDev()
			}
		}
	}
	if ratio {
		harness.WriteTable1(os.Stdout, rows, names, threads)
	} else {
		harness.WriteTable2(os.Stdout, rows, names, threads, runs)
	}
	return nil
}

// improvements prints a Fig. 10/11-style improvement table.
func improvements(benches []string, cfgs []stm.OptConfig, threads, runs int, title string) error {
	rows := map[string]map[string]float64{}
	var names []string
	for _, c := range cfgs {
		names = append(names, c.Name)
	}
	for _, b := range benches {
		rows[b] = map[string]float64{}
		// Timing runs use perf mode: no per-access counters, like the
		// paper's performance builds.
		perfCfgs := make([]stm.OptConfig, len(cfgs))
		for i, c := range cfgs {
			perfCfgs[i] = c.Perf()
		}
		results, err := harness.RunMatrix(b, perfCfgs, threads, runs)
		if err != nil {
			return err
		}
		for i, cfg := range cfgs[1:] {
			rows[b][cfg.Name] = harness.Improvement(results[0], results[i+1])
		}
	}
	harness.WriteImprovements(os.Stdout, title, rows, names)
	return nil
}

// sweep prints raw times across thread counts for scaling curves.
func sweep(benches []string, runs int) error {
	for _, b := range benches {
		fmt.Printf("%s scaling (baseline):\n", b)
		for _, th := range []int{1, 2, 4, 8, 16} {
			res, err := harness.Run(b, stm.Baseline(), th, runs)
			if err != nil {
				return err
			}
			fmt.Printf("  %2d threads: %v (aborts/commit %.2f)\n",
				th, res.Median().Round(1000), res.Stats.AbortRatio())
		}
	}
	return nil
}
