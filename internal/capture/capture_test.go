package capture

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func kinds() []Kind { return []Kind{KindTree, KindArray, KindFilter} }

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindTree: "tree", KindArray: "array", KindFilter: "filter", Kind(99): "unknown"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), w)
		}
	}
}

func TestBasicInsertContains(t *testing.T) {
	for _, k := range kinds() {
		l := New(k)
		l.Insert(100, 110)
		l.Insert(200, 201)
		cases := []struct {
			addr mem.Addr
			size int
			want bool
		}{
			{100, 1, true}, {109, 1, true}, {110, 1, false}, {99, 1, false},
			{100, 10, true}, {100, 11, false}, {105, 5, true}, {105, 6, false},
			{200, 1, true}, {201, 1, false}, {150, 1, false},
		}
		for _, c := range cases {
			if got := l.Contains(c.addr, c.size); got != c.want {
				t.Errorf("%v: Contains(%d,%d) = %v, want %v", k, c.addr, c.size, got, c.want)
			}
		}
	}
}

func TestRemove(t *testing.T) {
	for _, k := range kinds() {
		l := New(k)
		l.Insert(10, 20)
		l.Insert(30, 40)
		l.Remove(10, 20)
		if l.Contains(15, 1) {
			t.Errorf("%v: contains removed range", k)
		}
		if !l.Contains(35, 1) {
			t.Errorf("%v: lost surviving range", k)
		}
		l.Remove(50, 60) // absent: no-op
		if !l.Contains(35, 1) {
			t.Errorf("%v: no-op remove damaged log", k)
		}
	}
}

func TestClear(t *testing.T) {
	for _, k := range kinds() {
		l := New(k)
		for i := mem.Addr(0); i < 20; i++ {
			l.Insert(100+i*10, 100+i*10+5)
		}
		l.Clear()
		if l.Len() != 0 {
			t.Errorf("%v: Len after Clear = %d", k, l.Len())
		}
		for i := mem.Addr(0); i < 20; i++ {
			if l.Contains(100+i*10, 1) {
				t.Errorf("%v: contains after Clear", k)
			}
		}
		// Log must be reusable after Clear.
		l.Insert(7, 9)
		if !l.Contains(7, 2) {
			t.Errorf("%v: unusable after Clear", k)
		}
	}
}

func TestTreePrecise(t *testing.T) {
	tr := NewTree()
	rng := rand.New(rand.NewSource(1))
	ref := map[mem.Addr]mem.Addr{} // start → end
	next := mem.Addr(1)
	for i := 0; i < 2000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			n := mem.Addr(1 + rng.Intn(16))
			tr.Insert(next, next+n)
			ref[next] = next + n
			next += n + mem.Addr(rng.Intn(4))
		case 2:
			for s, e := range ref { // delete an arbitrary one
				tr.Remove(s, e)
				delete(ref, s)
				break
			}
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	for s, e := range ref {
		if !tr.Contains(s, int(e-s)) {
			t.Errorf("missing [%d,%d)", s, e)
		}
		if tr.Contains(s, int(e-s)+1) {
			t.Errorf("over-contains past [%d,%d)", s, e)
		}
	}
}

func TestTreeInsertOverlapPanics(t *testing.T) {
	tr := NewTree()
	tr.Insert(10, 20)
	defer func() {
		if recover() == nil {
			t.Error("no panic on overlapping insert")
		}
	}()
	tr.Insert(15, 25)
}

func TestArrayOverflowConservative(t *testing.T) {
	a := NewArray(2)
	a.Insert(10, 20)
	a.Insert(30, 40)
	a.Insert(50, 60) // dropped
	if a.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", a.Drops())
	}
	if a.Contains(55, 1) {
		t.Error("contains dropped range (false positive)")
	}
	if !a.Contains(15, 1) || !a.Contains(35, 1) {
		t.Error("lost tracked ranges")
	}
	a.Remove(50, 60) // dropped range: no-op
	a.Remove(10, 20)
	a.Insert(50, 60) // slot freed, now fits
	if !a.Contains(55, 1) {
		t.Error("slot not reusable after Remove")
	}
}

func TestFilterCollisionsAreFalseNegativesOnly(t *testing.T) {
	f := NewFilter(3) // 8 slots, heavy collisions
	var inserted []mem.Addr
	for i := mem.Addr(100); i < 150; i++ {
		f.Insert(i, i+1)
		inserted = append(inserted, i)
	}
	// No false positives for never-inserted addresses.
	for a := mem.Addr(1); a < 100; a++ {
		if f.Contains(a, 1) {
			t.Fatalf("false positive at %d", a)
		}
	}
	// The most recent insert always survives.
	last := inserted[len(inserted)-1]
	if !f.Contains(last, 1) {
		t.Error("latest insert evicted")
	}
	f.Clear()
	for _, a := range inserted {
		if f.Contains(a, 1) {
			t.Fatalf("contains %d after Clear", a)
		}
	}
}

func TestFilterMultiWordBlocks(t *testing.T) {
	f := NewFilter(12)
	f.Insert(1000, 1010)
	if !f.Contains(1000, 10) {
		t.Error("full block not contained")
	}
	if !f.Contains(1004, 3) {
		t.Error("inner window not contained")
	}
	if f.Contains(1008, 4) {
		t.Error("window past block end contained")
	}
	f.Remove(1000, 1010)
	if f.Contains(1005, 1) {
		t.Error("contains after Remove")
	}
	if f.Len() != 0 {
		t.Errorf("Len = %d after full Remove", f.Len())
	}
}

// model is the reference implementation for property testing.
type model map[mem.Addr]mem.Addr

// contains reports single-range containment (the tree/array contract).
func (m model) contains(a mem.Addr, size int) bool {
	for s, e := range m {
		if a >= s && a+mem.Addr(size) <= e {
			return true
		}
	}
	return false
}

// covered reports word-wise coverage: every accessed word lies in some
// recorded range. This is the actual safety requirement — an access is
// captured iff all its words are transaction-local — and is what the
// filter implements (it may span adjacent blocks).
func (m model) covered(a mem.Addr, size int) bool {
	for i := 0; i < size; i++ {
		w := a + mem.Addr(i)
		found := false
		for s, e := range m {
			if w >= s && w < e {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestPropertyConservative drives all three implementations with a
// random operation sequence and checks, after every step, the paper's
// correctness requirement: the tree is exact, and the array and filter
// never report true where the model says false.
func TestPropertyConservative(t *testing.T) {
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		logs := []Log{NewTree(), NewArray(3), NewFilter(4)}
		ref := model{}
		next := mem.Addr(1)
		var starts []mem.Addr
		for op := 0; op < int(nops); op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert
				n := mem.Addr(1 + rng.Intn(8))
				for _, l := range logs {
					l.Insert(next, next+n)
				}
				ref[next] = next + n
				starts = append(starts, next)
				next += n + mem.Addr(rng.Intn(3))
			case 2: // remove a random previously inserted range
				if len(starts) == 0 {
					continue
				}
				i := rng.Intn(len(starts))
				s := starts[i]
				if e, ok := ref[s]; ok {
					for _, l := range logs {
						l.Remove(s, e)
					}
					delete(ref, s)
				}
			case 3: // clear
				if rng.Intn(8) == 0 {
					for _, l := range logs {
						l.Clear()
					}
					ref = model{}
					starts = starts[:0]
				}
			}
			// Probe random addresses.
			for p := 0; p < 8; p++ {
				a := mem.Addr(rng.Intn(int(next) + 4))
				size := 1 + rng.Intn(3)
				want := ref.contains(a, size)
				if got := logs[0].Contains(a, size); got != want {
					t.Logf("tree Contains(%d,%d)=%v want %v", a, size, got, want)
					return false
				}
				if logs[1].Contains(a, size) && !want {
					t.Logf("array false positive at (%d,%d)", a, size)
					return false
				}
				if logs[2].Contains(a, size) && !ref.covered(a, size) {
					t.Logf("filter false positive at (%d,%d)", a, size)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown kind")
		}
	}()
	New(Kind(42))
}

func BenchmarkLogHit(b *testing.B) {
	for _, k := range kinds() {
		b.Run(k.String(), func(b *testing.B) {
			l := New(k)
			for i := mem.Addr(0); i < 4; i++ {
				l.Insert(1000+i*20, 1010+i*20)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !l.Contains(1005, 1) {
					b.Fatal("miss")
				}
			}
		})
	}
}

func BenchmarkLogMiss(b *testing.B) {
	for _, k := range kinds() {
		b.Run(k.String(), func(b *testing.B) {
			l := New(k)
			for i := mem.Addr(0); i < 4; i++ {
				l.Insert(1000+i*20, 1010+i*20)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if l.Contains(5000, 1) {
					b.Fatal("hit")
				}
			}
		})
	}
}

func BenchmarkLogInsertClear(b *testing.B) {
	for _, k := range kinds() {
		b.Run(k.String(), func(b *testing.B) {
			l := New(k)
			for i := 0; i < b.N; i++ {
				a := mem.Addr(1000 + (i%16)*32)
				l.Insert(a, a+16)
				if i%16 == 15 {
					l.Clear()
				}
			}
		})
	}
}
