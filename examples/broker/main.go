// Broker: the tmmsg scenario's two capture regimes on the public API.
//
//	go run ./examples/broker
//
// A miniature single-topic message broker: publishers assemble batches
// of message records in captured memory (tx.Alloc + fresh-provenance
// stores — the allocate-build-publish shape the paper optimizes) and
// link them into a shared ring; consumers share one group cursor and
// spend their whole transaction in contended read-modify-writes on
// definitely-shared words. The printed statistics show the runtime
// capture analysis eliding most publish barriers and none of the
// consume barriers — the split the internal/scenarios/tmmsg workload
// measures at full scale.
package main

import (
	"fmt"
	"os"

	"repro/tm"
)

const (
	ringCap      = 64
	payloadWords = 8
	recSum       = 0 // message record: [0] checksum  [1..] payload
	recSize      = 1 + payloadWords
	batch        = 4
	batches      = 250 // per publisher
)

func main() {
	rt := tm.Open(
		tm.WithName("broker"),
		tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap),
		tm.WithLogKind(tm.LogTree),
		tm.WithMemory(tm.MemConfig{
			GlobalWords: 1 << 10, HeapWords: 1 << 20, StackWords: 1 << 10, MaxThreads: 8,
		}),
	)

	// The topic state is definitely shared: the ring's message slots
	// and the head/tail/cursor sequences.
	ring := rt.AllocGlobal(ringCap)
	meta := rt.AllocGlobal(3)
	head, tail, cursor := meta.Word(0), meta.Word(1), meta.Word(2)

	// Phase 1 — batch publish from two producers. Every record is
	// allocated and filled inside its transaction; only the ring link
	// and the sequence bump touch shared words.
	rt.Parallel(2, func(th *tm.Thread, tid, _ int) {
		for i := 0; i < batches; i++ {
			th.Atomic(func(tx *tm.Tx) {
				for m := 0; m < batch; m++ {
					rec := tx.Alloc(recSize) // captured: fresh provenance
					var sum uint64
					for j := 0; j < payloadWords; j++ {
						w := uint64(tid+1)*1_000_003 + uint64(i*batch+m)*31 + uint64(j)
						rec.Word(1+j).Store(tx, w) // elided store
						sum += w
					}
					rec.Word(recSum).Store(tx, sum)
					seq := head.Load(tx)
					if t := tail.Load(tx); seq-t == ringCap { // ring full: drop oldest
						tx.Free(ring.Ptr(int(t % ringCap)).Load(tx))
						tail.Store(tx, t+1)
					}
					ring.Ptr(int(seq%ringCap)).Store(tx, rec) // publish
					head.Store(tx, seq+1)
				}
			})
		}
	})
	pub := rt.Stats()
	report("publish (allocate-build-publish)", pub)

	// Phase 2 — two consumers sharing one group cursor: pure contended
	// read-modify-write on shared words, nothing captured.
	rt.ResetStats()
	consumed := make([]int, 2)
	rt.Parallel(2, func(th *tm.Thread, tid, _ int) {
		for {
			var got, done bool
			th.Atomic(func(tx *tm.Tx) {
				got, done = false, false
				c := cursor.Load(tx)
				if t := tail.Load(tx); c < t {
					c = t // fell out of the retention window: skip ahead
				}
				if c == head.Load(tx) {
					done = true
					return
				}
				rec := ring.Ptr(int(c % ringCap)).Load(tx) // unknown provenance
				var sum uint64
				for j := 0; j < payloadWords; j++ {
					sum += rec.Word(1 + j).Load(tx) // full barrier
				}
				if sum != rec.Word(recSum).Load(tx) {
					fmt.Fprintln(os.Stderr, "broker: checksum mismatch")
					os.Exit(1)
				}
				cursor.Store(tx, c+1)
				got = true
			})
			if done {
				break
			}
			if got {
				consumed[tid]++
			}
		}
	})
	sub := rt.Stats()
	report("consume (shared cursor)", sub)

	published := head.Peek(rt)
	retained := published - tail.Peek(rt)
	fmt.Printf("\npublished %d messages, retained %d, consumed %d (rest dropped by retention)\n",
		published, retained, consumed[0]+consumed[1])
	if sub.ReadElHeap+sub.WriteElHeap != 0 {
		fmt.Fprintln(os.Stderr, "broker: consume phase should capture nothing")
		os.Exit(1)
	}
}

// report prints the share of barriers the capture analysis removed in
// one phase.
func report(phase string, s tm.Stats) {
	total := s.ReadTotal + s.WriteTotal
	elided := s.ReadElided() + s.WriteElided()
	fmt.Printf("%-34s %7d commits  %8d barriers  %5.1f%% elided\n",
		phase, s.Commits, total, 100*float64(elided)/float64(total))
}
