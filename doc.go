// Package repro reproduces "Optimizing Transactions for Captured
// Memory" (Dragojević, Ni, Adl-Tabatabai; SPAA 2009): a software
// transactional memory runtime with runtime and compiler capture
// analysis that elides STM barriers for transaction-local memory, the
// STAMP 0.9.9 benchmark suite it was evaluated on, and the harness
// that regenerates every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and the
// substitutions made, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate the evaluation:
//
//	go test -bench=. -benchmem
package repro
