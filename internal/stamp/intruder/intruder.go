// Package intruder ports STAMP's intruder: signature-based network
// intrusion detection. Flows are split into fragments, shuffled into a
// shared packet queue at setup. Worker threads then run the decoder
// pipeline:
//
//  1. pop a fragment from the shared queue (transaction),
//  2. insert it into the per-flow reassembly state — the flow
//     descriptor and its fragment list are *allocated inside the
//     transaction* on first contact (captured heap), and when the last
//     fragment arrives the full flow is assembled into a freshly
//     allocated buffer (captured writes) and handed to the detector
//     queue,
//  3. pop an assembled flow and scan it for the attack signature
//     (the scan itself is non-transactional, as in STAMP's detector).
//
// Validation: every flow is reassembled exactly once, and exactly the
// planted attacks are detected.
package intruder

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txlib"
)

// Fragment descriptor layout (written at setup, read-only during Run).
const (
	frFlow  = 0 // flow id
	frIdx   = 1 // fragment index within the flow
	frCount = 2 // total fragments in the flow
	frLen   = 3 // content words
	frData  = 4 // content follows inline
)

// Flow reassembly state (allocated inside the decoder transaction).
const (
	fsSeen  = 0 // fragments received
	fsTotal = 1
	fsWords = 2 // total content words
	fsList  = 3 // fragment list keyed by fragment index
	fsSize  = 4
)

const attackSig = 0xDEAD_BEEF_F00D_CAFE

// Config mirrors STAMP's intruder parameters.
type Config struct {
	Name         string
	Flows        int // -n: number of flows
	MaxFrags     int // fragments per flow: 1..MaxFrags
	WordsPerFrag int // content words per fragment
	AttackPct    int // -a: percentage of flows carrying the signature
	Seed         uint64
}

// Default returns the scaled-down intruder configuration.
func Default() Config {
	return Config{Name: "intruder", Flows: 4096, MaxFrags: 8, WordsPerFrag: 4, AttackPct: 10, Seed: 8}
}

// B is one intruder run.
type B struct {
	cfg Config

	packetQ   mem.Addr // shared fragment queue
	decoded   mem.Addr // map flowId → flow state
	detectQ   mem.Addr // assembled flows awaiting detection
	nPlanted  int
	nDetected atomic.Int64
	nFlows    atomic.Int64
	flowWords []int // per-flow total content words (for validation)
}

func init() {
	stamp.Register("intruder",
		"STAMP intruder: packet reassembly and signature scanning", func() stamp.Benchmark { return &B{cfg: Default()} })
}

// NewWith creates an intruder instance with a custom configuration.
func NewWith(cfg Config) *B { return &B{cfg: cfg} }

// Name implements stamp.Benchmark.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements stamp.Benchmark.
func (b *B) MemConfig() mem.Config {
	words := b.cfg.Flows * b.cfg.MaxFrags * (frData + b.cfg.WordsPerFrag + 8)
	return mem.Config{GlobalWords: 1 << 10, HeapWords: words + (1 << 19), StackWords: 1 << 10, MaxThreads: 32}
}

// Setup builds the fragments and shuffles them into the packet queue.
func (b *B) Setup(rt *stm.Runtime) {
	r := prng.New(b.cfg.Seed)
	th := rt.Thread(0)
	type frag struct {
		flow, idx, count int
		content          []uint64
	}
	var frags []frag
	b.flowWords = make([]int, b.cfg.Flows)
	for f := 0; f < b.cfg.Flows; f++ {
		n := 1 + r.Intn(b.cfg.MaxFrags)
		attack := r.Intn(100) < b.cfg.AttackPct
		if attack {
			b.nPlanted++
		}
		sigAt := -1
		if attack {
			sigAt = r.Intn(n * b.cfg.WordsPerFrag)
		}
		for i := 0; i < n; i++ {
			c := make([]uint64, b.cfg.WordsPerFrag)
			for w := range c {
				for {
					v := r.Next()
					if v != attackSig {
						c[w] = v
						break
					}
				}
				if i*b.cfg.WordsPerFrag+w == sigAt {
					c[w] = attackSig
				}
			}
			frags = append(frags, frag{f, i, n, c})
		}
		b.flowWords[f] = n * b.cfg.WordsPerFrag
	}
	perm := r.Perm(len(frags))

	th.Atomic(func(tx *stm.Tx) {
		b.packetQ = txlib.NewQueue(tx, len(frags)+2)
		b.decoded = txlib.NewMap(tx)
		b.detectQ = txlib.NewQueue(tx, b.cfg.Flows+2)
	})
	for _, pi := range perm {
		fr := frags[pi]
		th.Atomic(func(tx *stm.Tx) {
			p := tx.Alloc(frData + len(fr.content))
			tx.Store(p+frFlow, uint64(fr.flow), stm.AccFresh)
			tx.Store(p+frIdx, uint64(fr.idx), stm.AccFresh)
			tx.Store(p+frCount, uint64(fr.count), stm.AccFresh)
			tx.Store(p+frLen, uint64(len(fr.content)), stm.AccFresh)
			for w, v := range fr.content {
				tx.Store(p+frData+mem.Addr(w), v, stm.AccFresh)
			}
			txlib.QueuePush(tx, b.packetQ, uint64(p), txlib.TM)
		})
	}
}

// Run executes the decode/detect pipeline.
func (b *B) Run(rt *stm.Runtime, nthreads int) {
	stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
		for {
			progressed := false
			// Decoder: pop one fragment and process it.
			var fragPtr uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) {
				fragPtr, ok = txlib.QueuePop(tx, b.packetQ, txlib.TM)
			})
			if ok {
				progressed = true
				b.decode(th, mem.Addr(fragPtr))
			}
			// Detector: pop one assembled flow and scan it.
			var flowPtr uint64
			th.Atomic(func(tx *stm.Tx) {
				flowPtr, ok = txlib.QueuePop(tx, b.detectQ, txlib.TM)
			})
			if ok {
				progressed = true
				b.detect(th, mem.Addr(flowPtr))
			}
			if !progressed {
				// Both queues empty; done when all flows detected.
				if b.nFlows.Load() >= int64(b.cfg.Flows) {
					return
				}
			}
		}
	})
}

// decode is STAMP's TMdecoder_process: reassembly state is built and
// the assembled flow buffer allocated inside the transaction.
func (b *B) decode(th *stm.Thread, frag mem.Addr) {
	th.Atomic(func(tx *stm.Tx) {
		flow := tx.Load(frag+frFlow, stm.AccShared)
		idx := tx.Load(frag+frIdx, stm.AccShared)
		total := tx.Load(frag+frCount, stm.AccShared)
		flen := tx.Load(frag+frLen, stm.AccShared)

		var st mem.Addr
		if p, ok := txlib.MapGet(tx, b.decoded, flow, txlib.TM); ok {
			st = mem.Addr(p)
		} else {
			st = tx.Alloc(fsSize)
			tx.Store(st+fsSeen, 0, stm.AccFresh)
			tx.Store(st+fsTotal, total, stm.AccFresh)
			tx.Store(st+fsWords, 0, stm.AccFresh)
			l := txlib.NewList(tx)
			tx.StoreAddr(st+fsList, l, stm.AccFresh)
			txlib.MapInsert(tx, b.decoded, flow, uint64(st), txlib.TM)
		}
		list := tx.LoadAddr(st+fsList, stm.AccShared)
		if !txlib.ListInsert(tx, list, idx, uint64(frag), txlib.TM) {
			return // duplicate fragment (cannot happen here, but STAMP checks)
		}
		seen := tx.Load(st+fsSeen, stm.AccShared) + 1
		tx.Store(st+fsSeen, seen, stm.AccShared)
		words := tx.Load(st+fsWords, stm.AccShared) + flen
		tx.Store(st+fsWords, words, stm.AccShared)
		if seen < total {
			return
		}
		// Last fragment: assemble the flow into a fresh buffer
		// (captured writes), tear down the reassembly state, and hand
		// the buffer to the detector.
		buf := tx.Alloc(int(words) + 2)
		tx.Store(buf, flow, stm.AccFresh)
		tx.Store(buf+1, words, stm.AccFresh)
		out := buf + 2
		it := txlib.ListIterNew(tx)
		txlib.ListIterReset(tx, it, list, txlib.TM)
		for txlib.ListIterHasNext(tx, it) {
			_, fp := txlib.ListIterNext(tx, it, txlib.TM)
			f := mem.Addr(fp)
			n := tx.Load(f+frLen, stm.AccShared)
			for w := mem.Addr(0); w < mem.Addr(n); w++ {
				tx.Store(out+w, tx.Load(f+frData+w, stm.AccShared), stm.AccFresh)
			}
			out += mem.Addr(n)
		}
		txlib.ListFree(tx, list, txlib.TM)
		txlib.MapRemove(tx, b.decoded, flow, txlib.TM)
		tx.Free(st)
		txlib.QueuePush(tx, b.detectQ, uint64(buf), txlib.TM)
	})
}

// detect scans an assembled flow buffer. Ownership was handed off via
// the queue, so the scan is non-transactional (STAMP's detector).
func (b *B) detect(th *stm.Thread, buf mem.Addr) {
	s := th.Runtime().Space()
	words := s.Load(buf + 1)
	for w := mem.Addr(0); w < mem.Addr(words); w++ {
		if s.Load(buf+2+w) == attackSig {
			b.nDetected.Add(1)
			break
		}
	}
	b.nFlows.Add(1)
	th.Atomic(func(tx *stm.Tx) { tx.Free(buf) })
}

// Validate checks that all flows were reassembled and exactly the
// planted attacks found.
func (b *B) Validate(rt *stm.Runtime) error {
	if got := b.nFlows.Load(); got != int64(b.cfg.Flows) {
		return fmt.Errorf("processed %d flows, want %d", got, b.cfg.Flows)
	}
	if got := b.nDetected.Load(); got != int64(b.nPlanted) {
		return fmt.Errorf("detected %d attacks, want %d", got, b.nPlanted)
	}
	// The reassembly map must be empty.
	var size int
	rt.Thread(0).Atomic(func(tx *stm.Tx) {
		size = txlib.MapSize(tx, b.decoded, txlib.TM)
	})
	if size != 0 {
		return fmt.Errorf("%d flows left in reassembly map", size)
	}
	return nil
}
