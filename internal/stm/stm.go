// Package stm implements the software transactional memory runtime
// the paper's optimizations live in: a McRT/Intel-C++-STM-class system
// with cache-line-granularity ownership records, encounter-time (eager)
// write locking, in-place updates with an undo log, optimistic
// invisible readers validated against a global version clock, and a
// per-phase compiled contention manager (cm.go; the paper's policy,
// randomized exponential backoff, is the default).
//
// Every read and write barrier contains the paper's runtime capture
// analysis fast path (Fig. 2): if the accessed location is captured by
// the current transaction — on the transaction-local stack (Fig. 4),
// in the transaction's allocation log (Sec. 3.1.2), or in the thread's
// annotated private-data log (Sec. 3.1.3) — the expensive barrier is
// elided and a plain memory access is performed. The compiler
// optimization (Sec. 3.2) is modeled by the provenance carried in
// each access descriptor (see Prov) and elides statically.
//
// The package is layered (each file only calls downward):
//
//	lifecycle.go  begin/commit/abort, closed nesting, quiescence
//	engine.go     barrier engine: the profile compiled into Load/Store
//	barrier.go    generic/counting chains + full-barrier slow paths
//	logs.go       read/write/undo/WAW/alloc logs and capture probes
//
// The barrier engine is selected once per Runtime from OptConfig
// (newEngine): instrumented profiles run the counting chain, PerfMode
// profiles a specialized stats-free fast path, and ForceGeneric pins
// the reference chain for differential testing.
package stm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/capture"
	"repro/internal/mem"
	"repro/internal/wal"
)

// DefaultOrecBits sizes the ownership-record table at 1<<18 entries.
const DefaultOrecBits = 18

// Runtime is a shared STM instance: the simulated address space, the
// ownership-record table, the global version clock, and the active
// optimization configuration. One Runtime is shared by all threads of
// a workload.
type Runtime struct {
	space     *mem.Space
	orecs     []atomic.Uint64
	orecShift uint
	clock     atomic.Uint64
	cfg       OptConfig

	// phases is the compiled engine table (phase.go): index 0 is the
	// default phase's engine, compiled once from cfg; declared phases
	// follow in declaration order, then the adaptive variant entries
	// (adaptive.go). phaseIdx maps kind → table index (for an adaptive
	// kind, its probe entry; phaseIndex follows the live selection).
	phases   []compiledPhase
	phaseIdx map[string]int
	kinds    []string // declared kinds: manual then adaptive, once each
	manual   int      // count of manually declared phases

	// Adaptive engine selection (adaptive.go): acfg is the normalized
	// configuration, adapt one shared selection state per adaptive kind,
	// adaptByIdx the per-table-entry view of the same states (nil for
	// non-adaptive entries) so the per-transaction tick is one load.
	acfg       AdaptiveConfig
	adapt      []*adaptState
	adaptByIdx []*adaptState

	// seqs[i] is thread i's quiescence counter: odd while inside a
	// transaction, even otherwise. It drives the epoch-based deferred
	// reuse of transactionally freed blocks (McRT-malloc style): a
	// freed block is recycled only once every thread observed at an
	// odd count has since finished that transaction, so no optimistic
	// (zombie) reader can still dereference into it.
	seqs []atomic.Uint64

	// gates[i] is thread i's park point for the queue contention
	// manager (cm.go): conflicting threads park on the owner that beat
	// them and are woken at its next orec release. Sized like seqs so
	// any owner id read out of a locked orec word indexes safely.
	gates []waitGate

	// durable, when non-nil, is the redo log every state-changing event
	// is serialized into (durable.go). Off, every durability hook is one
	// nil check — the commit path is otherwise unchanged.
	durable *wal.Log

	mu      sync.Mutex
	threads map[int]*Thread
}

// New creates a runtime over a fresh address space.
func New(mcfg mem.Config, cfg OptConfig) *Runtime {
	bits := cfg.OrecBits
	if bits == 0 {
		bits = DefaultOrecBits
	}
	if bits < 4 || bits > 26 {
		panic("stm: OrecBits out of range")
	}
	phases, phaseIdx := compilePhases(cfg)
	manual := len(phases) - 1
	acfg := normalizeAdaptive(cfg.Adaptive)
	phases, adapt := compileAdaptive(acfg, phases, phaseIdx)
	kinds := make([]string, 0, manual+len(adapt))
	for _, p := range phases[1 : 1+manual] {
		kinds = append(kinds, p.kind)
	}
	adaptByIdx := make([]*adaptState, len(phases))
	for _, st := range adapt {
		kinds = append(kinds, st.kind)
		adaptByIdx[st.probe] = st
		adaptByIdx[st.capture] = st
		adaptByIdx[st.skip] = st
		adaptByIdx[st.rm] = st
	}
	return &Runtime{
		space:      mem.NewSpace(mcfg),
		orecs:      make([]atomic.Uint64, 1<<bits),
		orecShift:  64 - uint(bits),
		cfg:        cfg,
		phases:     phases,
		phaseIdx:   phaseIdx,
		kinds:      kinds,
		manual:     manual,
		acfg:       acfg,
		adapt:      adapt,
		adaptByIdx: adaptByIdx,
		seqs:       make([]atomic.Uint64, mcfg.MaxThreads),
		gates:      newGates(mcfg.MaxThreads),
		threads:    make(map[int]*Thread),
	}
}

// Engine names the barrier engine compiled for this runtime's default
// phase ("generic", "counting", or a "perf-*" specialization). When
// phases are declared the name carries a "+phases" marker, and when
// adaptive selection is on an "+adaptive" marker — the per-phase
// breakdown is EngineFor, PhaseStats, and AdaptiveSelections.
func (rt *Runtime) Engine() string {
	name := rt.phases[0].eng.name
	if rt.manual > 0 {
		name += "+phases"
	}
	if len(rt.adapt) > 0 {
		name += "+adaptive"
	}
	return name
}

// Space returns the simulated address space (for non-transactional
// setup and validation code).
func (rt *Runtime) Space() *mem.Space { return rt.space }

// Config returns the active optimization configuration.
func (rt *Runtime) Config() OptConfig { return rt.cfg }

// orecIndex maps an address to its ownership record. Addresses are
// mapped per simulated cache line (8 words), then spread over the
// table with a multiplicative hash — the paper's cache-line-based
// transaction-record mapping. Distinct lines can collide (false
// conflicts, Sec. 2.2), which shrinking the table makes visible.
func (rt *Runtime) orecIndex(a mem.Addr) uint64 {
	line := uint64(a) / mem.LineWords
	return (line * 0x9E3779B97F4A7C15) >> rt.orecShift
}

// Orec word encoding: unlocked orecs hold version<<1 (even); locked
// orecs hold (owner+1)<<1 | 1.
func orecLocked(v uint64) bool    { return v&1 == 1 }
func orecOwner(v uint64) int      { return int(v>>1) - 1 }
func orecLockWord(id int) uint64  { return uint64(id+1)<<1 | 1 }
func orecVersion(v uint64) uint64 { return v >> 1 }

// Thread is a per-worker execution context: the simulated stack, the
// heap allocation cache, the annotated-private-data log, statistics,
// and the (reused) transaction descriptor. A Thread must be used by
// one goroutine at a time.
type Thread struct {
	rt    *Runtime
	id    int
	stack *mem.Stack
	alloc *mem.Allocator
	priv  capture.Log // thread-local/read-only annotations (Sec. 3.1.3)
	rng   uint64
	tx    Tx

	// stats points at the current phase's accumulator inside
	// phaseStats, so the barrier chains never test which phase is
	// active; setPhase retargets it at phase switches. phaseStats is
	// indexed like the runtime's engine table (0 = default phase).
	stats        *Stats
	phaseStats   []Stats
	phase        int
	pendingPhase int // deferred EnterPhase target; -1 = none

	// cm is the current phase's compiled contention manager (cm.go),
	// retargeted with stats at phase switches; backoffAcc sinks the
	// backoff spin loop's result so it cannot be optimized away —
	// per-thread, so backing off never touches shared cache lines.
	cm         *cmgr
	backoffAcc uint64

	// Adaptive epoch sampling (adaptive.go), allocated only when the
	// runtime adapts: adaptMark[i] snapshots phaseStats[i] at the start
	// of this thread's current epoch on entry i; adaptFast[i] counts
	// consecutive fast epochs since the last probe there.
	adaptMark []Stats
	adaptFast []uint32

	limbo []limboBatch // committed frees awaiting quiescence

	// Redo-record scratch (durable.go): the record descriptor and the
	// flat value buffer its spans are carved from, reused per thread.
	drec  wal.Record
	dvals []uint64
}

// limboBatch holds blocks freed by one committed transaction plus the
// quiescence snapshot taken at commit: only the threads observed inside
// a transaction (odd sequence) matter, so the snapshot records just
// those (id, seq) pairs instead of a full per-thread vector per batch.
type limboBatch struct {
	blocks []mem.Addr
	ids    []int32  // threads odd at enqueue time
	seqs   []uint64 // their sequence values, parallel to ids
}

// enqueueLimbo defers the reuse of blocks until quiescence.
func (th *Thread) enqueueLimbo(blocks []mem.Addr) {
	b := limboBatch{blocks: append([]mem.Addr(nil), blocks...)}
	for i := range th.rt.seqs {
		if s := th.rt.seqs[i].Load(); s%2 == 1 {
			b.ids = append(b.ids, int32(i))
			b.seqs = append(b.seqs, s)
		}
	}
	th.limbo = append(th.limbo, b)
}

// drainLimbo recycles every batch whose snapshot has quiesced. Drained
// batches are compacted off the front with copy+truncate so the slice
// never pins the backing array's head (limbo[1:] would keep every
// drained batch reachable until the whole slice is reallocated).
func (th *Thread) drainLimbo() {
	drained := 0
drain:
	for ; drained < len(th.limbo); drained++ {
		b := &th.limbo[drained]
		for i, id := range b.ids {
			if th.rt.seqs[id].Load() == b.seqs[i] {
				break drain // that thread is still inside the same transaction
			}
		}
		for _, p := range b.blocks {
			th.alloc.Free(p)
		}
	}
	if drained > 0 {
		n := copy(th.limbo, th.limbo[drained:])
		for i := n; i < len(th.limbo); i++ {
			th.limbo[i] = limboBatch{} // release for GC
		}
		th.limbo = th.limbo[:n]
	}
}

// Thread returns (creating on first use) the execution context for
// worker id. Safe for concurrent use.
func (rt *Runtime) Thread(id int) *Thread {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if th, ok := rt.threads[id]; ok {
		return th
	}
	th := &Thread{
		rt:           rt,
		id:           id,
		stack:        mem.NewStack(rt.space, id),
		alloc:        mem.NewAllocator(rt.space),
		priv:         capture.NewTree(),
		rng:          uint64(id)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D,
		phaseStats:   make([]Stats, len(rt.phases)),
		pendingPhase: -1,
	}
	th.stats = &th.phaseStats[0]
	th.cm = rt.cmAt(0)
	if rt.acfg.Enabled {
		th.adaptMark = make([]Stats, len(rt.phases))
		th.adaptFast = make([]uint32, len(rt.phases))
	}
	th.tx.init(th)
	rt.threads[id] = th
	return th
}

// ResetStats zeroes every thread's counters. The harness calls it
// between a benchmark's (transactional, but untimed) setup phase and
// the timed parallel phase, so reported statistics cover only the
// latter — matching the paper, whose setup code ran uninstrumented.
// Not safe to call while worker threads are running.
func (rt *Runtime) ResetStats() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, th := range rt.threads {
		for i := range th.phaseStats {
			th.phaseStats[i] = Stats{}
		}
		// Epoch marks snapshot absolute counter values, so they must be
		// cleared with them or the next adaptive epoch would compute
		// deltas against pre-reset counts.
		for i := range th.adaptMark {
			th.adaptMark[i] = Stats{}
		}
	}
}

// Stats sums the statistics of every thread created so far, across all
// phases (the per-phase view is PhaseStats).
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var s Stats
	for _, th := range rt.threads {
		for i := range th.phaseStats {
			s.Add(&th.phaseStats[i])
		}
	}
	return s
}

// ID returns the worker id of this thread.
func (th *Thread) ID() int { return th.id }

// Stats returns this thread's counters for its current phase (read
// after joining; without declared phases this is all of the thread's
// accounting, exactly as before phases existed).
func (th *Thread) Stats() *Stats { return th.stats }

// Runtime returns the owning runtime.
func (th *Thread) Runtime() *Runtime { return th.rt }

// --- Non-transactional operations (setup/teardown phases) ---

// Alloc allocates n words outside any transaction.
func (th *Thread) Alloc(n int) mem.Addr {
	p := th.alloc.Alloc(n)
	if th.rt.durable != nil {
		// The allocation wrote the header word and zeroed the payload.
		th.journal(p-1, th.alloc.BlockSize(p)+1)
	}
	return p
}

// Free frees a block outside any transaction. Freeing changes no words
// (headers and contents stay in place), so nothing is journaled.
func (th *Thread) Free(p mem.Addr) { th.alloc.Free(p) }

// Load reads a word non-transactionally.
func (th *Thread) Load(a mem.Addr) uint64 { return th.rt.space.Load(a) }

// Store writes a word non-transactionally.
func (th *Thread) Store(a mem.Addr, v uint64) {
	th.rt.space.Store(a, v)
	if th.rt.durable != nil {
		th.journal(a, 1)
	}
}

// StackPush allocates an n-word frame on the simulated stack outside a
// transaction (live-in data for later transactions). The returned mark
// must be passed to StackPop.
func (th *Thread) StackPush(n int) (frame mem.Addr, mark mem.Addr) {
	mark = th.stack.SP()
	frame = th.stack.Push(n)
	if th.rt.durable != nil {
		th.journal(frame, n) // Push zeroed the frame
	}
	return frame, mark
}

// StackPop releases the stack down to mark.
func (th *Thread) StackPop(mark mem.Addr) { th.stack.Pop(mark) }

// --- Annotation APIs (paper Fig. 7) ---

// AddPrivateBlock annotates [addr, addr+size) as thread-local or
// read-only: safe to access inside transactions without STM barriers.
// This is the paper's addPrivateMemoryBlock. Incorrect use can
// introduce data races, exactly as in the paper.
func (th *Thread) AddPrivateBlock(addr mem.Addr, size int) {
	th.priv.Insert(addr, addr+mem.Addr(size))
}

// RemovePrivateBlock ends the annotation for [addr, addr+size); the
// paper's removePrivateMemoryBlock.
func (th *Thread) RemovePrivateBlock(addr mem.Addr, size int) {
	th.priv.Remove(addr, addr+mem.Addr(size))
}

// --- Transactions ---

// retrySignal unwinds a conflicting transaction attempt.
type retrySignal struct{}

// userAbort unwinds an explicitly aborted (inner) transaction.
type userAbort struct{}

// Atomic executes fn as a transaction, retrying on conflicts until it
// commits. If fn calls Tx.UserAbort, the (innermost) transaction rolls
// back and Atomic returns false; otherwise it returns true. Calling
// Atomic inside a transaction runs fn as a closed nested transaction
// with partial abort.
func (th *Thread) Atomic(fn func(*Tx)) bool {
	tx := &th.tx
	if tx.active {
		return th.atomicNested(fn)
	}
	// A phase switch hinted during the previous transaction lands here,
	// on the boundary: the retry loop below always runs one engine.
	if th.pendingPhase >= 0 {
		th.setPhase(th.pendingPhase)
	}
	for {
		tx.beginTop()
		retry, aborted := th.run(tx, fn)
		if retry {
			// The phase's compiled contention manager decides what to do
			// with the lost attempt (cm.go): spin, retry immediately, or
			// park on the conflicting owner. The attempt has fully
			// unwound — abortTop released every orec — so the manager
			// runs lock-free.
			th.cm.wait(th, tx)
			continue
		}
		tx.attempts = 0
		tx.upNext = false // full-engine fallback is per transaction
		if th.pendingPhase >= 0 {
			th.setPhase(th.pendingPhase)
		}
		// Adaptive runtimes sample at this boundary: one nil check for
		// everyone else.
		if th.adaptMark != nil {
			th.adaptiveTick()
		}
		return !aborted
	}
}

// run executes one attempt; it reports whether to retry and whether
// the user aborted. All cleanup happens before return.
func (th *Thread) run(tx *Tx, fn func(*Tx)) (retry, aborted bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch r.(type) {
		case retrySignal:
			tx.abortTop(true)
			retry = true
		case userAbort:
			tx.abortTop(false)
			aborted = true
		default:
			tx.abortTop(false)
			panic(r)
		}
	}()
	fn(tx)
	tx.commitTop() // may panic retrySignal on validation failure
	return false, false
}

func (th *Thread) atomicNested(fn func(*Tx)) (committed bool) {
	tx := &th.tx
	tx.beginNested()
	committed = true
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(userAbort); ok {
				tx.abortNested()
				committed = false
				return
			}
			// Conflicts and real panics unwind to the top level,
			// which rolls back everything.
			panic(r)
		}()
		fn(tx)
	}()
	if committed {
		tx.commitNested()
	}
	return committed
}

// nextRand is a xorshift64* step for backoff jitter.
func (th *Thread) nextRand() uint64 {
	x := th.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	th.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Validate is a debugging aid for tests: it panics if any orec is
// still locked (all transactions must have released ownership).
func (rt *Runtime) Validate() {
	for i := range rt.orecs {
		if v := rt.orecs[i].Load(); orecLocked(v) {
			panic(fmt.Sprintf("stm: orec %d still locked by thread %d", i, orecOwner(v)))
		}
	}
}
