// Package ssca2 ports the transactional kernel of STAMP's ssca2
// (kernel 1: graph construction). Threads partition a precomputed edge
// list and insert each edge into its source vertex's adjacency array
// with a tiny transaction: read the degree counter, claim a slot,
// store the target. Transactions are minuscule, touch almost no
// memory, and never allocate — ssca2 sits at the barrier-light end of
// the paper's Fig. 8 with nothing to elide.
package ssca2

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stamp"
	"repro/internal/stm"
)

// Config sizes the synthetic graph.
type Config struct {
	Name     string
	Vertices int
	Edges    int
	Seed     uint64
}

// Default returns the scaled-down ssca2 configuration.
func Default() Config {
	return Config{Name: "ssca2", Vertices: 8192, Edges: 262144, Seed: 5}
}

// B is one ssca2 run.
type B struct {
	cfg Config

	srcs, dsts []uint32 // generated edge list (Go side, read-only)

	degrees mem.Addr // per-vertex degree counters (transactional)
	adjOff  []int    // per-vertex adjacency offsets (exact-fit)
	adj     mem.Addr // adjacency storage
}

func init() {
	stamp.Register("ssca2",
		"STAMP ssca2: graph kernel appending adjacency arrays under contention", func() stamp.Benchmark { return &B{cfg: Default()} })
}

// NewWith creates an ssca2 instance with a custom configuration.
func NewWith(cfg Config) *B { return &B{cfg: cfg} }

// Name implements stamp.Benchmark.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements stamp.Benchmark.
func (b *B) MemConfig() mem.Config {
	words := b.cfg.Vertices + b.cfg.Edges + (1 << 19)
	return mem.Config{GlobalWords: 1 << 10, HeapWords: words, StackWords: 1 << 10, MaxThreads: 32}
}

// Setup generates the edge list and sizes the adjacency arrays.
func (b *B) Setup(rt *stm.Runtime) {
	r := prng.New(b.cfg.Seed)
	counts := make([]int, b.cfg.Vertices)
	b.srcs = make([]uint32, b.cfg.Edges)
	b.dsts = make([]uint32, b.cfg.Edges)
	for i := range b.srcs {
		s := r.Intn(b.cfg.Vertices)
		d := r.Intn(b.cfg.Vertices)
		b.srcs[i], b.dsts[i] = uint32(s), uint32(d)
		counts[s]++
	}
	th := rt.Thread(0)
	b.degrees = th.Alloc(b.cfg.Vertices)
	b.adj = th.Alloc(b.cfg.Edges)
	b.adjOff = make([]int, b.cfg.Vertices+1)
	for v := 0; v < b.cfg.Vertices; v++ {
		b.adjOff[v+1] = b.adjOff[v] + counts[v]
	}
}

// Run inserts every edge transactionally (STAMP's computeGraph inner
// loop).
func (b *B) Run(rt *stm.Runtime, nthreads int) {
	stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
		lo := len(b.srcs) * tid / n
		hi := len(b.srcs) * (tid + 1) / n
		for i := lo; i < hi; i++ {
			src, dst := b.srcs[i], b.dsts[i]
			slotBase := b.adj + mem.Addr(b.adjOff[src])
			degSlot := b.degrees + mem.Addr(src)
			th.Atomic(func(tx *stm.Tx) {
				d := tx.Load(degSlot, stm.AccShared)
				tx.Store(degSlot, d+1, stm.AccShared)
				tx.Store(slotBase+mem.Addr(d), uint64(dst), stm.AccShared)
			})
		}
	})
}

// Validate checks degrees and that each vertex's adjacency multiset
// matches the generated edge list.
func (b *B) Validate(rt *stm.Runtime) error {
	s := rt.Space()
	want := make(map[uint32][]uint32)
	for i := range b.srcs {
		want[b.srcs[i]] = append(want[b.srcs[i]], b.dsts[i])
	}
	var totalDeg uint64
	for v := 0; v < b.cfg.Vertices; v++ {
		deg := s.Load(b.degrees + mem.Addr(v))
		totalDeg += deg
		exp := want[uint32(v)]
		if int(deg) != len(exp) {
			return fmt.Errorf("vertex %d: degree %d, want %d", v, deg, len(exp))
		}
		got := make([]uint32, deg)
		for i := range got {
			got[i] = uint32(s.Load(b.adj + mem.Addr(b.adjOff[v]+i)))
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(exp, func(i, j int) bool { return exp[i] < exp[j] })
		for i := range got {
			if got[i] != exp[i] {
				return fmt.Errorf("vertex %d: adjacency mismatch at %d: %d != %d", v, i, got[i], exp[i])
			}
		}
	}
	if totalDeg != uint64(b.cfg.Edges) {
		return fmt.Errorf("total degree %d, want %d", totalDeg, b.cfg.Edges)
	}
	return nil
}
