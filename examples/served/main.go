// Served: application-side transaction merging on the public API.
//
//	go run ./examples/served
//
// A miniature key-value server: a worker pool (tm/serve.Server) drains
// an open-loop client population, and each worker merges compatible
// requests — footprints on distinct keys, same phase — into ONE
// transaction (tm.Batcher). The win is the paper's captured-memory
// story applied to serving: a merged transaction assembles every
// record and every reply in memory captured by that transaction (fresh
// allocations, the batch's stack block), so the runtime elides those
// barriers and the per-request shared-memory cost shrinks to the
// actual index update. The printed report shows the merge ratio the
// queue sustained, the p95 service time measured from each request's
// scheduled arrival, and the share of barriers elided; the run fails
// if merged reply assembly elided nothing, because that would mean
// merging stopped paying for itself.
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/tm"
	"repro/tm/serve"
)

const (
	keys         = 1024
	payloadWords = 6
	recSize      = 1 + payloadWords // [0] checksum, [1..] payload
	opGet        = 0
	opPut        = 1
	requests     = 20000
)

// kv is a minimal serve.Backend: one pointer slot per key, records
// rebuilt in captured memory on every put.
type kv struct {
	slots tm.Struct
}

func (k *kv) MemConfig(workers, totalRequests int) tm.MemConfig {
	return tm.MemConfig{
		GlobalWords: keys + 8,
		// Every put allocates a fresh record; overwritten ones recycle
		// through limbo only at quiescence, so size for the full churn.
		HeapWords:  1 << 20,
		StackWords: 1 << 10,
		MaxThreads: workers,
	}
}

func (k *kv) Setup(rt *tm.Runtime) { k.slots = rt.AllocGlobal(keys) }

func (k *kv) ReplyWords() int { return 2 }

// NewRequest is request i of the deterministic stream: three puts to
// every get, keys scattered by a Weyl sequence.
func (k *kv) NewRequest(seed, i uint64) serve.Request {
	h := (seed + i) * 0x9E3779B97F4A7C15
	op := uint8(opPut)
	if i%4 == 3 {
		op = opGet
	}
	return serve.Request{Op: op, Key: h >> 54 % keys, Arg: h}
}

// Item declares the request's footprint (its key) and the transactional
// work. Puts build the record with fresh-provenance stores — captured,
// elided; gets verify the checksum through full barriers.
func (k *kv) Item(req serve.Request) tm.BatchItem {
	key := int(req.Key % keys)
	if req.Op == opGet {
		return tm.BatchItem{
			Footprint: tm.Footprint{Reads: []uint64{uint64(key)}},
			Apply: func(tx *tm.Tx, reply tm.Struct) bool {
				rec := k.slots.Ptr(key).Load(tx)
				if rec.IsNil() {
					return true // miss: status word stays 0
				}
				var sum uint64
				for j := 0; j < payloadWords; j++ {
					sum += rec.Word(1 + j).Load(tx)
				}
				if sum != rec.Word(0).Load(tx) {
					fmt.Fprintln(os.Stderr, "served: checksum mismatch")
					os.Exit(1)
				}
				reply.Word(0).Store(tx, 1)
				reply.Word(1).Store(tx, sum)
				return true
			},
		}
	}
	return tm.BatchItem{
		Footprint: tm.Footprint{Writes: []uint64{uint64(key)}},
		Apply: func(tx *tm.Tx, reply tm.Struct) bool {
			rec := tx.Alloc(recSize) // captured: fresh provenance
			var sum uint64
			for j := 0; j < payloadWords; j++ {
				w := req.Arg*31 + uint64(j)
				rec.Word(1+j).Store(tx, w) // elided store
				sum += w
			}
			rec.Word(0).Store(tx, sum)
			if old := k.slots.Ptr(key).Load(tx); !old.IsNil() {
				tx.Free(old)
			}
			k.slots.Ptr(key).Store(tx, rec)
			reply.Word(0).Store(tx, 1)
			reply.Word(1).Store(tx, sum)
			return true
		},
	}
}

func main() {
	be := &kv{}
	srv := serve.NewServer(be, serve.Config{
		Workers:    4,
		MergeWidth: 8,
		Requests:   requests,
		Options: []tm.Option{
			tm.WithName("served"),
			tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap),
			tm.WithLogKind(tm.LogTree),
		},
	})
	srv.Start()
	res := srv.RunOpenLoop(serve.OpenLoop{Clients: 8, Requests: requests, Seed: 42})
	srv.Stop()

	bs := srv.BatchStats()
	lat := append([]int64(nil), res.LatenciesNs...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p95 := time.Duration(lat[(len(lat)*95+99)/100-1])
	s := srv.Runtime().Stats()
	total := s.ReadTotal + s.WriteTotal
	elided := s.ReadElided() + s.WriteElided()

	fmt.Printf("served %d requests at %.0f req/s (%d workers, merge width 8)\n",
		res.Requests, res.AchievedRPS(), 4)
	fmt.Printf("merge ratio %.2fx  (%d requests in %d transactions, %d merged batches, %d fallbacks)\n",
		bs.MergeRatio(), bs.Requests, bs.Txns, bs.Merged, bs.Fallbacks)
	fmt.Printf("p95 service time %v  (from scheduled arrival)\n", p95.Round(time.Microsecond))
	fmt.Printf("%d of %d barriers elided (%.1f%%), %d stack-captured writes\n",
		elided, total, 100*float64(elided)/float64(total), s.WriteElStack)

	if bs.Merged == 0 {
		fmt.Fprintln(os.Stderr, "served: no batch ever merged")
		os.Exit(1)
	}
	if s.WriteElStack == 0 {
		fmt.Fprintln(os.Stderr, "served: merged reply assembly elided nothing")
		os.Exit(1)
	}
}
