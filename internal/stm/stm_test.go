package stm

import (
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/mem"
)

func testMemCfg() mem.Config {
	return mem.Config{GlobalWords: 1 << 10, HeapWords: 1 << 18, StackWords: 1 << 10, MaxThreads: 16}
}

func newRT(cfg OptConfig) *Runtime { return New(testMemCfg(), cfg) }

// allConfigs returns every optimization configuration exercised by the
// correctness matrix.
func allConfigs() []OptConfig {
	cfgs := []OptConfig{Baseline(), CountingConfig(), Compiler()}
	for _, k := range []capture.Kind{capture.KindTree, capture.KindArray, capture.KindFilter} {
		cfgs = append(cfgs, RuntimeAll(k), RuntimeWrite(k), RuntimeHeapWrite(k))
	}
	an := RuntimeAll(capture.KindTree)
	an.Annotations = true
	an.Name = "runtime+annotations"
	cfgs = append(cfgs, an)
	noWAW := Baseline()
	noWAW.NoWAWFilter = true
	noWAW.Name = "baseline-no-waw"
	cfgs = append(cfgs, noWAW)
	return cfgs
}

func TestCommitMakesWritesVisible(t *testing.T) {
	for _, cfg := range allConfigs() {
		t.Run(cfg.Name, func(t *testing.T) {
			rt := newRT(cfg)
			th := rt.Thread(0)
			a := rt.Space().AllocGlobal(2)
			ok := th.Atomic(func(tx *Tx) {
				tx.Store(a, 41, AccShared)
				tx.Store(a+1, 42, AccShared)
			})
			if !ok {
				t.Fatal("Atomic returned false")
			}
			if rt.Space().Load(a) != 41 || rt.Space().Load(a+1) != 42 {
				t.Errorf("writes not visible: %d %d", rt.Space().Load(a), rt.Space().Load(a+1))
			}
			rt.Validate()
		})
	}
}

func TestReadAfterWrite(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	a := rt.Space().AllocGlobal(1)
	th.Atomic(func(tx *Tx) {
		tx.Store(a, 7, AccShared)
		if got := tx.Load(a, AccShared); got != 7 {
			t.Errorf("RAW = %d, want 7", got)
		}
		tx.Store(a, 8, AccShared)
		if got := tx.Load(a, AccShared); got != 8 {
			t.Errorf("RAW = %d, want 8", got)
		}
	})
	if rt.Space().Load(a) != 8 {
		t.Errorf("final = %d, want 8", rt.Space().Load(a))
	}
}

func TestUserAbortRollsBack(t *testing.T) {
	for _, cfg := range allConfigs() {
		t.Run(cfg.Name, func(t *testing.T) {
			rt := newRT(cfg)
			th := rt.Thread(0)
			a := rt.Space().AllocGlobal(1)
			rt.Space().Store(a, 100)
			ok := th.Atomic(func(tx *Tx) {
				tx.Store(a, 200, AccShared)
				tx.UserAbort()
			})
			if ok {
				t.Fatal("Atomic returned true after UserAbort")
			}
			if got := rt.Space().Load(a); got != 100 {
				t.Errorf("value after abort = %d, want 100", got)
			}
			rt.Validate()
		})
	}
}

func TestAbortRollsBackAllocations(t *testing.T) {
	rt := newRT(RuntimeAll(capture.KindTree))
	th := rt.Thread(0)
	th.Atomic(func(tx *Tx) {
		p := tx.Alloc(4)
		tx.Store(p, 1, AccFresh)
		tx.UserAbort()
	})
	if live := th.alloc.Live(); live != 0 {
		t.Errorf("leaked %d blocks after abort", live)
	}
}

func TestTxAllocFreeSameTx(t *testing.T) {
	rt := newRT(RuntimeAll(capture.KindTree))
	th := rt.Thread(0)
	th.Atomic(func(tx *Tx) {
		p := tx.Alloc(4)
		tx.Store(p, 9, AccFresh)
		tx.Free(p)
		q := tx.Alloc(4) // may reuse p
		tx.Store(q, 1, AccFresh)
	})
	if live := th.alloc.Live(); live != 1 {
		t.Errorf("live = %d, want 1", live)
	}
	rt.Validate()
}

func TestDeferredFreeOnCommitOnly(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	p := th.Alloc(4)
	th.Store(p, 55)
	// Abort: the free must not happen.
	th.Atomic(func(tx *Tx) {
		tx.Free(p)
		tx.UserAbort()
	})
	if th.Load(p) != 55 {
		t.Error("aborted free damaged block")
	}
	if th.alloc.Live() != 1 {
		t.Errorf("live = %d, want 1 (free must be undone)", th.alloc.Live())
	}
	// Commit: the free happens (via limbo, drained at quiescence).
	th.Atomic(func(tx *Tx) { tx.Free(p) })
	if th.alloc.Live() != 0 {
		t.Errorf("live = %d, want 0 after committed free", th.alloc.Live())
	}
}

func TestRuntimeCaptureElisionStats(t *testing.T) {
	for _, k := range []capture.Kind{capture.KindTree, capture.KindArray, capture.KindFilter} {
		t.Run(k.String(), func(t *testing.T) {
			rt := newRT(RuntimeAll(k))
			th := rt.Thread(0)
			th.Atomic(func(tx *Tx) {
				p := tx.Alloc(4)
				tx.Store(p, 5, AccAuto) // captured heap write
				_ = tx.Load(p, AccAuto) // captured heap read
				f := tx.StackAlloc(2)
				tx.Store(f, 6, AccAuto) // captured stack write
				_ = tx.Load(f, AccAuto) // captured stack read
			})
			s := rt.Stats()
			if s.WriteElHeap != 1 || s.ReadElHeap != 1 {
				t.Errorf("heap elisions r=%d w=%d, want 1/1", s.ReadElHeap, s.WriteElHeap)
			}
			if s.WriteElStack != 1 || s.ReadElStack != 1 {
				t.Errorf("stack elisions r=%d w=%d, want 1/1", s.ReadElStack, s.WriteElStack)
			}
			if s.ReadFull != 0 || s.WriteFull != 0 {
				t.Errorf("full barriers r=%d w=%d, want 0/0", s.ReadFull, s.WriteFull)
			}
		})
	}
}

func TestWriteOnlyConfigElidesOnlyWrites(t *testing.T) {
	rt := newRT(RuntimeWrite(capture.KindTree))
	th := rt.Thread(0)
	th.Atomic(func(tx *Tx) {
		p := tx.Alloc(2)
		tx.Store(p, 5, AccAuto)
		_ = tx.Load(p, AccAuto)
	})
	s := rt.Stats()
	if s.WriteElHeap != 1 {
		t.Errorf("WriteElHeap = %d, want 1", s.WriteElHeap)
	}
	if s.ReadElHeap != 0 || s.ReadFull != 1 {
		t.Errorf("read should be full: ElHeap=%d Full=%d", s.ReadElHeap, s.ReadFull)
	}
}

func TestHeapOnlyConfigIgnoresStack(t *testing.T) {
	rt := newRT(RuntimeHeapWrite(capture.KindTree))
	th := rt.Thread(0)
	th.Atomic(func(tx *Tx) {
		f := tx.StackAlloc(1)
		tx.Store(f, 1, AccAuto) // stack, but stack checks are off
		p := tx.Alloc(1)
		tx.Store(p, 2, AccAuto)
	})
	s := rt.Stats()
	if s.WriteElStack != 0 || s.WriteElHeap != 1 || s.WriteFull != 1 {
		t.Errorf("elisions stack=%d heap=%d full=%d, want 0/1/1",
			s.WriteElStack, s.WriteElHeap, s.WriteFull)
	}
}

func TestCompilerElision(t *testing.T) {
	rt := newRT(Compiler())
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(1)
	th.Atomic(func(tx *Tx) {
		p := tx.Alloc(2)
		tx.Store(p, 5, AccFresh)  // statically elided
		_ = tx.Load(p, AccLocal)  // statically elided
		tx.Store(g, 1, AccShared) // kept
	})
	s := rt.Stats()
	if s.WriteElStatic != 1 || s.ReadElStatic != 1 {
		t.Errorf("static elisions r=%d w=%d, want 1/1", s.ReadElStatic, s.WriteElStatic)
	}
	if s.WriteFull != 1 {
		t.Errorf("WriteFull = %d, want 1", s.WriteFull)
	}
	if rt.Space().Load(p0(rt)) != 0 {
		// no assertion on heap content; just ensure globals committed
	}
	if rt.Space().Load(g) != 1 {
		t.Error("shared write lost")
	}
}

func p0(rt *Runtime) mem.Addr { s, _ := rt.Space().HeapRange(); return s }

func TestCountingClassification(t *testing.T) {
	rt := newRT(CountingConfig())
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(1)
	th.Atomic(func(tx *Tx) {
		p := tx.Alloc(2)
		tx.Store(p, 5, AccAuto) // captured heap
		_ = tx.Load(p, AccAuto) // captured heap
		f := tx.StackAlloc(1)
		tx.Store(f, 1, AccAuto)   // captured stack
		tx.Store(g, 2, AccShared) // shared (required)
		_ = tx.Load(g, AccShared)
	})
	s := rt.Stats()
	if s.WriteCapHeap != 1 || s.ReadCapHeap != 1 || s.WriteCapStack != 1 {
		t.Errorf("counting: wCapHeap=%d rCapHeap=%d wCapStack=%d", s.WriteCapHeap, s.ReadCapHeap, s.WriteCapStack)
	}
	if s.WriteManual != 1 || s.ReadManual != 1 {
		t.Errorf("manual counts r=%d w=%d, want 1/1", s.ReadManual, s.WriteManual)
	}
	if s.WriteTotal != 3 || s.ReadTotal != 2 {
		t.Errorf("totals r=%d w=%d, want 2/3", s.ReadTotal, s.WriteTotal)
	}
	// Counting mode must not elide anything.
	if s.ReadElided() != 0 || s.WriteElided() != 0 {
		t.Error("counting mode elided barriers")
	}
}

func TestAnnotationsElide(t *testing.T) {
	cfg := Baseline()
	cfg.Annotations = true
	rt := newRT(cfg)
	th := rt.Thread(0)
	p := th.Alloc(8)
	th.Store(p, 10)
	th.AddPrivateBlock(p, 8)
	th.Atomic(func(tx *Tx) {
		if got := tx.Load(p, AccAuto); got != 10 {
			t.Errorf("private read = %d, want 10", got)
		}
		tx.Store(p, 20, AccAuto)
	})
	s := rt.Stats()
	if s.ReadElPriv != 1 || s.WriteElPriv != 1 {
		t.Errorf("private elisions r=%d w=%d, want 1/1", s.ReadElPriv, s.WriteElPriv)
	}
	if th.Load(p) != 20 {
		t.Error("private write lost")
	}
	// Private writes keep undo logging: abort must restore.
	th.Atomic(func(tx *Tx) {
		tx.Store(p, 99, AccAuto)
		tx.UserAbort()
	})
	if th.Load(p) != 20 {
		t.Errorf("private write not rolled back: %d", th.Load(p))
	}
	// After removal, accesses are full barriers again.
	th.RemovePrivateBlock(p, 8)
	th.Atomic(func(tx *Tx) { tx.Store(p, 30, AccAuto) })
	s = rt.Stats()
	if s.WriteElPriv != 2 { // 1 from before + 1 from aborted tx
		t.Errorf("WriteElPriv = %d, want 2", s.WriteElPriv)
	}
	if s.WriteFull == 0 {
		t.Error("write after removal was not a full barrier")
	}
}

func TestWAWFilterSkipsRedundantUndo(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	a := rt.Space().AllocGlobal(1)
	th.Atomic(func(tx *Tx) {
		for i := uint64(0); i < 10; i++ {
			tx.Store(a, i, AccShared)
		}
		if len(tx.undo) != 1 {
			t.Errorf("undo entries = %d, want 1", len(tx.undo))
		}
	})
	s := rt.Stats()
	if s.WriteWAWSkips != 9 {
		t.Errorf("WAW skips = %d, want 9", s.WriteWAWSkips)
	}
	// And the rollback is still correct.
	rt.Space().Store(a, 100)
	th.Atomic(func(tx *Tx) {
		tx.Store(a, 1, AccShared)
		tx.Store(a, 2, AccShared)
		tx.UserAbort()
	})
	if got := rt.Space().Load(a); got != 100 {
		t.Errorf("after abort = %d, want 100", got)
	}
}

func TestNoWAWFilterLogsEveryWrite(t *testing.T) {
	cfg := Baseline()
	cfg.NoWAWFilter = true
	rt := newRT(cfg)
	th := rt.Thread(0)
	a := rt.Space().AllocGlobal(1)
	th.Atomic(func(tx *Tx) {
		tx.Store(a, 1, AccShared)
		tx.Store(a, 2, AccShared)
		if len(tx.undo) != 2 {
			t.Errorf("undo entries = %d, want 2", len(tx.undo))
		}
	})
}

func TestNestedCommit(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	a := rt.Space().AllocGlobal(2)
	th.Atomic(func(tx *Tx) {
		tx.Store(a, 1, AccShared)
		ok := th.Atomic(func(tx2 *Tx) {
			if tx2.Depth() != 2 {
				t.Errorf("depth = %d, want 2", tx2.Depth())
			}
			tx2.Store(a+1, 2, AccShared)
		})
		if !ok {
			t.Error("nested commit failed")
		}
	})
	if rt.Space().Load(a) != 1 || rt.Space().Load(a+1) != 2 {
		t.Error("nested writes lost")
	}
	rt.Validate()
}

func TestNestedPartialAbort(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	a := rt.Space().AllocGlobal(2)
	rt.Space().Store(a, 10)
	rt.Space().Store(a+1, 20)
	th.Atomic(func(tx *Tx) {
		tx.Store(a, 11, AccShared)
		ok := th.Atomic(func(tx2 *Tx) {
			tx2.Store(a+1, 21, AccShared)
			tx2.UserAbort()
		})
		if ok {
			t.Error("aborted nested tx reported committed")
		}
		// Inner write rolled back, outer write intact.
		if got := tx.Load(a+1, AccShared); got != 20 {
			t.Errorf("inner write survives partial abort: %d", got)
		}
		if got := tx.Load(a, AccShared); got != 11 {
			t.Errorf("outer write lost: %d", got)
		}
	})
	if rt.Space().Load(a) != 11 || rt.Space().Load(a+1) != 20 {
		t.Errorf("final = %d,%d want 11,20", rt.Space().Load(a), rt.Space().Load(a+1))
	}
	rt.Validate()
}

// TestNestedPartialAbortOfCapturedWrites checks Sec. 2.2.1: memory
// captured by the outer transaction is live-in for the nested one, so
// elided (captured) writes inside the nested transaction must still be
// undone by a partial abort.
func TestNestedPartialAbortOfCapturedWrites(t *testing.T) {
	for _, cfg := range []OptConfig{RuntimeAll(capture.KindTree), Compiler()} {
		t.Run(cfg.Name, func(t *testing.T) {
			rt := newRT(cfg)
			th := rt.Thread(0)
			th.Atomic(func(tx *Tx) {
				p := tx.Alloc(1)
				tx.Store(p, 5, AccFresh) // captured, outer
				th.Atomic(func(tx2 *Tx) {
					tx2.Store(p, 9, AccFresh) // captured, but live-in for inner
					tx2.UserAbort()
				})
				if got := tx.Load(p, AccFresh); got != 5 {
					t.Errorf("captured write not undone by partial abort: %d", got)
				}
			})
		})
	}
}

func TestNestedAllocPartialAbort(t *testing.T) {
	rt := newRT(RuntimeAll(capture.KindTree))
	th := rt.Thread(0)
	th.Atomic(func(tx *Tx) {
		outer := tx.Alloc(2)
		th.Atomic(func(tx2 *Tx) {
			inner := tx2.Alloc(2)
			tx2.Store(inner, 1, AccFresh)
			tx2.Free(outer) // freeing outer's block must be deferred
			tx2.UserAbort()
		})
		// outer's block survived the aborted free.
		tx.Store(outer, 7, AccFresh)
		if got := tx.Load(outer, AccFresh); got != 7 {
			t.Errorf("outer block damaged: %d", got)
		}
	})
	if th.alloc.Live() != 1 {
		t.Errorf("live = %d, want 1", th.alloc.Live())
	}
}

func TestConflictRetries(t *testing.T) {
	rt := newRT(Baseline())
	a := rt.Space().AllocGlobal(1)
	const threads, incs = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for j := 0; j < incs; j++ {
				th.Atomic(func(tx *Tx) {
					v := tx.Load(a, AccShared)
					tx.Store(a, v+1, AccShared)
				})
			}
		}(i)
	}
	wg.Wait()
	if got := rt.Space().Load(a); got != threads*incs {
		t.Errorf("counter = %d, want %d", got, threads*incs)
	}
	s := rt.Stats()
	if s.Commits != threads*incs {
		t.Errorf("commits = %d, want %d", s.Commits, threads*incs)
	}
	rt.Validate()
}

// TestBankInvariant is the classic STM isolation test: concurrent
// random transfers must conserve the total across every configuration.
func TestBankInvariant(t *testing.T) {
	for _, cfg := range allConfigs() {
		t.Run(cfg.Name, func(t *testing.T) {
			rt := newRT(cfg)
			const accounts = 64
			const initial = 1000
			base := rt.Space().AllocGlobal(accounts)
			for i := 0; i < accounts; i++ {
				rt.Space().Store(base+mem.Addr(i), initial)
			}
			const threads, transfers = 6, 300
			var wg sync.WaitGroup
			for i := 0; i < threads; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					th := rt.Thread(id)
					rng := uint64(id + 1)
					for j := 0; j < transfers; j++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						from := mem.Addr(rng>>33) % accounts
						to := mem.Addr(rng>>13) % accounts
						th.Atomic(func(tx *Tx) {
							// Scratch allocation exercises capture paths
							// under contention.
							scratch := tx.Alloc(2)
							tx.Store(scratch, uint64(j), AccFresh)
							f := tx.Load(base+from, AccShared)
							tx.Store(base+from, f-1, AccShared)
							tv := tx.Load(base+to, AccShared)
							tx.Store(base+to, tv+1, AccShared)
							tx.Free(scratch)
						})
					}
				}(i)
			}
			wg.Wait()
			var total uint64
			for i := 0; i < accounts; i++ {
				total += rt.Space().Load(base + mem.Addr(i))
			}
			if total != accounts*initial {
				t.Errorf("total = %d, want %d", total, accounts*initial)
			}
			rt.Validate()
		})
	}
}

// TestFreedBlockReuseIsQuiescent exercises the limbo list: a block
// freed by a committed transaction is not recycled while another
// thread is still inside a transaction that might read it.
func TestFreedBlockReuseIsQuiescent(t *testing.T) {
	rt := newRT(RuntimeAll(capture.KindTree))
	thA := rt.Thread(0)
	thB := rt.Thread(1)
	p := thA.Alloc(4)

	inTx := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		thB.Atomic(func(tx *Tx) {
			if tx.Attempt() == 1 {
				close(inTx)
				<-release
			}
		})
	}()
	<-inTx
	thA.Atomic(func(tx *Tx) { tx.Free(p) })
	if len(thA.limbo) != 1 {
		t.Fatalf("limbo batches = %d, want 1 (thread B still in tx)", len(thA.limbo))
	}
	if thA.alloc.Live() != 0 {
		// Live counts frees at Tx.Free time via allocator.Free, which
		// hasn't run yet; the block is in limbo.
		t.Logf("live = %d (block parked in limbo)", thA.alloc.Live())
	}
	close(release)
	<-done
	// Next commit by A drains the limbo.
	thA.Atomic(func(tx *Tx) { _ = tx.Alloc(1) })
	if len(thA.limbo) != 0 {
		t.Errorf("limbo not drained after quiescence")
	}
}

func TestStackFramesUnwoundOnAbortAndCommit(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	sp0 := th.stack.SP()
	th.Atomic(func(tx *Tx) {
		tx.StackAlloc(8)
		tx.StackAlloc(4)
	})
	if th.stack.SP() != sp0 {
		t.Errorf("stack not restored after commit: %d != %d", th.stack.SP(), sp0)
	}
	th.Atomic(func(tx *Tx) {
		tx.StackAlloc(8)
		tx.UserAbort()
	})
	if th.stack.SP() != sp0 {
		t.Errorf("stack not restored after abort: %d != %d", th.stack.SP(), sp0)
	}
}

func TestPanicInsideTxCleansUp(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	a := rt.Space().AllocGlobal(1)
	rt.Space().Store(a, 5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic swallowed")
			}
		}()
		th.Atomic(func(tx *Tx) {
			tx.Store(a, 9, AccShared)
			panic("boom")
		})
	}()
	if got := rt.Space().Load(a); got != 5 {
		t.Errorf("value after panic = %d, want 5 (rolled back)", got)
	}
	rt.Validate()
	// The thread remains usable.
	if !th.Atomic(func(tx *Tx) { tx.Store(a, 6, AccShared) }) {
		t.Error("thread unusable after panic")
	}
}

func TestFloatAndAddrAccessors(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	a := rt.Space().AllocGlobal(2)
	th.Atomic(func(tx *Tx) {
		tx.StoreFloat(a, 3.25, AccShared)
		tx.StoreAddr(a+1, 77, AccShared)
		if tx.LoadFloat(a, AccShared) != 3.25 {
			t.Error("float round trip failed")
		}
		if tx.LoadAddr(a+1, AccShared) != 77 {
			t.Error("addr round trip failed")
		}
	})
}

func TestStatsAggregation(t *testing.T) {
	rt := newRT(Baseline())
	a := rt.Space().AllocGlobal(1)
	for i := 0; i < 3; i++ {
		th := rt.Thread(i)
		th.Atomic(func(tx *Tx) { tx.Store(a, 1, AccShared) })
	}
	s := rt.Stats()
	if s.Commits != 3 {
		t.Errorf("commits = %d, want 3", s.Commits)
	}
	if s.WriteTotal != 3 || s.WriteManual != 3 {
		t.Errorf("write totals = %d/%d, want 3/3", s.WriteTotal, s.WriteManual)
	}
}

func TestProvString(t *testing.T) {
	for p, want := range map[Prov]string{
		ProvUnknown: "unknown", ProvFresh: "fresh", ProvLocal: "local",
		ProvStack: "stack", Prov(9): "invalid",
	} {
		if p.String() != want {
			t.Errorf("Prov(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestStaticElideDecision(t *testing.T) {
	if StaticElide(ProvUnknown) {
		t.Error("ProvUnknown must keep the barrier")
	}
	for _, p := range []Prov{ProvFresh, ProvLocal, ProvStack} {
		if !StaticElide(p) {
			t.Errorf("%v must be elidable", p)
		}
	}
}

func TestAbortToCommitRatio(t *testing.T) {
	var s Stats
	if s.AbortRatio() != 0 {
		t.Error("zero commits should give ratio 0")
	}
	s.Commits, s.Aborts = 10, 5
	if s.AbortRatio() != 0.5 {
		t.Errorf("ratio = %v, want 0.5", s.AbortRatio())
	}
}
