package mem

import "fmt"

// Stack is a per-thread simulated stack. It grows downward, like the
// paper's Fig. 3: the live region is [sp, base), sp moving toward
// low addresses as frames are pushed.
//
// The STM runtime snapshots sp at transaction begin ("start_sp"); the
// transaction-local stack is then [sp, start_sp) and the runtime
// capture check is the single range comparison of the paper's Fig. 4.
type Stack struct {
	space *Space
	low   Addr // lowest usable address (overflow guard)
	base  Addr // one past the highest address; empty stack has sp==base
	sp    Addr
}

// NewStack creates the stack for thread tid on s.
func NewStack(s *Space, tid int) *Stack {
	low, high := s.StackRange(tid)
	return &Stack{space: s, low: low, base: high, sp: high}
}

// SP returns the current stack pointer.
func (st *Stack) SP() Addr { return st.sp }

// Base returns one past the highest stack address.
func (st *Stack) Base() Addr { return st.base }

// Push allocates n words on the stack and returns the address of the
// new frame (its lowest word). The frame is zeroed.
func (st *Stack) Push(n int) Addr {
	if n <= 0 {
		panic("mem: Stack.Push size must be positive")
	}
	if st.sp-Addr(n) < st.low || st.sp < Addr(n) {
		panic(fmt.Sprintf("mem: stack overflow (want %d words, %d left)", n, st.sp-st.low))
	}
	st.sp -= Addr(n)
	st.space.Zero(st.sp, n)
	return st.sp
}

// Pop releases the stack down to the saved pointer mark, which must
// have been returned by SP() earlier on this stack.
func (st *Stack) Pop(mark Addr) {
	if mark < st.sp || mark > st.base {
		panic(fmt.Sprintf("mem: Stack.Pop(%d): bad mark (sp=%d base=%d)", mark, st.sp, st.base))
	}
	st.sp = mark
}

// Contains reports whether a lies in the live stack region.
func (st *Stack) Contains(a Addr) bool { return a >= st.sp && a < st.base }
