package tlc

// Recursive-descent parser for TL.
//
// Grammar sketch:
//
//	program   := (structDecl | varDecl | funcDecl)*
//	structDecl:= "struct" IDENT "{" (IDENT type ";")* "}"
//	varDecl   := "var" IDENT type ";"
//	funcDecl  := "fn" IDENT "(" params ")" [type] block
//	type      := "int" | "bool" | "*" IDENT | "[" INT "]" "int"
//	stmt      := varDecl | assign | if | while | return | atomic
//	           | free | break | continue | abort | exprStmt | block
//	expr      := orExpr; usual precedence: || && == <  +  *  unary
type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*Program, *Error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[p.pos+1] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind) bool {
	if p.cur().kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, what string) (token, *Error) {
	t := p.cur()
	if t.kind != k {
		return t, errf(t.line, t.col, "expected %s, found %s", what, t)
	}
	p.advance()
	return t, nil
}

func (p *parser) program() (*Program, *Error) {
	prog := &Program{}
	for p.cur().kind != tokEOF {
		switch p.cur().kind {
		case tokStruct:
			sd, err := p.structDecl()
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, sd)
		case tokVar:
			vd, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, vd)
		case tokFn:
			fd, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fd)
		default:
			t := p.cur()
			return nil, errf(t.line, t.col, "expected declaration, found %s", t)
		}
	}
	return prog, nil
}

func (p *parser) structDecl() (*StructDecl, *Error) {
	kw := p.advance() // struct
	name, err := p.expect(tokIdent, "struct name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	sd := &StructDecl{Name: name.text, Line: kw.line}
	for !p.accept(tokRBrace) {
		fname, err := p.expect(tokIdent, "field name")
		if err != nil {
			return nil, err
		}
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, Field{Name: fname.text, Type: ft})
	}
	return sd, nil
}

func (p *parser) parseType() (Type, *Error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		switch t.text {
		case "int":
			p.advance()
			return Type{Kind: TInt}, nil
		case "bool":
			p.advance()
			return Type{Kind: TBool}, nil
		}
		return Type{}, errf(t.line, t.col, "unknown type %q (did you mean *%s?)", t.text, t.text)
	case tokStar:
		p.advance()
		name, err := p.expect(tokIdent, "struct name after '*'")
		if err != nil {
			return Type{}, err
		}
		return Type{Kind: TPtr, Elem: name.text}, nil
	case tokLBrack:
		p.advance()
		n, err := p.expect(tokInt, "array length")
		if err != nil {
			return Type{}, err
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return Type{}, err
		}
		elem, err := p.expect(tokIdent, "'int'")
		if err != nil || elem.text != "int" {
			return Type{}, errf(elem.line, elem.col, "array element type must be int")
		}
		if n.val == 0 || n.val > 1<<20 {
			return Type{}, errf(n.line, n.col, "array length out of range")
		}
		return Type{Kind: TArray, ArrLen: int(n.val)}, nil
	}
	return Type{}, errf(t.line, t.col, "expected type, found %s", t)
}

func (p *parser) varDecl() (*VarDecl, *Error) {
	kw := p.advance() // var
	name, err := p.expect(tokIdent, "variable name")
	if err != nil {
		return nil, err
	}
	vt, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &VarDecl{Name: name.text, Type: vt, Line: kw.line}, nil
}

func (p *parser) funcDecl() (*FuncDecl, *Error) {
	kw := p.advance() // fn
	name, err := p.expect(tokIdent, "function name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Name: name.text, Ret: Type{Kind: TVoid}, Line: kw.line}
	for !p.accept(tokRParen) {
		if len(fd.Params) > 0 {
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(tokIdent, "parameter name")
		if err != nil {
			return nil, err
		}
		pt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if pt.Kind == TArray {
			return nil, errf(pn.line, pn.col, "array parameters are not supported")
		}
		fd.Params = append(fd.Params, VarDecl{Name: pn.text, Type: pt, Line: pn.line})
	}
	if p.cur().kind != tokLBrace {
		rt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fd.Ret = rt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) block() (*Block, *Error) {
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept(tokRBrace) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, *Error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		vd, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: *vd}, nil
	case tokIf:
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept(tokElse) {
			if p.cur().kind == tokIf {
				inner, err := p.stmt()
				if err != nil {
					return nil, err
				}
				st.Else = &Block{Stmts: []Stmt{inner}}
			} else {
				els, err := p.block()
				if err != nil {
					return nil, err
				}
				st.Else = els
			}
		}
		return st, nil
	case tokWhile:
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case tokReturn:
		p.advance()
		st := &ReturnStmt{Line: t.line}
		if p.cur().kind != tokSemi {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Val = v
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return st, nil
	case tokAtomic:
		p.advance()
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &AtomicStmt{Body: body, Line: t.line}, nil
	case tokFree:
		p.advance()
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		ptr, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &FreeStmt{Ptr: ptr, Line: t.line}, nil
	case tokBreak:
		p.advance()
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil
	case tokContinue:
		p.advance()
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil
	case tokAbort:
		p.advance()
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &AbortStmt{Line: t.line}, nil
	case tokLBrace:
		return p.block()
	}
	// Assignment or expression statement.
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokAssign {
		eq := p.advance()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, "';'"); err != nil {
			return nil, err
		}
		return &AssignStmt{Lhs: lhs, Rhs: rhs, Line: eq.line}, nil
	}
	if _, err := p.expect(tokSemi, "';'"); err != nil {
		return nil, err
	}
	return &ExprStmt{X: lhs}, nil
}

// --- Expressions, by precedence ---

func (p *parser) expr() (Expr, *Error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, *Error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOrOr {
		op := p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: tokOrOr, L: l, R: r, Line: op.line}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, *Error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAndAnd {
		op := p.advance()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: tokAndAnd, L: l, R: r, Line: op.line}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, *Error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().kind
		if k != tokLT && k != tokLE && k != tokGT && k != tokGE && k != tokEQ && k != tokNE {
			return l, nil
		}
		op := p.advance()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: k, L: l, R: r, Line: op.line}
	}
}

func (p *parser) addExpr() (Expr, *Error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().kind
		if k != tokPlus && k != tokMinus {
			return l, nil
		}
		op := p.advance()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: k, L: l, R: r, Line: op.line}
	}
}

func (p *parser) mulExpr() (Expr, *Error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().kind
		if k != tokStar && k != tokSlash && k != tokPercent {
			return l, nil
		}
		op := p.advance()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: k, L: l, R: r, Line: op.line}
	}
}

func (p *parser) unary() (Expr, *Error) {
	t := p.cur()
	switch t.kind {
	case tokBang, tokMinus:
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: t.kind, X: x, Line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, *Error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokDot:
			p.advance()
			name, err := p.expect(tokIdent, "field name")
			if err != nil {
				return nil, err
			}
			x = &FieldExpr{X: x, Name: name.text, Line: name.line}
		case tokLBrack:
			lb := p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrack, "']'"); err != nil {
				return nil, err
			}
			x = &IndexExpr{X: x, I: idx, Line: lb.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, *Error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		return &IntLit{Val: t.val, Line: t.line}, nil
	case tokTrue, tokFalse:
		p.advance()
		return &BoolLit{Val: t.kind == tokTrue, Line: t.line}, nil
	case tokNil:
		p.advance()
		return &NilLit{Line: t.line}, nil
	case tokAlloc:
		p.advance()
		name, err := p.expect(tokIdent, "struct name after alloc")
		if err != nil {
			return nil, err
		}
		return &AllocExpr{TypeName: name.text, Line: t.line}, nil
	case tokIdent:
		if p.peek().kind == tokLParen {
			p.advance()
			p.advance()
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.accept(tokRParen) {
				if len(call.Args) > 0 {
					if _, err := p.expect(tokComma, "','"); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, nil
		}
		p.advance()
		return &Ident{Name: t.text, Line: t.line}, nil
	case tokLParen:
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(t.line, t.col, "expected expression, found %s", t)
}
