package harness

import (
	"testing"

	"repro/tm"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/stamp/all"
)

// forceGeneric returns the profile with the reference barrier engine
// forced, under the same report name.
func forceGeneric(p tm.Profile) tm.Profile {
	return p.With(tm.WithEngine(tm.EngineGeneric)).Named(p.Name())
}

// runEngine drives one full workload lifecycle and returns the final
// address-space fingerprint plus the statistics of the timed phase
// (snapshotted before Validate, whose transactional walking would
// otherwise pollute the counters).
func runEngine(t *testing.T, bench string, p tm.Profile, threads int) (uint64, tm.Stats, string) {
	t.Helper()
	w, err := tm.NewWorkload(bench)
	if err != nil {
		t.Fatal(err)
	}
	rt := tm.Open(append(p.Options(), tm.WithMemory(w.MemConfig()))...)
	w.Setup(rt)
	rt.ResetStats()
	w.Run(rt, threads)
	stats := rt.Stats()
	if err := w.Validate(rt); err != nil {
		t.Fatalf("%s [%s, engine %s, %d threads]: %v", bench, p.Name(), rt.Engine(), threads, err)
	}
	rt.Validate() // no orec may stay locked after the threads joined
	return rt.Unwrap().Space().Checksum(), stats, rt.Engine()
}

// TestEngineEquivalence is the engine-vs-generic differential: every
// registered workload under every named profile must produce a
// bit-identical final state AND identical capture-stat counters with
// the compiled engine vs the forced generic reference chain at one
// thread. A divergence means the specialization dropped or reordered a
// check the profile requires.
func TestEngineEquivalence(t *testing.T) {
	profiles := namedProfiles()
	benches := AllWorkloads()
	if testing.Short() {
		profiles = []tm.Profile{tm.Baseline(), tm.RuntimeAll(tm.LogTree), tm.CompilerElision()}
		benches = []string{"ssca2", "labyrinth", "tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, p := range profiles {
				sum, stats, eng := runEngine(t, bench, p, 1)
				gsum, gstats, geng := runEngine(t, bench, forceGeneric(p), 1)
				if geng != "generic" {
					t.Fatalf("%s: forced engine is %q", p.Name(), geng)
				}
				if sum != gsum {
					t.Errorf("%s: engine %s final state %#x, generic %#x",
						p.Name(), eng, sum, gsum)
				}
				if stats != gstats {
					t.Errorf("%s: engine %s stats diverge from generic:\n  engine:  %+v\n  generic: %+v",
						p.Name(), eng, stats, gstats)
				}
			}
		})
	}
}

// perfProfiles returns the performance builds whose specialized engines
// the equivalence grid must cover (stats are off in perf mode, so these
// compare final state; the instrumented grid above compares counters).
func perfProfiles() []tm.Profile {
	return []tm.Profile{
		tm.Baseline().Perf(),
		tm.RuntimeAll(tm.LogTree).Perf(),
		tm.RuntimeAll(tm.LogArray).Perf(),
		tm.RuntimeAll(tm.LogFilter).Perf(),
		tm.RuntimeWrite(tm.LogTree).Perf(),
		tm.RuntimeHeapWrite(tm.LogTree).Perf(),
		tm.CompilerElision().Perf(),
		tm.CompilerElision().With(
			tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap)).Named("compiler+runtime").Perf(),
		tm.RuntimeAll(tm.LogTree).With(tm.WithSkipSharedChecks()).Named("runtime+skipshared").Perf(),
	}
}

// TestEngineEquivalencePerf repeats the differential for the perf
// builds — the profiles that actually compile to the specialized
// fast-path engines.
func TestEngineEquivalencePerf(t *testing.T) {
	profiles := perfProfiles()
	benches := AllWorkloads()
	if testing.Short() {
		profiles = profiles[:3]
		benches = []string{"ssca2", "tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, p := range profiles {
				sum, _, eng := runEngine(t, bench, p, 1)
				gsum, _, _ := runEngine(t, bench, forceGeneric(p), 1)
				if sum != gsum {
					t.Errorf("%s: engine %s final state %#x, generic %#x",
						p.Name(), eng, sum, gsum)
				}
			}
		})
	}
}

// TestEngineParallelNoLeaks runs a contended slice of the grid at
// several threads under each engine family: final states are
// scheduling-dependent, but validation must pass and no orec lock may
// leak, specialized and generic alike.
func TestEngineParallelNoLeaks(t *testing.T) {
	profiles := []tm.Profile{
		tm.RuntimeAll(tm.LogTree).Perf(),               // specialized fast path
		forceGeneric(tm.RuntimeAll(tm.LogTree).Perf()), // reference chain
		tm.RuntimeAll(tm.LogTree),                      // instrumented (counting) engine
	}
	benches := AllWorkloads()
	if testing.Short() {
		benches = []string{"ssca2", "tmkv"}
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, p := range profiles {
				runEngine(t, bench, p, 4)
			}
		})
	}
}
