// Command stampbench regenerates the performance experiments of the
// paper's evaluation (Sec. 4): Table 1 (abort-to-commit ratios),
// Table 2 (run-to-run variation), Fig. 10 (single-thread improvement),
// and Fig. 11(a)/(b) (16-thread improvement). It is written entirely
// against the public tm / tm/bench API; workloads are resolved through
// the tm registry, so externally registered scenarios work with the
// -bench flag too.
//
// The matrix covers every workload registered in the tm registry: the
// STAMP roster plus the in-tree scenario packs (tmkv, tmmsg) and
// anything an external package registers.
//
// Usage:
//
//	stampbench -experiment list             # registered workloads + descriptions
//	stampbench -experiment fig10            # 1-thread improvements
//	stampbench -experiment fig11a -threads 16
//	stampbench -experiment fig11b -threads 16
//	stampbench -experiment table1 -threads 16
//	stampbench -experiment table2 -threads 16 -runs 5
//	stampbench -experiment capture -bench tmkv   # per-mechanism elision counts
//	stampbench -experiment sweep -bench vacation-low   # machine-sized scaling curves
//	stampbench -experiment sweep -format json -o BENCH_sweep.json
//	stampbench -experiment sweep -bench tmmsg -phases  # A/B phase hints on vs. off
//	stampbench -experiment readmostly -format json -o BENCH_sweep_readmostly.json
//	stampbench -experiment durability -format json -o BENCH_sweep_durability.json
//	stampbench -experiment contention -format json -o BENCH_sweep_contention.json
//
// The sweep, capture, readmostly, durability, and contention experiments accept -format json,
// producing the diffable report of tm/bench.WriteJSON; -o writes it to
// a file (BENCH_*.json in CI) instead of stdout. The -phases toggle adds a
// phase-hinted variant of every sweep profile (publish-shaped
// transactions on the capture-checking engines, cursor-shaped ones on
// the definitely-shared bypass), so a single report carries both sides
// of the A/B for workloads that hint phases (tmmsg).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/tm"
	"repro/tm/bench"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/scenarios/tmmsg"
	_ "repro/internal/stamp/all"
)

func main() {
	exp := flag.String("experiment", "fig10", "list|table1|table2|fig10|fig11a|fig11b|capture|sweep|readmostly|durability|contention")
	threads := flag.Int("threads", 1, "worker threads for the parallel phase")
	runs := flag.Int("runs", 3, "repetitions per data point")
	benchFlag := flag.String("bench", "all", "comma-separated workload names or 'all'")
	format := flag.String("format", "text", "output format: text|json (json: sweep, capture, readmostly)")
	out := flag.String("o", "", "write output to this file instead of stdout")
	threadList := flag.String("threadlist", "", "comma-separated thread counts for -experiment sweep (default: machine-sized)")
	phases := flag.Bool("phases", false, "add phase-hinted variants of every sweep profile (A/B: hints on vs. off)")
	fsync := flag.Bool("fsync", false, "add real-fsync arms to -experiment durability (slow on disks with slow fsync)")
	flag.Parse()

	benches := bench.AllWorkloads()
	if *benchFlag != "all" {
		benches = strings.Split(*benchFlag, ",")
	}

	w := io.Writer(os.Stdout)
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stampbench:", err)
			os.Exit(1)
		}
		outFile = f
		w = f
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "stampbench: unknown format %q\n", *format)
		os.Exit(1)
	}
	jsonExps := map[string]bool{"sweep": true, "capture": true, "readmostly": true, "durability": true, "contention": true}
	if *format == "json" && !jsonExps[*exp] {
		fmt.Fprintf(os.Stderr, "stampbench: -format json supports the sweep, capture, readmostly, durability, and contention experiments, not %q\n", *exp)
		os.Exit(1)
	}

	var err error
	switch *exp {
	case "list":
		// One line per workload with its registered description, so a CI
		// log of the matrix is self-explaining.
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		for _, b := range benches {
			fmt.Fprintf(tw, "%s\t%s\n", b, tm.WorkloadDescription(b))
		}
		tw.Flush()
	case "capture":
		err = capture(w, benches, *format == "json")
	case "table1":
		err = tables(w, benches, *threads, *runs, true)
	case "table2":
		err = tables(w, benches, *threads, *runs, false)
	case "fig10":
		err = improvements(w, benches, bench.Fig10Configs(), 1, *runs,
			"Figure 10: % improvement over baseline at 1 thread")
	case "fig11a":
		err = improvements(w, benches, bench.Fig10Configs(), *threads, *runs,
			fmt.Sprintf("Figure 11(a): %% improvement over baseline at %d threads", *threads))
	case "fig11b":
		err = improvements(w, benches, bench.Fig11bConfigs(), *threads, *runs,
			fmt.Sprintf("Figure 11(b): %% improvement over baseline at %d threads", *threads))
	case "sweep":
		var counts []int
		if counts, err = parseThreadList(*threadList); err == nil {
			err = sweep(w, benches, counts, *runs, *format == "json", *phases)
		}
	case "readmostly":
		var counts []int
		if counts, err = parseThreadList(*threadList); err == nil {
			err = readMostlySweep(w, counts, *runs, *format == "json")
		}
	case "durability":
		db := benches
		if *benchFlag == "all" {
			db = durabilityBenches
		}
		var counts []int
		if counts, err = parseThreadList(*threadList); err == nil {
			err = durabilitySweep(w, db, counts, *runs, *format == "json", *fsync)
		}
	case "contention":
		cb := benches
		if *benchFlag == "all" {
			cb = contentionBenches
		}
		var counts []int
		if counts, err = parseThreadList(*threadList); err == nil {
			err = contentionSweep(w, cb, counts, *runs, *format == "json")
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	// A failed flush at close must fail the run: CI diffs the written
	// report, and a silently truncated artifact would pass as baseline.
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "stampbench:", err)
		os.Exit(1)
	}
}

func parseThreadList(s string) ([]int, error) {
	if s == "" {
		return nil, nil // machine-sized default
	}
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -threadlist entry %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// capture prints the per-mechanism capture/elision table for each
// workload: which barriers the runtime checks, the compiler, and the
// definitely-shared extension removed.
func capture(w io.Writer, benches []string, asJSON bool) error {
	var all []bench.CaptureStat
	for _, b := range benches {
		rows, err := bench.MeasureCaptureStats(b, bench.CaptureConfigs())
		if err != nil {
			return err
		}
		if asJSON {
			all = append(all, rows...)
			continue
		}
		bench.WriteCaptureStats(w, rows)
		fmt.Fprintln(w)
	}
	if asJSON {
		rep := bench.NewReport(nil)
		rep.Capture = all
		return bench.WriteJSON(w, rep)
	}
	return nil
}

// tables prints Table 1 (ratio=true) or Table 2 (ratio=false).
func tables(w io.Writer, benches []string, threads, runs int, ratio bool) error {
	profiles := bench.Table1Configs()
	rows := map[string]map[string]float64{}
	var names []string
	for _, p := range profiles {
		names = append(names, p.Name())
	}
	for _, b := range benches {
		rows[b] = map[string]float64{}
		for _, p := range profiles {
			res, err := bench.Run(b, p, threads, runs)
			if err != nil {
				return err
			}
			if ratio {
				rows[b][p.Name()] = res.Stats.AbortRatio()
			} else {
				rows[b][p.Name()] = res.RelStdDev()
			}
		}
	}
	if ratio {
		bench.WriteTable1(w, rows, names, threads)
	} else {
		bench.WriteTable2(w, rows, names, threads, runs)
	}
	return nil
}

// improvements prints a Fig. 10/11-style improvement table.
func improvements(w io.Writer, benches []string, profiles []tm.Profile, threads, runs int, title string) error {
	rows := map[string]map[string]float64{}
	var names []string
	for _, p := range profiles {
		names = append(names, p.Name())
	}
	for _, b := range benches {
		rows[b] = map[string]float64{}
		// Timing runs use perf mode: no per-access counters, like the
		// paper's performance builds.
		perf := make([]tm.Profile, len(profiles))
		for i, p := range profiles {
			perf[i] = p.Perf()
		}
		results, err := bench.RunMatrix(b, perf, threads, runs)
		if err != nil {
			return err
		}
		for i, p := range profiles[1:] {
			rows[b][p.Name()] = bench.Improvement(results[0], results[i+1])
		}
	}
	bench.WriteImprovements(w, title, rows, names)
	return nil
}

// sweepProfiles are the scaling-curve configurations: the baseline and
// the two headline optimizations, in perf mode like the paper's timing
// builds, so the specialized engines are what gets measured. With
// phases, a hinted variant of each profile is appended: publish-shaped
// transactions map to the capture-checking engines and cursor-shaped
// ones to the definitely-shared bypass, so the report carries the
// hints-on and hints-off rows side by side.
func sweepProfiles(phases bool) []tm.Profile {
	base := []tm.Profile{
		tm.Baseline().Perf(),
		tm.RuntimeAll(tm.LogTree).Perf(),
		tm.CompilerElision().Perf(),
	}
	if !phases {
		return base
	}
	out := base
	for _, p := range base {
		out = append(out, p.With(tm.WithPhases(bench.PhaseRegimeSpecs()...)).Named(p.Name()+"+phases"))
	}
	return out
}

// sweep measures scaling curves over machine-sized thread counts (or
// -threadlist) and writes them as a table or a diffable JSON report.
func sweep(w io.Writer, benches []string, counts []int, runs int, asJSON, phases bool) error {
	var all []bench.Result
	for _, b := range benches {
		results, err := bench.SweepMatrix(b, sweepProfiles(phases), counts, runs)
		if err != nil {
			return err
		}
		all = append(all, results...)
	}
	if asJSON {
		return bench.WriteJSON(w, bench.NewReport(all))
	}
	bench.WriteSweep(w, all)
	return nil
}

// durabilityBenches are the write-heavy scenario packs whose redo
// volume makes durability cost visible; ssca2 adds a STAMP graph build
// whose commit records are large but rare.
var durabilityBenches = []string{"tmkv", "tmmsg", "ssca2"}

// durabilityProfiles are the pay-as-you-go arms: the optimized engine
// with durability off (the baseline to beat) and with the log on but
// unsynced — the pure record-serialization + batched-write cost, which
// is the part the runtime controls. The default arms skip fsync so the
// sweep stays bounded on slow disks; -fsync adds the real group-commit
// arms (immediate and 200µs-lingering cadence), whose cost is
// dominated by the device's fsync latency and whose linger only pays
// off when several threads share each fsync. All durable arms use
// scratch directories so every repetition opens a fresh log.
func durabilityProfiles(fsync bool) []tm.Profile {
	base := tm.RuntimeAll(tm.LogTree).Perf()
	out := []tm.Profile{
		base,
		base.With(tm.WithDurabilityScratch(tm.DurNoFsync())).Named(base.Name() + "+dur-nosync"),
	}
	if fsync {
		out = append(out,
			base.With(tm.WithDurabilityScratch()).Named(base.Name()+"+dur-fsync"),
			base.With(tm.WithDurabilityScratch(tm.DurGroupInterval(200*time.Microsecond))).
				Named(base.Name()+"+dur-fsync-group200us"),
		)
	}
	return out
}

// durabilitySweep measures the durability tier's overhead: throughput
// of the durable arms against the identical non-durable engine, with
// the per-arm log/checkpoint counters (records, batches, fsyncs, bytes)
// carried in each JSON row's durability block.
func durabilitySweep(w io.Writer, benches []string, counts []int, runs int, asJSON, fsync bool) error {
	if len(counts) == 0 {
		counts = []int{1, 4} // uncontended cost and group-commit batching
	}
	var all []bench.Result
	for _, b := range benches {
		results, err := bench.SweepMatrix(b, durabilityProfiles(fsync), counts, runs)
		if err != nil {
			return err
		}
		all = append(all, results...)
	}
	if asJSON {
		return bench.WriteJSON(w, bench.NewReport(all))
	}
	bench.WriteSweep(w, all)
	return nil
}

// contentionBenches are the contended mixes where the manager choice
// is visible: the full message blend, its consumer-dominated variant
// (hot cursor words, the queue manager's target), and the write-heavy
// KV blend (encounter-time write locks held across block copies).
var contentionBenches = []string{"tmmsg", "tmmsg-sub", "tmkv-write"}

// contentionProfiles are the manager arms of the A/B: the optimized
// engine under each runtime-wide contention manager, plus the
// hand-tuned per-phase mix (publish→none, cursor→queue, scan→backoff
// via PhaseRegimeSpecs) and the adaptive arm that must rediscover it
// from epoch abort ratios. All arms compute identical results — the
// cross-manager differential pins that — so the rows differ only in
// how threads wait.
func contentionProfiles() []tm.Profile {
	base := tm.RuntimeAll(tm.LogTree).Perf()
	out := make([]tm.Profile, 0, 5)
	for _, m := range []tm.CM{tm.CMBackoff, tm.CMNone, tm.CMQueue} {
		out = append(out, base.With(tm.WithContention(m)).Named(base.Name()+"+cm"+m))
	}
	return append(out,
		base.With(tm.WithPhases(bench.PhaseRegimeSpecs()...)).Named(base.Name()+"+phases"),
		base.With(tm.WithAdaptive(tm.AdaptiveConfig{})).Named(base.Name()+"+adaptive"),
	)
}

// contentionSweep measures the manager arms over the contended mixes
// at contended thread counts, then adds served open-loop rows —
// srv-tmmsg per manager, unmerged and at width 8 — so the report
// carries both the throughput and the tail-latency face of the same
// policy question. Each row's cm block names the managers in force
// and the wait totals they accumulated.
func contentionSweep(w io.Writer, benches []string, counts []int, runs int, asJSON bool) error {
	if len(counts) == 0 {
		counts = []int{4, 8} // past the core count: waiting policy dominates
	}
	var all []bench.Result
	for _, b := range benches {
		results, err := bench.SweepMatrix(b, contentionProfiles(), counts, runs)
		if err != nil {
			return err
		}
		all = append(all, results...)
	}
	for _, m := range []tm.CM{tm.CMBackoff, tm.CMNone, tm.CMQueue} {
		for _, width := range []int{1, 8} {
			res, err := bench.RunOpenLoop(bench.OpenLoopSpec{
				Backend:    "srv-tmmsg",
				Profile:    tm.RuntimeAll(tm.LogTree).Perf(),
				Workers:    4,
				MergeWidth: width,
				Clients:    8,
				Requests:   4096,
				Seed:       17,
				CM:         m,
			})
			if err != nil {
				return err
			}
			all = append(all, res)
		}
	}
	if asJSON {
		return bench.WriteJSON(w, bench.NewReport(all))
	}
	bench.WriteSweep(w, all)
	bench.WriteLatencyTable(w, all)
	return nil
}

// readMostlyBenches are the read-dominated workloads the read-mostly
// engine targets: the 84%-read KV mix and the backlog-scan-heavy
// message mix. Both drivers hint tm.PhaseScan on their read work, so
// the "+phases" arms of the sweep run those transactions on the
// read-mostly engine while the unphased arms are the status quo to
// beat.
var readMostlyBenches = []string{"tmkv-read", "tmmsg-lag"}

// readMostlySweep is the focused evaluation of the read-mostly barrier
// engine: the standard sweep profiles with and without the canonical
// phase declaration over the read-dominated workloads, plus open-loop
// latency rows for the scan-phased served KV read mix with and without
// the declaration. One report holds both sides of every A/B, so
// benchdiff can gate the engine's win directly.
func readMostlySweep(w io.Writer, counts []int, runs int, asJSON bool) error {
	if len(counts) == 0 {
		counts = []int{1, 4} // the win condition's two contention points
	}
	var all []bench.Result
	for _, b := range readMostlyBenches {
		results, err := bench.SweepMatrix(b, sweepProfiles(true), counts, runs)
		if err != nil {
			return err
		}
		all = append(all, results...)
	}
	// Served side: the same engine question under open-loop load. The
	// srv-tmkv-read backend tags its items with phases, so the Phases
	// arm runs scan-shaped batches on the read-mostly engine while the
	// plain arm commits everything through one engine.
	for _, phased := range []bool{false, true} {
		res, err := bench.RunOpenLoop(bench.OpenLoopSpec{
			Backend:    "srv-tmkv-read",
			Profile:    tm.RuntimeAll(tm.LogTree).Perf(),
			Workers:    2,
			MergeWidth: 8,
			Clients:    4,
			Requests:   4096,
			Seed:       17,
			Phases:     phased,
		})
		if err != nil {
			return err
		}
		all = append(all, res)
	}
	if asJSON {
		return bench.WriteJSON(w, bench.NewReport(all))
	}
	bench.WriteSweep(w, all)
	bench.WriteLatencyTable(w, all)
	return nil
}
