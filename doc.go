// Package repro reproduces "Optimizing Transactions for Captured
// Memory" (Dragojević, Ni, Adl-Tabatabai; SPAA 2009): a software
// transactional memory runtime with runtime and compiler capture
// analysis that elides STM barriers for transaction-local memory, the
// STAMP 0.9.9 benchmark suite it was evaluated on, and the harness
// that regenerates the tables and figures of the paper's evaluation.
//
// Start with package tm — the public API (typed references,
// functional options, and the workload registry) — and tm/bench, the
// experiment harness over it. See README.md for the repository layout
// and a quickstart. The benchmarks in bench_test.go regenerate the
// evaluation:
//
//	go test -bench=. -benchmem
package repro
