package stm

import (
	"sync"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/mem"
)

// --- Compilation and naming ---

// TestCMCompilation pins the manager layer's compile-time surface: the
// default is backoff, per-phase fragments compile their own manager,
// CMFor follows the phase table, and PhaseStats rows carry the name.
func TestCMCompilation(t *testing.T) {
	cfg := Baseline()
	cursor := Baseline()
	cursor.CM = CMQueue
	publish := Baseline()
	publish.CM = CMNone
	cfg.Phases = []PhaseConfig{
		{Kind: "publish", Cfg: publish},
		{Kind: "cursor", Cfg: cursor},
	}
	rt := newRT(cfg)
	if got := rt.CMFor(""); got != CMBackoff {
		t.Errorf("default CM = %q, want backoff", got)
	}
	if got := rt.CMFor("publish"); got != CMNone {
		t.Errorf("publish CM = %q, want none", got)
	}
	if got := rt.CMFor("cursor"); got != CMQueue {
		t.Errorf("cursor CM = %q, want queue", got)
	}
	if got := rt.CMFor("undeclared"); got != CMBackoff {
		t.Errorf("undeclared kind CM = %q, want the default's backoff", got)
	}
	for _, row := range rt.PhaseStats() {
		want := map[string]string{"": CMBackoff, "publish": CMNone, "cursor": CMQueue}[row.Kind]
		if row.CM != want {
			t.Errorf("PhaseStats[%q].CM = %q, want %q", row.Kind, row.CM, want)
		}
	}
	// A runtime-wide manager is inherited as the default phase's.
	q := Baseline()
	q.CM = CMQueue
	qrt := newRT(q)
	if got := qrt.CMFor(""); got != CMQueue {
		t.Errorf("runtime-wide CM = %q, want queue", got)
	}
}

func TestCMValidation(t *testing.T) {
	if !ValidCM("") || !ValidCM(CMBackoff) || !ValidCM(CMNone) || !ValidCM(CMQueue) {
		t.Error("known manager names rejected")
	}
	if ValidCM("spinlock") {
		t.Error("unknown manager name accepted")
	}
	if CMName("") != CMBackoff || CMName(CMQueue) != CMQueue {
		t.Error("CMName normalization wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on an unknown manager")
		}
	}()
	bad := Baseline()
	bad.CM = "spinlock"
	newRT(bad)
}

// --- The wait gates (queue manager park/wake protocol) ---

// TestParkOnWake drives the park protocol directly: a waiter parked on
// a locked orec is woken by the owner's release, and parkOn reports
// whether it actually slept.
func TestParkOnWake(t *testing.T) {
	rt := newRT(Baseline())
	waiter := rt.Thread(2)
	owner := rt.Thread(1)
	const oi = 7

	// Unlocked orec: no park, immediate return.
	if waiter.parkOn(owner.id, oi) {
		t.Error("parkOn parked on an unlocked orec")
	}
	// Locked by a different owner than the one parked on: no park.
	rt.orecs[oi].Store(orecLockWord(3))
	if waiter.parkOn(owner.id, oi) {
		t.Error("parkOn parked on an orec locked by a different owner")
	}

	rt.orecs[oi].Store(orecLockWord(owner.id))
	done := make(chan bool)
	go func() { done <- waiter.parkOn(owner.id, oi) }()
	// Wait until the waiter has published itself (plus a beat for it to
	// reach cond.Wait), then release and wake exactly like commitTop.
	for rt.gates[owner.id].waiters.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	rt.orecs[oi].Store(2 << 1) // unlocked, version 2
	owner.wakeWaiters()
	select {
	case parked := <-done:
		if !parked {
			t.Error("woken waiter reported no park")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never woke")
	}
	if rt.gates[owner.id].waiters.Load() != 0 {
		t.Error("waiter count leaked")
	}
	rt.orecs[oi].Store(0)
}

// TestWakeWithoutUnlock pins the seq half of the protocol: a release
// event (seq bump + Broadcast) wakes the waiter even when the orec it
// parked over still reads locked — the owner may have released a
// *different* record, and the waiter must re-resolve its conflict
// rather than sleep on.
func TestWakeWithoutUnlock(t *testing.T) {
	rt := newRT(Baseline())
	waiter := rt.Thread(2)
	owner := rt.Thread(1)
	const oi = 3
	rt.orecs[oi].Store(orecLockWord(owner.id))
	g := &rt.gates[owner.id]

	done := make(chan bool)
	go func() { done <- waiter.parkOn(owner.id, oi) }()
	for g.waiters.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// The waiter may not have reached cond.Wait yet (a wake landing then
	// is absorbed by the seq check only on the *next* release, which in
	// production always follows because the owner still holds the lock) —
	// so the test, like an owner, keeps issuing release events.
	deadline := time.After(10 * time.Second)
	for {
		owner.wakeWaiters() // orec stays locked; the seq change ends the wait
		select {
		case <-done:
			rt.orecs[oi].Store(0)
			return
		case <-deadline:
			t.Fatal("waiter slept through the release events")
		case <-time.After(time.Millisecond):
		}
	}
}

// TestQueueOwnerlessFallback: a conflict that recorded no owner (or an
// impossible one) falls back to the backoff policy instead of parking.
func TestQueueOwnerlessFallback(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	th.tx.attempts = 2
	for _, owner := range []int32{-1, int32(th.id), int32(len(rt.gates))} {
		before := th.stats.Waits
		th.tx.cmOwner = owner
		cmQueueWait(th, &th.tx)
		if th.stats.Waits != before+1 {
			t.Errorf("owner %d: fallback did not run the backoff wait", owner)
		}
	}
}

// --- Wait accounting and policy behavior under real conflicts ---

// holdOrec starts a transaction on th that locks g and then blocks;
// the returned release function lets it commit (or abort) and waits
// for it to finish.
func holdOrec(t *testing.T, th *Thread, g mem.Addr, abort bool) (locked <-chan struct{}, release func()) {
	t.Helper()
	lockedCh := make(chan struct{})
	releaseCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		th.Atomic(func(tx *Tx) {
			tx.Store(g, 1, AccShared)
			close(lockedCh)
			<-releaseCh
			if abort {
				tx.UserAbort()
			}
		})
	}()
	return lockedCh, func() { close(releaseCh); <-doneCh }
}

// TestQueueParksOnCommit and TestQueueParksOnAbort: a queue-managed
// loser parks on the owner and is woken by the owner's commit (or
// abort) release — counted once in Waits with real time in WaitNs.
func TestQueueParksOnRelease(t *testing.T) {
	for _, abort := range []bool{false, true} {
		name := "commit"
		if abort {
			name = "abort"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Baseline()
			cfg.CM = CMQueue
			rt := newRT(cfg)
			g := rt.Space().AllocGlobal(1)
			holder := rt.Thread(0)
			loser := rt.Thread(1)

			lockedCh, release := holdOrec(t, holder, g, abort)
			<-lockedCh
			done := make(chan struct{})
			go func() {
				defer close(done)
				loser.Atomic(func(tx *Tx) {
					tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
				})
			}()
			// The loser conflicts on the held orec and parks on thread 0's
			// gate; only the holder's release may wake it.
			for rt.gates[holder.id].waiters.Load() == 0 {
				time.Sleep(time.Millisecond)
			}
			release()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("queue-managed loser never woke after the release")
			}
			s := rt.Stats()
			if s.Waits == 0 || s.WaitNs == 0 {
				t.Errorf("Waits=%d WaitNs=%d, want both nonzero", s.Waits, s.WaitNs)
			}
			if s.Aborts == 0 {
				t.Error("the conflict was not counted as an abort")
			}
			rt.Validate()
		})
	}
}

// TestCrossManagerWake: the release side is manager-independent — a
// queue-phase waiter parked on an owner whose own phase compiled the
// none manager is still woken at that owner's release.
func TestCrossManagerWake(t *testing.T) {
	cfg := Baseline()
	cfg.CM = CMNone // the holder's (default-phase) manager
	queue := Baseline()
	queue.CM = CMQueue
	cfg.Phases = []PhaseConfig{{Kind: "cursor", Cfg: queue}}
	rt := newRT(cfg)
	g := rt.Space().AllocGlobal(1)
	holder := rt.Thread(0)
	loser := rt.Thread(1)
	loser.EnterPhase("cursor")

	lockedCh, release := holdOrec(t, holder, g, false)
	<-lockedCh
	done := make(chan struct{})
	go func() {
		defer close(done)
		loser.Atomic(func(tx *Tx) {
			tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
		})
	}()
	for rt.gates[holder.id].waiters.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	release()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cross-manager waiter never woke")
	}
	rt.Validate()
}

// TestNoneEscalates: under the none policy a transaction that keeps
// losing eventually backs off (Waits counted) instead of retrying
// forever at full speed.
func TestNoneEscalates(t *testing.T) {
	cfg := Baseline()
	cfg.CM = CMNone
	rt := newRT(cfg)
	th := rt.Thread(0)
	// Drive the wait hook directly: below the escalation bound it must
	// impose nothing, above it the backoff spin runs and is counted.
	th.tx.cmOwner = -1
	for a := 1; a <= cmNoneEscalateAfter; a++ {
		th.tx.attempts = a
		cmNoneWait(th, &th.tx)
	}
	if th.stats.Waits != 0 {
		t.Fatalf("none imposed %d waits below the escalation bound", th.stats.Waits)
	}
	th.tx.attempts = cmNoneEscalateAfter + 1
	cmNoneWait(th, &th.tx)
	if th.stats.Waits != 1 {
		t.Fatalf("escalation did not engage: Waits=%d", th.stats.Waits)
	}
}

// TestBackoffCountsWaits: the extracted backoff policy accounts its
// spin episodes in the new counters.
func TestBackoffCountsWaits(t *testing.T) {
	rt := newRT(Baseline())
	th := rt.Thread(0)
	th.backoffSpin(3)
	th.backoffSpin(6) // > 4: includes the Gosched path
	if th.stats.Waits != 2 {
		t.Errorf("Waits = %d, want 2", th.stats.Waits)
	}
	if th.stats.WaitNs == 0 {
		t.Error("WaitNs = 0, want > 0")
	}
	if th.backoffSpin(0); th.stats.Waits != 2 {
		t.Error("attempt 0 must impose no wait")
	}
}

// --- Stress: no leaks, exact results, every manager ---

// TestCMStress hammers one shared counter from four threads under each
// manager: the final value must be exact, no orec may leak, and (for
// queue) no waiter may be left parked. Run with -race this is the
// park/wake protocol's data-race pin.
func TestCMStress(t *testing.T) {
	const threads, perThread = 4, 1500
	for _, m := range []string{CMBackoff, CMNone, CMQueue} {
		t.Run(m, func(t *testing.T) {
			cfg := RuntimeAll(capture.KindTree).Perf()
			cfg.CM = m
			rt := newRT(cfg)
			g := rt.Space().AllocGlobal(1)
			var wg sync.WaitGroup
			for tid := 0; tid < threads; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					th := rt.Thread(tid)
					for i := 0; i < perThread; i++ {
						th.Atomic(func(tx *Tx) {
							tx.Store(g, tx.Load(g, AccShared)+1, AccShared)
						})
					}
				}(tid)
			}
			wg.Wait()
			if got := rt.Space().Load(g); got != threads*perThread {
				t.Errorf("counter = %d, want %d", got, threads*perThread)
			}
			for i := range rt.gates {
				if n := rt.gates[i].waiters.Load(); n != 0 {
					t.Errorf("gate %d has %d waiters after join", i, n)
				}
			}
			rt.Validate()
		})
	}
}

// TestCMLivelockSymmetricWriters is the livelock regression pin for
// the none policy: writer pairs whose footprints always collide (two
// globals written in opposite orders) must all complete within a
// bounded attempt budget — the escalation must force them apart.
func TestCMLivelockSymmetricWriters(t *testing.T) {
	const threads, perThread = 2, 800
	cfg := Baseline().Perf()
	cfg.CM = CMNone
	rt := newRT(cfg)
	g := rt.Space().AllocGlobal(2)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			th := rt.Thread(tid)
			a, b := g, g+1
			if tid%2 == 1 {
				a, b = b, a // opposite acquisition order: symmetric conflicts
			}
			for i := 0; i < perThread; i++ {
				th.Atomic(func(tx *Tx) {
					tx.Store(a, tx.Load(a, AccShared)+1, AccShared)
					tx.Store(b, tx.Load(b, AccShared)+1, AccShared)
				})
			}
		}(tid)
	}
	wg.Wait()
	if got := rt.Space().Load(g); got != threads*perThread {
		t.Errorf("counter = %d, want %d", got, threads*perThread)
	}
	s := rt.Stats()
	// The budget: with escalation engaged the average cost of a commit
	// is bounded; 50 aborts per commit is an order of magnitude above
	// anything observed and an order below livelock.
	if ratio := s.AbortRatio(); ratio > 50 {
		t.Errorf("abort ratio %.1f exceeds the livelock budget", ratio)
	}
	rt.Validate()
}

// --- Adaptive manager selection ---

// TestAdaptiveCMSelection: the epoch sampler moves a kind's manager
// from its own abort-ratio delta — a conflict-free kind onto none, a
// hot kind onto queue — while manual phase declarations stay put.
func TestAdaptiveCMSelection(t *testing.T) {
	const epoch = 8
	rt := newRT(adaptiveCfg(epoch))
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(1)

	// Single-threaded publish work: zero aborts, so the manager must
	// settle on none (abort ratio 0 ≤ CMNonePct).
	th.EnterPhase("publish")
	for i := 0; i < 3*epoch; i++ {
		runCaptured(th, g)
	}
	if got := rt.CMFor("publish"); got != CMNone {
		t.Errorf("conflict-free publish CM = %q, want none", got)
	}
	for _, sel := range rt.AdaptiveSelections() {
		if sel.Kind == "publish" && sel.CM != CMNone {
			t.Errorf("AdaptiveSelections publish CM = %q, want none", sel.CM)
		}
	}

	// A hot cursor epoch, staged deterministically: the loser commits
	// most of an epoch conflict-free, then runs its last transaction
	// against a held lock — at least one abort in an epoch of `epoch`
	// commits puts the ratio at 1/epoch = 0.125... so use a tighter
	// window: with epoch 8, a handful of retries against the held lock
	// crosses CMQueuePct comfortably (each retry is one abort).
	loser := rt.Thread(1)
	loser.EnterPhase("cursor")
	for i := 0; i < epoch-1; i++ {
		runShared(loser, g)
	}
	holder := rt.Thread(2)
	lockedCh, release := holdOrec(t, holder, g, false)
	<-lockedCh
	done := make(chan struct{})
	go func() {
		defer close(done)
		runShared(loser, g) // conflicts (and aborts) until the release
	}()
	time.Sleep(20 * time.Millisecond) // let several abort-retry rounds land
	release()
	<-done
	runShared(loser, g) // next boundary closes the epoch and decides
	if got := rt.CMFor("cursor"); got != CMQueue {
		t.Errorf("hot cursor CM = %q, want queue", got)
	}
	rt.Validate()
}

// TestAdaptiveCMThresholdValidation pins the new knob validation.
func TestAdaptiveCMThresholdValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on CMNonePct >= CMQueuePct")
		}
	}()
	cfg := adaptiveCfg(8)
	cfg.Adaptive.CMQueuePct = 0.1
	cfg.Adaptive.CMNonePct = 0.2
	newRT(cfg)
}
