package stm

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/mem"
	"repro/internal/wal"
)

// openDurableRT builds a small durable runtime whose log lands in a
// temp directory; the caller drives transactions, kills the log, and
// inspects the emitted records with readLog.
func openDurableRT(t *testing.T, cfg OptConfig) (*Runtime, *wal.Log, string) {
	t.Helper()
	dir := t.TempDir()
	log, err := wal.OpenLog(dir, 0, 0, wal.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rt := New(mem.Config{GlobalWords: 256, HeapWords: 1 << 16, StackWords: 256, MaxThreads: 4}, cfg)
	rt.SetDurable(log)
	return rt, log, dir
}

// readLog kills the log and decodes every record from the segment files
// in order.
func readLog(t *testing.T, log *wal.Log, dir string) []wal.Record {
	t.Helper()
	log.Kill()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	var recs []wal.Record
	for _, seg := range segs {
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		b = b[16:] // segment header
		for len(b) > 0 {
			var rec wal.Record
			n, err := wal.DecodeRecord(b, &rec)
			if err != nil {
				t.Fatalf("decoding %s: %v", seg, err)
			}
			recs = append(recs, rec)
			b = b[n:]
		}
	}
	return recs
}

// spanValue returns the logged value for addr in rec, reporting whether
// any span covers it.
func spanValue(rec *wal.Record, addr uint64) (uint64, bool) {
	for _, sp := range rec.Spans {
		if addr >= sp.Addr && addr < sp.Addr+uint64(len(sp.Vals)) {
			return sp.Vals[addr-sp.Addr], true
		}
	}
	return 0, false
}

func TestDurableCommitRecord(t *testing.T) {
	rt, log, dir := openDurableRT(t, OptConfig{Name: "t"})
	a := rt.Space().AllocGlobal(1)
	th := rt.Thread(0)
	th.Atomic(func(tx *Tx) { tx.Store(a, 42, AccShared) })
	recs := readLog(t, log, dir)
	if len(recs) != 1 || recs[0].Kind != wal.KindCommit {
		t.Fatalf("records = %+v, want one commit", recs)
	}
	if v, ok := spanValue(&recs[0], uint64(a)); !ok || v != 42 {
		t.Fatalf("commit record value at %d = %d,%v, want 42", a, v, ok)
	}
	if recs[0].Version == 0 {
		t.Fatal("commit record carries no version")
	}
}

func TestDurableUserAbortRecord(t *testing.T) {
	rt, log, dir := openDurableRT(t, OptConfig{Name: "t"})
	a := rt.Space().AllocGlobal(1)
	rt.Space().Store(a, 7)
	th := rt.Thread(0)
	if th.Atomic(func(tx *Tx) {
		tx.Store(a, 99, AccShared)
		tx.UserAbort()
	}) {
		t.Fatal("user abort reported as commit")
	}
	recs := readLog(t, log, dir)
	if len(recs) != 1 || recs[0].Kind != wal.KindAbort {
		t.Fatalf("records = %+v, want one abort", recs)
	}
	if v, ok := spanValue(&recs[0], uint64(a)); !ok || v != 7 {
		t.Fatalf("abort record value at %d = %d,%v, want restored 7", a, v, ok)
	}
}

// TestDurableNestedAbortRecord: a nested partial abort must emit its
// replayed undo range as its own record before the scope's orecs are
// released — otherwise a foreign commit could take a log position
// between the release and the top-level record and be overwritten at
// replay.
func TestDurableNestedAbortRecord(t *testing.T) {
	rt, log, dir := openDurableRT(t, OptConfig{Name: "t"})
	a := rt.Space().AllocGlobal(2)
	b := a + 1
	rt.Space().Store(b, 5)
	th := rt.Thread(0)
	th.Atomic(func(tx *Tx) {
		tx.Store(a, 1, AccShared)
		th.Atomic(func(ntx *Tx) {
			ntx.Store(b, 6, AccShared)
			ntx.UserAbort()
		})
	})
	recs := readLog(t, log, dir)
	if len(recs) != 2 {
		t.Fatalf("records = %+v, want nested abort then commit", recs)
	}
	if recs[0].Kind != wal.KindAbort || recs[1].Kind != wal.KindCommit {
		t.Fatalf("record kinds = %v, %v, want abort then commit", recs[0].Kind, recs[1].Kind)
	}
	if recs[0].Seq >= recs[1].Seq {
		t.Fatalf("nested abort seq %d not before commit seq %d", recs[0].Seq, recs[1].Seq)
	}
	if v, ok := spanValue(&recs[0], uint64(b)); !ok || v != 5 {
		t.Fatalf("nested abort value at %d = %d,%v, want restored 5", b, v, ok)
	}
	if v, ok := spanValue(&recs[1], uint64(a)); !ok || v != 1 {
		t.Fatalf("commit value at %d = %d,%v, want 1", a, v, ok)
	}
}

// TestDurableCapturedOnlyCommit: a transaction whose only effects are
// captured (a fresh allocation, no shared stores) acquires no orecs but
// still changes checksum-visible memory, so it must emit a commit
// record covering the allocation block.
func TestDurableCapturedOnlyCommit(t *testing.T) {
	rt, log, dir := openDurableRT(t, OptConfig{Name: "t"})
	th := rt.Thread(0)
	var p mem.Addr
	th.Atomic(func(tx *Tx) {
		p = tx.Alloc(4)
		tx.Store(p, 11, AccFresh)
	})
	recs := readLog(t, log, dir)
	if len(recs) != 1 || recs[0].Kind != wal.KindCommit {
		t.Fatalf("records = %+v, want one commit", recs)
	}
	if v, ok := spanValue(&recs[0], uint64(p)); !ok || v != 11 {
		t.Fatalf("captured store at %d = %d,%v, want 11", p, v, ok)
	}
	if _, ok := spanValue(&recs[0], uint64(p-1)); !ok {
		t.Fatalf("allocation header %d not covered by commit record", p-1)
	}
}

// TestDurableReadOnlyNoRecord: a read-only transaction changes nothing
// and must stay record-free (pay-as-you-go within the durable tier).
func TestDurableReadOnlyNoRecord(t *testing.T) {
	rt, log, dir := openDurableRT(t, OptConfig{Name: "t"})
	a := rt.Space().AllocGlobal(1)
	th := rt.Thread(0)
	th.Atomic(func(tx *Tx) { _ = tx.Load(a, AccShared) })
	if recs := readLog(t, log, dir); len(recs) != 0 {
		t.Fatalf("read-only transaction emitted records: %+v", recs)
	}
}

// TestDurableNonTxJournal: the journaled non-transactional operations
// each emit an eager KindNonTx record with the space's current content.
func TestDurableNonTxJournal(t *testing.T) {
	rt, log, dir := openDurableRT(t, OptConfig{Name: "t"})
	a := rt.Space().AllocGlobal(1)
	th := rt.Thread(0)
	th.Store(a, 13)
	p := th.Alloc(3)
	frame, mark := th.StackPush(2)
	th.StackPop(mark)
	th.Free(p)
	recs := readLog(t, log, dir)
	if len(recs) != 3 {
		t.Fatalf("records = %+v, want store, alloc, and push journals", recs)
	}
	for i, rec := range recs {
		if rec.Kind != wal.KindNonTx {
			t.Fatalf("record %d kind = %v, want nontx", i, rec.Kind)
		}
	}
	if v, ok := spanValue(&recs[0], uint64(a)); !ok || v != 13 {
		t.Fatalf("store journal at %d = %d,%v, want 13", a, v, ok)
	}
	if _, ok := spanValue(&recs[1], uint64(p-1)); !ok {
		t.Fatalf("alloc journal does not cover header %d", p-1)
	}
	if _, ok := spanValue(&recs[2], uint64(frame)); !ok {
		t.Fatalf("stack journal does not cover frame %d", frame)
	}
}

// TestNonDurableEmitsNothing: without SetDurable the same operations
// write no log anywhere (the option-off commit path is unchanged).
func TestNonDurableEmitsNothing(t *testing.T) {
	rt := New(mem.Config{GlobalWords: 256, HeapWords: 1 << 16, StackWords: 256, MaxThreads: 4}, OptConfig{Name: "t"})
	a := rt.Space().AllocGlobal(1)
	th := rt.Thread(0)
	th.Store(a, 1)
	th.Atomic(func(tx *Tx) { tx.Store(a, 2, AccShared) })
	if rt.Durable() != nil {
		t.Fatal("runtime reports durable without SetDurable")
	}
}
