package genome

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/stm"
)

func small() Config { return Config{Name: "genome-test", GeneLen: 512, Coverage: 3, Seed: 5} }

func runOne(t *testing.T, cfg Config, opt stm.OptConfig, threads int) (*B, *stm.Runtime) {
	t.Helper()
	b := NewWith(cfg)
	rt := stm.New(b.MemConfig(), opt)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("validate: %v", err)
	}
	rt.Validate()
	return b, rt
}

func TestSerialReconstruction(t *testing.T) {
	b, rt := runOne(t, small(), stm.Baseline(), 1)
	// Every position yields a unique segment at this scale.
	if got, want := len(b.entries), b.nSegments(); got != want {
		t.Errorf("unique segments = %d, want %d", got, want)
	}
	s := rt.Stats()
	// Coverage-fold duplication: most phase-1 inserts are duplicates
	// whose speculative entry allocation is freed in place.
	if s.TxFrees == 0 {
		t.Error("no duplicate segments were freed")
	}
}

func TestParallelReconstruction(t *testing.T) {
	for _, opt := range []stm.OptConfig{stm.Baseline(), stm.RuntimeAll(capture.KindFilter), stm.Compiler()} {
		runOne(t, small(), opt, 6)
	}
}

func TestSegmentPacking(t *testing.T) {
	b := NewWith(small())
	b.gene = make([]byte, 64)
	for i := range b.gene {
		b.gene[i] = byte(i % 4)
	}
	// suffix(seg_i) must equal prefix(seg_{i+1}) by construction.
	for pos := 0; pos+segLen < len(b.gene); pos++ {
		if suffix(b.segWord(pos)) != prefix(b.segWord(pos+1)) {
			t.Fatalf("overlap broken at pos %d", pos)
		}
	}
}

func TestDeterminism(t *testing.T) {
	b1 := NewWith(small())
	b2 := NewWith(small())
	rt1 := stm.New(b1.MemConfig(), stm.Baseline())
	rt2 := stm.New(b2.MemConfig(), stm.Baseline())
	b1.Setup(rt1)
	b2.Setup(rt2)
	if len(b1.instances) != len(b2.instances) {
		t.Fatal("instance counts differ")
	}
	for i := range b1.instances {
		if b1.instances[i] != b2.instances[i] {
			t.Fatal("instance shuffle not deterministic")
		}
	}
}
