package stm

import "repro/internal/capture"

// Prov is the static provenance of the address operand of a memory
// access — the fact an intraprocedural pointer analysis with inlining
// (the paper's Sec. 3.2 compiler analysis) derives for the access
// site. Workloads written directly in Go pass the provenance the
// analysis would compute; the TL compiler (internal/tlc) computes it
// automatically from source and feeds the same decision procedure.
type Prov uint8

const (
	// ProvUnknown: the analysis cannot prove the address
	// transaction-local (e.g. it was loaded from shared memory or
	// reached the function through an unanalyzed call). The compiler
	// must keep the barrier.
	ProvUnknown Prov = iota
	// ProvFresh: the address derives directly from an allocation made
	// in the current transaction in the same (post-inlining) function
	// body — the easy intraprocedural case.
	ProvFresh
	// ProvLocal: the address points into a structure the analysis
	// proved transaction-local after inlining (e.g. a node reached
	// from a container that was allocated and populated entirely
	// inside the transaction).
	ProvLocal
	// ProvStack: the address of a stack variable declared inside the
	// atomic block (dead on abort, invisible to other threads).
	ProvStack
	// ProvShared: the analysis proved the access *definitely* targets
	// shared memory (e.g. a global that is never transaction-local),
	// so runtime capture checks on it are pure overhead. This is the
	// paper's future-work direction ("identify memory accesses that
	// definitely require STM barriers and avoid runtime checks trying
	// to elide them"), implemented here as an extension.
	ProvShared
)

// String names the provenance for reports.
func (p Prov) String() string {
	switch p {
	case ProvUnknown:
		return "unknown"
	case ProvFresh:
		return "fresh"
	case ProvLocal:
		return "local"
	case ProvStack:
		return "stack"
	case ProvShared:
		return "shared"
	}
	return "invalid"
}

// StaticElide is the compiler's decision procedure: a barrier is
// statically elidable exactly when provenance proves the location
// captured. It is conservative — ProvUnknown and ProvShared keep the
// barrier.
func StaticElide(p Prov) bool { return p != ProvUnknown && p != ProvShared }

// Acc describes one memory access site to the barrier: the static
// provenance of its address and whether the original (hand-
// instrumented) STAMP program marked this access with a TM_SHARED_*
// macro. Manual is the paper's estimate of *required* barriers
// (Sec. 4.1); accesses that the STM compiler instruments beyond the
// manual set are over-instrumentation.
type Acc struct {
	Prov   Prov
	Manual bool
}

// Canonical access descriptors used throughout the workloads.
var (
	// AccShared: hand-instrumented shared access (STAMP TM_SHARED_*).
	// Hand instrumentation is the programmer asserting the access is
	// shared, which the definitely-shared extension exploits.
	AccShared = Acc{Prov: ProvShared, Manual: true}
	// AccAuto: access the naive compiler instruments but the original
	// program performed plainly (e.g. inside a P_* library variant).
	AccAuto = Acc{Prov: ProvUnknown, Manual: false}
	// AccFresh: provably captured; address from an allocation in the
	// same transaction and function.
	AccFresh = Acc{Prov: ProvFresh, Manual: false}
	// AccLocal: provably captured after inlining.
	AccLocal = Acc{Prov: ProvLocal, Manual: false}
	// AccStack: stack local declared inside the atomic block.
	AccStack = Acc{Prov: ProvStack, Manual: false}
)

// BarrierOpt selects which runtime capture checks a barrier performs.
type BarrierOpt struct {
	// Stack enables the transaction-local stack range check (Fig. 4).
	Stack bool
	// Heap enables the allocation-log search (Sec. 3.1.2).
	Heap bool
}

// OptConfig selects one optimization configuration from the paper's
// evaluation (Sec. 4). The zero value is the unoptimized baseline.
type OptConfig struct {
	// Name labels the configuration in reports.
	Name string

	// Read and Write enable runtime capture analysis in read and
	// write barriers respectively. The paper's three runtime
	// configurations (Fig. 10) are: both R+W stack+heap; W-only
	// stack+heap; W-only heap-only.
	Read  BarrierOpt
	Write BarrierOpt

	// LogKind picks the allocation-log implementation used by runtime
	// capture analysis (tree, array, filter).
	LogKind capture.Kind
	// ArrayCap overrides the range-array capacity (0 = default).
	ArrayCap int
	// FilterBits overrides the filter size (0 = default).
	FilterBits int

	// Compiler enables static elision: accesses whose provenance
	// proves capture use plain loads/stores with no runtime cost.
	Compiler bool

	// Annotations enables the thread-local/read-only data logs behind
	// addPrivateMemoryBlock/removePrivateMemoryBlock (Sec. 3.1.3).
	Annotations bool

	// NoWAWFilter disables the baseline's cheap write-after-write
	// filtering (on by default; its presence explains yada, Sec. 4.2).
	NoWAWFilter bool

	// Counting additionally classifies every barrier with a precise
	// tree log and stack check without changing execution, to
	// regenerate the Fig. 8 breakdown.
	Counting bool

	// OrecBits overrides the ownership-record table size
	// (1<<OrecBits entries; 0 = default). Used by the false-conflict
	// ablation.
	OrecBits int

	// PerfMode drops the per-access statistics counters from the
	// barriers, like the paper's performance builds (commit/abort
	// counts are kept). Used for the Fig. 10/11 timing runs.
	PerfMode bool

	// VerifyElision panics if a statically elided access turns out not
	// to be captured — the soundness oracle for the TL compiler's
	// capture analysis. Requires Counting (for the precise log).
	VerifyElision bool

	// SkipSharedChecks implements the paper's future-work extension:
	// accesses the compiler proved *definitely shared* (ProvShared)
	// bypass the runtime capture checks and go straight to the full
	// barrier, removing check overhead where elision cannot happen.
	SkipSharedChecks bool

	// ReadMostly compiles the read-mostly engine family (engine.go):
	// captured reads keep the profile's elisions, full-barrier reads
	// are validated against the attempt's snapshot at read time and
	// never logged (no read set), stores to captured memory stay plain
	// stores, and the first store that needs the full write barrier
	// triggers a one-time in-flight upgrade onto the full engine
	// compiled from the same profile (minus this knob) — or, when
	// writers have committed past the snapshot, a restart of the
	// attempt on that engine. A transaction that never upgrades never
	// touches the read set, write log, undo log, or lockedPrev map,
	// and commits without a validation loop or clock bump. The
	// write-side capture dispatch still honors Write/Compiler, so
	// incidental captured stores (stack probe keys, scan scratch) do
	// not force the upgrade. Ignored under the Counting/VerifyElision
	// debug oracles, whose instrumented chains are ground truth.
	ReadMostly bool

	// CM names the contention manager compiled for this configuration
	// (cm.go): "backoff" (the default; "" selects it), "none", or
	// "queue". Like the barrier engine it is compiled per phase, so a
	// profile can give each regime its own conflict-resolution policy.
	// Managers are perf-only — they change when a lost attempt retries,
	// never what it computes.
	CM string

	// ForceGeneric forces the generic reference barrier engine instead
	// of the specialized engine the profile would compile to. It is a
	// debug/differential-testing knob (tm.WithEngine): the specialized
	// engines must be observationally identical to the generic chain.
	// It applies to every declared phase, not just the default one.
	ForceGeneric bool

	// Phases declares named workload phases, each compiled to its own
	// barrier engine (phase.go). Threads switch between the compiled
	// engines with Thread.EnterPhase; switches only take effect between
	// transactions. An empty slice is the classic one-engine runtime.
	Phases []PhaseConfig

	// Adaptive enables online engine selection for phase kinds the
	// workload hints but the profile does not declare (adaptive.go):
	// each listed kind is epoch-sampled on an instrumented probe engine
	// and promoted to the capture-checking fast path or the
	// definitely-shared bypass from what the sample shows. Kinds also
	// present in Phases keep their manual declaration.
	Adaptive AdaptiveConfig
}

// AdaptiveConfig tunes the online engine selection of adaptive.go.
// Zero knobs select the package defaults (DefaultAdaptive*).
type AdaptiveConfig struct {
	// Enabled turns adaptation on for Kinds.
	Enabled bool
	// Kinds lists the phase kinds to adapt (must be non-empty when
	// Enabled; kinds declared in OptConfig.Phases are skipped — the
	// manual declaration is ground truth).
	Kinds []string
	// Epoch is the sampling window: completed top-level transactions
	// (commits + user aborts) per thread between decisions.
	Epoch int
	// ProbeEvery schedules a re-probe after this many consecutive fast
	// epochs, so drifting workloads are re-measured.
	ProbeEvery int
	// PromotePct and DemotePct bound the captured-access share: a probe
	// epoch at or above PromotePct selects the capture-checking variant,
	// at or below DemotePct the definitely-shared bypass; in between the
	// kind stays on the instrumented probe.
	PromotePct float64
	DemotePct  float64
	// RegressPct demotes a fast variant back to the probe when an
	// epoch's abort ratio exceeds the probe baseline by more than this.
	RegressPct float64
	// ReadMostlyPct bounds the share of accesses that are *shared*
	// writes (writes the capture classification could not prove
	// captured): a probe epoch at or below it — and below PromotePct
	// captured share — selects the read-mostly variant, whose loads
	// skip the capture checks entirely and whose write machinery
	// materializes only on an in-flight upgrade.
	ReadMostlyPct float64
	// UpgradePct demotes the read-mostly variant back to the probe when
	// an epoch's first-store upgrades per commit exceed it — the regime
	// has started writing shared data and the upgrade toll is real.
	UpgradePct float64
	// CMQueuePct and CMNonePct bound the contention-manager selection,
	// decided from every epoch's abort ratio alongside the engine
	// choice: at or above CMQueuePct the kind parks on conflicting
	// owners (queue), at or below CMNonePct it retries immediately
	// (none), in between it keeps the backoff default. Kinds declared
	// in OptConfig.Phases keep their declared manager.
	CMQueuePct float64
	CMNonePct  float64
}

// PhaseConfig binds a phase kind to the full optimization configuration
// its barrier engine compiles from. The tm layer builds these by
// overlaying per-phase option fragments on the runtime's base
// configuration; structural fields (OrecBits) and the engine-force knob
// are inherited from the base at compile time regardless of what the
// fragment says.
type PhaseConfig struct {
	Kind string
	Cfg  OptConfig
}

// Perf returns a copy of the configuration with PerfMode enabled.
func (c OptConfig) Perf() OptConfig {
	c.PerfMode = true
	return c
}

// Baseline returns the unoptimized configuration (full barriers,
// write-after-write filtering on, as in the paper's baseline).
func Baseline() OptConfig {
	return OptConfig{Name: "baseline"}
}

// CountingConfig returns the baseline plus Fig. 8 classification
// counters.
func CountingConfig() OptConfig {
	return OptConfig{Name: "counting", Counting: true}
}

// RuntimeAll returns runtime capture analysis for both transaction-
// local stack and heap in both read and write barriers.
func RuntimeAll(k capture.Kind) OptConfig {
	return OptConfig{
		Name:    "runtime-rw-stack-heap-" + k.String(),
		Read:    BarrierOpt{Stack: true, Heap: true},
		Write:   BarrierOpt{Stack: true, Heap: true},
		LogKind: k,
	}
}

// RuntimeWrite returns runtime capture analysis for stack and heap in
// write barriers only.
func RuntimeWrite(k capture.Kind) OptConfig {
	return OptConfig{
		Name:    "runtime-w-stack-heap-" + k.String(),
		Write:   BarrierOpt{Stack: true, Heap: true},
		LogKind: k,
	}
}

// RuntimeHeapWrite returns runtime capture analysis for heap accesses
// in write barriers only (the configuration of Fig. 11b).
func RuntimeHeapWrite(k capture.Kind) OptConfig {
	return OptConfig{
		Name:    "runtime-w-heap-" + k.String(),
		Write:   BarrierOpt{Heap: true},
		LogKind: k,
	}
}

// Compiler returns the compiler-optimization configuration: static
// elision only, no runtime checks.
func Compiler() OptConfig {
	return OptConfig{Name: "compiler", Compiler: true}
}

// runtimeChecksEnabled reports whether any runtime capture check is on.
func (c OptConfig) runtimeChecksEnabled() bool {
	return c.Read.Stack || c.Read.Heap || c.Write.Stack || c.Write.Heap || c.Annotations
}
