package tmmsg

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/stm"
	"repro/internal/txlib"
	"repro/tm"
)

// runOnce drives one full workload lifecycle and fails on any
// validation error or leaked orec lock.
func runOnce(t *testing.T, cfg Config, p tm.Profile, threads int) (*B, *tm.Runtime) {
	t.Helper()
	b := New(cfg)
	rt := tm.Open(append(p.Options(), tm.WithMemory(b.MemConfig()))...)
	b.Setup(rt)
	rt.ResetStats() // counters cover the timed phase only, as in the harness
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("%s [%s, %d threads]: %v", cfg.Name, p.Name(), threads, err)
	}
	rt.Validate()
	return b, rt
}

func TestRegisteredVariants(t *testing.T) {
	for _, name := range []string{"tmmsg", "tmmsg-pub", "tmmsg-sub"} {
		w, err := tm.NewWorkload(name)
		if err != nil {
			t.Fatalf("registry: %v", err)
		}
		if w.Name() != name {
			t.Errorf("workload %q reports name %q", name, w.Name())
		}
		if tm.WorkloadDescription(name) == "" {
			t.Errorf("workload %q registered without a description", name)
		}
	}
}

func TestMixSumsValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad mix did not panic")
		}
	}()
	cfg := Small()
	cfg.PublishPct += 5
	New(cfg)
}

func TestRunAndValidateSingleThread(t *testing.T) {
	b, _ := runOnce(t, Small(), tm.Baseline(), 1)
	var effects uint64
	for i := range b.perTh {
		st := &b.perTh[i]
		effects += st.batches + st.consumes + st.acks + st.lags + st.misses
	}
	if effects != uint64(b.cfg.Ops) {
		t.Errorf("accounted %d ops, want %d", effects, b.cfg.Ops)
	}
}

// TestRetentionDropsAndSkips forces the retention machinery: a tiny
// ring under a publish-heavy mix must drop old messages, and consumers
// chasing those topics must take cursor-reset skips.
func TestRetentionDropsAndSkips(t *testing.T) {
	cfg := Small()
	cfg.Name = "tmmsg-tiny-ring"
	cfg.Topics = 8
	cfg.RingCap = 4
	cfg.PreloadMsgs = 4
	cfg.PublishPct, cfg.ConsumePct, cfg.AckPct, cfg.LagPct = 60, 30, 5, 5
	b, _ := runOnce(t, cfg, tm.Baseline(), 1)
	var drops, skipped uint64
	for i := range b.perTh {
		drops += b.perTh[i].drops
		skipped += b.perTh[i].skipped
	}
	if drops == 0 {
		t.Error("tiny ring dropped nothing: retention path never ran")
	}
	if skipped == 0 {
		t.Error("no consumer cursor ever reset: skip path never ran")
	}
}

// TestCursorReconciliation is the headline broker property, asserted
// directly from the final state rather than through Validate's
// counters: for every (topic, group), consumed (acked + in-flight) +
// skipped + remaining == published.
func TestCursorReconciliation(t *testing.T) {
	cfg := Small()
	cfg.Ops = 2048
	for _, threads := range []int{1, 4} {
		b, rt := runOnce(t, cfg, tm.Baseline(), threads)
		th := rt.Unwrap().Thread(0)
		var tps []mem.Addr
		th.Atomic(func(tx *stm.Tx) {
			tps = tps[:0] // retry-safe
			txlib.HTForEach(tx, b.broker.index, txlib.TM, func(_ mem.Addr, _ int, data uint64) bool {
				tps = append(tps, mem.Addr(data))
				return true
			})
		})
		if len(tps) != cfg.Topics {
			t.Fatalf("%d threads: walked %d topics, want %d", threads, len(tps), cfg.Topics)
		}
		for ti, tp := range tps {
			tp := tp
			th.Atomic(func(tx *stm.Tx) {
				head := tx.Load(tp+tpHead, txlib.TM)
				for gi := 0; gi < b.cfg.Groups; gi++ {
					g := group(tx, tp, gi)
					consumed := tx.Load(g+grAcked, txlib.TM) + tx.Load(g+grInflight, txlib.TM)
					skipped := tx.Load(g+grSkipped, txlib.TM)
					remaining := head - tx.Load(g+grCursor, txlib.TM)
					if consumed+skipped+remaining != head {
						t.Errorf("%d threads, topic %d group %d: consumed %d + skipped %d + remaining %d != published %d",
							threads, ti, gi, consumed, skipped, remaining, head)
					}
				}
			})
		}
	}
}

// TestConcurrentStress is the short multi-goroutine stress run the
// race CI job leans on: several workers churn one broker, then the
// full cross-view validation must still hold.
func TestConcurrentStress(t *testing.T) {
	cfg := Small()
	cfg.Ops = 2048
	for _, threads := range []int{2, 4} {
		runOnce(t, cfg, tm.Baseline(), threads)
		runOnce(t, cfg, tm.RuntimeAll(tm.LogTree), threads)
	}
}

// TestDeterministicSingleThread runs the same configuration twice and
// compares full address-space checksums: the scenario must be
// bit-for-bit reproducible at one thread.
func TestDeterministicSingleThread(t *testing.T) {
	_, rt1 := runOnce(t, Small(), tm.Baseline(), 1)
	_, rt2 := runOnce(t, Small(), tm.Baseline(), 1)
	c1 := rt1.Unwrap().Space().Checksum()
	c2 := rt2.Unwrap().Space().Checksum()
	if c1 != c2 {
		t.Errorf("two identical runs left different spaces: %#x vs %#x", c1, c2)
	}
}

// TestElisionClaimsSound runs the soundness oracle: every statically
// elided access must genuinely be captured, or WithVerifyElision
// panics. This guards the provenance annotations on the whole broker.
func TestElisionClaimsSound(t *testing.T) {
	p := tm.CompilerElision().With(tm.WithVerifyElision())
	runOnce(t, Small(), p, 1)
	runOnce(t, Small(), p, 2)
}

// pubOnly is a batch-publish-only mix; subOnly is a consume/ack-only
// mix over preloaded topics. Together they isolate the scenario's two
// capture regimes.
func pubOnly() Config {
	cfg := Small()
	cfg.Name = "tmmsg-pubonly"
	cfg.PublishPct, cfg.ConsumePct, cfg.AckPct, cfg.LagPct = 100, 0, 0, 0
	return cfg
}

func subOnly() Config {
	cfg := Small()
	cfg.Name = "tmmsg-subonly"
	cfg.PublishPct, cfg.ConsumePct, cfg.AckPct, cfg.LagPct = 0, 60, 30, 10
	cfg.PreloadMsgs = cfg.RingCap // start with full rings to consume
	return cfg
}

// TestCaptureRegimesSeparate is the acceptance property of this
// scenario: the publish path must light up both elision mechanisms
// (captured-heap runtime checks and static provenance), while the
// cursor path — which allocates nothing — must show exactly zero
// captured-heap elisions and a far smaller elided fraction overall.
func TestCaptureRegimesSeparate(t *testing.T) {
	elidedFraction := func(s tm.Stats) float64 {
		total := s.ReadTotal + s.WriteTotal
		if total == 0 {
			return 0
		}
		return float64(s.ReadElided()+s.WriteElided()) / float64(total)
	}

	_, rt := runOnce(t, pubOnly(), tm.RuntimeAll(tm.LogTree), 1)
	pub := rt.Stats()
	if pub.ReadElHeap == 0 || pub.WriteElHeap == 0 {
		t.Errorf("publish path elided no captured-heap barriers: reads %d, writes %d",
			pub.ReadElHeap, pub.WriteElHeap)
	}
	if pub.ReadElStack == 0 || pub.WriteElStack == 0 {
		t.Errorf("publish path elided no captured-stack barriers: reads %d, writes %d",
			pub.ReadElStack, pub.WriteElStack)
	}

	_, rt = runOnce(t, pubOnly(), tm.CompilerElision(), 1)
	pubStatic := rt.Stats()
	if pubStatic.ReadElStatic == 0 || pubStatic.WriteElStatic == 0 {
		t.Errorf("publish path elided no barriers statically: reads %d, writes %d",
			pubStatic.ReadElStatic, pubStatic.WriteElStatic)
	}

	_, rt = runOnce(t, subOnly(), tm.RuntimeAll(tm.LogTree), 1)
	sub := rt.Stats()
	if sub.ReadElHeap != 0 || sub.WriteElHeap != 0 {
		t.Errorf("cursor path should allocate nothing, yet elided heap barriers: reads %d, writes %d",
			sub.ReadElHeap, sub.WriteElHeap)
	}
	if pf, sf := elidedFraction(pub), elidedFraction(sub); pf < 2*sf || pf == 0 {
		t.Errorf("regimes not separated: publish elided %.1f%% of barriers, cursor %.1f%%", 100*pf, 100*sf)
	}

	skip := tm.RuntimeAll(tm.LogTree).With(tm.WithSkipSharedChecks()).Named("runtime+skipshared")
	_, rt = runOnce(t, subOnly(), skip, 1)
	s := rt.Stats()
	if s.ReadSkipShared == 0 || s.WriteSkipShared == 0 {
		t.Errorf("definitely-shared extension bypassed no cursor-path checks: reads %d, writes %d",
			s.ReadSkipShared, s.WriteSkipShared)
	}
}
