package harness

// The adaptive-vs-hinted differential: an adaptive runtime given no
// per-phase engine declaration must converge, from its own epoch
// samples, to the same engines the canonical hand-tuned declaration
// (PhaseRegimeSpecs) assigns on the tmmsg mix — publish onto the
// capture-checking fast path, cursor onto the definitely-shared
// bypass, scan onto the read-mostly engine — and the converged run
// must leave the address space bit-identical to the hinted one. The
// manual hints stay ground truth; adaptation's contract is to
// rediscover them, not to improve on them.

import (
	"testing"

	"repro/internal/scenarios/tmmsg"
	"repro/tm"
	"repro/tm/serve"
)

// adaptiveDiffRequests sizes the stream so every adaptive kind
// completes several sampling epochs even after merging collapses ~8
// requests into one commit: 40% publish / 60% cursor over 2048
// requests is ≥100 commits per kind at width 8, against a 16-commit
// epoch.
const adaptiveDiffRequests = 2048

func TestAdaptiveConvergesToHintedEngines(t *testing.T) {
	const seed, width = 21, 8
	newBackend := func() serve.Backend {
		return tmmsg.NewMsgBackend(diffMsgConfig(adaptiveDiffRequests))
	}
	serveCfg := func(p tm.Profile) serve.Config {
		return serve.Config{
			Workers: 1, MergeWidth: width,
			QueueDepth: adaptiveDiffRequests, Requests: adaptiveDiffRequests,
			Options: p.Options(),
		}
	}
	base := tm.RuntimeAll(tm.LogTree).Perf()

	hinted := base.With(tm.WithPhases(PhaseRegimeSpecs()...)).Named("hinted")
	hintedRun, hintedSrv := runServedCfg(t, newBackend(), serveCfg(hinted), adaptiveDiffRequests, seed)
	hintedEngines := map[string]string{
		tm.PhasePublish: hintedSrv.Runtime().EngineFor(tm.PhasePublish),
		tm.PhaseCursor:  hintedSrv.Runtime().EngineFor(tm.PhaseCursor),
		tm.PhaseScan:    hintedSrv.Runtime().EngineFor(tm.PhaseScan),
	}

	// ProbeEvery is pinned huge so a scheduled re-probe cannot land near
	// the end of the run and leave the final selection on the probe; the
	// epoch is small enough for several decisions per kind.
	adaptive := base.With(tm.WithAdaptive(tm.AdaptiveConfig{
		Epoch: 16, ProbeEvery: 1 << 20,
	})).Named("adaptive")
	adaptRun, adaptSrv := runServedCfg(t, newBackend(), serveCfg(adaptive), adaptiveDiffRequests, seed)

	wantVariant := map[string]string{
		tm.PhasePublish: tm.VariantCapture,
		tm.PhaseCursor:  tm.VariantSkipShared,
		tm.PhaseScan:    tm.VariantReadMostly,
	}
	sels := adaptSrv.Runtime().AdaptiveSelections()
	if len(sels) != 3 {
		t.Fatalf("adaptive selections = %+v, want publish, cursor, and scan rows", sels)
	}
	for _, sel := range sels {
		if sel.Variant != wantVariant[sel.Kind] {
			t.Errorf("%s converged to %q, want %q", sel.Kind, sel.Variant, wantVariant[sel.Kind])
		}
		if sel.Engine != hintedEngines[sel.Kind] {
			t.Errorf("%s engine = %q, hinted declaration compiles %q",
				sel.Kind, sel.Engine, hintedEngines[sel.Kind])
		}
	}
	for kind, want := range hintedEngines {
		if got := adaptSrv.Runtime().EngineFor(kind); got != want {
			t.Errorf("EngineFor(%s) = %q, want %q", kind, got, want)
		}
	}

	// Same request stream, same batch composition (one worker, fixed
	// width, all queued before Start): whatever engines adaptation moved
	// through, the committed state and every reply must be bit-identical
	// to the hinted run.
	if adaptRun.checksum != hintedRun.checksum {
		t.Errorf("final state %#x, hinted %#x", adaptRun.checksum, hintedRun.checksum)
	}
	if i, ok := sameReplies(hintedRun.replies, adaptRun.replies); !ok {
		t.Errorf("reply %d = %v, hinted %v", i, adaptRun.replies[i], hintedRun.replies[i])
	}

	// The trajectory is real: some publish work ran on the probe before
	// promotion, and the promoted variant carried the bulk.
	var probe, fast uint64
	for _, row := range adaptSrv.Runtime().PhaseStats() {
		if row.Kind != tm.PhasePublish {
			continue
		}
		switch row.Variant {
		case tm.VariantProbe:
			probe = row.Stats.Commits
		case tm.VariantCapture:
			fast = row.Stats.Commits
		}
	}
	if probe == 0 || fast == 0 {
		t.Errorf("publish trajectory probe=%d capture=%d, want both nonzero", probe, fast)
	}
	if fast < probe {
		t.Errorf("promoted variant ran %d commits vs probe %d: promotion came too late", fast, probe)
	}
}
