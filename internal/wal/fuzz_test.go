package wal_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/wal"
	"repro/tm"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/scenarios/tmmsg"
)

// scenarioFrames drives one registered workload on a durable runtime and
// carves the resulting redo log into individual record frames — real
// write logs (tmkv's table updates, tmmsg's topic appends) rather than
// synthetic records, so the fuzz corpus starts from the shapes the
// commit pipeline actually emits.
func scenarioFrames(f *testing.F, bench string, max int) [][]byte {
	w, err := tm.NewWorkload(bench)
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	rt := tm.Open(tm.WithMemory(w.MemConfig()),
		tm.WithDurability(dir, tm.DurNoFsync(), tm.DurSegmentBytes(1<<20)))
	w.Setup(rt)
	w.Run(rt, 1)
	if err := rt.Close(); err != nil {
		f.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil {
		f.Fatal(err)
	}
	sort.Strings(segs)
	var frames [][]byte
	for _, seg := range segs {
		b, err := os.ReadFile(seg)
		if err != nil {
			f.Fatal(err)
		}
		if len(b) < 16 {
			continue
		}
		b = b[16:] // segment header
		var rec wal.Record
		for len(b) > 0 && len(frames) < max {
			n, err := wal.DecodeRecord(b, &rec)
			if err != nil {
				f.Fatalf("%s: carving seed frames from %s: %v", bench, seg, err)
			}
			frames = append(frames, append([]byte(nil), b[:n]...))
			b = b[n:]
		}
	}
	if len(frames) == 0 {
		f.Fatalf("%s: durable run produced no redo records", bench)
	}
	return frames
}

// FuzzRedoRecord asserts the record codec is total: DecodeRecord never
// panics on arbitrary bytes, every accepted input round-trips through
// AppendRecord byte-identically, and every rejection is one of the two
// documented error classes (torn vs corrupt). The seed corpus is carved
// from real tmkv and tmmsg redo logs plus a truncation ladder over one
// real frame.
func FuzzRedoRecord(f *testing.F) {
	for _, bench := range []string{"tmkv", "tmmsg"} {
		frames := scenarioFrames(f, bench, 24)
		for _, fr := range frames {
			f.Add(fr)
		}
		// A truncation ladder over the first frame seeds the torn-tail
		// paths (short header, short payload, bad CRC window).
		for cut := 0; cut < len(frames[0]) && cut < 64; cut += 7 {
			f.Add(frames[0][:cut])
		}
	}
	f.Add([]byte{})
	f.Add([]byte("REDO"))

	f.Fuzz(func(t *testing.T, b []byte) {
		var rec wal.Record
		n, err := wal.DecodeRecord(b, &rec)
		if err != nil {
			if !errors.Is(err, wal.ErrTorn) && !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("decode error is neither torn nor corrupt: %v", err)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		enc := wal.AppendRecord(nil, &rec)
		if !bytes.Equal(enc, b[:n]) {
			t.Fatalf("re-encoding differs from accepted input:\n got %x\nwant %x", enc, b[:n])
		}
		var rec2 wal.Record
		n2, err := wal.DecodeRecord(enc, &rec2)
		if err != nil || n2 != len(enc) {
			t.Fatalf("re-decode: n=%d err=%v", n2, err)
		}
	})
}
