package tm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/stm"
)

// Prov is the static provenance a typed reference carries: what an
// intraprocedural capture analysis could prove about the location it
// addresses. It decides whether WithCompilerElision may skip the
// barrier and whether WithSkipSharedChecks may skip the runtime
// capture checks.
type Prov = stm.Prov

// Provenance values (see the paper's Sec. 3.2 and the definitely-
// shared extension).
const (
	// ProvUnknown: nothing is proved; the barrier is kept.
	ProvUnknown = stm.ProvUnknown
	// ProvFresh: the referent was allocated in the current transaction.
	ProvFresh = stm.ProvFresh
	// ProvLocal: proved transaction-local after inlining.
	ProvLocal = stm.ProvLocal
	// ProvStack: a transaction-local stack location.
	ProvStack = stm.ProvStack
	// ProvShared: proved definitely shared; runtime capture checks on
	// it are pure overhead.
	ProvShared = stm.ProvShared
)

// accFor maps a provenance claim to the engine's access descriptor.
// Shared claims are marked manual: asserting shared-ness is what the
// STAMP TM_SHARED_* hand instrumentation did.
func accFor(p Prov) stm.Acc {
	switch p {
	case ProvFresh:
		return stm.AccFresh
	case ProvLocal:
		return stm.AccLocal
	case ProvStack:
		return stm.AccStack
	case ProvShared:
		return stm.AccShared
	default:
		return stm.AccAuto
	}
}

// ref is the common core of the typed references: one word of the
// simulated space plus the provenance of the access site.
type ref struct {
	addr mem.Addr
	acc  stm.Acc
}

// Word is a typed reference to one integer word.
type Word struct{ ref }

// Load reads the word transactionally.
func (w Word) Load(tx *Tx) uint64 { return tx.tx.Load(w.addr, w.acc) }

// Store writes the word transactionally.
func (w Word) Store(tx *Tx, v uint64) { tx.tx.Store(w.addr, v, w.acc) }

// Add adds delta to the word transactionally and returns the new
// value (read-modify-write inside the transaction, not atomic on its
// own).
func (w Word) Add(tx *Tx, delta uint64) uint64 {
	v := tx.tx.Load(w.addr, w.acc) + delta
	tx.tx.Store(w.addr, v, w.acc)
	return v
}

// Peek reads the word non-transactionally (setup/validation phases).
func (w Word) Peek(rt *Runtime) uint64 { return rt.rt.Space().Load(w.addr) }

// Poke writes the word non-transactionally (setup/validation phases).
func (w Word) Poke(rt *Runtime, v uint64) { rt.rt.Space().Store(w.addr, v) }

// Float is a typed reference to one float64 word.
type Float struct{ ref }

// Load reads the float transactionally.
func (f Float) Load(tx *Tx) float64 { return tx.tx.LoadFloat(f.addr, f.acc) }

// Store writes the float transactionally.
func (f Float) Store(tx *Tx, v float64) { tx.tx.StoreFloat(f.addr, v, f.acc) }

// Peek reads the float non-transactionally.
func (f Float) Peek(rt *Runtime) float64 { return rt.rt.Space().LoadFloat(f.addr) }

// Poke writes the float non-transactionally.
func (f Float) Poke(rt *Runtime, v float64) { rt.rt.Space().StoreFloat(f.addr, v) }

// Ptr is a typed reference to one pointer word: a word holding the
// address of another block.
type Ptr struct{ ref }

// Load reads the pointer transactionally. The returned view carries
// unknown provenance — an address loaded from memory is exactly what
// a capture analysis cannot prove transaction-local — and unknown
// size. Use Struct.WithProv to assert a stronger claim.
func (p Ptr) Load(tx *Tx) Struct {
	return Struct{base: mem.Addr(tx.tx.Load(p.addr, p.acc)), acc: stm.AccAuto}
}

// Store writes the pointer transactionally.
func (p Ptr) Store(tx *Tx, s Struct) { tx.tx.Store(p.addr, uint64(s.base), p.acc) }

// Peek reads the pointer non-transactionally.
func (p Ptr) Peek(rt *Runtime) Struct {
	return Struct{base: mem.Addr(rt.rt.Space().Load(p.addr)), acc: stm.AccAuto}
}

// Poke writes the pointer non-transactionally.
func (p Ptr) Poke(rt *Runtime, s Struct) { rt.rt.Space().Store(p.addr, uint64(s.base)) }

// Struct is a view of a block of words — a simulated struct or array.
// Field accessors mint typed references at word offsets; every
// reference inherits the view's provenance. The zero Struct is the
// nil reference.
type Struct struct {
	base mem.Addr
	size int // words, 0 when unknown (e.g. loaded through a Ptr)
	acc  stm.Acc
}

// IsNil reports whether the view is the nil reference.
func (s Struct) IsNil() bool { return s.base == mem.Nil }

// Addr returns the raw simulated address of the block (validation and
// debugging; e.g. as a map key when checking invariants).
func (s Struct) Addr() Addr { return s.base }

// Len returns the block size in words, or 0 when unknown.
func (s Struct) Len() int { return s.size }

// Prov returns the provenance the view's references carry.
func (s Struct) Prov() Prov { return s.acc.Prov }

// WithProv returns a copy of the view whose references carry the
// given provenance claim. Claiming ProvFresh/ProvLocal/ProvStack for
// memory that is not transaction-local breaks isolation exactly like
// a wrong annotation in the paper; WithVerifyElision checks such
// claims dynamically.
func (s Struct) WithProv(p Prov) Struct {
	s.acc = accFor(p)
	return s
}

// slot bounds-checks a field offset and returns its address.
func (s Struct) slot(i int) mem.Addr {
	if s.base == mem.Nil {
		panic("tm: dereference through nil reference")
	}
	if i < 0 || (s.size > 0 && i >= s.size) {
		panic(fmt.Sprintf("tm: offset %d out of range [0,%d)", i, s.size))
	}
	return s.base + mem.Addr(i)
}

// mustLen returns the block size, panicking if the view does not know
// it (op names the API that needed it).
func (s Struct) mustLen(op string) int {
	if s.size <= 0 {
		panic("tm: " + op + " needs a sized reference (from Alloc or AllocGlobal)")
	}
	return s.size
}

// Word returns a reference to the integer field at word offset i.
func (s Struct) Word(i int) Word { return Word{ref{s.slot(i), s.acc}} }

// Float returns a reference to the float field at word offset i.
func (s Struct) Float(i int) Float { return Float{ref{s.slot(i), s.acc}} }

// Ptr returns a reference to the pointer field at word offset i.
func (s Struct) Ptr(i int) Ptr { return Ptr{ref{s.slot(i), s.acc}} }

// At returns a sub-view starting at word offset off (e.g. one record
// of an array of records); it inherits the provenance and the
// remaining size.
func (s Struct) At(off int) Struct {
	a := s.slot(off)
	rest := 0
	if s.size > 0 {
		rest = s.size - off
	}
	return Struct{base: a, size: rest, acc: s.acc}
}

// Slice returns an n-word sub-view starting at word offset off — an
// exact-size window into the block (e.g. one reply slot of a batch
// buffer). It inherits the provenance; offsets past n are out of range
// even if the parent block continues.
func (s Struct) Slice(off, n int) Struct {
	a := s.slot(off)
	if n < 0 || (s.size > 0 && off+n > s.size) {
		panic(fmt.Sprintf("tm: slice [%d,%d) out of range [0,%d)", off, off+n, s.size))
	}
	return Struct{base: a, size: n, acc: s.acc}
}
