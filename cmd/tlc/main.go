// Command tlc compiles and runs TL programs (see internal/tlc) under
// a chosen STM configuration, printing the capture-analysis report and
// the barrier statistics — a direct view of the paper's Sec. 3.2
// compiler optimization at work.
//
// Usage:
//
//	tlc -analysis program.tl          # show what the compiler elides
//	tlc -run -opt compiler program.tl # run with static elision
//	tlc -run -opt baseline program.tl # run with full barriers
//	tlc -run -opt tree program.tl     # run with runtime capture analysis
//	tlc -run -noinline program.tl     # without the inlining pass
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tlc"
	"repro/tm"
)

func main() {
	analysis := flag.Bool("analysis", false, "print the capture-analysis report")
	run := flag.Bool("run", false, "execute main()")
	opt := flag.String("opt", "compiler", "baseline|compiler|tree|array|filter")
	noinline := flag.Bool("noinline", false, "disable the inlining pass")
	verify := flag.Bool("verify", false, "verify every static elision against the dynamic oracle")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tlc [-analysis] [-run] [-opt mode] program.tl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlc:", err)
		os.Exit(1)
	}
	var c *tlc.Compiled
	if *noinline {
		c, err = tlc.CompileNoInline(string(src))
	} else {
		c, err = tlc.Compile(string(src))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s:%v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	if *analysis || !*run {
		fmt.Print(c.Report())
	}
	if !*run {
		return
	}
	var p tm.Profile
	switch *opt {
	case "baseline":
		p = tm.Baseline()
	case "compiler":
		p = tm.CompilerElision()
	case "tree":
		p = tm.RuntimeAll(tm.LogTree)
	case "array":
		p = tm.RuntimeAll(tm.LogArray)
	case "filter":
		p = tm.RuntimeAll(tm.LogFilter)
	default:
		fmt.Fprintf(os.Stderr, "tlc: unknown -opt %q\n", *opt)
		os.Exit(2)
	}
	if *verify {
		p = p.With(tm.WithVerifyElision())
	}
	rt := tm.Open(append(p.Options(), tm.WithMemory(c.DefaultMemConfig()))...)
	defer rt.Close()
	// The TL interpreter drives the engine directly; Unwrap is the
	// documented escape hatch for in-tree tooling.
	in := tlc.NewInterp(c, rt.Unwrap())
	ret, err := in.Call(rt.Unwrap().Thread(0), "main")
	if err != nil {
		fmt.Fprintln(os.Stderr, "tlc:", err)
		os.Exit(1)
	}
	for _, v := range in.Output() {
		fmt.Println(v)
	}
	s := rt.Stats()
	fmt.Printf("main() = %d\n", ret)
	fmt.Printf("barriers: %d reads (%d elided), %d writes (%d elided); %d commits, %d aborts\n",
		s.ReadTotal, s.ReadElided(), s.WriteTotal, s.WriteElided(), s.Commits, s.Aborts)
}
