// Quickstart: the public tm API on the classic bank-transfer example.
//
//	go run ./examples/quickstart
//
// It opens a runtime with runtime capture analysis enabled, runs
// concurrent transfers between accounts, and prints the barrier
// statistics — showing the captured (transaction-local) accesses that
// the paper's optimization elides: each transfer allocates an audit
// record inside its transaction, and the typed references returned by
// tx.Alloc carry fresh provenance automatically.
package main

import (
	"fmt"
	"math/rand"

	"repro/tm"
)

func main() {
	rt := tm.Open(
		tm.WithName("quickstart"),
		tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap),
		tm.WithLogKind(tm.LogTree),
		tm.WithMemory(tm.MemConfig{
			GlobalWords: 1 << 10,
			HeapWords:   1 << 20,
			StackWords:  1 << 12,
			MaxThreads:  8,
		}),
	)
	defer rt.Close()

	// Accounts live in the globals region: definitely shared, so their
	// references carry shared provenance and keep full barriers.
	const accounts = 32
	const initial = 1000
	bank := rt.AllocGlobal(accounts)
	for i := 0; i < accounts; i++ {
		bank.Word(i).Poke(rt, initial)
	}
	// A shared audit-list head: each transfer prepends a record
	// allocated inside the transaction (captured memory!).
	auditHead := rt.AllocGlobal(1).Ptr(0)

	const threads, transfers = 4, 2000
	rt.Parallel(threads, func(th *tm.Thread, tid, _ int) {
		r := rand.New(rand.NewSource(int64(tid + 1)))
		for i := 0; i < transfers; i++ {
			from := r.Intn(accounts)
			to := r.Intn(accounts)
			amount := uint64(1 + r.Intn(10))
			th.Atomic(func(tx *tm.Tx) {
				f := bank.Word(from).Load(tx)
				if f < amount {
					return // insufficient funds; commit empty
				}
				bank.Word(from).Store(tx, f-amount)
				bank.Word(to).Add(tx, amount)

				// The audit record is transaction-local until commit:
				// its initializing stores need no barriers, and both
				// the runtime capture analysis and the compiler (via
				// the record's fresh provenance) elide them.
				rec := tx.Alloc(3)
				rec.Word(0).Store(tx, uint64(from))
				rec.Word(1).Store(tx, uint64(to))
				rec.Ptr(2).Store(tx, auditHead.Load(tx))
				auditHead.Store(tx, rec)
			})
		}
	})

	// Verify conservation and count audit records.
	var total uint64
	for i := 0; i < accounts; i++ {
		total += bank.Word(i).Peek(rt)
	}
	records := 0
	for p := auditHead.Peek(rt); !p.IsNil(); p = p.Ptr(2).Peek(rt) {
		records++
	}
	s := rt.Stats()
	fmt.Printf("total money: %d (expected %d)\n", total, accounts*initial)
	fmt.Printf("audit records: %d\n", records)
	fmt.Printf("commits: %d, conflict aborts: %d\n", s.Commits, s.Aborts)
	fmt.Printf("write barriers: %d, elided as captured: %d (%.0f%%)\n",
		s.WriteTotal, s.WriteElided(), 100*float64(s.WriteElided())/float64(s.WriteTotal))
	if total != accounts*initial {
		panic("money not conserved")
	}
}
