// Package wal is the durability tier of the runtime: a segmented
// append-only redo log with group commit, content-addressed checkpoint
// packs, and recovery (last checkpoint + redo tail replay).
//
// The package speaks raw words and addresses (uint64), not STM types:
// the stm layer serializes each committed transaction's write log into
// a Record and the tm layer owns checkpoint/recovery policy, so wal
// depends only on the standard library and sits below both.
//
// The package is layered:
//
//	record.go     the redo-record codec (framing, CRC, torn-tail)
//	log.go        segmented append-only log + group-commit flusher
//	checkpoint.go content-addressed snapshot packs + manifests
//	recover.go    checkpoint load + redo-tail replay
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind classifies a redo record.
type Kind uint8

const (
	// KindCommit is a committed transaction's redo record: the final
	// values of every word the transaction changed.
	KindCommit Kind = 1
	// KindAbort is an aborted transaction's residue record: undo-restored
	// values plus the checksum-visible scribbles (freed allocation
	// contents, popped stack garbage) the abort leaves behind.
	KindAbort Kind = 2
	// KindNonTx journals a non-transactional mutation (Thread.Store,
	// Thread.Alloc, Thread.StackPush) made while a durable runtime is
	// open.
	KindNonTx Kind = 3
	// KindSeal marks a clean shutdown; it carries the final clock and
	// bump pointers and no spans.
	KindSeal Kind = 4
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindNonTx:
		return "nontx"
	case KindSeal:
		return "seal"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Span is one contiguous run of words in a record: replay stores
// Vals[i] at Addr+i. Spans are applied in order; later spans win where
// they overlap earlier ones.
type Span struct {
	Addr uint64
	Vals []uint64
}

// Record is one redo-log entry. Replaying records in log order over a
// checkpoint snapshot reconstructs the exact word-for-word state of the
// address space: commit records are enqueued while the committing
// transaction still holds its ownership records, so log order respects
// conflict order.
type Record struct {
	Kind Kind
	// Seq is the log-assigned monotonic record number (Log.Append).
	Seq uint64
	// Version is the global-clock value associated with the record: the
	// write version of a commit, the current clock otherwise. Recovery
	// restores the clock to the maximum seen.
	Version uint64
	// GlobalsNext and HeapNext are the allocator bump pointers at record
	// build time; recovery restores each to the maximum seen so
	// re-opened runtimes never re-carve memory that holds live data.
	GlobalsNext uint64
	HeapNext    uint64
	Spans       []Span
}

// Words sums the span lengths.
func (r *Record) Words() int {
	n := 0
	for i := range r.Spans {
		n += len(r.Spans[i].Vals)
	}
	return n
}

// Frame layout, little endian:
//
//	u32 magic "REDO"
//	u32 payload length
//	u32 IEEE CRC-32 of the payload
//	payload
//
// Payload:
//
//	u8  kind
//	u64 seq, version, globalsNext, heapNext
//	u32 span count; then per span: u64 addr, u32 words, words×u64
const (
	recordMagic   = 0x4F444552 // "REDO"
	frameHdrLen   = 12
	payloadFixed  = 1 + 4*8 + 4
	spanHdrLen    = 8 + 4
	maxPayloadLen = 1 << 28 // 256 MiB: far above any real record
)

// ErrTorn reports an incomplete or garbled record frame — the expected
// state of a log tail after a crash mid-write. Recovery truncates a
// torn tail of the final segment and fails on one anywhere else.
var ErrTorn = errors.New("wal: torn record")

// ErrCorrupt reports a frame whose checksum verifies but whose payload
// is structurally invalid — an encoder bug or deliberate tampering,
// never a crash artifact.
var ErrCorrupt = errors.New("wal: corrupt record payload")

// AppendRecord serializes r onto dst and returns the extended slice.
func AppendRecord(dst []byte, r *Record) []byte {
	plen := payloadFixed
	for i := range r.Spans {
		plen += spanHdrLen + 8*len(r.Spans[i].Vals)
	}
	base := len(dst)
	dst = append(dst, make([]byte, frameHdrLen+plen)...)
	b := dst[base:]
	binary.LittleEndian.PutUint32(b[0:], recordMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(plen))
	p := b[frameHdrLen:]
	p[0] = byte(r.Kind)
	binary.LittleEndian.PutUint64(p[1:], r.Seq)
	binary.LittleEndian.PutUint64(p[9:], r.Version)
	binary.LittleEndian.PutUint64(p[17:], r.GlobalsNext)
	binary.LittleEndian.PutUint64(p[25:], r.HeapNext)
	binary.LittleEndian.PutUint32(p[33:], uint32(len(r.Spans)))
	off := payloadFixed
	for i := range r.Spans {
		s := &r.Spans[i]
		binary.LittleEndian.PutUint64(p[off:], s.Addr)
		binary.LittleEndian.PutUint32(p[off+8:], uint32(len(s.Vals)))
		off += spanHdrLen
		for _, v := range s.Vals {
			binary.LittleEndian.PutUint64(p[off:], v)
			off += 8
		}
	}
	binary.LittleEndian.PutUint32(b[8:], crc32.ChecksumIEEE(p))
	return dst
}

// DecodeRecord parses one record from the front of b into r (reusing
// r's span and value storage) and returns the number of bytes consumed.
// A frame that is incomplete, has a bad magic, or fails its checksum
// returns ErrTorn; a checksummed but structurally invalid payload
// returns ErrCorrupt.
func DecodeRecord(b []byte, r *Record) (int, error) {
	if len(b) < frameHdrLen {
		return 0, ErrTorn
	}
	if binary.LittleEndian.Uint32(b[0:]) != recordMagic {
		return 0, ErrTorn
	}
	plen := int(binary.LittleEndian.Uint32(b[4:]))
	if plen < payloadFixed || plen > maxPayloadLen {
		return 0, ErrTorn
	}
	if len(b) < frameHdrLen+plen {
		return 0, ErrTorn
	}
	p := b[frameHdrLen : frameHdrLen+plen]
	if crc32.ChecksumIEEE(p) != binary.LittleEndian.Uint32(b[8:]) {
		return 0, ErrTorn
	}
	r.Kind = Kind(p[0])
	r.Seq = binary.LittleEndian.Uint64(p[1:])
	r.Version = binary.LittleEndian.Uint64(p[9:])
	r.GlobalsNext = binary.LittleEndian.Uint64(p[17:])
	r.HeapNext = binary.LittleEndian.Uint64(p[25:])
	nspans := int(binary.LittleEndian.Uint32(p[33:]))
	if nspans < 0 || nspans > (plen-payloadFixed)/spanHdrLen {
		return 0, ErrCorrupt
	}
	if cap(r.Spans) < nspans {
		r.Spans = make([]Span, nspans)
	}
	r.Spans = r.Spans[:nspans]
	off := payloadFixed
	for i := 0; i < nspans; i++ {
		if plen-off < spanHdrLen {
			return 0, ErrCorrupt
		}
		addr := binary.LittleEndian.Uint64(p[off:])
		n := int(binary.LittleEndian.Uint32(p[off+8:]))
		off += spanHdrLen
		if n < 0 || n > (plen-off)/8 {
			return 0, ErrCorrupt
		}
		s := &r.Spans[i]
		s.Addr = addr
		if cap(s.Vals) < n {
			s.Vals = make([]uint64, n)
		}
		s.Vals = s.Vals[:n]
		for j := 0; j < n; j++ {
			s.Vals[j] = binary.LittleEndian.Uint64(p[off:])
			off += 8
		}
	}
	if off != plen {
		return 0, ErrCorrupt
	}
	return frameHdrLen + plen, nil
}
