// Package all registers every STAMP benchmark port. Import it for
// side effects wherever the full suite must be available:
//
//	import _ "repro/internal/stamp/all"
package all

import (
	_ "repro/internal/stamp/bayes"
	_ "repro/internal/stamp/genome"
	_ "repro/internal/stamp/intruder"
	_ "repro/internal/stamp/kmeans"
	_ "repro/internal/stamp/labyrinth"
	_ "repro/internal/stamp/ssca2"
	_ "repro/internal/stamp/vacation"
	_ "repro/internal/stamp/yada"
)
