package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func testSpace() *Space {
	return NewSpace(Config{GlobalWords: 256, HeapWords: 1 << 16, StackWords: 512, MaxThreads: 4})
}

func TestSpaceLayout(t *testing.T) {
	s := testSpace()
	hs, he := s.HeapRange()
	if hs != 257 {
		t.Errorf("heap start = %d, want 257", hs)
	}
	if he != hs+1<<16 {
		t.Errorf("heap end = %d, want %d", he, hs+1<<16)
	}
	lo0, hi0 := s.StackRange(0)
	if lo0 != he {
		t.Errorf("stack 0 low = %d, want heap end %d", lo0, he)
	}
	lo1, _ := s.StackRange(1)
	if lo1 != hi0 {
		t.Errorf("stacks not contiguous: stack1 low %d, stack0 high %d", lo1, hi0)
	}
	if s.Size() != 1+256+1<<16+4*512 {
		t.Errorf("size = %d", s.Size())
	}
}

func TestLoadStore(t *testing.T) {
	s := testSpace()
	a := s.AllocGlobal(4)
	s.Store(a, 42)
	s.Store(a+1, ^uint64(0))
	if got := s.Load(a); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
	if got := s.Load(a + 1); got != ^uint64(0) {
		t.Errorf("Load = %d, want max", got)
	}
	if got := s.Load(a + 2); got != 0 {
		t.Errorf("fresh word = %d, want 0", got)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	s := testSpace()
	a := s.AllocGlobal(1)
	if err := quick.Check(func(f float64) bool {
		s.StoreFloat(a, f)
		got := s.LoadFloat(a)
		return got == f || (f != f && got != got) // NaN-safe
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCAS(t *testing.T) {
	s := testSpace()
	a := s.AllocGlobal(1)
	s.Store(a, 7)
	if s.CAS(a, 8, 9) {
		t.Error("CAS with wrong old succeeded")
	}
	if !s.CAS(a, 7, 9) {
		t.Error("CAS with right old failed")
	}
	if s.Load(a) != 9 {
		t.Errorf("after CAS = %d, want 9", s.Load(a))
	}
}

func TestAllocGlobalConcurrent(t *testing.T) {
	s := NewSpace(Config{GlobalWords: 4096, HeapWords: 64, StackWords: 64, MaxThreads: 1})
	const g, per = 8, 16
	addrs := make(chan Addr, g*per)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				addrs <- s.AllocGlobal(3)
			}
		}()
	}
	wg.Wait()
	close(addrs)
	seen := map[Addr]bool{}
	for a := range addrs {
		for w := a; w < a+3; w++ {
			if seen[w] {
				t.Fatalf("overlapping global allocation at %d", w)
			}
			seen[w] = true
		}
	}
}

func TestAllocFreeReuse(t *testing.T) {
	s := testSpace()
	al := NewAllocator(s)
	a := al.Alloc(3)
	if al.BlockSize(a) < 3 {
		t.Fatalf("BlockSize = %d, want ≥ 3", al.BlockSize(a))
	}
	s.Store(a, 1)
	al.Free(a)
	b := al.Alloc(3)
	if b != a {
		t.Errorf("free list not reused: got %d, want %d", b, a)
	}
	if s.Load(b) != 0 {
		t.Error("reused block not zeroed")
	}
	if al.Live() != 1 {
		t.Errorf("Live = %d, want 1", al.Live())
	}
}

func TestAllocDistinct(t *testing.T) {
	s := testSpace()
	al := NewAllocator(s)
	seen := map[Addr]bool{}
	for i := 0; i < 1000; i++ {
		n := 1 + i%17
		a := al.Alloc(n)
		if !s.InHeap(a) {
			t.Fatalf("alloc %d outside heap", a)
		}
		for w := a; w < a+Addr(n); w++ {
			if seen[w] {
				t.Fatalf("overlapping allocation at word %d", w)
			}
			seen[w] = true
		}
	}
}

func TestAllocLarge(t *testing.T) {
	s := testSpace()
	al := NewAllocator(s)
	a := al.Alloc(20000)
	if al.BlockSize(a) != 20000 {
		t.Errorf("large BlockSize = %d", al.BlockSize(a))
	}
	s.Store(a+19999, 5)
	al.Free(a) // large frees are dropped; must not panic
}

func TestAllocFreeNil(t *testing.T) {
	s := testSpace()
	al := NewAllocator(s)
	al.Free(Nil) // no-op
	if al.Frees != 0 {
		t.Error("Free(Nil) counted")
	}
}

func TestSizeClassMonotonic(t *testing.T) {
	prev := 0
	for i, c := range classSizes {
		if c <= prev {
			t.Fatalf("classSizes[%d]=%d not increasing", i, c)
		}
		prev = c
	}
	for n := 1; n <= classSizes[len(classSizes)-1]; n++ {
		ci := sizeClass(n)
		if ci < 0 || classSizes[ci] < n {
			t.Fatalf("sizeClass(%d) = %d (size %d)", n, ci, classSizes[ci])
		}
		if ci > 0 && classSizes[ci-1] >= n {
			t.Fatalf("sizeClass(%d) = %d not minimal", n, ci)
		}
	}
}

func TestStackPushPop(t *testing.T) {
	s := testSpace()
	st := NewStack(s, 0)
	base := st.SP()
	if base != st.Base() {
		t.Error("fresh stack sp != base")
	}
	f1 := st.Push(4)
	if f1 != base-4 {
		t.Errorf("frame1 = %d, want %d", f1, base-4)
	}
	s.Store(f1, 11)
	mark := st.SP()
	f2 := st.Push(2)
	if f2 != f1-2 {
		t.Errorf("frame2 = %d, want %d", f2, f1-2)
	}
	if !st.Contains(f2) || !st.Contains(f1) {
		t.Error("Contains false for live frames")
	}
	if st.Contains(base) {
		t.Error("Contains true for base")
	}
	st.Pop(mark)
	if st.SP() != mark {
		t.Errorf("after pop sp = %d, want %d", st.SP(), mark)
	}
	if st.Contains(f2) {
		t.Error("Contains true for popped frame")
	}
	// A new push reuses the popped region and is zeroed.
	f3 := st.Push(2)
	if f3 != f2 {
		t.Errorf("frame3 = %d, want reuse of %d", f3, f2)
	}
	if s.Load(f3) != 0 {
		t.Error("re-pushed frame not zeroed")
	}
}

func TestStackOverflowPanics(t *testing.T) {
	s := testSpace()
	st := NewStack(s, 0)
	defer func() {
		if recover() == nil {
			t.Error("no panic on stack overflow")
		}
	}()
	st.Push(600) // stack is 512 words
}

func TestStackIsolationBetweenThreads(t *testing.T) {
	s := testSpace()
	st0 := NewStack(s, 0)
	st1 := NewStack(s, 1)
	a0 := st0.Push(8)
	a1 := st1.Push(8)
	if st0.Contains(a1) || st1.Contains(a0) {
		t.Error("stacks overlap")
	}
}
