package txlib

import (
	"repro/internal/mem"
	"repro/internal/stm"
)

// Ring is a fixed-capacity circular slot array indexed by monotonically
// growing sequence numbers (a broker-style retention window, not a
// FIFO like Queue: the caller owns the head/tail sequences and the ring
// only maps seq → slot). Slot i holds the element published at every
// sequence s with s % capacity == i, so a window of the most recent
// `capacity` sequences is addressable at any time.
//
// Layout:
//
//	header: [0] cap  [1] data ptr
const (
	rgCap  = 0
	rgData = 1
	rgHdr  = 2
)

// NewRing allocates a ring with the given capacity (at least 1). The
// slot array is freshly allocated, so its initial all-zero state needs
// no stores.
func NewRing(tx *stm.Tx, capacity int) mem.Addr {
	if capacity < 1 {
		capacity = 1
	}
	r := tx.Alloc(rgHdr)
	d := tx.Alloc(capacity)
	tx.Store(r+rgCap, uint64(capacity), stm.AccFresh)
	tx.StoreAddr(r+rgData, d, stm.AccFresh)
	return r
}

// RingCap returns the ring's fixed capacity.
func RingCap(tx *stm.Tx, r mem.Addr, mode stm.Acc) int {
	return int(tx.Load(r+rgCap, mode))
}

// RingGet returns the element in the slot for sequence seq.
func RingGet(tx *stm.Tx, r mem.Addr, seq uint64, mode stm.Acc) uint64 {
	capWords := tx.Load(r+rgCap, mode)
	d := tx.LoadAddr(r+rgData, mode)
	return tx.Load(d+mem.Addr(seq%capWords), mode)
}

// RingSet stores val into the slot for sequence seq, overwriting
// whatever older sequence mapped there.
func RingSet(tx *stm.Tx, r mem.Addr, seq uint64, val uint64, mode stm.Acc) {
	capWords := tx.Load(r+rgCap, mode)
	d := tx.LoadAddr(r+rgData, mode)
	tx.Store(d+mem.Addr(seq%capWords), val, mode)
}

// RingFree frees the slot array and header.
func RingFree(tx *stm.Tx, r mem.Addr, mode stm.Acc) {
	tx.Free(tx.LoadAddr(r+rgData, mode))
	tx.Free(r)
}
