package serve_test

// Black-box tests of the serving front-end: codec round-trips, the
// worker loop's merge behaviour, per-request fallback, the open-loop
// client population, and a concurrent stress of Batcher admission and
// fallback (run under -race in CI).

import (
	"bytes"
	"sync"
	"testing"

	"repro/tm"
	"repro/tm/serve"
)

// Opcodes of the test backend: a bank of counters.
const (
	opGet  = 0 // reply: [current value, key]
	opAdd  = 1 // add Arg to cell Key; reply: [new value, key]
	opFail = 2 // always refuses (abort)
	opScan = 3 // exclusive whole-bank sum; reply: [sum, n]
)

// countBackend is a minimal backend over a global array of counters.
type countBackend struct {
	n     int
	cells tm.Struct
}

func (b *countBackend) MemConfig(workers, total int) tm.MemConfig {
	return tm.MemConfig{
		GlobalWords: 1 << 10, HeapWords: 1 << 14, StackWords: 1 << 12,
		MaxThreads: workers,
	}
}

func (b *countBackend) Setup(rt *tm.Runtime) { b.cells = rt.AllocGlobal(b.n) }

func (b *countBackend) ReplyWords() int { return 2 }

func (b *countBackend) NewRequest(seed, i uint64) serve.Request {
	h := (seed + i + 1) * 0x9E3779B97F4A7C15
	op := uint8(opAdd)
	if i%10 == 9 {
		op = opGet
	}
	return serve.Request{Op: op, Key: h % uint64(b.n), Arg: 1 + h>>32%7}
}

func (b *countBackend) Item(req serve.Request) tm.BatchItem {
	key := int(req.Key % uint64(b.n))
	switch req.Op {
	case opGet:
		return tm.BatchItem{
			Footprint: tm.Footprint{Reads: []uint64{uint64(key)}},
			Apply: func(tx *tm.Tx, reply tm.Struct) bool {
				reply.Word(0).Store(tx, b.cells.Word(key).Load(tx))
				reply.Word(1).Store(tx, uint64(key))
				return true
			},
		}
	case opAdd:
		arg := req.Arg
		return tm.BatchItem{
			Footprint: tm.Footprint{Writes: []uint64{uint64(key)}},
			Apply: func(tx *tm.Tx, reply tm.Struct) bool {
				reply.Word(0).Store(tx, b.cells.Word(key).Add(tx, arg))
				reply.Word(1).Store(tx, uint64(key))
				return true
			},
		}
	case opScan:
		return tm.BatchItem{
			Exclusive: true, // unbounded footprint: merges with nothing
			Apply: func(tx *tm.Tx, reply tm.Struct) bool {
				var sum uint64
				for k := 0; k < b.n; k++ {
					sum += b.cells.Word(k).Load(tx)
				}
				reply.Word(0).Store(tx, sum)
				reply.Word(1).Store(tx, uint64(b.n))
				return true
			},
		}
	default:
		return tm.BatchItem{
			Footprint: tm.Footprint{Writes: []uint64{uint64(key)}},
			Apply: func(tx *tm.Tx, reply tm.Struct) bool {
				b.cells.Word(key).Add(tx, 1) // must be rolled back
				return false
			},
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []serve.Request{
		{},
		{Op: 7, Client: 3, Key: 42, Arg: 5},
		{Op: 255, Client: 1<<32 - 1, Key: 1<<64 - 1, Arg: 1 << 40},
	}
	var wire []byte
	for _, want := range cases {
		wire = serve.AppendRequest(wire[:0], want)
		got, n, err := serve.DecodeRequest(wire)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if n != len(wire) {
			t.Errorf("decode %+v consumed %d of %d bytes", want, n, len(wire))
		}
		if got != want {
			t.Errorf("round-trip = %+v, want %+v", got, want)
		}
	}
	// Two requests back to back decode one at a time.
	wire = serve.AppendRequest(nil, cases[1])
	wire = serve.AppendRequest(wire, cases[2])
	first, n, err := serve.DecodeRequest(wire)
	if err != nil || first != cases[1] {
		t.Fatalf("first of stream = %+v, %v", first, err)
	}
	second, _, err := serve.DecodeRequest(wire[n:])
	if err != nil || second != cases[2] {
		t.Fatalf("second of stream = %+v, %v", second, err)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, _, err := serve.DecodeRequest(nil); err == nil {
		t.Error("empty input decoded")
	}
	wire := serve.AppendRequest(nil, serve.Request{Op: 1, Client: 9, Key: 1 << 50, Arg: 3})
	for cut := 1; cut < len(wire); cut++ {
		if _, _, err := serve.DecodeRequest(wire[:cut]); err == nil {
			t.Errorf("truncation at %d decoded", cut)
		}
	}
	// A client id beyond uint32 is malformed.
	bad := []byte{1}
	bad = append(bad, bytes.Repeat([]byte{0xFF}, 5)...)
	bad = append(bad, 0x1F, 0, 0)
	if _, _, err := serve.DecodeRequest(bad); err == nil {
		t.Error("oversized client id decoded")
	}
}

// TestServerMergesQueuedRequests: requests queued before Start against
// a single worker drain into one merged transaction.
func TestServerMergesQueuedRequests(t *testing.T) {
	be := &countBackend{n: 64}
	s := serve.NewServer(be, serve.Config{Workers: 1, MergeWidth: 8, QueueDepth: 8})
	var mu sync.Mutex
	replies := make(map[uint64]serve.Reply)
	for i := 0; i < 8; i++ {
		key := uint64(i) // distinct keys: all compatible
		s.SubmitRequest(serve.Request{Op: opAdd, Key: key, Arg: key + 1}, func(r serve.Reply) {
			mu.Lock()
			replies[key] = r
			mu.Unlock()
		})
	}
	s.Start()
	s.Stop()

	for i := uint64(0); i < 8; i++ {
		r, ok := replies[i]
		if !ok || r.Aborted {
			t.Fatalf("request %d: reply %+v, ok=%v", i, r, ok)
		}
		if !r.Merged {
			t.Errorf("request %d not served merged", i)
		}
		if r.Words[0] != i+1 || r.Words[1] != i {
			t.Errorf("request %d reply words = %v", i, r.Words)
		}
		if v := be.cells.Word(int(i)).Peek(s.Runtime()); v != i+1 {
			t.Errorf("cell %d = %d, want %d", i, v, i+1)
		}
	}
	st := s.BatchStats()
	if st.Requests != 8 || st.Merged != 1 || st.Txns != 1 {
		t.Errorf("stats = %+v, want one merged batch of 8", st)
	}
	if r := st.MergeRatio(); r != 8 {
		t.Errorf("merge ratio = %v, want 8", r)
	}
	s.Runtime().Validate()
}

// TestServerFallback: a refusing request in a queued batch aborts the
// merged attempt; fallback serves the others and flags only the
// refuser, losing no request.
func TestServerFallback(t *testing.T) {
	be := &countBackend{n: 8}
	s := serve.NewServer(be, serve.Config{Workers: 1, MergeWidth: 4, QueueDepth: 4})
	replies := make([]serve.Reply, 3)
	var mu sync.Mutex
	for i := 0; i < 3; i++ {
		op := uint8(opAdd)
		if i == 1 {
			op = opFail
		}
		idx := i
		s.SubmitRequest(serve.Request{Op: op, Key: uint64(i), Arg: 10}, func(r serve.Reply) {
			mu.Lock()
			replies[idx] = r
			mu.Unlock()
		})
	}
	s.Start()
	s.Stop()

	if replies[0].Aborted || replies[2].Aborted || !replies[1].Aborted {
		t.Errorf("aborted flags = %v %v %v, want false true false",
			replies[0].Aborted, replies[1].Aborted, replies[2].Aborted)
	}
	for _, i := range []int{0, 2} {
		if replies[i].Merged {
			t.Errorf("fallback reply %d claims merged", i)
		}
		if replies[i].Words[0] != 10 {
			t.Errorf("reply %d = %v, want committed add", i, replies[i].Words)
		}
	}
	if v := be.cells.Word(1).Peek(s.Runtime()); v != 0 {
		t.Errorf("refused request's effect visible: cell 1 = %d", v)
	}
	st := s.BatchStats()
	if st.Fallbacks != 1 || st.Merged != 0 || st.Requests != 3 {
		t.Errorf("stats = %+v, want one fallback of 3", st)
	}
	s.Runtime().Validate()
}

// TestSubmitWire: the codec path end to end, including rejection of
// malformed submissions.
func TestSubmitWire(t *testing.T) {
	be := &countBackend{n: 8}
	s := serve.NewServer(be, serve.Config{Workers: 1, MergeWidth: 2})
	s.Start()
	var wg sync.WaitGroup
	wg.Add(1)
	var got serve.Reply
	wire := serve.AppendRequest(nil, serve.Request{Op: opAdd, Client: 5, Key: 3, Arg: 7})
	if err := s.Submit(wire, func(r serve.Reply) { got = r; wg.Done() }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	wg.Wait()
	if got.Aborted || got.Words[0] != 7 {
		t.Errorf("reply = %+v", got)
	}
	if err := s.Submit(wire[:2], func(serve.Reply) {}); err == nil {
		t.Error("truncated wire accepted")
	}
	if err := s.Submit(append(wire, 0), func(serve.Reply) {}); err == nil {
		t.Error("trailing bytes accepted")
	}
	s.Stop()
	s.Runtime().Validate()
}

// TestSubmitAfterStop: submissions after Stop return ErrStopped with
// the callback uncalled, instead of panicking on the closed queue; Stop
// itself is idempotent.
func TestSubmitAfterStop(t *testing.T) {
	be := &countBackend{n: 8}
	s := serve.NewServer(be, serve.Config{Workers: 1, MergeWidth: 2})
	s.Start()
	s.Stop()
	s.Stop() // idempotent: second call must not close twice or hang

	called := false
	if err := s.SubmitRequest(serve.Request{Op: opAdd, Key: 1, Arg: 1}, func(serve.Reply) {
		called = true
	}); err != serve.ErrStopped {
		t.Errorf("SubmitRequest after Stop = %v, want ErrStopped", err)
	}
	wire := serve.AppendRequest(nil, serve.Request{Op: opAdd, Key: 2, Arg: 1})
	if err := s.Submit(wire, func(serve.Reply) { called = true }); err != serve.ErrStopped {
		t.Errorf("Submit after Stop = %v, want ErrStopped", err)
	}
	if called {
		t.Error("done callback ran for a rejected submission")
	}
	if v := be.cells.Word(1).Peek(s.Runtime()); v != 0 {
		t.Errorf("rejected request's effect visible: %d", v)
	}
	s.Runtime().Validate()
}

// TestWorkerFlushOnIncompatible pins the worker's mid-batch flush: an
// exclusive request arriving into a half-full batch flushes the queued
// requests first, and every reply stays aligned with its own request
// across the flush boundary.
func TestWorkerFlushOnIncompatible(t *testing.T) {
	be := &countBackend{n: 16}
	s := serve.NewServer(be, serve.Config{Workers: 1, MergeWidth: 4, QueueDepth: 4})
	type outcome struct {
		r  serve.Reply
		ok bool
	}
	var mu sync.Mutex
	got := make([]outcome, 4)
	submit := func(idx int, req serve.Request) {
		if err := s.SubmitRequest(req, func(r serve.Reply) {
			mu.Lock()
			got[idx] = outcome{r: r, ok: true}
			mu.Unlock()
		}); err != nil {
			t.Fatalf("submit %d: %v", idx, err)
		}
	}
	// Two compatible adds half-fill the width-4 batch; the exclusive
	// scan cannot join and must flush them; the final add cannot join
	// the exclusive batch either.
	submit(0, serve.Request{Op: opAdd, Key: 3, Arg: 30})
	submit(1, serve.Request{Op: opAdd, Key: 5, Arg: 50})
	submit(2, serve.Request{Op: opScan})
	submit(3, serve.Request{Op: opAdd, Key: 7, Arg: 70})
	s.Start()
	s.Stop()

	for i, o := range got {
		if !o.ok {
			t.Fatalf("request %d got no reply", i)
		}
		if o.r.Aborted {
			t.Errorf("request %d aborted", i)
		}
	}
	// The two adds flushed together (merged); the scan observed both of
	// their effects and nothing from the add behind it.
	if !got[0].r.Merged || !got[1].r.Merged {
		t.Errorf("half-full batch did not merge: %v %v", got[0].r.Merged, got[1].r.Merged)
	}
	if got[2].r.Merged {
		t.Error("exclusive scan reported merged")
	}
	if w := got[0].r.Words; w[0] != 30 || w[1] != 3 {
		t.Errorf("reply 0 = %v, want [30 3]", w)
	}
	if w := got[1].r.Words; w[0] != 50 || w[1] != 5 {
		t.Errorf("reply 1 = %v, want [50 5]", w)
	}
	if w := got[2].r.Words; w[0] != 80 || w[1] != 16 {
		t.Errorf("scan reply = %v, want [80 16]", w)
	}
	if w := got[3].r.Words; w[0] != 70 || w[1] != 7 {
		t.Errorf("reply 3 = %v, want [70 7]", w)
	}
	st := s.BatchStats()
	if st.Batches != 3 || st.Merged != 1 || st.Requests != 4 {
		t.Errorf("stats = %+v, want 3 batches (merged pair, scan, add)", st)
	}
	s.Runtime().Validate()
}

// TestServerAdaptiveWidth: under AdaptiveWidth a merge-friendly request
// stream grows the worker's width from 1 toward the ceiling, and the
// trajectory is visible in BatchStats and Widths.
func TestServerAdaptiveWidth(t *testing.T) {
	const requests = 64
	be := &countBackend{n: requests}
	s := serve.NewServer(be, serve.Config{
		Workers: 1, MergeWidth: 8, QueueDepth: requests,
		AdaptiveWidth: true, WidthPolicy: tm.WidthPolicy{Epoch: 2},
	})
	if w := s.Widths(); len(w) != 1 || w[0] != 1 {
		t.Fatalf("initial widths = %v, want [1]", w)
	}
	var served sync.WaitGroup
	served.Add(requests)
	for i := 0; i < requests; i++ {
		if err := s.SubmitRequest(serve.Request{Op: opAdd, Key: uint64(i), Arg: 1},
			func(serve.Reply) { served.Done() }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	s.Start()
	served.Wait()
	s.Stop()

	if w := s.Widths(); w[0] <= 1 {
		t.Errorf("final width = %v, want growth above 1", w)
	}
	st := s.BatchStats()
	if st.WidthGrows == 0 {
		t.Errorf("no width grows recorded: %+v", st)
	}
	if st.Requests != requests {
		t.Errorf("served %d requests, want %d", st.Requests, requests)
	}
	var total uint64
	for k := 0; k < be.n; k++ {
		total += be.cells.Word(k).Peek(s.Runtime())
	}
	if total != requests {
		t.Errorf("committed adds = %d, want %d", total, requests)
	}
	s.Runtime().Validate()
}

// TestOpenLoop drives the population against a small server and checks
// the accounting: every request completes, latencies are measured, and
// the committed state matches the deterministic request stream.
func TestOpenLoop(t *testing.T) {
	be := &countBackend{n: 64}
	s := serve.NewServer(be, serve.Config{Workers: 2, MergeWidth: 4, Requests: 512})
	s.Start()
	res := s.RunOpenLoop(serve.OpenLoop{Clients: 4, Rate: 200000, Requests: 512, Seed: 11})
	s.Stop()

	if res.Requests != 512 || len(res.LatenciesNs) != 512 {
		t.Fatalf("requests = %d, latencies = %d", res.Requests, len(res.LatenciesNs))
	}
	for i, l := range res.LatenciesNs {
		if l <= 0 {
			t.Fatalf("latency[%d] = %d", i, l)
		}
	}
	if res.Aborted != 0 {
		t.Errorf("aborted = %d, want 0 (stream has no refusing ops)", res.Aborted)
	}
	if res.AchievedRPS() <= 0 {
		t.Errorf("achieved rps = %v", res.AchievedRPS())
	}
	// Replay the deterministic stream: every add's arg lands in its cell.
	want := make([]uint64, be.n)
	for i := 0; i < 512; i++ {
		req := be.NewRequest(11, uint64(i))
		if req.Op == opAdd {
			want[req.Key%uint64(be.n)] += req.Arg
		}
	}
	for k, w := range want {
		if v := be.cells.Word(k).Peek(s.Runtime()); v != w {
			t.Errorf("cell %d = %d, want %d", k, v, w)
		}
	}
	if st := s.BatchStats(); st.Requests != 512 {
		t.Errorf("served %d requests, want 512", st.Requests)
	}
	s.Runtime().Validate()
}

// TestServeStress hammers a server from many goroutines with
// overlapping keys (admission conflicts force flushes) and refusing
// ops (merged aborts force fallbacks); run under -race in CI. The
// final counter sums must equal the committed adds exactly — no
// request lost, no refused effect leaked.
func TestServeStress(t *testing.T) {
	const (
		goroutines = 8
		perG       = 400
		cells      = 4 // tiny key space: constant conflicts
	)
	be := &countBackend{n: cells}
	s := serve.NewServer(be, serve.Config{
		Workers: 4, MergeWidth: 4, Requests: goroutines * perG,
	})
	s.Start()
	var done sync.WaitGroup
	done.Add(goroutines * perG)
	var issuers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		issuers.Add(1)
		go func(g int) {
			defer issuers.Done()
			for i := 0; i < perG; i++ {
				op := uint8(opAdd)
				if i%10 == 3 {
					op = opFail
				}
				s.SubmitRequest(serve.Request{
					Op: op, Key: uint64(g*perG + i), Arg: 1,
				}, func(serve.Reply) { done.Done() })
			}
		}(g)
	}
	issuers.Wait()
	done.Wait()
	s.Stop()

	var total uint64
	for k := 0; k < cells; k++ {
		total += be.cells.Word(k).Peek(s.Runtime())
	}
	var want uint64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if i%10 != 3 {
				want++
			}
		}
	}
	if total != want {
		t.Errorf("committed adds = %d, want %d", total, want)
	}
	st := s.BatchStats()
	if st.Requests != goroutines*perG {
		t.Errorf("served %d requests, want %d", st.Requests, goroutines*perG)
	}
	s.Runtime().Validate()
}
