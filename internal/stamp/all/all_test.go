package all

import (
	"testing"

	"repro/internal/capture"
	"repro/internal/stamp"
	"repro/internal/stm"
)

// TestAllBenchmarksRegistered pins the suite roster (10 configurations
// of 8 applications, as in the paper's Table 1).
func TestAllBenchmarksRegistered(t *testing.T) {
	want := map[string]bool{
		"bayes": true, "genome": true, "intruder": true,
		"kmeans-high": true, "kmeans-low": true, "labyrinth": true,
		"ssca2": true, "vacation-high": true, "vacation-low": true, "yada": true,
	}
	names := stamp.Names()
	if len(names) != len(want) {
		t.Fatalf("registered %d benchmarks %v, want %d", len(names), names, len(want))
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected benchmark %q", n)
		}
	}
	if _, err := stamp.New("no-such-bench"); err == nil {
		t.Error("New on unknown benchmark did not fail")
	}
}

// runOne sets up, runs, and validates one benchmark under one config.
func runOne(t *testing.T, name string, cfg stm.OptConfig, threads int) *stm.Runtime {
	t.Helper()
	b, err := stamp.New(name)
	if err != nil {
		t.Fatal(err)
	}
	rt := stm.New(b.MemConfig(), cfg)
	b.Setup(rt)
	b.Run(rt, threads)
	if err := b.Validate(rt); err != nil {
		t.Fatalf("%s [%s, %d threads]: validation failed: %v", name, cfg.Name, threads, err)
	}
	rt.Validate() // no orecs left locked
	return rt
}

// TestSingleThreadBaseline runs every benchmark serially and validates
// its result.
func TestSingleThreadBaseline(t *testing.T) {
	for _, name := range stamp.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rt := runOne(t, name, stm.Baseline(), 1)
			s := rt.Stats()
			if s.Commits == 0 {
				t.Error("no transactions committed")
			}
			if s.Aborts != 0 {
				t.Errorf("%d aborts at 1 thread", s.Aborts)
			}
		})
	}
}

// TestMultiThreadAllConfigs is the correctness matrix: every benchmark
// × every optimization class at 4 threads must validate.
func TestMultiThreadAllConfigs(t *testing.T) {
	cfgs := []stm.OptConfig{
		stm.Baseline(),
		stm.RuntimeAll(capture.KindTree),
		stm.RuntimeAll(capture.KindArray),
		stm.RuntimeAll(capture.KindFilter),
		stm.RuntimeHeapWrite(capture.KindArray),
		stm.Compiler(),
	}
	for _, name := range stamp.Names() {
		for _, cfg := range cfgs {
			name, cfg := name, cfg
			t.Run(name+"/"+cfg.Name, func(t *testing.T) {
				t.Parallel()
				runOne(t, name, cfg, 4)
			})
		}
	}
}

// TestCountingBreakdownShapes checks the qualitative Fig. 8 shapes the
// paper reports: vacation/genome/intruder/yada have substantial
// captured-heap accesses; kmeans, ssca2 and labyrinth have essentially
// none; labyrinth's barriers are nearly all hand-instrumented.
func TestCountingBreakdownShapes(t *testing.T) {
	frac := func(s stm.Stats) (capFrac, manualFrac float64) {
		total := float64(s.ReadTotal + s.WriteTotal)
		captured := float64(s.ReadCapStack + s.ReadCapHeap + s.WriteCapStack + s.WriteCapHeap)
		manual := float64(s.ReadManual + s.WriteManual)
		return captured / total, manual / total
	}
	get := func(name string) stm.Stats {
		b, err := stamp.New(name)
		if err != nil {
			t.Fatal(err)
		}
		rt := stm.New(b.MemConfig(), stm.CountingConfig())
		b.Setup(rt)
		rt.ResetStats() // classify the timed phase only, like Sec. 4.1
		b.Run(rt, 1)
		if err := b.Validate(rt); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return rt.Stats()
	}
	if c, _ := frac(get("vacation-high")); c < 0.10 {
		t.Errorf("vacation-high captured fraction = %.2f, want ≥ 0.10", c)
	}
	if c, _ := frac(get("genome")); c < 0.10 {
		t.Errorf("genome captured fraction = %.2f, want ≥ 0.10", c)
	}
	if c, _ := frac(get("kmeans-high")); c > 0.02 {
		t.Errorf("kmeans captured fraction = %.2f, want ≈ 0", c)
	}
	if c, _ := frac(get("ssca2")); c > 0.02 {
		t.Errorf("ssca2 captured fraction = %.2f, want ≈ 0", c)
	}
	lc, lm := frac(get("labyrinth"))
	if lc > 0.02 {
		t.Errorf("labyrinth captured fraction = %.2f, want ≈ 0", lc)
	}
	if lm < 0.95 {
		t.Errorf("labyrinth manual fraction = %.2f, want ≈ 1 (no redundant barriers)", lm)
	}
	// Writes are more elidable than reads for the allocation-heavy
	// benchmarks (paper: up to 90% of write barriers vs 45% of reads),
	// and the write-captured fraction is substantial.
	for _, n := range []string{"vacation-low", "vacation-high", "genome", "intruder", "yada"} {
		s := get(n)
		wCap := float64(s.WriteCapStack+s.WriteCapHeap) / float64(s.WriteTotal)
		rCap := float64(s.ReadCapStack+s.ReadCapHeap) / float64(s.ReadTotal)
		if wCap <= rCap {
			t.Errorf("%s: write captured %.2f ≤ read captured %.2f", n, wCap, rCap)
		}
		if wCap < 0.40 {
			t.Errorf("%s: write captured fraction %.2f, want ≥ 0.40", n, wCap)
		}
	}
}

// TestRuntimeElisionMatchesCounting: with the precise tree log, the
// barriers elided at runtime must equal the captured accesses the
// counting mode classifies (same precise analysis, applied vs
// observed).
func TestRuntimeElisionMatchesCounting(t *testing.T) {
	name := "vacation-low"
	mk := func(cfg stm.OptConfig) stm.Stats {
		b, err := stamp.New(name)
		if err != nil {
			t.Fatal(err)
		}
		rt := stm.New(b.MemConfig(), cfg)
		b.Setup(rt)
		rt.ResetStats()
		b.Run(rt, 1)
		if err := b.Validate(rt); err != nil {
			t.Fatal(err)
		}
		return rt.Stats()
	}
	counted := mk(stm.CountingConfig())
	elided := mk(stm.RuntimeAll(capture.KindTree))
	if elided.ReadElStack+elided.ReadElHeap != counted.ReadCapStack+counted.ReadCapHeap {
		t.Errorf("read elisions %d != counted captured reads %d",
			elided.ReadElStack+elided.ReadElHeap, counted.ReadCapStack+counted.ReadCapHeap)
	}
	if elided.WriteElStack+elided.WriteElHeap != counted.WriteCapStack+counted.WriteCapHeap {
		t.Errorf("write elisions %d != counted captured writes %d",
			elided.WriteElStack+elided.WriteElHeap, counted.WriteCapStack+counted.WriteCapHeap)
	}
}

// TestArrayNeverBeatsTree: the bounded array log is conservative, so
// it can never elide more than the precise tree.
func TestArrayNeverBeatsTree(t *testing.T) {
	for _, name := range []string{"vacation-high", "genome", "yada"} {
		mk := func(k capture.Kind) stm.Stats {
			b, err := stamp.New(name)
			if err != nil {
				t.Fatal(err)
			}
			rt := stm.New(b.MemConfig(), stm.RuntimeAll(k))
			b.Setup(rt)
			rt.ResetStats()
			b.Run(rt, 1)
			if err := b.Validate(rt); err != nil {
				t.Fatal(err)
			}
			return rt.Stats()
		}
		tree := mk(capture.KindTree)
		arr := mk(capture.KindArray)
		if arr.ReadElided() > tree.ReadElided() || arr.WriteElided() > tree.WriteElided() {
			t.Errorf("%s: array elided more than tree (r %d>%d or w %d>%d)",
				name, arr.ReadElided(), tree.ReadElided(), arr.WriteElided(), tree.WriteElided())
		}
	}
}

// TestCompilerElidesSubsetOfCaptured: static elisions must be a subset
// of what the precise runtime analysis finds (the compiler is
// conservative).
func TestCompilerElidesSubsetOfCaptured(t *testing.T) {
	for _, name := range []string{"vacation-high", "genome", "intruder"} {
		b, err := stamp.New(name)
		if err != nil {
			t.Fatal(err)
		}
		rtC := stm.New(b.MemConfig(), stm.Compiler())
		b.Setup(rtC)
		b.Run(rtC, 1)
		if err := b.Validate(rtC); err != nil {
			t.Fatal(err)
		}
		sc := rtC.Stats()

		b2, _ := stamp.New(name)
		rtT := stm.New(b2.MemConfig(), stm.RuntimeAll(capture.KindTree))
		b2.Setup(rtT)
		b2.Run(rtT, 1)
		if err := b2.Validate(rtT); err != nil {
			t.Fatal(err)
		}
		st := rtT.Stats()
		if sc.ReadElStatic > st.ReadElStack+st.ReadElHeap {
			t.Errorf("%s: compiler elided %d reads > runtime captured %d",
				name, sc.ReadElStatic, st.ReadElStack+st.ReadElHeap)
		}
		if sc.WriteElStatic > st.WriteElStack+st.WriteElHeap {
			t.Errorf("%s: compiler elided %d writes > runtime captured %d",
				name, sc.WriteElStatic, st.WriteElStack+st.WriteElHeap)
		}
	}
}
