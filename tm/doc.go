// Package tm is the public transactional-memory API of this
// repository: an ergonomic, Go-idiomatic surface over the STM engine
// in internal/stm that implements "Optimizing Transactions for
// Captured Memory" (Dragojević, Ni, Adl-Tabatabai; SPAA 2009).
//
// The engine elides STM barriers for memory that is *captured* by the
// running transaction — allocated inside it, on its transactional
// stack, or annotated thread-private — either dynamically (runtime
// capture analysis) or statically (compiler-style provenance). This
// package makes those mechanisms usable without touching raw
// addresses or access descriptors.
//
// Open configures and creates a runtime with functional options:
//
//	rt := tm.Open(
//		tm.WithRuntimeCapture(tm.StackAndHeap, tm.StackAndHeap),
//		tm.WithLogKind(tm.LogTree),
//	)
//
// Typed references (Word, Float, Ptr) and the Struct field view
// address the simulated space and carry their access provenance, so a
// reference obtained from Tx.Alloc is automatically treated as
// captured-fresh, one from Runtime.AllocGlobal as definitely shared,
// and one loaded through a Ptr as unknown:
//
//	th := rt.Thread(0)
//	th.Atomic(func(tx *tm.Tx) {
//		rec := tx.Alloc(2)         // captured: barrier-free stores
//		rec.Word(0).Store(tx, 42)
//		head.Ptr(0).Store(tx, rec) // shared: full barrier
//	})
//
// RegisterWorkload plugs external scenario packages into the same
// registry the STAMP benchmark ports use, so the harness, reports,
// and bench matrix (package tm/bench) run them identically.
//
// The STAMP evaluation tooling on top of this API lives in tm/bench
// (matrix runs and paper-style tables), cmd/stampbench, and
// cmd/barriers. Examples under examples/ are living documentation of
// this package.
package tm
