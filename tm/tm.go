package tm

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/stm"
)

// Stats holds the runtime's barrier, elision, and commit/abort
// counters (see the fields and helpers on the underlying type, e.g.
// AbortRatio, ReadElided, WriteElided).
type Stats = stm.Stats

// MemConfig sizes the simulated address space a Runtime operates on:
// GlobalWords, HeapWords, StackWords (per thread), and MaxThreads.
type MemConfig = mem.Config

// Addr is a raw simulated address — the word index a typed reference
// wraps. Most code never touches it; it is exposed for validation and
// debugging (Struct.Addr).
type Addr = mem.Addr

// DefaultMemConfig returns the address-space geometry Open uses when
// WithMemory is not given (≈48 MiB of simulated memory).
func DefaultMemConfig() MemConfig { return mem.DefaultConfig() }

// Runtime is a shared transactional-memory instance: the simulated
// address space, ownership records, version clock, and the active
// optimization configuration. One Runtime is shared by all threads of
// a workload.
type Runtime struct {
	rt  *stm.Runtime
	mc  mem.Config
	dur *durRuntime // durability state; nil without WithDurability

	mu      sync.Mutex
	threads map[int]*Thread
}

func newRuntime(s settings) *Runtime {
	return &Runtime{rt: stm.New(s.mem, s.cfg), mc: s.mem, threads: make(map[int]*Thread)}
}

// Open creates a runtime configured by the given options. With no
// options it is the paper's unoptimized baseline over the default
// memory geometry. Conflicting options are resolved by precedence
// (documented on each option); OpenErr reports them as errors instead.
// Open panics if WithDurability was given and the directory cannot be
// initialized — durability cannot be dropped silently; use OpenErr to
// handle that case.
func Open(opts ...Option) *Runtime {
	s := fold(opts)
	rt := newRuntime(s)
	if s.dur != nil {
		if err := openDurable(rt, s.dur, 0, 0, true); err != nil {
			panic(fmt.Sprintf("tm: opening durability dir %s: %v", s.dur.dir, err))
		}
	}
	return rt
}

// OpenErr is Open with error reporting: option combinations that Open
// resolves by silent precedence (for example WithReadMostly under
// WithCounting, which drops the read-mostly engine) are returned as
// errors, as are durability initialization failures.
func OpenErr(opts ...Option) (*Runtime, error) {
	s := fold(opts)
	if err := s.conflicts(); err != nil {
		return nil, err
	}
	rt := newRuntime(s)
	if s.dur != nil {
		if err := openDurable(rt, s.dur, 0, 0, true); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// Thread returns (creating on first use) the execution context for
// worker id. Safe for concurrent use; each Thread must then be used by
// one goroutine at a time.
func (rt *Runtime) Thread(id int) *Thread {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if th, ok := rt.threads[id]; ok {
		return th
	}
	th := &Thread{rt: rt, th: rt.rt.Thread(id)}
	rt.threads[id] = th
	return th
}

// Parallel runs worker on nthreads goroutines, each bound to its own
// Thread, and waits for all of them.
func (rt *Runtime) Parallel(nthreads int, worker func(th *Thread, tid, ntotal int)) {
	var wg sync.WaitGroup
	for i := 0; i < nthreads; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			worker(rt.Thread(tid), tid, nthreads)
		}(i)
	}
	wg.Wait()
}

// AllocGlobal allocates n words in the globals region (never freed)
// and returns a definitely-shared reference to them. Use it for the
// data structures transactions contend on.
func (rt *Runtime) AllocGlobal(n int) Struct {
	return Struct{base: rt.rt.Space().AllocGlobal(n), size: n, acc: stm.AccShared}
}

// Stats sums the statistics of every thread created so far.
//
// Deprecated: use Snapshot, which returns all observability views
// (engine, totals, per-phase, adaptive, durability) in one struct.
func (rt *Runtime) Stats() Stats { return rt.rt.Stats() }

// Engine names the barrier engine this runtime compiled its
// configuration into: "counting" for instrumented profiles, a "perf-*"
// specialization under WithPerfMode, or "generic" when forced with
// WithEngine(EngineGeneric). With WithPhases the name carries a
// "+phases" marker; EngineFor and PhaseStats give the per-phase
// breakdown.
func (rt *Runtime) Engine() string { return rt.rt.Engine() }

// EngineFor names the barrier engine compiled for the given declared
// phase kind ("" is the default phase; undeclared kinds report the
// default engine, mirroring EnterPhase's hint semantics).
func (rt *Runtime) EngineFor(kind Phase) string { return rt.rt.EngineFor(kind) }

// CMFor names the contention manager active for the given declared
// phase kind ("" is the default phase; undeclared kinds report the
// default phase's manager). For an adaptive kind this follows the
// current online selection.
func (rt *Runtime) CMFor(kind Phase) string { return rt.rt.CMFor(kind) }

// Phases returns the phase kinds declared with WithPhases, in
// declaration order (empty without phases; the implicit default phase
// is not listed).
func (rt *Runtime) Phases() []Phase { return rt.rt.PhaseKinds() }

// PhaseStats is one row of the per-phase statistics breakdown: the
// phase kind ("" for the default phase), the engine its profile
// compiled to, and the counters of every transaction run in the phase.
type PhaseStats = stm.PhaseStats

// PhaseStats sums every thread's counters by phase: index 0 is the
// default phase, declared phases follow in declaration order. Read it
// after worker threads have joined, like Stats.
//
// Deprecated: use Snapshot, which carries the same rows in its Phases
// field.
func (rt *Runtime) PhaseStats() []PhaseStats { return rt.rt.PhaseStats() }

// AdaptiveSelection is the current engine choice for one adaptive
// phase kind: the kind, the selected variant ("probe", "capture",
// "skipshared", or "readmostly"), and the engine name it runs on.
type AdaptiveSelection = stm.AdaptiveSelection

// Adaptive variant labels, as reported by AdaptiveSelection.Variant
// and PhaseStats.Variant.
const (
	VariantProbe      = stm.VariantProbe
	VariantCapture    = stm.VariantCapture
	VariantSkipShared = stm.VariantSkipShared
	VariantReadMostly = stm.VariantReadMostly
)

// AdaptiveSelections reports the current engine selection of every
// kind WithAdaptive adapts, in declaration order (empty without
// adaptation). Reading it while workers run sees a momentary
// selection; read after joining for the converged one.
//
// Deprecated: use Snapshot, which carries the same rows in its
// Adaptive field.
func (rt *Runtime) AdaptiveSelections() []AdaptiveSelection {
	return rt.rt.AdaptiveSelections()
}

// ResetStats zeroes every thread's counters (e.g. between an untimed
// setup phase and the timed parallel phase). Not safe to call while
// worker threads are running.
func (rt *Runtime) ResetStats() { rt.rt.ResetStats() }

// Validate panics if any ownership record is still locked — a
// debugging aid for tests (all transactions must have released
// ownership once their threads are joined).
func (rt *Runtime) Validate() { rt.rt.Validate() }

// Unwrap returns the low-level engine runtime. It is the escape hatch
// the in-tree STAMP ports and the TL interpreter use; code written
// against this package should not need it.
func (rt *Runtime) Unwrap() *stm.Runtime { return rt.rt }

// Thread is a per-worker execution context. A Thread must be used by
// one goroutine at a time.
type Thread struct {
	rt *Runtime
	th *stm.Thread
	tx Tx
}

// ID returns the worker id of this thread.
func (t *Thread) ID() int { return t.th.ID() }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// Atomic executes fn as a transaction, retrying on conflicts until it
// commits. If fn calls Tx.Abort, the (innermost) transaction rolls
// back and Atomic returns false; otherwise it returns true. Calling
// Atomic inside a transaction runs fn as a closed nested transaction
// with partial abort.
func (t *Thread) Atomic(fn func(*Tx)) bool {
	return t.th.Atomic(func(stx *stm.Tx) {
		t.tx.tx = stx
		t.tx.th = t
		fn(&t.tx)
	})
}

// Alloc allocates n words outside any transaction. The block is
// reachable by every thread, so its references carry unknown
// provenance; annotate it with AddPrivateBlock if it is genuinely
// thread-private.
func (t *Thread) Alloc(n int) Struct {
	return Struct{base: t.th.Alloc(n), size: n, acc: stm.AccAuto}
}

// Free frees a block outside any transaction.
func (t *Thread) Free(s Struct) { t.th.Free(s.base) }

// AddPrivateBlock annotates the block as thread-local or read-only:
// safe to access inside transactions without STM barriers (the paper's
// addPrivateMemoryBlock, Fig. 7). Requires WithAnnotations. Incorrect
// use can introduce data races, exactly as in the paper. The reference
// must know its size (come from Alloc/AllocGlobal/Tx.Alloc).
func (t *Thread) AddPrivateBlock(s Struct) {
	t.th.AddPrivateBlock(s.base, s.mustLen("AddPrivateBlock"))
}

// RemovePrivateBlock ends the annotation for the block (the paper's
// removePrivateMemoryBlock).
func (t *Thread) RemovePrivateBlock(s Struct) {
	t.th.RemovePrivateBlock(s.base, s.mustLen("RemovePrivateBlock"))
}

// EnterPhase hints that this thread's upcoming transactions belong to
// the given phase kind, switching onto that phase's compiled barrier
// engine. Hints are free to give unconditionally: a kind the runtime
// did not declare selects the default engine. Called inside a
// transaction, the switch is deferred until the enclosing top-level
// transaction (including its retries) has ended — engines never change
// mid-transaction.
func (t *Thread) EnterPhase(kind Phase) { t.th.EnterPhase(kind) }

// Phase returns the kind of the phase this thread currently executes
// in ("" for the default phase).
func (t *Thread) Phase() Phase { return t.th.Phase() }

// Stats returns this thread's counters for its current phase (read
// after joining; without declared phases this is all of the thread's
// accounting).
func (t *Thread) Stats() *Stats { return t.th.Stats() }

// Tx is a transaction descriptor, valid only inside the Atomic call
// that supplied it.
type Tx struct {
	tx *stm.Tx
	th *Thread
}

// Thread returns the owning thread.
func (tx *Tx) Thread() *Thread { return tx.th }

// Alloc allocates n words inside the transaction. The memory is
// captured — invisible to every other transaction until commit — so
// the returned reference carries fresh provenance and its accesses
// are elidable both statically and by the runtime checks.
func (tx *Tx) Alloc(n int) Struct {
	return Struct{base: tx.tx.Alloc(n), size: n, acc: stm.AccFresh}
}

// StackAlloc allocates an n-word frame on the transaction-local stack;
// it is reclaimed automatically when the top-level transaction ends.
// The reference carries stack provenance (dead on abort, invisible to
// other threads).
func (tx *Tx) StackAlloc(n int) Struct {
	return Struct{base: tx.tx.StackAlloc(n), size: n, acc: stm.AccStack}
}

// Free frees a block inside the transaction. Blocks allocated by this
// transaction are reclaimed immediately; pre-existing blocks are freed
// only when the transaction commits, so aborts can undo the free.
func (tx *Tx) Free(s Struct) { tx.tx.Free(s.base) }

// Abort rolls back the innermost transaction; the enclosing Atomic
// returns false.
func (tx *Tx) Abort() { tx.tx.UserAbort() }

// Restart abandons the current attempt and retries the top-level
// transaction from scratch.
func (tx *Tx) Restart() { tx.tx.Restart() }

// Attempt returns the 1-based attempt number of the current top-level
// transaction (>1 after conflicts).
func (tx *Tx) Attempt() int { return tx.tx.Attempt() }

// Depth returns the current nesting depth (1 = top level).
func (tx *Tx) Depth() int { return tx.tx.Depth() }

// Unwrap returns the low-level engine transaction, the per-transaction
// counterpart of Runtime.Unwrap. It is the escape hatch adapters over
// the in-tree scenarios use; code written against this package should
// not need it.
func (tx *Tx) Unwrap() *stm.Tx { return tx.tx }
