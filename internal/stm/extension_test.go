package stm

// Tests for the definitely-shared extension (the paper's future-work
// direction implemented here): accesses carrying ProvShared bypass the
// runtime capture checks and go straight to the full barrier.

import (
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/mem"
)

func TestSkipSharedBypassesChecks(t *testing.T) {
	cfg := RuntimeAll(capture.KindTree)
	cfg.SkipSharedChecks = true
	rt := newRT(cfg)
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(2)
	th.Atomic(func(tx *Tx) {
		tx.Store(g, 1, AccShared) // definitely shared: checks skipped
		_ = tx.Load(g, AccShared) // likewise
		tx.Store(g+1, 2, AccAuto) // unknown: checks run (miss)
		p := tx.Alloc(2)
		tx.Store(p, 3, AccAuto) // unknown: checks run (hit)
	})
	s := rt.Stats()
	if s.ReadSkipShared != 1 || s.WriteSkipShared != 1 {
		t.Errorf("skip counts r=%d w=%d, want 1/1", s.ReadSkipShared, s.WriteSkipShared)
	}
	if s.WriteElHeap != 1 {
		t.Errorf("captured write not elided: %d", s.WriteElHeap)
	}
	if rt.Space().Load(g) != 1 || rt.Space().Load(g+1) != 2 {
		t.Error("writes lost")
	}
	rt.Validate()
}

func TestSkipSharedStillFullySynchronized(t *testing.T) {
	cfg := RuntimeAll(capture.KindArray)
	cfg.SkipSharedChecks = true
	rt := newRT(cfg)
	a := rt.Space().AllocGlobal(1)
	const threads, incs = 6, 300
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for j := 0; j < incs; j++ {
				th.Atomic(func(tx *Tx) {
					tx.Store(a, tx.Load(a, AccShared)+1, AccShared)
				})
			}
		}(i)
	}
	wg.Wait()
	if got := rt.Space().Load(a); got != threads*incs {
		t.Errorf("counter = %d, want %d", got, threads*incs)
	}
	rt.Validate()
}

func TestProvSharedNeverstaticallyElided(t *testing.T) {
	if StaticElide(ProvShared) {
		t.Fatal("ProvShared must keep its barrier")
	}
	// Even under the Compiler configuration, shared accesses keep full
	// barriers: two threads verify isolation.
	rt := newRT(Compiler())
	a := rt.Space().AllocGlobal(1)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for j := 0; j < 200; j++ {
				th.Atomic(func(tx *Tx) {
					tx.Store(a, tx.Load(a, AccShared)+1, AccShared)
				})
			}
		}(i)
	}
	wg.Wait()
	if got := rt.Space().Load(a); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
}

// TestSkipSharedCheckOverheadDirection: with the extension on, a
// shared-only transaction performs no capture-log probes at all, which
// the elision/probe counters make visible.
func TestSkipSharedNoProbesOnSharedOnlyTx(t *testing.T) {
	cfg := RuntimeAll(capture.KindTree)
	cfg.SkipSharedChecks = true
	rt := newRT(cfg)
	th := rt.Thread(0)
	g := rt.Space().AllocGlobal(8)
	th.Atomic(func(tx *Tx) {
		for i := 0; i < 8; i++ {
			v := tx.Load(g+addrOf(i), AccShared)
			tx.Store(g+addrOf(i), v+1, AccShared)
		}
	})
	s := rt.Stats()
	if s.ReadSkipShared != 8 || s.WriteSkipShared != 8 {
		t.Errorf("skips r=%d w=%d, want 8/8", s.ReadSkipShared, s.WriteSkipShared)
	}
	if s.ReadElided()+s.WriteElided() != 0 {
		t.Error("nothing should be elided in a shared-only transaction")
	}
}

func addrOf(i int) mem.Addr { return mem.Addr(i) }
