package tm_test

// Registry behaviour: register/resolve, the unknown-name error UX,
// and duplicate/invalid registrations.

import (
	"fmt"
	"strings"
	"testing"

	"repro/tm"
)

// regWorkload is a minimal tm.Workload for registry tests.
type regWorkload struct{ name string }

func (w regWorkload) Name() string { return w.name }
func (w regWorkload) MemConfig() tm.MemConfig {
	return tm.MemConfig{GlobalWords: 8, HeapWords: 64, StackWords: 32, MaxThreads: 2}
}
func (w regWorkload) Setup(rt *tm.Runtime)          {}
func (w regWorkload) Run(rt *tm.Runtime, n int)     {}
func (w regWorkload) Validate(rt *tm.Runtime) error { return nil }

func TestRegisterResolve(t *testing.T) {
	tm.RegisterWorkload("registry-test-a", func() tm.Workload { return regWorkload{"registry-test-a"} })
	tm.RegisterWorkload("registry-test-b", func() tm.Workload { return regWorkload{"registry-test-b"} })

	w, err := tm.NewWorkload("registry-test-a")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "registry-test-a" {
		t.Errorf("resolved %q", w.Name())
	}

	names := tm.Workloads()
	ia, ib := -1, -1
	for i, n := range names {
		switch n {
		case "registry-test-a":
			ia = i
		case "registry-test-b":
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		t.Fatalf("Workloads() missing registrations: %v", names)
	}
	if ia > ib {
		t.Errorf("Workloads() not sorted: %v", names)
	}
}

func TestUnknownWorkloadErrorListsNames(t *testing.T) {
	tm.RegisterWorkload("registry-test-list", func() tm.Workload { return regWorkload{"registry-test-list"} })
	_, err := tm.NewWorkload("registry-test-nope")
	if err == nil {
		t.Fatal("no error for unknown workload")
	}
	msg := err.Error()
	if !strings.Contains(msg, "registry-test-nope") || !strings.Contains(msg, "registry-test-list") {
		t.Errorf("error does not name the miss and the registered set: %v", msg)
	}
}

func TestDuplicateAndInvalidRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	tm.RegisterWorkload("registry-test-dup", func() tm.Workload { return regWorkload{"registry-test-dup"} })
	expectPanic("duplicate", func() {
		tm.RegisterWorkload("registry-test-dup", func() tm.Workload { return regWorkload{"registry-test-dup"} })
	})
	expectPanic("empty name", func() {
		tm.RegisterWorkload("", func() tm.Workload { return regWorkload{""} })
	})
	expectPanic("nil factory", func() {
		tm.RegisterWorkload("registry-test-nilf", nil)
	})
}

// TestWorkloadDescriptions: descriptions ride the registry — present
// when registered with one, empty for plain registrations and unknown
// names, and resolvable without instantiating the workload.
func TestWorkloadDescriptions(t *testing.T) {
	tm.RegisterWorkloadDesc("registry-test-desc", "a described workload",
		func() tm.Workload { return regWorkload{"registry-test-desc"} })
	if got := tm.WorkloadDescription("registry-test-desc"); got != "a described workload" {
		t.Errorf("WorkloadDescription = %q", got)
	}
	tm.RegisterWorkload("registry-test-nodesc", func() tm.Workload { return regWorkload{"registry-test-nodesc"} })
	if got := tm.WorkloadDescription("registry-test-nodesc"); got != "" {
		t.Errorf("undescribed workload reports %q", got)
	}
	if got := tm.WorkloadDescription("registry-test-never-registered"); got != "" {
		t.Errorf("unknown workload reports %q", got)
	}
	// The described registration still resolves like any other.
	w, err := tm.NewWorkload("registry-test-desc")
	if err != nil || w.Name() != "registry-test-desc" {
		t.Errorf("resolve: %v, %v", w, err)
	}
}

// TestFactoryReturnsFreshInstances: NewWorkload must hand out a new
// instance per call (workload instances are single use).
func TestFactoryReturnsFreshInstances(t *testing.T) {
	calls := 0
	tm.RegisterWorkload("registry-test-fresh", func() tm.Workload {
		calls++
		return regWorkload{fmt.Sprintf("registry-test-fresh-%d", calls)}
	})
	a, _ := tm.NewWorkload("registry-test-fresh")
	b, _ := tm.NewWorkload("registry-test-fresh")
	if a.Name() == b.Name() {
		t.Errorf("factory reused an instance: %q / %q", a.Name(), b.Name())
	}
}
