package harness

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/tm"

	_ "repro/internal/scenarios/tmkv"
	_ "repro/internal/scenarios/tmmsg"
)

func TestQuantileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}, {1.0, 100},
	}
	for _, c := range cases {
		if got := quantileNs(sorted, c.q); got != c.want {
			t.Errorf("q%.2f = %d, want %d", c.q, got, c.want)
		}
	}
	if got := quantileNs([]int64{42}, 0.99); got != 42 {
		t.Errorf("single sample = %d", got)
	}
	if got := quantileNs(nil, 0.5); got != 0 {
		t.Errorf("empty sample = %d", got)
	}
}

func TestLatencyReportRoundTrip(t *testing.T) {
	with := Result{
		Bench: "srv-tmkv", Config: "baseline+mw4@50000rps", Engine: "perf-noinstr", Threads: 2,
		Times: []time.Duration{time.Second},
		Stats: tm.Stats{Commits: 10},
		Latency: &LatencyStats{
			OfferedRPS: 50000, AchievedRPS: 49000,
			P50Ns: 1000, P95Ns: 5000, P99Ns: 9000, MaxNs: 12000,
			Requests: 1024, MergedReplies: 900, MergeWidth: 4, Clients: 4,
			MergeRatio: 3.5, Batches: 300, MergedBatches: 280, Txns: 320,
		},
	}
	without := Result{
		Bench: "tmkv", Config: "baseline", Engine: "perf-noinstr", Threads: 2,
		Times: []time.Duration{time.Second}, Stats: tm.Stats{Commits: 10},
	}
	rep := NewReport([]Result{with, without})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"latency"`, `"p95_ns"`, `"p99_ns"`, `"offered_rps"`, `"merge_ratio"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("report missing %s", key)
		}
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rep) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", back, rep)
	}
	if back.Results[0].Latency == nil || back.Results[0].Latency.P95Ns != 5000 {
		t.Errorf("latency block lost: %+v", back.Results[0].Latency)
	}
	// The block must be absent, not zero-valued, on throughput rows.
	var raw struct {
		Results []map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.Results[1]["latency"]; ok {
		t.Error("throughput row carries a latency block")
	}
}

// TestRunOpenLoop drives a small open-loop run end to end over the
// served KV backend and checks the latency block is self-consistent.
func TestRunOpenLoop(t *testing.T) {
	spec := OpenLoopSpec{
		Backend:    "srv-tmkv",
		Profile:    tm.RuntimeAll(tm.LogTree),
		Workers:    2,
		MergeWidth: 4,
		Clients:    4,
		Rate:       200_000,
		Requests:   512,
		Seed:       7,
	}
	res, err := RunOpenLoop(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bench != "srv-tmkv" || res.Threads != 2 {
		t.Errorf("result key = %s/%d", res.Bench, res.Threads)
	}
	if want := "runtime-rw-stack-heap-tree+mw4@200000rps"; res.Config != want {
		t.Errorf("config = %q, want %q", res.Config, want)
	}
	l := res.Latency
	if l == nil {
		t.Fatal("no latency block")
	}
	if l.Requests != 512 || l.MergeWidth != 4 || l.Clients != 4 || l.OfferedRPS != 200_000 {
		t.Errorf("spec echo drifted: %+v", l)
	}
	if l.P50Ns <= 0 || l.P95Ns < l.P50Ns || l.P99Ns < l.P95Ns || l.MaxNs < l.P99Ns {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d max=%d", l.P50Ns, l.P95Ns, l.P99Ns, l.MaxNs)
	}
	if l.AchievedRPS <= 0 {
		t.Errorf("achieved rps = %v", l.AchievedRPS)
	}
	if l.Txns == 0 || l.MergeRatio < 1 {
		t.Errorf("merge counters: txns=%d ratio=%v", l.Txns, l.MergeRatio)
	}
	if l.MergedReplies > l.Requests || l.Aborted != 0 {
		t.Errorf("reply counters: merged=%d aborted=%d", l.MergedReplies, l.Aborted)
	}
	if res.Stats.Commits == 0 {
		t.Error("no commits recorded")
	}
	var buf bytes.Buffer
	WriteLatencyTable(&buf, []Result{res})
	if !strings.Contains(buf.String(), "srv-tmkv") || !strings.Contains(buf.String(), "mw4") {
		t.Errorf("latency table:\n%s", buf.String())
	}
}

// TestRunOpenLoopUnpaced: Rate<=0 is peak stress — every request
// scheduled at the start — and the config string says so.
func TestRunOpenLoopUnpaced(t *testing.T) {
	res, err := RunOpenLoop(OpenLoopSpec{
		Backend:    "srv-tmmsg",
		Profile:    tm.Baseline().Perf(),
		Workers:    2,
		MergeWidth: 8,
		Clients:    2,
		Requests:   256,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "baseline+mw8@peak"; res.Config != want {
		t.Errorf("config = %q, want %q", res.Config, want)
	}
	if res.Latency.OfferedRPS != 0 {
		t.Errorf("offered rps = %v, want 0 (unpaced)", res.Latency.OfferedRPS)
	}
	if res.Latency.Requests != 256 {
		t.Errorf("requests = %d", res.Latency.Requests)
	}
}

// TestOpenLoopConfigKeys pins the sweep-point key format. The rate must
// render in fixed notation at every magnitude: %g would emit
// "1e+06rps" from a million-rps point, giving this run a key no
// baseline report contains and silently dropping the point from
// benchdiff's matched set.
func TestOpenLoopConfigKeys(t *testing.T) {
	p := tm.Baseline()
	cases := []struct {
		spec OpenLoopSpec
		want string
	}{
		{OpenLoopSpec{Profile: p, MergeWidth: 4}, "baseline+mw4@peak"},
		{OpenLoopSpec{Profile: p, MergeWidth: 4, Rate: 1000}, "baseline+mw4@1000rps"},
		{OpenLoopSpec{Profile: p, MergeWidth: 8, Rate: 250_000}, "baseline+mw8@250000rps"},
		{OpenLoopSpec{Profile: p, MergeWidth: 8, Rate: 1e6}, "baseline+mw8@1000000rps"},
		{OpenLoopSpec{Profile: p, MergeWidth: 8, Rate: 2.5e6}, "baseline+mw8@2500000rps"},
		{OpenLoopSpec{Profile: p, MergeWidth: 1, Rate: 1e7}, "baseline+mw1@10000000rps"},
		{OpenLoopSpec{Profile: p, MergeWidth: 2, Rate: 1500.5}, "baseline+mw2@1500.5rps"},
		{OpenLoopSpec{Profile: p, MergeWidth: 8, Rate: 1e6, Phases: true},
			"baseline+phases+mw8@1000000rps"},
		{OpenLoopSpec{Profile: p, MergeWidth: 8, Rate: 1e6, Adaptive: true},
			"baseline+adaptive+amw8@1000000rps"},
		{OpenLoopSpec{Profile: p, MergeWidth: 8, Phases: true, Adaptive: true},
			"baseline+phases+adaptive+amw8@peak"},
	}
	for _, c := range cases {
		if got := openLoopConfig(c.spec); got != c.want {
			t.Errorf("key = %q, want %q", got, c.want)
		}
		if strings.ContainsAny(openLoopConfig(c.spec), "eE+") != strings.ContainsAny(c.want, "eE+") {
			t.Errorf("key %q leaked scientific notation", openLoopConfig(c.spec))
		}
	}
}

// TestRunOpenLoopAdaptive: the adaptive spec wires online engine
// selection and adaptive width through the server, and the result rows
// carry the trajectory (selections, width moves, final widths).
func TestRunOpenLoopAdaptive(t *testing.T) {
	res, err := RunOpenLoop(OpenLoopSpec{
		Backend:       "srv-tmmsg",
		Profile:       tm.RuntimeAll(tm.LogTree).Perf(),
		Workers:       1,
		MergeWidth:    8,
		Clients:       2,
		Requests:      2048,
		Seed:          11,
		Adaptive:      true,
		AdaptiveEpoch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := "runtime-rw-stack-heap-tree+adaptive+amw8@peak"; res.Config != want {
		t.Errorf("config = %q, want %q", res.Config, want)
	}
	if !strings.HasSuffix(res.Engine, "+adaptive") {
		t.Errorf("engine = %q, want +adaptive marker", res.Engine)
	}
	if len(res.Adaptive) != 3 {
		t.Fatalf("adaptive selections = %+v, want publish, cursor, and scan rows", res.Adaptive)
	}
	if len(res.PhaseStats) == 0 {
		t.Error("no per-phase rows for an adaptive run")
	}
	l := res.Latency
	if len(l.FinalWidths) != 1 {
		t.Fatalf("final widths = %v, want one worker", l.FinalWidths)
	}
	if l.FinalWidths[0] < 1 || l.FinalWidths[0] > 8 {
		t.Errorf("final width %d outside [1, 8]", l.FinalWidths[0])
	}
	if l.Requests != 2048 {
		t.Errorf("requests = %d", l.Requests)
	}
}

func TestRunOpenLoopUnknownBackend(t *testing.T) {
	if _, err := RunOpenLoop(OpenLoopSpec{Backend: "no-such-backend", Profile: tm.Baseline()}); err == nil {
		t.Fatal("expected error for unknown backend")
	}
}
