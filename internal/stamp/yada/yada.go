// Package yada ports the transactional skeleton of STAMP's yada
// (Delaunay mesh refinement). A shared max-heap orders "bad" elements
// by badness; each refinement transaction pops the worst element,
// gathers its cavity (the element plus one live neighbor), removes the
// cavity from the shared element map, allocates replacement elements
// inside the transaction (captured-heap writes, including repeated
// re-writes of the link words that the baseline's write-after-write
// filter absorbs — the effect behind yada's Fig. 10 result), links
// them to the remaining neighbors, and re-queues any replacement that
// is still bad. Refinement strictly improves quality, so the work pool
// drains.
//
// Substitution note: real Delaunay cavity re-triangulation (geometry,
// circumcircle tests) is replaced by this quality-driven split that
// preserves yada's transactional profile: write-heavy transactions,
// several allocations per transaction, repeated writes to the same
// words, and cavity conflicts between neighbors.
package yada

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/prng"
	"repro/internal/stamp"
	"repro/internal/stm"
	"repro/internal/txlib"
)

// Element layout. Like STAMP's element_t, an element carries its
// geometry (three vertex coordinate pairs and derived metrics) in
// addition to the quality and the neighbor links; initializing the
// geometry of replacement elements is the captured write traffic.
const (
	elQuality = 0
	elNbr0    = 1
	elNbr1    = 2
	elNbr2    = 3
	elCoords  = 4  // 6 coordinate words
	elMetrics = 10 // 3 derived metric words (angles/edge lengths)
	elSize    = 13
)

// Config sizes the synthetic mesh.
type Config struct {
	Name      string
	Elements  int    // initial mesh elements
	Threshold uint64 // minimum acceptable quality (STAMP's angle bound)
	Seed      uint64
}

// Default returns the scaled-down yada configuration.
func Default() Config {
	return Config{Name: "yada", Elements: 16384, Threshold: 100, Seed: 10}
}

// B is one yada run.
type B struct {
	cfg Config

	elems  mem.Addr // map id → element
	heap   mem.Addr // max-heap of (badness, id)
	nextID mem.Addr // id allocator (shared counter word)

	inflight atomic.Int64 // queued-but-unprocessed bad elements
	created  atomic.Int64
	removed  atomic.Int64
}

func init() {
	stamp.Register("yada",
		"STAMP yada: Delaunay mesh refinement with cavity re-triangulation", func() stamp.Benchmark { return &B{cfg: Default()} })
}

// NewWith creates a yada instance with a custom configuration.
func NewWith(cfg Config) *B { return &B{cfg: cfg} }

// Name implements stamp.Benchmark.
func (b *B) Name() string { return b.cfg.Name }

// MemConfig implements stamp.Benchmark.
func (b *B) MemConfig() mem.Config {
	words := b.cfg.Elements * 64
	return mem.Config{GlobalWords: 1 << 10, HeapWords: words + (1 << 19), StackWords: 1 << 10, MaxThreads: 32}
}

func (b *B) badness(q uint64) uint64 {
	if q >= b.cfg.Threshold {
		return 0
	}
	return b.cfg.Threshold - q
}

// Setup creates the initial mesh and queues every bad element.
func (b *B) Setup(rt *stm.Runtime) {
	r := prng.New(b.cfg.Seed)
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		b.elems = txlib.NewMap(tx)
		b.heap = txlib.NewHeap(tx, b.cfg.Elements*2)
		b.nextID = tx.Alloc(1)
		tx.Store(b.nextID, 1, stm.AccFresh)
	})
	nBad := 0
	for i := 0; i < b.cfg.Elements; i++ {
		q := uint64(60 + r.Intn(100)) // [60, 160): some below threshold
		n0 := uint64(r.Intn(b.cfg.Elements) + 1)
		n1 := uint64(r.Intn(b.cfg.Elements) + 1)
		n2 := uint64(r.Intn(b.cfg.Elements) + 1)
		bad := b.badness(q) > 0
		if bad {
			nBad++
		}
		coords := [6]uint64{r.Next(), r.Next(), r.Next(), r.Next(), r.Next(), r.Next()}
		th.Atomic(func(tx *stm.Tx) {
			id := tx.Load(b.nextID, stm.AccShared)
			tx.Store(b.nextID, id+1, stm.AccShared)
			e := tx.Alloc(elSize)
			tx.Store(e+elQuality, q, stm.AccFresh)
			tx.Store(e+elNbr0, n0, stm.AccFresh)
			tx.Store(e+elNbr1, n1, stm.AccFresh)
			tx.Store(e+elNbr2, n2, stm.AccFresh)
			initGeometry(tx, e, coords)
			txlib.MapInsert(tx, b.elems, id, uint64(e), txlib.TM)
			if bad {
				txlib.HeapInsert(tx, b.heap, b.badness(q), id, txlib.TM)
			}
		})
	}
	b.created.Store(int64(b.cfg.Elements))
	b.inflight.Store(int64(nBad))
}

// initGeometry writes the vertex coordinates and then the derived
// metrics (which read the just-written coordinates back — captured
// reads) into a freshly allocated element.
func initGeometry(tx *stm.Tx, e mem.Addr, coords [6]uint64) {
	for i, c := range coords {
		tx.Store(e+elCoords+mem.Addr(i), c, stm.AccFresh)
	}
	for i := 0; i < 3; i++ {
		a := tx.Load(e+elCoords+mem.Addr(2*i), stm.AccFresh)
		c := tx.Load(e+elCoords+mem.Addr(2*i+1), stm.AccFresh)
		tx.Store(e+elMetrics+mem.Addr(i), a^c, stm.AccFresh)
	}
}

// Run drains the bad-element heap (STAMP's process()).
func (b *B) Run(rt *stm.Runtime, nthreads int) {
	stamp.RunParallel(rt, nthreads, func(th *stm.Thread, tid, n int) {
		r := prng.New(b.cfg.Seed ^ uint64(tid)*0x9E37)
		for {
			var id uint64
			var ok bool
			th.Atomic(func(tx *stm.Tx) {
				_, id, ok = txlib.HeapExtractMax(tx, b.heap, txlib.TM)
			})
			if !ok {
				if b.inflight.Load() == 0 {
					return
				}
				continue // another thread is still producing work
			}
			b.refine(th, r, id)
			b.inflight.Add(-1)
		}
	})
}

// refine retriangulates the cavity of element id.
func (b *B) refine(th *stm.Thread, r *prng.R, id uint64) {
	var createdN, removedN, queued int64
	th.Atomic(func(tx *stm.Tx) {
		createdN, removedN, queued = 0, 0, 0
		ep, ok := txlib.MapGet(tx, b.elems, id, txlib.TM)
		if !ok {
			return // already consumed as somebody else's cavity
		}
		e := mem.Addr(ep)
		q := tx.Load(e+elQuality, stm.AccShared)
		if b.badness(q) == 0 {
			return // already good (re-queued stale entry)
		}
		// Cavity: the element plus its first still-live neighbor.
		nbrs := [3]uint64{
			tx.Load(e+elNbr0, stm.AccShared),
			tx.Load(e+elNbr1, stm.AccShared),
			tx.Load(e+elNbr2, stm.AccShared),
		}
		cavityQ := q
		var cavityNbr uint64
		for _, nb := range nbrs {
			if nb == 0 || nb == id {
				continue
			}
			if np, ok := txlib.MapGet(tx, b.elems, nb, txlib.TM); ok {
				n := mem.Addr(np)
				nq := tx.Load(n+elQuality, stm.AccShared)
				if nq > cavityQ {
					cavityQ = nq
				}
				txlib.MapRemove(tx, b.elems, nb, txlib.TM)
				tx.Free(n)
				cavityNbr = nb
				removedN++
				break
			}
		}
		txlib.MapRemove(tx, b.elems, id, txlib.TM)
		tx.Free(e)
		removedN++

		// Replace the cavity with three better elements (a real cavity
		// re-triangulation creates several). The link words are written
		// twice (zero-init pattern, then the final link): redundant
		// writes the baseline WAW filter absorbs. Together with the
		// map nodes, the allocations per transaction exceed the range
		// array's one-cache-line capacity — which is why yada is the
		// benchmark where the array log removes fewer barriers than
		// the tree (paper Fig. 9).
		var childIDs [3]uint64
		for c := 0; c < 3; c++ {
			nid := tx.Load(b.nextID, stm.AccShared)
			tx.Store(b.nextID, nid+1, stm.AccShared)
			childIDs[c] = nid
			nq := cavityQ + 30 + uint64(r.Intn(20))
			ne := tx.Alloc(elSize)
			tx.Store(ne+elQuality, nq, stm.AccFresh)
			// First pass: provisional self-links.
			tx.Store(ne+elNbr0, nid, stm.AccFresh)
			tx.Store(ne+elNbr1, nid, stm.AccFresh)
			tx.Store(ne+elNbr2, nid, stm.AccFresh)
			// Second pass: final links (write-after-write).
			tx.Store(ne+elNbr0, nbrs[c%3], stm.AccFresh)
			tx.Store(ne+elNbr1, cavityNbr, stm.AccFresh)
			tx.Store(ne+elNbr2, nbrs[2], stm.AccFresh)
			initGeometry(tx, ne, [6]uint64{
				r.Next(), r.Next(), r.Next(), r.Next(), r.Next(), r.Next()})
			txlib.MapInsert(tx, b.elems, nid, uint64(ne), txlib.TM)
			createdN++
			if bd := b.badness(nq); bd > 0 {
				txlib.HeapInsert(tx, b.heap, bd, nid, txlib.TM)
				queued++
			}
		}
	})
	b.created.Add(createdN)
	b.removed.Add(removedN)
	b.inflight.Add(queued)
}

// Validate checks the termination invariants: no bad element remains,
// the heap is drained, and the element population is consistent.
func (b *B) Validate(rt *stm.Runtime) error {
	var err error
	var count int
	rt.Thread(0).Atomic(func(tx *stm.Tx) {
		if txlib.HeapSize(tx, b.heap, txlib.TM) != 0 {
			err = fmt.Errorf("heap not drained")
			return
		}
		count = txlib.MapSize(tx, b.elems, txlib.TM)
		txlib.MapForEach(tx, b.elems, txlib.TM, func(id, ep uint64) bool {
			q := tx.Load(mem.Addr(ep)+elQuality, stm.AccShared)
			if q < b.cfg.Threshold {
				err = fmt.Errorf("element %d still bad (quality %d < %d)", id, q, b.cfg.Threshold)
				return false
			}
			return true
		})
	})
	if err != nil {
		return err
	}
	if want := b.created.Load() - b.removed.Load(); int64(count) != want {
		return fmt.Errorf("element count %d != created-removed %d", count, want)
	}
	if b.inflight.Load() != 0 {
		return fmt.Errorf("inflight counter %d != 0", b.inflight.Load())
	}
	return nil
}
