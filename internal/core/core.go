// Package core is the front door to the paper's primary contribution:
// STM barrier elision for captured (transaction-local) memory. It
// re-exports the runtime (internal/stm) and the capture-analysis data
// structures (internal/capture) under one import, which is the API a
// downstream user of this library programs against:
//
//	rt := core.New(memCfg, core.RuntimeAll(core.KindTree))
//	th := rt.Thread(0)
//	th.Atomic(func(tx *core.Tx) {
//	    p := tx.Alloc(4)                  // captured until commit
//	    tx.Store(p, 1, core.AccFresh)     // barrier elided
//	    tx.Store(shared, 2, core.AccShared)
//	})
//
// The implementation lives in:
//
//   - internal/stm — the transactional runtime and the barrier fast
//     paths (runtime capture analysis, annotations, compiler elision);
//   - internal/capture — the allocation-log implementations (tree,
//     array, filter) of the paper's Sec. 3.1.2;
//   - internal/mem — the simulated memory substrate;
//   - internal/tlc — the compiler whose capture analysis derives the
//     provenance tags automatically from TL source.
package core

import (
	"repro/internal/capture"
	"repro/internal/mem"
	"repro/internal/stm"
)

// Core runtime types.
type (
	// Runtime is a shared STM instance (see stm.Runtime).
	Runtime = stm.Runtime
	// Thread is a per-worker execution context (see stm.Thread).
	Thread = stm.Thread
	// Tx is a transaction descriptor (see stm.Tx).
	Tx = stm.Tx
	// OptConfig selects an optimization configuration (see stm.OptConfig).
	OptConfig = stm.OptConfig
	// Acc describes an access site to the barriers (see stm.Acc).
	Acc = stm.Acc
	// Stats are the per-run counters (see stm.Stats).
	Stats = stm.Stats
	// MemConfig sizes the simulated address space (see mem.Config).
	MemConfig = mem.Config
	// Addr is a simulated memory address (see mem.Addr).
	Addr = mem.Addr
)

// New creates a runtime over a fresh simulated address space.
func New(memCfg MemConfig, opt OptConfig) *Runtime { return stm.New(memCfg, opt) }

// Optimization configuration constructors (paper Sec. 4).
var (
	Baseline         = stm.Baseline
	RuntimeAll       = stm.RuntimeAll
	RuntimeWrite     = stm.RuntimeWrite
	RuntimeHeapWrite = stm.RuntimeHeapWrite
	Compiler         = stm.Compiler
	CountingConfig   = stm.CountingConfig
)

// Allocation-log implementations (paper Sec. 3.1.2).
const (
	KindTree   = capture.KindTree
	KindArray  = capture.KindArray
	KindFilter = capture.KindFilter
)

// Access descriptors (compiler-provenance tags; see stm.Acc).
var (
	AccShared = stm.AccShared
	AccAuto   = stm.AccAuto
	AccFresh  = stm.AccFresh
	AccLocal  = stm.AccLocal
	AccStack  = stm.AccStack
)
